package aiio

import (
	"github.com/hpc-repro/aiio/internal/iosim"
	"github.com/hpc-repro/aiio/internal/workload"
)

// SimulateIOR runs an IOR command line (Table 3 syntax: -w/-r, -t, -b, -s,
// -z, -Y, -F, -a POSIX) against the simulated parallel file system with
// nprocs tasks and returns the Darshan record, including the Eq. 1
// performance tag. It is how the examples and experiments produce "unseen"
// job logs without a real machine; on a production system the record would
// come from ParseLog on darshan-parser output.
func SimulateIOR(cmdline string, nprocs int, seed int64) (*Record, error) {
	cfg, err := workload.ParseIORFlags(cmdline)
	if err != nil {
		return nil, err
	}
	if nprocs > 0 {
		cfg.NProcs = nprocs
	}
	rec, _ := cfg.Run("ior", seed, seed, iosim.DefaultParams())
	return rec, nil
}

// SimulateIORTuned is SimulateIOR with the paper's IOR fix applied: seek
// once before the first read instead of before every read (Section 4.1.2).
func SimulateIORTuned(cmdline string, nprocs int, seed int64) (*Record, error) {
	cfg, err := workload.ParseIORFlags(cmdline)
	if err != nil {
		return nil, err
	}
	if nprocs > 0 {
		cfg.NProcs = nprocs
	}
	cfg.SeekPerRead = false
	rec, _ := cfg.Run("ior", seed, seed, iosim.DefaultParams())
	return rec, nil
}
