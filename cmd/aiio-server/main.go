// Command aiio-server runs the AIIO web service of Section 3.4 / Fig. 17:
// it loads pre-trained performance functions from a model registry and
// serves job-level diagnoses over HTTP.
//
//	aiio-server -models models/ -addr :8080 [-parallel N] [-drain 30s]
//	            [-request-timeout 2m] [-max-body 16777216]
//	            [-max-inflight 16] [-queue-depth 64] [-breaker-threshold 5]
//
// Endpoints:
//
//	GET  /healthz                  liveness (process up)
//	GET  /readyz                   readiness (serving traffic; red while
//	                               draining, with every circuit breaker
//	                               open, or with no model generation)
//	GET  /api/v1/models            registered models
//	POST /api/v1/models            upload a pre-trained model (?name=&kind=)
//	                               — validated hot-swap with rollback,
//	                               persisted as a new registry generation
//	POST /api/v1/diagnose          Darshan text log -> JSON diagnosis
//	POST /api/v1/diagnose/batch    stream of logs -> JSON diagnosis array
//	POST /api/v1/jobs              stream of logs -> durable job log ingest
//	                               (with -joblog-dir; fsync before ack,
//	                               deduplicated so retries are idempotent;
//	                               -retrain-after N triggers a background
//	                               incremental retrain + validated hot-swap)
//	GET  /api/v1/generations       replication handshake: registry + serving
//	                               generation and content fingerprint
//	GET  /api/v1/generations/{id}  generation manifest JSON;
//	     .../{id}/files/{file}     raw model bytes (SHA-256-verified by the
//	                               pulling peer before hot-swap)
//
// With -peers, the server pulls newer model generations from its peer
// replicas every -sync-interval and hot-swaps them after verification, so
// an upload or retrain on any replica converges the fleet. With
// -coalesce-window, concurrent single-job diagnoses fuse into micro-batches
// (see cmd/aiio-router for the fleet-front affinity router).
//
// The diagnosis endpoints sit behind a bounded admission queue: at most
// -max-inflight requests execute concurrently per endpoint, at most
// -queue-depth wait, and everything beyond that is shed immediately with
// 429 + Retry-After. Each model carries a circuit breaker that takes it
// out of rotation after -breaker-threshold consecutive failures.
//
// Models are loaded from the versioned, checksummed registry: a corrupt
// generation is rejected and the newest older generation serves instead
// (surfaced on /readyz), so a torn write or bit rot degrades the server
// rather than killing it.
//
// On SIGINT/SIGTERM the server goes not-ready, drains in-flight diagnoses
// for up to the -drain timeout, then closes the listener, so a redeploy
// never discards work already underway.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/hpc-repro/aiio/internal/admission"
	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/joblog"
	"github.com/hpc-repro/aiio/internal/replica"
	"github.com/hpc-repro/aiio/internal/shap"
	"github.com/hpc-repro/aiio/internal/webservice"
)

func main() {
	modelsDir := flag.String("models", "models", "model registry directory")
	addr := flag.String("addr", ":8080", "listen address")
	interp := flag.String("interpreter", "shap", "shap, treeshap or lime")
	shapMode := flag.String("shap-mode", "auto",
		"SHAP estimator: auto (exact TreeSHAP for tree models, Kernel SHAP otherwise), kernel, or tree")
	parallel := flag.Int("parallel", 0, "diagnosis worker pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 0,
		"diagnosis result cache entries (0 = default 1024, negative disables)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain timeout for in-flight diagnoses")
	requestTimeout := flag.Duration("request-timeout", 2*time.Minute,
		"per-request diagnosis deadline; expired requests get a structured 503 (0 = none)")
	maxBody := flag.Int64("max-body", webservice.DefaultMaxBody,
		"request body cap in bytes for a single log; batch and model uploads get 4x (oversized = 413)")
	maxInflight := flag.Int("max-inflight", admission.DefaultMaxInflight,
		"concurrent diagnoses per endpoint; excess queues then sheds with 429")
	queueDepth := flag.Int("queue-depth", admission.DefaultQueueDepth,
		"requests allowed to wait for a diagnosis slot (negative = shed immediately)")
	retryAfter := flag.Duration("retry-after", admission.DefaultRetryAfter,
		"Retry-After hint handed to shed clients")
	breakerThreshold := flag.Int("breaker-threshold", 5,
		"consecutive failures that open a model's circuit breaker (0 disables breakers)")
	breakerCooldown := flag.Duration("breaker-cooldown", 30*time.Second,
		"how long an open breaker waits before probing its model again")
	joblogDir := flag.String("joblog-dir", "",
		"durable job log directory; enables POST /api/v1/jobs streaming ingest (empty disables)")
	retrainAfter := flag.Int("retrain-after", 0,
		"ingest backlog size that triggers a background incremental retrain (0 disables)")
	retrainWindow := flag.Int("retrain-window", 20000,
		"historical records blended into each incremental retrain")
	retrainMinibatch := flag.Int("retrain-minibatch", 512,
		"records per backlog drain mini-batch")
	retrainFast := flag.Bool("retrain-fast", false,
		"reduced training budgets for incremental retrains")
	retrainWarm := flag.Bool("warm-start", true,
		"seed incremental retrains from the previous generation on a reduced budget (per-model cold fallback on schema/drift)")
	retrainWarmBudget := flag.Float64("warm-budget", core.DefaultWarmBudgetFrac,
		"fraction of the cold budget warm-started models train for")
	ingestInflight := flag.Int("ingest-inflight", 0,
		"concurrent ingest requests (its own admission budget; 0 = the -max-inflight default)")
	coalesceWindow := flag.Duration("coalesce-window", webservice.DefaultCoalesceWindow,
		"micro-batch window: single-job diagnoses arriving within it fuse into one batch pass (0 disables)")
	coalesceMax := flag.Int("coalesce-max", webservice.DefaultCoalesceMax,
		"requests per fused micro-batch; a full batch dispatches before the window expires")
	peers := flag.String("peers", "",
		"comma-separated peer replica base URLs; enables pull-based model generation replication")
	syncInterval := flag.Duration("sync-interval", replica.DefaultSyncInterval,
		"how often to poll -peers for newer model generations")
	flag.Parse()

	store := core.OpenStore(*modelsDir)
	ens, rep, err := store.Load()
	if err != nil {
		log.Fatalf("aiio-server: load models: %v", err)
	}
	for _, rej := range rep.Rejected {
		log.Printf("aiio-server: registry generation %d rejected: %s", rej.Generation, rej.Err)
	}
	if rep.FellBack {
		log.Printf("aiio-server: WARNING: serving fallback generation %d — newest generation failed verification",
			rep.Generation)
	}

	opts := core.DefaultDiagnoseOptions()
	opts.Interpreter = core.Interpreter(*interp)
	mode, err := shap.ParseMode(*shapMode)
	if err != nil {
		log.Fatalf("aiio-server: %v", err)
	}
	opts.SHAPMode = mode
	opts.Parallelism = *parallel

	ws := webservice.NewServer(ens, opts)
	ws.RequestTimeout = *requestTimeout
	ws.MaxBody = *maxBody
	ws.CacheSize = *cacheSize
	ws.Store = store
	ws.SetGeneration(rep)
	ws.CoalesceWindow = *coalesceWindow
	ws.CoalesceMax = *coalesceMax
	ws.Admission = admission.NewController(admission.Config{
		MaxInflight: *maxInflight,
		QueueDepth:  *queueDepth,
		RetryAfter:  *retryAfter,
	})
	if *ingestInflight > 0 {
		// Ingest is cheap I/O next to the compute-heavy diagnoses; its own
		// budget keeps a log-shipping burst from starving diagnosis slots
		// and vice versa.
		ws.Admission.SetConfig(webservice.IngestEndpoint, admission.Config{
			MaxInflight: *ingestInflight,
			QueueDepth:  *queueDepth,
			RetryAfter:  *retryAfter,
		})
	}
	if *joblogDir != "" {
		jl, err := joblog.Open(*joblogDir, joblog.Options{})
		if err != nil {
			log.Fatalf("aiio-server: open joblog: %v", err)
		}
		defer jl.Close()
		if rec := jl.Recovery(); rec.TornBytes > 0 || rec.Quarantined > 0 || rec.ResealedSegments > 0 {
			log.Printf("aiio-server: joblog recovery truncated %d torn bytes, quarantined %d records, resealed %d segments",
				rec.TornBytes, rec.Quarantined, rec.ResealedSegments)
		}
		ws.JobLog = jl
		ws.RetrainThreshold = *retrainAfter
		topts := core.DefaultTrainOptions()
		topts.Fast = *retrainFast
		topts.WarmStart = *retrainWarm
		topts.WarmBudgetFrac = *retrainWarmBudget
		ws.Retrainer = func(ctx context.Context) (*core.Ensemble, uint64, error) {
			rep, err := core.RunIncremental(ctx, jl, store, core.IncrementalOptions{
				MiniBatch: *retrainMinibatch,
				Window:    *retrainWindow,
				Train:     topts,
			})
			if err != nil {
				return nil, 0, err
			}
			ens, _, err := store.Load()
			if err != nil {
				return nil, 0, err
			}
			log.Printf("aiio-server: incremental retrain committed generation %d (%d new jobs)",
				rep.Generation, rep.NewRecords)
			return ens, rep.Generation, nil
		}
	}
	if *breakerThreshold > 0 {
		ws.Breakers = admission.NewBreakerSet(admission.BreakerConfig{
			Threshold: *breakerThreshold,
			Cooldown:  *breakerCooldown,
		})
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           ws.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *peers != "" {
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, strings.TrimRight(p, "/"))
			}
		}
		sy := &replica.Syncer{
			Store:    store,
			Peers:    peerList,
			Interval: *syncInterval,
			Current: func() (uint64, string) {
				if rep := ws.GenerationReport(); rep != nil {
					return rep.Generation, rep.Fingerprint
				}
				return 0, ""
			},
			OnAdopt: func(ens *core.Ensemble, gen uint64, fp string) error {
				return ws.AdoptGeneration(ens, &core.LoadReport{Generation: gen, Fingerprint: fp})
			},
			Logf: log.Printf,
		}
		go sy.Run(ctx)
		log.Printf("aiio-server: replicating model generations from %d peer(s) every %s",
			len(peerList), *syncInterval)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	gen := "legacy flat layout"
	if !rep.Legacy {
		gen = fmt.Sprintf("generation %d", rep.Generation)
	}
	fmt.Printf("aiio-server: %d models loaded from %s (%s), listening on %s\n",
		len(ens.Models), *modelsDir, gen, *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("aiio-server: %v", err)
		}
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills hard
		log.Printf("aiio-server: shutting down, draining for up to %s", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Go not-ready and let admitted diagnoses finish before the
		// listener closes: load balancers see /readyz flip red while the
		// in-flight work runs down, then Shutdown closes idle connections.
		if err := ws.Drain(shutCtx); err != nil {
			log.Printf("aiio-server: drain incomplete: %v", err)
		}
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("aiio-server: shutdown incomplete: %v", err)
		}
	}
}
