// Command aiio-server runs the AIIO web service of Section 3.4 / Fig. 17:
// it loads pre-trained performance functions from a model registry and
// serves job-level diagnoses over HTTP.
//
//	aiio-server -models models/ -addr :8080 [-parallel N] [-drain 30s]
//	            [-request-timeout 2m] [-max-body 16777216]
//	            [-max-inflight 16] [-queue-depth 64] [-breaker-threshold 5]
//
// Endpoints:
//
//	GET  /healthz                  liveness (process up)
//	GET  /readyz                   readiness (serving traffic; red while
//	                               draining, with every circuit breaker
//	                               open, or with no model generation)
//	GET  /api/v1/models            registered models
//	POST /api/v1/models            upload a pre-trained model (?name=&kind=)
//	                               — validated hot-swap with rollback,
//	                               persisted as a new registry generation
//	POST /api/v1/diagnose          Darshan text log -> JSON diagnosis
//	POST /api/v1/diagnose/batch    stream of logs -> JSON diagnosis array
//	POST /api/v1/jobs              stream of logs -> durable job log ingest
//	                               (with -joblog-dir; fsync before ack,
//	                               deduplicated so retries are idempotent;
//	                               -retrain-after N triggers a background
//	                               incremental retrain + validated hot-swap)
//	GET  /api/v1/drift             drift monitor status + lifecycle decision
//	                               history (with -drift-psi)
//	GET  /api/v1/generations       replication handshake: registry + serving
//	                               generation and content fingerprint
//	GET  /api/v1/generations/{id}  generation manifest JSON;
//	     .../{id}/files/{file}     raw model bytes (SHA-256-verified by the
//	                               pulling peer before hot-swap)
//
// With -drift-psi, every durably ingested job feeds a drift monitor: a
// distribution shift (per-counter PSI against the serving generation's
// reference snapshot) or a rolling prediction-error spike triggers the same
// single-flight retrain the backlog threshold does. The retrain is
// canary-gated (-canary-holdout): a candidate that cannot match the serving
// ensemble on held-out jobs is never committed. With -rollback-ratio, each
// auto-promotion is watched; if serving error spikes past the pre-promotion
// baseline, the server rolls back to the previous generation durably
// (registry CURRENT) and in memory (validated hot-swap). Every decision is
// visible on GET /api/v1/drift, /healthz, and as diagnosis advisories.
//
// With -peers, the server pulls newer model generations from its peer
// replicas every -sync-interval and hot-swaps them after verification, so
// an upload or retrain on any replica converges the fleet. With
// -coalesce-window, concurrent single-job diagnoses fuse into micro-batches
// (see cmd/aiio-router for the fleet-front affinity router).
//
// The diagnosis endpoints sit behind a bounded admission queue: at most
// -max-inflight requests execute concurrently per endpoint, at most
// -queue-depth wait, and everything beyond that is shed immediately with
// 429 + Retry-After. Each model carries a circuit breaker that takes it
// out of rotation after -breaker-threshold consecutive failures.
//
// Models are loaded from the versioned, checksummed registry: a corrupt
// generation is rejected and the newest older generation serves instead
// (surfaced on /readyz), so a torn write or bit rot degrades the server
// rather than killing it.
//
// On SIGINT/SIGTERM the server goes not-ready, drains in-flight diagnoses
// for up to the -drain timeout, then closes the listener, so a redeploy
// never discards work already underway.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/hpc-repro/aiio/internal/admission"
	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/drift"
	"github.com/hpc-repro/aiio/internal/joblog"
	"github.com/hpc-repro/aiio/internal/replica"
	"github.com/hpc-repro/aiio/internal/shap"
	"github.com/hpc-repro/aiio/internal/webservice"
)

// storeCrashEnv is the fault-injection hook for the CI chaos drill:
// AIIO_STORE_CRASH=<step>:<n> kills the process (exit 3) the n-th time the
// model registry reaches the named durable save step (model-write,
// model-sync, manifest-write, gen-commit, current-commit) — a real process
// death mid-promotion or mid-rollback, not a returned error, so restart
// recovery is exercised against exactly the partial state a power cut
// would leave.
const storeCrashEnv = "AIIO_STORE_CRASH"

func installStoreCrashHook(store *core.Store) {
	spec := os.Getenv(storeCrashEnv)
	if spec == "" {
		return
	}
	step, countStr, ok := strings.Cut(spec, ":")
	if !ok {
		log.Fatalf("aiio-server: %s must be <step>:<n>, got %q", storeCrashEnv, spec)
	}
	n, err := strconv.Atoi(countStr)
	if err != nil || n < 1 {
		log.Fatalf("aiio-server: %s count %q must be a positive integer", storeCrashEnv, countStr)
	}
	seen := 0
	store.SetSaveHook(func(s, path string) error {
		if s == step {
			seen++
			if seen >= n {
				fmt.Fprintf(os.Stderr, "aiio-server: injected crash at %s (%s), occurrence %d\n", s, path, seen)
				os.Exit(3)
			}
		}
		return nil
	})
}

func main() {
	modelsDir := flag.String("models", "models", "model registry directory")
	addr := flag.String("addr", ":8080", "listen address")
	interp := flag.String("interpreter", "shap", "shap, treeshap or lime")
	shapMode := flag.String("shap-mode", "auto",
		"SHAP estimator: auto (exact TreeSHAP for tree models, Kernel SHAP otherwise), kernel, or tree")
	parallel := flag.Int("parallel", 0, "diagnosis worker pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 0,
		"diagnosis result cache entries (0 = default 1024, negative disables)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain timeout for in-flight diagnoses")
	requestTimeout := flag.Duration("request-timeout", 2*time.Minute,
		"per-request diagnosis deadline; expired requests get a structured 503 (0 = none)")
	maxBody := flag.Int64("max-body", webservice.DefaultMaxBody,
		"request body cap in bytes for a single log; batch and model uploads get 4x (oversized = 413)")
	maxInflight := flag.Int("max-inflight", admission.DefaultMaxInflight,
		"concurrent diagnoses per endpoint; excess queues then sheds with 429")
	queueDepth := flag.Int("queue-depth", admission.DefaultQueueDepth,
		"requests allowed to wait for a diagnosis slot (negative = shed immediately)")
	retryAfter := flag.Duration("retry-after", admission.DefaultRetryAfter,
		"Retry-After hint handed to shed clients")
	breakerThreshold := flag.Int("breaker-threshold", 5,
		"consecutive failures that open a model's circuit breaker (0 disables breakers)")
	breakerCooldown := flag.Duration("breaker-cooldown", 30*time.Second,
		"how long an open breaker waits before probing its model again")
	joblogDir := flag.String("joblog-dir", "",
		"durable job log directory; enables POST /api/v1/jobs streaming ingest (empty disables)")
	retrainAfter := flag.Int("retrain-after", 0,
		"ingest backlog size that triggers a background incremental retrain (0 disables)")
	retrainWindow := flag.Int("retrain-window", 20000,
		"historical records blended into each incremental retrain")
	retrainMinibatch := flag.Int("retrain-minibatch", 512,
		"records per backlog drain mini-batch")
	retrainFast := flag.Bool("retrain-fast", false,
		"reduced training budgets for incremental retrains")
	retrainModels := flag.String("retrain-models", "",
		"comma-separated subset of models incremental retrains fit (default all)")
	retrainWarm := flag.Bool("warm-start", true,
		"seed incremental retrains from the previous generation on a reduced budget (per-model cold fallback on schema/drift)")
	retrainWarmBudget := flag.Float64("warm-budget", core.DefaultWarmBudgetFrac,
		"fraction of the cold budget warm-started models train for")
	ingestInflight := flag.Int("ingest-inflight", 0,
		"concurrent ingest requests (its own admission budget; 0 = the -max-inflight default)")
	coalesceWindow := flag.Duration("coalesce-window", webservice.DefaultCoalesceWindow,
		"micro-batch window: single-job diagnoses arriving within it fuse into one batch pass (0 disables)")
	coalesceMax := flag.Int("coalesce-max", webservice.DefaultCoalesceMax,
		"requests per fused micro-batch; a full batch dispatches before the window expires")
	peers := flag.String("peers", "",
		"comma-separated peer replica base URLs; enables pull-based model generation replication")
	syncInterval := flag.Duration("sync-interval", replica.DefaultSyncInterval,
		"how often to poll -peers for newer model generations")
	driftPSI := flag.Float64("drift-psi", 0,
		"PSI threshold that trips the input-distribution detector and triggers a canary-gated retrain (0 disables drift monitoring)")
	driftMinSamples := flag.Int("drift-min-samples", 0,
		"ingested jobs required in the live window before PSI is judged (0 = default 200)")
	driftWindow := flag.Int("drift-window", 0,
		"rotating live-window size in jobs for the PSI detector (0 = default 2000)")
	driftErrorRatio := flag.Float64("drift-error-ratio", 0,
		"rolling/baseline RMSE ratio that trips the prediction-error detector (0 = default 1.5)")
	driftMinErrors := flag.Int("drift-min-errors", 0,
		"labeled jobs required before the prediction-error detector is judged (0 = default 50)")
	canaryHoldout := flag.Int("canary-holdout", 64,
		"held-out jobs the canary gate judges a retrained candidate on before promotion (0 disables the gate; active with -drift-psi)")
	canaryTolerance := flag.Float64("canary-tolerance", 0,
		"fraction a candidate's holdout RMSE may exceed the serving ensemble's before the gate blocks it (0 = default 0.10)")
	rollbackRatio := flag.Float64("rollback-ratio", 0,
		"post-promotion rolling RMSE at or over this multiple of the pre-promotion baseline rolls back to the previous generation (0 disables)")
	rollbackWatch := flag.Int("rollback-watch", 0,
		"labeled jobs the post-promotion watch covers before a promotion is judged safe (0 = default 200)")
	flag.Parse()

	store := core.OpenStore(*modelsDir)
	installStoreCrashHook(store)
	ens, rep, err := store.Load()
	if err != nil {
		log.Fatalf("aiio-server: load models: %v", err)
	}
	for _, rej := range rep.Rejected {
		log.Printf("aiio-server: registry generation %d rejected: %s", rej.Generation, rej.Err)
	}
	if rep.FellBack {
		log.Printf("aiio-server: WARNING: serving fallback generation %d — newest generation failed verification",
			rep.Generation)
	}

	opts := core.DefaultDiagnoseOptions()
	opts.Interpreter = core.Interpreter(*interp)
	mode, err := shap.ParseMode(*shapMode)
	if err != nil {
		log.Fatalf("aiio-server: %v", err)
	}
	opts.SHAPMode = mode
	opts.Parallelism = *parallel

	ws := webservice.NewServer(ens, opts)
	ws.RequestTimeout = *requestTimeout
	ws.MaxBody = *maxBody
	ws.CacheSize = *cacheSize
	ws.Store = store
	ws.SetGeneration(rep)
	ws.CoalesceWindow = *coalesceWindow
	ws.CoalesceMax = *coalesceMax
	ws.Admission = admission.NewController(admission.Config{
		MaxInflight: *maxInflight,
		QueueDepth:  *queueDepth,
		RetryAfter:  *retryAfter,
	})
	if *ingestInflight > 0 {
		// Ingest is cheap I/O next to the compute-heavy diagnoses; its own
		// budget keeps a log-shipping burst from starving diagnosis slots
		// and vice versa.
		ws.Admission.SetConfig(webservice.IngestEndpoint, admission.Config{
			MaxInflight: *ingestInflight,
			QueueDepth:  *queueDepth,
			RetryAfter:  *retryAfter,
		})
	}
	if *driftPSI > 0 {
		ws.Drift = drift.New(drift.Config{
			PSIThreshold: *driftPSI,
			MinSamples:   *driftMinSamples,
			Window:       *driftWindow,
			ErrorRatio:   *driftErrorRatio,
			MinErrors:    *driftMinErrors,
		})
		ws.RollbackRatio = *rollbackRatio
		ws.RollbackWatch = *rollbackWatch
		// Re-arm against the serving generation's persisted reference so a
		// restart resumes watching the same world the generation was trained
		// in; with no persisted reference the monitor self-arms from live
		// traffic.
		if data, err := store.Reference(rep.Generation); err == nil && data != nil {
			if ref, perr := drift.ParseReference(data); perr == nil {
				ws.Drift.SetReference(ref)
				log.Printf("aiio-server: drift monitor armed from generation %d reference (%d jobs)",
					rep.Generation, ref.Jobs)
			}
		}
	}
	if *joblogDir != "" {
		jl, err := joblog.Open(*joblogDir, joblog.Options{})
		if err != nil {
			log.Fatalf("aiio-server: open joblog: %v", err)
		}
		defer jl.Close()
		if rec := jl.Recovery(); rec.TornBytes > 0 || rec.Quarantined > 0 || rec.ResealedSegments > 0 {
			log.Printf("aiio-server: joblog recovery truncated %d torn bytes, quarantined %d records, resealed %d segments",
				rec.TornBytes, rec.Quarantined, rec.ResealedSegments)
		}
		ws.JobLog = jl
		ws.RetrainThreshold = *retrainAfter
		topts := core.DefaultTrainOptions()
		topts.Fast = *retrainFast
		topts.WarmStart = *retrainWarm
		topts.WarmBudgetFrac = *retrainWarmBudget
		if *retrainModels != "" {
			topts.Models = strings.Split(*retrainModels, ",")
		}
		incOpts := core.IncrementalOptions{
			MiniBatch: *retrainMinibatch,
			Window:    *retrainWindow,
			Train:     topts,
		}
		if ws.Drift != nil && *canaryHoldout > 0 {
			// The canary gate: a retrained candidate must match the serving
			// ensemble on held-out jobs before it is committed. The admitted
			// generation carries a fresh drift reference built from its own
			// training set, so the monitor always judges the serving world.
			incOpts.Holdout = *canaryHoldout
			incOpts.Gate = drift.Gate(drift.GateConfig{Tolerance: *canaryTolerance}, ws.ServingEnsemble)
			incOpts.Reference = func(training []*darshan.Record, verdict *core.CanaryRecord) []byte {
				ref := drift.BuildReference(training)
				if verdict != nil {
					ref.BaselineRMSE = verdict.CandidateRMSE
				}
				data, _ := ref.Marshal()
				return data
			}
		}
		ws.Retrainer = func(ctx context.Context) (*core.Ensemble, uint64, error) {
			rep, err := core.RunIncremental(ctx, jl, store, incOpts)
			if err != nil {
				var blocked *core.CanaryBlockedError
				if errors.As(err, &blocked) && blocked.Verdict != nil {
					log.Printf("aiio-server: canary gate blocked retrained candidate: %s", blocked.Verdict.Reason)
				}
				return nil, 0, err
			}
			ens, _, err := store.Load()
			if err != nil {
				return nil, 0, err
			}
			log.Printf("aiio-server: incremental retrain committed generation %d (%d new jobs)",
				rep.Generation, rep.NewRecords)
			return ens, rep.Generation, nil
		}
	}
	if *breakerThreshold > 0 {
		ws.Breakers = admission.NewBreakerSet(admission.BreakerConfig{
			Threshold: *breakerThreshold,
			Cooldown:  *breakerCooldown,
		})
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           ws.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *peers != "" {
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, strings.TrimRight(p, "/"))
			}
		}
		sy := &replica.Syncer{
			Store:    store,
			Peers:    peerList,
			Interval: *syncInterval,
			Current: func() (uint64, string) {
				if rep := ws.GenerationReport(); rep != nil {
					return rep.Generation, rep.Fingerprint
				}
				return 0, ""
			},
			OnAdopt: func(ens *core.Ensemble, gen uint64, fp string) error {
				return ws.AdoptGeneration(ens, &core.LoadReport{Generation: gen, Fingerprint: fp})
			},
			Logf: log.Printf,
		}
		go sy.Run(ctx)
		log.Printf("aiio-server: replicating model generations from %d peer(s) every %s",
			len(peerList), *syncInterval)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	gen := "legacy flat layout"
	if !rep.Legacy {
		gen = fmt.Sprintf("generation %d", rep.Generation)
	}
	fmt.Printf("aiio-server: %d models loaded from %s (%s), listening on %s\n",
		len(ens.Models), *modelsDir, gen, *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("aiio-server: %v", err)
		}
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills hard
		log.Printf("aiio-server: shutting down, draining for up to %s", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Go not-ready and let admitted diagnoses finish before the
		// listener closes: load balancers see /readyz flip red while the
		// in-flight work runs down, then Shutdown closes idle connections.
		if err := ws.Drain(shutCtx); err != nil {
			log.Printf("aiio-server: drain incomplete: %v", err)
		}
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("aiio-server: shutdown incomplete: %v", err)
		}
	}
}
