// Command aiio-server runs the AIIO web service of Section 3.4 / Fig. 17:
// it loads pre-trained performance functions from a model registry and
// serves job-level diagnoses over HTTP.
//
//	aiio-server -models models/ -addr :8080
//
// Endpoints:
//
//	GET  /healthz             liveness
//	GET  /api/v1/models       registered models
//	POST /api/v1/models       upload a pre-trained model (?name=&kind=)
//	POST /api/v1/diagnose     Darshan text log -> JSON diagnosis
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/webservice"
)

func main() {
	modelsDir := flag.String("models", "models", "model registry directory")
	addr := flag.String("addr", ":8080", "listen address")
	interp := flag.String("interpreter", "shap", "shap or lime")
	flag.Parse()

	ens, err := core.LoadEnsemble(*modelsDir)
	if err != nil {
		log.Fatalf("aiio-server: load models: %v", err)
	}
	opts := core.DefaultDiagnoseOptions()
	opts.Interpreter = core.Interpreter(*interp)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           webservice.NewServer(ens, opts).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("aiio-server: %d models loaded from %s, listening on %s\n",
		len(ens.Models), *modelsDir, *addr)
	log.Fatal(srv.ListenAndServe())
}
