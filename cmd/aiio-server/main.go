// Command aiio-server runs the AIIO web service of Section 3.4 / Fig. 17:
// it loads pre-trained performance functions from a model registry and
// serves job-level diagnoses over HTTP.
//
//	aiio-server -models models/ -addr :8080 [-parallel N] [-drain 30s]
//	            [-request-timeout 2m] [-max-body 16777216]
//
// Endpoints:
//
//	GET  /healthz                  liveness
//	GET  /api/v1/models            registered models
//	POST /api/v1/models            upload a pre-trained model (?name=&kind=)
//	POST /api/v1/diagnose          Darshan text log -> JSON diagnosis
//	POST /api/v1/diagnose/batch    stream of logs -> JSON diagnosis array
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight diagnoses for up to the -drain timeout before exiting, so a
// redeploy never discards work already underway.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/shap"
	"github.com/hpc-repro/aiio/internal/webservice"
)

func main() {
	modelsDir := flag.String("models", "models", "model registry directory")
	addr := flag.String("addr", ":8080", "listen address")
	interp := flag.String("interpreter", "shap", "shap, treeshap or lime")
	shapMode := flag.String("shap-mode", "auto",
		"SHAP estimator: auto (exact TreeSHAP for tree models, Kernel SHAP otherwise), kernel, or tree")
	parallel := flag.Int("parallel", 0, "diagnosis worker pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 0,
		"diagnosis result cache entries (0 = default 1024, negative disables)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain timeout for in-flight diagnoses")
	requestTimeout := flag.Duration("request-timeout", 2*time.Minute,
		"per-request diagnosis deadline; expired requests get a structured 503 (0 = none)")
	maxBody := flag.Int64("max-body", webservice.DefaultMaxBody,
		"request body cap in bytes for a single log; batch and model uploads get 4x (oversized = 413)")
	flag.Parse()

	ens, err := core.LoadEnsemble(*modelsDir)
	if err != nil {
		log.Fatalf("aiio-server: load models: %v", err)
	}
	opts := core.DefaultDiagnoseOptions()
	opts.Interpreter = core.Interpreter(*interp)
	mode, err := shap.ParseMode(*shapMode)
	if err != nil {
		log.Fatalf("aiio-server: %v", err)
	}
	opts.SHAPMode = mode
	opts.Parallelism = *parallel

	ws := webservice.NewServer(ens, opts)
	ws.RequestTimeout = *requestTimeout
	ws.MaxBody = *maxBody
	ws.CacheSize = *cacheSize
	srv := &http.Server{
		Addr:              *addr,
		Handler:           ws.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("aiio-server: %d models loaded from %s, listening on %s\n",
		len(ens.Models), *modelsDir, *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("aiio-server: %v", err)
		}
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills hard
		log.Printf("aiio-server: shutting down, draining for up to %s", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("aiio-server: drain incomplete: %v", err)
		}
	}
}
