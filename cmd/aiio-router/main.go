// Command aiio-router fronts a fleet of aiio-server replicas with
// consistent-hash affinity routing:
//
//	aiio-router -replicas http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	            [-addr :8080] [-vnodes 128] [-fail-threshold 3]
//	            [-probe-interval 2s] [-request-timeout 2m] [-max-body N]
//
// Every job-carrying request is hashed by its body onto a consistent-hash
// ring over the healthy replicas, so repeat diagnoses of the same job land
// on the same replica's LRU cache. Replicas are health-gated by their own
// /readyz (polled every -probe-interval; -fail-threshold consecutive
// failures remove one from the ring, a single success restores it). When
// an owner sheds with 429, answers 5xx, or drops the connection, the
// buffered body replays against the next member in ring order — a killed
// replica costs a failover, not a lost request.
//
// The router holds no model state: replicas replicate generations among
// themselves (aiio-server -peers), so any number of routers can front the
// same fleet.
//
// Endpoints: /healthz (member table + counters), /readyz (≥1 healthy
// replica), everything else proxied.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/hpc-repro/aiio/internal/replica"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs (required)")
	vnodes := flag.Int("vnodes", replica.DefaultVirtualNodes, "virtual nodes per replica on the hash ring")
	failThreshold := flag.Int("fail-threshold", replica.DefaultFailThreshold,
		"consecutive probe/transport failures that take a replica off the ring")
	probeInterval := flag.Duration("probe-interval", replica.DefaultProbeInterval,
		"how often to poll each replica's /readyz")
	probeTimeout := flag.Duration("probe-timeout", replica.DefaultProbeTimeout,
		"per-probe deadline")
	requestTimeout := flag.Duration("request-timeout", 2*time.Minute,
		"end-to-end proxy deadline per request, spanning all failover attempts (0 = none)")
	maxBody := flag.Int64("max-body", replica.DefaultRouterMaxBody,
		"request body cap in bytes (bodies are buffered for failover replay)")
	flag.Parse()

	var members []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			members = append(members, strings.TrimRight(r, "/"))
		}
	}
	if len(members) == 0 {
		log.Fatal("aiio-router: -replicas is required (comma-separated base URLs)")
	}

	rt := replica.NewRouter(replica.RouterConfig{
		Replicas:      members,
		VirtualNodes:  *vnodes,
		FailThreshold: *failThreshold,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		MaxBody:       *maxBody,
	})

	handler := rt.Handler()
	if *requestTimeout > 0 {
		inner := handler
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), *requestTimeout)
			defer cancel()
			inner.ServeHTTP(w, r.WithContext(ctx))
		})
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go rt.Run(ctx)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("aiio-router: routing over %d replicas, listening on %s\n", len(members), *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("aiio-router: %v", err)
		}
	case <-ctx.Done():
		stop()
		shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("aiio-router: shutdown incomplete: %v", err)
		}
	}
}
