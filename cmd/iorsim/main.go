// Command iorsim runs an IOR command line against the simulated parallel
// file system and emits the resulting Darshan log:
//
//	iorsim -nprocs 256 -o job.darshan ior -w -t 1k -b 1m -Y
//
// The IOR flags follow Table 3 of the paper (-w/-r, -t, -b, -s, -z, -Y, -F,
// -a POSIX). The output log can be fed to "aiio diagnose" or to the web
// service.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/iosim"
	"github.com/hpc-repro/aiio/internal/workload"
)

func main() {
	nprocs := flag.Int("nprocs", 256, "MPI task count")
	stripeSize := flag.String("stripe-size", "1m", "Lustre stripe size")
	stripeWidth := flag.Int("stripe-width", 1, "Lustre stripe width (OST count)")
	seed := flag.Int64("seed", 1, "simulation seed")
	noSeekPerRead := flag.Bool("no-seek-per-read", false,
		"apply the paper's IOR fix: seek only before the first read")
	out := flag.String("o", "", "output Darshan log (default stdout)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "iorsim: missing IOR command line, e.g.: iorsim ior -w -t 1k -b 1m -Y")
		os.Exit(2)
	}
	cfg, err := workload.ParseIORFlags(strings.Join(flag.Args(), " "))
	if err != nil {
		fmt.Fprintf(os.Stderr, "iorsim: %v\n", err)
		os.Exit(1)
	}
	cfg.NProcs = *nprocs
	sz, err := workload.ParseSize(*stripeSize)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iorsim: %v\n", err)
		os.Exit(1)
	}
	cfg.FS = iosim.FSConfig{StripeSize: sz, StripeWidth: *stripeWidth}
	if *noSeekPerRead {
		cfg.SeekPerRead = false
	}

	rec, res := cfg.Run("ior", 1, *seed, iosim.DefaultParams())
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iorsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := darshan.WriteLog(w, rec); err != nil {
		fmt.Fprintf(os.Stderr, "iorsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "performance: %.2f MiB/s (slowest process %.4fs, %d procs)\n",
		res.PerfMiBps, res.SlowestSeconds, *nprocs)
}
