// Command paperbench regenerates every table and figure of the paper's
// evaluation section in one run, printing the text artifacts:
//
//	paperbench [-full]
//
// -full runs closer to the paper's workload sizes (256-task IOR, the full
// E2E grid) and takes several minutes; the default reduced scale finishes in
// well under a minute. EXPERIMENTS.md records a captured run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/hpc-repro/aiio/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "paper-scale workloads (slow)")
	flag.Parse()

	e := experiments.NewEnv(!*full)
	start := time.Now()
	fmt.Printf("AIIO paper reproduction — %s scale, database of %d simulated jobs\n",
		scaleName(*full), e.DBJobs)
	if err := experiments.RunAll(e, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ncompleted in %s\n", time.Since(start).Round(time.Millisecond))
}

func scaleName(full bool) string {
	if full {
		return "full"
	}
	return "reduced"
}
