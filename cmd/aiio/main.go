// Command aiio is the command-line interface to the AIIO reproduction:
//
//	aiio gen-db    -jobs 3000 -seed 1 -o db.darshan
//	aiio train     -db db.darshan -models models/ [-fast] [-lenient]
//	aiio diagnose  -models models/ -log job.darshan [-top 9] [-interpreter shap|lime] [-shap-mode auto|kernel|tree] [-timeout 30s]
//	aiio experiment -id all [-fast] [-shap-mode auto|kernel|tree] (table1|table2|table3|fig1|fig4..fig17)
//	aiio ingest    -joblog-dir joblog (-db db.darshan | -gen N) [-server URL] [-batch 256]
//	aiio retrain   -joblog-dir joblog -models models/ [-minibatch 512] [-window 20000] [-fast]
//	aiio joblog    -dir joblog [-compact]
//	aiio quarantine <ls|show|purge> [-dir joblog] [-n index]
//
// gen-db simulates the historical I/O log database, train fits the five
// performance functions, diagnose prints a job's bottleneck waterfall, and
// experiment regenerates the paper's tables and figures. ingest appends
// jobs to the crash-safe write-ahead job log (deduplicated, so retries are
// idempotent), retrain drains its backlog into a new model generation, and
// joblog inspects or compacts the log.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/experiments"
	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/logdb"
	"github.com/hpc-repro/aiio/internal/report"
	"github.com/hpc-repro/aiio/internal/rules"
	"github.com/hpc-repro/aiio/internal/shap"
	"github.com/hpc-repro/aiio/internal/tune"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen-db":
		err = cmdGenDB(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "diagnose":
		err = cmdDiagnose(os.Args[2:])
	case "experiment":
		err = cmdExperiment(os.Args[2:])
	case "ingest":
		err = cmdIngest(os.Args[2:])
	case "retrain":
		err = cmdRetrain(os.Args[2:])
	case "joblog":
		err = cmdJobLog(os.Args[2:])
	case "quarantine":
		err = cmdQuarantine(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "aiio: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "aiio: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: aiio <command> [flags]

commands:
  gen-db      generate a synthetic I/O log database (Table 1 substitute)
  train       train the five performance functions on a database
  diagnose    diagnose one Darshan log with a trained model registry
  experiment  regenerate the paper's tables and figures
  ingest      append jobs to the durable job log (or ship them to a server)
  retrain     incremental retrain: drain the job log into a new generation
  joblog      job log statistics and compaction
  quarantine  list, decode, or purge quarantined job records`)
}

func cmdGenDB(args []string) error {
	fs := flag.NewFlagSet("gen-db", flag.ExitOnError)
	jobs := fs.Int("jobs", 3000, "number of jobs to simulate")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "db.darshan", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds := logdb.Generate(logdb.GenConfig{Jobs: *jobs, Seed: *seed})
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := darshan.WriteDataset(f, ds); err != nil {
		return err
	}
	fmt.Printf("wrote %d jobs to %s (avg sparsity %.4f)\n", ds.Len(), *out, ds.AverageSparsity())
	return nil
}

// loadDB reads a log database. With lenient set, malformed or out-of-range
// records are quarantined (and summarized on stderr) instead of aborting
// the load.
func loadDB(path string, lenient bool) (*darshan.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if !lenient {
		return darshan.ParseDataset(f)
	}
	ds, quarantine, err := darshan.ParseDatasetLenient(f)
	if err != nil {
		return nil, err
	}
	if len(quarantine) > 0 {
		report.Warn(os.Stderr, "%s: %s", path, darshan.QuarantineSummary(ds.Len(), quarantine))
	}
	return ds, nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	db := fs.String("db", "db.darshan", "log database file")
	modelsDir := fs.String("models", "models", "model registry directory")
	fast := fs.Bool("fast", false, "reduced training budgets")
	seed := fs.Int64("seed", 1, "random seed")
	lenient := fs.Bool("lenient", false, "quarantine corrupt records instead of aborting the load")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := loadDB(*db, *lenient)
	if err != nil {
		return err
	}
	frame := features.Build(ds)
	opts := core.DefaultTrainOptions()
	opts.Fast = *fast
	opts.Seed = *seed
	ens, rep, err := core.TrainEnsemble(frame, opts)
	if err != nil {
		return err
	}
	rows := [][]string{}
	for _, r := range rep.Models {
		rows = append(rows, []string{r.Name, fmt.Sprintf("%.4f", r.PredictionRMSE)})
	}
	report.Table(os.Stdout, []string{"Model", "Eval RMSE"}, rows)
	gen, err := core.OpenStore(*modelsDir).Save(ens)
	if err != nil {
		return err
	}
	fmt.Printf("saved %d models to %s (generation %d)\n", len(ens.Models), *modelsDir, gen)
	return nil
}

// loadRegistry opens the versioned model store, surfacing rejected
// (corrupt) generations and fallbacks on stderr so a degraded registry is
// never mistaken for a healthy one. The returned advisories are the
// registry's provenance claims — generation, fingerprint, canary verdict —
// for rendering under any diagnosis the ensemble produces.
func loadRegistry(dir string) (*core.Ensemble, []report.Advisory, error) {
	store := core.OpenStore(dir)
	ens, rep, err := store.Load()
	if err != nil {
		return nil, nil, err
	}
	for _, rej := range rep.Rejected {
		report.Warn(os.Stderr, "%s: generation %d rejected: %s", dir, rej.Generation, rej.Err)
	}
	if rep.FellBack {
		report.Warn(os.Stderr, "%s: serving fallback generation %d — newest generation failed verification",
			dir, rep.Generation)
	}
	var advs []report.Advisory
	if rep.Legacy {
		advs = append(advs, report.Advisory{
			Claim:      "serving a legacy flat registry",
			Source:     "model-registry",
			Confidence: "unverified (no checksums)",
		})
		return ens, advs, nil
	}
	claim := fmt.Sprintf("serving generation %d", rep.Generation)
	if fp := rep.Fingerprint; len(fp) >= 12 {
		claim += fmt.Sprintf(" (fingerprint %s)", fp[:12])
	}
	if rep.FellBack {
		claim += ", after fallback from a corrupt newer generation"
	}
	advs = append(advs, report.Advisory{Claim: claim, Source: "model-registry", Confidence: "exact"})
	if man, merr := store.Manifest(rep.Generation); merr == nil && man.Canary != nil {
		c := man.Canary
		adv := report.Advisory{Source: "canary-gate", Confidence: "exact"}
		if c.Reason != "" {
			adv.Claim = c.Reason
		} else if c.Passed {
			adv.Claim = fmt.Sprintf("promotion vetted: candidate RMSE %.4f vs serving %.4f", c.CandidateRMSE, c.ServingRMSE)
		}
		if c.HoldoutJobs > 0 {
			adv.Confidence = fmt.Sprintf("measured on %d held-out jobs", c.HoldoutJobs)
		}
		if adv.Claim != "" {
			advs = append(advs, adv)
		}
	}
	return ens, advs, nil
}

func cmdDiagnose(args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ExitOnError)
	modelsDir := fs.String("models", "models", "model registry directory")
	logPath := fs.String("log", "", "Darshan text log to diagnose (further logs may follow as positional arguments)")
	top := fs.Int("top", 9, "factors to display")
	interp := fs.String("interpreter", "shap", "shap, treeshap or lime")
	shapMode := fs.String("shap-mode", "auto",
		"SHAP estimator: auto (exact TreeSHAP for tree models, Kernel SHAP otherwise), kernel, or tree")
	parallel := fs.Int("parallel", 0, "diagnosis worker pool size (0 = GOMAXPROCS)")
	advise := fs.Bool("advise", false, "print tuning recommendations with model-predicted gains")
	withRules := fs.Bool("rules", false, "also print static-rule (Drishti-style) findings")
	timeout := fs.Duration("timeout", 0, "abort the diagnosis after this long (0 = no deadline)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if *logPath != "" {
		paths = append([]string{*logPath}, paths...)
	}
	if len(paths) == 0 {
		return fmt.Errorf("diagnose: -log is required")
	}
	ens, advisories, err := loadRegistry(*modelsDir)
	if err != nil {
		return err
	}
	recs := make([]*darshan.Record, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		recs[i], err = darshan.ParseLog(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("diagnose: %s: %w", p, err)
		}
	}
	opts := core.DefaultDiagnoseOptions()
	opts.Interpreter = core.Interpreter(*interp)
	mode, err := shap.ParseMode(*shapMode)
	if err != nil {
		return fmt.Errorf("diagnose: %w", err)
	}
	opts.SHAPMode = mode
	opts.Parallelism = *parallel
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if len(recs) > 1 {
		if err := diagnoseBatch(ctx, ens, recs, paths, opts, *top); err != nil {
			return err
		}
		report.Advisories(os.Stdout, advisories)
		return nil
	}
	diag, err := ens.DiagnoseContext(ctx, recs[0], opts)
	if err != nil {
		return err
	}
	rec := recs[0]

	report.KV(os.Stdout, "application", "%s", rec.App)
	warnDegraded(diag)
	report.KV(os.Stdout, "measured performance", "%.2f MiB/s", diag.ActualMiBps)
	report.KV(os.Stdout, "closest model", "%s (%.2f MiB/s)",
		diag.PerModel[diag.ClosestIndex].Name, diag.PerModel[diag.ClosestIndex].PredictedMiBps)
	bars := []report.Bar{}
	for _, fct := range diag.TopFactors(*top) {
		bars = append(bars, report.Bar{Label: fct.Counter.String(), Value: fct.Contribution})
	}
	report.HBars(os.Stdout, "merged diagnosis (Average Method):", bars, 28)
	if b := diag.Bottlenecks(); len(b) > 0 {
		fmt.Printf("top bottleneck: %s (value %g, impact %+.4f)\n",
			b[0].Counter, b[0].Value, b[0].Contribution)
	} else {
		fmt.Println("no negative factors found")
	}
	report.Advisories(os.Stdout, advisories)

	if *advise {
		recs, err := tune.New(ens).Advise(diag, 1.05)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			fmt.Println("no tuning with a predicted gain above 5% found")
		}
		for _, rc := range recs {
			fmt.Printf("advice: %-24s predicted %.1fx (%.0f MiB/s) — %s\n",
				rc.Action, rc.PredictedGain, rc.PredictedMiBps, rc.Description)
		}
	}
	if *withRules {
		for _, f := range rules.Diagnose(rec) {
			fmt.Printf("rule [%s] %s: %s\n", f.Severity, f.Rule, f.Detail)
		}
	}
	return nil
}

// warnDegraded surfaces a degraded diagnosis: which models failed and why,
// so a merged result over a surviving subset is never mistaken for a full
// five-model consensus.
func warnDegraded(d *core.Diagnosis) {
	if !d.Degraded {
		return
	}
	report.Warn(os.Stdout, "degraded diagnosis: %d of %d models failed; merged over the survivors",
		len(d.SkippedModels()), len(d.PerModel))
	for _, md := range d.PerModel {
		if md.Failed() {
			report.Warn(os.Stdout, "  %s: %s", md.Name, md.Err)
		}
	}
}

// diagnoseBatch diagnoses several logs on the parallel engine and prints a
// compact per-job summary: measured vs closest prediction and the top
// bottleneck.
func diagnoseBatch(ctx context.Context, ens *core.Ensemble, recs []*darshan.Record, paths []string,
	opts core.DiagnoseOptions, top int) error {

	diags, err := ens.DiagnoseBatchContext(ctx, recs, opts)
	if err != nil {
		return err
	}
	rows := make([][]string, len(diags))
	for i, d := range diags {
		bottleneck := "-"
		if b := d.Bottlenecks(); len(b) > 0 {
			bottleneck = fmt.Sprintf("%s (%+.4f)", b[0].Counter, b[0].Contribution)
		}
		rows[i] = []string{
			paths[i],
			d.Record.App,
			fmt.Sprintf("%.2f", d.ActualMiBps),
			fmt.Sprintf("%.2f", d.Average.PredictedMiBps),
			bottleneck,
		}
	}
	report.Table(os.Stdout, []string{"Log", "App", "Measured MiB/s", "Predicted MiB/s", "Top bottleneck"}, rows)
	for i, d := range diags {
		fmt.Printf("\n-- %s --\n", paths[i])
		warnDegraded(d)
		bars := []report.Bar{}
		for _, fct := range d.TopFactors(top) {
			bars = append(bars, report.Bar{Label: fct.Counter.String(), Value: fct.Contribution})
		}
		report.HBars(os.Stdout, "merged diagnosis (Average Method):", bars, 28)
	}
	return nil
}

func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	id := fs.String("id", "all", "experiment id: all, table1..3, fig1, fig4..fig17, "+
		"classification, advisor, mpiio, rules, pdp, cross-platform, treeshap, unseen")
	fast := fs.Bool("fast", true, "reduced-scale run")
	shapMode := fs.String("shap-mode", "auto",
		"SHAP estimator for the experiments: auto, kernel, or tree")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := shap.ParseMode(*shapMode)
	if err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	e := experiments.NewEnv(*fast)
	e.DiagOpts.SHAPMode = mode
	w := os.Stdout
	run := map[string]func() error{
		"table1": func() error { _, err := experiments.RunTable1(e, w); return err },
		"table2": func() error { _, err := experiments.RunTable2(e, w); return err },
		"table3": func() error { _, err := experiments.RunTable3(e, w); return err },
		"fig1":   func() error { _, err := experiments.RunFigure1(e, w); return err },
		"fig4":   func() error { _, err := experiments.RunFigure4(e, w); return err },
		"fig5":   func() error { _, err := experiments.RunFigure5(e, w); return err },
		"fig6":   func() error { _, err := experiments.RunFigure6(e, w); return err },
		"fig7":   func() error { _, err := experiments.RunPattern(e, w, 1); return err },
		"fig8":   func() error { _, err := experiments.RunPattern(e, w, 2); return err },
		"fig9":   func() error { _, err := experiments.RunPattern(e, w, 3); return err },
		"fig10":  func() error { _, err := experiments.RunPattern(e, w, 4); return err },
		"fig11":  func() error { _, err := experiments.RunPattern(e, w, 5); return err },
		"fig12":  func() error { _, err := experiments.RunPattern(e, w, 6); return err },
		"fig13":  func() error { _, err := experiments.RunFigure13(e, w); return err },
		"fig14":  func() error { _, err := experiments.RunFigure14(e, w); return err },
		"fig15":  func() error { _, err := experiments.RunFigure15(e, w); return err },
		"fig16":  func() error { _, err := experiments.RunFigure16(e, w); return err },
		"fig17":  func() error { _, err := experiments.RunFigure17(e, w); return err },
		"classification": func() error {
			_, err := experiments.RunExtensionClassification(e, w)
			return err
		},
		"advisor":        func() error { _, err := experiments.RunExtensionTuningAdvisor(e, w); return err },
		"mpiio":          func() error { _, err := experiments.RunExtensionMPIIO(e, w); return err },
		"rules":          func() error { _, err := experiments.RunAblationRules(e, w); return err },
		"pdp":            func() error { _, err := experiments.RunAblationPDP(e, w); return err },
		"cross-platform": func() error { _, err := experiments.RunAblationCrossPlatform(e, w); return err },
		"treeshap":       func() error { _, err := experiments.RunAblationTreeSHAP(e, w); return err },
		"unseen":         func() error { _, err := experiments.RunAblationUnseenApp(e, w); return err },
		"all":            func() error { return experiments.RunAll(e, w) },
	}
	fn, ok := run[*id]
	if !ok {
		return fmt.Errorf("experiment: unknown id %q", *id)
	}
	return fn()
}
