package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/joblog"
	"github.com/hpc-repro/aiio/internal/report"
)

// cmdQuarantine inspects and clears the joblog quarantine: records the
// ingest boundary or crash recovery refused, preserved with their reason
// instead of silently dropped. `ls` and `show` read the log directly (no
// store open, so they are safe against a directory a live server is
// serving from); `purge` opens the store to reset its counter too.
func cmdQuarantine(args []string) error {
	if len(args) < 1 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("quarantine: usage: aiio quarantine <ls|show|purge> [-dir joblog] [-n index]")
	}
	action := args[0]
	fs := flag.NewFlagSet("quarantine "+action, flag.ExitOnError)
	dir := fs.String("dir", "joblog", "durable job log directory")
	n := fs.Int("n", -1, "entry index for show (default: every entry)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	switch action {
	case "ls":
		entries, err := joblog.ReadQuarantine(*dir)
		if err != nil {
			return err
		}
		if len(entries) == 0 {
			fmt.Printf("%s: quarantine is empty\n", *dir)
			return nil
		}
		rows := make([][]string, 0, len(entries))
		for _, e := range entries {
			kind := "record"
			if len(e.Payload) == 0 {
				kind = "note"
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", e.Index),
				time.Unix(e.TimeUnix, 0).UTC().Format(time.RFC3339),
				kind,
				fmt.Sprintf("%d", e.Bytes),
				e.Reason,
			})
		}
		report.Table(os.Stdout, []string{"#", "Quarantined", "Kind", "Bytes", "Reason"}, rows)
		return nil
	case "show":
		entries, err := joblog.ReadQuarantine(*dir)
		if err != nil {
			return err
		}
		if len(entries) == 0 {
			fmt.Printf("%s: quarantine is empty\n", *dir)
			return nil
		}
		shown := 0
		for _, e := range entries {
			if *n >= 0 && e.Index != *n {
				continue
			}
			shown++
			report.KV(os.Stdout, "entry", "%d", e.Index)
			report.KV(os.Stdout, "quarantined", "%s", time.Unix(e.TimeUnix, 0).UTC().Format(time.RFC3339))
			report.KV(os.Stdout, "reason", "%s", e.Reason)
			seq, rec, derr := e.Record()
			switch {
			case derr != nil && len(e.Payload) == 0:
				report.KV(os.Stdout, "payload", "none (parse-reject note)")
			case derr != nil:
				report.KV(os.Stdout, "payload", "%d bytes, undecodable: %v", len(e.Payload), derr)
			default:
				report.KV(os.Stdout, "seq", "%d", seq)
				report.KV(os.Stdout, "job", "%d (%s, year %d)", rec.JobID, rec.App, rec.Year)
				report.KV(os.Stdout, "perf", "%.3f MiB/s", rec.PerfMiBps)
				for id := darshan.CounterID(0); id < darshan.NumCounters; id++ {
					if v := rec.Counter(id); v != 0 {
						report.KV(os.Stdout, "  "+id.String(), "%g", v)
					}
				}
			}
			fmt.Println()
		}
		if *n >= 0 && shown == 0 {
			return fmt.Errorf("quarantine: no entry with index %d (have %d entries)", *n, len(entries))
		}
		return nil
	case "purge":
		jl, err := openJobLog(*dir)
		if err != nil {
			return err
		}
		defer jl.Close()
		dropped, err := jl.PurgeQuarantine()
		if err != nil {
			return err
		}
		fmt.Printf("purged %d quarantined entries from %s\n", dropped, *dir)
		return nil
	default:
		return fmt.Errorf("quarantine: unknown action %q (want ls, show, or purge)", action)
	}
}
