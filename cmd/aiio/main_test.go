package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/iosim"
	"github.com/hpc-repro/aiio/internal/workload"
)

// TestCLIPipeline drives the full CLI flow in-process: generate a database,
// train a registry, simulate a job log, diagnose it with advice and rules.
func TestCLIPipeline(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "db.darshan")
	models := filepath.Join(dir, "models")

	if err := cmdGenDB([]string{"-jobs", "400", "-seed", "3", "-o", db}); err != nil {
		t.Fatalf("gen-db: %v", err)
	}
	if fi, err := os.Stat(db); err != nil || fi.Size() == 0 {
		t.Fatalf("database file missing: %v", err)
	}

	if err := cmdTrain([]string{"-db", db, "-models", models, "-fast", "-seed", "3"}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if _, err := os.Stat(filepath.Join(models, "generations", "000001", "manifest.json")); err != nil {
		t.Fatalf("generation manifest missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(models, "CURRENT")); err != nil {
		t.Fatalf("CURRENT pointer missing: %v", err)
	}

	// Produce a job log with the flag-compatible IOR simulator path used by
	// cmd/iorsim (reuse the library to avoid exec).
	logPath := filepath.Join(dir, "job.darshan")
	if err := writeTestJobLog(logPath); err != nil {
		t.Fatalf("write job log: %v", err)
	}

	if err := cmdDiagnose([]string{"-models", models, "-log", logPath,
		"-advise", "-rules", "-top", "5"}); err != nil {
		t.Fatalf("diagnose: %v", err)
	}
	if err := cmdDiagnose([]string{"-models", models, "-log", logPath,
		"-interpreter", "treeshap"}); err != nil {
		t.Fatalf("diagnose treeshap: %v", err)
	}
}

// TestCLILenientLoad corrupts a record of an on-disk database and checks
// the strict load refuses it while -lenient quarantines and proceeds.
func TestCLILenientLoad(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "db.darshan")
	if err := cmdGenDB([]string{"-jobs", "20", "-seed", "5", "-o", db}); err != nil {
		t.Fatalf("gen-db: %v", err)
	}
	f, err := os.OpenFile(db, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n# darshan log version: aiio-1.0\nPOSIX_READS\tNaN\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := loadDB(db, false); err == nil {
		t.Error("strict load accepted a corrupt database")
	}
	ds, err := loadDB(db, true)
	if err != nil {
		t.Fatalf("lenient load: %v", err)
	}
	if ds.Len() != 20 {
		t.Errorf("lenient load kept %d records, want 20", ds.Len())
	}
}

func TestCLIErrors(t *testing.T) {
	if err := cmdDiagnose([]string{}); err == nil {
		t.Error("diagnose without -log accepted")
	}
	if err := cmdDiagnose([]string{"-log", "does-not-exist", "-models", "nope"}); err == nil {
		t.Error("diagnose with missing registry accepted")
	}
	if err := cmdTrain([]string{"-db", "does-not-exist"}); err == nil {
		t.Error("train with missing db accepted")
	}
	if err := cmdExperiment([]string{"-id", "bogus"}); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestCLIExperimentTable3(t *testing.T) {
	// table3 is the only experiment cheap enough for a unit test (no
	// training); it exercises the experiment dispatch path.
	if err := cmdExperiment([]string{"-id", "table3"}); err != nil {
		t.Fatalf("experiment table3: %v", err)
	}
}

// writeTestJobLog produces a small slow-job Darshan log on disk.
func writeTestJobLog(path string) error {
	cfg, err := workload.ParseIORFlags("ior -w -t 1k -b 256k -Y")
	if err != nil {
		return err
	}
	cfg.NProcs = 8
	params := iosim.DefaultParams()
	params.NoiseSigma = 0
	rec, _ := cfg.Run("ior", 1, 9, params)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return darshan.WriteLog(f, rec)
}
