package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/faults"
	"github.com/hpc-repro/aiio/internal/joblog"
	"github.com/hpc-repro/aiio/internal/logdb"
	"github.com/hpc-repro/aiio/internal/report"
	"github.com/hpc-repro/aiio/internal/webservice"
)

// crashEnv is the fault-injection hook for the CI restart-recovery drill:
// AIIO_JOBLOG_CRASH=<step>:<n> kills the process (exit 3) the n-th time the
// joblog reaches the named durability step — a real process death, not a
// returned error, so recovery is exercised against an abandoned file handle
// exactly as a power cut would leave it.
const crashEnv = "AIIO_JOBLOG_CRASH"

func installCrashHook(jl *joblog.Store) error {
	spec := os.Getenv(crashEnv)
	if spec == "" {
		return nil
	}
	step, countStr, ok := strings.Cut(spec, ":")
	if !ok {
		return fmt.Errorf("%s must be <step>:<n>, got %q", crashEnv, spec)
	}
	n, err := strconv.Atoi(countStr)
	if err != nil || n < 1 {
		return fmt.Errorf("%s count %q must be a positive integer", crashEnv, countStr)
	}
	seen := 0
	jl.SetHook(func(s, path string) error {
		if s == step {
			seen++
			if seen >= n {
				fmt.Fprintf(os.Stderr, "aiio: injected crash at %s (%s), occurrence %d\n", s, path, seen)
				os.Exit(3)
			}
		}
		return nil
	})
	return nil
}

// openJobLog opens the durable job store and surfaces what recovery had to
// repair, so a restart after a crash is never silent about it.
func openJobLog(dir string) (*joblog.Store, error) {
	jl, err := joblog.Open(dir, joblog.Options{})
	if err != nil {
		return nil, err
	}
	rep := jl.Recovery()
	if rep.TornBytes > 0 || rep.Quarantined > 0 || rep.ResealedSegments > 0 || rep.RemovedDebris > 0 {
		report.Warn(os.Stderr, "%s: recovery truncated %d torn bytes, quarantined %d records, resealed %d segments, removed %d debris files",
			dir, rep.TornBytes, rep.Quarantined, rep.ResealedSegments, rep.RemovedDebris)
	}
	if err := installCrashHook(jl); err != nil {
		jl.Close()
		return nil, err
	}
	return jl, nil
}

// cmdIngest appends jobs to the durable log — from a Darshan dataset file,
// from the synthetic generator, or shipped to a running server's ingest
// endpoint instead of a local directory.
func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	dir := fs.String("joblog-dir", "joblog", "durable job log directory")
	db := fs.String("db", "", "Darshan dataset file to ingest (mutually exclusive with -gen)")
	gen := fs.Int("gen", 0, "generate this many synthetic jobs instead of reading -db")
	seed := fs.Int64("seed", 1, "seed for -gen")
	server := fs.String("server", "", "ship to a running aiio-server (base URL) instead of writing -joblog-dir")
	batch := fs.Int("batch", 256, "records per durability barrier (local) or per request (-server)")
	shift := fs.Float64("shift-scale", 1, "scale every counter and the performance tag by this integer factor before ingest (distribution-shift injection for drift drills)")
	shiftID := fs.Int64("shift-id-offset", 1_000_000, "JobID offset applied with -shift-scale so shifted jobs are new jobs, not dedup retries")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shift != 1 && (*shift < 1 || *shift != float64(int64(*shift))) {
		return fmt.Errorf("ingest: -shift-scale must be a positive integer (scaling stays exact and shifted records still validate)")
	}
	if (*db == "") == (*gen == 0) {
		return fmt.Errorf("ingest: exactly one of -db or -gen is required")
	}
	if *batch < 1 {
		*batch = 1
	}

	// Source: stream records one at a time so memory stays flat. A shift
	// factor rewrites each record on the way through — the distribution
	// moves, the linear invariants survive (see faults.ShiftRecord).
	var recs []*darshan.Record
	stream := func(yield func(*darshan.Record) bool) error {
		if *shift != 1 {
			inner := yield
			yield = func(rec *darshan.Record) bool {
				s := faults.ShiftRecord(rec, *shift)
				s.JobID += *shiftID
				return inner(s)
			}
		}
		if *gen > 0 {
			logdb.GenerateStream(logdb.GenConfig{Jobs: *gen, Seed: *seed}, yield)
			return nil
		}
		ds, err := loadDB(*db, true)
		if err != nil {
			return err
		}
		for _, rec := range ds.Records {
			if !yield(rec) {
				break
			}
		}
		return nil
	}

	if *server != "" {
		client := webservice.NewClient(*server)
		var total webservice.IngestResponse
		flush := func() error {
			if len(recs) == 0 {
				return nil
			}
			resp, err := client.Ingest(recs)
			if err != nil {
				return err
			}
			total.Accepted += resp.Accepted
			total.Duplicates += resp.Duplicates
			total.Quarantined += resp.Quarantined
			total.ParseRejected += resp.ParseRejected
			total.Pending = resp.Pending
			recs = recs[:0]
			return nil
		}
		var streamErr error
		if err := stream(func(rec *darshan.Record) bool {
			recs = append(recs, rec)
			if len(recs) >= *batch {
				if streamErr = flush(); streamErr != nil {
					return false
				}
			}
			return true
		}); err != nil {
			return err
		}
		if streamErr != nil {
			return streamErr
		}
		if err := flush(); err != nil {
			return err
		}
		fmt.Printf("ingested via %s: %d accepted, %d duplicates, %d quarantined, %d rejected (%d pending retrain)\n",
			*server, total.Accepted, total.Duplicates, total.Quarantined, total.ParseRejected, total.Pending)
		return nil
	}

	jl, err := openJobLog(*dir)
	if err != nil {
		return err
	}
	defer jl.Close()
	var accepted, duplicates, quarantined, staged int
	var appendErr error
	if err := stream(func(rec *darshan.Record) bool {
		if verr := rec.Validate(); verr != nil {
			if appendErr = jl.QuarantineRecord(rec, verr.Error()); appendErr != nil {
				return false
			}
			quarantined++
			return true
		}
		res, err := jl.Append(rec)
		if err != nil {
			appendErr = err
			return false
		}
		if res.Duplicate {
			duplicates++
			return true
		}
		accepted++
		staged++
		if staged >= *batch {
			if appendErr = jl.Sync(); appendErr != nil {
				return false
			}
			staged = 0
		}
		return true
	}); err != nil {
		return err
	}
	if appendErr != nil {
		return appendErr
	}
	if err := jl.Sync(); err != nil {
		return err
	}
	fmt.Printf("ingested into %s: %d accepted, %d duplicates, %d quarantined (%d pending retrain)\n",
		*dir, accepted, duplicates, quarantined, jl.Pending())
	return nil
}

// cmdRetrain drains the joblog backlog into a fresh ensemble committed as a
// new model-store generation (the rollback history stays intact).
func cmdRetrain(args []string) error {
	fs := flag.NewFlagSet("retrain", flag.ExitOnError)
	dir := fs.String("joblog-dir", "joblog", "durable job log directory")
	modelsDir := fs.String("models", "models", "model registry directory")
	miniBatch := fs.Int("minibatch", 512, "records per drain mini-batch")
	window := fs.Int("window", 20000, "historical records blended into the training set")
	minNew := fs.Int("min-new", 1, "minimum backlog size worth retraining on")
	fast := fs.Bool("fast", false, "reduced training budgets")
	seed := fs.Int64("seed", 1, "random seed")
	models := fs.String("train-models", "", "comma-separated subset of models to train (default all)")
	warm := fs.Bool("warm-start", true, "seed each model from the previous generation on a reduced budget (falls back to cold per model on schema/drift)")
	warmBudget := fs.Float64("warm-budget", core.DefaultWarmBudgetFrac, "fraction of the cold budget warm-started models train for")
	if err := fs.Parse(args); err != nil {
		return err
	}
	jl, err := openJobLog(*dir)
	if err != nil {
		return err
	}
	defer jl.Close()
	topts := core.DefaultTrainOptions()
	topts.Fast = *fast
	topts.Seed = *seed
	topts.WarmStart = *warm
	topts.WarmBudgetFrac = *warmBudget
	if *models != "" {
		topts.Models = strings.Split(*models, ",")
	}
	rep, err := core.RunIncremental(context.Background(), jl, core.OpenStore(*modelsDir), core.IncrementalOptions{
		MiniBatch: *miniBatch,
		Window:    *window,
		MinNew:    *minNew,
		Train:     topts,
	})
	if err != nil {
		return err
	}
	rows := [][]string{}
	for _, m := range rep.Train.Models {
		fit := "cold"
		if m.WarmStart {
			fit = "warm"
		} else if m.WarmFallback != "" {
			fit = "cold (" + m.WarmFallback + ")"
		}
		rows = append(rows, []string{m.Name, fmt.Sprintf("%.4f", m.PredictionRMSE), fit})
	}
	report.Table(os.Stdout, []string{"Model", "Eval RMSE", "Fit"}, rows)
	fmt.Printf("retrained on %d new + %d window jobs -> %s generation %d (cursor %d)\n",
		rep.NewRecords, rep.WindowRecords, *modelsDir, rep.Generation, rep.MaxSeq)
	return nil
}

// cmdJobLog prints store statistics or runs a compaction.
func cmdJobLog(args []string) error {
	fs := flag.NewFlagSet("joblog", flag.ExitOnError)
	dir := fs.String("dir", "joblog", "durable job log directory")
	compact := fs.Bool("compact", false, "compact: drop duplicate frames, rewrite segments, verify checksums")
	if err := fs.Parse(args); err != nil {
		return err
	}
	jl, err := openJobLog(*dir)
	if err != nil {
		return err
	}
	defer jl.Close()
	if *compact {
		st, err := jl.Compact()
		if err != nil {
			return err
		}
		fmt.Printf("compacted %s: %d -> %d segments, %d -> %d frames (%d duplicates dropped), %d -> %d bytes, %d sort runs\n",
			*dir, st.SegmentsIn, st.SegmentsOut, st.FramesIn, st.FramesOut, st.DuplicatesDropped,
			st.BytesIn, st.BytesOut, st.Runs)
	}
	st := jl.Stats()
	report.KV(os.Stdout, "records", "%d", st.Records)
	report.KV(os.Stdout, "pending retrain", "%d", st.Pending)
	report.KV(os.Stdout, "sealed segments", "%d", st.SealedSegments)
	report.KV(os.Stdout, "total bytes", "%d", st.TotalBytes)
	report.KV(os.Stdout, "duplicate frames", "%d", st.DuplicateFrames)
	report.KV(os.Stdout, "quarantined", "%d", st.Quarantined)
	report.KV(os.Stdout, "compactions", "%d", st.Compactions)
	if st.LastCompactionUnix > 0 {
		report.KV(os.Stdout, "last compaction", "%s", time.Unix(st.LastCompactionUnix, 0).UTC().Format(time.RFC3339))
	}
	return nil
}
