package aiio

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section (run with `go test -bench=. -benchmem`). Each benchmark
// reports the reproduced headline numbers as custom metrics so the bench
// output doubles as the measured column of EXPERIMENTS.md:
//
//   - Table 2: per-method RMSE and the merged-vs-single improvement factors
//     (paper: up to 3.11x prediction, 2.19x diagnosis);
//   - Figures 7–12: tuned/untuned speedup per IOR pattern (paper: 104x for
//     pattern 1, 1.56x for pattern 2, ...);
//   - Figures 13–15: application speedups (paper: 146x, 1.82x, 2.1x).
//
// The shared environment (log database + trained five-model ensemble) is
// built once; individual iterations re-run the experiment's workloads and
// diagnoses.

import (
	"io"
	"sync"
	"testing"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/experiments"
	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/shap"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv = experiments.NewEnv(true)
		_, _, benchErr = benchEnv.Ensemble()
	})
	if benchErr != nil {
		b.Fatalf("environment: %v", benchErr)
	}
	return benchEnv
}

func BenchmarkTable1LogDatabase(b *testing.B) {
	e := benchEnvironment(b)
	var sparsity float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(e, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		sparsity = res.AvgSparsity
	}
	b.ReportMetric(sparsity, "sparsity")
}

func BenchmarkTable2RMSE(b *testing.B) {
	e := benchEnvironment(b)
	var res *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunTable2(e, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Table.Row("closest").PredictionRMSE, "closest-pred-rmse")
	b.ReportMetric(res.Table.Row("average").PredictionRMSE, "average-pred-rmse")
	b.ReportMetric(res.PredictionImprovement, "pred-improvement-x")
	b.ReportMetric(res.DiagnosisImprovement, "diag-improvement-x")
}

func BenchmarkTable3IORConfigs(b *testing.B) {
	e := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable3(e, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1GaugeComparison(b *testing.B) {
	e := benchEnvironment(b)
	var res *experiments.Figure1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFigure1(e, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.GaugeZeroAttributions), "gauge-zero-attrib")
	b.ReportMetric(float64(res.AIIOZeroAttributions), "aiio-zero-attrib")
	b.ReportMetric(res.MaxMemberAbsErr/res.GroupAbsErr, "member-vs-group-err-x")
}

func BenchmarkFigure4Transform(b *testing.B) {
	e := benchEnvironment(b)
	var res *experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFigure4(e, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.TransformedMax, "transformed-max")
}

func BenchmarkFigure5Scatter(b *testing.B) {
	e := benchEnvironment(b)
	var corr float64
	for i := 0; i < b.N; i++ {
		var err error
		corr, err = experiments.RunFigure5(e, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(corr, "pearson-r")
}

func BenchmarkFigure6FiveModels(b *testing.B) {
	e := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure6(e, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkPattern shares the Figs. 7–12 harness and reports the measured
// speedup next to the paper's.
func benchmarkPattern(b *testing.B, id int, paperSpeedup float64) {
	e := benchEnvironment(b)
	var res *experiments.PatternResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunPattern(e, io.Discard, id)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup, "speedup-x")
	b.ReportMetric(paperSpeedup, "paper-speedup-x")
	b.ReportMetric(boolMetric(res.ExpectedFlagged), "flagged")
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

func BenchmarkFigure7SeqWriteSmall(b *testing.B) { benchmarkPattern(b, 1, 104.5) }
func BenchmarkFigure8SeqReadSmall(b *testing.B)  { benchmarkPattern(b, 2, 1.56) }
func BenchmarkFigure9StridedWrite(b *testing.B)  { benchmarkPattern(b, 3, 111.0) }
func BenchmarkFigure10StridedRead(b *testing.B)  { benchmarkPattern(b, 4, 6.3) }
func BenchmarkFigure11RandomWrite(b *testing.B)  { benchmarkPattern(b, 5, 113.3) }
func BenchmarkFigure12RandomRead(b *testing.B)   { benchmarkPattern(b, 6, 4.4) }

// benchmarkApp shares the Figs. 13–15 harness.
func benchmarkApp(b *testing.B, run func(*experiments.Env, io.Writer) (*experiments.AppResult, error), paperSpeedup float64) {
	e := benchEnvironment(b)
	var res *experiments.AppResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = run(e, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup, "speedup-x")
	b.ReportMetric(paperSpeedup, "paper-speedup-x")
	b.ReportMetric(boolMetric(res.ExpectedFlagged), "flagged")
}

func BenchmarkFigure13E2E(b *testing.B)     { benchmarkApp(b, experiments.RunFigure13, 146) }
func BenchmarkFigure14OpenPMD(b *testing.B) { benchmarkApp(b, experiments.RunFigure14, 1.82) }
func BenchmarkFigure15DASSA(b *testing.B)   { benchmarkApp(b, experiments.RunFigure15, 2.1) }

func BenchmarkFigure16LossCurve(b *testing.B) {
	e := benchEnvironment(b)
	var res *experiments.Figure16Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFigure16(e, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.EvalLoss)), "iterations")
	b.ReportMetric(res.EvalLoss[len(res.EvalLoss)-1], "final-rmse")
}

func BenchmarkFigure17WebService(b *testing.B) {
	e := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure17(e, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Robust {
			b.Fatal("service diagnosis not robust")
		}
	}
}

// Ablation benchmarks: the design choices DESIGN.md calls out.

// BenchmarkAblationSingleVsMerged quantifies the value of multi-model
// merging by comparing the worst single model with the merged methods.
func BenchmarkAblationSingleVsMerged(b *testing.B) {
	e := benchEnvironment(b)
	var res *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunTable2(e, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst, best := 0.0, 1e18
	for _, name := range []string{ModelXGBoost, ModelLightGBM, ModelCatBoost, ModelMLP, ModelTabNet} {
		r := res.Table.Row(name)
		if r.PredictionRMSE > worst {
			worst = r.PredictionRMSE
		}
		if r.PredictionRMSE < best {
			best = r.PredictionRMSE
		}
	}
	b.ReportMetric(worst, "worst-single-rmse")
	b.ReportMetric(best, "best-single-rmse")
	b.ReportMetric(res.Table.Row("closest").PredictionRMSE, "closest-rmse")
	b.ReportMetric(res.Table.Row("average").PredictionRMSE, "average-rmse")
}

// BenchmarkExtensionClassification evaluates the paper's future-work
// classification formulation with tagged bottlenecks (recall/precision).
func BenchmarkExtensionClassification(b *testing.B) {
	e := benchEnvironment(b)
	var res *experiments.ClassificationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunExtensionClassification(e, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Metrics.Accuracy, "accuracy")
	b.ReportMetric(res.MacroF1, "macro-f1")
	b.ReportMetric(res.AIIOAgreement, "aiio-agreement")
}

// BenchmarkAblationRulesVsAIIO compares the static-rule baseline with the
// learned diagnosis on the six patterns.
func BenchmarkAblationRulesVsAIIO(b *testing.B) {
	e := benchEnvironment(b)
	var res *experiments.RulesComparisonResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAblationRules(e, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Agreements), "agreements-of-6")
}

// BenchmarkAblationPDPRobustness shows the PDP baseline's zero-counter
// attributions next to SHAP's structural zero.
func BenchmarkAblationPDPRobustness(b *testing.B) {
	e := benchEnvironment(b)
	var res *experiments.PDPResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAblationPDP(e, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.PDPZeroAttributions), "pdp-zero-attrib")
	b.ReportMetric(float64(res.SHAPZeroAttributions), "shap-zero-attrib")
	b.ReportMetric(res.LinearRMSE, "linear-rmse")
}

// BenchmarkAblationCrossPlatform quantifies the paper's portability
// limitation: home-trained models degrade on a flash-based system.
func BenchmarkAblationCrossPlatform(b *testing.B) {
	e := benchEnvironment(b)
	var res *experiments.CrossPlatformResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAblationCrossPlatform(e, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.HomeRMSE, "home-rmse")
	b.ReportMetric(res.AwayRMSE, "away-rmse")
	b.ReportMetric(res.Degradation, "degradation-x")
}

// BenchmarkAblationTreeSHAPSpeed measures the exact TreeSHAP fast path
// against the sampled Kernel explainer.
func BenchmarkAblationTreeSHAPSpeed(b *testing.B) {
	e := benchEnvironment(b)
	var res *experiments.TreeSHAPSpeedResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAblationTreeSHAP(e, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup, "treeshap-speedup-x")
	b.ReportMetric(res.MaxDrift, "max-phi-drift")
}

// BenchmarkAblationSHAPExactVsSampled compares the exact enumerator against
// the sampled Kernel SHAP estimator on the same job.
func BenchmarkAblationSHAPExactVsSampled(b *testing.B) {
	e := benchEnvironment(b)
	rec, err := SimulateIOR("ior -w -t 1k -b 256k -Y", 8, 9)
	if err != nil {
		b.Fatal(err)
	}
	ens, _, err := e.Ensemble()
	if err != nil {
		b.Fatal(err)
	}
	exact := e.DiagOpts
	exact.SHAP.MaxExact = 45 // force exact enumeration when feasible
	sampled := e.DiagOpts
	sampled.SHAP.MaxExact = 1 // force sampling

	var drift float64
	for i := 0; i < b.N; i++ {
		de, err := ens.Diagnose(rec, exact)
		if err != nil {
			b.Fatal(err)
		}
		ds, err := ens.Diagnose(rec, sampled)
		if err != nil {
			b.Fatal(err)
		}
		drift = 0
		for j := range de.Average.Contributions {
			d := de.Average.Contributions[j] - ds.Average.Contributions[j]
			if d < 0 {
				d = -d
			}
			if d > drift {
				drift = d
			}
		}
	}
	b.ReportMetric(drift, "max-phi-drift")
}

// benchExplainInput builds the default 45-counter workload the explainer
// benchmarks share: a simulated IOR job, feature-transformed the way the
// diagnosis engine feeds the estimators.
func benchExplainInput(b *testing.B) []float64 {
	b.Helper()
	rec, err := SimulateIOR("ior -w -t 1k -b 256k -Y", 8, 9)
	if err != nil {
		b.Fatal(err)
	}
	return features.TransformRecord(rec)
}

// BenchmarkExplainGBDT compares the two Shapley estimators on the same
// trained tree ensemble and the same job: the sampled Kernel SHAP path and
// the exact TreeSHAP fast path (the headline perf claim — tree must be at
// least an order of magnitude faster).
func BenchmarkExplainGBDT(b *testing.B) {
	e := benchEnvironment(b)
	ens, _, err := e.Ensemble()
	if err != nil {
		b.Fatal(err)
	}
	m := ens.Model(ModelLightGBM)
	tree, ok := core.TreeModel(m)
	if !ok {
		b.Fatal("lightgbm model does not expose its tree ensemble")
	}
	x := benchExplainInput(b)

	b.Run("kernel", func(b *testing.B) {
		ex := shap.New(m.PredictBatch, nil, shap.DefaultConfig())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ex.Explain(x)
		}
	})
	b.Run("tree", func(b *testing.B) {
		ex := shap.NewTree(tree)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ex.Explain(x, nil)
		}
	})
}

// BenchmarkExplainMLP measures the Kernel SHAP path on a neural performance
// function, the estimator the auto mode keeps for non-tree models.
func BenchmarkExplainMLP(b *testing.B) {
	e := benchEnvironment(b)
	ens, _, err := e.Ensemble()
	if err != nil {
		b.Fatal(err)
	}
	m := ens.Model(ModelMLP)
	x := benchExplainInput(b)
	ex := shap.New(m.PredictBatch, nil, shap.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Explain(x)
	}
}

// BenchmarkDiagnoseBatch runs the parallel diagnosis engine end to end over
// a batch of distinct jobs with the default (auto) estimator dispatch.
func BenchmarkDiagnoseBatch(b *testing.B) {
	e := benchEnvironment(b)
	ens, _, err := e.Ensemble()
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]*Record, 8)
	for i := range recs {
		recs[i], err = SimulateIOR("ior -w -t 1k -b 256k -Y", 4+2*i, int64(20+i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ens.DiagnoseBatch(recs, e.DiagOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionTuningAdvisor evaluates the automatic tuning advisor
// against the paper's manual fixes.
func BenchmarkExtensionTuningAdvisor(b *testing.B) {
	e := benchEnvironment(b)
	var res *experiments.TuningAdvisorResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunExtensionTuningAdvisor(e, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.CorrectTop), "correct-of-4")
}

// BenchmarkExtensionMPIIO measures what the MPI-IO-layer counters add to
// the models (the paper's "high-level I/O counters" limitation).
func BenchmarkExtensionMPIIO(b *testing.B) {
	e := benchEnvironment(b)
	var res *experiments.MPIIOResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunExtensionMPIIO(e, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.PosixRMSE, "posix-rmse")
	b.ReportMetric(res.ExtendedRMSE, "extended-rmse")
	b.ReportMetric(res.Improvement, "improvement-x")
}

// BenchmarkAblationUnseenApp measures the unseen-application penalty and
// the early-stopping trade-off.
func BenchmarkAblationUnseenApp(b *testing.B) {
	e := benchEnvironment(b)
	var res *experiments.UnseenAppResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAblationUnseenApp(e, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.UnseenPenalty, "unseen-penalty-x")
	b.ReportMetric(float64(res.EpochsES), "epochs-es")
	b.ReportMetric(float64(res.EpochsNoES), "epochs-noes")
}
