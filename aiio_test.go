package aiio

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

var (
	apiOnce sync.Once
	apiEns  *Ensemble
	apiErr  error
)

// apiEnsemble trains once for the public-API tests.
func apiEnsemble(t *testing.T) *Ensemble {
	t.Helper()
	apiOnce.Do(func() {
		db := GenerateDatabase(DatabaseConfig{Jobs: 700, Seed: 5})
		opts := DefaultTrainOptions()
		opts.Fast = true
		opts.Models = []string{ModelLightGBM, ModelCatBoost, ModelXGBoost}
		apiEns, _, apiErr = Train(BuildFrame(db), opts)
	})
	if apiErr != nil {
		t.Fatalf("train: %v", apiErr)
	}
	return apiEns
}

func TestPublicAPIFlow(t *testing.T) {
	ens := apiEnsemble(t)
	rec, err := SimulateIOR("ior -w -t 1k -b 1m -Y", 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rec.PerfMiBps <= 0 {
		t.Fatal("simulated job has no performance tag")
	}
	diag, err := ens.Diagnose(rec, DefaultDiagnoseOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !diag.IsRobust() {
		t.Error("diagnosis not robust")
	}
	if len(diag.TopFactors(5)) == 0 {
		t.Error("no factors")
	}
}

func TestPublicAPILogRoundTrip(t *testing.T) {
	rec, err := SimulateIOR("ior -r -t 1k -b 64k", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, rec); err != nil {
		t.Fatal(err)
	}
	got, err := ParseLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *rec {
		t.Error("log round trip mismatch")
	}
	ds := &Dataset{}
	ds.Append(rec)
	buf.Reset()
	if err := WriteDataset(&buf, ds); err != nil {
		t.Fatal(err)
	}
	ds2, err := ParseDataset(&buf)
	if err != nil || ds2.Len() != 1 {
		t.Fatalf("dataset round trip: %v, %d records", err, ds2.Len())
	}
}

func TestPublicAPIModelRegistry(t *testing.T) {
	ens := apiEnsemble(t)
	dir := t.TempDir()
	if err := SaveModels(dir, ens); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Models) != len(ens.Models) {
		t.Errorf("loaded %d models", len(loaded.Models))
	}
}

func TestSimulateIORTunedRemovesSeeks(t *testing.T) {
	rec, err := SimulateIOR("ior -r -t 1k -b 64k", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := SimulateIORTuned("ior -r -t 1k -b 64k", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	seekID := counterID(t, "POSIX_SEEKS")
	if tuned.Counters[seekID] >= rec.Counters[seekID] {
		t.Errorf("tuned seeks %v not below untuned %v",
			tuned.Counters[seekID], rec.Counters[seekID])
	}
}

func counterID(t *testing.T, name string) CounterID {
	t.Helper()
	for i, n := range CounterNames() {
		if n == name {
			return CounterID(i)
		}
	}
	t.Fatalf("no counter %q", name)
	return 0
}

func TestSimulateIORRejectsBadFlags(t *testing.T) {
	if _, err := SimulateIOR("ior --bogus", 4, 1); err == nil {
		t.Error("bad flags accepted")
	}
	if _, err := SimulateIORTuned("ior", 4, 1); err == nil {
		t.Error("missing -w/-r accepted")
	}
}

func TestCounterNamesStable(t *testing.T) {
	names := CounterNames()
	if len(names) != 45 {
		t.Fatalf("%d counters", len(names))
	}
	if !strings.HasPrefix(names[3], "POSIX_") {
		t.Errorf("unexpected counter order: %v", names[:5])
	}
}

func TestPublicAPIAdvise(t *testing.T) {
	ens := apiEnsemble(t)
	rec, err := SimulateIOR("ior -w -t 1k -b 1m -Y", 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := ens.Diagnose(rec, DefaultDiagnoseOptions())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Advise(ens, diag, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.Action == "increase-transfer-size" {
			found = true
			if r.PredictedGain <= 1.05 {
				t.Errorf("gain %v below threshold", r.PredictedGain)
			}
		}
	}
	if !found {
		t.Errorf("no transfer-size advice for the canonical slow job: %+v", recs)
	}
}
