// Package aiio is the public API of the AIIO reproduction: job-level,
// automatic I/O performance bottleneck diagnosis as described in
//
//	Dong, Bez, Byna. "AIIO: Using Artificial Intelligence for Job-Level and
//	Automatic I/O Performance Bottleneck Diagnosis". HPDC '23.
//
// The typical flow mirrors Fig. 3 of the paper:
//
//	db := aiio.GenerateDatabase(aiio.DatabaseConfig{Jobs: 3000, Seed: 1})
//	frame := aiio.BuildFrame(db)
//	ens, report, err := aiio.Train(frame, aiio.DefaultTrainOptions())
//	diag, err := ens.Diagnose(record, aiio.DefaultDiagnoseOptions())
//	for _, f := range diag.Bottlenecks() { ... } // negative C_j = bottleneck
//
// Everything is pure Go on the standard library. The I/O substrate is a
// simulated Lustre-like parallel file system (see DESIGN.md for the
// substitutions relative to the paper's Cori testbed).
package aiio

import (
	"context"
	"io"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/logdb"
	"github.com/hpc-repro/aiio/internal/shap"
	"github.com/hpc-repro/aiio/internal/tune"
)

// Re-exported core types. The aliases keep one canonical implementation in
// the internal packages while giving library users a single import.
type (
	// Record is one job's Darshan log (45 POSIX counters + performance tag).
	Record = darshan.Record
	// Dataset is an I/O log database.
	Dataset = darshan.Dataset
	// CounterID identifies one of the 45 counters.
	CounterID = darshan.CounterID
	// Frame is a model-ready (transformed) dataset.
	Frame = features.Frame
	// Ensemble is the set of trained performance functions.
	Ensemble = core.Ensemble
	// Diagnosis is AIIO's output for one job.
	Diagnosis = core.Diagnosis
	// Factor is one counter's contribution to a job's performance.
	Factor = core.Factor
	// TrainOptions configures ensemble training.
	TrainOptions = core.TrainOptions
	// TrainReport summarizes training (per-model eval RMSE).
	TrainReport = core.TrainReport
	// DiagnoseOptions selects the interpreter (SHAP/LIME) and its budgets.
	DiagnoseOptions = core.DiagnoseOptions
	// DatabaseConfig configures synthetic log-database generation.
	DatabaseConfig = logdb.GenConfig
	// RecordError describes one record quarantined by ParseDatasetLenient.
	RecordError = darshan.RecordError
	// Recommendation is one automatic tuning suggestion with its
	// model-predicted gain.
	Recommendation = tune.Recommendation
	// SHAPMode selects the Shapley estimator inside the SHAP interpreters
	// (see DiagnoseOptions.SHAPMode).
	SHAPMode = shap.Mode
)

// SHAP estimator modes for DiagnoseOptions.SHAPMode.
const (
	// SHAPModeAuto routes tree-ensemble models through the exact TreeSHAP
	// fast path and everything else through Kernel SHAP.
	SHAPModeAuto = shap.ModeAuto
	// SHAPModeKernel forces the model-agnostic Kernel SHAP estimator.
	SHAPModeKernel = shap.ModeKernel
	// SHAPModeTree forces exact TreeSHAP; non-tree models fail (and an
	// ensemble degrades to its tree members).
	SHAPModeTree = shap.ModeTree
)

// The five performance-function names of the paper.
const (
	ModelXGBoost  = core.NameXGBoost
	ModelLightGBM = core.NameLightGBM
	ModelCatBoost = core.NameCatBoost
	ModelMLP      = core.NameMLP
	ModelTabNet   = core.NameTabNet
)

// GenerateDatabase produces a synthetic I/O log database (the Table 1
// substitute) by simulating a mixture of HPC workloads.
func GenerateDatabase(cfg DatabaseConfig) *Dataset {
	return logdb.Generate(cfg)
}

// BuildFrame applies the paper's feature engineering (Eq. 1–2) to a
// dataset.
func BuildFrame(ds *Dataset) *Frame {
	return features.Build(ds)
}

// Train fits the performance functions on a frame with the paper's
// shuffled-split and early-stopping recipe.
func Train(frame *Frame, opts TrainOptions) (*Ensemble, *TrainReport, error) {
	return core.TrainEnsemble(frame, opts)
}

// DefaultTrainOptions returns the paper's training configuration (all five
// models, 50/50 split).
func DefaultTrainOptions() TrainOptions { return core.DefaultTrainOptions() }

// DefaultDiagnoseOptions returns the Kernel SHAP diagnosis configuration.
func DefaultDiagnoseOptions() DiagnoseOptions { return core.DefaultDiagnoseOptions() }

// SaveModels persists an ensemble into a registry directory, as the web
// service stores its pre-trained models.
func SaveModels(dir string, ens *Ensemble) error { return core.SaveEnsemble(dir, ens) }

// LoadModels reads a registry directory written by SaveModels.
func LoadModels(dir string) (*Ensemble, error) { return core.LoadEnsemble(dir) }

// ParseLog reads a single Darshan text log.
func ParseLog(r io.Reader) (*Record, error) { return darshan.ParseLog(r) }

// WriteLog writes a record in the Darshan text log format.
func WriteLog(w io.Writer, rec *Record) error { return darshan.WriteLog(w, rec) }

// ParseDataset reads a multi-record log stream, aborting on the first
// malformed record.
func ParseDataset(r io.Reader) (*Dataset, error) { return darshan.ParseDataset(r) }

// ParseDatasetLenient reads a multi-record log stream, quarantining
// malformed or out-of-range records (NaN/Inf/negative counters) instead of
// aborting. Use it for real-world log corpora where one corrupt job must
// not discard the rest.
func ParseDatasetLenient(r io.Reader) (*Dataset, []RecordError, error) {
	return darshan.ParseDatasetLenient(r)
}

// QuarantineSummary renders a one-line account of a lenient parse.
func QuarantineSummary(accepted int, quarantine []RecordError) string {
	return darshan.QuarantineSummary(accepted, quarantine)
}

// TrainContext is Train with cooperative cancellation: ctx is checked
// between model fits.
func TrainContext(ctx context.Context, frame *Frame, opts TrainOptions) (*Ensemble, *TrainReport, error) {
	return core.TrainEnsembleContext(ctx, frame, opts)
}

// WriteDataset writes a whole dataset as one log stream.
func WriteDataset(w io.Writer, ds *Dataset) error { return darshan.WriteDataset(w, ds) }

// CounterNames returns the 45 counter names in canonical order (Table 4).
func CounterNames() []string { return darshan.CounterNames() }

// Advise maps a diagnosis to ranked tuning recommendations whose predicted
// gains come from counterfactual evaluation of the trained performance
// functions (the paper's "automatically fixing I/O issues" future work).
// Only recommendations with predicted gain >= minGain are returned.
func Advise(ens *Ensemble, diag *Diagnosis, minGain float64) ([]Recommendation, error) {
	return tune.New(ens).Advise(diag, minGain)
}
