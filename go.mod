module github.com/hpc-repro/aiio

go 1.22
