// advisor demonstrates the automated diagnose → tune loop (the paper's
// "automatically fixing I/O issues" future work): AIIO diagnoses a slow job,
// the advisor maps the bottlenecks to concrete tunings with model-predicted
// gains (counterfactual evaluation of the performance functions), and the
// simulator verifies the prediction by running the tuned job.
//
//	go run ./examples/advisor
package main

import (
	"fmt"
	"log"

	"github.com/hpc-repro/aiio"
)

func main() {
	fmt.Println("training AIIO on the simulated log database...")
	db := aiio.GenerateDatabase(aiio.DatabaseConfig{Jobs: 1200, Seed: 1})
	opts := aiio.DefaultTrainOptions()
	opts.Fast = true
	ens, _, err := aiio.Train(aiio.BuildFrame(db), opts)
	if err != nil {
		log.Fatal(err)
	}

	// The slow job: the paper's pattern 1 at reduced scale.
	slow, err := aiio.SimulateIOR("ior -w -t 1k -b 1m -Y", 16, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nslow job measured at %.2f MiB/s\n", slow.PerfMiBps)

	diag, err := ens.Diagnose(slow, aiio.DefaultDiagnoseOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bottlenecks:")
	for i, f := range diag.Bottlenecks() {
		if i >= 3 {
			break
		}
		fmt.Printf("  %-28s %+8.4f\n", f.Counter, f.Contribution)
	}

	recs, err := aiio.Advise(ens, diag, 1.05)
	if err != nil {
		log.Fatal(err)
	}
	if len(recs) == 0 {
		log.Fatal("advisor found nothing — unexpected for this job")
	}
	fmt.Println("\nadvisor recommendations (model-predicted gains):")
	for _, r := range recs {
		fmt.Printf("  %-24s %6.1fx  %s\n", r.Action, r.PredictedGain, r.Description)
	}

	// Apply the top recommendation's real-world analogue and verify: the
	// advisor's first suggestion for this job is the transfer-size merge,
	// which corresponds to IOR's -t 1m.
	tuned, err := aiio.SimulateIOR("ior -w -t 1m -b 1m -Y", 16, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter applying %q: measured %.2f MiB/s (%.1fx; advisor predicted %.1fx)\n",
		recs[0].Action, tuned.PerfMiBps, tuned.PerfMiBps/slow.PerfMiBps, recs[0].PredictedGain)
}
