// ior-patterns walks the six low-performing I/O access patterns of the
// paper's Section 4.1: run each IOR configuration on the simulated file
// system, diagnose the resulting log with AIIO, apply the paper's tuning,
// and re-measure — the iterative diagnose-tune loop of the evaluation.
//
//	go run ./examples/ior-patterns
package main

import (
	"fmt"
	"log"

	"github.com/hpc-repro/aiio"
	"github.com/hpc-repro/aiio/internal/iosim"
	"github.com/hpc-repro/aiio/internal/workload"
)

func main() {
	fmt.Println("training AIIO on the simulated log database...")
	db := aiio.GenerateDatabase(aiio.DatabaseConfig{Jobs: 1200, Seed: 1})
	opts := aiio.DefaultTrainOptions()
	opts.Fast = true
	ens, _, err := aiio.Train(aiio.BuildFrame(db), opts)
	if err != nil {
		log.Fatal(err)
	}

	params := iosim.DefaultParams()
	params.NoiseSigma = 0
	for _, pat := range workload.Patterns() {
		// Reduced scale (the paper uses 256 tasks; 32 keeps this instant).
		cfg := pat.Config.Scale(8, 2)
		tuned := pat.TunedConfig.Scale(8, 2)

		rec, res := cfg.Run("ior", int64(pat.ID), int64(pat.ID), params)
		trec, tres := tuned.Run("ior-tuned", int64(pat.ID+10), int64(pat.ID+10), params)

		fmt.Printf("\n%s — %s\n", pat.Figure, pat.Name)
		fmt.Printf("  config:  %s\n", pat.CmdLine)
		fmt.Printf("  measured: %.2f MiB/s\n", res.PerfMiBps)

		diag, err := ens.Diagnose(rec, aiio.DefaultDiagnoseOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  AIIO bottlenecks:")
		for i, f := range diag.Bottlenecks() {
			if i >= 3 {
				break
			}
			fmt.Printf("    %-28s %+8.4f\n", f.Counter, f.Contribution)
		}
		fmt.Printf("  tuning: %s\n", pat.Tuning)
		fmt.Printf("  after tuning: %.2f MiB/s (%.1fx)\n",
			tres.PerfMiBps, tres.PerfMiBps/res.PerfMiBps)

		tdiag, err := ens.Diagnose(trec, aiio.DefaultDiagnoseOptions())
		if err != nil {
			log.Fatal(err)
		}
		if b := tdiag.Bottlenecks(); len(b) > 0 {
			fmt.Printf("  remaining top factor: %s (%+.4f) — the next iteration's target\n",
				b[0].Counter, b[0].Contribution)
		} else {
			fmt.Println("  no negative factors remain")
		}
	}
}
