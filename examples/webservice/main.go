// webservice demonstrates the AIIO web service of Section 3.4 / Fig. 17:
// train the models, save them into a registry, start the HTTP service on a
// loopback port, upload a Darshan log from a client, and print the JSON
// diagnosis — the full production deployment path.
//
//	go run ./examples/webservice
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/hpc-repro/aiio"
	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/webservice"
)

func main() {
	// Train and persist the models, as an operator would do offline.
	fmt.Println("training and saving the model registry...")
	db := aiio.GenerateDatabase(aiio.DatabaseConfig{Jobs: 1000, Seed: 1})
	opts := aiio.DefaultTrainOptions()
	opts.Fast = true
	ens, _, err := aiio.Train(aiio.BuildFrame(db), opts)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "aiio-registry-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := aiio.SaveModels(dir, ens); err != nil {
		log.Fatal(err)
	}

	// Boot the service from the registry (what cmd/aiio-server does).
	loaded, err := aiio.LoadModels(dir)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Handler:           webservice.NewServer(loaded, core.DefaultDiagnoseOptions()).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln)
	defer srv.Close()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("aiio web service listening on %s\n", baseURL)

	// A user uploads their job's Darshan log.
	client := webservice.NewClient(baseURL)
	models, err := client.Models()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered models: %d\n", len(models))

	rec, err := aiio.SimulateIOR("ior -w -t 1k -b 1m -Y", 16, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuploading a log: %s, measured %.2f MiB/s\n", rec.App, rec.PerfMiBps)
	resp, err := client.Diagnose(rec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("closest model: %s\n", resp.ClosestModel)
	fmt.Printf("robust: %v\n", resp.Robust)
	fmt.Println("bottlenecks:")
	for i, b := range resp.Bottlenecks {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-28s %+8.4f\n", b.Counter, b.Contribution)
	}
}
