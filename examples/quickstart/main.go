// Quickstart: train AIIO on a simulated I/O log database and diagnose one
// badly-behaving job, end to end, using only the public aiio package.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/hpc-repro/aiio"
)

func main() {
	// 1. Build the historical I/O log database (the paper trains on 6.6M
	//    Cori jobs; the simulator generates a workload mixture with the
	//    same counter -> performance structure).
	fmt.Println("generating the I/O log database...")
	db := aiio.GenerateDatabase(aiio.DatabaseConfig{Jobs: 1200, Seed: 1})
	fmt.Printf("  %d jobs, average sparsity %.4f (paper: 0.2379)\n",
		db.Len(), db.AverageSparsity())

	// 2. Feature engineering (Eq. 1-2) and training the five performance
	//    functions with the paper's 50/50 shuffled split + early stopping.
	frame := aiio.BuildFrame(db)
	opts := aiio.DefaultTrainOptions()
	opts.Fast = true // reduced budgets; drop for full library-default runs
	fmt.Println("training xgboost, lightgbm, catboost, mlp, tabnet...")
	ens, rep, err := aiio.Train(frame, opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range rep.Models {
		fmt.Printf("  %-9s eval RMSE %.4f\n", m.Name, m.PredictionRMSE)
	}

	// 3. A new, unseen job: IOR writing sequentially with tiny synced
	//    requests (the paper's pattern 1, Fig. 7a). In a real deployment
	//    this record would come from a parsed Darshan log file.
	rec := slowIORJob()
	fmt.Printf("\ndiagnosing a %s job with measured %.2f MiB/s...\n", rec.App, rec.PerfMiBps)

	diag, err := ens.Diagnose(rec, aiio.DefaultDiagnoseOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Read the diagnosis: negative contributions are bottlenecks.
	fmt.Println("\ntop factors (merged Average Method):")
	for _, f := range diag.TopFactors(9) {
		marker := " "
		if f.Contribution < 0 {
			marker = "*" // bottleneck
		}
		fmt.Printf("  %s %-28s %+8.4f   (counter value %g)\n",
			marker, f.Counter, f.Contribution, f.Value)
	}
	if b := diag.Bottlenecks(); len(b) > 0 {
		fmt.Printf("\n=> dominant bottleneck: %s\n", b[0].Counter)
		fmt.Println("   hint: increase the transfer size (the paper's fix gave 104x, Fig. 7)")
	}

	// 5. Persist the trained models the way the web service stores them.
	dir, err := os.MkdirTemp("", "aiio-models-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := aiio.SaveModels(dir, ens); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel registry saved to %s\n", dir)
}

// slowIORJob produces the Darshan record of the paper's pattern 1 by writing
// it through the log text format, as a user would hand AIIO a real log.
func slowIORJob() *aiio.Record {
	const logText = `# darshan log version: aiio-1.0
# exe: ior
# jobid: 4242
# performance_mibps: 4.3
nprocs	16
LUSTRE_STRIPE_SIZE	1048576
LUSTRE_STRIPE_WIDTH	1
POSIX_OPENS	16
POSIX_MEM_ALIGNMENT	8
POSIX_FILE_ALIGNMENT	1048576
POSIX_FILE_NOT_ALIGNED	4092
POSIX_WRITES	4096
POSIX_SEEKS	16
POSIX_BYTES_WRITTEN	4194304
POSIX_CONSEC_WRITES	4080
POSIX_SEQ_WRITES	4080
POSIX_SIZE_WRITE_100_1K	4096
POSIX_ACCESS1_ACCESS	1024
POSIX_ACCESS1_COUNT	4096
`
	rec, err := aiio.ParseLog(strings.NewReader(logText))
	if err != nil {
		log.Fatal(err)
	}
	return rec
}
