// real-apps reproduces the paper's Section 4.2: diagnose the I/O kernels of
// three real scientific applications — E2E (Chimera/Pixie3D checkpoint
// writer), OpenPMD (h5bench particle/mesh kernel), and DASSA (DAS earthquake
// search) — then apply the paper's tuning and re-measure. The paper reports
// 146x, 1.82x and 2.1x; the simulated substrate reproduces the shape.
//
//	go run ./examples/real-apps
package main

import (
	"fmt"
	"log"

	"github.com/hpc-repro/aiio"
	"github.com/hpc-repro/aiio/internal/apps"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/iosim"
)

type appCase struct {
	name    string
	paper   string
	tuning  string
	untuned func(params iosim.Params) (*darshan.Record, iosim.Result)
	tuned   func(params iosim.Params) (*darshan.Record, iosim.Result)
}

func main() {
	fmt.Println("training AIIO on the simulated log database...")
	db := aiio.GenerateDatabase(aiio.DatabaseConfig{Jobs: 1200, Seed: 1})
	opts := aiio.DefaultTrainOptions()
	opts.Fast = true
	ens, _, err := aiio.Train(aiio.BuildFrame(db), opts)
	if err != nil {
		log.Fatal(err)
	}

	params := iosim.DefaultParams()
	params.NoiseSigma = 0
	cases := []appCase{
		{
			name:   "E2E write_3d_nc4 (Fig. 13)",
			paper:  "3.28 -> 482.22 MiB/s (146x)",
			tuning: "match the data size to the writes so collective I/O can merge them",
			untuned: func(p iosim.Params) (*darshan.Record, iosim.Result) {
				return apps.PaperE2E().Scale(4).Run(1, 1, p)
			},
			tuned: func(p iosim.Params) (*darshan.Record, iosim.Result) {
				return apps.PaperE2ETuned().Run(2, 2, p)
			},
		},
		{
			name:   "OpenPMD h5bench kernel (Fig. 14)",
			paper:  "713.65 -> 1303.27 MiB/s (1.82x)",
			tuning: "collective I/O + 4 MiB stripes",
			untuned: func(p iosim.Params) (*darshan.Record, iosim.Result) {
				return apps.PaperOpenPMD().Scale(4).Run(3, 3, p)
			},
			tuned: func(p iosim.Params) (*darshan.Record, iosim.Result) {
				return apps.PaperOpenPMDTuned().Scale(4).Run(4, 4, p)
			},
		},
		{
			name:   "DASSA xcorr earthquake search (Fig. 15)",
			paper:  "695.91 -> 1482.06 MiB/s (2.1x)",
			tuning: "merge the 21 one-minute files into one",
			untuned: func(p iosim.Params) (*darshan.Record, iosim.Result) {
				return apps.PaperDASSA().Run(5, 5, p)
			},
			tuned: func(p iosim.Params) (*darshan.Record, iosim.Result) {
				return apps.PaperDASSATuned().Run(6, 6, p)
			},
		},
	}

	for _, c := range cases {
		rec, res := c.untuned(params)
		trec, tres := c.tuned(params)
		fmt.Printf("\n%s\n", c.name)
		fmt.Printf("  paper:    %s\n", c.paper)
		fmt.Printf("  measured: %.2f MiB/s\n", res.PerfMiBps)

		diag, err := ens.Diagnose(rec, aiio.DefaultDiagnoseOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  AIIO bottlenecks:")
		for i, f := range diag.Bottlenecks() {
			if i >= 3 {
				break
			}
			fmt.Printf("    %-28s %+8.4f (value %g)\n", f.Counter, f.Contribution, f.Value)
		}
		fmt.Printf("  tuning: %s\n", c.tuning)
		fmt.Printf("  after tuning: %.2f MiB/s (%.2fx)\n",
			tres.PerfMiBps, tres.PerfMiBps/res.PerfMiBps)
		_ = trec
	}
}
