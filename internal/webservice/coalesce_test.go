package webservice

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/iosim"
	"github.com/hpc-repro/aiio/internal/workload"
)

// coalesceRecord builds a distinct deterministic job per scale.
func coalesceRecord(scale int) *darshan.Record {
	params := iosim.DefaultParams()
	params.NoiseSigma = 0
	cfg := workload.Patterns()[0].Config.Scale(scale, 4)
	rec, _ := cfg.Run("ior", 1, 5, params)
	return rec
}

// almostEqual is the 1e-9 parity bound the core determinism suite uses.
func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func assertParity(t *testing.T, got, want *DiagnosisResponse, label string) {
	t.Helper()
	if len(got.Models) != len(want.Models) || len(got.Factors) != len(want.Factors) {
		t.Fatalf("%s: shape mismatch: %d/%d models, %d/%d factors",
			label, len(got.Models), len(want.Models), len(got.Factors), len(want.Factors))
	}
	for i := range want.Models {
		if got.Models[i].Name != want.Models[i].Name ||
			!almostEqual(got.Models[i].PredictedMiBps, want.Models[i].PredictedMiBps) ||
			!almostEqual(got.Models[i].Weight, want.Models[i].Weight) {
			t.Errorf("%s: model %s prediction %v/%v weight %v/%v diverged",
				label, want.Models[i].Name,
				got.Models[i].PredictedMiBps, want.Models[i].PredictedMiBps,
				got.Models[i].Weight, want.Models[i].Weight)
		}
	}
	for i := range want.Factors {
		if got.Factors[i].Counter != want.Factors[i].Counter ||
			!almostEqual(got.Factors[i].Contribution, want.Factors[i].Contribution) {
			t.Errorf("%s: factor %d (%s) contribution %v, uncoalesced %v",
				label, i, want.Factors[i].Counter,
				got.Factors[i].Contribution, want.Factors[i].Contribution)
		}
	}
	if got.ClosestModel != want.ClosestModel {
		t.Errorf("%s: closest model %q vs %q", label, got.ClosestModel, want.ClosestModel)
	}
}

// TestCoalescedParity: concurrent single-job requests fused into one batch
// return results numerically identical (≤1e-9) to the uncoalesced path.
func TestCoalescedParity(t *testing.T) {
	ens := ensemble(t)

	plain := NewServer(ens, fastOpts())
	plain.CacheSize = -1 // force real passes on both sides
	plainSrv := httptest.NewServer(plain.Handler())
	defer plainSrv.Close()

	fused := NewServer(ens, fastOpts())
	fused.CacheSize = -1
	fused.CoalesceWindow = 50 * time.Millisecond // wide: force fusion
	fused.CoalesceMax = 16
	fusedSrv := httptest.NewServer(fused.Handler())
	defer fusedSrv.Close()

	const jobs = 6
	want := make([]*DiagnosisResponse, jobs)
	plainClient := NewClient(plainSrv.URL)
	for i := 0; i < jobs; i++ {
		var err error
		want[i], err = plainClient.Diagnose(coalesceRecord(12 + i))
		if err != nil {
			t.Fatalf("uncoalesced diagnose %d: %v", i, err)
		}
	}

	got := make([]*DiagnosisResponse, jobs)
	errs := make([]error, jobs)
	fusedClient := NewClient(fusedSrv.URL)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = fusedClient.Diagnose(coalesceRecord(12 + i))
		}(i)
	}
	wg.Wait()
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Fatalf("coalesced diagnose %d: %v", i, errs[i])
		}
		assertParity(t, got[i], want[i], fmt.Sprintf("job %d", i))
	}
	batches, fusedCount := fused.coal.stats()
	if fusedCount != jobs {
		t.Errorf("coalescer served %d requests, %d were sent", fusedCount, jobs)
	}
	if batches >= fusedCount {
		t.Errorf("no fusion happened (%d batches for %d requests) — the parity run did not exercise coalescing", batches, fusedCount)
	}
}

// TestCoalesceDuplicateFusion: a dogpile of identical cold requests
// collapses to far fewer ensemble passes than requests.
func TestCoalesceDuplicateFusion(t *testing.T) {
	s := NewServer(ensemble(t), fastOpts())
	s.CoalesceWindow = 50 * time.Millisecond
	s.CoalesceMax = 64
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const clients = 16
	rec := coalesceRecord(40)
	client := NewClient(srv.URL)
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = client.Diagnose(rec)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	batches, fusedCount := s.coal.stats()
	if fusedCount != clients {
		t.Fatalf("coalescer saw %d requests, %d were sent", fusedCount, clients)
	}
	// All clients fire at once into a 50ms window: the dogpile must
	// collapse to a handful of batches (each one ensemble pass per distinct
	// job — and there is exactly one distinct job).
	if batches > uint64(clients/4) {
		t.Errorf("%d batches for %d identical concurrent requests — duplicate fusion is not collapsing the dogpile", batches, clients)
	}
}

// TestCoalesceWaiterDeadline: a waiter whose context dies while parked
// gets its error immediately; the batch serves the survivors.
func TestCoalesceWaiterDeadline(t *testing.T) {
	release := make(chan struct{})
	c := newCoalescer(time.Hour /* never flush by timer */, 2,
		func(ctx context.Context, recs []*darshan.Record) ([]*coalescedResult, error) {
			<-release
			out := make([]*coalescedResult, len(recs))
			for i := range out {
				out[i] = &coalescedResult{}
			}
			return out, nil
		})

	impatient, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	rec := coalesceRecord(8)
	go func() {
		_, err := c.submit(impatient, rec)
		done <- err
	}()

	// The impatient waiter must get its deadline error while the batch is
	// still parked (nothing has dispatched: max=2, one waiter).
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("parked waiter returned %v, want deadline", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked waiter did not honor its deadline")
	}

	// A second submit fills the batch (max=2) and dispatches; the batch
	// still serves even though its first waiter gave up.
	patient := make(chan error, 1)
	go func() {
		_, err := c.submit(context.Background(), coalesceRecord(9))
		patient <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	select {
	case err := <-patient:
		if err != nil {
			t.Fatalf("surviving waiter: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("batch never served the surviving waiter")
	}
}

// TestCoalesceBatchDeadlineIsLatestWaiter: the fused pass is bounded by
// the slowest caller's deadline, not the fastest.
func TestCoalesceBatchDeadlineIsLatestWaiter(t *testing.T) {
	now := time.Now()
	short, cancelShort := context.WithDeadline(context.Background(), now.Add(50*time.Millisecond))
	defer cancelShort()
	long, cancelLong := context.WithDeadline(context.Background(), now.Add(10*time.Second))
	defer cancelLong()

	batch := []*coalesceWaiter{{ctx: short}, {ctx: long}}
	ctx, cancel := batchContext(batch)
	defer cancel()
	d, ok := ctx.Deadline()
	if !ok {
		t.Fatal("batch context has no deadline despite bounded waiters")
	}
	if d.Before(now.Add(5 * time.Second)) {
		t.Fatalf("batch deadline %v follows the impatient waiter, want the latest", d.Sub(now))
	}

	unbounded := []*coalesceWaiter{{ctx: short}, {ctx: context.Background()}}
	ctx2, cancel2 := batchContext(unbounded)
	defer cancel2()
	if _, ok := ctx2.Deadline(); ok {
		t.Fatal("one unbounded waiter must make the batch unbounded")
	}
}

// TestCoalesceBreakerOpenError: a batch refused because every breaker is
// open surfaces the typed error to each waiter.
func TestCoalesceBreakerOpenError(t *testing.T) {
	c := newCoalescer(time.Millisecond, 4,
		func(ctx context.Context, recs []*darshan.Record) ([]*coalescedResult, error) {
			return nil, errAllBreakersOpen
		})
	_, err := c.submit(context.Background(), coalesceRecord(8))
	if !errors.Is(err, errAllBreakersOpen) {
		t.Fatalf("got %v, want errAllBreakersOpen", err)
	}
}
