package webservice

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
)

// Request micro-batch coalescing: single-job diagnose requests that arrive
// within a small window are fused into one DiagnoseBatch call behind the
// admission funnel, and the per-job results are demultiplexed back to their
// callers. Two effects stack:
//
//   - N distinct jobs in a window become one sharded ensemble pass instead
//     of N independent passes — one snapshot, one breaker partition, one
//     outcome accounting, and the batch engine's row-paired kernels.
//   - Duplicate jobs in a window (the dogpile: many clients diagnosing the
//     same cold job before any of them has filled the cache) collapse to a
//     single diagnosis fanned out to every waiter. Uncoalesced, each
//     admitted duplicate pays a full ensemble pass; coalesced, exactly one
//     does.
//
// Each waiter keeps its own context: a caller whose deadline expires while
// the fused batch is still running gets its structured 503 immediately,
// while the batch runs on for the survivors. The batch itself is bounded by
// the latest deadline among its waiters, so a fused pass can never outlive
// every caller that wanted it. Because the diagnosis engine is
// deterministic and seeds its explainers independently of batch position,
// a coalesced result is numerically identical (≤1e-9, the same bound the
// core parity suite enforces) to the uncoalesced one.

// DefaultCoalesceWindow is how long the first waiter of a batch holds the
// batch open for followers. ~2ms is far below a single ensemble pass
// (milliseconds to seconds) but wide enough to fuse a concurrent flood.
const DefaultCoalesceWindow = 2 * time.Millisecond

// DefaultCoalesceMax caps a fused batch; a full batch dispatches
// immediately instead of waiting out the window.
const DefaultCoalesceMax = 32

// errAllBreakersOpen tells a coalesced waiter's handler to answer with the
// structured breaker-open 503 (writeBreakerOpen), exactly like the
// uncoalesced path.
var errAllBreakersOpen = errors.New("webservice: every model's circuit breaker is open")

// coalescedResult is what one waiter receives from its fused batch.
type coalescedResult struct {
	diag *core.Diagnosis
	// allowed is the breaker-filtered ensemble the batch ran on; the
	// handler advises against it so recommendations match the uncoalesced
	// path.
	allowed *core.Ensemble
	// open names breaker-open models skipped by the whole batch.
	open []string
	// batched is how many requests the fused pass served (1 = no fusion);
	// fromCache marks a result resolved from the LRU at flush time (a
	// previous batch filled it between this waiter's handler-level cache
	// check and the flush).
	batched   int
	fromCache bool
	err       error
}

// coalesceWaiter is one parked single-job request.
type coalesceWaiter struct {
	rec *darshan.Record
	ctx context.Context
	// ch is buffered: the dispatcher never blocks on a waiter that gave up.
	ch chan coalescedResult
}

// coalescer fuses single-job diagnose requests into micro-batches.
type coalescer struct {
	window time.Duration
	max    int
	// run executes one fused batch over deduplicated records; it is
	// Server.runCoalesced bound at construction.
	run func(ctx context.Context, recs []*darshan.Record) ([]*coalescedResult, error)

	mu      sync.Mutex
	pending []*coalesceWaiter
	timer   *time.Timer

	// batches/fused count dispatched batches and the requests they served,
	// for /healthz observability.
	batches uint64
	fused   uint64
}

func newCoalescer(window time.Duration, max int,
	run func(ctx context.Context, recs []*darshan.Record) ([]*coalescedResult, error)) *coalescer {
	if max <= 0 {
		max = DefaultCoalesceMax
	}
	return &coalescer{window: window, max: max, run: run}
}

// submit parks the request until its batch flushes and returns its share of
// the fused result. A ctx expiry while parked or while the batch runs
// returns ctx's error; the batch itself is unaffected.
func (c *coalescer) submit(ctx context.Context, rec *darshan.Record) (coalescedResult, error) {
	w := &coalesceWaiter{rec: rec, ctx: ctx, ch: make(chan coalescedResult, 1)}
	c.mu.Lock()
	c.pending = append(c.pending, w)
	if len(c.pending) >= c.max {
		// A full batch dispatches now; the window only bounds how long a
		// partial batch waits for followers.
		batch := c.takeLocked()
		c.mu.Unlock()
		go c.dispatch(batch)
	} else {
		if len(c.pending) == 1 {
			c.timer = time.AfterFunc(c.window, c.flush)
		}
		c.mu.Unlock()
	}
	select {
	case res := <-w.ch:
		return res, res.err
	case <-ctx.Done():
		return coalescedResult{}, ctx.Err()
	}
}

// flush is the window timer's callback: dispatch whatever accumulated.
func (c *coalescer) flush() {
	c.mu.Lock()
	batch := c.takeLocked()
	c.mu.Unlock()
	if len(batch) > 0 {
		c.dispatch(batch)
	}
}

// takeLocked detaches the pending batch and disarms the timer. Callers hold
// c.mu.
func (c *coalescer) takeLocked() []*coalesceWaiter {
	batch := c.pending
	c.pending = nil
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	return batch
}

// stats reports dispatched batches and the requests they served.
func (c *coalescer) stats() (batches, fused uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batches, c.fused
}

// dispatch runs one fused batch: duplicate jobs are collapsed to one
// record, the batch executes once, and every waiter — including each
// duplicate — receives its job's result.
func (c *coalescer) dispatch(batch []*coalesceWaiter) {
	c.mu.Lock()
	c.batches++
	c.fused += uint64(len(batch))
	c.mu.Unlock()
	// Collapse duplicates: waiters are grouped by exact job identity (the
	// same full-bits key the diagnosis cache uses, minus the model-set
	// version), so the fused pass diagnoses each distinct job once.
	groupOf := make([]int, len(batch))
	index := make(map[string]int, len(batch))
	var recs []*darshan.Record
	for i, w := range batch {
		key := cacheKey(0, w.rec)
		g, ok := index[key]
		if !ok {
			g = len(recs)
			index[key] = g
			recs = append(recs, w.rec)
		}
		groupOf[i] = g
	}
	ctx, cancel := batchContext(batch)
	results, err := c.run(ctx, recs)
	cancel()
	for i, w := range batch {
		if err != nil {
			w.ch <- coalescedResult{err: err, batched: len(batch)}
			continue
		}
		res := *results[groupOf[i]]
		res.batched = len(batch)
		w.ch <- res
	}
}

// batchContext bounds the fused pass by the latest deadline among its
// waiters: the batch must be allowed to outlive any single impatient
// caller (the others still want the result), but never every caller.
func batchContext(batch []*coalesceWaiter) (context.Context, context.CancelFunc) {
	var latest time.Time
	for _, w := range batch {
		d, ok := w.ctx.Deadline()
		if !ok {
			// One unbounded waiter means the batch is unbounded too.
			return context.Background(), func() {}
		}
		if d.After(latest) {
			latest = d
		}
	}
	return context.WithDeadline(context.Background(), latest)
}

// coalescerIfEnabled returns the server's coalescer, built at first use
// when CoalesceWindow > 0.
func (s *Server) coalescerIfEnabled() *coalescer {
	s.coalesceOnce.Do(func() {
		if s.CoalesceWindow > 0 {
			s.coal = newCoalescer(s.CoalesceWindow, s.CoalesceMax, s.runCoalesced)
		}
	})
	return s.coal
}

// runCoalesced executes one fused batch the same way handleDiagnoseBatch
// serves a multi-record body: snapshot, flush-time cache resolution,
// breaker partition, one DiagnoseBatch over the misses, outcome
// accounting, cache fills. recs are already deduplicated.
func (s *Server) runCoalesced(ctx context.Context, recs []*darshan.Record) ([]*coalescedResult, error) {
	ens, opts, version := s.snapshot()
	cache := s.diagnosisCache()
	results := make([]*coalescedResult, len(recs))
	keys := make([]string, len(recs))
	var missIdx []int
	for i, rec := range recs {
		if cache != nil {
			keys[i] = cacheKey(version, rec)
			// Flush-time resolution: a batch dispatched a window ago may
			// have filled this key after the waiter's handler-level miss.
			if d, ok := cache.get(keys[i]); ok {
				results[i] = &coalescedResult{diag: d, fromCache: true}
				continue
			}
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) > 0 {
		allowed, open := s.applyBreakers(ens)
		if len(allowed.Models) == 0 {
			return nil, errAllBreakersOpen
		}
		missRecs := make([]*darshan.Record, len(missIdx))
		for k, i := range missIdx {
			missRecs[k] = recs[i]
		}
		fresh, err := allowed.DiagnoseBatchContext(ctx, missRecs, opts)
		if err != nil {
			if ctx.Err() == nil {
				s.recordAllFailures(allowed)
			}
			return nil, err
		}
		s.recordOutcomes(allowed, fresh...)
		for k, i := range missIdx {
			results[i] = &coalescedResult{diag: fresh[k], allowed: allowed, open: open}
			// Partial (breaker-degraded) results stay out of the cache,
			// like every other diagnosis path.
			if cache != nil && len(open) == 0 {
				cache.put(keys[i], fresh[k])
			}
		}
	}
	return results, nil
}
