package webservice

import (
	"bytes"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/linalg"
	"github.com/hpc-repro/aiio/internal/mlp"
	"github.com/hpc-repro/aiio/internal/tune"
)

// TestConcurrentUploadAndDiagnose hammers the service with interleaved
// model uploads (write lock) and diagnoses (snapshot reads). Under
// `go test -race` this is the regression test for the old behavior of
// holding the read lock across the whole SHAP computation; it also checks
// that every diagnosis completes against a coherent model set.
func TestConcurrentUploadAndDiagnose(t *testing.T) {
	base := ensemble(t)
	private := &core.Ensemble{Models: append([]core.Model(nil), base.Models...)}
	srv := httptest.NewServer(NewServer(private, fastOpts()).Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	var gob bytes.Buffer
	if err := base.Model(core.NameLightGBM).Save(&gob); err != nil {
		t.Fatal(err)
	}
	modelBytes := gob.Bytes()
	rec := testRecord()

	const diagnosers, uploads = 4, 6
	errc := make(chan error, diagnosers+1)
	var wg sync.WaitGroup

	for d := 0; d < diagnosers; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Diagnose(rec)
			if err != nil {
				errc <- err
				return
			}
			if len(resp.Models) < 2 {
				errc <- fmt.Errorf("diagnosis saw %d models", len(resp.Models))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for u := 0; u < uploads; u++ {
			// Alternate between replacing an existing model and adding a
			// new name, so both upload paths race against diagnoses.
			name := core.NameLightGBM
			if u%2 == 1 {
				name = "lightgbm-hotswap"
			}
			if err := client.UploadModel(name, "gbdt", bytes.NewReader(modelBytes)); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestUploadRejectsMismatchedFeatureDimension uploads a structurally valid
// model trained on the wrong feature count and expects a 400, not a model
// swap that would panic the next diagnosis.
func TestUploadRejectsMismatchedFeatureDimension(t *testing.T) {
	base := ensemble(t)
	private := &core.Ensemble{Models: append([]core.Model(nil), base.Models...)}
	srv := httptest.NewServer(NewServer(private, fastOpts()).Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	// A tiny MLP over 5 features instead of the 45-counter schema.
	x := linalg.NewMatrix(8, 5)
	y := make([]float64, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 5; j++ {
			x.Set(i, j, float64(i+j))
		}
		y[i] = float64(i)
	}
	cfg := mlp.DefaultConfig()
	cfg.Hidden = []int{4}
	cfg.Epochs = 1
	wrong, err := mlp.Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wrong.Save(&buf); err != nil {
		t.Fatal(err)
	}

	if err := client.UploadModel("mlp-wrong-dim", "mlp", &buf); err == nil {
		t.Fatal("upload of a 5-feature model succeeded")
	}
	// The bad model must not have been swapped in: diagnosis still works.
	if _, err := client.Diagnose(testRecord()); err != nil {
		t.Fatalf("diagnosis after rejected upload: %v", err)
	}
	models, err := client.Models()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range models {
		if m.Name == "mlp-wrong-dim" {
			t.Error("rejected model appears in the registry")
		}
	}
}

// TestAdvisoryErrorDegradesGracefully verifies that a tuning-advisor
// failure returns the successful diagnosis with an advisory_error field
// instead of a 500.
func TestAdvisoryErrorDegradesGracefully(t *testing.T) {
	s := NewServer(ensemble(t), fastOpts())
	s.advise = func(*core.Ensemble, *core.Diagnosis) ([]tune.Recommendation, error) {
		return nil, errors.New("synthetic advisor failure")
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := NewClient(srv.URL).Diagnose(testRecord())
	if err != nil {
		t.Fatalf("diagnosis failed outright: %v", err)
	}
	if resp.AdvisoryError == "" {
		t.Error("advisory_error not set")
	}
	if len(resp.Recommendations) != 0 {
		t.Error("recommendations present despite advisor failure")
	}
	if len(resp.Factors) == 0 || resp.ClosestModel == "" {
		t.Error("diagnosis payload incomplete")
	}
}

// TestDiagnoseBatchEndpoint round-trips several records through the batch
// endpoint and checks order and content.
func TestDiagnoseBatchEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewServer(ensemble(t), fastOpts()).Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	rec := testRecord()
	resps, err := client.DiagnoseBatch([]*darshan.Record{rec, rec, rec})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 3 {
		t.Fatalf("got %d responses, want 3", len(resps))
	}
	for i, r := range resps {
		if r.App != rec.App {
			t.Errorf("response %d: app %q, want %q", i, r.App, rec.App)
		}
		if len(r.Factors) == 0 {
			t.Errorf("response %d: no factors", i)
		}
		if !r.Robust {
			t.Errorf("response %d: not robust", i)
		}
	}

	// Empty body is a 400.
	httpResp, err := srv.Client().Post(srv.URL+"/api/v1/diagnose/batch", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != 400 {
		t.Errorf("empty batch got HTTP %d", httpResp.StatusCode)
	}
}
