package webservice

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
)

// DefaultCacheSize bounds the diagnosis result cache when Server.CacheSize
// is 0. One entry retains a full five-model Diagnosis (~tens of KB); the
// default keeps the cache under a few dozen MB.
const DefaultCacheSize = 1024

// diagCache is a bounded LRU of finished diagnoses. The web service's hot
// path — the multi-second SHAP work of POST /api/v1/diagnose — is keyed by
// everything a diagnosis depends on: the model-set version (bumped on every
// model upload, so stale ensembles can never serve) and the job's full
// identity (application, performance tag, all 45 counters). The key embeds
// the exact float bits rather than a hash, so two distinct jobs can never
// collide; repeat queries for the same job are O(1).
//
// Cached *core.Diagnosis values are shared across requests and must be
// treated as immutable by every reader (buildResponse and the advisor only
// read).
type diagCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key  string
	diag *core.Diagnosis
}

func newDiagCache(capacity int) *diagCache {
	return &diagCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached diagnosis for key and marks it most recently used.
func (c *diagCache) get(key string) (*core.Diagnosis, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).diag, true
}

// put inserts a diagnosis, evicting the least recently used entry past the
// capacity bound.
func (c *diagCache) put(key string, d *core.Diagnosis) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).diag = d
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, diag: d})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// purge drops every entry (model upload invalidation); the hit/miss
// counters survive for observability.
func (c *diagCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.entries = make(map[string]*list.Element, c.cap)
}

// stats reports the counters and current size.
func (c *diagCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// cacheKey serializes (model-set version, job identity) into a map key. The
// version prefix makes every pre-upload entry unreachable even before the
// purge lands.
func cacheKey(version uint64, rec *darshan.Record) string {
	buf := make([]byte, 0, 8+len(rec.App)+1+8*(int(darshan.NumCounters)+1))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], version)
	buf = append(buf, b[:]...)
	buf = append(buf, rec.App...)
	buf = append(buf, 0) // terminator: app names cannot forge counter bytes
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(rec.PerfMiBps))
	buf = append(buf, b[:]...)
	for _, c := range rec.Counters {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(c))
		buf = append(buf, b[:]...)
	}
	return string(buf)
}
