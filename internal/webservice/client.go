package webservice

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"github.com/hpc-repro/aiio/internal/darshan"
)

// Client talks to an AIIO web service.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the given base URL (e.g.
// "http://localhost:8080").
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: http.DefaultClient}
}

// Diagnose uploads a record as a text log and returns the diagnosis.
func (c *Client) Diagnose(rec *darshan.Record) (*DiagnosisResponse, error) {
	var body bytes.Buffer
	if err := darshan.WriteLog(&body, rec); err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Post(c.BaseURL+"/api/v1/diagnose", "text/plain", &body)
	if err != nil {
		return nil, fmt.Errorf("webservice: diagnose request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out DiagnosisResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("webservice: decode diagnosis: %w", err)
	}
	return &out, nil
}

// DiagnoseBatch uploads several records as one WriteDataset stream and
// returns their diagnoses in input order (no tuning recommendations; the
// single-job Diagnose provides those).
func (c *Client) DiagnoseBatch(recs []*darshan.Record) ([]*DiagnosisResponse, error) {
	var body bytes.Buffer
	if err := darshan.WriteDataset(&body, &darshan.Dataset{Records: recs}); err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Post(c.BaseURL+"/api/v1/diagnose/batch", "text/plain", &body)
	if err != nil {
		return nil, fmt.Errorf("webservice: batch diagnose request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out []*DiagnosisResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("webservice: decode batch diagnosis: %w", err)
	}
	return out, nil
}

// Models lists the registered models.
func (c *Client) Models() ([]ModelInfo, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/api/v1/models")
	if err != nil {
		return nil, fmt.Errorf("webservice: list models: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out []ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("webservice: decode models: %w", err)
	}
	return out, nil
}

// UploadModel registers a new pre-trained model from its gob serialization.
func (c *Client) UploadModel(name, kind string, gobData io.Reader) error {
	url := fmt.Sprintf("%s/api/v1/models?name=%s&kind=%s", c.BaseURL, name, kind)
	resp, err := c.HTTP.Post(url, "application/octet-stream", gobData)
	if err != nil {
		return fmt.Errorf("webservice: upload model: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return nil
}

func decodeError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
		return fmt.Errorf("webservice: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("webservice: HTTP %d", resp.StatusCode)
}
