package webservice

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/hpc-repro/aiio/internal/darshan"
)

// Retry policy: transient failures (connection refused/reset, any 5xx
// response) are retried up to retryAttempts times with exponential backoff
// and full jitter, so a fleet of clients hammering a restarting service
// does not reconverge in lockstep. Two admission-layer signals adjust
// that:
//
//   - 429 (shed): retried after the server's Retry-After hint instead of
//     the computed backoff — the server knows its own load better than our
//     exponential guess — plus up to 50% random jitter. The jitter matters:
//     a shedding server hands every refused client the SAME hint, and
//     honoring it verbatim re-synchronizes the whole herd into a second
//     stampede exactly one Retry-After later.
//   - 503 with X-AIIO-Breaker: open: NOT retried. Every model's circuit
//     breaker is open and will stay open for a cooldown; hammering the
//     instance only delays its recovery.
//
// Other 4xx responses are the caller's fault and are never retried. The
// caller's context bounds the whole exchange, including backoff sleeps.
const retryAttempts = 3

// retryBase is the first backoff delay; a var so tests can shrink it.
var retryBase = 100 * time.Millisecond

// maxRetryAfter caps how long a server-provided Retry-After hint can make
// the client sleep; a bogus huge hint must not park a caller for hours.
const maxRetryAfter = 30 * time.Second

// ErrBreakerOpen wraps a 503 carrying X-AIIO-Breaker: open. Callers can
// errors.Is for it to route traffic elsewhere instead of retrying.
var ErrBreakerOpen = errors.New("webservice: service circuit breakers open")

// retryDelay computes the sleep before retry attempt (1-based). With a
// server Retry-After hint it is hint plus up to 50% jitter — the spread
// that keeps a herd of clients shed at the same instant from returning at
// the same instant. Without a hint it is exponential backoff with full
// jitter: uniform in [base·2^(attempt-1), 2·base·2^(attempt-1)).
func retryDelay(attempt int, hint time.Duration) time.Duration {
	if hint > 0 {
		return hint + time.Duration(rand.Int63n(int64(hint)/2+1))
	}
	d := retryBase << (attempt - 1)
	return d + time.Duration(rand.Int63n(int64(d)+1))
}

// retryAfterHint parses a 429/503 Retry-After header (delta-seconds form
// only; the HTTP-date form is not worth the dependency), clamped to
// maxRetryAfter. Zero when absent or unparseable.
func retryAfterHint(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After")))
	if err != nil || secs <= 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}

// Client talks to an AIIO web service.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the given base URL (e.g.
// "http://localhost:8080").
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: http.DefaultClient}
}

// post sends body (replayable — a fresh reader per attempt) with the retry
// policy and returns the first non-5xx response.
func (c *Client) post(ctx context.Context, url, contentType string, body []byte) (*http.Response, error) {
	var lastErr error
	var hint time.Duration // server-provided Retry-After for the next attempt
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			delay := retryDelay(attempt, hint)
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, fmt.Errorf("webservice: %w (last attempt: %v)", ctx.Err(), lastErr)
			}
		}
		hint = 0
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := c.HTTP.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err // cancelled/deadlined: not transient
			}
			lastErr = err // connection-level failure: retry
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			// Shed by the admission layer: honor its Retry-After.
			lastErr = decodeError(resp)
			hint = retryAfterHint(resp)
			resp.Body.Close()
			continue
		}
		if resp.StatusCode >= 500 {
			if resp.Header.Get("X-AIIO-Breaker") == "open" {
				// Every model's breaker is open: retrying cannot help
				// until the cooldown; fail fast with a typed error.
				detail := decodeError(resp)
				resp.Body.Close()
				return nil, fmt.Errorf("%w: %v", ErrBreakerOpen, detail)
			}
			lastErr = decodeError(resp)
			resp.Body.Close()
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("webservice: giving up after %d attempts: %w", retryAttempts, lastErr)
}

// Diagnose uploads a record as a text log and returns the diagnosis.
func (c *Client) Diagnose(rec *darshan.Record) (*DiagnosisResponse, error) {
	return c.DiagnoseContext(context.Background(), rec)
}

// DiagnoseContext is Diagnose bounded by ctx: the deadline covers every
// retry attempt and the backoff sleeps between them.
func (c *Client) DiagnoseContext(ctx context.Context, rec *darshan.Record) (*DiagnosisResponse, error) {
	var body bytes.Buffer
	if err := darshan.WriteLog(&body, rec); err != nil {
		return nil, err
	}
	resp, err := c.post(ctx, c.BaseURL+"/api/v1/diagnose", "text/plain", body.Bytes())
	if err != nil {
		return nil, fmt.Errorf("webservice: diagnose request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out DiagnosisResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("webservice: decode diagnosis: %w", err)
	}
	return &out, nil
}

// DiagnoseBatch uploads several records as one WriteDataset stream and
// returns their diagnoses in input order (no tuning recommendations; the
// single-job Diagnose provides those).
func (c *Client) DiagnoseBatch(recs []*darshan.Record) ([]*DiagnosisResponse, error) {
	return c.DiagnoseBatchContext(context.Background(), recs)
}

// DiagnoseBatchContext is DiagnoseBatch bounded by ctx.
func (c *Client) DiagnoseBatchContext(ctx context.Context, recs []*darshan.Record) ([]*DiagnosisResponse, error) {
	var body bytes.Buffer
	if err := darshan.WriteDataset(&body, &darshan.Dataset{Records: recs}); err != nil {
		return nil, err
	}
	resp, err := c.post(ctx, c.BaseURL+"/api/v1/diagnose/batch", "text/plain", body.Bytes())
	if err != nil {
		return nil, fmt.Errorf("webservice: batch diagnose request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out []*DiagnosisResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("webservice: decode batch diagnosis: %w", err)
	}
	return out, nil
}

// Ingest ships records into the server's durable job log and returns the
// ingest accounting. Safe to retry: the server deduplicates by job hash,
// so a resend after a lost acknowledgment reports duplicates, not errors.
func (c *Client) Ingest(recs []*darshan.Record) (*IngestResponse, error) {
	return c.IngestContext(context.Background(), recs)
}

// IngestContext is Ingest bounded by ctx. A 429 from the ingest admission
// limit is retried after the server's Retry-After hint, like every post.
func (c *Client) IngestContext(ctx context.Context, recs []*darshan.Record) (*IngestResponse, error) {
	var body bytes.Buffer
	if err := darshan.WriteDataset(&body, &darshan.Dataset{Records: recs}); err != nil {
		return nil, err
	}
	resp, err := c.post(ctx, c.BaseURL+"/api/v1/jobs", "text/plain", body.Bytes())
	if err != nil {
		return nil, fmt.Errorf("webservice: ingest request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("webservice: decode ingest response: %w", err)
	}
	return &out, nil
}

// Models lists the registered models.
func (c *Client) Models() ([]ModelInfo, error) {
	return c.ModelsContext(context.Background())
}

// ModelsContext lists the registered models, retrying transient failures
// within ctx's bounds.
func (c *Client) ModelsContext(ctx context.Context) ([]ModelInfo, error) {
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			delay := retryDelay(attempt, 0)
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, fmt.Errorf("webservice: %w (last attempt: %v)", ctx.Err(), lastErr)
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/api/v1/models", nil)
		if err != nil {
			return nil, err
		}
		resp, err := c.HTTP.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			lastErr = decodeError(resp)
			resp.Body.Close()
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, decodeError(resp)
		}
		var out []ModelInfo
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, fmt.Errorf("webservice: decode models: %w", err)
		}
		return out, nil
	}
	return nil, fmt.Errorf("webservice: giving up after %d attempts: %w", retryAttempts, lastErr)
}

// UploadModel registers a new pre-trained model from its gob serialization.
// The body is a one-shot stream, so uploads are NOT retried — a failed
// upload surfaces immediately and the caller (who owns the reader) decides
// whether to rewind and resend.
func (c *Client) UploadModel(name, kind string, gobData io.Reader) error {
	url := fmt.Sprintf("%s/api/v1/models?name=%s&kind=%s", c.BaseURL, name, kind)
	resp, err := c.HTTP.Post(url, "application/octet-stream", gobData)
	if err != nil {
		return fmt.Errorf("webservice: upload model: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return nil
}

func decodeError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
		return fmt.Errorf("webservice: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("webservice: HTTP %d", resp.StatusCode)
}
