package webservice

import (
	"testing"
	"time"
)

// TestRetryDelayJittersHonoredHint: the thundering-herd fix. A shedding
// server hands every refused client the same Retry-After; the computed
// sleep must spread clients over [hint, 1.5·hint] instead of
// re-synchronizing them at exactly hint.
func TestRetryDelayJittersHonoredHint(t *testing.T) {
	const hint = 2 * time.Second
	seen := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		d := retryDelay(1, hint)
		if d < hint {
			t.Fatalf("delay %v undercuts the server's hint %v", d, hint)
		}
		if d > hint+hint/2 {
			t.Fatalf("delay %v exceeds hint + 50%% jitter (%v)", d, hint+hint/2)
		}
		seen[d] = true
	}
	// 200 draws over a 1s jitter range: collapsing to a handful of values
	// means the herd is still synchronized.
	if len(seen) < 50 {
		t.Errorf("only %d distinct delays across 200 draws — Retry-After sleeps are not jittered", len(seen))
	}
}

// TestRetryDelayBackoffWithoutHint: no hint falls back to exponential
// backoff with full jitter in [base·2^(n-1), 2·base·2^(n-1)).
func TestRetryDelayBackoffWithoutHint(t *testing.T) {
	for attempt := 1; attempt <= 3; attempt++ {
		lo := retryBase << (attempt - 1)
		hi := 2 * lo
		for i := 0; i < 100; i++ {
			d := retryDelay(attempt, 0)
			if d < lo || d > hi {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
}
