package webservice

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hpc-repro/aiio/internal/admission"
	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/faults"
	"github.com/hpc-repro/aiio/internal/linalg"
	"github.com/hpc-repro/aiio/internal/mlp"
	"github.com/hpc-repro/aiio/internal/tune"
)

// postLog POSTs rec as a text log to url and returns status, body, and
// headers.
func postLog(t *testing.T, client *http.Client, url string, rec *darshan.Record) (int, []byte, http.Header) {
	t.Helper()
	var buf bytes.Buffer
	if err := darshan.WriteLog(&buf, rec); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body, resp.Header
}

// TestFloodShedsInsteadOfQueueing is the issue's flood drill: at 10× the
// admission limit the server must answer the excess with 429 +
// Retry-After immediately (bounded queue, bounded memory) and shed
// requests must never touch the diagnosis cache.
func TestFloodShedsInsteadOfQueueing(t *testing.T) {
	ws := NewServer(ensemble(t), fastOpts())
	ws.Admission = admission.NewController(admission.Config{
		MaxInflight: 1, QueueDepth: 2, RetryAfter: 3 * time.Second,
	})
	// Pin every admitted request to ≥100ms (a slow advisor) so the herd
	// genuinely collides with the 1-inflight/2-queued funnel — with the
	// natural microsecond cache-hit service time the requests would just
	// serialize through and nothing would shed.
	ws.advise = func(*core.Ensemble, *core.Diagnosis) ([]tune.Recommendation, error) {
		time.Sleep(100 * time.Millisecond)
		return nil, nil
	}
	srv := httptest.NewServer(ws.Handler())
	defer srv.Close()

	// Force the cache into existence so its counters are live before the
	// flood.
	cache := ws.diagnosisCache()
	if cache == nil {
		t.Fatal("cache unexpectedly disabled")
	}
	rec := testRecord()
	const n = 30 // 10× (MaxInflight + QueueDepth)
	var ok, shed atomic.Int64
	errs := faults.Flood(n, func(i int) error {
		status, body, hdr := postLog(t, srv.Client(), srv.URL+"/api/v1/diagnose", rec)
		switch status {
		case http.StatusOK:
			ok.Add(1)
		case http.StatusTooManyRequests:
			shed.Add(1)
			if hdr.Get("Retry-After") == "" {
				t.Errorf("429 without Retry-After header")
			}
			var e struct {
				Error      string `json:"error"`
				RetryAfter int    `json:"retry_after"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" || e.RetryAfter < 1 {
				t.Errorf("429 body not structured: %s", body)
			}
		default:
			t.Errorf("unexpected status %d: %s", status, body)
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := ok.Load() + shed.Load(); got != n {
		t.Fatalf("accounted for %d of %d requests", got, n)
	}
	if ok.Load() < 1 {
		t.Fatal("no request was admitted at all")
	}
	if shed.Load() < n-3-5 { // 1 inflight + 2 queued (+ slack for fast turnover)
		t.Fatalf("only %d of %d shed; the queue is not bounded", shed.Load(), n)
	}
	// Shed requests never reach the cache: every lookup belongs to an
	// admitted request.
	hits, misses, _ := cache.stats()
	if total := hits + misses; total != uint64(ok.Load()) {
		t.Fatalf("cache saw %d lookups for %d admitted requests — shed requests poisoned it",
			total, ok.Load())
	}
	stats := ws.Admission.Stats()["diagnose"]
	if stats.Shed != uint64(shed.Load()) || stats.Admitted != uint64(ok.Load()) {
		t.Fatalf("admission stats %+v disagree with observed ok=%d shed=%d", stats, ok.Load(), shed.Load())
	}
}

func TestDrainShedsAndReadyzGoesRed(t *testing.T) {
	ws := NewServer(ensemble(t), fastOpts())
	ws.Admission = admission.NewController(admission.Config{MaxInflight: 2})
	srv := httptest.NewServer(ws.Handler())
	defer srv.Close()

	// Ready before the drain.
	resp, err := srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d before drain, want 200", resp.StatusCode)
	}
	ws.BeginDrain()
	resp, err = srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Ready   bool     `json:"ready"`
		Reasons []string `json:"reasons"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || body.Ready {
		t.Fatalf("/readyz during drain = %d ready=%v, want 503 not-ready", resp.StatusCode, body.Ready)
	}
	if len(body.Reasons) == 0 || body.Reasons[0] != "draining" {
		t.Fatalf("reasons = %v, want [draining]", body.Reasons)
	}
	// New diagnosis work is refused with a structured 503.
	status, respBody, _ := postLog(t, srv.Client(), srv.URL+"/api/v1/diagnose", testRecord())
	if status != http.StatusServiceUnavailable {
		t.Fatalf("diagnose during drain = %d (%s), want 503", status, respBody)
	}
	// But liveness stays green: the process is healthy, just not serving.
	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200", resp.StatusCode)
	}
}

// breakerClock builds a BreakerSet on a controllable (race-safe) clock;
// advance moves it forward.
func breakerClock(threshold int, cooldown time.Duration) (set *admission.BreakerSet, advance func(time.Duration)) {
	var mu sync.Mutex
	now := time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	set = admission.NewBreakerSet(admission.BreakerConfig{
		Threshold: threshold,
		Cooldown:  cooldown,
		Now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		},
	})
	return set, func(d time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(d)
	}
}

func TestBreakerTakesFailingModelOutOfRotation(t *testing.T) {
	base := ensemble(t)
	// Model 0 panics on every prediction; model 1 stays healthy.
	bad := &faults.FaultyModel{PanicOn: true}
	ens := faults.Break(base, 0, bad)
	badName := ens.Models[0].Name()
	goodName := ens.Models[1].Name()

	ws := NewServer(ens, fastOpts())
	ws.CacheSize = -1 // isolate breaker behavior from the cache
	set, advance := breakerClock(2, time.Minute)
	ws.Breakers = set
	srv := httptest.NewServer(ws.Handler())
	defer srv.Close()

	rec := testRecord()
	// Two degraded diagnoses charge two failures and open the breaker.
	for i := 0; i < 2; i++ {
		status, body, _ := postLog(t, srv.Client(), srv.URL+"/api/v1/diagnose", rec)
		if status != http.StatusOK {
			t.Fatalf("request %d = %d (%s)", i, status, body)
		}
		var d DiagnosisResponse
		if err := json.Unmarshal(body, &d); err != nil {
			t.Fatal(err)
		}
		if !d.Degraded {
			t.Fatalf("request %d not degraded despite the panicking model", i)
		}
	}
	if got := set.For(badName).State(); got != admission.StateOpen {
		t.Fatalf("bad model breaker = %v after 2 failures, want open", got)
	}
	if got := set.For(goodName).State(); got != admission.StateClosed {
		t.Fatalf("good model breaker = %v, want closed", got)
	}
	// Third request: the bad model is skipped by the breaker — its
	// prediction is never called again.
	callsBefore := bad.Calls()
	status, body, _ := postLog(t, srv.Client(), srv.URL+"/api/v1/diagnose", rec)
	if status != http.StatusOK {
		t.Fatalf("request with open breaker = %d (%s)", status, body)
	}
	if bad.Calls() != callsBefore {
		t.Fatal("open breaker did not stop calls to the failing model")
	}
	var d DiagnosisResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if !d.Degraded {
		t.Fatal("breaker-skipped response not marked degraded")
	}
	foundSkip := false
	for _, m := range d.Models {
		if m.Name == badName && m.Error == "circuit breaker open" {
			foundSkip = true
		}
	}
	if !foundSkip {
		t.Fatalf("response models %+v lack the breaker-open casualty", d.Models)
	}
	// After the cooldown the breaker probes; the model still panics, so
	// it reopens after the single probe call.
	advance(time.Minute)
	callsBefore = bad.Calls()
	if status, body, _ = postLog(t, srv.Client(), srv.URL+"/api/v1/diagnose", rec); status != http.StatusOK {
		t.Fatalf("probe request = %d (%s)", status, body)
	}
	if bad.Calls() == callsBefore {
		t.Fatal("half-open breaker never probed the model")
	}
	if got := set.For(badName).State(); got != admission.StateOpen {
		t.Fatalf("breaker = %v after failed probe, want open again", got)
	}
}

func TestAllBreakersOpenAnswers503AndClientStopsRetrying(t *testing.T) {
	base := ensemble(t)
	// Every model panics.
	ens := base
	for i := range base.Models {
		ens = faults.Break(ens, i, &faults.FaultyModel{PanicOn: true})
	}
	ws := NewServer(ens, fastOpts())
	ws.CacheSize = -1
	set, _ := breakerClock(1, time.Minute)
	ws.Breakers = set

	var requests atomic.Int64
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		ws.Handler().ServeHTTP(w, r)
	})
	srv := httptest.NewServer(counting)
	defer srv.Close()

	rec := testRecord()
	// First request: every model fails, diagnosis errors, breakers open.
	status, body, _ := postLog(t, srv.Client(), srv.URL+"/api/v1/diagnose", rec)
	if status != http.StatusInternalServerError {
		t.Fatalf("all-failing request = %d (%s), want 500", status, body)
	}
	// Second request: refused up front with the breaker header.
	status, body, hdr := postLog(t, srv.Client(), srv.URL+"/api/v1/diagnose", rec)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open request = %d (%s), want 503", status, body)
	}
	if hdr.Get("X-AIIO-Breaker") != "open" {
		t.Fatalf("missing X-AIIO-Breaker header, got %q", hdr.Get("X-AIIO-Breaker"))
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("breaker-open 503 lacks Retry-After")
	}
	// Readiness goes red while every breaker is open.
	resp, err := srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with all breakers open = %d, want 503", resp.StatusCode)
	}
	// The typed client sees the header and gives up after ONE attempt.
	requests.Store(0)
	cl := NewClient(srv.URL)
	_, err = cl.Diagnose(rec)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("client error = %v, want ErrBreakerOpen", err)
	}
	if got := requests.Load(); got != 1 {
		t.Fatalf("client sent %d requests against an open breaker, want exactly 1", got)
	}
}

func TestClientHonorsRetryAfterHint(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"server overloaded, request shed","retry_after":1}`))
			return
		}
		_ = json.NewEncoder(w).Encode([]ModelInfo{})
		// Unreachable for Diagnose, but Diagnose needs a real body:
	}))
	defer srv.Close()

	// A huge base backoff would make the default path take ~4s; the 1s
	// server hint must win.
	oldBase := retryBase
	retryBase = 4 * time.Second
	defer func() { retryBase = oldBase }()

	cl := NewClient(srv.URL)
	start := time.Now()
	_, err := cl.post(context.Background(), srv.URL+"/api/v1/diagnose", "text/plain", []byte("x"))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("post after 429: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("client made %d calls, want 2 (one shed, one retry)", calls.Load())
	}
	if elapsed < 900*time.Millisecond {
		t.Fatalf("retry came back in %v — Retry-After: 1 was not honored", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("retry took %v — exponential backoff overrode the 1s server hint", elapsed)
	}
}

func TestUploadHotSwapRollbackOnInvalidModel(t *testing.T) {
	ws := NewServer(ensemble(t), fastOpts())
	srv := httptest.NewServer(ws.Handler())
	defer srv.Close()

	before, _, versionBefore := ws.snapshot()

	// A gob stream that decodes but predicts garbage dimensions: a tiny
	// model trained on the wrong feature count, aimed at an existing
	// model name so a validation miss would replace a live model.
	bad := badDimensionModelGob(t)
	resp, err := srv.Client().Post(
		srv.URL+"/api/v1/models?name="+before.Models[0].Name()+"&kind=mlp",
		"application/octet-stream", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid upload = %d (%s), want 400", resp.StatusCode, body)
	}
	var e struct {
		Error      string `json:"error"`
		RolledBack bool   `json:"rolled_back"`
	}
	if err := json.Unmarshal(body, &e); err != nil || !e.RolledBack {
		t.Fatalf("rollback not structured: %s", body)
	}
	after, _, versionAfter := ws.snapshot()
	if versionAfter != versionBefore {
		t.Fatal("failed upload bumped the model-set version")
	}
	if after.Models[0] != before.Models[0] {
		t.Fatal("failed upload replaced the live model — rollback did not happen")
	}
	// And the old set still diagnoses.
	status, dbody, _ := postLog(t, srv.Client(), srv.URL+"/api/v1/diagnose", testRecord())
	if status != http.StatusOK {
		t.Fatalf("diagnose after rolled-back upload = %d (%s)", status, dbody)
	}
}

func TestUploadPersistsGenerationViaStore(t *testing.T) {
	dir := t.TempDir()
	ens := ensemble(t)
	st := core.OpenStore(dir)
	if _, err := st.Save(ens); err != nil {
		t.Fatal(err)
	}
	ws := NewServer(ens, fastOpts())
	ws.Store = st
	ws.SetGeneration(&core.LoadReport{Generation: 1})
	srv := httptest.NewServer(ws.Handler())
	defer srv.Close()

	// Re-upload a valid model (itself, re-serialized).
	var buf bytes.Buffer
	if err := ens.Models[0].Save(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(
		srv.URL+"/api/v1/models?name="+ens.Models[0].Name()+"&kind="+ens.Models[0].Kind(),
		"application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload = %d (%s)", resp.StatusCode, body)
	}
	var out struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(body, &out); err != nil || out.Generation != 2 {
		t.Fatalf("upload response %s, want generation 2", body)
	}
	// The new generation is on disk and loads.
	if _, err := os.Stat(filepath.Join(dir, "generations", "000002", "manifest.json")); err != nil {
		t.Fatalf("persisted generation missing: %v", err)
	}
	_, rep, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != 2 {
		t.Fatalf("store serves generation %d after upload, want 2", rep.Generation)
	}
	if got := ws.GenerationReport(); got == nil || got.Generation != 2 {
		t.Fatalf("server generation report = %+v, want generation 2", got)
	}
}

// badDimensionModelGob serializes a tiny MLP trained over 5 features —
// structurally valid gob, wrong dimensionality for the 45-counter schema.
func badDimensionModelGob(t *testing.T) []byte {
	t.Helper()
	x := linalg.NewMatrix(8, 5)
	y := make([]float64, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 5; j++ {
			x.Set(i, j, float64(i+j))
		}
		y[i] = float64(i)
	}
	cfg := mlp.DefaultConfig()
	cfg.Hidden = []int{4}
	cfg.Epochs = 1
	wrong, err := mlp.Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wrong.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadySurfacesGenerationAndFallback(t *testing.T) {
	ws := NewServer(ensemble(t), fastOpts())
	ws.SetGeneration(&core.LoadReport{
		Generation: 3,
		FellBack:   true,
		Rejected:   []core.GenerationError{{Generation: 4, Err: "checksum mismatch"}},
	})
	srv := httptest.NewServer(ws.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200 (fallback is degraded, not dead)", resp.StatusCode)
	}
	var body struct {
		Generation struct {
			Generation uint64 `json:"generation"`
			FellBack   bool   `json:"fell_back"`
		} `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Generation.Generation != 3 || !body.Generation.FellBack {
		t.Fatalf("generation block = %+v, want gen 3 fell_back", body.Generation)
	}
}

// TestShedDoesNotRetryForever guards the Retry-After parse path against
// a bogus header.
func TestRetryAfterHintParsing(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	if d := retryAfterHint(mk("2")); d != 2*time.Second {
		t.Fatalf("hint(2) = %v", d)
	}
	if d := retryAfterHint(mk("")); d != 0 {
		t.Fatalf("hint(absent) = %v", d)
	}
	if d := retryAfterHint(mk("garbage")); d != 0 {
		t.Fatalf("hint(garbage) = %v", d)
	}
	if d := retryAfterHint(mk(strconv.Itoa(86400))); d != maxRetryAfter {
		t.Fatalf("hint(1 day) = %v, want clamped to %v", d, maxRetryAfter)
	}
}
