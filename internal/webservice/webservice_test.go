package webservice

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/iosim"
	"github.com/hpc-repro/aiio/internal/logdb"
	"github.com/hpc-repro/aiio/internal/workload"
)

var (
	once sync.Once
	ens  *core.Ensemble
	eErr error
)

func ensemble(t testing.TB) *core.Ensemble {
	t.Helper()
	once.Do(func() {
		ds := logdb.Generate(logdb.GenConfig{Jobs: 500, Seed: 31})
		frame := features.Build(ds)
		opts := core.DefaultTrainOptions()
		opts.Fast = true
		opts.Models = []string{core.NameLightGBM, core.NameCatBoost} // keep tests quick
		ens, _, eErr = core.TrainEnsemble(frame, opts)
	})
	if eErr != nil {
		t.Fatalf("train: %v", eErr)
	}
	return ens
}

func fastOpts() core.DiagnoseOptions {
	o := core.DefaultDiagnoseOptions()
	o.SHAP.MaxExact = 8
	o.SHAP.NSamples = 512
	return o
}

func testRecord() *darshan.Record {
	params := iosim.DefaultParams()
	params.NoiseSigma = 0
	cfg := workload.Patterns()[0].Config.Scale(16, 4)
	rec, _ := cfg.Run("ior", 1, 5, params)
	return rec
}

func TestDiagnoseRoundTrip(t *testing.T) {
	srv := httptest.NewServer(NewServer(ensemble(t), fastOpts()).Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	resp, err := client.Diagnose(testRecord())
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Models) != 2 {
		t.Errorf("response has %d models", len(resp.Models))
	}
	if resp.ClosestModel == "" {
		t.Error("no closest model")
	}
	if !resp.Robust {
		t.Error("diagnosis not robust")
	}
	if len(resp.Factors) == 0 {
		t.Error("no factors returned")
	}
	wsum := 0.0
	for _, m := range resp.Models {
		wsum += m.Weight
	}
	if wsum < 0.99 || wsum > 1.01 {
		t.Errorf("weights sum to %v", wsum)
	}
}

func TestModelsEndpointAndUpload(t *testing.T) {
	// Use a private ensemble copy so the upload does not affect others.
	base := ensemble(t)
	private := &core.Ensemble{Models: append([]core.Model(nil), base.Models...)}
	srv := httptest.NewServer(NewServer(private, fastOpts()).Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	models, err := client.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("got %d models", len(models))
	}

	// Re-upload lightgbm's serialization under a new name.
	var buf bytes.Buffer
	if err := private.Model(core.NameLightGBM).Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := client.UploadModel("lightgbm-v2", "gbdt", &buf); err != nil {
		t.Fatal(err)
	}
	models, err = client.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 3 {
		t.Errorf("after upload: %d models", len(models))
	}

	// Replacing an existing name keeps the count.
	buf.Reset()
	if err := private.Model(core.NameCatBoost).Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := client.UploadModel(core.NameCatBoost, "gbdt", &buf); err != nil {
		t.Fatal(err)
	}
	models, _ = client.Models()
	if len(models) != 3 {
		t.Errorf("after replace: %d models", len(models))
	}
}

func TestServerErrorPaths(t *testing.T) {
	srv := httptest.NewServer(NewServer(ensemble(t), fastOpts()).Handler())
	defer srv.Close()

	// Bad log body.
	resp, err := srv.Client().Post(srv.URL+"/api/v1/diagnose", "text/plain",
		strings.NewReader("POSIX_READS not-a-number\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad log got HTTP %d", resp.StatusCode)
	}

	// Wrong method.
	resp, err = srv.Client().Get(srv.URL + "/api/v1/diagnose")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET diagnose got HTTP %d", resp.StatusCode)
	}

	// Upload without parameters.
	resp, err = srv.Client().Post(srv.URL+"/api/v1/models", "application/octet-stream",
		strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("param-less upload got HTTP %d", resp.StatusCode)
	}

	// Upload junk gob.
	resp, err = srv.Client().Post(srv.URL+"/api/v1/models?name=x&kind=gbdt",
		"application/octet-stream", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("junk upload got HTTP %d", resp.StatusCode)
	}

	// Health endpoint.
	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz got HTTP %d", resp.StatusCode)
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	client := NewClient("http://127.0.0.1:1") // nothing listens here
	if _, err := client.Diagnose(&darshan.Record{}); err == nil {
		t.Error("Diagnose against dead server succeeded")
	}
	if _, err := client.Models(); err == nil {
		t.Error("Models against dead server succeeded")
	}
}

func TestHTMLFrontend(t *testing.T) {
	srv := httptest.NewServer(NewServer(ensemble(t), fastOpts()).Handler())
	defer srv.Close()

	// Index page.
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "<form") {
		t.Fatalf("index page broken: HTTP %d", resp.StatusCode)
	}

	// Form submission.
	var logText bytes.Buffer
	if err := darshan.WriteLog(&logText, testRecord()); err != nil {
		t.Fatal(err)
	}
	form := url.Values{"log": {logText.String()}}
	resp, err = srv.Client().PostForm(srv.URL+"/diagnose", form)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	html := string(body)
	if resp.StatusCode != 200 {
		t.Fatalf("diagnose form got HTTP %d: %s", resp.StatusCode, html)
	}
	for _, want := range []string{"Merged contributions", "Model predictions", "class=\"bar"} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML result missing %q", want)
		}
	}

	// Bad log in the form.
	resp, err = srv.Client().PostForm(srv.URL+"/diagnose", url.Values{"log": {"POSIX_READS x"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad form log got HTTP %d", resp.StatusCode)
	}

	// GET /diagnose redirects to the form.
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err = noRedirect.Get(srv.URL + "/diagnose")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		t.Errorf("GET /diagnose got HTTP %d", resp.StatusCode)
	}

	// Unknown path under / is a 404.
	resp, err = srv.Client().Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown path got HTTP %d", resp.StatusCode)
	}
}
