package webservice

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
)

// Streaming job ingest: POST /api/v1/jobs accepts Darshan text logs (one or
// many records per body, the WriteDataset format), validates each record at
// the boundary, and appends the good ones to the durable joblog. A record
// is acknowledged only after the WAL fsyncs, so an acked job survives a
// crash; the dedup index makes client retries after a lost ack idempotent.
// Records with NaN/Inf or negative counters never enter the training log —
// they are routed to the joblog quarantine with their reason.

// IngestEndpoint is the admission-controller endpoint name for job ingest.
// Give it its own budget with Controller.SetConfig(IngestEndpoint, cfg):
// ingest is cheap I/O while diagnosis is heavy compute, so sharing one
// limit starves whichever came second.
const IngestEndpoint = "ingest"

// IngestResponse is the JSON body of POST /api/v1/jobs.
type IngestResponse struct {
	// Accepted records are durably in the log (fsynced before this response).
	Accepted int `json:"accepted"`
	// Duplicates were already present (an idempotent retry or re-shipment).
	Duplicates int `json:"duplicates"`
	// Quarantined records failed boundary validation (non-finite counters);
	// their bytes are preserved in the joblog quarantine, not dropped.
	Quarantined int `json:"quarantined"`
	// ParseRejected chunks could not be parsed as records at all.
	ParseRejected int `json:"parse_rejected"`
	// Pending is the retrain backlog after this request.
	Pending int `json:"pending"`
	// RetrainTriggered reports that this request pushed the backlog over
	// the threshold and a background retraining cycle started.
	RetrainTriggered bool `json:"retrain_triggered,omitempty"`
	// DriftTripped reports that the drift monitor is over a trip threshold
	// after this request; DriftRetrainTriggered that the trip (rather than
	// the backlog threshold) started the background cycle.
	DriftTripped          bool `json:"drift_tripped,omitempty"`
	DriftRetrainTriggered bool `json:"drift_retrain_triggered,omitempty"`
}

// retrainStatus is the last background cycle's outcome, for /healthz.
type retrainStatus struct {
	Generation   uint64
	FinishedUnix int64
	Err          string
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.JobLog == nil {
		httpError(w, http.StatusNotImplemented, "job ingest is not enabled (no -joblog-dir)")
		return
	}
	// Ingest bodies are batches; give them the same 4× budget as the other
	// batch endpoints.
	ds, rejected, err := darshan.ParseDatasetLenient(http.MaxBytesReader(w, r.Body, 4*s.maxBody()))
	if err != nil {
		bodyError(w, err)
		return
	}
	if ds.Len() == 0 && len(rejected) == 0 {
		httpError(w, http.StatusBadRequest, "request body holds no records")
		return
	}
	var resp IngestResponse
	// The lenient parser already vets counters (NaN/Inf/negative) and
	// malformed chunks; its rejections carry a reason but no recoverable
	// record, so they are preserved in quarantine as notes.
	for _, re := range rejected {
		if qerr := s.JobLog.QuarantineNote(re.Error()); qerr != nil {
			httpError(w, http.StatusInternalServerError, fmt.Sprintf("quarantine record: %v", qerr))
			return
		}
	}
	resp.ParseRejected = len(rejected)
	var observed []*darshan.Record
	for _, rec := range ds.Records {
		// The ingest boundary is where corrupt telemetry is stopped: a
		// record with non-finite counters is preserved in quarantine for
		// the operator, never trained on.
		if verr := rec.Validate(); verr != nil {
			if qerr := s.JobLog.QuarantineRecord(rec, verr.Error()); qerr != nil {
				httpError(w, http.StatusInternalServerError, fmt.Sprintf("quarantine record: %v", qerr))
				return
			}
			resp.Quarantined++
			continue
		}
		res, aerr := s.JobLog.Append(rec)
		if aerr != nil {
			httpError(w, http.StatusInternalServerError, fmt.Sprintf("append job: %v", aerr))
			return
		}
		if res.Duplicate {
			resp.Duplicates++
		} else {
			resp.Accepted++
			observed = append(observed, rec)
		}
	}
	// The durability barrier: nothing above is acknowledged until the WAL
	// is fsynced. A crash before this line loses only unacked records,
	// which the client will retry into the dedup index.
	if resp.Accepted > 0 {
		if err := s.JobLog.Sync(); err != nil {
			httpError(w, http.StatusInternalServerError, fmt.Sprintf("sync joblog: %v", err))
			return
		}
	}
	resp.Pending = s.JobLog.Pending()
	// Drift observation happens after the durability barrier: only jobs
	// that are truly in the training log shape the monitor's view of the
	// world. Duplicates (client retries) are skipped so a retry storm
	// cannot fake a distribution shift.
	if s.Drift != nil && len(observed) > 0 {
		ens, _, _ := s.snapshot()
		for _, rec := range observed {
			s.observeIngest(ens, rec)
		}
	}
	if s.RetrainThreshold > 0 && resp.Pending >= s.RetrainThreshold {
		resp.RetrainTriggered = s.TriggerRetrain()
	}
	// A tripped drift detector triggers the same single-flight retrain the
	// backlog threshold does — the canary gate inside the retrainer decides
	// whether the result actually promotes.
	if s.Drift != nil && !resp.RetrainTriggered {
		if tripped, st := s.Drift.Tripped(); tripped {
			resp.DriftTripped = true
			if s.Retrainer != nil && s.TriggerRetrain() {
				resp.DriftRetrainTriggered = true
				s.noteDriftTrigger(st)
			}
		}
	}
	writeJSON(w, http.StatusOK, &resp)
}

// TriggerRetrain starts one background incremental retraining cycle unless
// one is already running (single-flight: the running cycle drains the same
// backlog, so a second would only duplicate work). It reports whether a
// cycle was started. The committed ensemble goes live through the same
// validated hot-swap as a model upload: probe every model, swap under the
// lock, bump the version, purge the cache.
func (s *Server) TriggerRetrain() bool {
	if s.Retrainer == nil || !s.retrainBusy.CompareAndSwap(false, true) {
		return false
	}
	go func() {
		defer s.retrainBusy.Store(false)
		st := &retrainStatus{}
		defer func() {
			st.FinishedUnix = time.Now().Unix()
			s.retrainState.Store(st)
		}()
		// Remember the incumbent: it is the post-promotion watch's rollback
		// target if the promotion regresses.
		var prevGen uint64
		if rep := s.genReport.Load(); rep != nil {
			prevGen = rep.Generation
		}
		ens, gen, err := s.Retrainer(context.Background())
		if err != nil {
			// A canary-blocked candidate is a lifecycle decision, not a
			// failure: the gate judged the retrain worse than the serving
			// set and refused it. Record the losing verdict as provenance.
			var blocked *core.CanaryBlockedError
			if errors.As(err, &blocked) {
				s.noteCanaryBlocked(blocked.Verdict)
			}
			st.Err = err.Error()
			return
		}
		// AdoptGeneration probes the whole candidate set before it serves
		// traffic — the trainer validates too, but the swap is the last
		// line of defense — and stamps the generation fingerprint so
		// replication peers see the retrain.
		if aerr := s.AdoptGeneration(ens, s.storeReport(gen)); aerr != nil {
			st.Err = fmt.Sprintf("retrained set swap rolled back: %v", aerr)
			return
		}
		st.Generation = gen
		// Re-arm the drift monitor against the new generation's reference
		// and start the post-promotion rollback watch.
		s.afterPromotion(prevGen, gen)
	}()
	return true
}

// RetrainIdle reports whether no background retraining cycle is running
// (tests and drains use it to wait for quiescence).
func (s *Server) RetrainIdle() bool { return !s.retrainBusy.Load() }
