package webservice

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
)

// postDiagnose posts one record and returns the cache header and decoded body.
func postDiagnose(t *testing.T, srv *httptest.Server, rec *darshan.Record) (string, *DiagnosisResponse, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := darshan.WriteLog(&buf, rec); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/api/v1/diagnose", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diagnose: HTTP %d: %s", resp.StatusCode, raw)
	}
	var body DiagnosisResponse
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	return resp.Header.Get("X-AIIO-Cache"), &body, raw
}

// TestDiagnoseCacheHit: a repeat query for the same job is served from the
// cache, byte-identical to the first answer.
func TestDiagnoseCacheHit(t *testing.T) {
	srv := httptest.NewServer(NewServer(ensemble(t), fastOpts()).Handler())
	defer srv.Close()
	rec := testRecord()

	state1, _, raw1 := postDiagnose(t, srv, rec)
	if state1 != "miss" {
		t.Fatalf("first diagnose: X-AIIO-Cache = %q, want miss", state1)
	}
	state2, _, raw2 := postDiagnose(t, srv, rec)
	if state2 != "hit" {
		t.Fatalf("repeat diagnose: X-AIIO-Cache = %q, want hit", state2)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Error("cached response differs from the original")
	}

	// A different job must not hit the first job's entry.
	other := testRecord()
	other.App = "other-app"
	other.Counters[darshan.NProcs] *= 2
	if state, _, _ := postDiagnose(t, srv, other); state != "miss" {
		t.Errorf("distinct job: X-AIIO-Cache = %q, want miss", state)
	}

	// The health endpoint surfaces the traffic.
	hr, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health struct {
		Cache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
			Size   int    `json:"size"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Cache.Hits != 1 || health.Cache.Misses != 2 || health.Cache.Size != 2 {
		t.Errorf("healthz cache stats = %+v, want 1 hit / 2 misses / size 2", health.Cache)
	}
}

// TestUploadInvalidatesCachedDiagnosis is the regression test for the
// stale-cache bug: replacing a model via upload must invalidate every cached
// diagnosis, so the very next query for the same job reruns against the new
// ensemble instead of echoing the pre-upload answer.
func TestUploadInvalidatesCachedDiagnosis(t *testing.T) {
	base := ensemble(t)
	private := &core.Ensemble{Models: append([]core.Model(nil), base.Models...)}
	srv := httptest.NewServer(NewServer(private, fastOpts()).Handler())
	defer srv.Close()
	client := NewClient(srv.URL)
	rec := testRecord()

	// Warm the cache and confirm it answers.
	_, before, _ := postDiagnose(t, srv, rec)
	if state, _, _ := postDiagnose(t, srv, rec); state != "hit" {
		t.Fatalf("warm-up repeat was %q, want hit", state)
	}

	// Replace the lightgbm slot with catboost's serialization: the model
	// under the name "lightgbm" now computes catboost's prediction.
	var buf bytes.Buffer
	if err := private.Model(core.NameCatBoost).Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := client.UploadModel(core.NameLightGBM, "gbdt", &buf); err != nil {
		t.Fatal(err)
	}

	state, after, _ := postDiagnose(t, srv, rec)
	if state != "miss" {
		t.Fatalf("post-upload diagnose served %q, want miss (stale cache)", state)
	}
	// The replaced slot must now predict exactly what the catboost model
	// predicted for this job before the upload — proof the fresh ensemble,
	// not the stale cache entry, produced the answer.
	pred := func(r *DiagnosisResponse, name string) float64 {
		for _, m := range r.Models {
			if m.Name == name {
				return m.PredictedMiBps
			}
		}
		t.Fatalf("model %s missing from response", name)
		return 0
	}
	if got, want := pred(after, core.NameLightGBM), pred(before, core.NameCatBoost); got != want {
		t.Errorf("post-upload %s predicts %v, want the uploaded model's %v",
			core.NameLightGBM, got, want)
	}
}

// TestBatchDiagnosePartialCacheHits: the batch endpoint resolves cached
// records up front and runs the parallel engine only over the misses, keeping
// input order.
func TestBatchDiagnosePartialCacheHits(t *testing.T) {
	srv := httptest.NewServer(NewServer(ensemble(t), fastOpts()).Handler())
	defer srv.Close()

	recA := testRecord()
	recB := testRecord()
	recB.App = "batch-b"
	recB.Counters[darshan.NProcs] *= 4

	// Prime only recA through the single-job endpoint.
	_, wantA, _ := postDiagnose(t, srv, recA)

	var buf bytes.Buffer
	if err := darshan.WriteDataset(&buf, &darshan.Dataset{Records: []*darshan.Record{recA, recB}}); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/api/v1/diagnose/batch", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: HTTP %d", resp.StatusCode)
	}
	if h := resp.Header.Get("X-AIIO-Cache"); h != "hits=1 misses=1" {
		t.Errorf("batch X-AIIO-Cache = %q, want hits=1 misses=1", h)
	}
	var out []*DiagnosisResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("batch returned %d responses", len(out))
	}
	if out[0].App != recA.App || out[1].App != "batch-b" {
		t.Errorf("batch order broken: got %q, %q", out[0].App, out[1].App)
	}
	for _, m := range wantA.Models {
		if got := out[0].Models; len(got) == 0 {
			t.Fatal("cached batch entry lost its models")
		} else {
			found := false
			for _, g := range got {
				if g.Name == m.Name && g.PredictedMiBps == m.PredictedMiBps {
					found = true
				}
			}
			if !found {
				t.Errorf("cached batch entry drifted for model %s", m.Name)
			}
		}
	}

	// The whole batch is now warm.
	buf.Reset()
	if err := darshan.WriteDataset(&buf, &darshan.Dataset{Records: []*darshan.Record{recA, recB}}); err != nil {
		t.Fatal(err)
	}
	resp2, err := srv.Client().Post(srv.URL+"/api/v1/diagnose/batch", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if h := resp2.Header.Get("X-AIIO-Cache"); h != "hits=2 misses=0" {
		t.Errorf("warm batch X-AIIO-Cache = %q, want hits=2 misses=0", h)
	}
}

// TestCacheDisabled: CacheSize < 0 turns the cache off entirely — no header,
// no stored entries.
func TestCacheDisabled(t *testing.T) {
	s := NewServer(ensemble(t), fastOpts())
	s.CacheSize = -1
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	rec := testRecord()

	for i := 0; i < 2; i++ {
		if state, _, _ := postDiagnose(t, srv, rec); state != "" {
			t.Fatalf("request %d: X-AIIO-Cache = %q with caching disabled", i, state)
		}
	}
}

// TestDiagCacheLRU exercises the container directly: capacity eviction,
// update-in-place, and purge semantics.
func TestDiagCacheLRU(t *testing.T) {
	c := newDiagCache(2)
	d1, d2, d3 := &core.Diagnosis{}, &core.Diagnosis{}, &core.Diagnosis{}
	c.put("a", d1)
	c.put("b", d2)
	if got, ok := c.get("a"); !ok || got != d1 {
		t.Fatal("a missing after insert")
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.put("c", d3)
	if _, ok := c.get("b"); ok {
		t.Error("LRU entry b survived past capacity")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently-used entry a evicted")
	}
	// Update-in-place does not grow the cache.
	c.put("a", d2)
	if got, _ := c.get("a"); got != d2 {
		t.Error("put did not replace the cached value")
	}
	if _, _, size := c.stats(); size != 2 {
		t.Errorf("size %d after update-in-place, want 2", size)
	}
	c.purge()
	hits, misses, size := c.stats()
	if size != 0 {
		t.Errorf("purge left %d entries", size)
	}
	if hits == 0 || misses == 0 {
		t.Error("purge reset the observability counters")
	}
}

// TestCacheKeyIdentity: the key covers the version prefix, the application
// name (with a terminator that stops concatenation forgeries), and every
// counter bit.
func TestCacheKeyIdentity(t *testing.T) {
	rec := testRecord()
	base := cacheKey(1, rec)
	if cacheKey(1, rec) != base {
		t.Fatal("cacheKey is not deterministic")
	}
	if cacheKey(2, rec) == base {
		t.Error("version change did not change the key")
	}
	mod := *rec
	mod.App = rec.App + "x"
	if cacheKey(1, &mod) == base {
		t.Error("app change did not change the key")
	}
	mod = *rec
	mod.PerfMiBps++
	if cacheKey(1, &mod) == base {
		t.Error("performance change did not change the key")
	}
	mod = *rec
	mod.Counters[darshan.NumCounters-1]++
	if cacheKey(1, &mod) == base {
		t.Error("last counter change did not change the key")
	}
}
