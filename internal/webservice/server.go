// Package webservice puts AIIO into practice the way Section 3.4 / Fig. 17
// describes: an HTTP service that loads pre-trained performance functions
// from a model registry, accepts Darshan log uploads, and returns the merged
// job-level diagnosis as JSON. The service can also accept new pre-trained
// models at runtime, matching the paper's note that the web service "may
// accept new models from users".
package webservice

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/tune"
)

// FactorJSON is one counter contribution in a response.
type FactorJSON struct {
	Counter      string  `json:"counter"`
	Contribution float64 `json:"contribution"`
	Value        float64 `json:"value"`
}

// ModelResult is one performance function's output for the job.
type ModelResult struct {
	Name           string  `json:"name"`
	PredictedMiBps float64 `json:"predicted_mibps"`
	Weight         float64 `json:"weight"`
}

// DiagnosisResponse is the JSON body of POST /api/v1/diagnose.
type DiagnosisResponse struct {
	App          string        `json:"app"`
	ActualMiBps  float64       `json:"actual_mibps"`
	Models       []ModelResult `json:"models"`
	ClosestModel string        `json:"closest_model"`
	// Factors are the merged (Average Method) contributions, by |impact|.
	Factors []FactorJSON `json:"factors"`
	// Bottlenecks are the negative factors, most negative first.
	Bottlenecks []FactorJSON `json:"bottlenecks"`
	Robust      bool         `json:"robust"`
	// Recommendations are the tuning advisor's ranked suggestions with
	// model-predicted gains.
	Recommendations []RecommendationJSON `json:"recommendations,omitempty"`
}

// RecommendationJSON is one automatic tuning recommendation.
type RecommendationJSON struct {
	Action         string  `json:"action"`
	Description    string  `json:"description"`
	PredictedMiBps float64 `json:"predicted_mibps"`
	PredictedGain  float64 `json:"predicted_gain"`
}

// ModelInfo describes one registered model.
type ModelInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// Server is the AIIO web service.
type Server struct {
	mu   sync.RWMutex
	ens  *core.Ensemble
	opts core.DiagnoseOptions
}

// NewServer wraps a trained ensemble.
func NewServer(ens *core.Ensemble, opts core.DiagnoseOptions) *Server {
	return &Server{ens: ens, opts: opts}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/diagnose", s.handleDiagnoseHTML)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/api/v1/models", s.handleModels)
	mux.HandleFunc("/api/v1/diagnose", s.handleDiagnose)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.RLock()
		defer s.mu.RUnlock()
		infos := make([]ModelInfo, 0, len(s.ens.Models))
		for _, m := range s.ens.Models {
			infos = append(infos, ModelInfo{Name: m.Name(), Kind: m.Kind()})
		}
		writeJSON(w, http.StatusOK, infos)
	case http.MethodPost:
		s.handleModelUpload(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// handleModelUpload accepts a pre-trained model: ?name=...&kind=gbdt|mlp|tabnet
// with the gob body. An existing model of the same name is replaced.
func (s *Server) handleModelUpload(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	kind := r.URL.Query().Get("kind")
	if name == "" || kind == "" {
		httpError(w, http.StatusBadRequest, "name and kind query parameters required")
		return
	}
	m, err := core.LoadModel(name, kind, io.LimitReader(r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decode model: %v", err))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	replaced := false
	for i, existing := range s.ens.Models {
		if existing.Name() == name {
			s.ens.Models[i] = m
			replaced = true
			break
		}
	}
	if !replaced {
		s.ens.Models = append(s.ens.Models, m)
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "replaced": replaced})
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a Darshan text log")
		return
	}
	rec, err := darshan.ParseLog(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parse log: %v", err))
		return
	}
	s.mu.RLock()
	diag, err := s.ens.Diagnose(rec, s.opts)
	var recs []tune.Recommendation
	if err == nil {
		recs, err = tune.New(s.ens).Advise(diag, 1.05)
	}
	s.mu.RUnlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("diagnose: %v", err))
		return
	}
	resp := buildResponse(diag)
	for _, r := range recs {
		resp.Recommendations = append(resp.Recommendations, RecommendationJSON{
			Action:         r.Action,
			Description:    r.Description,
			PredictedMiBps: r.PredictedMiBps,
			PredictedGain:  r.PredictedGain,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func buildResponse(diag *core.Diagnosis) *DiagnosisResponse {
	resp := &DiagnosisResponse{
		App:          diag.Record.App,
		ActualMiBps:  diag.ActualMiBps,
		ClosestModel: diag.PerModel[diag.ClosestIndex].Name,
		Robust:       diag.IsRobust(),
	}
	for i, md := range diag.PerModel {
		resp.Models = append(resp.Models, ModelResult{
			Name:           md.Name,
			PredictedMiBps: md.PredictedMiBps,
			Weight:         diag.Weights[i],
		})
	}
	for _, f := range diag.TopFactors(0) {
		resp.Factors = append(resp.Factors, FactorJSON{
			Counter: f.Counter.String(), Contribution: f.Contribution, Value: f.Value,
		})
	}
	for _, f := range diag.Bottlenecks() {
		resp.Bottlenecks = append(resp.Bottlenecks, FactorJSON{
			Counter: f.Counter.String(), Contribution: f.Contribution, Value: f.Value,
		})
	}
	return resp
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
