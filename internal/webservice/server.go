// Package webservice puts AIIO into practice the way Section 3.4 / Fig. 17
// describes: an HTTP service that loads pre-trained performance functions
// from a model registry, accepts Darshan log uploads, and returns the merged
// job-level diagnosis as JSON. The service can also accept new pre-trained
// models at runtime, matching the paper's note that the web service "may
// accept new models from users".
package webservice

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/tune"
)

// FactorJSON is one counter contribution in a response.
type FactorJSON struct {
	Counter      string  `json:"counter"`
	Contribution float64 `json:"contribution"`
	Value        float64 `json:"value"`
}

// ModelResult is one performance function's output for the job.
type ModelResult struct {
	Name           string  `json:"name"`
	PredictedMiBps float64 `json:"predicted_mibps"`
	Weight         float64 `json:"weight"`
}

// DiagnosisResponse is the JSON body of POST /api/v1/diagnose.
type DiagnosisResponse struct {
	App          string        `json:"app"`
	ActualMiBps  float64       `json:"actual_mibps"`
	Models       []ModelResult `json:"models"`
	ClosestModel string        `json:"closest_model"`
	// Factors are the merged (Average Method) contributions, by |impact|.
	Factors []FactorJSON `json:"factors"`
	// Bottlenecks are the negative factors, most negative first.
	Bottlenecks []FactorJSON `json:"bottlenecks"`
	Robust      bool         `json:"robust"`
	// Recommendations are the tuning advisor's ranked suggestions with
	// model-predicted gains.
	Recommendations []RecommendationJSON `json:"recommendations,omitempty"`
	// AdvisoryError is set when the diagnosis succeeded but the tuning
	// advisor failed; the diagnosis above is still complete and valid.
	AdvisoryError string `json:"advisory_error,omitempty"`
}

// RecommendationJSON is one automatic tuning recommendation.
type RecommendationJSON struct {
	Action         string  `json:"action"`
	Description    string  `json:"description"`
	PredictedMiBps float64 `json:"predicted_mibps"`
	PredictedGain  float64 `json:"predicted_gain"`
}

// ModelInfo describes one registered model.
type ModelInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// Server is the AIIO web service.
type Server struct {
	mu   sync.RWMutex
	ens  *core.Ensemble
	opts core.DiagnoseOptions
	// advise produces tuning recommendations for a finished diagnosis; a
	// field so tests can inject failures. An advise error never fails the
	// diagnosis — it degrades to AdvisoryError in the response.
	advise func(*core.Ensemble, *core.Diagnosis) ([]tune.Recommendation, error)
}

// NewServer wraps a trained ensemble.
func NewServer(ens *core.Ensemble, opts core.DiagnoseOptions) *Server {
	return &Server{
		ens:  ens,
		opts: opts,
		advise: func(e *core.Ensemble, d *core.Diagnosis) ([]tune.Recommendation, error) {
			return tune.New(e).Advise(d, 1.05)
		},
	}
}

// snapshot returns the current model set and options without holding any
// lock during the (multi-second) diagnosis that follows: the Models slice
// is copied under a read lock and a concurrent upload swaps in a new slice
// element rather than mutating a model in place, so diagnoses in flight
// keep working against the set they started with.
func (s *Server) snapshot() (*core.Ensemble, core.DiagnoseOptions) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	models := append([]core.Model(nil), s.ens.Models...)
	return &core.Ensemble{Models: models}, s.opts
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/diagnose", s.handleDiagnoseHTML)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/api/v1/models", s.handleModels)
	mux.HandleFunc("/api/v1/diagnose", s.handleDiagnose)
	mux.HandleFunc("/api/v1/diagnose/batch", s.handleDiagnoseBatch)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.RLock()
		defer s.mu.RUnlock()
		infos := make([]ModelInfo, 0, len(s.ens.Models))
		for _, m := range s.ens.Models {
			infos = append(infos, ModelInfo{Name: m.Name(), Kind: m.Kind()})
		}
		writeJSON(w, http.StatusOK, infos)
	case http.MethodPost:
		s.handleModelUpload(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// handleModelUpload accepts a pre-trained model: ?name=...&kind=gbdt|mlp|tabnet
// with the gob body. An existing model of the same name is replaced.
func (s *Server) handleModelUpload(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	kind := r.URL.Query().Get("kind")
	if name == "" || kind == "" {
		httpError(w, http.StatusBadRequest, "name and kind query parameters required")
		return
	}
	m, err := core.LoadModel(name, kind, io.LimitReader(r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decode model: %v", err))
		return
	}
	if err := probeModel(m); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("model failed validation: %v", err))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	replaced := false
	for i, existing := range s.ens.Models {
		if existing.Name() == name {
			s.ens.Models[i] = m
			replaced = true
			break
		}
	}
	if !replaced {
		s.ens.Models = append(s.ens.Models, m)
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "replaced": replaced})
}

// probeModel rejects an uploaded model whose feature dimension does not
// match the 45-counter schema before it can reach a diagnosis: a
// wrongly-dimensioned model panics (slice bounds) or returns a non-finite
// value when evaluated, so it is exercised here on a probe vector, inside
// a recover, instead of inside a live request.
func probeModel(m core.Model) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("probe prediction panicked (feature dimension mismatch with the %d-counter schema?): %v",
				darshan.NumCounters, r)
		}
	}()
	probe := make([]float64, darshan.NumCounters)
	for j := range probe {
		// Non-zero, varied values so dimension-dependent code paths
		// (standardization, tree splits on any counter) are exercised.
		probe[j] = float64(j%7) + 0.5
	}
	v := m.Predict(probe)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("probe prediction is %v", v)
	}
	return nil
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a Darshan text log")
		return
	}
	rec, err := darshan.ParseLog(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parse log: %v", err))
		return
	}
	// Diagnose against a lock-free snapshot so a concurrent model upload
	// (write lock) never stalls behind, or waits on, in-flight SHAP work.
	ens, opts := s.snapshot()
	diag, err := ens.Diagnose(rec, opts)
	if err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("diagnose: %v", err))
		return
	}
	resp := buildResponse(diag)
	// The advisor is best-effort: a failure degrades to an advisory-error
	// field instead of discarding the successful diagnosis.
	recs, advErr := s.advise(ens, diag)
	if advErr != nil {
		resp.AdvisoryError = advErr.Error()
	}
	for _, r := range recs {
		resp.Recommendations = append(resp.Recommendations, RecommendationJSON{
			Action:         r.Action,
			Description:    r.Description,
			PredictedMiBps: r.PredictedMiBps,
			PredictedGain:  r.PredictedGain,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDiagnoseBatch accepts a WriteDataset-format stream of several logs
// and diagnoses them on the parallel engine (Ensemble.DiagnoseBatch),
// returning one response per record in input order. Recommendations are
// omitted in batch mode; the single-job endpoint provides them.
func (s *Server) handleDiagnoseBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a stream of Darshan text logs")
		return
	}
	ds, err := darshan.ParseDataset(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parse logs: %v", err))
		return
	}
	if ds.Len() == 0 {
		httpError(w, http.StatusBadRequest, "no records in request body")
		return
	}
	ens, opts := s.snapshot()
	diags, err := ens.DiagnoseBatch(ds.Records, opts)
	if err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("diagnose: %v", err))
		return
	}
	resps := make([]*DiagnosisResponse, len(diags))
	for i, diag := range diags {
		resps[i] = buildResponse(diag)
	}
	writeJSON(w, http.StatusOK, resps)
}

func buildResponse(diag *core.Diagnosis) *DiagnosisResponse {
	resp := &DiagnosisResponse{
		App:          diag.Record.App,
		ActualMiBps:  diag.ActualMiBps,
		ClosestModel: diag.PerModel[diag.ClosestIndex].Name,
		Robust:       diag.IsRobust(),
	}
	for i, md := range diag.PerModel {
		resp.Models = append(resp.Models, ModelResult{
			Name:           md.Name,
			PredictedMiBps: md.PredictedMiBps,
			Weight:         diag.Weights[i],
		})
	}
	for _, f := range diag.TopFactors(0) {
		resp.Factors = append(resp.Factors, FactorJSON{
			Counter: f.Counter.String(), Contribution: f.Contribution, Value: f.Value,
		})
	}
	for _, f := range diag.Bottlenecks() {
		resp.Bottlenecks = append(resp.Bottlenecks, FactorJSON{
			Counter: f.Counter.String(), Contribution: f.Contribution, Value: f.Value,
		})
	}
	return resp
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
