// Package webservice puts AIIO into practice the way Section 3.4 / Fig. 17
// describes: an HTTP service that loads pre-trained performance functions
// from a model registry, accepts Darshan log uploads, and returns the merged
// job-level diagnosis as JSON. The service can also accept new pre-trained
// models at runtime, matching the paper's note that the web service "may
// accept new models from users".
package webservice

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpc-repro/aiio/internal/admission"
	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/drift"
	"github.com/hpc-repro/aiio/internal/joblog"
	"github.com/hpc-repro/aiio/internal/tune"
)

// FactorJSON is one counter contribution in a response.
type FactorJSON struct {
	Counter      string  `json:"counter"`
	Contribution float64 `json:"contribution"`
	Value        float64 `json:"value"`
}

// ModelResult is one performance function's output for the job. A model
// that failed (panic, non-finite output) carries its error instead of a
// prediction and a zero weight.
type ModelResult struct {
	Name           string  `json:"name"`
	PredictedMiBps float64 `json:"predicted_mibps"`
	Weight         float64 `json:"weight"`
	Error          string  `json:"error,omitempty"`
}

// DiagnosisResponse is the JSON body of POST /api/v1/diagnose.
type DiagnosisResponse struct {
	App          string        `json:"app"`
	ActualMiBps  float64       `json:"actual_mibps"`
	Models       []ModelResult `json:"models"`
	ClosestModel string        `json:"closest_model"`
	// Factors are the merged (Average Method) contributions, by |impact|.
	Factors []FactorJSON `json:"factors"`
	// Bottlenecks are the negative factors, most negative first.
	Bottlenecks []FactorJSON `json:"bottlenecks"`
	Robust      bool         `json:"robust"`
	// Degraded is true when one or more models failed and the merge covers
	// only the surviving subset; SkippedModels names the casualties.
	Degraded      bool     `json:"degraded,omitempty"`
	SkippedModels []string `json:"skipped_models,omitempty"`
	// Recommendations are the tuning advisor's ranked suggestions with
	// model-predicted gains.
	Recommendations []RecommendationJSON `json:"recommendations,omitempty"`
	// AdvisoryError is set when the diagnosis succeeded but the tuning
	// advisor failed; the diagnosis above is still complete and valid.
	AdvisoryError string `json:"advisory_error,omitempty"`
	// Advisories are per-claim provenance statements from the model
	// lifecycle (which generation served, which canary gate admitted it,
	// which counters have drifted since training) — the trust context for
	// the diagnosis above. See lifecycle.go.
	Advisories []AdvisoryJSON `json:"advisories,omitempty"`
}

// RecommendationJSON is one automatic tuning recommendation.
type RecommendationJSON struct {
	Action         string  `json:"action"`
	Description    string  `json:"description"`
	PredictedMiBps float64 `json:"predicted_mibps"`
	PredictedGain  float64 `json:"predicted_gain"`
}

// ModelInfo describes one registered model.
type ModelInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// DefaultMaxBody caps a single-log request body when Server.MaxBody is 0.
// Batch and model-upload endpoints get 4× the single-log cap.
const DefaultMaxBody = 16 << 20

// Server is the AIIO web service.
type Server struct {
	// RequestTimeout, when > 0, is the per-request diagnosis deadline. A
	// request whose SHAP work outlives it is cancelled cooperatively and
	// answered with a structured 503 instead of holding a worker forever.
	RequestTimeout time.Duration
	// MaxBody caps the accepted request body in bytes (DefaultMaxBody when
	// 0). An oversized upload is refused with 413.
	MaxBody int64
	// CacheSize bounds the LRU cache of diagnosis results (DefaultCacheSize
	// when 0, negative disables caching). A cached entry is keyed by the
	// model-set version and the job's full identity, so repeat diagnoses of
	// the same log skip the SHAP work entirely; every model upload
	// invalidates the whole cache. Set before the first request.
	CacheSize int
	// Admission, when non-nil, gates the diagnosis endpoints with bounded
	// per-endpoint concurrency: excess load is shed with a structured 429
	// and a Retry-After hint instead of queueing without bound. Set before
	// the first request.
	Admission *admission.Controller
	// Breakers, when non-nil, puts a circuit breaker in front of each
	// model: a model failing repeatedly is taken out of rotation (the
	// diagnosis degrades over the survivors, like the PR 2 degraded path)
	// until its cooldown probe succeeds. When every model's breaker is
	// open, diagnoses answer 503 with the X-AIIO-Breaker: open header.
	Breakers *admission.BreakerSet
	// Store, when non-nil, persists each accepted model upload as a new
	// registry generation, so a validated hot-swap survives a restart.
	Store *core.Store
	// JobLog, when non-nil, enables POST /api/v1/jobs: streaming job ingest
	// into the durable WAL, deduplicated by job hash so client retries are
	// idempotent. Set before the first request.
	JobLog *joblog.Store
	// RetrainThreshold, when > 0 with a JobLog and Retrainer wired in,
	// triggers a background incremental retrain once the ingest backlog
	// reaches this many jobs.
	RetrainThreshold int
	// Retrainer runs one incremental retraining cycle (typically
	// core.RunIncremental against the JobLog and Store) and returns the
	// freshly committed ensemble and its generation. Invoked single-flight
	// from ingest; also reachable via TriggerRetrain.
	Retrainer func(ctx context.Context) (*core.Ensemble, uint64, error)
	// CoalesceWindow, when > 0, fuses single-job diagnose requests that
	// arrive within the window into one DiagnoseBatch pass (duplicate jobs
	// collapse to a single diagnosis fanned out to every caller). Set
	// before the first request. See coalesce.go.
	CoalesceWindow time.Duration
	// CoalesceMax caps one fused batch (DefaultCoalesceMax when 0); a full
	// batch dispatches without waiting out the window.
	CoalesceMax int
	// Drift, when non-nil, streams every durably ingested job through
	// bounded-memory distribution sketches and rolling prediction-error
	// tracking; a tripped detector triggers the same single-flight retrain
	// a backlog threshold does, canary-gated before promotion. Set before
	// the first request. See lifecycle.go and internal/drift.
	Drift *drift.Monitor
	// RollbackRatio, when > 0 with Drift wired in, arms a post-promotion
	// watch after each auto-promoted retrain: rolling serving error
	// reaching RollbackRatio × the pre-promotion baseline rolls the swap
	// back to the previous generation automatically.
	RollbackRatio float64
	// RollbackWatch is how many labeled jobs the post-promotion watch
	// covers before the promotion is judged safe (default 200).
	RollbackWatch int

	// coalesceOnce pins the coalescer (or its absence) at first use.
	coalesceOnce sync.Once
	coal         *coalescer

	// watch is the live post-promotion rollback watch (nil between
	// promotions); lifecycleMu guards the lifecycle decision history.
	watch       atomic.Pointer[promotionWatch]
	lifecycleMu sync.Mutex
	lifecycle   lifecycleStatus

	// retrainBusy makes retraining single-flight: a trigger while one cycle
	// is running is a no-op (the running cycle drains the same backlog).
	retrainBusy atomic.Bool
	// retrainState mirrors the last cycle's outcome for /healthz.
	retrainState atomic.Pointer[retrainStatus]

	// genReport mirrors the registry load report for /readyz (which
	// generation is serving, whether it was a fallback); set with
	// SetGeneration, updated by persisted hot-swaps.
	genReport atomic.Pointer[core.LoadReport]

	// draining is set by BeginDrain: readiness goes red and, with no
	// Admission controller to refuse work, the diagnosis endpoints shed
	// directly.
	draining atomic.Bool

	// cacheOnce pins the cache (or its absence) at first use.
	cacheOnce sync.Once
	cache     *diagCache

	mu   sync.RWMutex
	ens  *core.Ensemble
	opts core.DiagnoseOptions
	// version counts model-set generations: it starts at 1 and each upload
	// increments it, so cache keys from older ensembles can never match.
	version uint64
	// advise produces tuning recommendations for a finished diagnosis; a
	// field so tests can inject failures. An advise error never fails the
	// diagnosis — it degrades to AdvisoryError in the response.
	advise func(*core.Ensemble, *core.Diagnosis) ([]tune.Recommendation, error)
}

// NewServer wraps a trained ensemble.
func NewServer(ens *core.Ensemble, opts core.DiagnoseOptions) *Server {
	return &Server{
		ens:     ens,
		opts:    opts,
		version: 1,
		advise: func(e *core.Ensemble, d *core.Diagnosis) ([]tune.Recommendation, error) {
			return tune.New(e).Advise(d, 1.05)
		},
	}
}

// diagnosisCache returns the result cache, created at first use from
// CacheSize; nil when caching is disabled.
func (s *Server) diagnosisCache() *diagCache {
	s.cacheOnce.Do(func() {
		size := s.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		if size > 0 {
			s.cache = newDiagCache(size)
		}
	})
	return s.cache
}

// snapshot returns the current model set and options without holding any
// lock during the (multi-second) diagnosis that follows: the Models slice
// is copied under a read lock and a concurrent upload swaps in a new slice
// element rather than mutating a model in place, so diagnoses in flight
// keep working against the set they started with.
func (s *Server) snapshot() (*core.Ensemble, core.DiagnoseOptions, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	models := append([]core.Model(nil), s.ens.Models...)
	return &core.Ensemble{Models: models}, s.opts, s.version
}

// ServingEnsemble returns a lock-free snapshot copy of the model set
// currently answering traffic — the incumbent a canary gate evaluates a
// retrained candidate against.
func (s *Server) ServingEnsemble() *core.Ensemble {
	ens, _, _ := s.snapshot()
	return ens
}

// Handler returns the HTTP routes, every one wrapped in the protection
// middleware (panic recovery + per-request deadline).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/diagnose", s.admitted("diagnose", s.handleDiagnoseHTML))
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.HandleFunc("/api/v1/models", s.handleModels)
	mux.HandleFunc("/api/v1/diagnose", s.admitted("diagnose", s.handleDiagnose))
	mux.HandleFunc("/api/v1/diagnose/batch", s.admitted("batch", s.handleDiagnoseBatch))
	mux.HandleFunc("/api/v1/jobs", s.admitted(IngestEndpoint, s.handleJobs))
	mux.HandleFunc("/api/v1/drift", s.handleDrift)
	mux.HandleFunc("/api/v1/generations", s.handleGenerations)
	mux.HandleFunc("/api/v1/generations/", s.handleGenerationFetch)
	return s.protect(mux)
}

// protect wraps h with the two blanket guards every route gets: a recover
// that converts a handler panic into a 500 (one hostile request must not
// take the whole service down), and — when RequestTimeout is set — a
// context deadline derived per request, so the diagnosis engine's
// cooperative cancellation bounds how long any request can hold the SHAP
// workers.
func (s *Server) protect(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				// Best effort: if the handler already wrote a status this
				// only appends to the body.
				httpError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
		}()
		if s.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h.ServeHTTP(w, r)
	})
}

// admitted wraps a diagnosis handler with the admission gate for one
// endpoint. A shed request is answered immediately — 429 + Retry-After
// for overload, 503 for a drain — without ever reaching the parser or
// the diagnosis engine (so it cannot occupy memory, workers, or a cache
// slot). With no Admission controller configured, only the drain flag is
// enforced.
func (s *Server) admitted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.Admission == nil {
			if s.draining.Load() {
				s.writeShed(w, admission.ErrDraining, admission.DefaultRetryAfter)
				return
			}
			h(w, r)
			return
		}
		lim := s.Admission.Limiter(endpoint)
		release, err := lim.Acquire(r.Context())
		if err != nil {
			s.writeShed(w, err, lim.RetryAfter())
			return
		}
		defer release()
		h(w, r)
	}
}

// writeShed answers a request refused by the admission layer: 503 for a
// draining server, 429 + Retry-After for overload or a dead-on-arrival
// deadline.
func (s *Server) writeShed(w http.ResponseWriter, err error, retryAfter time.Duration) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	status := http.StatusTooManyRequests
	msg := "server overloaded, request shed"
	if errors.Is(err, admission.ErrDraining) {
		status = http.StatusServiceUnavailable
		msg = "server is draining"
	}
	writeJSON(w, status, map[string]any{
		"error":       msg,
		"detail":      err.Error(),
		"retry_after": secs,
	})
}

// BeginDrain flips the server into drain mode: /readyz reports not-ready
// (so load balancers stop routing here) and new diagnosis work is
// refused while in-flight requests run to completion.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	if s.Admission != nil {
		s.Admission.BeginDrain()
	}
}

// Drain begins the drain and waits until every admitted diagnosis has
// finished or ctx expires. Call before http.Server.Shutdown so the
// listener closes only after the work is done.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	if s.Admission == nil {
		return nil
	}
	return s.Admission.Drain(ctx)
}

// modelNames snapshots the registered model names.
func (s *Server) modelNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.ens.Models))
	for _, m := range s.ens.Models {
		names = append(names, m.Name())
	}
	return names
}

// handleReady is the readiness probe: distinct from /healthz liveness, it
// goes red when the server should receive no new traffic — during a
// drain, while every model's circuit breaker is open, or before a valid
// model generation is loaded — while the process itself stays alive.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	var reasons []string
	if s.draining.Load() || (s.Admission != nil && s.Admission.Draining()) {
		reasons = append(reasons, "draining")
	}
	names := s.modelNames()
	if len(names) == 0 {
		reasons = append(reasons, "no model generation loaded")
	}
	if s.Breakers != nil && s.Breakers.AllOpen(names) {
		reasons = append(reasons, "all model circuit breakers open")
	}
	body := map[string]any{"ready": len(reasons) == 0}
	if len(reasons) > 0 {
		body["reasons"] = reasons
	}
	if s.Breakers != nil {
		body["breakers"] = s.Breakers.States()
	}
	if s.Admission != nil {
		body["admission"] = s.Admission.Stats()
	}
	if rep := s.genReport.Load(); rep != nil {
		body["generation"] = rep
	}
	status := http.StatusOK
	if len(reasons) > 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

func (s *Server) maxBody() int64 {
	if s.MaxBody > 0 {
		return s.MaxBody
	}
	return DefaultMaxBody
}

// writeUnavailable answers a request whose diagnosis hit the per-request
// deadline (or whose client vanished) with a structured 503.
func (s *Server) writeUnavailable(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":   "diagnosis cancelled before completion",
		"timeout": s.RequestTimeout.String(),
		"detail":  err.Error(),
	})
}

// bodyError maps a request-body parse failure to a status: 413 when the
// MaxBytesReader limit tripped, 400 otherwise.
func bodyError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		return
	}
	httpError(w, http.StatusBadRequest, fmt.Sprintf("parse log: %v", err))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"status": "ok"}
	if c := s.diagnosisCache(); c != nil {
		hits, misses, size := c.stats()
		body["cache"] = map[string]any{"hits": hits, "misses": misses, "size": size}
	}
	if co := s.coalescerIfEnabled(); co != nil {
		batches, fused := co.stats()
		body["coalesce"] = map[string]any{"batches": batches, "fused": fused}
	}
	if s.JobLog != nil {
		st := s.JobLog.Stats()
		body["joblog"] = map[string]any{
			"sealed_segments":      st.SealedSegments,
			"bytes":                st.TotalBytes,
			"records":              st.Records,
			"quarantined":          st.Quarantined,
			"duplicate_frames":     st.DuplicateFrames,
			"compactions":          st.Compactions,
			"last_compaction_unix": st.LastCompactionUnix,
			"pending_retrain":      st.Pending,
		}
		retrain := map[string]any{"busy": s.retrainBusy.Load()}
		if rs := s.retrainState.Load(); rs != nil {
			retrain["last_generation"] = rs.Generation
			retrain["last_unix"] = rs.FinishedUnix
			if rs.Err != "" {
				retrain["last_error"] = rs.Err
			}
		}
		body["retrain"] = retrain
	}
	if s.Breakers != nil {
		body["breakers"] = s.Breakers.States()
	}
	if s.Drift != nil {
		st := s.Drift.Snapshot()
		lc := s.lifecycleSnapshot()
		body["drift"] = map[string]any{
			"armed":          st.Armed,
			"tripped":        st.Tripped,
			"tripped_by":     st.TrippedBy,
			"max_psi":        st.MaxPSI,
			"threshold":      st.Threshold,
			"drifted":        len(st.Drifted),
			"window_jobs":    st.WindowJobs,
			"reference_jobs": st.ReferenceJobs,
			"rolling_rmse":   st.RollingRMSE,
			"baseline_rmse":  st.BaselineRMSE,
			"error_ratio":    st.ErrorRatio,
			"error_obs":      st.ErrorObs,
			"drift_retrains": lc.DriftRetrains,
			"canary_blocked": lc.CanaryBlocked,
			"rollbacks":      lc.Rollbacks,
			"watch_armed":    lc.WatchArmed,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.RLock()
		defer s.mu.RUnlock()
		infos := make([]ModelInfo, 0, len(s.ens.Models))
		for _, m := range s.ens.Models {
			infos = append(infos, ModelInfo{Name: m.Name(), Kind: m.Kind()})
		}
		writeJSON(w, http.StatusOK, infos)
	case http.MethodPost:
		s.handleModelUpload(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// SetGeneration records the registry load report surfaced on /readyz.
func (s *Server) SetGeneration(rep *core.LoadReport) { s.genReport.Store(rep) }

// storeReport builds a load report for a just-committed generation,
// fingerprinted from its on-disk manifest.
func (s *Server) storeReport(gen uint64) *core.LoadReport {
	rep := &core.LoadReport{Generation: gen}
	if s.Store != nil {
		if man, err := s.Store.Manifest(gen); err == nil {
			rep.Fingerprint = man.Fingerprint()
		}
	}
	return rep
}

// GenerationReport returns the current registry load report (nil when no
// store is wired in).
func (s *Server) GenerationReport() *core.LoadReport { return s.genReport.Load() }

// handleModelUpload accepts a pre-trained model (?name=...&kind=gbdt|mlp|tabnet
// with the gob body) as a validated hot-swap: the candidate model set —
// current set with the upload swapped in — is smoke-predicted on a probe
// vector first, and only a fully valid set goes live under a version
// bump. A failed validation rolls back automatically: the old set keeps
// serving untouched and the client gets a structured error saying so.
// With a Store wired in, the accepted set is also persisted as a new
// registry generation so the swap survives a restart.
func (s *Server) handleModelUpload(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	kind := r.URL.Query().Get("kind")
	if name == "" || kind == "" {
		httpError(w, http.StatusBadRequest, "name and kind query parameters required")
		return
	}
	m, err := core.LoadModel(name, kind, http.MaxBytesReader(w, r.Body, 4*s.maxBody()))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("model exceeds %d bytes", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decode model: %v", err))
		return
	}
	// Validate the uploaded model alone first — the cheap reject, before
	// taking any lock.
	if err := probeModel(m); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error":       fmt.Sprintf("model failed validation: %v", err),
			"rolled_back": true,
		})
		return
	}
	s.mu.Lock()
	// Build the candidate set: a fresh slice (in-flight snapshots keep
	// the old backing array) with the upload swapped in or appended.
	candidate := append([]core.Model(nil), s.ens.Models...)
	replaced := false
	for i, existing := range candidate {
		if existing.Name() == name {
			candidate[i] = m
			replaced = true
			break
		}
	}
	if !replaced {
		candidate = append(candidate, m)
	}
	// Smoke-predict the whole candidate set. If any member fails, the
	// swap is rolled back before it ever happened: s.ens is untouched.
	for _, cm := range candidate {
		if err := probeModel(cm); err != nil {
			s.mu.Unlock()
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": fmt.Sprintf("candidate model set failed validation at %s: %v; upload rolled back",
					cm.Name(), err),
				"rolled_back": true,
			})
			return
		}
	}
	s.ens.Models = candidate
	// The new model invalidates every cached diagnosis: bump the version so
	// in-flight requests keyed against the old set can never hit, and purge
	// the entries outright.
	s.version++
	if c := s.diagnosisCache(); c != nil {
		c.purge()
	}
	persist := &core.Ensemble{Models: candidate}
	s.mu.Unlock()
	// A fresh (validated) model deserves a closed breaker.
	if s.Breakers != nil {
		s.Breakers.For(name).Success()
	}
	body := map[string]any{"name": name, "replaced": replaced}
	// Persist the accepted set outside the lock; a persist failure keeps
	// the hot-swap live (it already validated) and is surfaced instead.
	if s.Store != nil {
		if gen, err := s.Store.Save(persist); err != nil {
			body["persist_error"] = err.Error()
		} else {
			body["generation"] = gen
			s.SetGeneration(s.storeReport(gen))
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// probeModel rejects an uploaded model whose feature dimension does not
// match the 45-counter schema before it can reach a diagnosis: a
// wrongly-dimensioned model panics (slice bounds) or returns a non-finite
// value when evaluated, so it is exercised here on a probe vector, inside
// a recover, instead of inside a live request.
func probeModel(m core.Model) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("probe prediction panicked (feature dimension mismatch with the %d-counter schema?): %v",
				darshan.NumCounters, r)
		}
	}()
	probe := make([]float64, darshan.NumCounters)
	for j := range probe {
		// Non-zero, varied values so dimension-dependent code paths
		// (standardization, tree splits on any counter) are exercised.
		probe[j] = float64(j%7) + 0.5
	}
	v := m.Predict(probe)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("probe prediction is %v", v)
	}
	return nil
}

// applyBreakers partitions the snapshot ensemble by each model's circuit
// breaker: allowed models run, open ones are skipped (the degraded path
// for traffic). With no BreakerSet configured every model is allowed.
func (s *Server) applyBreakers(ens *core.Ensemble) (allowed *core.Ensemble, open []string) {
	if s.Breakers == nil {
		return ens, nil
	}
	allowed = &core.Ensemble{Models: make([]core.Model, 0, len(ens.Models))}
	for _, m := range ens.Models {
		if s.Breakers.For(m.Name()).Allow() {
			allowed.Models = append(allowed.Models, m)
		} else {
			open = append(open, m.Name())
		}
	}
	return allowed, open
}

// recordOutcomes feeds one request's per-model results back into the
// breakers: a model that failed (panic, NaN) in any of the request's
// diagnoses counts one failure, a model that worked throughout counts
// one success. Skipped on a request-level cancellation, where per-model
// blame is meaningless.
func (s *Server) recordOutcomes(allowed *core.Ensemble, diags ...*core.Diagnosis) {
	if s.Breakers == nil {
		return
	}
	for i, m := range allowed.Models {
		failed := false
		for _, d := range diags {
			if d.PerModel[i].Failed() {
				failed = true
				break
			}
		}
		if failed {
			s.Breakers.For(m.Name()).Failure()
		} else {
			s.Breakers.For(m.Name()).Success()
		}
	}
}

// recordAllFailures charges every allowed model's breaker one failure —
// the case where the whole diagnosis errored because no model survived,
// so there is no per-model Diagnosis to consult.
func (s *Server) recordAllFailures(allowed *core.Ensemble) {
	if s.Breakers == nil {
		return
	}
	for _, m := range allowed.Models {
		s.Breakers.For(m.Name()).Failure()
	}
}

// writeBreakerOpen answers a request that no model can serve: every
// breaker is open. The X-AIIO-Breaker header tells clients not to retry
// against this instance; Retry-After hints when the first cooldown probe
// becomes possible.
func (s *Server) writeBreakerOpen(w http.ResponseWriter) {
	w.Header().Set("X-AIIO-Breaker", "open")
	w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(admission.DefaultRetryAfter.Seconds()))))
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":    "every model's circuit breaker is open",
		"breakers": s.Breakers.States(),
	})
}

// markBreakerSkips appends the breaker-open models to a response as
// skipped casualties, so a client sees the same degraded-ensemble shape
// the PR 2 path produces for in-request failures.
func markBreakerSkips(resp *DiagnosisResponse, open []string) {
	if len(open) == 0 {
		return
	}
	resp.Degraded = true
	for _, name := range open {
		resp.Models = append(resp.Models, ModelResult{Name: name, Error: "circuit breaker open"})
		resp.SkippedModels = append(resp.SkippedModels, name)
	}
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a Darshan text log")
		return
	}
	rec, err := darshan.ParseLog(http.MaxBytesReader(w, r.Body, s.maxBody()))
	if err != nil {
		bodyError(w, err)
		return
	}
	s.stampGeneration(w)
	// Diagnose against a lock-free snapshot so a concurrent model upload
	// (write lock) never stalls behind, or waits on, in-flight SHAP work.
	ens, opts, version := s.snapshot()
	cache := s.diagnosisCache()
	var key string
	var diag *core.Diagnosis
	if cache != nil {
		key = cacheKey(version, rec)
		if d, ok := cache.get(key); ok {
			diag = d
			w.Header().Set("X-AIIO-Cache", "hit")
		}
	}
	var open []string
	var allowed *core.Ensemble
	switch {
	case diag != nil:
	case s.coalescerIfEnabled() != nil:
		// Micro-batch path: park behind the coalescer; the fused batch
		// does the snapshotting, breaker partition, outcome accounting,
		// and cache fills (runCoalesced).
		res, err := s.coal.submit(r.Context(), rec)
		if err != nil {
			switch {
			case errors.Is(err, errAllBreakersOpen):
				s.writeBreakerOpen(w)
			case r.Context().Err() != nil:
				s.writeUnavailable(w, err)
			default:
				httpError(w, http.StatusInternalServerError, fmt.Sprintf("diagnose: %v", err))
			}
			return
		}
		diag, allowed, open = res.diag, res.allowed, res.open
		w.Header().Set("X-AIIO-Coalesced", strconv.Itoa(res.batched))
		if cache != nil {
			if res.fromCache {
				w.Header().Set("X-AIIO-Cache", "hit")
			} else if len(open) == 0 {
				w.Header().Set("X-AIIO-Cache", "miss")
			}
		}
	default:
		var openNow []string
		allowed, openNow = s.applyBreakers(ens)
		open = openNow
		if len(allowed.Models) == 0 {
			s.writeBreakerOpen(w)
			return
		}
		var err error
		diag, err = allowed.DiagnoseContext(r.Context(), rec, opts)
		if err != nil {
			if r.Context().Err() != nil {
				s.writeUnavailable(w, err)
				return
			}
			// A non-cancellation diagnosis error means every allowed model
			// failed; the breakers must hear about it or they never open.
			s.recordAllFailures(allowed)
			httpError(w, http.StatusInternalServerError, fmt.Sprintf("diagnose: %v", err))
			return
		}
		s.recordOutcomes(allowed, diag)
		// A result computed with breaker-open models excluded is partial:
		// caching it would keep serving the degraded answer after the
		// breakers close, so only full-ensemble results are cached.
		if cache != nil && len(open) == 0 {
			cache.put(key, diag)
			w.Header().Set("X-AIIO-Cache", "miss")
		}
	}
	resp := buildResponse(diag)
	markBreakerSkips(resp, open)
	// The advisor is best-effort: a failure degrades to an advisory-error
	// field instead of discarding the successful diagnosis. It runs over
	// the models that served this request — breaker-open models are
	// excluded from its counterfactual predictions too.
	adviseEns := ens
	if allowed != nil {
		adviseEns = allowed
	}
	recs, advErr := s.safeAdvise(adviseEns, diag)
	if advErr != nil {
		resp.AdvisoryError = advErr.Error()
	}
	for _, r := range recs {
		resp.Recommendations = append(resp.Recommendations, RecommendationJSON{
			Action:         r.Action,
			Description:    r.Description,
			PredictedMiBps: r.PredictedMiBps,
			PredictedGain:  r.PredictedGain,
		})
	}
	s.appendAdvisories(resp)
	writeJSON(w, http.StatusOK, resp)
}

// handleDiagnoseBatch accepts a WriteDataset-format stream of several logs
// and diagnoses them on the parallel engine (Ensemble.DiagnoseBatch),
// returning one response per record in input order. Recommendations are
// omitted in batch mode; the single-job endpoint provides them.
func (s *Server) handleDiagnoseBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a stream of Darshan text logs")
		return
	}
	ds, err := darshan.ParseDataset(http.MaxBytesReader(w, r.Body, 4*s.maxBody()))
	if err != nil {
		bodyError(w, err)
		return
	}
	if ds.Len() == 0 {
		httpError(w, http.StatusBadRequest, "no records in request body")
		return
	}
	s.stampGeneration(w)
	ens, opts, version := s.snapshot()
	cache := s.diagnosisCache()

	// Resolve each record against the cache first, then run the parallel
	// engine only over the misses and stitch the results back in order.
	diags := make([]*core.Diagnosis, ds.Len())
	keys := make([]string, ds.Len())
	var missIdx []int
	hits := 0
	for i, rec := range ds.Records {
		if cache != nil {
			keys[i] = cacheKey(version, rec)
			if d, ok := cache.get(keys[i]); ok {
				diags[i] = d
				hits++
				continue
			}
		}
		missIdx = append(missIdx, i)
	}
	var open []string
	if len(missIdx) > 0 {
		allowed, openNow := s.applyBreakers(ens)
		open = openNow
		if len(allowed.Models) == 0 {
			s.writeBreakerOpen(w)
			return
		}
		missRecs := make([]*darshan.Record, len(missIdx))
		for k, i := range missIdx {
			missRecs[k] = ds.Records[i]
		}
		fresh, err := allowed.DiagnoseBatchContext(r.Context(), missRecs, opts)
		if err != nil {
			if r.Context().Err() != nil {
				s.writeUnavailable(w, err)
				return
			}
			s.recordAllFailures(allowed)
			httpError(w, http.StatusInternalServerError, fmt.Sprintf("diagnose: %v", err))
			return
		}
		s.recordOutcomes(allowed, fresh...)
		for k, i := range missIdx {
			diags[i] = fresh[k]
			// Partial (breaker-degraded) results stay out of the cache;
			// see handleDiagnose.
			if cache != nil && len(open) == 0 {
				cache.put(keys[i], fresh[k])
			}
		}
	}
	if cache != nil {
		w.Header().Set("X-AIIO-Cache", fmt.Sprintf("hits=%d misses=%d", hits, len(missIdx)))
	}
	resps := make([]*DiagnosisResponse, len(diags))
	for i, diag := range diags {
		resps[i] = buildResponse(diag)
	}
	// Cache hits were full-ensemble results; only the fresh misses carry
	// the breaker-open skips.
	for _, i := range missIdx {
		markBreakerSkips(resps[i], open)
	}
	writeJSON(w, http.StatusOK, resps)
}

// safeAdvise runs the tuning advisor with panics converted to errors:
// unlike the diagnosis engine, the advisor predicts on raw models with no
// per-model recovery, so a model that panics mid-advice (a fault the
// diagnosis already degraded around) must cost only the recommendations,
// never the whole response.
func (s *Server) safeAdvise(ens *core.Ensemble, diag *core.Diagnosis) (recs []tune.Recommendation, err error) {
	defer func() {
		if r := recover(); r != nil {
			recs, err = nil, fmt.Errorf("advisor panicked: %v", r)
		}
	}()
	return s.advise(ens, diag)
}

func buildResponse(diag *core.Diagnosis) *DiagnosisResponse {
	resp := &DiagnosisResponse{
		App:           diag.Record.App,
		ActualMiBps:   diag.ActualMiBps,
		ClosestModel:  diag.PerModel[diag.ClosestIndex].Name,
		Robust:        diag.IsRobust(),
		Degraded:      diag.Degraded,
		SkippedModels: diag.SkippedModels(),
	}
	for i, md := range diag.PerModel {
		resp.Models = append(resp.Models, ModelResult{
			Name:           md.Name,
			PredictedMiBps: md.PredictedMiBps,
			Weight:         diag.Weights[i],
			Error:          md.Err,
		})
	}
	for _, f := range diag.TopFactors(0) {
		resp.Factors = append(resp.Factors, FactorJSON{
			Counter: f.Counter.String(), Contribution: f.Contribution, Value: f.Value,
		})
	}
	for _, f := range diag.Bottlenecks() {
		resp.Bottlenecks = append(resp.Bottlenecks, FactorJSON{
			Counter: f.Counter.String(), Contribution: f.Contribution, Value: f.Value,
		})
	}
	return resp
}

// stampGeneration advertises which model generation (and content
// fingerprint) produced this response, so routers, replication syncers, and
// chaos drills can assert freshness without a second round trip. A server
// with no registry report (e.g. a bare NewServer in tests) stamps nothing.
func (s *Server) stampGeneration(w http.ResponseWriter) {
	if rep := s.genReport.Load(); rep != nil {
		w.Header().Set("X-AIIO-Generation", strconv.FormatUint(rep.Generation, 10))
		if rep.Fingerprint != "" {
			w.Header().Set("X-AIIO-Fingerprint", rep.Fingerprint)
		}
	}
}

// AdoptGeneration hot-swaps a replicated (or freshly committed) model set
// into the serving path with the same safeguards as a model upload: every
// model is probe-validated first, and a failure leaves the old set serving
// untouched. On success the version bumps (invalidating every cached
// diagnosis), the cache is purged, the generation report goes live on
// /readyz and the response headers, and each model's breaker is reset the
// way a validated upload's is.
func (s *Server) AdoptGeneration(ens *core.Ensemble, rep *core.LoadReport) error {
	for _, m := range ens.Models {
		if err := probeModel(m); err != nil {
			return fmt.Errorf("webservice: adopt generation %d: model %s failed validation, swap refused: %w",
				rep.Generation, m.Name(), err)
		}
	}
	s.mu.Lock()
	s.ens = ens
	s.version++
	if c := s.diagnosisCache(); c != nil {
		c.purge()
	}
	s.mu.Unlock()
	s.SetGeneration(rep)
	if s.Breakers != nil {
		for _, m := range ens.Models {
			s.Breakers.For(m.Name()).Success()
		}
	}
	return nil
}

// GenerationSummary is the JSON body of GET /api/v1/generations: the
// replication handshake. Generation/Fingerprint describe the store's
// CURRENT generation — what a follower can fetch from this replica —
// while Serving* describe the in-memory set answering diagnoses (the two
// differ only inside the commit-to-hot-swap window, or when persistence
// failed).
type GenerationSummary struct {
	Generation         uint64   `json:"generation"`
	Fingerprint        string   `json:"fingerprint,omitempty"`
	Available          []uint64 `json:"available,omitempty"`
	ServingGeneration  uint64   `json:"serving_generation"`
	ServingFingerprint string   `json:"serving_fingerprint,omitempty"`
}

// handleGenerations answers the replication handshake. 501 without a
// store: a store-less server has nothing a follower could fetch.
func (s *Server) handleGenerations(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.Store == nil {
		httpError(w, http.StatusNotImplemented, "no model store configured")
		return
	}
	sum := GenerationSummary{}
	if cur, ok := s.Store.CurrentGeneration(); ok {
		sum.Generation = cur
		if man, err := s.Store.Manifest(cur); err == nil {
			sum.Fingerprint = man.Fingerprint()
		}
		sum.Available, _ = s.Store.Generations()
	}
	if rep := s.genReport.Load(); rep != nil {
		sum.ServingGeneration = rep.Generation
		sum.ServingFingerprint = rep.Fingerprint
	}
	writeJSON(w, http.StatusOK, &sum)
}

// handleGenerationFetch serves the transfer half of generation
// replication:
//
//	GET /api/v1/generations/{id}              → manifest JSON
//	GET /api/v1/generations/{id}/files/{file} → raw model bytes
//
// The file name must match a manifest entry exactly (Store.OpenModelFile
// enforces it), so the endpoint cannot be walked outside the generation
// directory. Followers verify each file's SHA-256 against the manifest
// before anything is committed, so a torn or tampered transfer dies on the
// follower, not here.
func (s *Server) handleGenerationFetch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.Store == nil {
		httpError(w, http.StatusNotImplemented, "no model store configured")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/generations/")
	parts := strings.Split(rest, "/")
	gen, err := strconv.ParseUint(parts[0], 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad generation id %q", parts[0]))
		return
	}
	switch {
	case len(parts) == 1:
		man, err := s.Store.Manifest(gen)
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, man)
	case len(parts) == 3 && parts[1] == "files":
		f, err := s.Store.OpenModelFile(gen, parts[2])
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", "application/octet-stream")
		if _, err := io.Copy(w, f); err != nil {
			// Headers are gone; the follower's checksum catches the torn
			// body.
			return
		}
	default:
		httpError(w, http.StatusNotFound, "use /api/v1/generations/{id} or /api/v1/generations/{id}/files/{file}")
	}
}

// encodeBuf pairs a reusable buffer with a json.Encoder bound to it, so
// the per-response encoder allocation is pooled away along with the body
// bytes.
type encodeBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

// maxPooledEncodeBuf keeps outlier response bodies (a huge batch) from
// pinning their capacity in the pool forever.
const maxPooledEncodeBuf = 1 << 20

var encodePool = sync.Pool{New: func() any {
	eb := &encodeBuf{}
	eb.enc = json.NewEncoder(&eb.buf)
	return eb
}}

// writeJSON encodes v through a pooled buffer + encoder, so the steady
// state of the handler path allocates no per-response encoding state, and
// the response carries a Content-Length (the body is in hand before any
// byte is written).
func writeJSON(w http.ResponseWriter, status int, v any) {
	eb := encodePool.Get().(*encodeBuf)
	eb.buf.Reset()
	if err := eb.enc.Encode(v); err != nil {
		// Encoding failed before anything was written: a structured 500
		// is still possible (maps and the response structs here cannot
		// actually fail, but a cycle in some future type must not hang
		// the connection).
		encodePool.Put(eb)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, `{"error":"encode response: %v"}`, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(eb.buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(eb.buf.Bytes())
	if eb.buf.Cap() <= maxPooledEncodeBuf {
		encodePool.Put(eb)
	}
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
