package webservice

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/tune"
)

func recordBody(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := darshan.WriteLog(&buf, testRecord()); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestRequestTimeoutReturns503(t *testing.T) {
	s := NewServer(ensemble(t), fastOpts())
	s.RequestTimeout = time.Nanosecond // expires before any model runs
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+"/api/v1/diagnose", "text/plain", recordBody(t))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadlined diagnosis got HTTP %d, want 503", resp.StatusCode)
	}
	var body struct {
		Error   string `json:"error"`
		Timeout string `json:"timeout"`
		Detail  string `json:"detail"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("503 body is not structured JSON: %v", err)
	}
	if body.Error == "" || body.Timeout != time.Nanosecond.String() || body.Detail == "" {
		t.Errorf("503 body incomplete: %+v", body)
	}
}

func TestBatchRequestTimeoutReturns503(t *testing.T) {
	s := NewServer(ensemble(t), fastOpts())
	s.RequestTimeout = time.Nanosecond
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var buf bytes.Buffer
	recs := []*darshan.Record{testRecord(), testRecord()}
	if err := darshan.WriteDataset(&buf, &darshan.Dataset{Records: recs}); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/api/v1/diagnose/batch", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadlined batch got HTTP %d, want 503", resp.StatusCode)
	}
}

func TestMaxBodyReturns413(t *testing.T) {
	s := NewServer(ensemble(t), fastOpts())
	s.MaxBody = 4096 // a single 45-counter log is ~1.3 KiB
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	big := strings.NewReader(strings.Repeat("# padding comment line\n", 400)) // ~9 KiB
	resp, err := srv.Client().Post(srv.URL+"/api/v1/diagnose", "text/plain", big)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body got HTTP %d, want 413", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || !strings.Contains(body.Error, "4096") {
		t.Errorf("413 body should name the limit: %+v err=%v", body, err)
	}

	// A body under the limit still works.
	resp, err = srv.Client().Post(srv.URL+"/api/v1/diagnose", "text/plain", recordBody(t))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("in-limit body got HTTP %d", resp.StatusCode)
	}
}

func TestHandlerPanicRecovered(t *testing.T) {
	// The blanket protect middleware turns any handler panic into a 500
	// without killing the connection or the server.
	s := NewServer(ensemble(t), fastOpts())
	h := s.protect(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+"/api/v1/diagnose", "text/plain", recordBody(t))
	if err != nil {
		t.Fatalf("panicking handler killed the connection: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("handler panic got HTTP %d, want 500", resp.StatusCode)
	}
}

func TestAdvisorPanicDegradesToAdvisoryError(t *testing.T) {
	// The advisor is best-effort: a panic inside it costs only the
	// recommendations, never the successful diagnosis it rides on.
	s := NewServer(ensemble(t), fastOpts())
	s.advise = func(*core.Ensemble, *core.Diagnosis) ([]tune.Recommendation, error) {
		panic("advisor exploded")
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+"/api/v1/diagnose", "text/plain", recordBody(t))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advisor panic got HTTP %d, want 200 with advisory_error", resp.StatusCode)
	}
	var body DiagnosisResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.AdvisoryError, "advisor panicked") {
		t.Fatalf("advisory_error = %q, want the recovered panic", body.AdvisoryError)
	}
	if len(body.Factors) == 0 {
		t.Error("diagnosis factors missing despite a successful diagnosis")
	}

	// The server survives and answers the next request normally.
	s.advise = func(*core.Ensemble, *core.Diagnosis) ([]tune.Recommendation, error) { return nil, nil }
	resp2, err := srv.Client().Post(srv.URL+"/api/v1/diagnose", "text/plain", recordBody(t))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("request after recovered panic got HTTP %d", resp2.StatusCode)
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	old := retryBase
	retryBase = time.Millisecond
	defer func() { retryBase = old }()

	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			httpError(w, http.StatusServiceUnavailable, "warming up")
			return
		}
		writeJSON(w, http.StatusOK, &DiagnosisResponse{App: "ok"})
	}))
	defer srv.Close()

	resp, err := NewClient(srv.URL).Diagnose(testRecord())
	if err != nil {
		t.Fatalf("client gave up despite eventual success: %v", err)
	}
	if resp.App != "ok" || calls.Load() != 3 {
		t.Errorf("app=%q calls=%d, want ok after 3 attempts", resp.App, calls.Load())
	}
}

func TestClientDoesNotRetryCallerErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		httpError(w, http.StatusBadRequest, "bad log")
	}))
	defer srv.Close()

	if _, err := NewClient(srv.URL).Diagnose(testRecord()); err == nil {
		t.Fatal("400 response must surface as an error")
	}
	if calls.Load() != 1 {
		t.Errorf("client retried a 400: %d calls", calls.Load())
	}
}

func TestClientRetryHonorsContext(t *testing.T) {
	old := retryBase
	retryBase = 50 * time.Millisecond
	defer func() { retryBase = old }()

	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		httpError(w, http.StatusServiceUnavailable, "never ready")
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := NewClient(srv.URL).DiagnoseContext(ctx, testRecord())
	if err == nil {
		t.Fatal("want an error from an always-503 server")
	}
	// The context expires during the first backoff sleep: no third attempt,
	// no full 50+100ms backoff schedule.
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Errorf("client ignored the context for %v", elapsed)
	}
	if calls.Load() > 2 {
		t.Errorf("client kept retrying past its deadline: %d calls", calls.Load())
	}
}

// TestDeadlinedRequestDoesNotLeakGoroutines drives several deadlined
// requests and checks the goroutine count settles back to its baseline:
// cooperative cancellation must drain the SHAP worker pool, not abandon it.
func TestDeadlinedRequestDoesNotLeakGoroutines(t *testing.T) {
	s := NewServer(ensemble(t), fastOpts())
	s.RequestTimeout = time.Nanosecond
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	baseline := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		resp, err := srv.Client().Post(srv.URL+"/api/v1/diagnose", "text/plain", recordBody(t))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d got HTTP %d", i, resp.StatusCode)
		}
	}
	srv.Client().CloseIdleConnections()

	// Allow the pool and the HTTP keep-alive machinery a moment to wind down.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: baseline %d, now %d — cancelled diagnoses leaked workers",
		baseline, runtime.NumGoroutine())
}
