package webservice

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/hpc-repro/aiio/internal/admission"
	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/drift"
	"github.com/hpc-repro/aiio/internal/faults"
	"github.com/hpc-repro/aiio/internal/joblog"
)

// End-to-end tests of the self-healing lifecycle (DESIGN.md §14): drift
// trip → canary-gated auto-retrain → promotion, a poisoned retrain blocked
// at the gate, and a regressing promotion rolled back by the watch.

// lifecycleServer wires a server the way cmd/aiio-server does with the
// -drift-* flags on: joblog, model store, drift monitor, and a canary-gated
// incremental retrainer whose reference snapshot is persisted per
// generation.
func lifecycleServer(t *testing.T, cfg drift.Config, holdout, window int) (*Server, *joblog.Store, *core.Store) {
	t.Helper()
	jl, err := joblog.Open(t.TempDir(), joblog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(ensemble(t), fastOpts())
	s.JobLog = jl
	store := core.OpenStore(t.TempDir())
	s.Store = store
	s.Drift = drift.New(cfg)
	gate := drift.Gate(drift.GateConfig{}, func() *core.Ensemble { return s.ServingEnsemble() })
	s.Retrainer = func(ctx context.Context) (*core.Ensemble, uint64, error) {
		rep, err := core.RunIncremental(ctx, jl, store, core.IncrementalOptions{
			MiniBatch: 16,
			Window:    window,
			Holdout:   holdout,
			Gate:      gate,
			Reference: func(training []*darshan.Record, verdict *core.CanaryRecord) []byte {
				ref := drift.BuildReference(training)
				if verdict != nil {
					ref.BaselineRMSE = verdict.CandidateRMSE
				}
				data, _ := ref.Marshal()
				return data
			},
			Train: core.TrainOptions{Models: []string{core.NameLightGBM}, Fast: true, Seed: 1},
		})
		if err != nil {
			return nil, 0, err
		}
		ens, _, err := store.Load()
		if err != nil {
			return nil, 0, err
		}
		return ens, rep.Generation, nil
	}
	return s, jl, store
}

// waitRetrainIdle blocks until the background cycle finishes.
func waitRetrainIdle(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for !s.RetrainIdle() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !s.RetrainIdle() {
		t.Fatal("retraining did not finish in time")
	}
}

func getDrift(t *testing.T, srv *httptest.Server) *DriftResponse {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/api/v1/drift")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/api/v1/drift: HTTP %d", resp.StatusCode)
	}
	var body DriftResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return &body
}

// TestDriftTripRunsCanaryGatedRetrain is the lifecycle's happy path: the
// workload shifts, the monitor trips, the triggered retrain adapts, the
// canary admits it, and the promotion re-arms the monitor against the new
// generation's world — all visible as provenance.
func TestDriftTripRunsCanaryGatedRetrain(t *testing.T) {
	// A 100-job live window vs a 200-job reference carries ~0.2-0.3 PSI of
	// sampling noise on the noisiest counter; 0.5 separates the real 1000x
	// shift (PSI >> 1) from that noise.
	s, jl, _ := lifecycleServer(t, drift.Config{MinSamples: 100, Window: 400, PSIThreshold: 0.5}, 20, 256)
	s.RetrainThreshold = 0 // only drift may trigger
	s.Drift.SetReference(drift.BuildReference(genRecords(t, 200)))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	// Normal traffic: no trip, no trigger.
	resp, err := client.Ingest(genRecords(t, 100))
	if err != nil {
		t.Fatal(err)
	}
	if resp.DriftTripped || resp.RetrainTriggered {
		t.Fatalf("normal traffic tripped the monitor: %+v", resp)
	}

	// The workload shifts 1000x: the monitor must trip and trigger the
	// single-flight retrain.
	shifted := faults.ShiftDataset(genRecords(t, 100), 1000, 5_000_000)
	resp, err = client.Ingest(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.DriftTripped || !resp.DriftRetrainTriggered {
		t.Fatalf("1000x shift: %+v, want drift trip + trigger", resp)
	}
	waitRetrainIdle(t, s)
	rs := s.retrainState.Load()
	if rs == nil || rs.Err != "" {
		t.Fatalf("drift-triggered retrain failed: %+v", rs)
	}
	if rs.Generation == 0 {
		t.Fatal("no generation promoted")
	}
	if jl.Pending() != 0 {
		t.Fatalf("backlog not drained: %d", jl.Pending())
	}

	// The promotion's provenance: verdict on the drift endpoint, counters
	// that tripped, and a re-armed monitor watching the new world.
	dr := getDrift(t, srv)
	if dr.Lifecycle.DriftRetrains != 1 {
		t.Fatalf("drift_retrains = %d, want 1", dr.Lifecycle.DriftRetrains)
	}
	if dr.Lifecycle.LastTrippedBy != "input-distribution" || len(dr.Lifecycle.LastTrippedCounters) == 0 {
		t.Fatalf("trip provenance missing: %+v", dr.Lifecycle)
	}
	if dr.Lifecycle.ServingCanary == nil || !dr.Lifecycle.ServingCanary.Passed {
		t.Fatalf("serving canary verdict missing: %+v", dr.Lifecycle.ServingCanary)
	}
	if !dr.Status.Armed || dr.Status.ReferenceJobs == 0 {
		t.Fatalf("monitor not re-armed after promotion: %+v", dr.Status)
	}
	if dr.Status.WindowJobs != 0 {
		t.Fatalf("live window not reset after promotion: %d jobs", dr.Status.WindowJobs)
	}

	// Provenance flows into diagnoses: registry + canary-gate advisories.
	_, diag, _ := postDiagnose(t, srv, testRecord())
	var sources []string
	for _, a := range diag.Advisories {
		sources = append(sources, a.Source)
	}
	for _, want := range []string{"model-registry", "canary-gate"} {
		found := false
		for _, src := range sources {
			found = found || src == want
		}
		if !found {
			t.Fatalf("diagnosis advisories missing %q: %v", want, diag.Advisories)
		}
	}
}

// TestPoisonedRetrainBlockedByCanary: labels go bad (a broken perf probe,
// a corrupted pipeline), prediction error trips the monitor, and the
// retrain — fitted to the poison — must be refused by the gate. The old
// generation keeps serving and the rejected backlog is parked.
func TestPoisonedRetrainBlockedByCanary(t *testing.T) {
	// A tiny history window: the gated retrain will be dominated by the
	// poisoned backlog, the way a long-poisoned pipeline dominates any
	// bounded window eventually.
	s, jl, store := lifecycleServer(t, drift.Config{
		MinSamples: 10_000, // input-distribution detector effectively off
		MinErrors:  30,
		ErrorRatio: 1.5,
	}, 20, 16)
	s.RetrainThreshold = 0
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	// Incorporate clean history first (ungated bootstrap, as a fleet that
	// enabled -drift-* after running for a while would have).
	if _, err := client.Ingest(genRecords(t, 80)); err != nil {
		t.Fatal(err)
	}
	boot, err := core.RunIncremental(context.Background(), jl, store, core.IncrementalOptions{
		MiniBatch: 16, Window: 256,
		Train: core.TrainOptions{Models: []string{core.NameLightGBM}, Fast: true, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	bootEns, _, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AdoptGeneration(bootEns, s.storeReport(boot.Generation)); err != nil {
		t.Fatal(err)
	}
	_, _, v0 := s.snapshot()
	// Arm with the serving model's own error level as baseline.
	clean := genRecords(t, 80)
	ref := drift.BuildReference(clean)
	ref.BaselineRMSE = drift.EvalRMSE(bootEns, clean)
	if ref.BaselineRMSE <= 0 {
		t.Fatalf("degenerate baseline %v", ref.BaselineRMSE)
	}
	s.Drift.SetReference(ref)

	// Poison: same input distribution, garbage labels — deterministic
	// high-variance pseudo-random performance uncorrelated with the
	// counters. There is nothing learnable in these labels, so a candidate
	// fitted to them is worse than the incumbent on clean AND poisoned
	// held-out jobs alike.
	poisoned := genRecords(t, 140)[80:] // fresh JobIDs, in-distribution counters
	for i, rec := range poisoned {
		u := 4 * math.Mod(float64(i)*0.6180339887, 1) // even spread over [0,4) in the transformed domain
		rec.PerfMiBps = math.Pow(10, u) - 1 + 0.01
	}
	resp, err := client.Ingest(poisoned)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.DriftTripped || !resp.DriftRetrainTriggered {
		t.Fatalf("poisoned labels did not trip the error tracker: %+v", resp)
	}
	waitRetrainIdle(t, s)

	// The gate must have blocked: no promotion, version unchanged, verdict
	// recorded, backlog parked so the trigger cannot loop.
	rs := s.retrainState.Load()
	if rs == nil || !strings.Contains(rs.Err, "canary") {
		t.Fatalf("retrain state = %+v, want a canary block", rs)
	}
	if _, _, v1 := s.snapshot(); v1 != v0 {
		t.Fatalf("blocked candidate bumped the serving version: %d -> %d", v0, v1)
	}
	if rep := s.GenerationReport(); rep == nil || rep.Generation != boot.Generation {
		t.Fatalf("generation report %+v, want the incumbent %d", rep, boot.Generation)
	}
	if gens, _ := store.Generations(); len(gens) != 1 {
		t.Fatalf("blocked candidate left generations %v", gens)
	}
	if jl.Pending() != 0 {
		t.Fatalf("rejected backlog not parked: %d pending", jl.Pending())
	}
	dr := getDrift(t, srv)
	if dr.Lifecycle.CanaryBlocked != 1 || dr.Lifecycle.LastBlocked == nil {
		t.Fatalf("block not recorded: %+v", dr.Lifecycle)
	}
	if dr.Lifecycle.LastBlocked.Passed || dr.Lifecycle.LastBlocked.Reason == "" {
		t.Fatalf("losing verdict malformed: %+v", dr.Lifecycle.LastBlocked)
	}
	// Healthz mirrors the decision history.
	hr, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health struct {
		Drift struct {
			CanaryBlocked uint64 `json:"canary_blocked"`
			Tripped       bool   `json:"tripped"`
		} `json:"drift"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Drift.CanaryBlocked != 1 {
		t.Fatalf("healthz canary_blocked = %d, want 1", health.Drift.CanaryBlocked)
	}
}

// TestPostPromotionErrorSpikeRollsBack: a promotion that regresses serving
// error must be demoted automatically — durably (CURRENT flips back) and
// in memory (validated hot-swap) — with the decision on the wire.
func TestPostPromotionErrorSpikeRollsBack(t *testing.T) {
	jl, err := joblog.Open(t.TempDir(), joblog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	good := ensemble(t)
	s := NewServer(good, fastOpts())
	s.JobLog = jl
	store := core.OpenStore(t.TempDir())
	s.Store = store
	s.Drift = drift.New(drift.Config{MinSamples: 10_000, ErrorWindow: 64})
	s.RollbackRatio = 2
	s.RollbackWatch = 40
	s.RetrainThreshold = 0

	gen1, err := store.Save(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AdoptGeneration(good, s.storeReport(gen1)); err != nil {
		t.Fatal(err)
	}
	s.Drift.SetReference(drift.BuildReference(genRecords(t, 100)))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	// Pre-promotion: 30 labeled jobs under the good generation establish
	// the baseline error the watch will compare against.
	if _, err := client.Ingest(genRecords(t, 30)); err != nil {
		t.Fatal(err)
	}
	if rmse, n := s.Drift.RollingRMSE(); n < 20 || rmse <= 0 {
		t.Fatalf("baseline not established: rmse=%v n=%d", rmse, n)
	}

	// The "retrain" promotes a confidently wrong model: constant -5 in the
	// transformed domain, far from any real job's performance.
	bad := &core.Ensemble{Models: []core.Model{&faults.ConstantModel{Value: -5}}}
	s.Retrainer = func(ctx context.Context) (*core.Ensemble, uint64, error) {
		gen, err := store.SaveDetailed(bad, &core.GenerationExtra{
			Canary: &core.CanaryRecord{Passed: true, Reason: "waived in test"},
		})
		if err != nil {
			return nil, 0, err
		}
		return bad, gen, nil
	}
	if !s.TriggerRetrain() {
		t.Fatal("trigger refused")
	}
	waitRetrainIdle(t, s)
	gen2 := s.GenerationReport().Generation
	if gen2 == gen1 {
		t.Fatal("promotion did not adopt the new generation")
	}
	if dr := getDrift(t, srv); !dr.Lifecycle.WatchArmed {
		t.Fatalf("post-promotion watch not armed: %+v", dr.Lifecycle)
	}

	// Post-promotion labeled traffic: the bad generation's error spikes past
	// baseline×2 and the watch rolls back (asynchronously).
	for batch := 0; batch < 4; batch++ {
		recs := genRecords(t, 10)
		for _, rec := range recs {
			rec.JobID += int64(20_000_000 + batch*1000)
		}
		if _, err := client.Ingest(recs); err != nil {
			t.Fatal(err)
		}
		if s.lifecycleSnapshot().Rollbacks > 0 {
			break
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for s.lifecycleSnapshot().Rollbacks == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	lc := s.lifecycleSnapshot()
	if lc.Rollbacks != 1 {
		t.Fatalf("rollback did not fire: %+v", lc)
	}
	if lc.LastRollbackFrom != gen2 || lc.LastRollbackTo != gen1 {
		t.Fatalf("rolled back %d -> %d, want %d -> %d", lc.LastRollbackFrom, lc.LastRollbackTo, gen2, gen1)
	}
	if lc.LastRollbackReason == "" || lc.WatchArmed {
		t.Fatalf("rollback state malformed: %+v", lc)
	}

	// In memory: the good set serves again, stamped on responses.
	rep := s.GenerationReport()
	if rep.Generation != gen1 || !rep.FellBack {
		t.Fatalf("serving report after rollback: %+v", rep)
	}
	if got := len(s.ServingEnsemble().Models); got != len(good.Models) {
		t.Fatalf("serving %d models after rollback, want %d", got, len(good.Models))
	}
	// Durably: a restart (fresh store handle) loads the good generation.
	if _, lrep, err := core.OpenStore(store.Dir()).Load(); err != nil || lrep.Generation != gen1 {
		t.Fatalf("restart would serve generation %d (err %v), want %d", lrep.Generation, err, gen1)
	}
	// Provenance: the rollback advisory rides on diagnoses.
	_, diag, _ := postDiagnose(t, srv, testRecord())
	found := false
	for _, a := range diag.Advisories {
		found = found || a.Source == "rollback-watch"
	}
	if !found {
		t.Fatalf("no rollback-watch advisory: %+v", diag.Advisories)
	}
}

// TestAutoPromotionInvalidatesDiagnosisCache is the regression test for
// the lifecycle's stale-cache hazard: a generation promoted by the
// auto-retrainer must invalidate cached diagnoses exactly like a manual
// upload does — the next query reruns on the new models and the
// generation header flips.
func TestAutoPromotionInvalidatesDiagnosisCache(t *testing.T) {
	base := ensemble(t)
	s := NewServer(base, fastOpts())
	store := core.OpenStore(t.TempDir())
	s.Store = store
	gen1, err := store.Save(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AdoptGeneration(base, s.storeReport(gen1)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	rec := testRecord()

	// Warm the cache under generation 1.
	state, before, _ := postDiagnose(t, srv, rec)
	if state != "miss" {
		t.Fatalf("first diagnose: %q, want miss", state)
	}
	if state, _, _ := postDiagnose(t, srv, rec); state != "hit" {
		t.Fatalf("repeat diagnose: %q, want hit", state)
	}

	// Auto-retrain promotes a single-model generation.
	single := &core.Ensemble{Models: []core.Model{base.Model(core.NameLightGBM)}}
	s.Retrainer = func(ctx context.Context) (*core.Ensemble, uint64, error) {
		gen, err := store.Save(single)
		if err != nil {
			return nil, 0, err
		}
		return single, gen, nil
	}
	if !s.TriggerRetrain() {
		t.Fatal("trigger refused")
	}
	waitRetrainIdle(t, s)
	gen2 := s.GenerationReport().Generation
	if gen2 <= gen1 {
		t.Fatalf("no promotion: generation %d after %d", gen2, gen1)
	}

	// The cached answer must NOT survive the promotion.
	var buf strings.Builder
	if err := darshan.WriteLog(&buf, rec); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/api/v1/diagnose", "text/plain", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-AIIO-Cache"); got != "miss" {
		t.Fatalf("post-promotion diagnose served %q, want miss (stale cache)", got)
	}
	if got := resp.Header.Get("X-AIIO-Generation"); got != strconv.FormatUint(gen2, 10) {
		t.Fatalf("X-AIIO-Generation = %q, want %d", got, gen2)
	}
	var after DiagnosisResponse
	if err := json.NewDecoder(resp.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	if len(after.Models) != 1 || len(before.Models) != 2 {
		t.Fatalf("diagnosis not rerun on the promoted set: %d then %d models",
			len(before.Models), len(after.Models))
	}
}

// TestHealthzGoldenSchema pins the /healthz payload shape: every section
// an operator's dashboards and the CI drills read must stay present with
// the same JSON type. A key silently vanishing or changing type is exactly
// the failure this test exists to catch.
func TestHealthzGoldenSchema(t *testing.T) {
	s, jl := ingestServer(t)
	defer jl.Close()
	s.Drift = drift.New(drift.Config{})
	s.Breakers = admission.NewBreakerSet(admission.BreakerConfig{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	// One diagnosis so the cache section carries traffic.
	postDiagnose(t, srv, testRecord())

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}

	// The golden schema: section -> key -> JSON type ("number", "string",
	// "bool", "object"). Top-level "status" is checked separately.
	schema := map[string]map[string]string{
		"cache": {"hits": "number", "misses": "number", "size": "number"},
		"joblog": {
			"sealed_segments": "number", "bytes": "number", "records": "number",
			"quarantined": "number", "duplicate_frames": "number",
			"compactions": "number", "last_compaction_unix": "number",
			"pending_retrain": "number",
		},
		"retrain": {"busy": "bool"},
		"drift": {
			"armed": "bool", "tripped": "bool", "tripped_by": "string",
			"max_psi": "number", "threshold": "number", "drifted": "number",
			"window_jobs": "number", "reference_jobs": "number",
			"rolling_rmse": "number", "baseline_rmse": "number",
			"error_ratio": "number", "error_obs": "number",
			"drift_retrains": "number", "canary_blocked": "number",
			"rollbacks": "number", "watch_armed": "bool",
		},
	}
	jsonType := func(v any) string {
		switch v.(type) {
		case float64:
			return "number"
		case string:
			return "string"
		case bool:
			return "bool"
		case map[string]any:
			return "object"
		default:
			return fmt.Sprintf("%T", v)
		}
	}
	if st, ok := body["status"].(string); !ok || st != "ok" {
		t.Fatalf("healthz status = %v", body["status"])
	}
	if _, ok := body["breakers"].(map[string]any); !ok {
		t.Fatalf("healthz breakers section missing or wrong type: %T", body["breakers"])
	}
	for section, keys := range schema {
		sec, ok := body[section].(map[string]any)
		if !ok {
			t.Fatalf("healthz section %q missing or not an object: %T", section, body[section])
		}
		for key, want := range keys {
			v, ok := sec[key]
			if !ok {
				t.Errorf("healthz %s.%s disappeared", section, key)
				continue
			}
			if got := jsonType(v); got != want {
				t.Errorf("healthz %s.%s is %s, want %s", section, key, got, want)
			}
		}
	}
}
