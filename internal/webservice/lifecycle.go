package webservice

import (
	"fmt"
	"math"
	"net/http"
	"time"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/drift"
	"github.com/hpc-repro/aiio/internal/features"
)

// The self-healing model lifecycle (DESIGN.md §14). The drift monitor
// watches every ingested job; when a detector trips, the ingest path
// triggers the same single-flight retrain a backlog threshold does. The
// retrain is canary-gated inside core.RunIncremental (a candidate that
// cannot beat the serving ensemble on held-out jobs is never committed),
// and a promotion arms a post-promotion watch: if rolling prediction error
// spikes past the pre-promotion baseline, the server rolls back to the
// previous generation through the registry's CURRENT pointer and the same
// validated hot-swap path a promotion uses. Every decision leaves
// provenance — which counters drifted, which gate passed, what the watch
// saw — on /api/v1/drift, /healthz, and in diagnosis advisories.

// promotionWatch is armed after each auto-promotion: it compares rolling
// serving error against the pre-promotion baseline for the next budget
// labeled jobs and rolls back on a spike.
type promotionWatch struct {
	// fromGen is the freshly promoted generation under watch; prevGen is
	// the rollback target (what served before the promotion).
	fromGen uint64
	prevGen uint64
	// baseline is the pre-promotion error level; ratio is the spike
	// multiplier that triggers rollback.
	baseline float64
	ratio    float64
	// budget is how many labeled jobs the watch covers before the
	// promotion is judged safe; minObs is the smallest rolling sample a
	// verdict may rest on.
	budget int
	minObs int
}

// lifecycleStatus aggregates the lifecycle's decision history for
// /healthz, /api/v1/drift, and advisories. Guarded by Server.lifecycleMu.
type lifecycleStatus struct {
	// DriftRetrains counts retrains triggered by a drift trip (as opposed
	// to the backlog threshold).
	DriftRetrains uint64 `json:"drift_retrains"`
	// LastTrippedBy / LastTrippedCounters are the provenance of the most
	// recent drift trigger.
	LastTrippedBy       string               `json:"last_tripped_by,omitempty"`
	LastTrippedCounters []drift.CounterDrift `json:"last_tripped_counters,omitempty"`
	LastTrippedUnix     int64                `json:"last_tripped_unix,omitempty"`
	// ServingCanary is the gate verdict that admitted the serving
	// generation (nil when it was not auto-promoted).
	ServingCanary *core.CanaryRecord `json:"serving_canary,omitempty"`
	// CanaryBlocked counts candidates the gate refused; LastBlocked is the
	// most recent losing verdict.
	CanaryBlocked   uint64             `json:"canary_blocked"`
	LastBlocked     *core.CanaryRecord `json:"last_blocked,omitempty"`
	LastBlockedUnix int64              `json:"last_blocked_unix,omitempty"`
	// Rollbacks counts automatic demotions; the Last* fields describe the
	// most recent one.
	Rollbacks          uint64 `json:"rollbacks"`
	LastRollbackFrom   uint64 `json:"last_rollback_from,omitempty"`
	LastRollbackTo     uint64 `json:"last_rollback_to,omitempty"`
	LastRollbackUnix   int64  `json:"last_rollback_unix,omitempty"`
	LastRollbackReason string `json:"last_rollback_reason,omitempty"`
	// WatchArmed mirrors whether a post-promotion watch is live.
	WatchArmed bool `json:"watch_armed"`
}

// lifecycleSnapshot returns a copy of the decision history.
func (s *Server) lifecycleSnapshot() lifecycleStatus {
	s.lifecycleMu.Lock()
	defer s.lifecycleMu.Unlock()
	st := s.lifecycle
	st.WatchArmed = s.watch.Load() != nil
	return st
}

// observeIngest feeds one durably accepted record into the drift monitor:
// its counters into the distribution sketches and — every ingested job is
// labeled with its measured performance — its prediction error into the
// rolling tracker. It then gives the post-promotion watch a chance to act.
func (s *Server) observeIngest(ens *core.Ensemble, rec *darshan.Record) {
	if s.Drift == nil {
		return
	}
	s.Drift.Observe(rec)
	if pred, ok := safeMeanPredict(ens, rec); ok {
		s.Drift.ObserveError(pred, features.Transform(features.Sanitize(rec.PerfMiBps)))
	}
	s.checkWatch()
}

// safeMeanPredict is the Average Method prediction (transformed domain)
// with per-call recovery: a faulting model must cost one drift sample,
// never the ingest request.
func safeMeanPredict(ens *core.Ensemble, rec *darshan.Record) (pred float64, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			pred, ok = 0, false
		}
	}()
	if ens == nil || len(ens.Models) == 0 {
		return 0, false
	}
	x := features.TransformRecord(rec)
	sum := 0.0
	for _, m := range ens.Models {
		v := m.Predict(x)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, false
		}
		sum += v
	}
	return sum / float64(len(ens.Models)), true
}

// noteDriftTrigger records the provenance of a drift-triggered retrain.
func (s *Server) noteDriftTrigger(st *drift.Status) {
	s.lifecycleMu.Lock()
	defer s.lifecycleMu.Unlock()
	s.lifecycle.DriftRetrains++
	s.lifecycle.LastTrippedBy = st.TrippedBy
	s.lifecycle.LastTrippedCounters = st.Drifted
	s.lifecycle.LastTrippedUnix = time.Now().Unix()
}

// noteCanaryBlocked records a gate refusal (surfaced by TriggerRetrain).
func (s *Server) noteCanaryBlocked(v *core.CanaryRecord) {
	s.lifecycleMu.Lock()
	defer s.lifecycleMu.Unlock()
	s.lifecycle.CanaryBlocked++
	s.lifecycle.LastBlocked = v
	s.lifecycle.LastBlockedUnix = time.Now().Unix()
}

// afterPromotion runs once a retrained generation has been adopted into
// the serving path: re-arm the drift monitor against the new generation's
// persisted reference snapshot, reset the error ring so the watch judges
// only the new model, record the admitting verdict, and arm the
// post-promotion rollback watch against the pre-promotion baseline.
func (s *Server) afterPromotion(prevGen, gen uint64) {
	if s.Drift == nil {
		return
	}
	// The pre-promotion baseline: what serving error looked like under the
	// old generation, captured before the ring resets.
	prevRMSE, prevN := s.Drift.RollingRMSE()

	var verdict *core.CanaryRecord
	var ref *drift.Reference
	if s.Store != nil {
		if man, err := s.Store.Manifest(gen); err == nil {
			verdict = man.Canary
		}
		if data, err := s.Store.Reference(gen); err == nil && data != nil {
			ref, _ = drift.ParseReference(data)
		}
	}
	if ref != nil {
		s.Drift.SetReference(ref)
	}
	s.Drift.ResetErrors()

	s.lifecycleMu.Lock()
	s.lifecycle.ServingCanary = verdict
	s.lifecycleMu.Unlock()

	if s.RollbackRatio <= 0 || prevGen == 0 || prevGen == gen {
		return
	}
	// Baseline preference: measured pre-promotion serving error when the
	// ring held enough samples; else the candidate's own held-out RMSE;
	// else the reference's recorded baseline. No baseline, no watch.
	baseline := 0.0
	switch {
	case prevN >= 20 && prevRMSE > 0:
		baseline = prevRMSE
	case verdict != nil && verdict.CandidateRMSE > 0:
		baseline = verdict.CandidateRMSE
	case ref != nil && ref.BaselineRMSE > 0:
		baseline = ref.BaselineRMSE
	default:
		return
	}
	budget := s.RollbackWatch
	if budget <= 0 {
		budget = 200
	}
	minObs := budget / 8
	if minObs < 10 {
		minObs = 10
	}
	s.watch.Store(&promotionWatch{
		fromGen:  gen,
		prevGen:  prevGen,
		baseline: baseline,
		ratio:    s.RollbackRatio,
		budget:   budget,
		minObs:   minObs,
	})
}

// checkWatch evaluates the post-promotion watch against the rolling error.
// A spike past baseline×ratio disarms the watch and rolls back in the
// background (single consumer via CompareAndSwap — concurrent ingests
// race here); surviving the budget disarms it quietly.
func (s *Server) checkWatch() {
	w := s.watch.Load()
	if w == nil {
		return
	}
	rmse, n := s.Drift.RollingRMSE()
	if n < w.minObs {
		return
	}
	if rmse >= w.baseline*w.ratio {
		if s.watch.CompareAndSwap(w, nil) {
			go s.rollback(w, rmse, n)
		}
		return
	}
	if n >= w.budget {
		s.watch.CompareAndSwap(w, nil)
	}
}

// rollback demotes a regressing promotion: flip the registry's CURRENT
// back to the previous generation (so a restart loads the known-good set
// — the regressing generation's files stay on disk for the operator),
// hot-swap the previous models back in through the same validated adopt
// path a promotion uses, and re-arm the drift monitor against the restored
// generation's reference.
func (s *Server) rollback(w *promotionWatch, rmse float64, n int) {
	reason := fmt.Sprintf("rolling RMSE %.4f over %d labeled jobs is %.1fx the pre-promotion baseline %.4f",
		rmse, n, rmse/w.baseline, w.baseline)
	if s.Store == nil {
		return
	}
	ens, man, err := s.Store.LoadGeneration(w.prevGen)
	if err != nil {
		s.noteRollback(w, 0, reason+fmt.Sprintf(" (rollback FAILED: %v)", err))
		return
	}
	// Durable first: even if the process dies mid-rollback, the next boot
	// serves the good generation.
	if err := s.Store.SetCurrent(w.prevGen); err != nil {
		reason += fmt.Sprintf(" (CURRENT flip failed: %v)", err)
	}
	rep := &core.LoadReport{Generation: w.prevGen, Fingerprint: man.Fingerprint(), FellBack: true}
	if err := s.AdoptGeneration(ens, rep); err != nil {
		s.noteRollback(w, 0, reason+fmt.Sprintf(" (hot-swap FAILED: %v)", err))
		return
	}
	if s.Drift != nil {
		if data, err := s.Store.Reference(w.prevGen); err == nil && data != nil {
			if ref, perr := drift.ParseReference(data); perr == nil {
				s.Drift.SetReference(ref)
			}
		}
		s.Drift.ResetErrors()
	}
	s.noteRollback(w, w.prevGen, reason)
}

func (s *Server) noteRollback(w *promotionWatch, to uint64, reason string) {
	s.lifecycleMu.Lock()
	defer s.lifecycleMu.Unlock()
	s.lifecycle.Rollbacks++
	s.lifecycle.LastRollbackFrom = w.fromGen
	s.lifecycle.LastRollbackTo = to
	s.lifecycle.LastRollbackUnix = time.Now().Unix()
	s.lifecycle.LastRollbackReason = reason
	// The admitting verdict no longer describes what serves.
	s.lifecycle.ServingCanary = nil
}

// DriftResponse is the JSON body of GET /api/v1/drift.
type DriftResponse struct {
	// Status is the monitor's point-in-time report (detectors, PSI per
	// drifted counter, rolling error).
	Status *drift.Status `json:"status"`
	// Lifecycle is the decision history (triggers, verdicts, rollbacks).
	Lifecycle lifecycleStatus `json:"lifecycle"`
}

// handleDrift answers GET /api/v1/drift. 501 without a monitor: drift
// detection is opt-in (-drift-psi on the server binary).
func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.Drift == nil {
		httpError(w, http.StatusNotImplemented, "drift monitoring is not enabled")
		return
	}
	writeJSON(w, http.StatusOK, &DriftResponse{
		Status:    s.Drift.Snapshot(),
		Lifecycle: s.lifecycleSnapshot(),
	})
}

// AdvisoryJSON is one provenance claim attached to a diagnosis: what the
// lifecycle knows about the models that produced it, each claim with its
// source and the evidence behind it, so a reported bottleneck can be
// trusted (or discounted) in context.
type AdvisoryJSON struct {
	Claim      string `json:"claim"`
	Source     string `json:"source"`
	Confidence string `json:"confidence"`
}

// appendAdvisories attaches lifecycle provenance to a diagnosis response.
func (s *Server) appendAdvisories(resp *DiagnosisResponse) {
	if rep := s.genReport.Load(); rep != nil {
		fp := rep.Fingerprint
		if len(fp) > 12 {
			fp = fp[:12]
		}
		claim := fmt.Sprintf("diagnosis served by model generation %d", rep.Generation)
		if fp != "" {
			claim += fmt.Sprintf(" (fingerprint %s…)", fp)
		}
		resp.Advisories = append(resp.Advisories, AdvisoryJSON{
			Claim: claim, Source: "model-registry", Confidence: "exact",
		})
	}
	if s.Drift == nil {
		return
	}
	lc := s.lifecycleSnapshot()
	if v := lc.ServingCanary; v != nil && v.Passed {
		resp.Advisories = append(resp.Advisories, AdvisoryJSON{
			Claim:      fmt.Sprintf("serving generation admitted by canary gate: %s", v.Reason),
			Source:     "canary-gate",
			Confidence: fmt.Sprintf("measured on %d held-out jobs", v.HoldoutJobs),
		})
	}
	st := s.Drift.Snapshot()
	for i, cd := range st.Drifted {
		if i >= 3 {
			break
		}
		resp.Advisories = append(resp.Advisories, AdvisoryJSON{
			Claim: fmt.Sprintf("input distribution drift on %s: PSI %.2f over threshold %.2f — the training-time reference may no longer describe this workload",
				cd.Counter, cd.PSI, st.Threshold),
			Source:     "drift-monitor",
			Confidence: fmt.Sprintf("PSI over %d recent vs %d reference jobs", st.WindowJobs, st.ReferenceJobs),
		})
	}
	if st.BaselineRMSE > 0 && st.ErrorRatio >= 1.25 && st.ErrorObs >= 20 {
		resp.Advisories = append(resp.Advisories, AdvisoryJSON{
			Claim: fmt.Sprintf("rolling prediction error %.3f is %.1fx the serving baseline %.3f — predicted performance may be off",
				st.RollingRMSE, st.ErrorRatio, st.BaselineRMSE),
			Source:     "error-tracker",
			Confidence: fmt.Sprintf("%d recent labeled jobs", st.ErrorObs),
		})
	}
	if lc.Rollbacks > 0 && lc.LastRollbackTo != 0 {
		resp.Advisories = append(resp.Advisories, AdvisoryJSON{
			Claim: fmt.Sprintf("automatic rollback from generation %d to %d: %s",
				lc.LastRollbackFrom, lc.LastRollbackTo, lc.LastRollbackReason),
			Source:     "rollback-watch",
			Confidence: "measured",
		})
	}
}
