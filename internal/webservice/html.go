package webservice

import (
	"html/template"
	"net/http"
	"strings"

	"github.com/hpc-repro/aiio/internal/darshan"
)

// The HTML front end mirrors the paper's web service (Fig. 17): users paste
// or upload a Darshan log and get the diagnosis as a waterfall of counter
// contributions, negative bars (bottlenecks) highlighted.

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>AIIO — I/O Bottleneck Diagnosis</title>
<style>
 body { font-family: sans-serif; margin: 2em; max-width: 60em; }
 textarea { width: 100%; height: 16em; font-family: monospace; }
 .hint { color: #666; }
</style></head>
<body>
<h1>AIIO — job-level I/O bottleneck diagnosis</h1>
<p class="hint">Paste a Darshan text log (darshan-parser style: one
"COUNTER\tvalue" per line; see the POSIX counter names of the paper's
Table 4). The service runs every trained performance function, explains the
prediction with Kernel SHAP, and merges the results.</p>
<form method="POST" action="/diagnose">
<textarea name="log" placeholder="# exe: ior&#10;POSIX_WRITES&#9;262144&#10;..."></textarea>
<p><button type="submit">Diagnose</button></p>
</form>
</body></html>`))

var resultTmpl = template.Must(template.New("result").Parse(`<!DOCTYPE html>
<html><head><title>AIIO — Diagnosis</title>
<style>
 body { font-family: sans-serif; margin: 2em; max-width: 70em; }
 table { border-collapse: collapse; }
 td, th { padding: 0.2em 0.8em; text-align: left; }
 .bar { display: inline-block; height: 0.9em; }
 .neg { background: #c0392b; }
 .pos { background: #27ae60; }
 .num { font-family: monospace; }
 .bottleneck { color: #c0392b; font-weight: bold; }
 .warn { background: #fcf3cf; border: 1px solid #b7950b; padding: 0.5em 1em; }
</style></head>
<body>
<h1>Diagnosis: {{.App}}</h1>
{{if .Degraded}}<p class="warn">degraded diagnosis: model(s)
{{range $i, $m := .SkippedModels}}{{if $i}}, {{end}}{{$m}}{{end}} failed;
the merge covers only the surviving models.</p>{{end}}
<p>measured performance: <span class="num">{{printf "%.2f" .ActualMiBps}}</span> MiB/s
 &middot; closest model: {{.ClosestModel}}
 &middot; robust: {{.Robust}}</p>
<h2>Model predictions</h2>
<table><tr><th>Model</th><th>Predicted MiB/s</th><th>Weight</th><th></th></tr>
{{range .Models}}<tr><td>{{.Name}}</td>
<td class="num">{{printf "%.2f" .PredictedMiBps}}</td>
<td class="num">{{printf "%.3f" .Weight}}</td>
<td class="bottleneck">{{.Error}}</td></tr>{{end}}
</table>
<h2>Merged contributions (Average Method)</h2>
<table><tr><th>Counter</th><th>Impact</th><th></th><th>Value</th></tr>
{{range .Bars}}<tr>
 <td{{if .Neg}} class="bottleneck"{{end}}>{{.Counter}}</td>
 <td class="num">{{printf "%+.4f" .Contribution}}</td>
 <td><span class="bar {{if .Neg}}neg{{else}}pos{{end}}" style="width:{{.Width}}px"></span></td>
 <td class="num">{{printf "%g" .Value}}</td>
</tr>{{end}}
</table>
<p><a href="/">diagnose another log</a></p>
</body></html>`))

type htmlBar struct {
	Counter      string
	Contribution float64
	Value        float64
	Neg          bool
	Width        int
}

type htmlResult struct {
	*DiagnosisResponse
	Bars []htmlBar
}

// handleIndex serves the upload form.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = indexTmpl.Execute(w, nil)
}

// handleDiagnoseHTML accepts the form post and renders the waterfall.
func (s *Server) handleDiagnoseHTML(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Redirect(w, r, "/", http.StatusSeeOther)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody())
	if err := r.ParseForm(); err != nil {
		http.Error(w, "bad form", http.StatusBadRequest)
		return
	}
	rec, err := darshan.ParseLog(strings.NewReader(r.PostFormValue("log")))
	if err != nil {
		http.Error(w, "parse log: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Same lock-free snapshot discipline as the JSON endpoint: never hold
	// s.mu across the SHAP computation.
	ens, opts, _ := s.snapshot()
	diag, err := ens.DiagnoseContext(r.Context(), rec, opts)
	if err != nil {
		if r.Context().Err() != nil {
			http.Error(w, "diagnosis cancelled: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, "diagnose: "+err.Error(), http.StatusInternalServerError)
		return
	}
	resp := buildResponse(diag)
	res := htmlResult{DiagnosisResponse: resp}
	maxAbs := 1e-12
	for _, f := range resp.Factors {
		if a := abs(f.Contribution); a > maxAbs {
			maxAbs = a
		}
	}
	for i, f := range resp.Factors {
		if i >= 12 {
			break
		}
		res.Bars = append(res.Bars, htmlBar{
			Counter:      f.Counter,
			Contribution: f.Contribution,
			Value:        f.Value,
			Neg:          f.Contribution < 0,
			Width:        1 + int(abs(f.Contribution)/maxAbs*220),
		})
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = resultTmpl.Execute(w, res)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
