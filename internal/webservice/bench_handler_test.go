package webservice

import (
	"bytes"
	"net/http"
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
)

// Satellite benchmarks for the pooled response encoder: writeJSON alone,
// and the full cached single-job handler path (parse → cache hit → encode)
// that every hot repeat request takes. Run with:
//
//	go test ./internal/webservice/ -bench 'WriteJSON|DiagnoseHandler' -benchmem -run xxx

// nopResponseWriter discards the response so the benchmark measures the
// handler's own allocations, not a recorder's buffer growth.
type nopResponseWriter struct{ h http.Header }

func (w *nopResponseWriter) Header() http.Header         { return w.h }
func (w *nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nopResponseWriter) WriteHeader(int)             {}

func benchResponse() *DiagnosisResponse {
	resp := &DiagnosisResponse{
		App:          "ior",
		ActualMiBps:  123.456,
		ClosestModel: "lightgbm",
		Robust:       true,
	}
	for i := 0; i < 2; i++ {
		resp.Models = append(resp.Models, ModelResult{Name: "m", PredictedMiBps: 100, Weight: 0.5})
	}
	for i := 0; i < 12; i++ {
		resp.Factors = append(resp.Factors, FactorJSON{Counter: "POSIX_SEQ_WRITES", Contribution: -0.25, Value: 42})
	}
	resp.Bottlenecks = resp.Factors[:4]
	return resp
}

func BenchmarkWriteJSON(b *testing.B) {
	resp := benchResponse()
	w := &nopResponseWriter{h: make(http.Header, 4)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		writeJSON(w, http.StatusOK, resp)
	}
}

// BenchmarkDiagnoseHandlerCached is the full handler path on a warm cache:
// body parse, snapshot, LRU hit, response build, pooled JSON encode. This
// is the per-request overhead a replica pays at peak cache hit rate.
func BenchmarkDiagnoseHandlerCached(b *testing.B) {
	s := NewServer(ensemble(b), fastOpts())
	handler := s.Handler()
	var body bytes.Buffer
	if err := darshan.WriteLog(&body, testRecord()); err != nil {
		b.Fatal(err)
	}
	raw := body.Bytes()
	warm, _ := http.NewRequest(http.MethodPost, "/api/v1/diagnose", bytes.NewReader(raw))
	warm.Header.Set("Content-Type", "text/plain")
	w := &nopResponseWriter{h: make(http.Header, 8)}
	handler.ServeHTTP(w, warm) // fill the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, _ := http.NewRequest(http.MethodPost, "/api/v1/diagnose", bytes.NewReader(raw))
		req.Header.Set("Content-Type", "text/plain")
		clear(w.h)
		handler.ServeHTTP(w, req)
	}
}
