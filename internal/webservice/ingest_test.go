package webservice

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/hpc-repro/aiio/internal/admission"
	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/joblog"
	"github.com/hpc-repro/aiio/internal/logdb"
)

// ingestServer wires a Server with a joblog in a temp dir.
func ingestServer(t *testing.T) (*Server, *joblog.Store) {
	t.Helper()
	jl, err := joblog.Open(t.TempDir(), joblog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(ensemble(t), fastOpts())
	s.JobLog = jl
	return s, jl
}

// genRecords returns n deterministic synthetic jobs.
func genRecords(t *testing.T, n int) []*darshan.Record {
	t.Helper()
	out := make([]*darshan.Record, 0, n)
	logdb.GenerateStream(logdb.GenConfig{Jobs: n, Seed: 7}, func(rec *darshan.Record) bool {
		out = append(out, rec)
		return true
	})
	return out
}

func TestIngestRoundTripAndIdempotentRetry(t *testing.T) {
	s, jl := ingestServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	recs := genRecords(t, 20)
	resp, err := client.Ingest(recs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 20 || resp.Duplicates != 0 || resp.Quarantined != 0 {
		t.Fatalf("first ingest: %+v", resp)
	}
	if resp.Pending != 20 {
		t.Fatalf("pending = %d, want 20", resp.Pending)
	}
	// The client's retry after a lost ack: same batch again.
	resp2, err := client.Ingest(recs)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Accepted != 0 || resp2.Duplicates != 20 {
		t.Fatalf("retry ingest: %+v", resp2)
	}
	if st := jl.Stats(); st.Records != 20 {
		t.Fatalf("log holds %d records, want 20", st.Records)
	}
}

func TestIngestQuarantinesInvalidCounters(t *testing.T) {
	s, jl := ingestServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	recs := genRecords(t, 3)
	recs[1].Counters[4] = math.NaN()
	recs[2].Counters[0] = math.Inf(1)
	resp, err := client.Ingest(recs)
	if err != nil {
		t.Fatal(err)
	}
	// The lenient parser vets counters at the boundary, so the corrupt
	// records arrive as parse rejections; either path must keep them out
	// of the log and preserved in quarantine.
	if resp.Accepted != 1 || resp.Quarantined+resp.ParseRejected != 2 {
		t.Fatalf("ingest with corrupt records: %+v", resp)
	}
	if st := jl.Stats(); st.Records != 1 || st.Quarantined != 2 {
		t.Fatalf("stats: %+v", st)
	}
	// A histogram-invariant violation parses clean (finite, non-negative
	// counters pass the parser's vet) and is caught by the handler's own
	// Validate gate instead.
	bad := genRecords(t, 4)[3]
	bad.Counters[darshan.PosixReads] = bad.Counters[darshan.PosixReads] + 17
	if err := bad.Validate(); err == nil {
		t.Fatal("expected an invariant violation after skewing POSIX_READS")
	}
	resp2, err := client.Ingest([]*darshan.Record{bad})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Quarantined != 1 && resp2.ParseRejected != 1 {
		t.Fatalf("invariant-violating record not quarantined: %+v", resp2)
	}
}

func TestIngestRejectsEmptyBody(t *testing.T) {
	s, _ := ingestServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+"/api/v1/jobs", "text/plain", strings.NewReader("\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("empty body: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestIngestDisabledWithoutJobLog(t *testing.T) {
	srv := httptest.NewServer(NewServer(ensemble(t), fastOpts()).Handler())
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/api/v1/jobs", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 501 {
		t.Fatalf("no joblog: HTTP %d, want 501", resp.StatusCode)
	}
}

func TestIngestHasOwnAdmissionLimit(t *testing.T) {
	s, _ := ingestServer(t)
	ctl := admission.NewController(admission.Config{MaxInflight: 4, QueueDepth: 4})
	// Ingest gets a dedicated zero-queue single-slot budget, so it sheds
	// under load the diagnosis endpoints would still absorb.
	ctl.SetConfig(IngestEndpoint, admission.Config{MaxInflight: 1, QueueDepth: -1})
	s.Admission = ctl
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Hold the single ingest slot.
	release, err := ctl.Limiter(IngestEndpoint).Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/api/v1/jobs", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("saturated ingest: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	release()

	// The slot is free again and the diagnose endpoint was never affected.
	out, err := NewClient(srv.URL).Ingest(genRecords(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 2 {
		t.Fatalf("after release: %+v", out)
	}
}

func TestIngestTriggersRetrainAndHotSwap(t *testing.T) {
	s, jl := ingestServer(t)
	store := core.OpenStore(t.TempDir())
	s.Store = store
	s.RetrainThreshold = 10
	s.Retrainer = func(ctx context.Context) (*core.Ensemble, uint64, error) {
		rep, err := core.RunIncremental(ctx, jl, store, core.IncrementalOptions{
			MiniBatch: 8,
			Window:    64,
			Train:     core.TrainOptions{Models: []string{core.NameLightGBM}, Fast: true, Seed: 1},
		})
		if err != nil {
			return nil, 0, err
		}
		ens, _, err := store.Load()
		if err != nil {
			return nil, 0, err
		}
		return ens, rep.Generation, nil
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	_, _, v0 := s.snapshot()
	resp, err := client.Ingest(genRecords(t, 30))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.RetrainTriggered {
		t.Fatalf("30 jobs over a threshold of 10 did not trigger retraining: %+v", resp)
	}
	deadline := time.Now().Add(60 * time.Second)
	for !s.RetrainIdle() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if !s.RetrainIdle() {
		t.Fatal("retraining did not finish in time")
	}
	rs := s.retrainState.Load()
	if rs == nil || rs.Err != "" {
		t.Fatalf("retrain state: %+v", rs)
	}
	if rs.Generation == 0 {
		t.Fatal("no generation committed")
	}
	// The backlog is incorporated and the serving set was hot-swapped.
	if jl.Pending() != 0 {
		t.Fatalf("pending after retrain = %d, want 0", jl.Pending())
	}
	ens2, _, v1 := s.snapshot()
	if v1 <= v0 {
		t.Fatalf("version did not bump: %d then %d", v0, v1)
	}
	if ens2.Model(core.NameLightGBM) == nil {
		t.Fatal("retrained ensemble lost its model")
	}
	// The swap is visible on /healthz.
	if rep := s.GenerationReport(); rep == nil || rep.Generation != rs.Generation {
		t.Fatalf("generation report %+v, want generation %d", rep, rs.Generation)
	}
	// A failed retrainer never swaps: single-flight allows a new cycle now.
	s.Retrainer = func(ctx context.Context) (*core.Ensemble, uint64, error) {
		return nil, 0, core.ErrNoNewJobs
	}
	if !s.TriggerRetrain() {
		t.Fatal("idle server refused a retrain trigger")
	}
	for !s.RetrainIdle() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if rs2 := s.retrainState.Load(); rs2 == nil || rs2.Err == "" {
		t.Fatalf("failed cycle not surfaced: %+v", rs2)
	}
	if _, _, v2 := s.snapshot(); v2 != v1 {
		t.Fatalf("failed retrain bumped the version: %d then %d", v1, v2)
	}
}

func TestHealthzReportsJoblog(t *testing.T) {
	s, jl := ingestServer(t)
	if _, err := jl.Append(genRecords(t, 1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := jl.Sync(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	joblogBody, ok := body["joblog"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing joblog section: %v", body)
	}
	for _, key := range []string{"sealed_segments", "bytes", "quarantined", "last_compaction_unix", "pending_retrain"} {
		if _, ok := joblogBody[key]; !ok {
			t.Fatalf("healthz joblog missing %q: %v", key, joblogBody)
		}
	}
	if joblogBody["pending_retrain"].(float64) != 1 {
		t.Fatalf("pending_retrain = %v, want 1", joblogBody["pending_retrain"])
	}
	if _, ok := body["retrain"].(map[string]any); !ok {
		t.Fatalf("healthz missing retrain section: %v", body)
	}
}
