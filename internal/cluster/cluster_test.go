package cluster

import (
	"math/rand"
	"testing"

	"github.com/hpc-repro/aiio/internal/linalg"
)

// blobs generates k Gaussian blobs of m points each in d dimensions, well
// separated, plus a few uniform noise points. Returns data and true labels.
func blobs(k, m, d int, seed int64, noise int) (*linalg.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	n := k*m + noise
	x := linalg.NewMatrix(n, d)
	truth := make([]int, n)
	for c := 0; c < k; c++ {
		center := make([]float64, d)
		for j := range center {
			center[j] = float64(c*20) + rng.Float64()
		}
		for i := 0; i < m; i++ {
			row := x.Row(c*m + i)
			for j := range row {
				row[j] = center[j] + rng.NormFloat64()*0.5
			}
			truth[c*m+i] = c
		}
	}
	for i := 0; i < noise; i++ {
		row := x.Row(k*m + i)
		for j := range row {
			row[j] = rng.Float64()*float64(k)*40 - 10
		}
		truth[k*m+i] = Noise
	}
	return x, truth
}

func TestHDBSCANFindsBlobs(t *testing.T) {
	x, truth := blobs(3, 40, 4, 1, 0)
	labels := HDBSCAN(x, HDBSCANConfig{MinClusterSize: 10})
	if got := NumClusters(labels); got != 3 {
		t.Fatalf("found %d clusters, want 3 (labels: %v)", got, labels[:20])
	}
	// Cluster purity: every found cluster maps to one true blob.
	for c := 0; c < 3; c++ {
		members := Members(labels, c)
		if len(members) < 30 {
			t.Errorf("cluster %d has only %d members", c, len(members))
		}
		first := truth[members[0]]
		for _, i := range members {
			if truth[i] != first {
				t.Errorf("cluster %d mixes true blobs %d and %d", c, first, truth[i])
			}
		}
	}
}

func TestHDBSCANNoiseDetection(t *testing.T) {
	x, _ := blobs(2, 50, 3, 2, 6)
	labels := HDBSCAN(x, HDBSCANConfig{MinClusterSize: 15})
	if got := NumClusters(labels); got != 2 {
		t.Fatalf("found %d clusters, want 2", got)
	}
	noise := 0
	for _, l := range labels {
		if l == Noise {
			noise++
		}
	}
	if noise == 0 {
		t.Error("no noise points detected despite uniform outliers")
	}
}

func TestHDBSCANPermutationInvariance(t *testing.T) {
	x, _ := blobs(3, 30, 3, 3, 5)
	labels := HDBSCAN(x, HDBSCANConfig{MinClusterSize: 10})

	perm := rand.New(rand.NewSource(9)).Perm(x.Rows)
	xp := linalg.NewMatrix(x.Rows, x.Cols)
	for i, j := range perm {
		copy(xp.Row(i), x.Row(j))
	}
	labelsP := HDBSCAN(xp, HDBSCANConfig{MinClusterSize: 10})

	// Same partition up to relabeling: check pairwise co-membership.
	same := func(l []int, a, b int) bool { return l[a] != Noise && l[a] == l[b] }
	for trial := 0; trial < 500; trial++ {
		a := trial % x.Rows
		b := (trial * 7) % x.Rows
		pa, pb := indexOf(perm, a), indexOf(perm, b)
		if same(labels, a, b) != same(labelsP, pa, pb) {
			t.Fatalf("co-membership of %d,%d changed under permutation", a, b)
		}
	}
}

func indexOf(perm []int, v int) int {
	for i, p := range perm {
		if p == v {
			return i
		}
	}
	return -1
}

func TestHDBSCANDegenerateInputs(t *testing.T) {
	empty := HDBSCAN(linalg.NewMatrix(0, 3), HDBSCANConfig{MinClusterSize: 5})
	if len(empty) != 0 {
		t.Error("empty input should give empty labels")
	}
	tiny, _ := blobs(1, 3, 2, 4, 0)
	labels := HDBSCAN(tiny, HDBSCANConfig{MinClusterSize: 5})
	for _, l := range labels {
		if l != Noise {
			t.Error("tiny input should be all noise")
		}
	}
	// Identical points: one cluster.
	same := linalg.NewMatrix(20, 2)
	for i := 0; i < 20; i++ {
		same.Set(i, 0, 1)
		same.Set(i, 1, 2)
	}
	labels = HDBSCAN(same, HDBSCANConfig{MinClusterSize: 5})
	if NumClusters(labels) > 1 {
		t.Errorf("identical points split into %d clusters", NumClusters(labels))
	}
}

func TestLargestCluster(t *testing.T) {
	labels := []int{0, 0, 1, 1, 1, Noise}
	l, err := LargestCluster(labels)
	if err != nil || l != 1 {
		t.Errorf("LargestCluster = %d, %v", l, err)
	}
	if _, err := LargestCluster([]int{Noise, Noise}); err == nil {
		t.Error("all-noise input should error")
	}
}

func TestKNNRegressor(t *testing.T) {
	x := linalg.FromRows([][]float64{{0}, {1}, {2}, {10}, {11}, {12}})
	y := []float64{1, 1, 1, 5, 5, 5}
	knn := NewKNNRegressor(3, x, y)
	if got := knn.Predict([]float64{0.5}); got != 1 {
		t.Errorf("Predict(0.5) = %v", got)
	}
	if got := knn.Predict([]float64{11}); got != 5 {
		t.Errorf("Predict(11) = %v", got)
	}
}

func TestKNNClassifier(t *testing.T) {
	x := linalg.FromRows([][]float64{{0}, {1}, {2}, {10}, {11}, {12}})
	labels := []int{0, 0, 0, 1, 1, 1}
	knn := NewKNNClassifier(3, x, labels)
	if got := knn.Classify([]float64{1}); got != 0 {
		t.Errorf("Classify(1) = %d", got)
	}
	if got := knn.Classify([]float64{10.5}); got != 1 {
		t.Errorf("Classify(10.5) = %d", got)
	}
	// Misclassification of boundary points is the documented weakness.
	_ = knn.Classify([]float64{6})
}

func TestKNNPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewKNNRegressor(3, linalg.NewMatrix(2, 1), []float64{1})
}

func BenchmarkHDBSCAN500(b *testing.B) {
	x, _ := blobs(4, 125, 8, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HDBSCAN(x, HDBSCANConfig{MinClusterSize: 20})
	}
}
