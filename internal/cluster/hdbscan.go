// Package cluster provides the clustering machinery the paper's related
// work (Gauge) is built on: HDBSCAN — hierarchical density-based clustering
// via mutual-reachability minimum spanning trees, condensed trees and
// stability-based cluster extraction — plus a KNN regressor. AIIO itself
// needs no clustering; these implementations power the Fig. 1 comparison
// showing why group-level diagnosis fails at the job level.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"github.com/hpc-repro/aiio/internal/linalg"
)

// HDBSCANConfig mirrors the common library parameters.
type HDBSCANConfig struct {
	// MinClusterSize is the smallest cluster the condensed tree keeps.
	MinClusterSize int
	// MinSamples is the k used for core distances; defaults to
	// MinClusterSize when zero.
	MinSamples int
}

// Noise is the label of points not assigned to any cluster.
const Noise = -1

// HDBSCAN clusters the rows of x and returns one label per row, with Noise
// (-1) for outliers. Labels are contiguous integers starting at 0, ordered
// by first occurrence.
func HDBSCAN(x *linalg.Matrix, cfg HDBSCANConfig) []int {
	n := x.Rows
	if cfg.MinClusterSize < 2 {
		cfg.MinClusterSize = 2
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = cfg.MinClusterSize
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	if n == 0 {
		return labels
	}
	if n <= cfg.MinClusterSize {
		return labels // everything is noise: no cluster can form
	}

	dist := pairwiseDistances(x)
	core := coreDistances(dist, n, cfg.MinSamples)
	edges := mstEdges(dist, core, n)
	sort.Slice(edges, func(i, j int) bool { return edges[i].w < edges[j].w })

	root := buildDendrogram(edges, n)
	condensed := condense(root, n, cfg.MinClusterSize)
	selected := selectClusters(condensed)

	// Assign each point to its selected ancestor cluster, if any.
	for _, c := range condensed.clusters {
		if !selected[c.id] {
			continue
		}
		for _, p := range c.points {
			labels[p] = c.id
		}
		// Points of selected descendants belong to the selected ancestor
		// only if the descendant itself is unselected; selection is
		// exclusive along paths, so walk descendants.
		var claim func(child *condCluster)
		claim = func(child *condCluster) {
			for _, cc := range child.children {
				for _, p := range cc.points {
					labels[p] = c.id
				}
				claim(cc)
			}
		}
		if !hasSelectedDescendant(c, selected) {
			claim(c)
		}
	}
	return compactLabels(labels)
}

func hasSelectedDescendant(c *condCluster, selected map[int]bool) bool {
	for _, ch := range c.children {
		if selected[ch.id] || hasSelectedDescendant(ch, selected) {
			return true
		}
	}
	return false
}

// compactLabels renumbers labels to 0..k-1 by first occurrence.
func compactLabels(labels []int) []int {
	next := 0
	m := map[int]int{}
	for i, l := range labels {
		if l == Noise {
			continue
		}
		if _, ok := m[l]; !ok {
			m[l] = next
			next++
		}
		labels[i] = m[l]
	}
	return labels
}

// pairwiseDistances computes the full Euclidean distance matrix (flat n*n).
func pairwiseDistances(x *linalg.Matrix) []float64 {
	n := x.Rows
	d := make([]float64, n*n)
	for i := 0; i < n; i++ {
		ri := x.Row(i)
		for j := i + 1; j < n; j++ {
			rj := x.Row(j)
			s := 0.0
			for k := range ri {
				diff := ri[k] - rj[k]
				s += diff * diff
			}
			v := math.Sqrt(s)
			d[i*n+j] = v
			d[j*n+i] = v
		}
	}
	return d
}

// coreDistances returns each point's distance to its MinSamples-th nearest
// neighbour.
func coreDistances(dist []float64, n, k int) []float64 {
	if k >= n {
		k = n - 1
	}
	core := make([]float64, n)
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		copy(row, dist[i*n:(i+1)*n])
		sort.Float64s(row)
		core[i] = row[k] // row[0] is the self-distance 0
	}
	return core
}

type edge struct {
	a, b int
	w    float64
}

// mstEdges builds the minimum spanning tree of the mutual-reachability
// graph with Prim's algorithm in O(n²).
func mstEdges(dist, core []float64, n int) []edge {
	inTree := make([]bool, n)
	best := make([]float64, n)
	bestFrom := make([]int, n)
	for i := range best {
		best[i] = math.Inf(1)
	}
	edges := make([]edge, 0, n-1)
	cur := 0
	inTree[0] = true
	for len(edges) < n-1 {
		// Relax edges out of cur.
		for j := 0; j < n; j++ {
			if inTree[j] {
				continue
			}
			w := dist[cur*n+j]
			if core[cur] > w {
				w = core[cur]
			}
			if core[j] > w {
				w = core[j]
			}
			if w < best[j] {
				best[j] = w
				bestFrom[j] = cur
			}
		}
		// Pick the closest non-tree vertex.
		next := -1
		bw := math.Inf(1)
		for j := 0; j < n; j++ {
			if !inTree[j] && best[j] < bw {
				bw = best[j]
				next = j
			}
		}
		edges = append(edges, edge{a: bestFrom[next], b: next, w: bw})
		inTree[next] = true
		cur = next
	}
	return edges
}

// dendroNode is a node of the single-linkage tree. Leaves have id < n.
type dendroNode struct {
	id          int
	dist        float64 // merge distance (0 for leaves)
	size        int
	left, right *dendroNode
}

// buildDendrogram merges sorted MST edges into a binary hierarchy.
func buildDendrogram(edges []edge, n int) *dendroNode {
	parent := make([]int, n)
	nodes := make(map[int]*dendroNode, 2*n)
	for i := 0; i < n; i++ {
		parent[i] = i
		nodes[i] = &dendroNode{id: i, size: 1}
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	roots := make([]int, n) // union-find root -> dendrogram node id
	for i := 0; i < n; i++ {
		roots[i] = i
	}
	nextID := n
	var top *dendroNode
	for _, e := range edges {
		ra, rb := find(e.a), find(e.b)
		na, nb := nodes[roots[ra]], nodes[roots[rb]]
		merged := &dendroNode{
			id: nextID, dist: e.w, size: na.size + nb.size,
			left: na, right: nb,
		}
		nodes[nextID] = merged
		nextID++
		parent[ra] = rb
		roots[find(rb)] = merged.id
		top = merged
	}
	return top
}

// condCluster is a node of the condensed tree.
type condCluster struct {
	id          int
	parent      *condCluster
	children    []*condCluster
	lambdaBirth float64
	// points that fell out of this cluster, with their fall-out lambda.
	points    []int
	lambdas   []float64
	stability float64
}

type condensedTree struct {
	root     *condCluster
	clusters []*condCluster
}

// condense walks the dendrogram and produces the condensed tree: splits
// where both sides have at least minClusterSize points are real splits;
// smaller sides fall out of the current cluster.
func condense(root *dendroNode, n, minClusterSize int) *condensedTree {
	t := &condensedTree{}
	nextID := 0
	newCluster := func(parent *condCluster, lambda float64) *condCluster {
		c := &condCluster{id: nextID, parent: parent, lambdaBirth: lambda}
		nextID++
		t.clusters = append(t.clusters, c)
		if parent != nil {
			parent.children = append(parent.children, c)
		}
		return c
	}
	t.root = newCluster(nil, 0)

	var dropAll func(node *dendroNode, c *condCluster, lambda float64)
	dropAll = func(node *dendroNode, c *condCluster, lambda float64) {
		if node.left == nil {
			c.points = append(c.points, node.id)
			c.lambdas = append(c.lambdas, lambda)
			return
		}
		// Points separate at the larger of lambda and the node's own split.
		l := lambdaOf(node.dist)
		if l < lambda {
			l = lambda
		}
		dropAll(node.left, c, l)
		dropAll(node.right, c, l)
	}

	var walk func(node *dendroNode, c *condCluster)
	walk = func(node *dendroNode, c *condCluster) {
		if node.left == nil {
			c.points = append(c.points, node.id)
			c.lambdas = append(c.lambdas, math.Inf(1))
			return
		}
		lambda := lambdaOf(node.dist)
		lBig := node.left.size >= minClusterSize
		rBig := node.right.size >= minClusterSize
		switch {
		case lBig && rBig:
			left := newCluster(c, lambda)
			right := newCluster(c, lambda)
			walk(node.left, left)
			walk(node.right, right)
		case lBig:
			dropAll(node.right, c, lambda)
			walk(node.left, c)
		case rBig:
			dropAll(node.left, c, lambda)
			walk(node.right, c)
		default:
			dropAll(node.left, c, lambda)
			dropAll(node.right, c, lambda)
		}
	}
	walk(root, t.root)

	// Stabilities: Σ min(λ_p, λ_maxChildBirth) − λ_birth, standard form:
	// use each point's fall-out lambda, capped at the cluster's death.
	for _, c := range t.clusters {
		death := math.Inf(1)
		if len(c.children) > 0 {
			death = c.children[0].lambdaBirth
		}
		s := 0.0
		for _, l := range c.lambdas {
			lp := l
			if lp > death {
				lp = death
			}
			if math.IsInf(lp, 1) {
				continue
			}
			s += lp - c.lambdaBirth
		}
		// Children contribute their mass up to their birth.
		for _, ch := range c.children {
			s += float64(clusterMass(ch)) * (ch.lambdaBirth - c.lambdaBirth)
		}
		c.stability = s
	}
	return t
}

func clusterMass(c *condCluster) int {
	n := len(c.points)
	for _, ch := range c.children {
		n += clusterMass(ch)
	}
	return n
}

func lambdaOf(dist float64) float64 {
	if dist <= 0 {
		return math.Inf(1)
	}
	return 1 / dist
}

// selectClusters runs the bottom-up stability selection (excess of mass).
// The root is never selected, matching allow_single_cluster=false.
func selectClusters(t *condensedTree) map[int]bool {
	selected := make(map[int]bool)
	var walk func(c *condCluster) float64
	walk = func(c *condCluster) float64 {
		if len(c.children) == 0 {
			if c != t.root {
				selected[c.id] = true
			}
			return c.stability
		}
		childSum := 0.0
		for _, ch := range c.children {
			childSum += walk(ch)
		}
		if c == t.root {
			return childSum
		}
		if c.stability >= childSum {
			// Keep this cluster, deselect all descendants.
			var clear func(cc *condCluster)
			clear = func(cc *condCluster) {
				delete(selected, cc.id)
				for _, g := range cc.children {
					clear(g)
				}
			}
			clear(c)
			selected[c.id] = true
			return c.stability
		}
		return childSum
	}
	walk(t.root)
	return selected
}

// NumClusters counts distinct non-noise labels.
func NumClusters(labels []int) int {
	seen := map[int]bool{}
	for _, l := range labels {
		if l != Noise {
			seen[l] = true
		}
	}
	return len(seen)
}

// Members returns the row indices with the given label.
func Members(labels []int, label int) []int {
	var out []int
	for i, l := range labels {
		if l == label {
			out = append(out, i)
		}
	}
	return out
}

// LargestCluster returns the label of the most populous cluster, or an
// error if everything is noise.
func LargestCluster(labels []int) (int, error) {
	counts := map[int]int{}
	for _, l := range labels {
		if l != Noise {
			counts[l]++
		}
	}
	best, bestN := 0, -1
	for l, n := range counts {
		if n > bestN || (n == bestN && l < best) {
			best, bestN = l, n
		}
	}
	if bestN < 0 {
		return 0, fmt.Errorf("cluster: all points are noise")
	}
	return best, nil
}
