package cluster

import (
	"fmt"
	"math"
	"sort"

	"github.com/hpc-repro/aiio/internal/linalg"
)

// KNN is a k-nearest-neighbour model over a reference matrix. It serves two
// roles from the related work (Section 2.2): as a regressor (per-group
// prediction) and as the classifier that assigns an unseen job to an
// existing cluster — the step whose high error rate the paper cites as a
// weakness of group-level methods.
type KNN struct {
	K      int
	X      *linalg.Matrix
	Y      []float64 // regression targets (optional)
	Labels []int     // classification labels (optional)
}

// NewKNNRegressor builds a KNN regressor.
func NewKNNRegressor(k int, x *linalg.Matrix, y []float64) *KNN {
	if x.Rows != len(y) {
		panic(fmt.Sprintf("cluster: knn %d rows vs %d targets", x.Rows, len(y)))
	}
	return &KNN{K: k, X: x, Y: y}
}

// NewKNNClassifier builds a KNN classifier over cluster labels.
func NewKNNClassifier(k int, x *linalg.Matrix, labels []int) *KNN {
	if x.Rows != len(labels) {
		panic(fmt.Sprintf("cluster: knn %d rows vs %d labels", x.Rows, len(labels)))
	}
	return &KNN{K: k, X: x, Labels: labels}
}

// neighbours returns the indices of the k nearest rows to q.
func (m *KNN) neighbours(q []float64) []int {
	type nd struct {
		i int
		d float64
	}
	ds := make([]nd, m.X.Rows)
	for i := 0; i < m.X.Rows; i++ {
		row := m.X.Row(i)
		s := 0.0
		for j := range row {
			diff := row[j] - q[j]
			s += diff * diff
		}
		ds[i] = nd{i, s}
	}
	sort.Slice(ds, func(a, b int) bool {
		if ds[a].d != ds[b].d {
			return ds[a].d < ds[b].d
		}
		return ds[a].i < ds[b].i
	})
	k := m.K
	if k > len(ds) {
		k = len(ds)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ds[i].i
	}
	return out
}

// Predict returns the mean target of the k nearest neighbours.
func (m *KNN) Predict(q []float64) float64 {
	if m.Y == nil {
		panic("cluster: KNN has no regression targets")
	}
	nb := m.neighbours(q)
	if len(nb) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, i := range nb {
		s += m.Y[i]
	}
	return s / float64(len(nb))
}

// Classify returns the majority label of the k nearest neighbours (ties
// broken by smaller label; Noise votes count).
func (m *KNN) Classify(q []float64) int {
	if m.Labels == nil {
		panic("cluster: KNN has no labels")
	}
	nb := m.neighbours(q)
	votes := map[int]int{}
	for _, i := range nb {
		votes[m.Labels[i]]++
	}
	best, bestN := Noise, -1
	for l, n := range votes {
		if n > bestN || (n == bestN && l < best) {
			best, bestN = l, n
		}
	}
	return best
}
