// Package apps models the I/O kernels of the three real applications in the
// paper's Section 4.2 — E2E (Chimera/Pixie3D checkpoint writer), OpenPMD
// (h5bench particle/mesh kernel), and DASSA (distributed acoustic sensing
// analysis) — as operation-stream generators for the simulated file system.
// Each application has an untuned configuration matching the paper's initial
// run and a tuned configuration matching the optimization the paper applied
// after reading AIIO's diagnosis.
package apps

import (
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/iosim"
	"github.com/hpc-repro/aiio/internal/mpiio"
)

// E2EConfig models write_3d_nc4.c of the E2E benchmark (Section 4.2.1): a
// 3-D array of (npx·ndx, npy·ndy, npz·ndz) doubles written by NProcs
// processes, each owning a cuboid sub-block. With a row-major file layout
// the sub-block decomposes into contiguous runs of npz·ndz/pz elements, so
// when the written region does not match the file layout the collective
// writer degenerates into huge numbers of small non-contiguous writes that
// cannot be merged (the paper's 3.28 MiB/s case). The netCDF/HDF5 collective
// path handles non-contiguous pieces with lock + read-modify-write rounds,
// modeled as synchronous flushes.
type E2EConfig struct {
	// NP is the points per block (npx, npy, npz).
	NP [3]int
	// ND is the number of blocks (ndx, ndy, ndz).
	ND [3]int
	// NProcs is the MPI task count; must have an integer cube-ish
	// decomposition via procGrid.
	NProcs int
	// ProcGrid decomposes the global array across processes (px, py, pz);
	// px·py·pz must equal NProcs.
	ProcGrid [3]int
	// ElemSize is the element size in bytes (8 for double).
	ElemSize int64
	// Contiguous marks the tuned layout of Fig. 13b: the data size matches
	// the writes of all processes so each rank's region is physically
	// contiguous and collective I/O merges everything into large transfers.
	Contiguous bool
	FS         iosim.FSConfig
}

// PaperE2E returns the untuned configuration the paper runs: np=(32,32,16),
// nd=(32,32,32) — a (1024, 1024, 512) array — with 64 processes.
func PaperE2E() E2EConfig {
	return E2EConfig{
		NP:       [3]int{32, 32, 16},
		ND:       [3]int{32, 32, 32},
		NProcs:   64,
		ProcGrid: [3]int{4, 4, 4},
		ElemSize: 8,
		FS:       iosim.DefaultFS(),
	}
}

// PaperE2ETuned returns the tuned configuration of Fig. 13b: data size
// (1024, 64, 32), matching the exact size of the writes of all processes so
// collective I/O merges the small writes into large ones.
func PaperE2ETuned() E2EConfig {
	cfg := PaperE2E()
	cfg.ND = [3]int{32, 2, 2} // (1024, 64, 32) global
	cfg.Contiguous = true
	return cfg
}

// Global returns the global array dimensions.
func (c E2EConfig) Global() [3]int {
	return [3]int{c.NP[0] * c.ND[0], c.NP[1] * c.ND[1], c.NP[2] * c.ND[2]}
}

// TotalBytes returns the bytes one run writes.
func (c E2EConfig) TotalBytes() int64 {
	g := c.Global()
	return int64(g[0]) * int64(g[1]) * int64(g[2]) * c.ElemSize
}

// Scale divides every block-count dimension by div (min 1) to produce a
// smaller run with the same access shape.
func (c E2EConfig) Scale(div int) E2EConfig {
	out := c
	for i := range out.ND {
		out.ND[i] = c.ND[i] / div
		if out.ND[i] < 1 {
			out.ND[i] = 1
		}
	}
	return out
}

// Job converts the configuration into a simulator job.
func (c E2EConfig) Job(jobID, seed int64) iosim.Job {
	return iosim.Job{
		Name:   "e2e-write3d",
		JobID:  jobID,
		NProcs: c.NProcs,
		FS:     c.FS,
		Seed:   seed,
		Gen:    c.generate,
	}
}

// generate drives one rank through the MPI-IO layer, the way the netCDF
// writer in write_3d_nc4.c sits on MPI-IO collectives.
func (c E2EConfig) generate(rank int, emit func(darshan.Op)) {
	g := c.Global()
	px, py, pz := c.ProcGrid[0], c.ProcGrid[1], c.ProcGrid[2]
	// Block dims owned by this rank.
	bx, by, bz := g[0]/px, g[1]/py, g[2]/pz
	// Rank position in the process grid (z fastest).
	rz := rank % pz
	ry := (rank / pz) % py
	rx := rank / (pz * py)
	x0, y0, z0 := rx*bx, ry*by, rz*bz

	f := mpiio.Open(rank, c.NProcs, 0, 1, true, emit)
	defer f.Close()

	rowBytes := int64(g[2]) * c.ElemSize // one full z-row in the file

	if c.Contiguous {
		// Tuned layout (Fig. 13b): the data size matches the writes, so
		// every rank's region is contiguous and write_at_all lowers to
		// large sequential transfers (aggregation ratio 1: each rank owns
		// its own file domain).
		regionBytes := int64(bx) * int64(by) * int64(bz) * c.ElemSize
		f.CollectiveWriteContig(0, regionBytes, 4*iosim.MiB)
		return
	}

	// Untuned layout: each (x, y) pencil of the rank's cuboid is a separate
	// contiguous run of bz elements, strided by the global z-extent and
	// interleaved with other ranks' pencils — a noncontiguous filetype the
	// collective cannot merge, so ROMIO data-sieves it (lock + RMW per
	// piece).
	runBytes := int64(bz) * c.ElemSize
	pieces := make([]mpiio.Piece, 0, bx*by)
	for x := x0; x < x0+bx; x++ {
		for y := y0; y < y0+by; y++ {
			off := (int64(x)*int64(g[1])+int64(y))*rowBytes + int64(z0)*c.ElemSize
			pieces = append(pieces, mpiio.Piece{Off: off, Size: runBytes})
		}
	}
	f.CollectiveWriteNoncontig(pieces)
}

// Run executes the configuration against the simulator.
func (c E2EConfig) Run(jobID, seed int64, params iosim.Params) (*darshan.Record, iosim.Result) {
	return iosim.Run(c.Job(jobID, seed), params)
}
