package apps

import (
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/iosim"
)

// DASSAConfig models the DASSA earthquake-search kernel with the
// cross-correlation (xcorr) method (Section 4.2.3). The input is a set of
// 1-minute DAS files plus template files of identified seismic waves. In the
// untuned run every worker opens each 1-minute file and reads its channel
// slice with strided accesses — so POSIX_OPENS grows with the file count and
// the strided slices defeat read-ahead. The tuned run merges the 1-minute
// files into one file, which each worker reads sequentially (the paper's
// 2.1x improvement).
type DASSAConfig struct {
	// NProcs is the worker count (the paper runs one node with threads).
	NProcs int
	// MinuteFiles is the number of 1-minute DAS files (the paper uses 21).
	MinuteFiles int
	// FileBytes is the size of one 1-minute file.
	FileBytes int64
	// TemplateBytes is the size of the template file (the paper uses one).
	TemplateBytes int64
	// ChannelChunks is the number of strided slice reads each worker issues
	// per 1-minute file in the untuned layout.
	ChannelChunks int
	// Merged marks the tuned layout: the 1-minute files are concatenated
	// into a single file read sequentially.
	Merged bool
	FS     iosim.FSConfig
}

// PaperDASSA returns the untuned configuration: 21 one-minute files and one
// template, matching the paper's single-node run.
func PaperDASSA() DASSAConfig {
	return DASSAConfig{
		NProcs:        16,
		MinuteFiles:   21,
		FileBytes:     16 * iosim.MiB,
		TemplateBytes: 1 * iosim.MiB,
		ChannelChunks: 32,
		FS:            iosim.DefaultFS(),
	}
}

// PaperDASSATuned returns the tuned configuration: the 21 files merged into
// one.
func PaperDASSATuned() DASSAConfig {
	cfg := PaperDASSA()
	cfg.Merged = true
	return cfg
}

// TotalBytes returns the bytes one run reads across all workers.
func (c DASSAConfig) TotalBytes() int64 {
	return int64(c.MinuteFiles)*c.FileBytes + int64(c.NProcs)*c.TemplateBytes
}

// Scale divides the worker count and file size by div.
func (c DASSAConfig) Scale(div int) DASSAConfig {
	out := c
	out.NProcs = c.NProcs / div
	if out.NProcs < 1 {
		out.NProcs = 1
	}
	out.FileBytes = c.FileBytes / int64(div)
	if out.FileBytes < 1*iosim.MiB {
		out.FileBytes = 1 * iosim.MiB
	}
	return out
}

// Job converts the configuration into a simulator job.
func (c DASSAConfig) Job(jobID, seed int64) iosim.Job {
	return iosim.Job{
		Name:   "dassa-xcorr",
		JobID:  jobID,
		NProcs: c.NProcs,
		FS:     c.FS,
		Seed:   seed,
		Gen:    c.generate,
	}
}

func (c DASSAConfig) generate(rank int, emit func(darshan.Op)) {
	// File IDs: 0..MinuteFiles-1 are the 1-minute files (or the merged file
	// when Merged), MinuteFiles is the template.
	templateFile := int32(c.MinuteFiles)

	if c.Merged {
		// Tuned: one merged file; each worker reads its contiguous
		// partition of the concatenated data sequentially.
		total := int64(c.MinuteFiles) * c.FileBytes
		part := total / int64(c.NProcs)
		start := int64(rank) * part
		if rank == c.NProcs-1 {
			part = total - start
		}
		emit(darshan.Op{Kind: darshan.OpOpen, File: 0})
		emit(darshan.Op{Kind: darshan.OpStat, File: 0})
		const chunk = 256 * iosim.KiB
		emit(darshan.Op{Kind: darshan.OpSeek, File: 0, Offset: start})
		for off := int64(0); off < part; off += chunk {
			n := int64(chunk)
			if off+n > part {
				n = part - off
			}
			emit(darshan.Op{Kind: darshan.OpRead, File: 0, Offset: start + off, Size: n})
		}
		emit(darshan.Op{Kind: darshan.OpClose, File: 0})
	} else {
		// Untuned: every worker opens every 1-minute file and reads its
		// channel slice as ChannelChunks strided pieces (channel-major data,
		// worker-partitioned channels).
		slice := c.FileBytes / int64(c.NProcs)
		chunk := slice / int64(c.ChannelChunks)
		if chunk < 1 {
			chunk = 1
		}
		stride := c.FileBytes / int64(c.ChannelChunks)
		for f := 0; f < c.MinuteFiles; f++ {
			file := int32(f)
			emit(darshan.Op{Kind: darshan.OpOpen, File: file})
			emit(darshan.Op{Kind: darshan.OpStat, File: file})
			for i := 0; i < c.ChannelChunks; i++ {
				off := int64(i)*stride + int64(rank)*chunk
				emit(darshan.Op{Kind: darshan.OpSeek, File: file, Offset: off})
				emit(darshan.Op{Kind: darshan.OpRead, File: file, Offset: off, Size: chunk})
			}
			emit(darshan.Op{Kind: darshan.OpClose, File: file})
		}
	}

	// Template file: read fully by every worker (it is small).
	emit(darshan.Op{Kind: darshan.OpOpen, File: templateFile})
	emit(darshan.Op{Kind: darshan.OpSeek, File: templateFile, Offset: 0})
	emit(darshan.Op{Kind: darshan.OpRead, File: templateFile, Offset: 0, Size: c.TemplateBytes})
	emit(darshan.Op{Kind: darshan.OpClose, File: templateFile})
}

// Run executes the configuration against the simulator.
func (c DASSAConfig) Run(jobID, seed int64, params iosim.Params) (*darshan.Record, iosim.Result) {
	return iosim.Run(c.Job(jobID, seed), params)
}
