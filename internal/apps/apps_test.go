package apps

import (
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/iosim"
)

func quietParams() iosim.Params {
	p := iosim.DefaultParams()
	p.NoiseSigma = 0
	return p
}

func TestE2EGeometry(t *testing.T) {
	cfg := PaperE2E()
	if g := cfg.Global(); g != [3]int{1024, 1024, 512} {
		t.Errorf("Global = %v, want (1024,1024,512)", g)
	}
	if got := cfg.TotalBytes(); got != int64(1024)*1024*512*8 {
		t.Errorf("TotalBytes = %d", got)
	}
	tuned := PaperE2ETuned()
	if g := tuned.Global(); g != [3]int{1024, 64, 32} {
		t.Errorf("tuned Global = %v, want (1024,64,32)", g)
	}
}

func TestE2ECoversGlobalArrayExactly(t *testing.T) {
	// Every byte of the global array must be written exactly once across
	// ranks in the untuned layout.
	cfg := PaperE2E().Scale(8) // (128,128,64)
	written := make(map[int64]int64)
	var total int64
	for rank := 0; rank < cfg.NProcs; rank++ {
		cfg.generate(rank, func(op darshan.Op) {
			if op.Kind == darshan.OpWrite {
				written[op.Offset] += op.Size
				total += op.Size
			}
		})
	}
	if total != cfg.TotalBytes() {
		t.Fatalf("wrote %d bytes, want %d", total, cfg.TotalBytes())
	}
	// Check no overlaps: offsets strictly partition the file.
	var covered int64
	for _, n := range written {
		covered += n
	}
	if covered != cfg.TotalBytes() {
		t.Errorf("covered %d bytes, want %d (overlap?)", covered, cfg.TotalBytes())
	}
}

func TestE2ESmallWriteSignature(t *testing.T) {
	cfg := PaperE2E().Scale(8)
	rec, _ := cfg.Run(1, 1, quietParams())
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	// Untuned E2E is dominated by small writes (pencil runs of bz*8 bytes).
	if rec.Counter(darshan.PosixSizeWrite100_1K) == 0 {
		t.Error("untuned E2E has no 100-1K writes")
	}
	tuned := PaperE2ETuned()
	trec, _ := tuned.Run(2, 1, quietParams())
	if trec.Counter(darshan.PosixSizeWrite100_1K) != 0 {
		t.Error("tuned E2E still issues 100-1K writes")
	}
	if trec.Counter(darshan.PosixSizeWrite100K_1M) == 0 {
		t.Error("tuned E2E issues no large writes")
	}
}

func TestE2ETuningSpeedup(t *testing.T) {
	// The paper reports 146x; require >= 30x at reduced scale.
	cfg := PaperE2E().Scale(4)
	tuned := PaperE2ETuned()
	_, res := cfg.Run(1, 1, quietParams())
	_, tres := tuned.Run(2, 1, quietParams())
	if f := tres.PerfMiBps / res.PerfMiBps; f < 30 {
		t.Errorf("E2E speedup = %.1fx, want >= 30x (%.2f -> %.2f MiB/s)",
			f, res.PerfMiBps, tres.PerfMiBps)
	}
}

func TestOpenPMDSignatureAndSpeedup(t *testing.T) {
	cfg := PaperOpenPMD().Scale(8) // 128 ranks
	tuned := PaperOpenPMDTuned().Scale(8)
	rec, res := cfg.Run(1, 1, quietParams())
	trec, tres := tuned.Run(2, 1, quietParams())
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := trec.Validate(); err != nil {
		t.Fatal(err)
	}
	if rec.Counter(darshan.PosixSizeWrite100_1K) == 0 {
		t.Error("independent OpenPMD has no small attribute writes")
	}
	if trec.Counter(darshan.PosixSizeWrite100_1K) != 0 {
		t.Error("collective OpenPMD still has small writes")
	}
	if got := trec.Counter(darshan.LustreStripeSize); got != 4*iosim.MiB {
		t.Errorf("tuned stripe size = %v", got)
	}
	f := tres.PerfMiBps / res.PerfMiBps
	if f < 1.3 || f > 4 {
		t.Errorf("OpenPMD speedup = %.2fx, want in [1.3, 4] (paper: 1.82x)", f)
	}
}

func TestOpenPMDCollectiveWritesSameBytes(t *testing.T) {
	cfg := PaperOpenPMD().Scale(16)
	tuned := PaperOpenPMDTuned().Scale(16)
	count := func(c OpenPMDConfig) int64 {
		var total int64
		for rank := 0; rank < c.NProcs; rank++ {
			c.generate(rank, func(op darshan.Op) {
				if op.Kind == darshan.OpWrite {
					total += op.Size
				}
			}, nil)
		}
		return total
	}
	a, b := count(cfg), count(tuned)
	if a != b {
		t.Errorf("independent writes %d bytes, collective %d", a, b)
	}
	if a != cfg.TotalBytes() {
		t.Errorf("generated %d bytes, TotalBytes says %d", a, cfg.TotalBytes())
	}
}

func TestDASSASignatureAndSpeedup(t *testing.T) {
	cfg := PaperDASSA()
	tuned := PaperDASSATuned()
	rec, res := cfg.Run(1, 1, quietParams())
	trec, tres := tuned.Run(2, 1, quietParams())
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	// 21 minute-files + 1 template per worker.
	if got := rec.Counter(darshan.PosixOpens); got != float64(cfg.NProcs*(cfg.MinuteFiles+1)) {
		t.Errorf("POSIX_OPENS = %v, want %d", got, cfg.NProcs*(cfg.MinuteFiles+1))
	}
	// Merged: one data file + template per worker.
	if got := trec.Counter(darshan.PosixOpens); got != float64(tuned.NProcs*2) {
		t.Errorf("tuned POSIX_OPENS = %v, want %d", got, tuned.NProcs*2)
	}
	f := tres.PerfMiBps / res.PerfMiBps
	if f < 1.4 || f > 6 {
		t.Errorf("DASSA speedup = %.2fx, want in [1.4, 6] (paper: 2.1x)", f)
	}
	if rec.Counter(darshan.PosixWrites) != 0 || trec.Counter(darshan.PosixWrites) != 0 {
		t.Error("DASSA is read-only; write counters must be zero")
	}
}

func TestDASSAScaleClamps(t *testing.T) {
	tiny := PaperDASSA().Scale(1000)
	if tiny.NProcs != 1 {
		t.Errorf("NProcs = %d", tiny.NProcs)
	}
	if tiny.FileBytes != 1*iosim.MiB {
		t.Errorf("FileBytes = %d", tiny.FileBytes)
	}
	rec, _ := tiny.Run(3, 1, quietParams())
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAppRecordsAreReadOrWriteOnlyAsExpected(t *testing.T) {
	// E2E and OpenPMD write-only; DASSA read-only. The robustness property
	// of the diagnosis depends on these signatures.
	p := quietParams()
	e, _ := PaperE2E().Scale(16).Run(1, 1, p)
	if e.Counter(darshan.PosixReads) != 0 {
		t.Error("E2E produced reads")
	}
	o, _ := PaperOpenPMD().Scale(64).Run(2, 1, p)
	if o.Counter(darshan.PosixReads) != 0 {
		t.Error("OpenPMD produced reads")
	}
	d, _ := PaperDASSA().Scale(4).Run(3, 1, p)
	if d.Counter(darshan.PosixBytesWritten) != 0 {
		t.Error("DASSA produced writes")
	}
}
