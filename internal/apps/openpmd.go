package apps

import (
	"sync"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/iosim"
	"github.com/hpc-repro/aiio/internal/mpiio"
)

// OpenPMDConfig models the h5bench OpenPMD I/O kernel (Section 4.2.2):
// mesh-based simulation output where every rank contributes blocks of field
// data plus many small attribute/metadata writes. In independent mode
// (OPENPMD_HDF5_INDEPENDENT, the paper's untuned run) each rank issues its
// own writes — the attribute writes land in the 100–1K size bucket the
// paper's diagnosis flags — against a 1 MiB stripe. The tuned run enables
// collective I/O (aggregators merge the small writes into large transfers)
// and raises the stripe size to 4 MiB.
type OpenPMDConfig struct {
	// NProcs is the MPI task count (the paper uses 1024).
	NProcs int
	// Steps is the number of output steps.
	Steps int
	// BlocksPerProc is how many mesh blocks each rank owns per step.
	BlocksPerProc int
	// BlockBytes is the size of one mesh block.
	BlockBytes int64
	// AttrWrites is the number of small attribute/metadata writes each rank
	// issues per step in independent mode.
	AttrWrites int
	// AttrBytes is the size of one attribute write (falls in 100–1K).
	AttrBytes int64
	// Collective enables two-phase collective I/O: every AggregatorRatio-th
	// rank writes merged 4 MiB transfers and rank 0 writes the merged
	// metadata.
	Collective bool
	// SyncPerStep issues MPI_File_sync after each output step (checkpoint
	// durability). The resulting fsyncs are invisible in the paper's 45
	// POSIX counters but visible as MPIIO_SYNCS — the information gap the
	// MPI-IO extension experiment measures.
	SyncPerStep bool
	// AggregatorRatio is the ranks-per-aggregator divisor in collective mode.
	AggregatorRatio int
	FS              iosim.FSConfig
}

// PaperOpenPMD returns the untuned configuration shaped like the paper's
// run (1024 ranks, dim=3, balanced, 1 step), scaled so the mesh block count
// stays tractable in simulation while preserving the access pattern.
func PaperOpenPMD() OpenPMDConfig {
	return OpenPMDConfig{
		NProcs:          1024,
		Steps:           1,
		BlocksPerProc:   4,
		BlockBytes:      512 * iosim.KiB,
		AttrWrites:      128,
		AttrBytes:       512,
		AggregatorRatio: 16,
		FS:              iosim.FSConfig{StripeSize: 1 * iosim.MiB, StripeWidth: 8},
	}
}

// PaperOpenPMDTuned returns the tuned run: collective I/O and 4 MiB stripes.
func PaperOpenPMDTuned() OpenPMDConfig {
	cfg := PaperOpenPMD()
	cfg.Collective = true
	cfg.FS.StripeSize = 4 * iosim.MiB
	return cfg
}

// Scale divides the process count by div, keeping per-rank work constant.
func (c OpenPMDConfig) Scale(div int) OpenPMDConfig {
	out := c
	out.NProcs = c.NProcs / div
	if out.NProcs < 1 {
		out.NProcs = 1
	}
	if out.AggregatorRatio > out.NProcs {
		out.AggregatorRatio = out.NProcs
	}
	return out
}

// TotalBytes returns the field plus attribute bytes of one run.
func (c OpenPMDConfig) TotalBytes() int64 {
	per := int64(c.BlocksPerProc)*c.BlockBytes + int64(c.AttrWrites)*c.AttrBytes
	return per * int64(c.NProcs) * int64(c.Steps)
}

// Job converts the configuration into a simulator job.
func (c OpenPMDConfig) Job(jobID, seed int64) iosim.Job {
	return iosim.Job{
		Name:   "openpmd-h5bench",
		JobID:  jobID,
		NProcs: c.NProcs,
		FS:     c.FS,
		Seed:   seed,
		Gen: func(rank int, emit func(darshan.Op)) {
			c.generate(rank, emit, nil)
		},
	}
}

// generate drives one rank through the MPI-IO middleware layer
// (internal/mpiio): independent mode issues MPI_File_write_at per block and
// per attribute; collective mode issues write_at_all calls that two-phase
// I/O lowers to merged aggregator writes. mpiioOut, when non-nil, receives
// the rank's MPIIO counters.
func (c OpenPMDConfig) generate(rank int, emit func(darshan.Op), mpiioOut func(*mpiio.Counters)) {
	ratio := c.AggregatorRatio
	if ratio < 1 {
		ratio = 1
	}
	f := mpiio.Open(rank, c.NProcs, 0, ratio, c.Collective, emit)
	defer func() {
		f.Close()
		if mpiioOut != nil {
			mpiioOut(f.Counters())
		}
	}()

	fieldPerStep := int64(c.NProcs) * int64(c.BlocksPerProc) * c.BlockBytes
	attrPerStep := int64(c.NProcs) * int64(c.AttrWrites) * c.AttrBytes

	for step := 0; step < c.Steps; step++ {
		stepBase := int64(step) * (fieldPerStep + attrPerStep)
		attrBase := stepBase + fieldPerStep

		if c.Collective {
			// Field data: contiguous-by-rank write_at_all; attributes:
			// gather-to-root write_at_all (cb_nodes = 1).
			perRank := int64(c.BlocksPerProc) * c.BlockBytes
			f.CollectiveWriteContig(stepBase, perRank, 4*iosim.MiB)
			f.CollectiveWriteGathered(attrBase, int64(c.AttrWrites)*c.AttrBytes, 4*iosim.MiB)
			continue
		}

		// Independent mode: each rank writes its own blocks; blocks of
		// different ranks interleave round-robin in the file, so no rank's
		// pieces are mergeable with its neighbours'.
		for b := 0; b < c.BlocksPerProc; b++ {
			off := stepBase + (int64(b)*int64(c.NProcs)+int64(rank))*c.BlockBytes
			f.WriteAt(off, c.BlockBytes)
		}
		// Attribute/metadata writes: small, interleaved, independent.
		for a := 0; a < c.AttrWrites; a++ {
			off := attrBase + (int64(a)*int64(c.NProcs)+int64(rank))*c.AttrBytes
			f.WriteAt(off, c.AttrBytes)
		}
		if c.SyncPerStep {
			f.Sync()
		}
	}
}

// Run executes the configuration against the simulator.
func (c OpenPMDConfig) Run(jobID, seed int64, params iosim.Params) (*darshan.Record, iosim.Result) {
	rec, res, _ := c.RunWithMPIIO(jobID, seed, params)
	return rec, res
}

// RunWithMPIIO also returns the merged MPI-IO layer counters — the
// upper-layer information the paper's Section 1 limitation discusses.
func (c OpenPMDConfig) RunWithMPIIO(jobID, seed int64, params iosim.Params) (*darshan.Record, iosim.Result, *mpiio.Counters) {
	var mu sync.Mutex
	var merged mpiio.Counters
	job := c.Job(jobID, seed)
	job.Gen = func(rank int, emit func(darshan.Op)) {
		c.generate(rank, emit, func(cnt *mpiio.Counters) {
			mu.Lock()
			merged.Merge(cnt)
			mu.Unlock()
		})
	}
	rec, res := iosim.Run(job, params)
	return rec, res, &merged
}
