package replica

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/hpc-repro/aiio/internal/core"
)

// TestChaosReplicaKillMidFlood is the multi-replica chaos drill: a router
// over three real replicas takes a concurrent flood while one replica is
// killed mid-flood (connections severed, listener closed — the in-process
// equivalent of kill -9). The invariants:
//
//   - no lost requests: every response is a 200 or an admission-layer shed
//     (429/503); a request in flight on the killed replica is replayed
//     against the ring successor, never surfaced as a transport error;
//   - no stale serves: every 200 carries the fleet's one good generation
//     fingerprint;
//   - convergence: the router marks the dead member down and keeps serving
//     on the survivors.
func TestChaosReplicaKillMidFlood(t *testing.T) {
	models := ensemble(t)
	dir := t.TempDir()
	var reps []*testReplica
	var urls []string
	for i := 0; i < 3; i++ {
		r := newReplica(t, filepath.Join(dir, fmt.Sprintf("rep%d", i)), models)
		reps = append(reps, r)
		urls = append(urls, r.URL())
	}
	wantFp := reps[0].WS.GenerationReport().Fingerprint
	if wantFp == "" {
		t.Fatal("fixture has no generation fingerprint")
	}

	rt := NewRouter(RouterConfig{Replicas: urls, FailThreshold: 1})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// A handful of distinct jobs so every replica owns some traffic.
	var bodies [][]byte
	for i := 0; i < 6; i++ {
		bodies = append(bodies, recordBody(t, testRecord(t, 16+i)))
	}

	const (
		clients        = 8
		perClient      = 12
		killAfterTotal = 16 // requests completed before the kill fires
	)
	var (
		done      atomic.Int64
		killOnce  sync.Once
		ok        atomic.Int64
		shed      atomic.Int64
		transport atomic.Int64
		stale     atomic.Int64
		other     atomic.Int64
	)
	victim := reps[0]
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if done.Add(1) == killAfterTotal {
					killOnce.Do(func() {
						victim.HTTP.CloseClientConnections()
						victim.HTTP.Close()
					})
				}
				body := bodies[(c+i)%len(bodies)]
				resp, err := http.Post(front.URL+"/api/v1/diagnose", "text/plain", bytes.NewReader(body))
				if err != nil {
					transport.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				switch {
				case resp.StatusCode == http.StatusOK:
					if resp.Header.Get("X-AIIO-Fingerprint") != wantFp {
						stale.Add(1)
					} else {
						ok.Add(1)
					}
				case resp.StatusCode == http.StatusTooManyRequests ||
					resp.StatusCode == http.StatusServiceUnavailable:
					shed.Add(1)
				default:
					other.Add(1)
				}
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()

	total := int64(clients * perClient)
	t.Logf("flood: %d ok, %d shed, %d transport errors, %d stale, %d other of %d",
		ok.Load(), shed.Load(), transport.Load(), stale.Load(), other.Load(), total)
	if stale.Load() != 0 {
		t.Errorf("%d stale-generation serves — scale-out traded freshness for throughput", stale.Load())
	}
	if transport.Load() != 0 {
		t.Errorf("%d client-visible transport errors — the router must absorb the kill by replaying", transport.Load())
	}
	if other.Load() != 0 {
		t.Errorf("%d responses outside {200, 429, 503}", other.Load())
	}
	if ok.Load() < total/2 {
		t.Errorf("only %d/%d requests served — shed beyond any reasonable budget", ok.Load(), total)
	}

	// Router convergence: the victim is marked down, the survivors serve.
	rt.Probe(context.Background())
	healthyLeft := 0
	for _, m := range rt.Health() {
		if m.URL == victim.URL() && m.Healthy {
			t.Error("killed replica still marked healthy after flood + probe")
		}
		if m.Healthy {
			healthyLeft++
		}
	}
	if healthyLeft != 2 {
		t.Errorf("%d healthy members after the kill, want 2", healthyLeft)
	}

	// Fleet convergence after the kill: commit new content on one survivor,
	// sync the other, and verify both serve the new fingerprint through the
	// router.
	subset := &core.Ensemble{Models: models.Models[:1]}
	if _, err := reps[1].Store.Save(subset); err != nil {
		t.Fatal(err)
	}
	ens, rep, err := reps[1].Store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := reps[1].WS.AdoptGeneration(ens, rep); err != nil {
		t.Fatal(err)
	}
	adopted, err := syncerFor(reps[2], reps[1].URL()).SyncOnce(context.Background())
	if err != nil || !adopted {
		t.Fatalf("survivor sync: adopted=%v err=%v", adopted, err)
	}
	for i := 0; i < 10; i++ {
		resp, err := http.Post(front.URL+"/api/v1/diagnose", "text/plain", bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			t.Fatalf("post-convergence request: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		fp := resp.Header.Get("X-AIIO-Fingerprint")
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && fp != rep.Fingerprint {
			t.Fatalf("request %d served fingerprint %.12s after the fleet converged on %.12s", i, fp, rep.Fingerprint)
		}
	}
}
