// Package replica is AIIO's scale-out serving layer: shared-nothing
// horizontal replication of the diagnosis service. The paper's web service
// (Section 3.4 / Fig. 17) is meant to sit behind an entire production
// fleet — the ROADMAP's "heavy traffic from millions of users" — and after
// the inference hot paths were flattened, the throughput ceiling became
// one process. This package removes it with three cooperating pieces:
//
//   - a consistent-hash ring (ring.go) that gives every job key a stable
//     owner replica, so the per-replica LRU diagnosis cache keeps hitting
//     as the fleet grows or shrinks;
//   - a thin routing front (router.go) that health-gates members on their
//     own /readyz, sheds to the ring successor when an owner answers 429
//     or drops mid-request, and replays the buffered body so a killed
//     replica costs a failover, not a lost request;
//   - a generation syncer (sync.go) that pulls newly committed model
//     registry generations from peers, SHA-256-verifies every byte against
//     the manifest, and hot-swaps only fully verified sets — an upload or
//     retrain on any replica converges the fleet without restarts, and a
//     torn transfer can never be activated.
package replica

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is how many ring points each member gets. 128 keeps
// the keyspace share per member within a few percent of fair for small
// fleets while the ring stays a few KB.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over a member list. Rebuild it
// (NewRing) when membership changes; lookups are lock-free.
//
// Each member contributes vnodes points at fnv64a(member + "#" + i); a key
// is owned by the first point clockwise from its hash. Removing a member
// moves only that member's buckets (to their ring successors) — every
// other key keeps its owner, which is exactly what keeps the per-replica
// diagnosis caches warm through membership churn.
type Ring struct {
	points  []ringPoint
	members []string
}

type ringPoint struct {
	hash   uint64
	member int32
}

// NewRing builds a ring over members (deduplicated, order-independent:
// the same set always produces the same ring) with vnodes points per
// member (DefaultVirtualNodes when <= 0). An empty member list yields an
// empty ring whose lookups return nothing.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		members: uniq,
		points:  make([]ringPoint, 0, len(uniq)*vnodes),
	}
	for mi, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hashString(fmt.Sprintf("%s#%d", m, v)),
				member: int32(mi),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical hashes (vanishingly rare) tie-break on member so the
		// ring layout stays deterministic across rebuilds.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the ring's member list (sorted, deduplicated).
func (r *Ring) Members() []string { return r.members }

// Len is the number of members on the ring.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.members[r.points[r.ownerPoint(key)].member]
}

// ownerPoint is the index of the first ring point clockwise from key.
func (r *Ring) ownerPoint(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0 // wrap: the lowest point owns the top of the keyspace
	}
	return i
}

// Sequence returns every member in ring order starting at key's owner: the
// failover order for that key. Element 0 is the owner; each later element
// is the next distinct member clockwise, the bucket's home if everything
// before it is down.
func (r *Ring) Sequence(key uint64) []string {
	if len(r.points) == 0 {
		return nil
	}
	seq := make([]string, 0, len(r.members))
	seen := make(map[int32]bool, len(r.members))
	for i, start := 0, r.ownerPoint(key); len(seq) < len(r.members) && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			seq = append(seq, r.members[p.member])
		}
	}
	return seq
}

// Key hashes a job's raw request bytes onto the ring keyspace. Routing on
// the body bytes keeps the router oblivious to the log format: the same
// serialized job always lands on the same replica (the cache-affinity
// property), at the cost of treating byte-different encodings of one job
// as different keys — which the canonical WriteLog encoding every client
// uses makes moot.
func Key(body []byte) uint64 {
	h := fnv.New64a()
	h.Write(body)
	return h.Sum64()
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
