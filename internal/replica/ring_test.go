package replica

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingDeterministicAcrossOrderings(t *testing.T) {
	a := NewRing([]string{"http://a", "http://b", "http://c"}, 64)
	b := NewRing([]string{"http://c", "http://a", "http://b", "http://a"}, 64)
	if !reflect.DeepEqual(a.Members(), b.Members()) {
		t.Fatalf("member lists differ: %v vs %v", a.Members(), b.Members())
	}
	for key := uint64(0); key < 10000; key += 37 {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %d: owner %q vs %q — ring not order-independent", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingDistributionRoughlyFair(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c", "http://d"}
	r := NewRing(members, DefaultVirtualNodes)
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[r.Owner(Key([]byte(fmt.Sprintf("job-%d", i))))]++
	}
	want := n / len(members)
	for _, m := range members {
		got := counts[m]
		// 128 vnodes keeps shares within a few percent of fair; allow ±40%
		// so the test asserts balance without being hash-brittle.
		if got < want*6/10 || got > want*14/10 {
			t.Errorf("member %s owns %d of %d keys (fair share %d)", m, got, n, want)
		}
	}
}

func TestRingRemovalMovesOnlyVictimKeys(t *testing.T) {
	full := NewRing([]string{"http://a", "http://b", "http://c", "http://d"}, DefaultVirtualNodes)
	reduced := NewRing([]string{"http://a", "http://b", "http://d"}, DefaultVirtualNodes)
	moved, victim := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		key := Key([]byte(fmt.Sprintf("job-%d", i)))
		before, after := full.Owner(key), reduced.Owner(key)
		if before == "http://c" {
			victim++
			continue
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed member changed owner (consistent hashing must move only the victim's buckets)", moved)
	}
	if victim == 0 {
		t.Fatal("removed member owned no keys; distribution test is broken")
	}
}

func TestRingSequenceIsFailoverOrder(t *testing.T) {
	r := NewRing([]string{"http://a", "http://b", "http://c"}, DefaultVirtualNodes)
	for i := 0; i < 1000; i++ {
		key := Key([]byte(fmt.Sprintf("job-%d", i)))
		seq := r.Sequence(key)
		if len(seq) != 3 {
			t.Fatalf("sequence covers %d of 3 members", len(seq))
		}
		if seq[0] != r.Owner(key) {
			t.Fatalf("sequence head %q is not the owner %q", seq[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("sequence repeats member %q", m)
			}
			seen[m] = true
		}
		// Failover consistency: dropping the owner re-homes the key to the
		// next member of the full ring's sequence.
		rest := []string{}
		for _, m := range r.Members() {
			if m != seq[0] {
				rest = append(rest, m)
			}
		}
		if got := NewRing(rest, DefaultVirtualNodes).Owner(key); got != seq[1] {
			t.Fatalf("after owner removal key maps to %q, sequence promised %q", got, seq[1])
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 8)
	if empty.Owner(42) != "" || empty.Sequence(42) != nil || empty.Len() != 0 {
		t.Error("empty ring must own nothing")
	}
	one := NewRing([]string{"http://solo"}, 8)
	if one.Owner(42) != "http://solo" || len(one.Sequence(42)) != 1 {
		t.Error("single-member ring must own everything")
	}
}
