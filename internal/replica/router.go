package replica

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Router defaults.
const (
	// DefaultFailThreshold is how many consecutive probe or transport
	// failures take a member out of the ring.
	DefaultFailThreshold = 3
	// DefaultProbeInterval paces the background /readyz sweep.
	DefaultProbeInterval = 2 * time.Second
	// DefaultProbeTimeout bounds one /readyz probe.
	DefaultProbeTimeout = 2 * time.Second
	// DefaultRouterMaxBody caps a buffered request body (the body must be
	// buffered so a failover can replay it against the next candidate).
	DefaultRouterMaxBody = 64 << 20
)

// RouterConfig wires a Router.
type RouterConfig struct {
	// Replicas are the member base URLs (e.g. "http://10.0.0.1:8080").
	Replicas []string
	// VirtualNodes per member on the ring (DefaultVirtualNodes when <= 0).
	VirtualNodes int
	// FailThreshold consecutive failures mark a member down
	// (DefaultFailThreshold when <= 0). One success marks it back up.
	FailThreshold int
	// ProbeInterval paces the background health sweep
	// (DefaultProbeInterval when <= 0).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (DefaultProbeTimeout when <= 0).
	ProbeTimeout time.Duration
	// MaxBody caps a buffered request body (DefaultRouterMaxBody when 0).
	MaxBody int64
	// HTTP performs the proxying and probing (http.DefaultClient when
	// nil).
	HTTP *http.Client
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = DefaultFailThreshold
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = DefaultProbeTimeout
	}
	if c.MaxBody == 0 {
		c.MaxBody = DefaultRouterMaxBody
	}
	if c.HTTP == nil {
		c.HTTP = http.DefaultClient
	}
	return c
}

// memberState is one replica's health bookkeeping.
type memberState struct {
	fails   int
	healthy bool
}

// Router is the scale-out front for a fleet of aiio-server replicas: a
// consistent-hash affinity proxy with health-gated membership and
// deadline-aware failover. It holds no model state of its own — replicas
// stay shared-nothing — so N routers can front the same fleet.
type Router struct {
	cfg RouterConfig

	mu    sync.Mutex
	state map[string]*memberState
	// ring covers the currently-healthy members; swapped atomically on
	// every membership transition so request routing never takes mu.
	ring atomic.Pointer[Ring]

	proxied   atomic.Uint64
	failovers atomic.Uint64
	errors    atomic.Uint64
}

// NewRouter builds a router over cfg.Replicas, all initially presumed
// healthy (the first probe sweep corrects optimism within one interval;
// presuming members down would refuse traffic at startup for no reason).
func NewRouter(cfg RouterConfig) *Router {
	cfg = cfg.withDefaults()
	rt := &Router{cfg: cfg, state: make(map[string]*memberState, len(cfg.Replicas))}
	for _, m := range NewRing(cfg.Replicas, 1).Members() { // reuse dedup/sort
		rt.state[m] = &memberState{healthy: true}
	}
	rt.rebuildLocked()
	return rt
}

// rebuildLocked swaps in a ring over the healthy members. Callers hold mu
// (NewRouter is single-threaded).
func (rt *Router) rebuildLocked() {
	var healthy []string
	for m, st := range rt.state {
		if st.healthy {
			healthy = append(healthy, m)
		}
	}
	rt.ring.Store(NewRing(healthy, rt.cfg.VirtualNodes))
}

// markFailure charges one transport-level failure (connection refused,
// reset, probe timeout) against a member; FailThreshold consecutive ones
// take it off the ring so its hash buckets re-home deterministically to
// their ring successors.
func (rt *Router) markFailure(member string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st, ok := rt.state[member]
	if !ok {
		return
	}
	st.fails++
	if st.healthy && st.fails >= rt.cfg.FailThreshold {
		st.healthy = false
		rt.rebuildLocked()
	}
}

// markSuccess resets a member's failure streak and restores it to the
// ring.
func (rt *Router) markSuccess(member string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st, ok := rt.state[member]
	if !ok {
		return
	}
	st.fails = 0
	if !st.healthy {
		st.healthy = true
		rt.rebuildLocked()
	}
}

// Probe runs one health sweep: every member's /readyz, concurrently. A
// 200 is healthy; anything else — a refused connection, a 503 from a
// draining or breaker-dark replica — counts one failure toward the
// threshold.
func (rt *Router) Probe(ctx context.Context) {
	rt.mu.Lock()
	members := make([]string, 0, len(rt.state))
	for m := range rt.state {
		members = append(members, m)
	}
	rt.mu.Unlock()
	sort.Strings(members)
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, m+"/readyz", nil)
			if err != nil {
				rt.markFailure(m)
				return
			}
			resp, err := rt.cfg.HTTP.Do(req)
			if err != nil {
				rt.markFailure(m)
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				rt.markSuccess(m)
			} else {
				rt.markFailure(m)
			}
		}(m)
	}
	wg.Wait()
}

// Run probes on the configured interval until ctx is done.
func (rt *Router) Run(ctx context.Context) {
	tick := time.NewTicker(rt.cfg.ProbeInterval)
	defer tick.Stop()
	rt.Probe(ctx)
	for {
		select {
		case <-tick.C:
			rt.Probe(ctx)
		case <-ctx.Done():
			return
		}
	}
}

// MemberHealth is one member's state in the router's /healthz body.
type MemberHealth struct {
	URL              string `json:"url"`
	Healthy          bool   `json:"healthy"`
	ConsecutiveFails int    `json:"consecutive_fails,omitempty"`
}

// Health snapshots every member's state, sorted by URL.
func (rt *Router) Health() []MemberHealth {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]MemberHealth, 0, len(rt.state))
	for m, st := range rt.state {
		out = append(out, MemberHealth{URL: m, Healthy: st.healthy, ConsecutiveFails: st.fails})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Stats reports lifetime proxied requests, failovers, and routing errors.
func (rt *Router) Stats() (proxied, failovers, errors uint64) {
	return rt.proxied.Load(), rt.failovers.Load(), rt.errors.Load()
}

// Handler returns the router's HTTP front. Job-carrying POSTs are routed
// by consistent hash of the body; everything else follows a fixed key so
// repeated calls land on the same (healthy) member.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", rt.handleHealth)
	mux.HandleFunc("/readyz", rt.handleReady)
	mux.HandleFunc("/", rt.handleProxy)
	return mux
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	proxied, failovers, errs := rt.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"members":   rt.Health(),
		"ring_size": rt.ring.Load().Len(),
		"proxied":   proxied,
		"failovers": failovers,
		"errors":    errs,
	})
}

func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	if rt.ring.Load().Len() == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready": false, "reasons": []string{"no healthy replicas"},
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// handleProxy buffers the body (failover must replay it), picks the
// failover sequence for the request's affinity key, and relays the first
// acceptable upstream answer.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBody))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, map[string]any{
			"error": fmt.Sprintf("read request body: %v", err),
		})
		return
	}
	// Affinity: job-carrying bodies hash by content, so one job's repeat
	// diagnoses hit the same replica's LRU cache. Body-less requests
	// (GETs, the HTML index) hash by path, which spreads endpoints across
	// the fleet but keeps each one stable.
	key := Key(body)
	if len(body) == 0 {
		key = hashString(r.URL.Path)
	}
	seq := rt.ring.Load().Sequence(key)
	if len(seq) == 0 {
		rt.errors.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": "no healthy replicas",
		})
		return
	}
	rt.proxied.Add(1)
	var lastResp *bufferedResponse
	var lastErr error
	for i, member := range seq {
		if ctxErr := r.Context().Err(); ctxErr != nil {
			// Deadline-aware: a dead request is not worth another hop.
			break
		}
		if i > 0 {
			rt.failovers.Add(1)
		}
		resp, err := rt.attempt(r, member, body)
		if err != nil {
			// Transport-level death: charge the member, try the
			// successor.
			rt.markFailure(member)
			lastErr = err
			continue
		}
		if resp.status == http.StatusTooManyRequests || resp.status >= 500 {
			// The owner shed (429), is draining, or is erroring: its
			// hash bucket re-routes to the ring successor for this
			// request. No health penalty for an HTTP-level answer — the
			// process is alive, and /readyz gating decides membership.
			lastResp = resp
			continue
		}
		rt.markSuccess(member)
		resp.headers.Set("X-AIIO-Replica", member)
		resp.headers.Set("X-AIIO-Router-Attempts", strconv.Itoa(i+1))
		resp.write(w)
		return
	}
	// Every candidate refused. Relay the last upstream answer (its 429
	// Retry-After or breaker headers are meaningful to the client) over a
	// synthesized 502 for pure transport failure.
	rt.errors.Add(1)
	if lastResp != nil {
		lastResp.headers.Set("X-AIIO-Router-Attempts", strconv.Itoa(len(seq)))
		lastResp.write(w)
		return
	}
	writeJSON(w, http.StatusBadGateway, map[string]any{
		"error": fmt.Sprintf("every replica candidate failed: %v", lastErr),
	})
}

// attempt forwards one buffered request to one member and buffers the
// answer (bodies here are JSON documents, not streams; buffering lets the
// failover loop discard refusals cleanly).
func (rt *Router) attempt(r *http.Request, member string, body []byte) (*bufferedResponse, error) {
	url := member + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	copyHeaders(req.Header, r.Header)
	resp, err := rt.cfg.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := &bufferedResponse{status: resp.StatusCode, headers: make(http.Header, len(resp.Header))}
	copyHeaders(out.headers, resp.Header)
	out.body, err = io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBody))
	if err != nil {
		return nil, fmt.Errorf("read upstream response: %w", err)
	}
	return out, nil
}

// bufferedResponse is one upstream answer held until the failover loop
// decides to relay it.
type bufferedResponse struct {
	status  int
	headers http.Header
	body    []byte
}

func (b *bufferedResponse) write(w http.ResponseWriter) {
	h := w.Header()
	for k, vs := range b.headers {
		h[k] = vs
	}
	h.Set("Content-Length", strconv.Itoa(len(b.body)))
	w.WriteHeader(b.status)
	w.Write(b.body)
}

// hopByHop are the connection-scoped headers a proxy must not relay.
var hopByHop = map[string]bool{
	"Connection": true, "Keep-Alive": true, "Proxy-Connection": true,
	"Te": true, "Trailer": true, "Transfer-Encoding": true, "Upgrade": true,
	"Content-Length": true, // recomputed for the buffered body
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		dst[k] = append([]string(nil), vs...)
	}
}
