package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"github.com/hpc-repro/aiio/internal/core"
)

// DefaultSyncInterval paces the background generation-replication sweep.
const DefaultSyncInterval = 5 * time.Second

// peerSummary mirrors webservice.GenerationSummary, decoded from a peer's
// GET /api/v1/generations. Declared locally so the replica package depends
// only on core (webservice imports nothing from here, and a cycle would be
// the alternative).
type peerSummary struct {
	Generation  uint64 `json:"generation"`
	Fingerprint string `json:"fingerprint"`
}

// Syncer pulls committed model-registry generations from peer replicas and
// hands fully verified sets to OnAdopt for hot-swap. Replication is
// pull-based and leaderless: every replica polls every peer, and the
// adoption rule below makes the fleet converge on the newest content no
// matter which replica an upload or retrain landed on.
//
// A generation is adopted from a peer iff
//
//	peerGen > localGen and the content fingerprints differ, or
//	peerGen == localGen and the peer's fingerprint sorts strictly higher
//
// The first clause is ordinary catch-up (a fingerprint match at a higher
// number means the peer renumbered identical content — nothing to fetch).
// The second breaks the split-brain tie when two replicas committed
// different content under the same number: both sides pick the
// lexicographically higher fingerprint, so they converge instead of
// ping-ponging. ImportGeneration commits the fetched set under
// max(localNext, peerGen), so numbers converge along with content.
type Syncer struct {
	// Store is the local model registry the fetched generations land in.
	Store *core.Store
	// Peers are the other replicas' base URLs (the local replica may be
	// included; it is skipped by the fingerprint match).
	Peers []string
	// Interval paces Run's sweep (DefaultSyncInterval when <= 0).
	Interval time.Duration
	// HTTP performs the fetches (http.DefaultClient when nil).
	HTTP *http.Client
	// Current reports the serving generation and fingerprint (the
	// webservice's GenerationReport, decoupled from its type). Required.
	Current func() (gen uint64, fingerprint string)
	// OnAdopt receives each imported-and-reloaded generation for hot-swap
	// (the webservice's AdoptGeneration seam). An error refuses the swap;
	// the import stays on disk but the old set keeps serving. Required.
	OnAdopt func(ens *core.Ensemble, gen uint64, fingerprint string) error
	// Logf, when set, narrates adoptions and fetch failures.
	Logf func(format string, args ...any)
}

func (sy *Syncer) client() *http.Client {
	if sy.HTTP != nil {
		return sy.HTTP
	}
	return http.DefaultClient
}

func (sy *Syncer) logf(format string, args ...any) {
	if sy.Logf != nil {
		sy.Logf(format, args...)
	}
}

// Run sweeps the peer list on the configured interval until ctx is done.
func (sy *Syncer) Run(ctx context.Context) {
	interval := sy.Interval
	if interval <= 0 {
		interval = DefaultSyncInterval
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if _, err := sy.SyncOnce(ctx); err != nil {
				sy.logf("replica sync: %v", err)
			}
		case <-ctx.Done():
			return
		}
	}
}

// SyncOnce polls every peer once, adopting at most one generation (the
// first peer that wins the adoption rule; the next sweep catches anything
// newer). It returns whether an adoption happened. Unreachable peers are
// skipped, not fatal: replication must keep working while part of the
// fleet is down.
func (sy *Syncer) SyncOnce(ctx context.Context) (adopted bool, err error) {
	if sy.Store == nil || sy.Current == nil || sy.OnAdopt == nil {
		return false, fmt.Errorf("replica: syncer missing Store, Current, or OnAdopt")
	}
	var firstErr error
	for _, peer := range sy.Peers {
		sum, perr := sy.fetchSummary(ctx, peer)
		if perr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("peer %s: %w", peer, perr)
			}
			continue
		}
		localGen, localFp := sy.Current()
		if !shouldAdopt(localGen, localFp, sum.Generation, sum.Fingerprint) {
			continue
		}
		if aerr := sy.adopt(ctx, peer, sum); aerr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("peer %s: adopt generation %d: %w", peer, sum.Generation, aerr)
			}
			continue
		}
		return true, nil
	}
	return false, firstErr
}

// shouldAdopt is the convergence rule (see the Syncer doc).
func shouldAdopt(localGen uint64, localFp string, peerGen uint64, peerFp string) bool {
	if peerFp == "" || peerFp == localFp {
		// No content identity (legacy checksumless peer) or identical
		// content: nothing to replicate.
		return false
	}
	if peerGen > localGen {
		return true
	}
	return peerGen == localGen && peerFp > localFp
}

// adopt fetches one peer generation — manifest, then every model file,
// each SHA-256-verified by ImportGeneration during the stream — commits it
// locally, re-loads the committed copy, and hands it to OnAdopt. Every
// failure path leaves the serving set untouched: a torn transfer dies in
// the import's temp directory, and a probe failure refuses the swap after
// the (valid) import.
func (sy *Syncer) adopt(ctx context.Context, peer string, sum peerSummary) error {
	man, err := sy.fetchManifest(ctx, peer, sum.Generation)
	if err != nil {
		return err
	}
	if fp := man.Fingerprint(); fp != sum.Fingerprint {
		// The peer committed a newer generation between the summary and the
		// manifest fetch; the next sweep sees the settled state.
		return fmt.Errorf("manifest fingerprint %.12s does not match advertised %.12s (peer mid-commit?)", fp, sum.Fingerprint)
	}
	gen, err := sy.Store.ImportGeneration(man, func(file string) (io.ReadCloser, error) {
		return sy.fetchFile(ctx, peer, sum.Generation, file)
	})
	if err != nil {
		return err
	}
	// Reload from the local committed copy — never from transfer buffers —
	// so what serves is exactly what was verified onto disk.
	ens, localMan, err := sy.Store.LoadGeneration(gen)
	if err != nil {
		return fmt.Errorf("reload imported generation %d: %w", gen, err)
	}
	fp := localMan.Fingerprint()
	if err := sy.OnAdopt(ens, gen, fp); err != nil {
		return err
	}
	sy.logf("replica sync: adopted generation %d (fingerprint %.12s) from %s", gen, fp, peer)
	return nil
}

func (sy *Syncer) fetchSummary(ctx context.Context, peer string) (peerSummary, error) {
	var sum peerSummary
	err := sy.getJSON(ctx, peer+"/api/v1/generations", &sum)
	return sum, err
}

func (sy *Syncer) fetchManifest(ctx context.Context, peer string, gen uint64) (*core.GenerationManifest, error) {
	var man core.GenerationManifest
	if err := sy.getJSON(ctx, fmt.Sprintf("%s/api/v1/generations/%d", peer, gen), &man); err != nil {
		return nil, err
	}
	return &man, nil
}

func (sy *Syncer) fetchFile(ctx context.Context, peer string, gen uint64, file string) (io.ReadCloser, error) {
	u := fmt.Sprintf("%s/api/v1/generations/%d/files/%s", peer, gen, url.PathEscape(file))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := sy.client().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("GET %s: %s", u, resp.Status)
	}
	return resp.Body, nil
}

func (sy *Syncer) getJSON(ctx context.Context, u string, into any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := sy.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET %s: %s", u, resp.Status)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(into); err != nil {
		return fmt.Errorf("GET %s: decode: %w", u, err)
	}
	return nil
}

// writeJSON is the router's response encoder (small bodies; no pooling
// needed at router request rates — the replicas do the heavy serving).
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}
