package replica

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/hpc-repro/aiio/internal/core"
)

// TestSyncConvergesFollower: a new generation committed on one replica is
// pulled, verified, and hot-swapped by a peer, and the served responses
// advertise the new fingerprint.
func TestSyncConvergesFollower(t *testing.T) {
	models := ensemble(t)
	dir := t.TempDir()
	leader := newReplica(t, filepath.Join(dir, "leader"), models)
	follower := newReplica(t, filepath.Join(dir, "follower"), models)

	// Commit different content on the leader: a one-model subset has a
	// different manifest fingerprint than the shared two-model seed.
	subset := &core.Ensemble{Models: models.Models[:1]}
	gen, err := leader.Store.Save(subset)
	if err != nil {
		t.Fatal(err)
	}
	ens, rep, err := leader.Store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.WS.AdoptGeneration(ens, rep); err != nil {
		t.Fatal(err)
	}
	leaderFp := rep.Fingerprint
	if leaderFp == "" {
		t.Fatal("leader generation has no fingerprint")
	}
	if fp := follower.WS.GenerationReport().Fingerprint; fp == leaderFp {
		t.Fatal("fixture broken: leader and follower already share content")
	}

	sy := syncerFor(follower, leader.URL())
	adopted, err := sy.SyncOnce(context.Background())
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	if !adopted {
		t.Fatal("follower did not adopt the leader's newer generation")
	}
	got := follower.WS.GenerationReport()
	if got.Fingerprint != leaderFp {
		t.Fatalf("follower fingerprint %.12s, leader %.12s — fleet did not converge", got.Fingerprint, leaderFp)
	}
	if got.Generation < gen {
		t.Fatalf("follower generation %d below leader's %d", got.Generation, gen)
	}

	// The swap must be visible on the serving path, not just the report.
	resp, err := http.Post(follower.URL()+"/api/v1/diagnose", "text/plain",
		strings.NewReader(string(recordBody(t, testRecord(t, 16)))))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diagnose after adoption: HTTP %d", resp.StatusCode)
	}
	if fp := resp.Header.Get("X-AIIO-Fingerprint"); fp != leaderFp {
		t.Errorf("serving fingerprint %.12s, adopted %.12s", fp, leaderFp)
	}

	// A second sweep is a no-op: content identical, nothing to fetch.
	adopted, err = sy.SyncOnce(context.Background())
	if err != nil {
		t.Fatalf("second sync: %v", err)
	}
	if adopted {
		t.Error("converged follower re-adopted an identical generation")
	}
}

// corruptingPeer proxies a real replica's generation endpoints but flips
// one byte in every model file: the torn-transfer adversary.
func corruptingPeer(t *testing.T, leader *testReplica) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.Contains(r.URL.Path, "/files/") {
			resp, err := http.Get(leader.URL() + r.URL.Path)
			if err != nil {
				w.WriteHeader(http.StatusBadGateway)
				return
			}
			defer resp.Body.Close()
			w.WriteHeader(resp.StatusCode)
			io.Copy(w, resp.Body)
			return
		}
		parts := strings.Split(r.URL.Path, "/")
		gen, _ := strconv.ParseUint(parts[4], 10, 64)
		file := parts[6]
		rc, err := leader.Store.OpenModelFile(gen, file)
		if err != nil {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		defer rc.Close()
		data, err := io.ReadAll(rc)
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		data[len(data)/2] ^= 0x40 // the torn byte
		w.Write(data)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestSyncRejectsTornTransfer: a corrupted file stream fails SHA-256
// verification during import; nothing is committed and the old generation
// keeps serving.
func TestSyncRejectsTornTransfer(t *testing.T) {
	models := ensemble(t)
	dir := t.TempDir()
	leader := newReplica(t, filepath.Join(dir, "leader"), models)
	follower := newReplica(t, filepath.Join(dir, "follower"), models)

	subset := &core.Ensemble{Models: models.Models[:1]}
	if _, err := leader.Store.Save(subset); err != nil {
		t.Fatal(err)
	}
	ens, rep, err := leader.Store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.WS.AdoptGeneration(ens, rep); err != nil {
		t.Fatal(err)
	}

	before := follower.WS.GenerationReport().Fingerprint
	gensBefore, _ := follower.Store.Generations()

	evil := corruptingPeer(t, leader)
	sy := syncerFor(follower, evil.URL)
	adopted, err := sy.SyncOnce(context.Background())
	if adopted {
		t.Fatal("follower adopted a torn transfer")
	}
	if err == nil || !strings.Contains(err.Error(), "torn or corrupt") {
		t.Fatalf("torn transfer error not surfaced: %v", err)
	}
	gensAfter, _ := follower.Store.Generations()
	if len(gensAfter) != len(gensBefore) {
		t.Fatalf("torn transfer left %d generations on disk (was %d) — partial import committed",
			len(gensAfter), len(gensBefore))
	}
	if fp := follower.WS.GenerationReport().Fingerprint; fp != before {
		t.Fatal("serving fingerprint changed after a rejected transfer")
	}
}

// TestSyncSkipsUnreachablePeers: replication keeps converging while part
// of the fleet is down.
func TestSyncSkipsUnreachablePeers(t *testing.T) {
	models := ensemble(t)
	dir := t.TempDir()
	leader := newReplica(t, filepath.Join(dir, "leader"), models)
	follower := newReplica(t, filepath.Join(dir, "follower"), models)

	subset := &core.Ensemble{Models: models.Models[:1]}
	if _, err := leader.Store.Save(subset); err != nil {
		t.Fatal(err)
	}
	ens, rep, err := leader.Store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.WS.AdoptGeneration(ens, rep); err != nil {
		t.Fatal(err)
	}

	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	sy := syncerFor(follower, deadURL, leader.URL())
	adopted, err := sy.SyncOnce(context.Background())
	if err != nil {
		t.Fatalf("sync with one dead peer: %v", err)
	}
	if !adopted {
		t.Fatal("live peer's generation not adopted while a dead peer was listed first")
	}
	if fp := follower.WS.GenerationReport().Fingerprint; fp != rep.Fingerprint {
		t.Fatal("follower did not converge on the live peer's content")
	}
}

func TestShouldAdoptRule(t *testing.T) {
	cases := []struct {
		name     string
		localGen uint64
		localFp  string
		peerGen  uint64
		peerFp   string
		want     bool
	}{
		{"newer content", 1, "aaa", 2, "bbb", true},
		{"newer number same content", 1, "aaa", 2, "aaa", false},
		{"same gen higher fp wins tie", 3, "aaa", 3, "bbb", true},
		{"same gen lower fp stays", 3, "bbb", 3, "aaa", false},
		{"older peer", 3, "aaa", 2, "bbb", false},
		{"checksumless peer", 1, "aaa", 5, "", false},
	}
	for _, c := range cases {
		if got := shouldAdopt(c.localGen, c.localFp, c.peerGen, c.peerFp); got != c.want {
			t.Errorf("%s: shouldAdopt=%v, want %v", c.name, got, c.want)
		}
	}
	// Split-brain symmetry: with equal generations and different content,
	// exactly one side adopts — the fleet converges instead of ping-ponging.
	a := shouldAdopt(3, "aaa", 3, "bbb")
	b := shouldAdopt(3, "bbb", 3, "aaa")
	if a == b {
		t.Errorf("tie-break not antisymmetric: both sides adopt=%v", a)
	}
}
