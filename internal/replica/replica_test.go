package replica

// Shared fixtures for the replica tests: one fast-trained ensemble (the
// expensive part, built once) and real webservice replicas with their own
// registry stores, so routing, replication, and chaos tests exercise the
// actual serving stack rather than stubs.

import (
	"bytes"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/iosim"
	"github.com/hpc-repro/aiio/internal/logdb"
	"github.com/hpc-repro/aiio/internal/webservice"
	"github.com/hpc-repro/aiio/internal/workload"
)

var (
	ensOnce sync.Once
	ensVal  *core.Ensemble
	ensErr  error
)

func ensemble(t testing.TB) *core.Ensemble {
	t.Helper()
	ensOnce.Do(func() {
		ds := logdb.Generate(logdb.GenConfig{Jobs: 500, Seed: 31})
		frame := features.Build(ds)
		opts := core.DefaultTrainOptions()
		opts.Fast = true
		opts.Models = []string{core.NameLightGBM, core.NameCatBoost} // keep tests quick
		ensVal, _, ensErr = core.TrainEnsemble(frame, opts)
	})
	if ensErr != nil {
		t.Fatalf("train: %v", ensErr)
	}
	return ensVal
}

func fastOpts() core.DiagnoseOptions {
	o := core.DefaultDiagnoseOptions()
	o.SHAP.MaxExact = 8
	o.SHAP.NSamples = 512
	return o
}

// testRecord builds a deterministic synthetic job; distinct scales give
// distinct jobs (distinct affinity keys).
func testRecord(t testing.TB, scale int) *darshan.Record {
	t.Helper()
	params := iosim.DefaultParams()
	params.NoiseSigma = 0
	cfg := workload.Patterns()[0].Config.Scale(scale, 4)
	rec, _ := cfg.Run("ior", 1, 5, params)
	return rec
}

func recordBody(t testing.TB, rec *darshan.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := darshan.WriteLog(&buf, rec); err != nil {
		t.Fatalf("encode record: %v", err)
	}
	return buf.Bytes()
}

// testReplica is one real aiio-server replica: a webservice over its own
// registry store, seeded with the shared ensemble as generation 1.
type testReplica struct {
	WS    *webservice.Server
	Store *core.Store
	HTTP  *httptest.Server
}

func (r *testReplica) URL() string { return r.HTTP.URL }

// newReplica commits models to a fresh store under dir and serves them.
func newReplica(t testing.TB, dir string, models *core.Ensemble) *testReplica {
	t.Helper()
	store := core.OpenStore(dir)
	if _, err := store.Save(models); err != nil {
		t.Fatalf("seed store: %v", err)
	}
	ens, rep, err := store.Load()
	if err != nil {
		t.Fatalf("load store: %v", err)
	}
	ws := webservice.NewServer(ens, fastOpts())
	ws.Store = store
	ws.SetGeneration(rep)
	srv := httptest.NewServer(ws.Handler())
	t.Cleanup(srv.Close)
	return &testReplica{WS: ws, Store: store, HTTP: srv}
}

// syncerFor wires a pull syncer for one replica against peers.
func syncerFor(r *testReplica, peers ...string) *Syncer {
	return &Syncer{
		Store: r.Store,
		Peers: peers,
		Current: func() (uint64, string) {
			if rep := r.WS.GenerationReport(); rep != nil {
				return rep.Generation, rep.Fingerprint
			}
			return 0, ""
		},
		OnAdopt: func(ens *core.Ensemble, gen uint64, fp string) error {
			return r.WS.AdoptGeneration(ens, &core.LoadReport{Generation: gen, Fingerprint: fp})
		},
	}
}
