package replica

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
)

// postBody posts one buffered job body through a router handler's test
// server and returns the response (body drained and closed).
func postBody(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/api/v1/diagnose", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post through router: %v", err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestRouterCacheAffinity is the satellite coverage: the same job key
// routed twice through the ring must land on the same replica and hit its
// LRU the second time, and removing that replica must re-route the key
// deterministically to its ring successor.
func TestRouterCacheAffinity(t *testing.T) {
	models := ensemble(t)
	dir := t.TempDir()
	var reps []*testReplica
	var urls []string
	for i := 0; i < 3; i++ {
		r := newReplica(t, filepath.Join(dir, fmt.Sprintf("rep%d", i)), models)
		reps = append(reps, r)
		urls = append(urls, r.URL())
	}
	rt := NewRouter(RouterConfig{Replicas: urls, FailThreshold: 1})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	body := recordBody(t, testRecord(t, 16))
	first := postBody(t, front.URL, body)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first diagnose: HTTP %d", first.StatusCode)
	}
	owner := first.Header.Get("X-AIIO-Replica")
	if first.Header.Get("X-AIIO-Cache") != "miss" {
		t.Errorf("first serve of a cold job: X-AIIO-Cache=%q, want miss", first.Header.Get("X-AIIO-Cache"))
	}

	second := postBody(t, front.URL, body)
	if got := second.Header.Get("X-AIIO-Replica"); got != owner {
		t.Fatalf("repeat of the same job routed to %s, first went to %s — affinity broken", got, owner)
	}
	if second.Header.Get("X-AIIO-Cache") != "hit" {
		t.Errorf("repeat on the owner replica: X-AIIO-Cache=%q, want hit (the affinity cache win)",
			second.Header.Get("X-AIIO-Cache"))
	}

	// The re-route after removal must be deterministic: the ring's failover
	// sequence names the successor in advance.
	seq := rt.ring.Load().Sequence(Key(body))
	if seq[0] != owner {
		t.Fatalf("ring owner %s but serving replica was %s", seq[0], owner)
	}
	successor := seq[1]
	for _, r := range reps {
		if r.URL() == owner {
			r.HTTP.CloseClientConnections()
			r.HTTP.Close()
		}
	}
	for i := 0; i < 3; i++ {
		resp := postBody(t, front.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-removal request %d: HTTP %d", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-AIIO-Replica"); got != successor {
			t.Fatalf("post-removal request %d landed on %s, ring successor is %s", i, got, successor)
		}
	}
	// FailThreshold 1: the first transport error already removed the dead
	// member, so later requests route straight to the successor.
	if rt.ring.Load().Len() != 2 {
		t.Errorf("ring still has %d members after owner died", rt.ring.Load().Len())
	}
}

// TestRouterShedFailover: a 429 from the owner re-routes the request to
// the ring successor without a health penalty.
func TestRouterShedFailover(t *testing.T) {
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"shed"}`)
	}))
	defer shedding.Close()
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ok.Close()

	rt := NewRouter(RouterConfig{Replicas: []string{shedding.URL, ok.URL}})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Whichever member owns the key, the answer must come from the healthy
	// one; when the shedder owned it, the router must record a failover.
	resp := postBody(t, front.URL, []byte("job-body"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d, want 200 via failover", resp.StatusCode)
	}
	if got := resp.Header.Get("X-AIIO-Replica"); got != ok.URL {
		t.Fatalf("served by %s, want the non-shedding member %s", got, ok.URL)
	}
	for _, m := range rt.Health() {
		if !m.Healthy {
			t.Errorf("member %s marked unhealthy after an HTTP-level 429 — shed must not be a health penalty", m.URL)
		}
	}
}

// TestRouterAllShedRelaysLastResponse: when every candidate sheds, the
// client gets the upstream 429 (with its Retry-After) rather than a
// synthesized error.
func TestRouterAllShedRelaysLastResponse(t *testing.T) {
	mk := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"shed"}`)
		}))
	}
	a, b := mk(), mk()
	defer a.Close()
	defer b.Close()
	rt := NewRouter(RouterConfig{Replicas: []string{a.URL, b.URL}})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp := postBody(t, front.URL, []byte("job"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want relayed 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Errorf("Retry-After %q not relayed", resp.Header.Get("Retry-After"))
	}
	if resp.Header.Get("X-AIIO-Router-Attempts") != "2" {
		t.Errorf("attempts header %q, want 2", resp.Header.Get("X-AIIO-Router-Attempts"))
	}
}

// TestRouterProbeGating: the /readyz probe takes a dead member off the
// ring and restores it on recovery.
func TestRouterProbeGating(t *testing.T) {
	var ready bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" && !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer flaky.Close()
	steady := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer steady.Close()

	rt := NewRouter(RouterConfig{Replicas: []string{flaky.URL, steady.URL}, FailThreshold: 2})
	ctx := context.Background()
	rt.Probe(ctx)
	if rt.ring.Load().Len() != 2 {
		t.Fatalf("one failed probe (threshold 2) already removed a member")
	}
	rt.Probe(ctx)
	if rt.ring.Load().Len() != 1 {
		t.Fatalf("two consecutive failed probes did not remove the member: ring has %d", rt.ring.Load().Len())
	}
	ready = true
	rt.Probe(ctx)
	if rt.ring.Load().Len() != 2 {
		t.Fatalf("recovered member not restored: ring has %d", rt.ring.Load().Len())
	}
}

// TestRouterNoHealthyMembers: a ringless router answers 503, not a panic.
func TestRouterNoHealthyMembers(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	url := dead.URL
	dead.Close()
	rt := NewRouter(RouterConfig{Replicas: []string{url}, FailThreshold: 1})
	rt.Probe(context.Background())
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp := postBody(t, front.URL, []byte("job"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d, want 503 with no healthy replicas", resp.StatusCode)
	}
	r2, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz HTTP %d, want 503", r2.StatusCode)
	}
}
