package replica

// The serving benchmark harness behind BENCH_serving.json. Regenerate with:
//
//	go test ./internal/replica/ -bench 'ServingReplicas|ColdFlood' -benchtime 5x -run xxx
//
// Methodology (single-core CI container, GOMAXPROCS=1):
//
//   - BenchmarkServingReplicas is latency-bound, not CPU-bound: each stub
//     replica injects a fixed 40 ms service time and enforces the default
//     admission ceiling (16 in-flight, then 429 + Retry-After), which is
//     how a fleet behaves when each replica's latency is dominated by its
//     own ensemble pass. One op = one successfully served request from a
//     64-client flood (shed requests are retried by the client loop, as
//     the real jittered client does), so ns/op is inverse aggregate
//     throughput and the 1 → 4 replica ratio is the scale-out factor.
//     Real per-replica compute cannot scale on one core, so this harness
//     isolates exactly what the router adds: fan-out across per-replica
//     concurrency ceilings and failover-free affinity routing.
//   - BenchmarkColdFlood{Uncoalesced,Coalesced} run the REAL diagnosis
//     stack (two-model ensemble, Kernel SHAP) with the LRU cache disabled:
//     one op = 64 concurrent clients all demanding the same cold job (the
//     dogpile). Uncoalesced, every admitted request pays a full ensemble
//     pass; coalesced (2 ms window), the duplicate-fusion path collapses
//     the flood to ~one pass per window. The ratio is pure compute saved,
//     which also holds on multi-core hosts.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/shap"
	"github.com/hpc-repro/aiio/internal/webservice"
)

// stubReplica models one replica serving at a fixed latency under the
// default admission ceiling.
func stubReplica(service time.Duration, maxInflight int) *httptest.Server {
	sem := make(chan struct{}, maxInflight)
	body := []byte(`{"ok":true}`)
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		select {
		case sem <- struct{}{}:
		default:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		defer func() { <-sem }()
		time.Sleep(service)
		w.Write(body)
	}))
}

func benchServing(b *testing.B, replicas int) {
	// 40 ms ≈ one real ensemble pass; it also keeps per-replica capacity
	// (16/40ms = 400 req/s) well under this single core's ~4k req/s of
	// proxy+client CPU, so the measurement stays latency-bound through 4
	// replicas instead of hitting the host's CPU ceiling.
	const (
		serviceTime = 40 * time.Millisecond
		maxInflight = 16
		clients     = 96
	)
	var urls []string
	for i := 0; i < replicas; i++ {
		srv := stubReplica(serviceTime, maxInflight)
		defer srv.Close()
		urls = append(urls, srv.URL)
	}
	rt := NewRouter(RouterConfig{Replicas: urls})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	transport := &http.Transport{MaxIdleConnsPerHost: clients}
	client := &http.Client{Transport: transport}
	defer transport.CloseIdleConnections()

	// Distinct job bodies spread the flood across the whole ring.
	var bodies [][]byte
	for i := 0; i < 256; i++ {
		bodies = append(bodies, []byte(fmt.Sprintf("job-body-%d", i)))
	}

	b.ResetTimer()
	b.SetParallelism(clients)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			body := bodies[i%len(bodies)]
			// One op = one served request; 429s are retried like the real
			// client would (without its sleep: the stub's Retry-After is a
			// fixed bench constant, and sleeping it would measure the hint,
			// not the fleet).
			for {
				resp, err := client.Post(front.URL+"/api/v1/diagnose", "text/plain", bytes.NewReader(body))
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
	})
}

func BenchmarkServingReplicas1(b *testing.B) { benchServing(b, 1) }
func BenchmarkServingReplicas3(b *testing.B) { benchServing(b, 3) }
func BenchmarkServingReplicas4(b *testing.B) { benchServing(b, 4) }

func benchColdFlood(b *testing.B, coalesce bool) {
	// Production budget with the Kernel SHAP estimator (what every
	// non-tree model — MLP, TabNet — pays in serving, and the paper's
	// model-agnostic attribution method). The exact-TreeSHAP pass is so
	// cheap after the hot-path flattening that a tree-only flood
	// bottlenecks on HTTP parsing (fusion still wins ~2x there); the
	// kernel pass is where coalescing's collapsed ensemble passes show
	// their real value.
	opts := core.DefaultDiagnoseOptions()
	opts.SHAPMode = shap.ModeKernel
	s := webservice.NewServer(ensemble(b), opts)
	s.CacheSize = -1 // every request is cold: the dogpile worst case
	if coalesce {
		s.CoalesceWindow = webservice.DefaultCoalesceWindow
		s.CoalesceMax = 64
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	const clients = 64
	body := recordBody(b, testRecord(b, 16))
	transport := &http.Transport{MaxIdleConnsPerHost: clients}
	client := &http.Client{Transport: transport}
	defer transport.CloseIdleConnections()

	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := client.Post(srv.URL+"/api/v1/diagnose", "text/plain", bytes.NewReader(body))
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Errorf("HTTP %d", resp.StatusCode)
				}
			}()
		}
		wg.Wait()
	}
}

func BenchmarkColdFloodUncoalesced(b *testing.B) { benchColdFlood(b, false) }
func BenchmarkColdFloodCoalesced(b *testing.B)   { benchColdFlood(b, true) }
