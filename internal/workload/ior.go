// Package workload generates POSIX operation streams for the simulated file
// system. Its centerpiece is an IOR-compatible generator that accepts the
// exact command lines of Table 3 of the paper, plus a library of the six
// low-performing access patterns of Section 4.1 with their tuned
// counterparts.
package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/iosim"
)

// IORConfig mirrors the IOR 3.3.0 options the paper exercises.
type IORConfig struct {
	// Write and Read correspond to -w and -r.
	Write bool
	Read  bool
	// TransferSize is -t: the size of one POSIX transfer.
	TransferSize int64
	// BlockSize is -b: the contiguous block owned by one task per segment.
	BlockSize int64
	// Segments is -s: the number of (block × ntasks) segments (default 1).
	Segments int
	// RandomOffset is -z: shuffle transfer offsets within a task's data.
	RandomOffset bool
	// FsyncPerWrite is -Y: issue fsync after every POSIX write.
	FsyncPerWrite bool
	// FilePerProc is -F: each task accesses its own file.
	FilePerProc bool
	// SeekPerRead reproduces the original IOR behaviour the paper's
	// Section 4.1.2 discovered: IOR calls lseek before every read even for
	// sequential access. The paper's fix (seek only once, for the first
	// read) corresponds to SeekPerRead=false.
	SeekPerRead bool
	// MemUnaligned marks transfers issued from an unaligned user buffer.
	MemUnaligned bool
	// NProcs is the MPI task count (the paper uses 256 for Section 4.1).
	NProcs int
	// FS is the Lustre layout of the target file(s).
	FS iosim.FSConfig
}

// DefaultIOR returns the base configuration for the Section 4.1 tests:
// 256 tasks, POSIX API, Cori default layout, original seek-per-read
// behaviour.
func DefaultIOR() IORConfig {
	return IORConfig{
		TransferSize: 256 * iosim.KiB,
		BlockSize:    1 * iosim.MiB,
		Segments:     1,
		SeekPerRead:  true,
		NProcs:       256,
		FS:           iosim.DefaultFS(),
	}
}

// ParseIORFlags parses an IOR command line such as
// "ior -w -t 1k -b 1m -Y" into a configuration, starting from DefaultIOR.
// The paper's Table 3 writes one config as "-k 1m"; IOR's real -k flag
// (keep file) takes no size, so this is read as the evident typo for
// "-t 1m" and parsed accordingly.
func ParseIORFlags(cmdline string) (IORConfig, error) {
	cfg := DefaultIOR()
	tokens := strings.Fields(cmdline)
	i := 0
	if len(tokens) > 0 && tokens[i] == "ior" {
		i++
	}
	next := func(flag string) (string, error) {
		i++
		if i >= len(tokens) {
			return "", fmt.Errorf("workload: flag %s needs an argument", flag)
		}
		return tokens[i], nil
	}
	for ; i < len(tokens); i++ {
		switch tok := tokens[i]; tok {
		case "-w":
			cfg.Write = true
		case "-r":
			cfg.Read = true
		case "-z":
			cfg.RandomOffset = true
		case "-Y":
			cfg.FsyncPerWrite = true
		case "-F":
			cfg.FilePerProc = true
		case "-t", "-k":
			arg, err := next(tok)
			if err != nil {
				return cfg, err
			}
			sz, err := ParseSize(arg)
			if err != nil {
				return cfg, err
			}
			cfg.TransferSize = sz
		case "-b":
			arg, err := next(tok)
			if err != nil {
				return cfg, err
			}
			sz, err := ParseSize(arg)
			if err != nil {
				return cfg, err
			}
			cfg.BlockSize = sz
		case "-s":
			arg, err := next(tok)
			if err != nil {
				return cfg, err
			}
			n, err := strconv.Atoi(arg)
			if err != nil || n <= 0 {
				return cfg, fmt.Errorf("workload: bad segment count %q", arg)
			}
			cfg.Segments = n
		case "-a":
			if _, err := next(tok); err != nil { // API name; only POSIX here
				return cfg, err
			}
		default:
			return cfg, fmt.Errorf("workload: unknown IOR flag %q", tok)
		}
	}
	if !cfg.Write && !cfg.Read {
		return cfg, fmt.Errorf("workload: IOR needs -w and/or -r")
	}
	if cfg.TransferSize <= 0 || cfg.BlockSize <= 0 {
		return cfg, fmt.Errorf("workload: transfer and block sizes must be positive")
	}
	if cfg.BlockSize%cfg.TransferSize != 0 {
		return cfg, fmt.Errorf("workload: block size %d not a multiple of transfer size %d",
			cfg.BlockSize, cfg.TransferSize)
	}
	return cfg, nil
}

// ParseSize parses IOR size syntax: "1k", "4m", "2g", or plain bytes.
func ParseSize(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("workload: empty size")
	}
	mult := int64(1)
	last := s[len(s)-1]
	switch last {
	case 'k', 'K':
		mult = iosim.KiB
		s = s[:len(s)-1]
	case 'm', 'M':
		mult = iosim.MiB
		s = s[:len(s)-1]
	case 'g', 'G':
		mult = iosim.GiB
		s = s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("workload: bad size %q", s)
	}
	return n * mult, nil
}

// offsets returns the file offsets of one rank's transfers in issue order.
// IOR's segmented layout places rank r's block of segment s at
// (s*ntasks + r) * blockSize; -z shuffles the transfer order.
func (c IORConfig) offsets(rank int, rng *rand.Rand) []int64 {
	perBlock := int(c.BlockSize / c.TransferSize)
	offs := make([]int64, 0, perBlock*c.Segments)
	for s := 0; s < c.Segments; s++ {
		base := (int64(s)*int64(c.NProcs) + int64(rank)) * c.BlockSize
		if c.FilePerProc {
			base = int64(s) * c.BlockSize
		}
		for t := 0; t < perBlock; t++ {
			offs = append(offs, base+int64(t)*c.TransferSize)
		}
	}
	if c.RandomOffset {
		rng.Shuffle(len(offs), func(i, j int) { offs[i], offs[j] = offs[j], offs[i] })
	}
	return offs
}

// Job converts the configuration into a runnable simulator job.
func (c IORConfig) Job(name string, jobID, seed int64) iosim.Job {
	return iosim.Job{
		Name:   name,
		JobID:  jobID,
		NProcs: c.NProcs,
		FS:     c.FS,
		Seed:   seed,
		Gen: func(rank int, emit func(darshan.Op)) {
			c.generate(rank, seed, emit)
		},
	}
}

func (c IORConfig) generate(rank int, seed int64, emit func(darshan.Op)) {
	file := int32(0)
	if c.FilePerProc {
		file = int32(rank)
	}
	rng := rand.New(rand.NewSource(seed*1000003 + int64(rank)))

	if c.Write {
		emit(darshan.Op{Kind: darshan.OpOpen, File: file})
		last := int64(-1)
		for _, off := range c.offsets(rank, rng) {
			// IOR seeks before a write whenever the file pointer is not
			// already at the target offset.
			if off != last {
				emit(darshan.Op{Kind: darshan.OpSeek, File: file, Offset: off})
			}
			emit(darshan.Op{
				Kind: darshan.OpWrite, File: file, Offset: off,
				Size: c.TransferSize, MemUnaligned: c.MemUnaligned,
			})
			if c.FsyncPerWrite {
				emit(darshan.Op{Kind: darshan.OpFsync, File: file})
			}
			last = off + c.TransferSize
		}
		emit(darshan.Op{Kind: darshan.OpClose, File: file})
	}
	if c.Read {
		emit(darshan.Op{Kind: darshan.OpOpen, File: file})
		last := int64(-1)
		first := true
		for _, off := range c.offsets(rank, rng) {
			if c.SeekPerRead || off != last || first {
				emit(darshan.Op{Kind: darshan.OpSeek, File: file, Offset: off})
			}
			emit(darshan.Op{
				Kind: darshan.OpRead, File: file, Offset: off,
				Size: c.TransferSize, MemUnaligned: c.MemUnaligned,
			})
			last = off + c.TransferSize
			first = false
		}
		emit(darshan.Op{Kind: darshan.OpClose, File: file})
	}
}

// Run executes the config against the simulator and returns the record.
func (c IORConfig) Run(name string, jobID, seed int64, params iosim.Params) (*darshan.Record, iosim.Result) {
	return iosim.Run(c.Job(name, jobID, seed), params)
}
