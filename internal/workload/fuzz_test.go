package workload

import (
	"strings"
	"testing"
)

// FuzzParseIORFlags ensures the flag parser never panics and that accepted
// configurations are internally consistent.
func FuzzParseIORFlags(f *testing.F) {
	f.Add("ior -w -t 1k -b 1m -Y")
	f.Add("ior -r -t 1k -b 1k -s 1024")
	f.Add("ior -a POSIX -r -t 1k -b 1m -z")
	f.Add("-w -k 1m -b 1m")
	f.Add("ior -w -t")
	f.Add("")
	f.Add("ior -w -t 0k -b 1m")
	f.Add("ior " + strings.Repeat("-z ", 50) + "-w -t 1k -b 1k")
	f.Fuzz(func(t *testing.T, cmdline string) {
		cfg, err := ParseIORFlags(cmdline)
		if err != nil {
			return
		}
		if !cfg.Write && !cfg.Read {
			t.Fatal("accepted config with neither -w nor -r")
		}
		if cfg.TransferSize <= 0 || cfg.BlockSize <= 0 || cfg.Segments <= 0 {
			t.Fatalf("accepted non-positive sizes: %+v", cfg)
		}
		if cfg.BlockSize%cfg.TransferSize != 0 {
			t.Fatalf("accepted block %d not multiple of transfer %d",
				cfg.BlockSize, cfg.TransferSize)
		}
	})
}
