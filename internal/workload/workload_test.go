package workload

import (
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/iosim"
)

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"1k":   1024,
		"4K":   4096,
		"1m":   1 << 20,
		"2g":   2 << 30,
		"4096": 4096,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "-1k", "0", "1.5m"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) accepted", bad)
		}
	}
}

func TestParseIORFlagsTable3(t *testing.T) {
	// Every Table 3 command line must parse.
	cases := []struct {
		cmdline string
		check   func(IORConfig) bool
	}{
		{"ior -w -t 1k -b 1m -Y", func(c IORConfig) bool {
			return c.Write && !c.Read && c.TransferSize == 1024 && c.BlockSize == 1<<20 && c.FsyncPerWrite
		}},
		{"ior -w -k 1m -b 1m -Y", func(c IORConfig) bool { // paper's typo for -t 1m
			return c.Write && c.TransferSize == 1<<20
		}},
		{"ior -r -t 1k -b 1m", func(c IORConfig) bool {
			return c.Read && !c.Write && !c.FsyncPerWrite
		}},
		{"ior -w -t 1k -b 1k -s 1024 -Y", func(c IORConfig) bool {
			return c.Segments == 1024 && c.BlockSize == 1024
		}},
		{"ior -w -t 1k -b 1m -z -Y", func(c IORConfig) bool {
			return c.RandomOffset && c.FsyncPerWrite
		}},
		{"ior -a POSIX -r -t 1k -b 1m -z", func(c IORConfig) bool {
			return c.Read && c.RandomOffset
		}},
	}
	for _, tc := range cases {
		cfg, err := ParseIORFlags(tc.cmdline)
		if err != nil {
			t.Errorf("ParseIORFlags(%q): %v", tc.cmdline, err)
			continue
		}
		if !tc.check(cfg) {
			t.Errorf("ParseIORFlags(%q) = %+v fails check", tc.cmdline, cfg)
		}
	}
}

func TestParseIORFlagsErrors(t *testing.T) {
	bad := []string{
		"ior",                     // neither -w nor -r
		"ior -w -t",               // missing argument
		"ior -w -t 3k -b 1m",      // block not multiple of transfer
		"ior -w -t 1k -b 1m --no", // unknown flag
		"ior -w -t 0 -b 1m",       // zero size
		"ior -w -s x -t 1k -b 1k", // bad segment count
	}
	for _, cmd := range bad {
		if _, err := ParseIORFlags(cmd); err == nil {
			t.Errorf("ParseIORFlags(%q) accepted", cmd)
		}
	}
}

func TestOffsetsSegmentedLayout(t *testing.T) {
	cfg := DefaultIOR()
	cfg.Write = true
	cfg.NProcs = 4
	cfg.TransferSize = 1024
	cfg.BlockSize = 2048
	cfg.Segments = 2
	offs := cfg.offsets(1, nil)
	want := []int64{
		1 * 2048, 1*2048 + 1024, // segment 0, rank 1
		(2*4 - 3) * 2048, (2*4-3)*2048 + 1024, // segment 1: (1*4+1)*2048
	}
	want[2] = (int64(1)*4 + 1) * 2048
	want[3] = want[2] + 1024
	if len(offs) != len(want) {
		t.Fatalf("offsets len = %d, want %d", len(offs), len(want))
	}
	for i := range want {
		if offs[i] != want[i] {
			t.Errorf("offsets[%d] = %d, want %d", i, offs[i], want[i])
		}
	}
}

func TestGenerateCounterSignatures(t *testing.T) {
	params := iosim.DefaultParams()
	params.NoiseSigma = 0

	t.Run("seq write small", func(t *testing.T) {
		cfg := mustParse("ior -w -t 1k -b 1m -Y")
		cfg.NProcs = 4
		rec, _ := cfg.Run("ior", 1, 1, params)
		if err := rec.Validate(); err != nil {
			t.Fatal(err)
		}
		if got := rec.Counter(darshan.PosixWrites); got != 4*1024 {
			t.Errorf("POSIX_WRITES = %v, want 4096", got)
		}
		if got := rec.Counter(darshan.PosixSizeWrite100_1K); got != 4*1024 {
			t.Errorf("POSIX_SIZE_WRITE_100_1K = %v", got)
		}
		// Sequential writes: one initial seek per proc only.
		if got := rec.Counter(darshan.PosixSeeks); got != 4 {
			t.Errorf("POSIX_SEEKS = %v, want 4", got)
		}
		if got := rec.Counter(darshan.PosixConsecWrites); got != 4*1023 {
			t.Errorf("POSIX_CONSEC_WRITES = %v", got)
		}
		if rec.Counter(darshan.PosixReads) != 0 {
			t.Error("write-only workload produced reads")
		}
	})

	t.Run("seq read seek-per-read", func(t *testing.T) {
		cfg := mustParse("ior -r -t 1k -b 1m")
		cfg.NProcs = 4
		rec, _ := cfg.Run("ior", 1, 1, params)
		if got := rec.Counter(darshan.PosixSeeks); got != 4*1024 {
			t.Errorf("POSIX_SEEKS = %v, want one per read", got)
		}
		cfg.SeekPerRead = false
		rec, _ = cfg.Run("ior", 1, 1, params)
		if got := rec.Counter(darshan.PosixSeeks); got != 4 {
			t.Errorf("POSIX_SEEKS without seek-per-read = %v, want 4", got)
		}
	})

	t.Run("strided write", func(t *testing.T) {
		cfg := mustParse("ior -w -t 1k -b 1k -s 64 -Y")
		cfg.NProcs = 4
		rec, _ := cfg.Run("ior", 1, 1, params)
		// Stride between segments: nprocs*blockSize gap minus transfer.
		wantStride := float64(4*1024 - 1024)
		if got := rec.Counter(darshan.PosixStride1Stride); got != wantStride {
			t.Errorf("POSIX_STRIDE1_STRIDE = %v, want %v", got, wantStride)
		}
		if got := rec.Counter(darshan.PosixStride1Count); got != 4*63 {
			t.Errorf("POSIX_STRIDE1_COUNT = %v, want 252", got)
		}
		if got := rec.Counter(darshan.PosixConsecWrites); got != 0 {
			t.Errorf("POSIX_CONSEC_WRITES = %v, want 0", got)
		}
	})

	t.Run("random write alignment", func(t *testing.T) {
		cfg := mustParse("ior -w -t 1k -b 1m -z -Y")
		cfg.NProcs = 4
		rec, _ := cfg.Run("ior", 1, 1, params)
		if got := rec.Counter(darshan.PosixFileNotAligned); got == 0 {
			t.Error("random 1k writes produced no unaligned accesses")
		}
		if got := rec.Counter(darshan.PosixSeeks); got < 4*512 {
			t.Errorf("POSIX_SEEKS = %v, random writes should mostly seek", got)
		}
	})

	t.Run("file per proc", func(t *testing.T) {
		cfg := mustParse("ior -w -t 1k -b 4k -F")
		cfg.NProcs = 3
		rec, _ := cfg.Run("ior", 1, 1, params)
		if got := rec.Counter(darshan.PosixOpens); got != 3 {
			t.Errorf("POSIX_OPENS = %v", got)
		}
		// Every proc starts its own file at offset 0: fully consecutive.
		if got := rec.Counter(darshan.PosixConsecWrites); got != 3*3 {
			t.Errorf("POSIX_CONSEC_WRITES = %v, want 9", got)
		}
	})
}

func TestPatternsShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("pattern simulation in -short mode")
	}
	params := iosim.DefaultParams()
	params.NoiseSigma = 0
	for _, pat := range Patterns() {
		pat := pat
		t.Run(pat.Name, func(t *testing.T) {
			cfg := pat.Config.Scale(8, 1) // 32 procs
			tuned := pat.TunedConfig.Scale(8, 1)
			rec, res := cfg.Run("ior", int64(pat.ID), 42, params)
			trec, tres := tuned.Run("ior-tuned", int64(pat.ID+100), 43, params)
			if err := rec.Validate(); err != nil {
				t.Fatalf("untuned record: %v", err)
			}
			if err := trec.Validate(); err != nil {
				t.Fatalf("tuned record: %v", err)
			}
			if tres.PerfMiBps <= res.PerfMiBps {
				t.Errorf("tuning did not help: untuned %.2f MiB/s, tuned %.2f MiB/s",
					res.PerfMiBps, tres.PerfMiBps)
			}
			for _, id := range pat.ExpectedBottlenecks {
				if rec.Counter(id) == 0 {
					t.Errorf("expected bottleneck counter %s is zero in untuned run", id)
				}
			}
		})
	}
}

func TestPattern1SpeedupFactor(t *testing.T) {
	// The paper reports 104x for pattern 1; require at least 20x in the
	// simulator at reduced scale.
	params := iosim.DefaultParams()
	params.NoiseSigma = 0
	pats := Patterns()
	cfg := pats[0].Config.Scale(8, 1)
	tuned := pats[0].TunedConfig.Scale(8, 1)
	_, res := cfg.Run("ior", 1, 7, params)
	_, tres := tuned.Run("ior", 2, 7, params)
	if f := tres.PerfMiBps / res.PerfMiBps; f < 20 {
		t.Errorf("pattern 1 speedup = %.1fx, want >= 20x", f)
	}
}

func TestScaleAndTotalBytes(t *testing.T) {
	cfg := mustParse("ior -w -t 1k -b 1m -Y")
	if got := cfg.TotalBytes(); got != int64(cfg.NProcs)*1<<20 {
		t.Errorf("TotalBytes = %d", got)
	}
	s := cfg.Scale(4, 4)
	if s.NProcs != cfg.NProcs/4 {
		t.Errorf("scaled NProcs = %d", s.NProcs)
	}
	if s.BlockSize != cfg.BlockSize/4 {
		t.Errorf("scaled BlockSize = %d", s.BlockSize)
	}
	if s.BlockSize%s.TransferSize != 0 {
		t.Error("scaled block not multiple of transfer")
	}
	tiny := cfg.Scale(10000, 10000)
	if tiny.NProcs != 1 || tiny.BlockSize < tiny.TransferSize {
		t.Errorf("clamping failed: %+v", tiny)
	}
	rw := cfg
	rw.Read = true
	if rw.TotalBytes() != 2*cfg.TotalBytes() {
		t.Error("read+write TotalBytes should double")
	}
}

func TestPatternsAreComplete(t *testing.T) {
	pats := Patterns()
	if len(pats) != 6 {
		t.Fatalf("Patterns() returned %d patterns, want 6", len(pats))
	}
	for i, p := range pats {
		if p.ID != i+1 {
			t.Errorf("pattern %d has ID %d", i, p.ID)
		}
		if p.CmdLine == "" || p.Figure == "" || p.Tuning == "" {
			t.Errorf("pattern %d metadata incomplete: %+v", i, p)
		}
		if len(p.ExpectedBottlenecks) == 0 {
			t.Errorf("pattern %d has no expected bottlenecks", i)
		}
		if _, err := ParseIORFlags(p.CmdLine); err != nil {
			t.Errorf("pattern %d cmdline %q does not parse: %v", i, p.CmdLine, err)
		}
	}
}
