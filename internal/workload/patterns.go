package workload

import (
	"fmt"

	"github.com/hpc-repro/aiio/internal/darshan"
)

// Pattern is one of the six low-performing I/O access patterns of
// Section 4.1, with the IOR command line from Table 3, the tuned counterpart
// the paper measures after following AIIO's diagnosis, and the counters the
// paper's figures report as the dominant negative factors.
type Pattern struct {
	ID      int
	Name    string
	Figure  string
	CmdLine string
	// Tuning describes the optimization the paper applied.
	Tuning string
	// Config and TunedConfig are the runnable workloads.
	Config      IORConfig
	TunedConfig IORConfig
	// ExpectedBottlenecks are counters the diagnosis should rank among the
	// most negative contributors for Config (paper Figs. 7–12).
	ExpectedBottlenecks []darshan.CounterID
	// ResolvedBottlenecks are counters that must no longer be the top
	// negative contributor after tuning.
	ResolvedBottlenecks []darshan.CounterID
}

// mustParse parses a Table 3 command line; the table is a compile-time
// constant, so failure is a programming error.
func mustParse(cmdline string) IORConfig {
	cfg, err := ParseIORFlags(cmdline)
	if err != nil {
		panic(fmt.Sprintf("workload: bad built-in IOR config %q: %v", cmdline, err))
	}
	return cfg
}

// Patterns returns the six Section 4.1 patterns. All run with 256 processes
// on the default layout, like the paper.
func Patterns() []Pattern {
	seqWriteSmall := mustParse("ior -w -t 1k -b 1m -Y")
	seqWriteLarge := mustParse("ior -w -t 1m -b 1m -Y")

	seqReadSmall := mustParse("ior -r -t 1k -b 1m")
	seqReadNoSeek := seqReadSmall
	seqReadNoSeek.SeekPerRead = false

	strideWrite := mustParse("ior -w -t 1k -b 1k -s 1024 -Y")
	strideRead := mustParse("ior -r -t 1k -b 1k -s 1024")
	randWrite := mustParse("ior -w -t 1k -b 1m -z -Y")
	randRead := mustParse("ior -a POSIX -r -t 1k -b 1m -z")

	return []Pattern{
		{
			ID: 1, Name: "sequential write, small requests", Figure: "Fig. 7",
			CmdLine: "ior -w -t 1k -b 1m -Y",
			Tuning:  "increase the transfer size from 1 KiB to 1 MiB (-t 1m)",
			Config:  seqWriteSmall, TunedConfig: seqWriteLarge,
			ExpectedBottlenecks: []darshan.CounterID{
				darshan.PosixSizeWrite100_1K, darshan.PosixWrites,
			},
			ResolvedBottlenecks: []darshan.CounterID{darshan.PosixSizeWrite100_1K},
		},
		{
			ID: 2, Name: "sequential read, small requests", Figure: "Fig. 8",
			CmdLine: "ior -r -t 1k -b 1m",
			Tuning:  "seek once for the first read instead of before every read",
			Config:  seqReadSmall, TunedConfig: seqReadNoSeek,
			ExpectedBottlenecks: []darshan.CounterID{darshan.PosixSeeks},
			ResolvedBottlenecks: []darshan.CounterID{darshan.PosixSeeks},
		},
		{
			ID: 3, Name: "noncontiguous write, fixed stride", Figure: "Fig. 9",
			CmdLine: "ior -w -t 1k -b 1k -s 1024 -Y",
			Tuning:  "convert the stride pattern to sequential writing with large requests",
			Config:  strideWrite, TunedConfig: seqWriteLarge,
			ExpectedBottlenecks: []darshan.CounterID{
				darshan.PosixSizeWrite100_1K, darshan.PosixWrites,
				darshan.PosixStride1Count,
			},
			ResolvedBottlenecks: []darshan.CounterID{darshan.PosixStride1Count},
		},
		{
			ID: 4, Name: "noncontiguous read, fixed stride", Figure: "Fig. 10",
			CmdLine: "ior -r -t 1k -b 1k -s 1024",
			Tuning:  "convert the noncontiguous read into a contiguous one",
			Config:  strideRead, TunedConfig: seqReadNoSeek,
			// The paper names POSIX_SEEKS and POSIX_FILE_ALIGNMENT; the
			// small-read size counters carry the same mechanism and share
			// Shapley credit with them.
			ExpectedBottlenecks: []darshan.CounterID{
				darshan.PosixSeeks, darshan.PosixFileAlignment,
				darshan.PosixSizeRead100_1K,
			},
			ResolvedBottlenecks: []darshan.CounterID{darshan.PosixSeeks},
		},
		{
			ID: 5, Name: "write with random offset", Figure: "Fig. 11",
			CmdLine: "ior -w -t 1k -b 1m -z -Y",
			Tuning:  "convert to a contiguous pattern, then enlarge the write size",
			Config:  randWrite, TunedConfig: seqWriteLarge,
			ExpectedBottlenecks: []darshan.CounterID{
				darshan.PosixSizeWrite100_1K, darshan.PosixWrites,
				darshan.PosixFileNotAligned, darshan.PosixStride1Count,
			},
			ResolvedBottlenecks: []darshan.CounterID{darshan.PosixFileNotAligned},
		},
		{
			ID: 6, Name: "read with random offset", Figure: "Fig. 12",
			CmdLine: "ior -a POSIX -r -t 1k -b 1m -z",
			Tuning:  "convert to a contiguous read, then enlarge the read size",
			Config:  randRead, TunedConfig: seqReadNoSeek,
			ExpectedBottlenecks: []darshan.CounterID{
				darshan.PosixSizeRead100_1K, darshan.PosixSeeks,
			},
			// The tuned counterpart is still a small-request read (the
			// paper's chain continues to Fig. 8b for the size); what this
			// step resolves is the random-offset stride signature.
			ResolvedBottlenecks: []darshan.CounterID{
				darshan.PosixStride1Count, darshan.PosixStride3Count,
			},
		},
	}
}

// Scale reduces a pattern's process count and block size by the given
// factors, preserving shape while making tests fast. factor must divide the
// original values sensibly; Scale clamps at 1 process and one transfer.
func (c IORConfig) Scale(procDiv, blockDiv int) IORConfig {
	out := c
	if procDiv > 1 {
		out.NProcs = c.NProcs / procDiv
		if out.NProcs < 1 {
			out.NProcs = 1
		}
	}
	if blockDiv > 1 {
		out.BlockSize = c.BlockSize / int64(blockDiv)
		if out.BlockSize < out.TransferSize {
			out.BlockSize = out.TransferSize
		}
		// Keep block a multiple of transfer size.
		out.BlockSize -= out.BlockSize % out.TransferSize
		if out.BlockSize == 0 {
			out.BlockSize = out.TransferSize
		}
	}
	if out.Segments > 1 && blockDiv > 1 {
		out.Segments = c.Segments / blockDiv
		if out.Segments < 1 {
			out.Segments = 1
		}
	}
	return out
}

// TotalBytes returns the bytes one run of the config transfers (write and
// read phases counted separately).
func (c IORConfig) TotalBytes() int64 {
	per := c.BlockSize * int64(c.Segments) * int64(c.NProcs)
	n := int64(0)
	if c.Write {
		n += per
	}
	if c.Read {
		n += per
	}
	return n
}
