// Package logdb generates the historical I/O log database AIIO trains on —
// the stand-in for the 825 GB / 6.6 M-job Cori Darshan archive of Table 1.
// Jobs are sampled from a mixture of workload families (the six IOR access
// patterns with randomized parameters, E2E-, OpenPMD- and DASSA-shaped
// kernels, and metadata-heavy jobs), executed against the simulated file
// system, and recorded as Darshan records whose performance tag follows
// Eq. 1. The mixture is what gives the performance functions the
// counter → performance structure the diagnosis needs: small synced writes,
// seeks, strides, misalignment, opens and stripe settings all vary and all
// matter.
package logdb

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"github.com/hpc-repro/aiio/internal/apps"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/iosim"
	"github.com/hpc-repro/aiio/internal/workload"
)

// GenConfig configures database generation.
type GenConfig struct {
	// Jobs is the number of records to generate.
	Jobs int
	// Seed drives every random choice.
	Seed int64
	// Params is the simulated file system; zero value means defaults.
	Params iosim.Params
	// ExcludeFamilies removes workload families from the mixture (by the
	// App names below: "ior-synth", "e2e-write3d", "openpmd-h5bench",
	// "dassa-xcorr", "metadata-synth"). Used by the unseen-application
	// experiments to hold a family out of training.
	ExcludeFamilies []string
}

// DefaultGenConfig returns a database size that trains usable models in
// seconds.
func DefaultGenConfig() GenConfig {
	return GenConfig{Jobs: 3000, Seed: 1, Params: iosim.DefaultParams()}
}

// yearWeights reproduce the Table 1 distribution of jobs across 2019–2022.
var yearWeights = []struct {
	year   int
	weight float64
}{
	{2019, 3013293},
	{2020, 1554827},
	{2021, 2854583},
	{2022, 963035},
}

func pickYear(rng *rand.Rand) int {
	total := 0.0
	for _, yw := range yearWeights {
		total += yw.weight
	}
	r := rng.Float64() * total
	for _, yw := range yearWeights {
		if r < yw.weight {
			return yw.year
		}
		r -= yw.weight
	}
	return yearWeights[len(yearWeights)-1].year
}

// Generate produces the dataset. Jobs are generated in parallel; the result
// is deterministic for a fixed config because each job derives its own RNG
// from (Seed, job index).
func Generate(cfg GenConfig) *darshan.Dataset {
	if cfg.Jobs <= 0 {
		cfg.Jobs = DefaultGenConfig().Jobs
	}
	if cfg.Params.OSTBandwidth == 0 {
		cfg.Params = iosim.DefaultParams()
	}
	records := make([]*darshan.Record, cfg.Jobs)

	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				records[i] = generateJob(cfg, i)
			}
		}()
	}
	for i := 0; i < cfg.Jobs; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	return &darshan.Dataset{Records: records}
}

// GenerateStream produces the same records as Generate — job i is
// identical under either API for a fixed config — but yields them one at a
// time in index order instead of materializing the dataset. Memory stays
// flat regardless of cfg.Jobs, which is what streaming ingest (aiio ingest,
// joblog replay drills) needs. Return false from yield to stop early.
func GenerateStream(cfg GenConfig, yield func(rec *darshan.Record) bool) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = DefaultGenConfig().Jobs
	}
	if cfg.Params.OSTBandwidth == 0 {
		cfg.Params = iosim.DefaultParams()
	}
	for i := 0; i < cfg.Jobs; i++ {
		if !yield(generateJob(cfg, i)) {
			return
		}
	}
}

// familyNames are the App identities of the mixture families.
var familyNames = []string{
	"ior-synth", "e2e-write3d", "openpmd-h5bench", "dassa-xcorr", "metadata-synth",
}

// FamilyNames lists the workload families of the mixture.
func FamilyNames() []string {
	return append([]string(nil), familyNames...)
}

// generateJob samples one job from the mixture and simulates it.
func generateJob(cfg GenConfig, i int) *darshan.Record {
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)))
	jobSeed := rng.Int63()

	excluded := func(name string) bool {
		for _, e := range cfg.ExcludeFamilies {
			if e == name {
				return true
			}
		}
		return false
	}

	var rec *darshan.Record
	for {
		switch f := rng.Float64(); {
		case f < 0.60:
			rec = iorJob(rng, jobSeed, cfg.Params)
		case f < 0.72:
			rec = e2eJob(rng, jobSeed, cfg.Params)
		case f < 0.84:
			rec = openpmdJob(rng, jobSeed, cfg.Params)
		case f < 0.94:
			rec = dassaJob(rng, jobSeed, cfg.Params)
		default:
			rec = metadataJob(rng, jobSeed, cfg.Params)
		}
		if !excluded(rec.App) {
			break
		}
	}
	rec.JobID = int64(i) + 1
	rec.Year = pickYear(rng)
	return rec
}

// GenerateFamily produces jobs from a single workload family — the "unseen
// application" source for the generalization experiments.
func GenerateFamily(family string, jobs int, seed int64, params iosim.Params) (*darshan.Dataset, error) {
	if params.OSTBandwidth == 0 {
		params = iosim.DefaultParams()
	}
	gen := map[string]func(*rand.Rand, int64, iosim.Params) *darshan.Record{
		"ior-synth":       iorJob,
		"e2e-write3d":     e2eJob,
		"openpmd-h5bench": openpmdJob,
		"dassa-xcorr":     dassaJob,
		"metadata-synth":  metadataJob,
	}[family]
	if gen == nil {
		return nil, fmt.Errorf("logdb: unknown family %q (have %v)", family, familyNames)
	}
	ds := &darshan.Dataset{}
	for i := 0; i < jobs; i++ {
		rng := rand.New(rand.NewSource(seed*999_983 + int64(i)))
		rec := gen(rng, rng.Int63(), params)
		rec.JobID = int64(i) + 1
		rec.Year = pickYear(rng)
		ds.Append(rec)
	}
	return ds, nil
}

func choice[T any](rng *rand.Rand, items []T) T {
	return items[rng.Intn(len(items))]
}

func randFS(rng *rand.Rand) iosim.FSConfig {
	return iosim.FSConfig{
		StripeSize:  choice(rng, []int64{64 * iosim.KiB, 1 * iosim.MiB, 4 * iosim.MiB, 16 * iosim.MiB}),
		StripeWidth: choice(rng, []int{1, 1, 2, 4, 8}),
	}
}

// iorJob samples a randomized IOR-style access pattern.
func iorJob(rng *rand.Rand, seed int64, params iosim.Params) *darshan.Record {
	cfg := workload.DefaultIOR()
	cfg.FS = randFS(rng)
	cfg.NProcs = choice(rng, []int{1, 2, 4, 8, 16, 32})
	cfg.TransferSize = choice(rng, []int64{256, 1 * iosim.KiB, 4 * iosim.KiB,
		64 * iosim.KiB, 256 * iosim.KiB, 1 * iosim.MiB})
	transfers := int64(choice(rng, []int{16, 64, 256, 1024}))
	cfg.BlockSize = cfg.TransferSize * transfers
	if rng.Float64() < 0.3 {
		// Strided: one transfer per block, many segments.
		cfg.BlockSize = cfg.TransferSize
		cfg.Segments = int(transfers)
	}
	switch rng.Intn(3) {
	case 0:
		cfg.Write = true
	case 1:
		cfg.Read = true
	default:
		cfg.Write, cfg.Read = true, true
	}
	cfg.RandomOffset = rng.Float64() < 0.25
	// Small-transfer writers are the synchronous / non-mergeable ones on
	// real systems. fsync is not part of the paper's 45-counter set, so a
	// job's sync behaviour is invisible to the models; tying it to the
	// transfer size reproduces the Cori-data correlation ("small writes are
	// slow") that the paper's diagnosis relies on.
	cfg.FsyncPerWrite = cfg.Write && cfg.TransferSize < 64*iosim.KiB
	cfg.FilePerProc = rng.Float64() < 0.2
	cfg.SeekPerRead = rng.Float64() < 0.5
	cfg.MemUnaligned = rng.Float64() < 0.2
	rec, _ := cfg.Run("ior-synth", 0, seed, params)
	return rec
}

// e2eJob samples a blocked 3-D writer, sometimes tuned (contiguous).
func e2eJob(rng *rand.Rand, seed int64, params iosim.Params) *darshan.Record {
	cfg := apps.E2EConfig{
		NP:       [3]int{choice(rng, []int{8, 16, 32}), choice(rng, []int{8, 16, 32}), choice(rng, []int{8, 16})},
		ND:       [3]int{choice(rng, []int{2, 4, 8}), choice(rng, []int{2, 4, 8}), choice(rng, []int{2, 4})},
		NProcs:   8,
		ProcGrid: [3]int{2, 2, 2},
		ElemSize: 8,
		FS:       randFS(rng),
	}
	cfg.Contiguous = rng.Float64() < 0.4
	rec, _ := cfg.Run(0, seed, params)
	return rec
}

// openpmdJob samples a particle/mesh writer, independent or collective.
func openpmdJob(rng *rand.Rand, seed int64, params iosim.Params) *darshan.Record {
	cfg := apps.OpenPMDConfig{
		NProcs:          choice(rng, []int{8, 16, 32, 64}),
		Steps:           choice(rng, []int{1, 2}),
		BlocksPerProc:   choice(rng, []int{2, 4, 8}),
		BlockBytes:      choice(rng, []int64{128 * iosim.KiB, 512 * iosim.KiB, 1 * iosim.MiB}),
		AttrWrites:      choice(rng, []int{16, 64, 128, 256}),
		AttrBytes:       choice(rng, []int64{256, 512, 1024}),
		AggregatorRatio: 8,
		FS:              randFS(rng),
	}
	cfg.Collective = rng.Float64() < 0.4
	rec, _ := cfg.Run(0, seed, params)
	return rec
}

// dassaJob samples a many-small-files analysis reader, sometimes merged.
func dassaJob(rng *rand.Rand, seed int64, params iosim.Params) *darshan.Record {
	cfg := apps.DASSAConfig{
		NProcs:        choice(rng, []int{2, 4, 8, 16}),
		MinuteFiles:   choice(rng, []int{4, 8, 21, 42, 64}),
		FileBytes:     choice(rng, []int64{2 * iosim.MiB, 8 * iosim.MiB, 16 * iosim.MiB}),
		TemplateBytes: 1 * iosim.MiB,
		ChannelChunks: choice(rng, []int{8, 16, 32}),
		FS:            randFS(rng),
	}
	cfg.Merged = rng.Float64() < 0.35
	rec, _ := cfg.Run(0, seed, params)
	return rec
}

// metadataJob is an open/stat-heavy job with tiny data movement, covering
// the metadata-bound corner of the counter space.
func metadataJob(rng *rand.Rand, seed int64, params iosim.Params) *darshan.Record {
	nprocs := choice(rng, []int{1, 2, 4, 8})
	files := choice(rng, []int{32, 128, 512})
	readSize := choice(rng, []int64{64, 512, 4096})
	// Stats per file vary independently of opens so the models can tell
	// the two metadata costs apart.
	statsPerFile := choice(rng, []int{0, 0, 1, 4, 16})
	job := iosim.Job{
		Name: "metadata-synth", NProcs: nprocs, FS: randFS(rng), Seed: seed,
		Gen: func(rank int, emit func(darshan.Op)) {
			for f := 0; f < files; f++ {
				file := int32(f)
				for s := 0; s < statsPerFile; s++ {
					emit(darshan.Op{Kind: darshan.OpStat, File: file})
				}
				emit(darshan.Op{Kind: darshan.OpOpen, File: file})
				emit(darshan.Op{Kind: darshan.OpRead, File: file, Offset: 0, Size: readSize})
				emit(darshan.Op{Kind: darshan.OpClose, File: file})
			}
		},
	}
	rec, _ := iosim.Run(job, params)
	return rec
}
