package logdb

import (
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
)

func TestGenerateBasics(t *testing.T) {
	cfg := GenConfig{Jobs: 200, Seed: 1}
	ds := Generate(cfg)
	if ds.Len() != 200 {
		t.Fatalf("generated %d jobs, want 200", ds.Len())
	}
	for i, rec := range ds.Records {
		if rec == nil {
			t.Fatalf("record %d is nil", i)
		}
		if err := rec.Validate(); err != nil {
			t.Fatalf("record %d (%s): %v", i, rec.App, err)
		}
		if rec.PerfMiBps <= 0 {
			t.Errorf("record %d has non-positive performance %v", i, rec.PerfMiBps)
		}
		if rec.JobID != int64(i)+1 {
			t.Errorf("record %d has JobID %d", i, rec.JobID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Jobs: 50, Seed: 42})
	b := Generate(GenConfig{Jobs: 50, Seed: 42})
	for i := range a.Records {
		if *a.Records[i] != *b.Records[i] {
			t.Fatalf("record %d differs across runs with same seed", i)
		}
	}
	c := Generate(GenConfig{Jobs: 50, Seed: 43})
	same := 0
	for i := range a.Records {
		if a.Records[i].PerfMiBps == c.Records[i].PerfMiBps {
			same++
		}
	}
	if same == len(a.Records) {
		t.Error("different seeds produced identical databases")
	}
}

func TestGenerateCoversYearsAndFamilies(t *testing.T) {
	ds := Generate(GenConfig{Jobs: 400, Seed: 2})
	years := ds.YearSummary()
	for _, y := range []int{2019, 2020, 2021, 2022} {
		if years[y] == 0 {
			t.Errorf("no jobs in year %d", y)
		}
	}
	apps := map[string]int{}
	for _, rec := range ds.Records {
		apps[rec.App]++
	}
	for _, name := range []string{"ior-synth", "e2e-write3d", "openpmd-h5bench", "dassa-xcorr", "metadata-synth"} {
		if apps[name] == 0 {
			t.Errorf("no jobs from family %s (got %v)", name, apps)
		}
	}
}

func TestGenerateSparsityIsRealistic(t *testing.T) {
	// The paper reports 0.2379 average sparsity on Cori; the generated
	// database must be sparse too (read-only and write-only jobs exist).
	ds := Generate(GenConfig{Jobs: 300, Seed: 3})
	s := ds.AverageSparsity()
	if s < 0.05 || s > 0.6 {
		t.Errorf("average sparsity = %.4f, want within (0.05, 0.6)", s)
	}
	readOnly, writeOnly := 0, 0
	for _, rec := range ds.Records {
		if rec.Counter(darshan.PosixWrites) == 0 && rec.Counter(darshan.PosixReads) > 0 {
			readOnly++
		}
		if rec.Counter(darshan.PosixReads) == 0 && rec.Counter(darshan.PosixWrites) > 0 {
			writeOnly++
		}
	}
	if readOnly == 0 || writeOnly == 0 {
		t.Errorf("expected both read-only and write-only jobs, got %d/%d", readOnly, writeOnly)
	}
}

func TestGeneratePerformanceVariesWithCounters(t *testing.T) {
	// The DB must contain learnable structure: performance spans orders of
	// magnitude.
	ds := Generate(GenConfig{Jobs: 300, Seed: 4})
	f := features.Build(ds)
	min, max := f.Y[0], f.Y[0]
	for _, y := range f.Y {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	if max-min < 1.5 {
		t.Errorf("transformed performance range [%.2f, %.2f] too narrow", min, max)
	}
}

func BenchmarkGenerate100(b *testing.B) {
	cfg := GenConfig{Jobs: 100, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}

func TestGenerateStreamMatchesGenerate(t *testing.T) {
	cfg := GenConfig{Jobs: 120, Seed: 9}
	ds := Generate(cfg)
	i := 0
	GenerateStream(cfg, func(rec *darshan.Record) bool {
		if i >= len(ds.Records) {
			t.Fatalf("stream yielded more than %d records", len(ds.Records))
		}
		if *rec != *ds.Records[i] {
			t.Fatalf("record %d differs between Generate and GenerateStream", i)
		}
		i++
		return true
	})
	if i != cfg.Jobs {
		t.Fatalf("stream yielded %d records, want %d", i, cfg.Jobs)
	}
	// Early termination: yield false stops the stream.
	n := 0
	GenerateStream(cfg, func(rec *darshan.Record) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop after %d records, want 10", n)
	}
}
