// Package parallel provides the bounded worker pools shared by the model
// backends (batch-prediction sharding) and the diagnosis engine (per-model
// and per-job fan-out). The helpers keep the calling goroutine working,
// never spawn more goroutines than there is work, and keep results
// deterministic: a worker writes only to the index or chunk it owns, so the
// caller's reduction order never depends on scheduling.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a parallelism knob: requested <= 0 means
// runtime.GOMAXPROCS(0), and the result is clamped to [1, n] so a pool is
// never larger than its work list.
func Workers(requested, n int) int {
	if requested <= 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	if requested > n {
		requested = n
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}

// For splits [0, n) into one contiguous chunk per worker and runs fn on
// every chunk, using the calling goroutine for the first chunk. fn must
// only touch state owned by its [lo, hi) range. workers <= 0 means
// GOMAXPROCS.
func For(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	fn(0, chunk)
	wg.Wait()
}

// Each runs fn(i) for every i in [0, n) on a bounded pool with dynamic load
// balancing: workers pull the next free index, which suits unevenly sized
// jobs such as per-model SHAP explanations. fn must only touch state owned
// by index i. workers <= 0 means GOMAXPROCS.
func Each(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	drain := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			drain()
		}()
	}
	drain()
	wg.Wait()
}
