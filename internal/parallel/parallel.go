// Package parallel provides the bounded worker pools shared by the model
// backends (batch-prediction sharding) and the diagnosis engine (per-model
// and per-job fan-out). The helpers keep the calling goroutine working,
// never spawn more goroutines than there is work, and keep results
// deterministic: a worker writes only to the index or chunk it owns, so the
// caller's reduction order never depends on scheduling.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a parallelism knob: requested <= 0 means
// runtime.GOMAXPROCS(0), and the result is clamped to [1, n] so a pool is
// never larger than its work list.
func Workers(requested, n int) int {
	if requested <= 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	if requested > n {
		requested = n
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}

// For splits [0, n) into one contiguous chunk per worker and runs fn on
// every chunk, using the calling goroutine for the first chunk. fn must
// only touch state owned by its [lo, hi) range. workers <= 0 means
// GOMAXPROCS.
func For(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	fn(0, chunk)
	wg.Wait()
}

// Each runs fn(i) for every i in [0, n) on a bounded pool with dynamic load
// balancing: workers pull the next free index, which suits unevenly sized
// jobs such as per-model SHAP explanations. fn must only touch state owned
// by index i. workers <= 0 means GOMAXPROCS.
func Each(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	drain := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			drain()
		}()
	}
	drain()
	wg.Wait()
}

// EachCtx is Each with cooperative cancellation: once ctx is done, workers
// stop pulling new indices, already-started fn calls run to completion, and
// ctx's error is returned. All workers have exited by the time EachCtx
// returns, so no goroutine outlives the call. A nil return means fn ran for
// every index.
func EachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	drain := func() {
		for ctx.Err() == nil {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			drain()
		}()
	}
	drain()
	wg.Wait()
	return ctx.Err()
}

// ForCtx is For with cooperative cancellation. The range is cut into more
// chunks than workers (so cancellation takes effect within a chunk's worth
// of work, not a full worker share) and chunks are pulled dynamically;
// fn still owns its [lo, hi) range exclusively, so determinism is
// unchanged. Returns ctx's error once all started chunks have finished.
func ForCtx(ctx context.Context, n, workers int, fn func(lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, n)
	if workers == 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		fn(0, n)
		return ctx.Err()
	}
	// 4 chunks per worker bounds the post-cancellation overrun to ~1/4 of
	// a worker share while keeping dispatch overhead negligible.
	chunk := (n + workers*4 - 1) / (workers * 4)
	nChunks := (n + chunk - 1) / chunk
	var next atomic.Int64
	drain := func() {
		for ctx.Err() == nil {
			c := int(next.Add(1)) - 1
			if c >= nChunks {
				return
			}
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			drain()
		}()
	}
	drain()
	wg.Wait()
	return ctx.Err()
}

// Call runs fn and converts a panic into an ordinary error, so a worker
// pool can degrade (skip the failed unit of work) instead of crashing the
// process. The panic value is preserved in the error text.
func Call(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return fn()
}
