package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestWorkersClamping(t *testing.T) {
	cases := []struct {
		requested, n, min, max int
	}{
		{0, 100, 1, 100}, // GOMAXPROCS default, clamped to n
		{-3, 5, 1, 5},
		{4, 2, 2, 2}, // never more workers than work
		{1, 100, 1, 1},
		{8, 0, 1, 1}, // empty work still yields a valid pool size
	}
	for _, c := range cases {
		got := Workers(c.requested, c.n)
		if got < c.min || got > c.max {
			t.Errorf("Workers(%d, %d) = %d, want in [%d, %d]",
				c.requested, c.n, got, c.min, c.max)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 100, 1000} {
			hits := make([]int32, n)
			For(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Fatalf("For(%d, %d): bad range [%d, %d)", n, workers, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("For(%d, %d): index %d visited %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 100, 1000} {
			hits := make([]int32, n)
			Each(n, workers, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("Each(%d, %d): index %d visited %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestEachCtxCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			hits := make([]int32, n)
			if err := EachCtx(context.Background(), n, workers, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			}); err != nil {
				t.Fatalf("EachCtx(%d, %d): %v", n, workers, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("EachCtx(%d, %d): index %d visited %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestForCtxCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			hits := make([]int32, n)
			if err := ForCtx(context.Background(), n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Fatalf("ForCtx(%d, %d): bad range [%d, %d)", n, workers, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			}); err != nil {
				t.Fatalf("ForCtx(%d, %d): %v", n, workers, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("ForCtx(%d, %d): index %d visited %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestEachCtxStopsDispatchOnCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 10000
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := EachCtx(ctx, n, workers, func(i int) {
			if ran.Add(1) == 5 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// After cancel, at most the in-flight calls (one per worker) finish.
		if got := ran.Load(); got > int32(5+workers) {
			t.Errorf("workers=%d: %d calls ran after cancellation at call 5", workers, got)
		}
		cancel()
	}
}

func TestForCtxStopsDispatchOnCancel(t *testing.T) {
	const n = 100000
	ctx, cancel := context.WithCancel(context.Background())
	var covered atomic.Int64
	err := ForCtx(ctx, n, 4, func(lo, hi int) {
		covered.Add(int64(hi - lo))
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := covered.Load(); got >= n {
		t.Errorf("all %d indices covered despite cancellation in the first chunk", n)
	}
}

func TestEachCtxPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	// With >1 workers the first index may still be pulled before the ctx
	// check; the sequential path must run nothing at all.
	if err := EachCtx(ctx, 100, 1, func(i int) { ran.Add(1) }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d calls ran on a pre-cancelled context", ran.Load())
	}
}

func TestCallRecoversPanic(t *testing.T) {
	err := Call(func() error { panic("model exploded") })
	if err == nil || err.Error() != "panic: model exploded" {
		t.Fatalf("Call panic conversion: got %v", err)
	}
	if err := Call(func() error { return nil }); err != nil {
		t.Fatalf("Call of clean fn: %v", err)
	}
	sentinel := errors.New("boom")
	if err := Call(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Call error passthrough: %v", err)
	}
}

func TestForDeterministicChunkOwnership(t *testing.T) {
	// Workers write to disjoint ranges, so the assembled result must be
	// identical across pool sizes.
	const n = 513
	want := make([]int, n)
	For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			want[i] = i * i
		}
	})
	for _, workers := range []int{2, 5, 16} {
		got := make([]int, n)
		For(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = i * i
			}
		})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d differs", workers, i)
			}
		}
	}
}
