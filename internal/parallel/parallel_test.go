package parallel

import (
	"sync/atomic"
	"testing"
)

func TestWorkersClamping(t *testing.T) {
	cases := []struct {
		requested, n, min, max int
	}{
		{0, 100, 1, 100}, // GOMAXPROCS default, clamped to n
		{-3, 5, 1, 5},
		{4, 2, 2, 2}, // never more workers than work
		{1, 100, 1, 1},
		{8, 0, 1, 1}, // empty work still yields a valid pool size
	}
	for _, c := range cases {
		got := Workers(c.requested, c.n)
		if got < c.min || got > c.max {
			t.Errorf("Workers(%d, %d) = %d, want in [%d, %d]",
				c.requested, c.n, got, c.min, c.max)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 100, 1000} {
			hits := make([]int32, n)
			For(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Fatalf("For(%d, %d): bad range [%d, %d)", n, workers, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("For(%d, %d): index %d visited %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 100, 1000} {
			hits := make([]int32, n)
			Each(n, workers, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("Each(%d, %d): index %d visited %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestForDeterministicChunkOwnership(t *testing.T) {
	// Workers write to disjoint ranges, so the assembled result must be
	// identical across pool sizes.
	const n = 513
	want := make([]int, n)
	For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			want[i] = i * i
		}
	})
	for _, workers := range []int{2, 5, 16} {
		got := make([]int, n)
		For(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = i * i
			}
		})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d differs", workers, i)
			}
		}
	}
}
