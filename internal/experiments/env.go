// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4) on the simulated substrate. Each experiment is a
// function that runs the workloads, produces a structured result for
// assertions and benchmarks, and renders a text report (the figure/table
// analogue) to an io.Writer.
//
// The per-experiment index lives in DESIGN.md; EXPERIMENTS.md records
// paper-reported versus measured values.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/iosim"
	"github.com/hpc-repro/aiio/internal/logdb"
	"github.com/hpc-repro/aiio/internal/workload"
)

// Env is the shared environment of an experiment run: the simulated file
// system, the generated log database and the trained ensemble, built once
// and reused.
type Env struct {
	// Fast selects the reduced-scale configuration used by tests and the
	// default benchmarks; full scale matches the paper's workload sizes
	// more closely and takes minutes.
	Fast bool
	// Seed drives the database, the training split and the explainers.
	Seed int64
	// Params is the simulated file system (noise disabled for tuned-vs-
	// untuned comparisons to be crisp).
	Params iosim.Params
	// DBJobs is the log-database size.
	DBJobs int
	// DiagOpts is the diagnosis configuration.
	DiagOpts core.DiagnoseOptions

	mu     sync.Mutex
	ds     *darshan.Dataset
	frame  *features.Frame
	ens    *core.Ensemble
	report *core.TrainReport
	err    error
}

// NewEnv returns a ready environment. fast=true keeps every experiment
// under a few seconds; fast=false runs closer to paper scale.
func NewEnv(fast bool) *Env {
	params := iosim.DefaultParams()
	params.NoiseSigma = 0
	diag := core.DefaultDiagnoseOptions()
	e := &Env{
		Fast:     fast,
		Seed:     1,
		Params:   params,
		DiagOpts: diag,
	}
	if fast {
		e.DBJobs = 1000
		e.DiagOpts.SHAP.MaxExact = 10
		e.DiagOpts.SHAP.NSamples = 1024
	} else {
		e.DBJobs = 4000
		e.DiagOpts.SHAP.MaxExact = 12
		e.DiagOpts.SHAP.NSamples = 4096
	}
	return e
}

// Data returns the generated log database and its feature frame.
func (e *Env) Data() (*darshan.Dataset, *features.Frame, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ds == nil {
		e.ds = logdb.Generate(logdb.GenConfig{Jobs: e.DBJobs, Seed: e.Seed, Params: e.Params})
		e.frame = features.Build(e.ds)
	}
	return e.ds, e.frame, nil
}

// Ensemble returns the five-model ensemble trained on the database.
func (e *Env) Ensemble() (*core.Ensemble, *core.TrainReport, error) {
	if _, _, err := e.Data(); err != nil {
		return nil, nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ens == nil && e.err == nil {
		opts := core.DefaultTrainOptions()
		opts.Seed = e.Seed
		opts.Fast = e.Fast
		e.ens, e.report, e.err = core.TrainEnsemble(e.frame, opts)
	}
	return e.ens, e.report, e.err
}

// patternScale reduces the Section 4.1 workloads in fast mode: 256 procs is
// the paper's scale, 16 keeps tests quick.
func (e *Env) patternScale() (procDiv, blockDiv int) {
	if e.Fast {
		return 16, 4
	}
	return 1, 1
}

// scalePattern applies the environment's scale to a pattern config.
func (e *Env) scalePattern(cfg workload.IORConfig) workload.IORConfig {
	pd, bd := e.patternScale()
	return cfg.Scale(pd, bd)
}

// runIOR executes a config on the environment's file system.
func (e *Env) runIOR(cfg workload.IORConfig, name string, jobID, seed int64) (*darshan.Record, iosim.Result) {
	return cfg.Run(name, jobID, seed, e.Params)
}

// diagnose runs the merged diagnosis of a record.
func (e *Env) diagnose(rec *darshan.Record) (*core.Diagnosis, error) {
	ens, _, err := e.Ensemble()
	if err != nil {
		return nil, err
	}
	return ens.Diagnose(rec, e.DiagOpts)
}

// diagnoseBatch diagnoses many records on the engine's bounded worker pool
// (the experiments leave DiagOpts.Parallelism at 0 = GOMAXPROCS).
func (e *Env) diagnoseBatch(recs []*darshan.Record) ([]*core.Diagnosis, error) {
	ens, _, err := e.Ensemble()
	if err != nil {
		return nil, err
	}
	return ens.DiagnoseBatch(recs, e.DiagOpts)
}

// factorNames renders the first n factors as "NAME (+/-value)" strings.
func factorNames(fs []core.Factor, n int) []string {
	if n > 0 && len(fs) > n {
		fs = fs[:n]
	}
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = fmt.Sprintf("%s (%+.4f)", f.Counter, f.Contribution)
	}
	return out
}

// containsCounter reports whether id appears within the first n factors.
func containsCounter(fs []core.Factor, id darshan.CounterID, n int) bool {
	for i, f := range fs {
		if n > 0 && i >= n {
			break
		}
		if f.Counter == id {
			return true
		}
	}
	return false
}

// fprintHeader writes a section header.
func fprintHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}
