package experiments

import (
	"fmt"
	"io"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/report"
	"github.com/hpc-repro/aiio/internal/workload"
)

// pattern returns the Section 4.1 pattern by 1-based ID.
func pattern(id int) workload.Pattern {
	pats := workload.Patterns()
	for _, p := range pats {
		if p.ID == id {
			return p
		}
	}
	panic(fmt.Sprintf("experiments: no pattern %d", id))
}

// PatternResult is the outcome of one Fig. 7–12 experiment: the untuned and
// tuned runs, their merged diagnoses, and the paper's two claims checked —
// the expected counters are flagged before tuning, and the resolved counter
// stops being the dominant bottleneck afterwards.
type PatternResult struct {
	Pattern workload.Pattern
	// UntunedMiBps / TunedMiBps are the Eq. 1 performances; Speedup is
	// their ratio.
	UntunedMiBps float64
	TunedMiBps   float64
	Speedup      float64
	// UntunedDiag / TunedDiag are the merged (Average Method) diagnoses.
	UntunedDiag *core.Diagnosis
	TunedDiag   *core.Diagnosis
	// ExpectedFlagged: at least one of the pattern's expected bottleneck
	// counters appears among the untuned run's top negative factors (the
	// paper's figures list several related counters; correlated counters
	// legitimately share Shapley credit).
	ExpectedFlagged bool
	// FlaggedCounters are the expected counters actually found in the top
	// negative window.
	FlaggedCounters []darshan.CounterID
	// Resolved: no resolved counter remains the #1 bottleneck after tuning.
	Resolved bool
}

// topNegativeWindow is how deep in the bottleneck list an expected counter
// must appear (the paper's waterfall figures display the top 9 factors).
const topNegativeWindow = 6

// RunPattern executes one of the six Section 4.1 experiments.
func RunPattern(e *Env, w io.Writer, id int) (*PatternResult, error) {
	pat := pattern(id)
	res := &PatternResult{Pattern: pat}

	untunedCfg := e.scalePattern(pat.Config)
	tunedCfg := e.scalePattern(pat.TunedConfig)

	rec, runRes := e.runIOR(untunedCfg, "ior", int64(100+id), int64(40+id))
	trec, trunRes := e.runIOR(tunedCfg, "ior-tuned", int64(200+id), int64(50+id))
	res.UntunedMiBps = runRes.PerfMiBps
	res.TunedMiBps = trunRes.PerfMiBps
	if res.UntunedMiBps > 0 {
		res.Speedup = res.TunedMiBps / res.UntunedMiBps
	}

	diags, err := e.diagnoseBatch([]*darshan.Record{rec, trec})
	if err != nil {
		return nil, err
	}
	res.UntunedDiag, res.TunedDiag = diags[0], diags[1]

	bottlenecks := res.UntunedDiag.Bottlenecks()
	for _, cid := range pat.ExpectedBottlenecks {
		if containsCounter(bottlenecks, cid, topNegativeWindow) {
			res.FlaggedCounters = append(res.FlaggedCounters, cid)
		}
	}
	res.ExpectedFlagged = len(res.FlaggedCounters) > 0
	res.Resolved = true
	tunedBottlenecks := res.TunedDiag.Bottlenecks()
	for _, id := range pat.ResolvedBottlenecks {
		if len(tunedBottlenecks) > 0 && tunedBottlenecks[0].Counter == id {
			res.Resolved = false
		}
	}

	fprintHeader(w, fmt.Sprintf("%s: %s", pat.Figure, pat.Name))
	report.KV(w, "IOR config", "%s", pat.CmdLine)
	report.KV(w, "tuning", "%s", pat.Tuning)
	report.KV(w, "untuned performance", "%.2f MiB/s", res.UntunedMiBps)
	report.KV(w, "tuned performance", "%.2f MiB/s", res.TunedMiBps)
	report.KV(w, "speedup", "%.1fx", res.Speedup)
	report.KV(w, "expected bottlenecks flagged", "%v", res.ExpectedFlagged)
	report.KV(w, "bottleneck resolved by tuning", "%v", res.Resolved)
	renderDiagnosis(w, "untuned diagnosis (Average Method)", res.UntunedDiag)
	renderDiagnosis(w, "tuned diagnosis (Average Method)", res.TunedDiag)
	return res, nil
}

// renderDiagnosis draws the waterfall of the merged diagnosis.
func renderDiagnosis(w io.Writer, title string, d *core.Diagnosis) {
	factors := d.TopFactors(9)
	bars := make([]report.Bar, len(factors))
	for i, f := range factors {
		bars[i] = report.Bar{Label: f.Counter.String(), Value: f.Contribution}
	}
	report.HBars(w, title, bars, 24)
}

// Figure6Result is the five-per-model diagnosis of one job (the paper uses
// the sequential-read job of Fig. 8a; real performance 412 MiB/s).
type Figure6Result struct {
	ActualMiBps float64
	// PerModelMiBps maps model name to its prediction (the captions of
	// Fig. 6a–e).
	PerModelMiBps map[string]float64
	Diag          *core.Diagnosis
}

// RunFigure6 diagnoses the Fig. 8a job with each of the five models and
// shows the per-model waterfalls plus the merged view.
func RunFigure6(e *Env, w io.Writer) (*Figure6Result, error) {
	cfg := e.scalePattern(pattern(2).Config)
	rec, runRes := e.runIOR(cfg, "ior", 600, 66)
	diag, err := e.diagnose(rec)
	if err != nil {
		return nil, err
	}
	res := &Figure6Result{
		ActualMiBps:   runRes.PerfMiBps,
		PerModelMiBps: map[string]float64{},
		Diag:          diag,
	}
	fprintHeader(w, "Figure 6: diagnosis results of the five models")
	report.KV(w, "real performance", "%.2f MiB/s", res.ActualMiBps)
	for _, md := range diag.PerModel {
		res.PerModelMiBps[md.Name] = md.PredictedMiBps
		factors := md.Factors(diag.Record)
		if len(factors) > 7 {
			factors = factors[:7]
		}
		bars := make([]report.Bar, len(factors))
		for i, f := range factors {
			bars[i] = report.Bar{Label: f.Counter.String(), Value: f.Contribution}
		}
		report.HBars(w, fmt.Sprintf("%s (predicted %.0f MiB/s)", md.Name, md.PredictedMiBps), bars, 20)
	}
	renderDiagnosis(w, "merged (Average Method, as Fig. 8a)", diag)
	return res, nil
}
