package experiments

import (
	"fmt"
	"io"

	"github.com/hpc-repro/aiio/internal/apps"
	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/iosim"
	"github.com/hpc-repro/aiio/internal/report"
)

// AppResult is the outcome of a Section 4.2 real-application experiment.
type AppResult struct {
	Name         string
	Figure       string
	UntunedMiBps float64
	TunedMiBps   float64
	Speedup      float64
	UntunedDiag  *core.Diagnosis
	TunedDiag    *core.Diagnosis
	// ExpectedFlagged: the counter the paper's diagnosis highlights
	// appears among the untuned top negative factors.
	ExpectedFlagged bool
}

// runApp is the shared Section 4.2 harness.
func (e *Env) runApp(w io.Writer, name, figure, tuning string,
	untuned, tuned func() (*darshan.Record, iosim.Result),
	expected []darshan.CounterID, paperSpeedup string) (*AppResult, error) {

	rec, runRes := untuned()
	trec, trunRes := tuned()
	res := &AppResult{
		Name: name, Figure: figure,
		UntunedMiBps: runRes.PerfMiBps,
		TunedMiBps:   trunRes.PerfMiBps,
	}
	if res.UntunedMiBps > 0 {
		res.Speedup = res.TunedMiBps / res.UntunedMiBps
	}
	diags, err := e.diagnoseBatch([]*darshan.Record{rec, trec})
	if err != nil {
		return nil, err
	}
	res.UntunedDiag, res.TunedDiag = diags[0], diags[1]
	bottlenecks := res.UntunedDiag.Bottlenecks()
	res.ExpectedFlagged = false
	for _, id := range expected {
		if containsCounter(bottlenecks, id, topNegativeWindow) {
			res.ExpectedFlagged = true
		}
	}

	fprintHeader(w, fmt.Sprintf("%s: %s", figure, name))
	report.KV(w, "tuning", "%s", tuning)
	report.KV(w, "untuned performance", "%.2f MiB/s", res.UntunedMiBps)
	report.KV(w, "tuned performance", "%.2f MiB/s", res.TunedMiBps)
	report.KV(w, "speedup", "%.2fx (paper: %s)", res.Speedup, paperSpeedup)
	report.KV(w, "expected bottleneck flagged", "%v", res.ExpectedFlagged)
	renderDiagnosis(w, "untuned diagnosis (Average Method)", res.UntunedDiag)
	renderDiagnosis(w, "tuned diagnosis (Average Method)", res.TunedDiag)
	return res, nil
}

// RunFigure13 reproduces the E2E experiment (paper: 3.28 → 482.22 MiB/s,
// 146x).
func RunFigure13(e *Env, w io.Writer) (*AppResult, error) {
	cfg := apps.PaperE2E()
	tuned := apps.PaperE2ETuned()
	if e.Fast {
		cfg = cfg.Scale(8)
	} else {
		cfg = cfg.Scale(2) // full (1024,1024,512) means 4M synced writes
	}
	return e.runApp(w, "E2E (write_3d_nc4)", "Figure 13",
		"match the data size to the writes so collective I/O merges them",
		func() (*darshan.Record, iosim.Result) { return cfg.Run(1301, 71, e.Params) },
		func() (*darshan.Record, iosim.Result) { return tuned.Run(1302, 72, e.Params) },
		[]darshan.CounterID{darshan.PosixSizeWrite100_1K, darshan.PosixWrites,
			darshan.PosixStride1Count},
		"146x")
}

// RunFigure14 reproduces the OpenPMD experiment (paper: 713.65 → 1303.27
// MiB/s, 1.82x).
func RunFigure14(e *Env, w io.Writer) (*AppResult, error) {
	cfg := apps.PaperOpenPMD()
	tuned := apps.PaperOpenPMDTuned()
	if e.Fast {
		cfg = cfg.Scale(8)
		tuned = tuned.Scale(8)
	}
	return e.runApp(w, "OpenPMD (h5bench kernel)", "Figure 14",
		"collective I/O + 4 MiB stripe size",
		func() (*darshan.Record, iosim.Result) { return cfg.Run(1401, 73, e.Params) },
		func() (*darshan.Record, iosim.Result) { return tuned.Run(1402, 74, e.Params) },
		[]darshan.CounterID{darshan.PosixSizeWrite100_1K, darshan.PosixWrites,
			darshan.LustreStripeSize},
		"1.82x")
}

// RunFigure15 reproduces the DASSA experiment (paper: 695.91 → 1482.06
// MiB/s, 2.1x).
func RunFigure15(e *Env, w io.Writer) (*AppResult, error) {
	cfg := apps.PaperDASSA()
	tuned := apps.PaperDASSATuned()
	if e.Fast {
		cfg = cfg.Scale(2)
		tuned = tuned.Scale(2)
	}
	return e.runApp(w, "DASSA (xcorr earthquake search)", "Figure 15",
		"merge the 21 one-minute files into a single file",
		func() (*darshan.Record, iosim.Result) { return cfg.Run(1501, 75, e.Params) },
		func() (*darshan.Record, iosim.Result) { return tuned.Run(1502, 76, e.Params) },
		// The paper highlights POSIX_OPENS; our DASSA kernel's untuned run
		// has two correlated mechanisms the file merge resolves at once —
		// per-file metadata (opens/stats) and the strided channel slices
		// (seeks/strides) — and Shapley credit moves between them across
		// training seeds.
		[]darshan.CounterID{darshan.PosixOpens, darshan.PosixStats,
			darshan.PosixSeeks, darshan.PosixStride1Count},
		"2.1x")
}
