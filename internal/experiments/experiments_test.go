package experiments

import (
	"io"
	"strings"
	"sync"
	"testing"
)

var (
	envOnce sync.Once
	testEnv *Env
)

// sharedEnv trains the ensemble once for the whole package.
func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		testEnv = NewEnv(true)
	})
	if _, _, err := testEnv.Ensemble(); err != nil {
		t.Fatalf("ensemble: %v", err)
	}
	return testEnv
}

func TestTable1(t *testing.T) {
	e := sharedEnv(t)
	var sb strings.Builder
	res, err := RunTable1(e, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalJobs != e.DBJobs {
		t.Errorf("TotalJobs = %d", res.TotalJobs)
	}
	if res.AvgSparsity <= 0 || res.AvgSparsity >= 1 {
		t.Errorf("sparsity = %v", res.AvgSparsity)
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Error("report missing header")
	}
	// Year proportions roughly follow Table 1: 2019 and 2021 dominate.
	if res.Years[2019] < res.Years[2022] || res.Years[2021] < res.Years[2022] {
		t.Errorf("year distribution off: %v", res.Years)
	}
}

func TestTable2MergingBeatsWorstSingle(t *testing.T) {
	e := sharedEnv(t)
	res, err := RunTable2(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictionImprovement <= 1 {
		t.Errorf("prediction improvement %.2fx, want > 1x (paper: 3.11x)", res.PredictionImprovement)
	}
	if res.DiagnosisImprovement <= 1 {
		t.Errorf("diagnosis improvement %.2fx, want > 1x (paper: 2.19x)", res.DiagnosisImprovement)
	}
}

func TestTable3(t *testing.T) {
	var sb strings.Builder
	pats, err := RunTable3(NewEnv(true), &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 6 {
		t.Errorf("%d patterns", len(pats))
	}
	if !strings.Contains(sb.String(), "ior -w -t 1k -b 1m -Y") {
		t.Error("Table 3 missing the Fig. 7 config")
	}
}

func TestFigure1GroupVsJob(t *testing.T) {
	e := sharedEnv(t)
	res, err := RunFigure1(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMemberAbsErr <= res.GroupAbsErr {
		t.Error("per-member error does not exceed the group average (Fig. 1a)")
	}
	if res.AIIOZeroAttributions != 0 {
		t.Errorf("AIIO assigned impact to %d zero counters", res.AIIOZeroAttributions)
	}
	// Gauge's cluster-mean background is expected to be non-robust; allow 0
	// only if the member had no zero counters at all (checked in gauge's
	// own tests).
}

func TestFigure4Transform(t *testing.T) {
	e := sharedEnv(t)
	res, err := RunFigure4(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.TransformedMax-res.TransformedMin >= res.RawMax-res.RawMin {
		t.Error("transform did not compress the range")
	}
	if res.TransformedMax > 8 {
		t.Errorf("transformed max %.2f implausibly high", res.TransformedMax)
	}
}

func TestFigure5Scatter(t *testing.T) {
	e := sharedEnv(t)
	corr, err := RunFigure5(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// The relationship is neither perfectly linear nor absent.
	if corr <= -1 || corr >= 1 {
		t.Errorf("correlation = %v", corr)
	}
}

func TestFigure6FiveModels(t *testing.T) {
	e := sharedEnv(t)
	var sb strings.Builder
	res, err := RunFigure6(e, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerModelMiBps) != 5 {
		t.Errorf("got %d model predictions", len(res.PerModelMiBps))
	}
	for name, p := range res.PerModelMiBps {
		if p <= 0 {
			t.Errorf("model %s predicted %v MiB/s", name, p)
		}
	}
	if !res.Diag.IsRobust() {
		t.Error("Figure 6 diagnosis not robust")
	}
	if !strings.Contains(sb.String(), "merged") {
		t.Error("merged view missing")
	}
}

func TestPatternsEndToEnd(t *testing.T) {
	e := sharedEnv(t)
	for id := 1; id <= 6; id++ {
		id := id
		t.Run(pattern(id).Figure, func(t *testing.T) {
			res, err := RunPattern(e, io.Discard, id)
			if err != nil {
				t.Fatal(err)
			}
			if res.Speedup <= 1 {
				t.Errorf("tuning gave %.2fx", res.Speedup)
			}
			if !res.UntunedDiag.IsRobust() || !res.TunedDiag.IsRobust() {
				t.Error("diagnosis not robust")
			}
			if !res.ExpectedFlagged {
				t.Errorf("expected bottlenecks %v not all flagged; top: %v",
					res.Pattern.ExpectedBottlenecks,
					factorNames(res.UntunedDiag.Bottlenecks(), topNegativeWindow))
			}
		})
	}
}

func TestAppsEndToEnd(t *testing.T) {
	e := sharedEnv(t)
	cases := []struct {
		name string
		run  func(*Env, io.Writer) (*AppResult, error)
		min  float64
	}{
		{"E2E", RunFigure13, 10},      // paper 146x; scaled-down floor 10x
		{"OpenPMD", RunFigure14, 1.2}, // paper 1.82x
		{"DASSA", RunFigure15, 1.2},   // paper 2.1x
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := tc.run(e, io.Discard)
			if err != nil {
				t.Fatal(err)
			}
			if res.Speedup < tc.min {
				t.Errorf("%s speedup %.2fx < %.2fx", tc.name, res.Speedup, tc.min)
			}
			if !res.ExpectedFlagged {
				t.Errorf("%s expected bottleneck not flagged; top: %v", tc.name,
					factorNames(res.UntunedDiag.Bottlenecks(), topNegativeWindow))
			}
			if !res.UntunedDiag.IsRobust() {
				t.Error("diagnosis not robust")
			}
		})
	}
}

func TestFigure16LossCurve(t *testing.T) {
	e := sharedEnv(t)
	res, err := RunFigure16(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EvalLoss) < 2 {
		t.Fatal("loss curve too short")
	}
	if res.EvalLoss[len(res.EvalLoss)-1] >= res.EvalLoss[0] {
		t.Error("eval loss did not improve over training")
	}
}

func TestFigure17WebService(t *testing.T) {
	e := sharedEnv(t)
	res, err := RunFigure17(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Models != 5 {
		t.Errorf("service exposed %d models", res.Models)
	}
	if !res.Robust {
		t.Error("service diagnosis not robust")
	}
	if res.Bottlenecks == 0 {
		t.Error("service found no bottlenecks for the canonical slow job")
	}
}

func TestExtensionClassification(t *testing.T) {
	e := sharedEnv(t)
	res, err := RunExtensionClassification(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Accuracy < 0.8 {
		t.Errorf("classifier accuracy %.3f < 0.8", res.Metrics.Accuracy)
	}
	if res.MacroF1 < 0.7 {
		t.Errorf("macro F1 %.3f < 0.7", res.MacroF1)
	}
	if res.AIIOAgreement < 0.25 {
		t.Errorf("AIIO top-counter agreement %.3f implausibly low", res.AIIOAgreement)
	}
}

func TestAblationRules(t *testing.T) {
	e := sharedEnv(t)
	res, err := RunAblationRules(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Patterns != 6 {
		t.Fatalf("ran %d patterns", res.Patterns)
	}
	if res.Agreements < 3 {
		t.Errorf("rules and AIIO agree on only %d/6 patterns", res.Agreements)
	}
}

func TestAblationPDP(t *testing.T) {
	e := sharedEnv(t)
	res, err := RunAblationPDP(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.SHAPZeroAttributions != 0 {
		t.Errorf("SHAP attributed impact to %d zero counters", res.SHAPZeroAttributions)
	}
	if res.PDPZeroAttributions == 0 {
		t.Error("PDP was unexpectedly robust; the baseline contrast is gone")
	}
	if res.LinearRMSE <= res.GBDTRMSE {
		t.Errorf("linear surrogate RMSE %.4f not worse than lightgbm %.4f",
			res.LinearRMSE, res.GBDTRMSE)
	}
}

func TestAblationCrossPlatform(t *testing.T) {
	e := sharedEnv(t)
	res, err := RunAblationCrossPlatform(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degradation < 1.3 {
		t.Errorf("cross-platform degradation %.2fx; expected clearly worse on the flash system", res.Degradation)
	}
}

func TestAblationTreeSHAP(t *testing.T) {
	e := sharedEnv(t)
	res, err := RunAblationTreeSHAP(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDrift > 0.1 {
		t.Errorf("TreeSHAP and Kernel SHAP disagree by %.4f", res.MaxDrift)
	}
	if res.Speedup < 2 {
		t.Errorf("TreeSHAP speedup only %.1fx", res.Speedup)
	}
}

func TestExtensionTuningAdvisor(t *testing.T) {
	e := sharedEnv(t)
	res, err := RunExtensionTuningAdvisor(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 4 {
		t.Fatalf("ran %d cases", len(res.Cases))
	}
	if res.CorrectTop < 3 {
		for _, c := range res.Cases {
			t.Logf("%s: expected %s, top %s (correct=%v)", c.Name, c.ExpectedAction, c.TopAction, c.Correct)
		}
		t.Errorf("advisor correct on only %d/4 cases", res.CorrectTop)
	}
}

func TestExtensionMPIIO(t *testing.T) {
	e := sharedEnv(t)
	res, err := RunExtensionMPIIO(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.PosixRMSE <= 0 || res.ExtendedRMSE <= 0 {
		t.Fatalf("invalid RMSEs: %+v", res)
	}
	// MPI_File_sync is invisible to the 45 POSIX counters, so the extended
	// model must be clearly better on the sync-mixed workload family.
	if res.Improvement < 1.3 {
		t.Errorf("MPIIO counters improved RMSE only %.2fx (%.4f -> %.4f)",
			res.Improvement, res.PosixRMSE, res.ExtendedRMSE)
	}
}

func TestAblationUnseenApp(t *testing.T) {
	e := sharedEnv(t)
	res, err := RunAblationUnseenApp(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Distribution shift must be visible: the unseen family is harder than
	// the in-mixture eval set.
	if res.UnseenNoES <= res.InDistNoES {
		t.Errorf("unseen family not harder: %.4f vs %.4f", res.UnseenNoES, res.InDistNoES)
	}
	// Early stopping must actually stop early on the long budget...
	if res.EpochsES >= res.EpochsNoES {
		t.Errorf("early stopping never triggered: %d vs %d epochs", res.EpochsES, res.EpochsNoES)
	}
	// ...without a catastrophic accuracy loss on the unseen family.
	if res.UnseenES > res.UnseenNoES*1.6 {
		t.Errorf("early stopping cost too much on unseen jobs: %.4f vs %.4f",
			res.UnseenES, res.UnseenNoES)
	}
}
