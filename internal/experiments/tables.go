package experiments

import (
	"bytes"
	"fmt"
	"io"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/report"
	"github.com/hpc-repro/aiio/internal/workload"
)

// Table1Result summarizes the generated log database (the stand-in for the
// paper's Table 1: 825 GB, 6,647,219 Cori jobs across 2019–2022).
type Table1Result struct {
	Years       map[int]int
	TotalJobs   int
	TotalBytes  int64 // serialized text-log size
	AvgSparsity float64
}

// RunTable1 generates and summarizes the database.
func RunTable1(e *Env, w io.Writer) (*Table1Result, error) {
	ds, _, err := e.Data()
	if err != nil {
		return nil, err
	}
	res := &Table1Result{Years: ds.YearSummary(), TotalJobs: ds.Len(),
		AvgSparsity: ds.AverageSparsity()}
	var buf bytes.Buffer
	if err := darshan.WriteDataset(&buf, ds); err != nil {
		return nil, err
	}
	res.TotalBytes = int64(buf.Len())

	fprintHeader(w, "Table 1: I/O log database")
	rows := [][]string{}
	for _, y := range []int{2019, 2020, 2021, 2022} {
		rows = append(rows, []string{fmt.Sprint(y), fmt.Sprint(res.Years[y])})
	}
	rows = append(rows, []string{"SUM", fmt.Sprint(res.TotalJobs)})
	report.Table(w, []string{"Year", "# of Jobs"}, rows)
	report.KV(w, "serialized size", "%d bytes", res.TotalBytes)
	report.KV(w, "average sparsity", "%.4f (paper: 0.2379)", res.AvgSparsity)
	return res, nil
}

// Table2Result carries the reproduced Table 2 plus the paper's two headline
// improvement factors.
type Table2Result struct {
	Table *core.Table2
	// PredictionImprovement is bestMerged vs worstSingle on the prediction
	// RMSE (the paper reports up to 3.11x for the Closest Method).
	PredictionImprovement float64
	// DiagnosisImprovement is the same for the diagnosis RMSE (paper: up
	// to 2.19x).
	DiagnosisImprovement float64
}

// RunTable2 trains the five models and evaluates prediction and diagnosis
// RMSE with both merging methods.
func RunTable2(e *Env, w io.Writer) (*Table2Result, error) {
	_, frame, err := e.Data()
	if err != nil {
		return nil, err
	}
	ens, _, err := e.Ensemble()
	if err != nil {
		return nil, err
	}
	// Evaluate on the eval half of the same split used in training.
	_, eval := frame.Split(e.Seed, 0.5)
	maxJobs := 120
	if !e.Fast {
		maxJobs = 400
	}
	table, err := core.EvaluateTable2(ens, eval, maxJobs, e.DiagOpts)
	if err != nil {
		return nil, err
	}
	res := &Table2Result{Table: table}

	worstPred, worstDiag := 0.0, 0.0
	for _, name := range core.ModelNames() {
		r := table.Row(name)
		if r.PredictionRMSE > worstPred {
			worstPred = r.PredictionRMSE
		}
		if r.DiagnosisRMSE > worstDiag {
			worstDiag = r.DiagnosisRMSE
		}
	}
	bestMergedPred := table.Row("closest").PredictionRMSE
	if a := table.Row("average").PredictionRMSE; a < bestMergedPred {
		bestMergedPred = a
	}
	bestMergedDiag := table.Row("closest").DiagnosisRMSE
	if a := table.Row("average").DiagnosisRMSE; a < bestMergedDiag {
		bestMergedDiag = a
	}
	res.PredictionImprovement = worstPred / bestMergedPred
	res.DiagnosisImprovement = worstDiag / bestMergedDiag

	fprintHeader(w, "Table 2: RMSE of prediction and diagnosis functions")
	rows := [][]string{}
	for _, r := range table.Rows {
		rows = append(rows, []string{r.Name,
			fmt.Sprintf("%.4f", r.PredictionRMSE),
			fmt.Sprintf("%.4f", r.DiagnosisRMSE)})
	}
	report.Table(w, []string{"Model", "Prediction Func.", "Diagnosis Func."}, rows)
	report.KV(w, "jobs diagnosed", "%d", table.JobsEvaluated)
	report.KV(w, "prediction improvement", "%.2fx (paper: up to 3.11x)", res.PredictionImprovement)
	report.KV(w, "diagnosis improvement", "%.2fx (paper: up to 2.19x)", res.DiagnosisImprovement)
	return res, nil
}

// RunTable3 verifies and prints the IOR configurations of Table 3.
func RunTable3(e *Env, w io.Writer) ([]workload.Pattern, error) {
	pats := workload.Patterns()
	fprintHeader(w, "Table 3: IOR configurations")
	rows := [][]string{}
	for _, p := range pats {
		if _, err := workload.ParseIORFlags(p.CmdLine); err != nil {
			return nil, fmt.Errorf("experiments: pattern %d cmdline: %w", p.ID, err)
		}
		rows = append(rows, []string{p.Figure, p.CmdLine, p.Name})
	}
	report.Table(w, []string{"Figure", "IOR Configuration", "Pattern"}, rows)
	return pats, nil
}
