package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"time"

	"github.com/hpc-repro/aiio/internal/apps"
	"github.com/hpc-repro/aiio/internal/classify"
	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/gbdt"
	"github.com/hpc-repro/aiio/internal/iosim"
	"github.com/hpc-repro/aiio/internal/linalg"
	"github.com/hpc-repro/aiio/internal/logdb"
	"github.com/hpc-repro/aiio/internal/mlp"
	"github.com/hpc-repro/aiio/internal/mpiio"
	"github.com/hpc-repro/aiio/internal/pdp"
	"github.com/hpc-repro/aiio/internal/report"
	"github.com/hpc-repro/aiio/internal/rules"
	"github.com/hpc-repro/aiio/internal/shap"
	"github.com/hpc-repro/aiio/internal/tune"
)

// ClassificationResult evaluates the paper's future-work formulation:
// diagnosis as classification over tagged bottlenecks, with recall and
// precision, compared against AIIO's regression+SHAP diagnosis projected
// onto the same classes.
type ClassificationResult struct {
	Metrics *classify.Metrics
	MacroF1 float64
	// AIIOAgreement is the fraction of test jobs where AIIO's top
	// bottleneck counter maps to the true class.
	AIIOAgreement float64
	AIIOJobs      int
}

// RunExtensionClassification trains and evaluates the tagged classifier.
func RunExtensionClassification(e *Env, w io.Writer) (*ClassificationResult, error) {
	trainN, testN, aiioN := 700, 250, 36
	if !e.Fast {
		trainN, testN, aiioN = 2000, 600, 120
	}
	train := classify.Generate(trainN, e.Seed+100, e.Params)
	test := classify.Generate(testN, e.Seed+200, e.Params)

	clf, err := classify.Train(train, classify.DefaultConfig())
	if err != nil {
		return nil, err
	}
	pred := clf.PredictBatch(test.Frame.X)
	res := &ClassificationResult{Metrics: classify.Evaluate(pred, test.Labels)}
	res.MacroF1 = res.Metrics.MacroF1()

	// AIIO's diagnosis projected onto the class space, on a subsample
	// (SHAP per job is the expensive part).
	ens, _, err := e.Ensemble()
	if err != nil {
		return nil, err
	}
	n := aiioN
	if n > test.Frame.Len() {
		n = test.Frame.Len()
	}
	diags, err := ens.DiagnoseBatch(test.Frame.Records[:n], e.DiagOpts)
	if err != nil {
		return nil, err
	}
	agree := 0
	for i, diag := range diags {
		got := classify.ClassNone
		if b := diag.Bottlenecks(); len(b) > 0 {
			got = classify.ClassOfCounter(b[0].Counter)
		}
		if got == test.Labels[i] {
			agree++
		}
	}
	res.AIIOJobs = aiioN
	res.AIIOAgreement = float64(agree) / float64(aiioN)

	fprintHeader(w, "Extension: diagnosis as classification (paper §5 future work)")
	report.KV(w, "train/test jobs", "%d / %d", trainN, testN)
	report.KV(w, "accuracy", "%.3f", res.Metrics.Accuracy)
	report.KV(w, "macro F1", "%.3f", res.MacroF1)
	rows := [][]string{}
	for c := classify.Class(0); c < classify.NumClasses; c++ {
		rows = append(rows, []string{c.String(),
			fmt.Sprintf("%.3f", res.Metrics.Precision[c]),
			fmt.Sprintf("%.3f", res.Metrics.Recall[c])})
	}
	report.Table(w, []string{"Class", "Precision", "Recall"}, rows)
	report.KV(w, "AIIO top-counter agreement", "%.3f over %d jobs", res.AIIOAgreement, res.AIIOJobs)
	return res, nil
}

// RulesComparisonResult contrasts the static-rule baseline with AIIO on the
// six patterns.
type RulesComparisonResult struct {
	// Agreements counts patterns where the expected rule fired AND AIIO
	// flagged the matching counter.
	Agreements int
	Patterns   int
}

// RunAblationRules compares Drishti-style static rules with AIIO's learned
// diagnosis on the Section 4.1 patterns.
func RunAblationRules(e *Env, w io.Writer) (*RulesComparisonResult, error) {
	res := &RulesComparisonResult{}
	fprintHeader(w, "Ablation: static rules (Drishti-style) vs AIIO")
	rows := [][]string{}
	for id := 1; id <= 6; id++ {
		pat := pattern(id)
		cfg := e.scalePattern(pat.Config)
		rec, _ := e.runIOR(cfg, "ior", int64(900+id), int64(90+id))
		findings := rules.Diagnose(rec)
		diag, err := e.diagnose(rec)
		if err != nil {
			return nil, err
		}
		ruleNames := make([]string, len(findings))
		ruleCounters := map[int32]bool{}
		for i, f := range findings {
			ruleNames[i] = f.Rule
			ruleCounters[int32(f.Counter)] = true
		}
		aiioTop := "-"
		agree := false
		if b := diag.Bottlenecks(); len(b) > 0 {
			aiioTop = b[0].Counter.String()
			for _, f := range b[:minInt(len(b), topNegativeWindow)] {
				if ruleCounters[int32(f.Counter)] {
					agree = true
				}
			}
		}
		if agree {
			res.Agreements++
		}
		res.Patterns++
		rows = append(rows, []string{pat.Figure,
			fmt.Sprintf("%d rules", len(findings)), aiioTop, fmt.Sprint(agree)})
	}
	report.Table(w, []string{"Pattern", "Rules fired", "AIIO top bottleneck", "Agree"}, rows)
	report.KV(w, "agreement", "%d/%d patterns", res.Agreements, res.Patterns)
	return res, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// PDPResult shows the traditional-interpretation baselines' failure modes.
type PDPResult struct {
	// PDPZeroAttributions counts zero-valued counters the PDP attributed
	// impact to (non-robust by construction).
	PDPZeroAttributions int
	// SHAPZeroAttributions is always 0 (the robustness property).
	SHAPZeroAttributions int
	// LinearRMSE vs GBDTRMSE on the eval split.
	LinearRMSE float64
	GBDTRMSE   float64
}

// RunAblationPDP runs the PDP and linear-surrogate baselines against the
// LightGBM-variant model and AIIO's SHAP diagnosis.
func RunAblationPDP(e *Env, w io.Writer) (*PDPResult, error) {
	_, frame, err := e.Data()
	if err != nil {
		return nil, err
	}
	ens, rep, err := e.Ensemble()
	if err != nil {
		return nil, err
	}
	model := ens.Model(core.NameLightGBM)

	train, eval := frame.Split(e.Seed, 0.5)
	px, err := pdp.New(model.PredictBatch, train.X, pdp.DefaultConfig())
	if err != nil {
		return nil, err
	}
	rec, _ := e.runIOR(e.scalePattern(pattern(1).Config), "ior", 950, 95)
	x := features.TransformRecord(rec)

	res := &PDPResult{}
	phiPDP := px.Explain(x)
	shapEx := shap.New(model.PredictBatch, nil, e.DiagOpts.SHAP).Explain(x)
	for j := range x {
		if x[j] != 0 {
			continue
		}
		if math.Abs(phiPDP[j]) > 1e-12 {
			res.PDPZeroAttributions++
		}
		if shapEx.Phi[j] != 0 {
			res.SHAPZeroAttributions++
		}
	}

	lin, err := pdp.FitLinear(train.X, train.Y, 1e-6)
	if err != nil {
		return nil, err
	}
	pred := make([]float64, eval.Len())
	for i := 0; i < eval.Len(); i++ {
		pred[i] = lin.Predict(eval.X.Row(i))
	}
	res.LinearRMSE = features.RMSE(pred, eval.Y)
	for _, m := range rep.Models {
		if m.Name == core.NameLightGBM {
			res.GBDTRMSE = m.PredictionRMSE
		}
	}

	fprintHeader(w, "Ablation: PDP / linear surrogate vs SHAP (paper §3.3)")
	report.KV(w, "PDP zero-counter attributions", "%d (non-robust)", res.PDPZeroAttributions)
	report.KV(w, "SHAP zero-counter attributions", "%d (robust)", res.SHAPZeroAttributions)
	report.KV(w, "linear surrogate RMSE", "%.4f", res.LinearRMSE)
	report.KV(w, "lightgbm RMSE", "%.4f", res.GBDTRMSE)
	return res, nil
}

// CrossPlatformResult quantifies the paper's portability limitation: models
// trained on one system's logs do not transfer to another system.
type CrossPlatformResult struct {
	// HomeRMSE is the eval RMSE on the training system; AwayRMSE on a
	// flash-based system with very different cost structure.
	HomeRMSE, AwayRMSE float64
	Degradation        float64
}

// flashParams models an NVMe-backed system: far higher request rates, no
// seek penalty to speak of, faster metadata.
func flashParams(base iosim.Params) iosim.Params {
	p := base
	p.OSTBandwidth *= 4
	p.OSTCommitIOPS *= 30
	p.OSTWriteIOPS *= 10
	p.OSTReadIOPS *= 5
	p.OSTSeekPenalty /= 20
	p.MDSOpsPerSec *= 8
	p.OpenLatency /= 4
	p.FileOverhead /= 4
	return p
}

// RunAblationCrossPlatform evaluates the home-trained ensemble on logs from
// a simulated flash system (the paper's "models of a system are not
// portable to another system" limitation).
func RunAblationCrossPlatform(e *Env, w io.Writer) (*CrossPlatformResult, error) {
	_, frame, err := e.Data()
	if err != nil {
		return nil, err
	}
	ens, _, err := e.Ensemble()
	if err != nil {
		return nil, err
	}
	_, homeEval := frame.Split(e.Seed, 0.5)

	awayJobs := 400
	if !e.Fast {
		awayJobs = 1200
	}
	awayDS := logdb.Generate(logdb.GenConfig{Jobs: awayJobs, Seed: e.Seed + 999,
		Params: flashParams(e.Params)})
	away := features.Build(awayDS)

	res := &CrossPlatformResult{}
	evalRMSE := func(f *features.Frame) float64 {
		// Closest-style oracle would hide the effect; use the best single
		// model (LightGBM) as the paper's per-system model.
		model := ens.Model(core.NameLightGBM)
		return features.RMSE(model.PredictBatch(f.X), f.Y)
	}
	res.HomeRMSE = evalRMSE(homeEval)
	res.AwayRMSE = evalRMSE(away)
	if res.HomeRMSE > 0 {
		res.Degradation = res.AwayRMSE / res.HomeRMSE
	}

	fprintHeader(w, "Ablation: cross-platform portability (paper §1 limitation)")
	report.KV(w, "home-system eval RMSE", "%.4f", res.HomeRMSE)
	report.KV(w, "flash-system eval RMSE", "%.4f", res.AwayRMSE)
	report.KV(w, "degradation", "%.2fx", res.Degradation)
	return res, nil
}

// TreeSHAPSpeedResult compares the exact TreeSHAP fast path against sampled
// Kernel SHAP on the boosted models.
type TreeSHAPSpeedResult struct {
	TreeSHAPPerJob   time.Duration
	KernelSHAPPerJob time.Duration
	Speedup          float64
	MaxDrift         float64
}

// RunAblationTreeSHAP measures the TreeSHAP/Kernel SHAP trade-off.
func RunAblationTreeSHAP(e *Env, w io.Writer) (*TreeSHAPSpeedResult, error) {
	ens, _, err := e.Ensemble()
	if err != nil {
		return nil, err
	}
	gm, ok := core.TreeModel(ens.Model(core.NameLightGBM))
	if !ok {
		return nil, fmt.Errorf("experiments: lightgbm is not a tree model")
	}
	rec, _ := e.runIOR(e.scalePattern(pattern(1).Config), "ior", 960, 96)
	x := features.TransformRecord(rec)

	const reps = 10
	tree := shap.NewTree(gm)
	start := time.Now()
	var tEx shap.Explanation
	for i := 0; i < reps; i++ {
		tEx = tree.Explain(x, nil)
	}
	res := &TreeSHAPSpeedResult{TreeSHAPPerJob: time.Since(start) / reps}

	kernel := shap.New(gm.PredictBatch, nil, e.DiagOpts.SHAP)
	start = time.Now()
	var kEx shap.Explanation
	for i := 0; i < reps; i++ {
		kEx = kernel.Explain(x)
	}
	res.KernelSHAPPerJob = time.Since(start) / reps
	if res.TreeSHAPPerJob > 0 {
		res.Speedup = float64(res.KernelSHAPPerJob) / float64(res.TreeSHAPPerJob)
	}
	for j := range tEx.Phi {
		if d := math.Abs(tEx.Phi[j] - kEx.Phi[j]); d > res.MaxDrift {
			res.MaxDrift = d
		}
	}

	fprintHeader(w, "Ablation: TreeSHAP (exact) vs Kernel SHAP (sampled)")
	report.KV(w, "TreeSHAP per job", "%s", res.TreeSHAPPerJob)
	report.KV(w, "Kernel SHAP per job", "%s", res.KernelSHAPPerJob)
	report.KV(w, "speedup", "%.0fx", res.Speedup)
	report.KV(w, "max |Δφ|", "%.5f", res.MaxDrift)
	return res, nil
}

// TuningAdvisorResult closes the diagnose→tune loop the paper performs by
// hand: for each Section 4.1/4.2 case, the advisor's top recommendation is
// checked against the tuning the paper applied, and its model-predicted
// gain is compared with the simulator-measured speedup of that tuning.
type TuningAdvisorResult struct {
	Cases []TuningCase
	// CorrectTop counts cases where the expected action is the advisor's
	// top recommendation (or within the top two).
	CorrectTop int
}

// TuningCase is one advised workload.
type TuningCase struct {
	Name           string
	ExpectedAction string
	TopAction      string
	PredictedGain  float64
	MeasuredGain   float64
	Correct        bool
}

// RunExtensionTuningAdvisor evaluates the automatic tuning advisor.
func RunExtensionTuningAdvisor(e *Env, w io.Writer) (*TuningAdvisorResult, error) {
	ens, _, err := e.Ensemble()
	if err != nil {
		return nil, err
	}
	advisor := tune.New(ens)
	res := &TuningAdvisorResult{}

	// Each case accepts any of the actions in the paper's tuning chain for
	// that pattern (e.g. random 1 KiB writes are fixed by sequentializing
	// AND by enlarging the requests; the chain ends at the larger size).
	cases := []struct {
		name     string
		id       int
		expected []string
	}{
		{"Fig. 7 small synced writes", 1, []string{"increase-transfer-size"}},
		{"Fig. 8 seek per read", 2, []string{"remove-redundant-seeks", "increase-read-size"}},
		{"Fig. 10 strided read", 4, []string{"sequentialize-access", "increase-read-size"}},
		{"Fig. 11 random write", 5, []string{"sequentialize-access", "increase-transfer-size"}},
	}
	for _, c := range cases {
		pat := pattern(c.id)
		cfg := e.scalePattern(pat.Config)
		tuned := e.scalePattern(pat.TunedConfig)
		rec, runRes := e.runIOR(cfg, "ior", int64(970+c.id), int64(97+c.id))
		_, trunRes := e.runIOR(tuned, "ior-tuned", int64(980+c.id), int64(98+c.id))

		diag, err := e.diagnose(rec)
		if err != nil {
			return nil, err
		}
		recs, err := advisor.Advise(diag, 1.02)
		if err != nil {
			return nil, err
		}
		tc := TuningCase{Name: c.name, ExpectedAction: strings.Join(c.expected, "|"),
			MeasuredGain: trunRes.PerfMiBps / runRes.PerfMiBps}
		for i, r := range recs {
			if i == 0 {
				tc.TopAction = r.Action
			}
			if i >= 2 {
				break
			}
			for _, want := range c.expected {
				if r.Action == want {
					tc.Correct = true
					tc.PredictedGain = r.PredictedGain
				}
			}
		}
		if tc.Correct {
			res.CorrectTop++
		}
		res.Cases = append(res.Cases, tc)
	}

	fprintHeader(w, "Extension: automatic tuning advisor (paper §5 future work)")
	rows := [][]string{}
	for _, c := range res.Cases {
		rows = append(rows, []string{c.Name, c.ExpectedAction, c.TopAction,
			fmt.Sprintf("%.1fx", c.PredictedGain), fmt.Sprintf("%.1fx", c.MeasuredGain),
			fmt.Sprint(c.Correct)})
	}
	report.Table(w, []string{"Case", "Expected action", "Top advice",
		"Predicted gain", "Measured gain", "OK"}, rows)
	report.KV(w, "correct top-2 advice", "%d/%d", res.CorrectTop, len(res.Cases))
	return res, nil
}

// MPIIOResult measures what upper-layer (MPI-IO) counters add to the
// performance models — the extension the paper's Section 1 limitation
// proposes ("one may use I/O counters from MPI-IO and HDF5 in AI models").
type MPIIOResult struct {
	// PosixRMSE is the eval RMSE of a model trained on the 45 POSIX
	// counters; ExtendedRMSE adds the 20 MPIIO counters.
	PosixRMSE    float64
	ExtendedRMSE float64
	// Improvement is PosixRMSE / ExtendedRMSE.
	Improvement float64
	Jobs        int
}

// RunExtensionMPIIO generates an OpenPMD-family database through the MPI-IO
// middleware — varying collective/independent mode, aggregator ratios,
// layouts and, crucially, per-step MPI_File_sync use. fsync never moves any
// of the paper's 45 POSIX counters, so the POSIX-only model cannot tell the
// durable jobs from the buffered ones; MPIIO_SYNCS can. The experiment
// trains LightGBM-variant models on both feature sets and compares their
// error.
func RunExtensionMPIIO(e *Env, w io.Writer) (*MPIIOResult, error) {
	jobs := 500
	if !e.Fast {
		jobs = 1500
	}
	rng := rand.New(rand.NewSource(e.Seed + 777))

	posixX := linalg.NewMatrix(jobs, int(darshan.NumCounters))
	extX := linalg.NewMatrix(jobs, int(darshan.NumCounters)+int(mpiio.NumCounters))
	y := make([]float64, jobs)

	for i := 0; i < jobs; i++ {
		cfg := apps.OpenPMDConfig{
			NProcs:          4 << rng.Intn(4), // 4..32
			Steps:           1 + rng.Intn(2),
			BlocksPerProc:   2 << rng.Intn(3),
			BlockBytes:      int64(128*iosim.KiB) << rng.Intn(3),
			AttrWrites:      16 << rng.Intn(4),
			AttrBytes:       int64(256) << rng.Intn(3),
			AggregatorRatio: 2 << rng.Intn(3),
			Collective:      rng.Intn(2) == 0,
			SyncPerStep:     rng.Intn(2) == 0,
			FS: iosim.FSConfig{
				StripeSize:  int64(1*iosim.MiB) << rng.Intn(3),
				StripeWidth: 1 << rng.Intn(4),
			},
		}
		rec, _, mcnt := cfg.RunWithMPIIO(int64(i+1), rng.Int63(), e.Params)
		px := features.TransformRecord(rec)
		copy(posixX.Row(i), px)
		row := extX.Row(i)
		copy(row, px)
		for j, v := range mcnt {
			row[int(darshan.NumCounters)+j] = features.Transform(v)
		}
		y[i] = features.Transform(rec.PerfMiBps)
	}

	trainEval := func(x *linalg.Matrix) (float64, error) {
		cut := x.Rows / 2
		trX := linalg.NewMatrix(cut, x.Cols)
		evX := linalg.NewMatrix(x.Rows-cut, x.Cols)
		trY := make([]float64, cut)
		evY := make([]float64, x.Rows-cut)
		perm := rand.New(rand.NewSource(e.Seed)).Perm(x.Rows)
		for k, j := range perm {
			if k < cut {
				copy(trX.Row(k), x.Row(j))
				trY[k] = y[j]
			} else {
				copy(evX.Row(k-cut), x.Row(j))
				evY[k-cut] = y[j]
			}
		}
		gcfg := gbdt.DefaultConfig(gbdt.LeafWise)
		gcfg.Rounds = 150
		gcfg.Seed = e.Seed
		m, err := gbdt.Train(gcfg, trX, trY, evX, evY)
		if err != nil {
			return 0, err
		}
		return features.RMSE(m.PredictBatch(evX), evY), nil
	}

	res := &MPIIOResult{Jobs: jobs}
	var err error
	if res.PosixRMSE, err = trainEval(posixX); err != nil {
		return nil, err
	}
	if res.ExtendedRMSE, err = trainEval(extX); err != nil {
		return nil, err
	}
	if res.ExtendedRMSE > 0 {
		res.Improvement = res.PosixRMSE / res.ExtendedRMSE
	}

	fprintHeader(w, "Extension: MPI-IO layer counters (paper §1 limitation)")
	report.KV(w, "OpenPMD-family jobs", "%d (collective and independent mixed)", res.Jobs)
	report.KV(w, "POSIX-only eval RMSE", "%.4f (45 features)", res.PosixRMSE)
	report.KV(w, "POSIX+MPIIO eval RMSE", "%.4f (%d features)", res.ExtendedRMSE,
		int(darshan.NumCounters)+int(mpiio.NumCounters))
	report.KV(w, "improvement", "%.2fx", res.Improvement)
	return res, nil
}

// UnseenAppResult probes the paper's generalization setting: how much a
// model degrades on an application family absent from training, and what
// early stopping (Section 3.2) costs/saves. On this simulator's low-noise
// labels, training longer does not overfit, so early stopping's value shows
// up as a ~4x smaller epoch budget at a small accuracy cost; on noisy
// production data the paper additionally relies on it against overfitting.
type UnseenAppResult struct {
	// Family is the workload family held out of training.
	Family string
	// InDistES / InDistNoES: eval RMSE on in-mixture jobs with and without
	// early stopping. UnseenES / UnseenNoES: the same on the held-out
	// family.
	InDistES, InDistNoES float64
	UnseenES, UnseenNoES float64
	// EpochsES / EpochsNoES: epochs actually trained.
	EpochsES, EpochsNoES int
	// UnseenPenalty is UnseenNoES / InDistNoES: the distribution-shift
	// degradation factor for the fully trained model.
	UnseenPenalty float64
}

// RunAblationUnseenApp trains the MLP (the model family early stopping
// matters most for) on a database with the DASSA family held out, then
// evaluates on in-distribution jobs and on the unseen family, with and
// without early stopping.
func RunAblationUnseenApp(e *Env, w io.Writer) (*UnseenAppResult, error) {
	const family = "dassa-xcorr"
	jobs, unseenJobs := 800, 200
	if !e.Fast {
		jobs, unseenJobs = 2400, 600
	}
	ds := logdb.Generate(logdb.GenConfig{Jobs: jobs, Seed: e.Seed + 555,
		Params: e.Params, ExcludeFamilies: []string{family}})
	frame := features.Build(ds)
	train, eval := frame.Split(e.Seed, 0.5)

	unseenDS, err := logdb.GenerateFamily(family, unseenJobs, e.Seed+556, e.Params)
	if err != nil {
		return nil, err
	}
	unseen := features.Build(unseenDS)

	res := &UnseenAppResult{Family: family}
	trainMLP := func(earlyStopping bool) (inDist, unseenRMSE float64, epochs int, err error) {
		cfg := mlp.DefaultConfig() // the Table 5 architecture
		cfg.Epochs = 400
		cfg.Seed = e.Seed
		if !earlyStopping {
			cfg.EarlyStoppingRounds = 0
		}
		m, err := mlp.Train(cfg, train.X, train.Y, eval.X, eval.Y)
		if err != nil {
			return 0, 0, 0, err
		}
		return features.RMSE(m.PredictBatch(eval.X), eval.Y),
			features.RMSE(m.PredictBatch(unseen.X), unseen.Y),
			len(m.EvalLoss), nil
	}
	if res.InDistES, res.UnseenES, res.EpochsES, err = trainMLP(true); err != nil {
		return nil, err
	}
	if res.InDistNoES, res.UnseenNoES, res.EpochsNoES, err = trainMLP(false); err != nil {
		return nil, err
	}
	if res.InDistNoES > 0 {
		res.UnseenPenalty = res.UnseenNoES / res.InDistNoES
	}

	fprintHeader(w, "Ablation: unseen applications & early stopping (paper §3.2)")
	report.KV(w, "held-out family", "%s (%d unseen jobs)", family, unseenJobs)
	report.KV(w, "in-distribution RMSE", "ES %.4f (%d epochs) / no-ES %.4f (%d epochs)",
		res.InDistES, res.EpochsES, res.InDistNoES, res.EpochsNoES)
	report.KV(w, "unseen-family RMSE", "ES %.4f / no-ES %.4f", res.UnseenES, res.UnseenNoES)
	report.KV(w, "unseen penalty", "%.2fx (distribution shift)", res.UnseenPenalty)
	return res, nil
}
