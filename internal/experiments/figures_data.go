package experiments

import (
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"time"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/gauge"
	"github.com/hpc-repro/aiio/internal/report"
	"github.com/hpc-repro/aiio/internal/webservice"
)

// Figure1Result captures the Gauge (group-level) versus AIIO (job-level)
// comparison of the paper's Fig. 1.
type Figure1Result struct {
	ClusterSize int
	// GroupAbsErr and MaxMemberAbsErr show the Fig. 1a spread.
	GroupAbsErr     float64
	MaxMemberAbsErr float64
	// GroupTop and MemberTop are the dominant Gauge features of Fig. 1b/1c
	// (POSIX_*_PERC names).
	GroupTop  string
	MemberTop string
	// GaugeZeroAttributions counts zero-valued counters that Gauge's
	// cluster-mean background assigned impact to (Fig. 1d, non-robust).
	GaugeZeroAttributions int
	// AIIOZeroAttributions is the same count under AIIO's diagnosis; the
	// robustness rule forces it to zero.
	AIIOZeroAttributions int
}

// RunFigure1 reproduces the group-vs-job comparison.
func RunFigure1(e *Env, w io.Writer) (*Figure1Result, error) {
	_, frame, err := e.Data()
	if err != nil {
		return nil, err
	}
	cfg := gauge.DefaultConfig()
	if e.Fast {
		cfg.MinClusterSize = 25
		cfg.ImportanceSample = 12
		cfg.SHAP.MaxExact = 8
		cfg.SHAP.NSamples = 512
	}
	g, err := gauge.Analyze(frame, cfg)
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{
		ClusterSize:           len(g.Members),
		GroupAbsErr:           g.GroupAbsErr,
		GroupTop:              gauge.DerivedName(gauge.TopCounter(g.GroupImportance)),
		MemberTop:             gauge.DerivedName(gauge.TopCounter(g.MemberImportance)),
		GaugeZeroAttributions: len(g.MemberZeroFeatures),
	}
	for _, errv := range g.MemberAbsErr {
		if errv > res.MaxMemberAbsErr {
			res.MaxMemberAbsErr = errv
		}
	}

	// AIIO's diagnosis of the same member, for the robustness contrast.
	memberRec := frame.Records[g.Members[g.MemberIndex]]
	diag, err := e.diagnose(memberRec)
	if err != nil {
		return nil, err
	}
	for j, c := range diag.Average.Contributions {
		if memberRec.Counters[j] == 0 && c != 0 {
			res.AIIOZeroAttributions++
		}
	}

	fprintHeader(w, "Figure 1: group-level (Gauge) vs job-level (AIIO) diagnosis")
	report.KV(w, "cluster size", "%d", res.ClusterSize)
	report.KV(w, "group avg |error|", "%.4f", res.GroupAbsErr)
	report.KV(w, "max member |error|", "%.4f (%.1fx the average)",
		res.MaxMemberAbsErr, res.MaxMemberAbsErr/maxF(res.GroupAbsErr, 1e-12))
	report.KV(w, "group top feature", "%s", res.GroupTop)
	report.KV(w, "member top feature", "%s", res.MemberTop)
	report.KV(w, "Gauge zero-feature attributions", "%d (non-robust)", res.GaugeZeroAttributions)
	report.KV(w, "AIIO zero-counter attributions", "%d (robust)", res.AIIOZeroAttributions)
	report.Summary(w, "Fig. 1b: group-level SHAP summary (Gauge feature space)",
		gauge.DerivedNames(), g.SampleImportances, 9, 56)
	return res, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Figure4Result captures the performance distribution before and after the
// log10(x+1) transform.
type Figure4Result struct {
	RawMin, RawMax                 float64
	TransformedMin, TransformedMax float64
}

// RunFigure4 renders the two histograms of Fig. 4.
func RunFigure4(e *Env, w io.Writer) (*Figure4Result, error) {
	ds, frame, err := e.Data()
	if err != nil {
		return nil, err
	}
	raw := make([]float64, ds.Len())
	for i, rec := range ds.Records {
		raw[i] = rec.PerfMiBps
	}
	res := &Figure4Result{RawMin: raw[0], RawMax: raw[0],
		TransformedMin: frame.Y[0], TransformedMax: frame.Y[0]}
	for i := range raw {
		if raw[i] < res.RawMin {
			res.RawMin = raw[i]
		}
		if raw[i] > res.RawMax {
			res.RawMax = raw[i]
		}
		if frame.Y[i] < res.TransformedMin {
			res.TransformedMin = frame.Y[i]
		}
		if frame.Y[i] > res.TransformedMax {
			res.TransformedMax = frame.Y[i]
		}
	}
	fprintHeader(w, "Figure 4: performance before/after log10(x+1)")
	report.Histogram(w, "raw performance (MiB/s)", raw, 12, 40)
	report.Histogram(w, "log10(x+1) performance", frame.Y, 12, 40)
	report.KV(w, "raw range", "(%.3g, %.3g)", res.RawMin, res.RawMax)
	report.KV(w, "transformed range", "(%.3g, %.3g) (paper: (0.3, 6.8))",
		res.TransformedMin, res.TransformedMax)
	return res, nil
}

// RunFigure5 renders the performance-vs-transfer-size scatter of Fig. 5 and
// returns the correlation coefficient of the transformed quantities.
func RunFigure5(e *Env, w io.Writer) (float64, error) {
	ds, frame, err := e.Data()
	if err != nil {
		return 0, err
	}
	xs := make([]float64, ds.Len())
	ys := make([]float64, ds.Len())
	for i, rec := range ds.Records {
		xs[i] = features.Transform(rec.TotalBytes())
		ys[i] = frame.Y[i]
	}
	fprintHeader(w, "Figure 5: performance vs total data transfer size")
	report.Scatter(w, "x = log10(total bytes + 1), y = log10(perf + 1)", xs, ys, 16, 64)
	corr := pearson(xs, ys)
	report.KV(w, "pearson correlation", "%.3f (neither linear nor independent)", corr)
	return corr, nil
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n == 0 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Figure16Result is the XGBoost-variant training loss curve.
type Figure16Result struct {
	TrainLoss []float64
	EvalLoss  []float64
}

// RunFigure16 renders the Fig. 16 loss plot.
func RunFigure16(e *Env, w io.Writer) (*Figure16Result, error) {
	ens, _, err := e.Ensemble()
	if err != nil {
		return nil, err
	}
	train, eval, ok := core.GBDTLossCurves(ens.Model(core.NameXGBoost))
	if !ok {
		return nil, fmt.Errorf("experiments: xgboost model exposes no loss curves")
	}
	res := &Figure16Result{TrainLoss: train, EvalLoss: eval}
	fprintHeader(w, "Figure 16: XGBoost training loss (RMSE) by iteration")
	report.LineChart(w, "eval RMSE", eval, 12, 64)
	report.KV(w, "iterations", "%d", len(eval))
	report.KV(w, "first/last eval RMSE", "%.4f -> %.4f", eval[0], eval[len(eval)-1])
	return res, nil
}

// Figure17Result is the web-service round trip.
type Figure17Result struct {
	Models      int
	Latency     time.Duration
	Bottlenecks int
	Robust      bool
}

// RunFigure17 starts the AIIO web service on a loopback listener, uploads a
// job log and returns the diagnosis — the Fig. 17 architecture end to end.
func RunFigure17(e *Env, w io.Writer) (*Figure17Result, error) {
	ens, _, err := e.Ensemble()
	if err != nil {
		return nil, err
	}
	srv := httptest.NewServer(webservice.NewServer(ens, e.DiagOpts).Handler())
	defer srv.Close()
	client := webservice.NewClient(srv.URL)

	rec, _ := e.runIOR(e.scalePattern(pattern(1).Config), "ior", 1, 5)
	start := time.Now()
	resp, err := client.Diagnose(rec)
	if err != nil {
		return nil, err
	}
	res := &Figure17Result{
		Models:      len(resp.Models),
		Latency:     time.Since(start),
		Bottlenecks: len(resp.Bottlenecks),
		Robust:      resp.Robust,
	}
	fprintHeader(w, "Figure 17: AIIO web service round trip")
	report.KV(w, "models loaded", "%d", res.Models)
	report.KV(w, "diagnosis latency", "%s", res.Latency.Round(time.Millisecond))
	report.KV(w, "bottlenecks returned", "%d", res.Bottlenecks)
	report.KV(w, "robust", "%v", res.Robust)
	return res, nil
}
