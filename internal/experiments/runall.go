package experiments

import (
	"fmt"
	"io"
)

// RunAll regenerates every table and figure in paper order, writing the
// text artifacts to w. It returns the first error.
func RunAll(e *Env, w io.Writer) error {
	steps := []struct {
		name string
		fn   func() error
	}{
		{"Table 1", func() error { _, err := RunTable1(e, w); return err }},
		{"Figure 4", func() error { _, err := RunFigure4(e, w); return err }},
		{"Figure 5", func() error { _, err := RunFigure5(e, w); return err }},
		{"Table 2", func() error { _, err := RunTable2(e, w); return err }},
		{"Figure 1", func() error { _, err := RunFigure1(e, w); return err }},
		{"Figure 6", func() error { _, err := RunFigure6(e, w); return err }},
		{"Table 3", func() error { _, err := RunTable3(e, w); return err }},
		{"Figure 7", func() error { _, err := RunPattern(e, w, 1); return err }},
		{"Figure 8", func() error { _, err := RunPattern(e, w, 2); return err }},
		{"Figure 9", func() error { _, err := RunPattern(e, w, 3); return err }},
		{"Figure 10", func() error { _, err := RunPattern(e, w, 4); return err }},
		{"Figure 11", func() error { _, err := RunPattern(e, w, 5); return err }},
		{"Figure 12", func() error { _, err := RunPattern(e, w, 6); return err }},
		{"Figure 13", func() error { _, err := RunFigure13(e, w); return err }},
		{"Figure 14", func() error { _, err := RunFigure14(e, w); return err }},
		{"Figure 15", func() error { _, err := RunFigure15(e, w); return err }},
		{"Figure 16", func() error { _, err := RunFigure16(e, w); return err }},
		{"Figure 17", func() error { _, err := RunFigure17(e, w); return err }},
		{"Extension: classification", func() error { _, err := RunExtensionClassification(e, w); return err }},
		{"Extension: tuning advisor", func() error { _, err := RunExtensionTuningAdvisor(e, w); return err }},
		{"Extension: MPI-IO counters", func() error { _, err := RunExtensionMPIIO(e, w); return err }},
		{"Ablation: rules", func() error { _, err := RunAblationRules(e, w); return err }},
		{"Ablation: PDP", func() error { _, err := RunAblationPDP(e, w); return err }},
		{"Ablation: cross-platform", func() error { _, err := RunAblationCrossPlatform(e, w); return err }},
		{"Ablation: TreeSHAP", func() error { _, err := RunAblationTreeSHAP(e, w); return err }},
		{"Ablation: unseen apps", func() error { _, err := RunAblationUnseenApp(e, w); return err }},
	}
	for _, s := range steps {
		if err := s.fn(); err != nil {
			return fmt.Errorf("experiments: %s: %w", s.name, err)
		}
	}
	return nil
}
