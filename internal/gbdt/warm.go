package gbdt

import (
	"fmt"
	"math"

	"github.com/hpc-repro/aiio/internal/linalg"
)

// DefaultWarmDriftTol is the bin-edge drift score above which warm starting
// is rejected. Unlike the neural families there is no frozen standardizer
// to invalidate — boosting fits residuals, so target shift is absorbed by
// the new trees — but when the per-feature quantile structure of the new
// window no longer resembles the one the prior ensemble partitioned, the
// prior trees' split surfaces are stale and continuing from them wastes the
// reduced round budget correcting them.
const DefaultWarmDriftTol = 0.25

// CanWarmStart reports whether prev can seed a continued boosting run of
// cfg on x/y, and if not, why: the variant must match (tree shapes and
// sampling differ per variant), the feature schema must match, and the bin
// edges freshly fit on x must not have drifted past the tolerance from the
// edges prev was trained against. y is unused — squared-loss boosting
// corrects any target shift through the residuals — and kept only for
// signature symmetry with the other model families.
func CanWarmStart(prev *Model, cfg Config, x *linalg.Matrix, y []float64) (bool, string) {
	seed, reason := CheckWarmStart(prev, cfg, x, y)
	return seed != nil, reason
}

// WarmSeed is a validated warm-start decision: the prior model plus the bin
// mapper the validation fit on the new window. Passing it to TrainSeeded
// reuses those bins, so the per-feature quantile sort runs once per retrain
// cycle instead of once per check plus once per fit. A seed is tied to the
// (x, cfg.MaxBins) it was checked against.
type WarmSeed struct {
	prev *Model
	bins *BinMapper
}

// CheckWarmStart is CanWarmStart returning the reusable seed: nil plus the
// fallback reason when rejected.
func CheckWarmStart(prev *Model, cfg Config, x *linalg.Matrix, y []float64) (*WarmSeed, string) {
	_ = y
	if prev == nil {
		return nil, "no previous model"
	}
	if len(prev.Trees) == 0 {
		return nil, "previous model has no trees"
	}
	if cfg.Variant != prev.Config.Variant {
		return nil, fmt.Sprintf("variant changed: %s vs %s", cfg.Variant, prev.Config.Variant)
	}
	if prev.Bins == nil {
		return nil, "previous model has no bin mapper"
	}
	if x.Cols != len(prev.Bins.Uppers) {
		return nil, fmt.Sprintf("feature schema changed: %d columns vs %d", x.Cols, len(prev.Bins.Uppers))
	}
	maxBins := cfg.MaxBins
	if maxBins <= 0 {
		maxBins = MaxBins
	}
	fresh := FitBins(x, maxBins)
	if d := binDrift(prev.Bins, fresh); d > DefaultWarmDriftTol {
		return nil, fmt.Sprintf("bin-edge drift %.3f exceeds tolerance %.3f", d, DefaultWarmDriftTol)
	}
	return &WarmSeed{prev: prev, bins: fresh}, ""
}

// binDrift scores how far fresh quantile bin edges moved from prev's. Edges
// are quantile estimates, so the two mappers' edge curves are compared as
// quantile functions, sampled at fixed interior positions: per feature, the
// mean relative displacement of matched quantiles (each clamped at 1 so one
// unstable feature cannot saturate the average), then averaged over
// features. 0 means an identical quantile structure. Deliberately NOT
// sensitive to the bin count itself: a growing window refines coarse bins
// into finer ones without moving the underlying quantiles, and that
// refinement is exactly the benign case warm starting should survive.
func binDrift(prev, fresh *BinMapper) float64 {
	const qPoints = 9
	nf := len(prev.Uppers)
	if nf == 0 {
		return 0
	}
	total := 0.0
	for f := 0; f < nf; f++ {
		u1, u2 := prev.Uppers[f], fresh.Uppers[f]
		n1, n2 := len(u1), len(u2)
		switch {
		case n1 == 0 && n2 == 0:
			continue // feature all-zero in both windows
		case n1 == 0 || n2 == 0:
			total += 1 // feature appeared or vanished entirely
			continue
		}
		ed := 0.0
		for k := 1; k <= qPoints; k++ {
			q := float64(k) / float64(qPoints+1)
			a := u1[int(q*float64(n1-1)+0.5)]
			b := u2[int(q*float64(n2-1)+0.5)]
			den := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1e-12)
			ed += math.Min(1, math.Abs(a-b)/den)
		}
		total += ed / qPoints
	}
	return total / float64(nf)
}
