package gbdt

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/hpc-repro/aiio/internal/linalg"
)

// TestSelectTopAbsGradMatchesSort pins the quickselect against a full sort
// under the same total order (|grad| desc, index asc), including heavy
// gradient ties where only the index tiebreak makes the top-k set unique.
func TestSelectTopAbsGradMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(400)
		grad := make([]float64, n)
		for i := range grad {
			// Quantized values force many exact |grad| ties.
			grad[i] = float64(rng.Intn(9)-4) / 2
		}
		k := 1 + rng.Intn(n-1)

		want := make([]int32, n)
		for i := range want {
			want[i] = int32(i)
		}
		sort.Slice(want, func(i, j int) bool { return gossBefore(grad, want[i], want[j]) })

		got := make([]int32, n)
		for i := range got {
			got[i] = int32(i)
		}
		selectTopAbsGrad(got, grad, k)

		wantSet := map[int32]bool{}
		for _, i := range want[:k] {
			wantSet[i] = true
		}
		for _, i := range got[:k] {
			if !wantSet[i] {
				t.Fatalf("trial %d n=%d k=%d: quickselect kept row %d (|g|=%v), not in the sorted top-k",
					trial, n, k, i, math.Abs(grad[i]))
			}
			delete(wantSet, i)
		}
		if len(wantSet) != 0 {
			t.Fatalf("trial %d: quickselect missed rows %v", trial, wantSet)
		}
	}
}

// TestGOSSSamplingDeterministic runs the full GOSS row sampling twice with
// identical gradients (with ties) and seeds; the selected index sets must be
// identical — the index tiebreak plus the ascending-index sweep make the
// procedure a pure function of (grad, seed).
func TestGOSSSamplingDeterministic(t *testing.T) {
	cfg := DefaultConfig(LeafWise)
	sample := func() []int32 {
		n := 1000
		tr := &trainer{
			cfg:  cfg,
			y:    make([]float64, n),
			grad: make([]float64, n),
			hess: make([]float64, n),
			rng:  rand.New(rand.NewSource(99)),
		}
		rng := rand.New(rand.NewSource(5))
		for i := range tr.grad {
			tr.grad[i] = float64(rng.Intn(7)-3) / 4 // tie-heavy
			tr.hess[i] = 1
		}
		tr.sampleRows()
		return append([]int32(nil), tr.idx...)
	}
	a, b := sample(), sample()
	if len(a) != len(b) {
		t.Fatalf("sample sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("idx[%d] differs: %d vs %d", i, a[i], b[i])
		}
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i] < a[j] }) {
		t.Fatal("sampled rows are not in ascending index order")
	}
}

func TestWarmStartContinuesBoosting(t *testing.T) {
	for _, v := range []Variant{LevelWise, LeafWise, Oblivious} {
		t.Run(v.String(), func(t *testing.T) {
			cfg := DefaultConfig(v)
			cfg.Rounds = 60
			x, y := synth(1500, 6, 71)
			xt, yt, xe, ye := trainTestSplit(x, y, 0.8, 72)
			prev, err := Train(cfg, xt, yt, xe, ye)
			if err != nil {
				t.Fatal(err)
			}
			coldRMSE := rmse(prev.PredictBatch(xe), ye)

			// Fresh window from the same distribution: continued boosting on a
			// quarter of the budget must hold the cold-fit quality line.
			x2, y2 := synth(1500, 6, 73)
			warmCfg := cfg
			warmCfg.Rounds = cfg.Rounds / 4
			warm, err := TrainWarm(warmCfg, x2, y2, xe, ye, prev)
			if err != nil {
				t.Fatal(err)
			}
			if len(warm.Trees) < len(prev.Trees) {
				t.Fatalf("warm model dropped prior trees: %d vs %d", len(warm.Trees), len(prev.Trees))
			}
			for i := range prev.Trees {
				if warm.Trees[i] != prev.Trees[i] {
					t.Fatalf("warm tree %d is not the prior tree (prefix must be shared)", i)
				}
			}
			warmRMSE := rmse(warm.PredictBatch(xe), ye)
			if warmRMSE > coldRMSE*1.15+0.05 {
				t.Fatalf("warm start on 1/4 budget did not hold the line: warm RMSE %v vs cold %v", warmRMSE, coldRMSE)
			}
			if err := warm.Validate(); err != nil {
				t.Fatalf("warm model failed validation: %v", err)
			}
		})
	}
}

func TestWarmStartNeverWorseThanSeed(t *testing.T) {
	cfg := DefaultConfig(LevelWise)
	cfg.Rounds = 40
	x, y := synth(1000, 6, 74)
	xt, yt, xe, ye := trainTestSplit(x, y, 0.8, 75)
	prev, err := Train(cfg, xt, yt, xe, ye)
	if err != nil {
		t.Fatal(err)
	}
	seedRMSE := rmse(prev.PredictBatch(xe), ye)

	// A hostile continuation (few rounds, huge learning rate) must be
	// trimmed back to the seed trees by the eval baseline.
	warmCfg := cfg
	warmCfg.Rounds = 3
	warmCfg.LearningRate = 5
	warmCfg.EarlyStoppingRounds = 1
	x2, y2 := synth(1000, 6, 76)
	warm, err := TrainWarm(warmCfg, x2, y2, xe, ye, prev)
	if err != nil {
		t.Fatal(err)
	}
	warmRMSE := rmse(warm.PredictBatch(xe), ye)
	if warmRMSE > seedRMSE*1.01+1e-9 {
		t.Fatalf("diverging warm run shipped worse trees than its seed: %v vs %v (%d trees, seed %d)",
			warmRMSE, seedRMSE, len(warm.Trees), len(prev.Trees))
	}
}

func TestCanWarmStartRejections(t *testing.T) {
	cfg := DefaultConfig(LevelWise)
	cfg.Rounds = 20
	x, y := synth(600, 6, 77)
	prev, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	if ok, _ := CanWarmStart(nil, cfg, x, y); ok {
		t.Fatal("nil prev accepted")
	}
	if ok, reason := CanWarmStart(prev, cfg, x, y); !ok {
		t.Fatalf("same-schema same-data warm start rejected: %s", reason)
	}

	varCfg := DefaultConfig(LeafWise)
	if ok, reason := CanWarmStart(prev, varCfg, x, y); ok || reason == "" {
		t.Fatalf("variant change accepted (%q)", reason)
	}

	wide := linalg.NewMatrix(x.Rows, x.Cols+2)
	if ok, reason := CanWarmStart(prev, cfg, wide, y); ok || reason == "" {
		t.Fatalf("schema change accepted (%q)", reason)
	}

	// Rescaling every feature rewrites the quantile structure wholesale.
	scaled := linalg.NewMatrix(x.Rows, x.Cols)
	for i := range scaled.Data {
		scaled.Data[i] = x.Data[i]*1e3 + 7
	}
	if ok, reason := CanWarmStart(prev, cfg, scaled, y); ok || reason == "" {
		t.Fatalf("rebinned inputs accepted (%q)", reason)
	}

	// TrainWarm on drifted data falls back to a cold start: no shared trees.
	coldCfg := cfg
	coldCfg.Rounds = 5
	m, err := TrainWarm(coldCfg, scaled, y, nil, nil, prev)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trees) > coldCfg.Rounds {
		t.Fatalf("fallback cold start kept %d trees, budget was %d", len(m.Trees), coldCfg.Rounds)
	}
	if m.Trees[0] == prev.Trees[0] {
		t.Fatal("fallback cold start shares trees with the rejected seed")
	}
}
