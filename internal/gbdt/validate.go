package gbdt

import (
	"errors"
	"fmt"
	"math"
)

// Validate checks the tree's structural invariants so a traversal can never
// panic or loop: parallel SoA arrays of equal, non-zero length; child
// indices in bounds and strictly greater than their parent (the builders'
// append order), which guarantees every root-to-leaf path terminates within
// NumNodes steps; finite thresholds and leaf values; and split features
// inside [0, numFeatures) when numFeatures > 0 (pass 0 to skip the feature
// bound, e.g. for trees checked before their bin mapper).
func (t *Tree) Validate(numFeatures int) error {
	n := len(t.Feature)
	if n == 0 {
		return errors.New("tree has no nodes")
	}
	if len(t.Bin) != n || len(t.Threshold) != n || len(t.Left) != n || len(t.Right) != n || len(t.Value) != n {
		return fmt.Errorf("ragged tree arrays: feature=%d bin=%d threshold=%d left=%d right=%d value=%d (truncated encoding?)",
			n, len(t.Bin), len(t.Threshold), len(t.Left), len(t.Right), len(t.Value))
	}
	for i := 0; i < n; i++ {
		f := t.Feature[i]
		if f < 0 {
			if math.IsNaN(t.Value[i]) || math.IsInf(t.Value[i], 0) {
				return fmt.Errorf("leaf %d has non-finite value %v", i, t.Value[i])
			}
			continue
		}
		if numFeatures > 0 && int(f) >= numFeatures {
			return fmt.Errorf("node %d splits on feature %d, model has %d", i, f, numFeatures)
		}
		if math.IsNaN(t.Threshold[i]) {
			return fmt.Errorf("node %d has NaN threshold", i)
		}
		l, r := t.Left[i], t.Right[i]
		if l <= int32(i) || int(l) >= n {
			return fmt.Errorf("node %d left child %d out of range (want %d < child < %d)", i, l, i, n)
		}
		if r <= int32(i) || int(r) >= n {
			return fmt.Errorf("node %d right child %d out of range (want %d < child < %d)", i, r, i, n)
		}
	}
	return nil
}

// Validate checks the whole ensemble: a finite base score, a bin mapper,
// and every tree's structural invariants against the mapper's feature
// count. Load runs it so a corrupted or truncated serialized model fails
// the registry's verification-and-fallback path at decode time instead of
// panicking (or looping) inside Tree.Predict mid-request.
func (m *Model) Validate() error {
	if math.IsNaN(m.Base) || math.IsInf(m.Base, 0) {
		return fmt.Errorf("gbdt: non-finite base score %v", m.Base)
	}
	if len(m.Trees) == 0 {
		return errors.New("gbdt: model has no trees")
	}
	nf := 0
	if m.Bins != nil {
		nf = len(m.Bins.Uppers)
	}
	for ti, t := range m.Trees {
		if t == nil {
			return fmt.Errorf("gbdt: tree %d is nil", ti)
		}
		if err := t.Validate(nf); err != nil {
			return fmt.Errorf("gbdt: tree %d: %w", ti, err)
		}
	}
	return nil
}
