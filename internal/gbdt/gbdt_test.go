package gbdt

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hpc-repro/aiio/internal/linalg"
)

// synth generates a sparse, nonlinear regression problem reminiscent of the
// Darshan counters: some features are zero for many rows, the target mixes
// thresholds and interactions.
func synth(n, d int, seed int64) (*linalg.Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := linalg.NewMatrix(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			if rng.Float64() < 0.3 {
				row[j] = 0 // sparsity
			} else {
				row[j] = rng.Float64() * 10
			}
		}
		y[i] = 3*row[0] - 2*row[1%d] + row[2%d]*row[3%d]/10
		if row[4%d] > 5 {
			y[i] += 8
		}
		y[i] += rng.NormFloat64() * 0.1
	}
	return x, y
}

func trainTestSplit(x *linalg.Matrix, y []float64, frac float64, seed int64) (xa *linalg.Matrix, ya []float64, xb *linalg.Matrix, yb []float64) {
	idx := rand.New(rand.NewSource(seed)).Perm(x.Rows)
	cut := int(frac * float64(x.Rows))
	xa = linalg.NewMatrix(cut, x.Cols)
	xb = linalg.NewMatrix(x.Rows-cut, x.Cols)
	ya = make([]float64, cut)
	yb = make([]float64, x.Rows-cut)
	for i, j := range idx {
		if i < cut {
			copy(xa.Row(i), x.Row(j))
			ya[i] = y[j]
		} else {
			copy(xb.Row(i-cut), x.Row(j))
			yb[i-cut] = y[j]
		}
	}
	return
}

func TestBinMapperProperties(t *testing.T) {
	x, _ := synth(500, 6, 1)
	bm := FitBins(x, 64)
	f := func(fi uint8, raw float64) bool {
		feat := int(fi) % x.Cols
		v := math.Abs(raw)
		b := bm.Bin(feat, v)
		if v == 0 {
			return b == 0
		}
		if b == 0 {
			return false // nonzero must not land in the zero bin
		}
		// Monotonicity: larger values never get smaller bins.
		return bm.Bin(feat, v*2) >= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Upper-bound consistency: v <= Upper(f, Bin(f, v)) for in-range values.
	for feat := 0; feat < x.Cols; feat++ {
		for i := 0; i < x.Rows; i++ {
			v := x.At(i, feat)
			b := bm.Bin(feat, v)
			maxBin := uint8(bm.NumBins(feat) - 1)
			if v <= bm.Uppers[feat][len(bm.Uppers[feat])-1] && v > bm.Upper(feat, b) {
				t.Fatalf("feature %d value %v maps to bin %d with upper %v", feat, v, b, bm.Upper(feat, b))
			}
			if b > maxBin {
				t.Fatalf("bin %d out of range (max %d)", b, maxBin)
			}
		}
	}
}

func TestBinMapperConstantFeature(t *testing.T) {
	x := linalg.NewMatrix(10, 2)
	for i := 0; i < 10; i++ {
		x.Set(i, 0, 5) // constant nonzero
		// feature 1 all zeros
	}
	bm := FitBins(x, 32)
	if bm.Bin(0, 5) != 1 {
		t.Errorf("constant feature bin = %d", bm.Bin(0, 5))
	}
	if bm.NumBins(1) != 1 {
		t.Errorf("all-zero feature has %d bins, want 1", bm.NumBins(1))
	}
	if bm.Bin(1, 0) != 0 {
		t.Error("zero must map to bin 0")
	}
}

func TestAllVariantsLearn(t *testing.T) {
	x, y := synth(2000, 8, 2)
	xTr, yTr, xEv, yEv := trainTestSplit(x, y, 0.5, 3)
	baseline := rmseOf(constPred(linalg.Mean(yTr), len(yEv)), yEv)
	for _, v := range []Variant{LevelWise, LeafWise, Oblivious} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			cfg := DefaultConfig(v)
			cfg.Rounds = 120
			m, err := Train(cfg, xTr, yTr, xEv, yEv)
			if err != nil {
				t.Fatal(err)
			}
			pred := m.PredictBatch(xEv)
			e := rmseOf(pred, yEv)
			if e > baseline/2 {
				t.Errorf("%s eval RMSE %.4f not < half of baseline %.4f", v, e, baseline)
			}
			if len(m.TrainLoss) == 0 || len(m.EvalLoss) == 0 {
				t.Error("loss curves not recorded")
			}
			if m.TrainLoss[len(m.TrainLoss)-1] >= m.TrainLoss[0] {
				t.Error("training loss did not decrease")
			}
		})
	}
}

func constPred(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func rmseOf(pred, y []float64) float64 {
	s := 0.0
	for i := range y {
		d := pred[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(y)))
}

func TestTrainingLossMonotoneWithoutSampling(t *testing.T) {
	// With full data, no sampling, squared loss boosting must never
	// increase training RMSE.
	x, y := synth(800, 6, 4)
	cfg := DefaultConfig(LevelWise)
	cfg.Rounds = 60
	cfg.EarlyStoppingRounds = 0
	m, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(m.TrainLoss); i++ {
		if m.TrainLoss[i] > m.TrainLoss[i-1]+1e-9 {
			t.Fatalf("train loss increased at round %d: %.6f -> %.6f",
				i, m.TrainLoss[i-1], m.TrainLoss[i])
		}
	}
}

func TestEarlyStoppingTruncates(t *testing.T) {
	x, y := synth(600, 6, 5)
	xTr, yTr, xEv, yEv := trainTestSplit(x, y, 0.5, 6)
	cfg := DefaultConfig(LevelWise)
	cfg.Rounds = 400
	cfg.EarlyStoppingRounds = 5
	m, err := Train(cfg, xTr, yTr, xEv, yEv)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trees) == 400 {
		t.Error("early stopping never triggered over 400 rounds")
	}
	if len(m.Trees) != m.BestIteration+1 {
		t.Errorf("trees %d != best iteration %d + 1", len(m.Trees), m.BestIteration)
	}
	// The kept prefix must be the best eval point.
	best := math.Inf(1)
	bestIdx := 0
	for i, e := range m.EvalLoss {
		if e < best-1e-12 {
			best, bestIdx = e, i
		}
	}
	if bestIdx != m.BestIteration {
		t.Errorf("BestIteration = %d, argmin eval = %d", m.BestIteration, bestIdx)
	}
}

func TestSingleLeafPredictsMean(t *testing.T) {
	x, y := synth(200, 4, 7)
	cfg := DefaultConfig(LevelWise)
	cfg.Rounds = 1
	cfg.MaxDepth = 0 // no splits allowed
	cfg.EarlyStoppingRounds = 0
	m, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	mean := linalg.Mean(y)
	got := m.Predict(x.Row(0))
	// One round with a single-leaf tree: base + shrunk residual-mean step.
	want := mean + (-(0.0 - 0.0))*0 // base only if leaf value ~0
	_ = want
	if math.Abs(got-mean) > math.Abs(mean)*0.2+0.5 {
		t.Errorf("single-leaf prediction %v far from mean %v", got, mean)
	}
	if m.Trees[0].NumLeaves() != 1 {
		t.Errorf("tree has %d leaves, want 1", m.Trees[0].NumLeaves())
	}
}

func TestObliviousTreesAreSymmetric(t *testing.T) {
	x, y := synth(1000, 8, 8)
	cfg := DefaultConfig(Oblivious)
	cfg.Rounds = 10
	cfg.EarlyStoppingRounds = 0
	m, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, tree := range m.Trees {
		if !tree.IsOblivious() {
			t.Errorf("tree %d is not oblivious", i)
		}
	}
}

func TestLeafWiseRespectsLeafBudget(t *testing.T) {
	x, y := synth(1500, 8, 9)
	cfg := DefaultConfig(LeafWise)
	cfg.Rounds = 5
	cfg.MaxLeaves = 8
	cfg.EarlyStoppingRounds = 0
	m, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, tree := range m.Trees {
		if n := tree.NumLeaves(); n > 8 {
			t.Errorf("tree %d has %d leaves, budget 8", i, n)
		}
	}
}

func TestLevelWiseRespectsDepth(t *testing.T) {
	x, y := synth(1500, 8, 10)
	cfg := DefaultConfig(LevelWise)
	cfg.Rounds = 5
	cfg.MaxDepth = 3
	cfg.EarlyStoppingRounds = 0
	m, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, tree := range m.Trees {
		if d := tree.Depth(); d > 3 {
			t.Errorf("tree %d has depth %d, max 3", i, d)
		}
	}
}

func TestPredictBinnedMatchesPredict(t *testing.T) {
	x, y := synth(800, 6, 11)
	cfg := DefaultConfig(LeafWise)
	cfg.Rounds = 20
	cfg.EarlyStoppingRounds = 0
	m, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cols := m.Bins.BinMatrix(x)
	for i := 0; i < x.Rows; i += 37 {
		raw := m.Base
		binned := m.Base
		for _, tree := range m.Trees {
			raw += tree.Predict(x.Row(i))
			binned += tree.predictBinned(cols, i)
		}
		if math.Abs(raw-binned) > 1e-9 {
			t.Fatalf("row %d: raw %.8f vs binned %.8f", i, raw, binned)
		}
	}
}

func TestColSampleAndSubsample(t *testing.T) {
	x, y := synth(800, 10, 12)
	cfg := DefaultConfig(LevelWise)
	cfg.Rounds = 15
	cfg.ColSample = 0.5
	cfg.Subsample = 0.7
	cfg.EarlyStoppingRounds = 0
	m, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rmseOf(m.PredictBatch(x), y) >= rmseOf(constPred(linalg.Mean(y), len(y)), y) {
		t.Error("sampled training failed to learn anything")
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	x, y := synth(500, 6, 13)
	cfg := DefaultConfig(LeafWise)
	cfg.Rounds = 10
	cfg.EarlyStoppingRounds = 0
	a, _ := Train(cfg, x, y, nil, nil)
	b, _ := Train(cfg, x, y, nil, nil)
	pa, pb := a.PredictBatch(x), b.PredictBatch(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed, different predictions")
		}
	}
}

func TestGainImportanceFindsSignalFeature(t *testing.T) {
	// y depends only on feature 0; importance must concentrate there.
	rng := rand.New(rand.NewSource(14))
	x := linalg.NewMatrix(1000, 5)
	y := make([]float64, 1000)
	for i := 0; i < 1000; i++ {
		for j := 0; j < 5; j++ {
			x.Set(i, j, rng.Float64()*10)
		}
		y[i] = 5 * x.At(i, 0)
	}
	cfg := DefaultConfig(LevelWise)
	cfg.Rounds = 20
	cfg.EarlyStoppingRounds = 0
	m, _ := Train(cfg, x, y, nil, nil)
	for j := 1; j < 5; j++ {
		if m.Gain[j] > m.Gain[0]*0.05 {
			t.Errorf("noise feature %d gain %.2f vs signal %.2f", j, m.Gain[j], m.Gain[0])
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	x, y := synth(400, 6, 15)
	cfg := DefaultConfig(Oblivious)
	cfg.Rounds = 8
	cfg.EarlyStoppingRounds = 0
	m, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := m.PredictBatch(x), got.PredictBatch(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("loaded model predicts differently")
		}
	}
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("Load accepted junk")
	}
}

func TestEmptyTrainingSetErrors(t *testing.T) {
	if _, err := Train(DefaultConfig(LevelWise), linalg.NewMatrix(0, 3), nil, nil, nil); err == nil {
		t.Error("Train accepted an empty dataset")
	}
}

func BenchmarkTrainLeafWise(b *testing.B) {
	x, y := synth(2000, 20, 1)
	cfg := DefaultConfig(LeafWise)
	cfg.Rounds = 30
	cfg.EarlyStoppingRounds = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(cfg, x, y, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	x, y := synth(2000, 20, 1)
	cfg := DefaultConfig(LevelWise)
	cfg.Rounds = 50
	cfg.EarlyStoppingRounds = 0
	m, _ := Train(cfg, x, y, nil, nil)
	row := x.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(row)
	}
}

func TestHistSubtractionEquivalence(t *testing.T) {
	// The parent-minus-sibling histogram trick must not change what the
	// trees learn (up to float rounding in tie-breaks): eval RMSE with and
	// without it must be essentially identical.
	x, y := synth(1500, 10, 21)
	xTr, yTr, xEv, yEv := trainTestSplit(x, y, 0.5, 22)
	for _, v := range []Variant{LevelWise, LeafWise} {
		cfg := DefaultConfig(v)
		cfg.Rounds = 40
		cfg.EarlyStoppingRounds = 0
		cfg.GOSS = false // keep row sets identical
		cfg.Subsample = 1
		fast, err := Train(cfg, xTr, yTr, xEv, yEv)
		if err != nil {
			t.Fatal(err)
		}
		cfg.DisableHistSubtraction = true
		slow, err := Train(cfg, xTr, yTr, xEv, yEv)
		if err != nil {
			t.Fatal(err)
		}
		a := rmseOf(fast.PredictBatch(xEv), yEv)
		b := rmseOf(slow.PredictBatch(xEv), yEv)
		if math.Abs(a-b) > 0.02*(a+b) {
			t.Errorf("%s: RMSE with subtraction %.5f vs without %.5f", v, a, b)
		}
	}
}
