package gbdt

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Save gob-encodes the model. The format is stable across runs of the same
// binary version and is what the AIIO web service's model registry stores.
func (m *Model) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("gbdt: encode model: %w", err)
	}
	return nil
}

// Load decodes a model written by Save and validates its tree structure, so
// a corrupted or truncated generation is rejected here — where the registry
// can fall back to an older generation — rather than panicking in
// Tree.Predict mid-request.
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("gbdt: decode model: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("gbdt: corrupt model: %w", err)
	}
	return &m, nil
}
