package gbdt

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// smallModel trains a tiny ensemble for corruption tests.
func smallModel(t testing.TB) *Model {
	t.Helper()
	x, y := synth(200, 6, 3)
	cfg := DefaultConfig(LevelWise)
	cfg.Rounds = 10
	m, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	return m
}

func TestValidateAcceptsTrainedModel(t *testing.T) {
	m := smallModel(t)
	if err := m.Validate(); err != nil {
		t.Fatalf("trained model failed validation: %v", err)
	}
	for _, tr := range m.Trees {
		if err := tr.Validate(6); err != nil {
			t.Fatalf("trained tree failed validation: %v", err)
		}
	}
}

func TestValidateRejectsCorruptTrees(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*Tree)
		want    string
	}{
		{"empty", func(tr *Tree) { *tr = Tree{} }, "no nodes"},
		{"ragged value", func(tr *Tree) { tr.Value = tr.Value[:len(tr.Value)-1] }, "ragged"},
		{"ragged left", func(tr *Tree) { tr.Left = tr.Left[:0] }, "ragged"},
		{"self cycle", func(tr *Tree) { tr.Left[0] = 0 }, "out of range"},
		{"backward edge", func(tr *Tree) {
			// point the last split's right child at the root
			for i := len(tr.Feature) - 1; i >= 0; i-- {
				if tr.Feature[i] >= 0 {
					tr.Right[i] = 0
					return
				}
			}
		}, "out of range"},
		{"child past end", func(tr *Tree) { tr.Left[0] = int32(len(tr.Feature)) }, "out of range"},
		{"feature out of bounds", func(tr *Tree) {
			for i, f := range tr.Feature {
				if f >= 0 {
					tr.Feature[i] = 99
					return
				}
			}
		}, "feature 99"},
		{"NaN threshold", func(tr *Tree) {
			for i, f := range tr.Feature {
				if f >= 0 {
					tr.Threshold[i] = math.NaN()
					return
				}
			}
		}, "NaN threshold"},
		{"NaN leaf", func(tr *Tree) {
			for i, f := range tr.Feature {
				if f < 0 {
					tr.Value[i] = math.NaN()
					return
				}
			}
		}, "non-finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := smallModel(t)
			tc.corrupt(m.Trees[0])
			err := m.Trees[0].Validate(6)
			if err == nil {
				t.Fatalf("corruption %q passed tree validation", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if err := m.Validate(); err == nil {
				t.Fatalf("corruption %q passed model validation", tc.name)
			}
		})
	}
}

func TestValidateRejectsModelLevelCorruption(t *testing.T) {
	m := smallModel(t)
	m.Base = math.Inf(1)
	if err := m.Validate(); err == nil {
		t.Fatal("non-finite base passed validation")
	}
	m = smallModel(t)
	m.Trees[1] = nil
	if err := m.Validate(); err == nil {
		t.Fatal("nil tree passed validation")
	}
	m = smallModel(t)
	m.Trees = nil
	if err := m.Validate(); err == nil {
		t.Fatal("empty ensemble passed validation")
	}
}

func TestLoadRejectsCorruptEncoding(t *testing.T) {
	m := smallModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Round trip works.
	if _, err := Load(bytes.NewReader(good)); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	// Truncations must error (gob decode failure or validation), never panic.
	for _, cut := range []int{1, len(good) / 4, len(good) / 2, len(good) - 3} {
		if _, err := Load(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncation to %d bytes loaded successfully", cut)
		}
	}
	// A structurally corrupt but decodable model must fail with the corrupt
	// marker so the registry treats it as a bad generation.
	m.Trees[0].Left[0] = 0
	var bad bytes.Buffer
	if err := m.Save(&bad); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&bad)
	if err == nil {
		t.Fatal("cyclic tree loaded successfully")
	}
	if !strings.Contains(err.Error(), "corrupt model") {
		t.Errorf("error %q does not carry the corrupt-model marker", err)
	}
}

// FuzzTreeValidate mutates a serialized tree and checks the contract the
// registry fallback relies on: any tree accepted by Validate must predict
// without panicking or looping, returning a finite value.
func FuzzTreeValidate(f *testing.F) {
	m := smallModel(f)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good, uint16(0))
	f.Add(good[:len(good)/2], uint16(3))
	f.Add([]byte{}, uint16(0))

	f.Fuzz(func(t *testing.T, data []byte, flip uint16) {
		// Deterministically flip a couple of bytes to reach decodable-but-
		// corrupt encodings, not just gob framing errors.
		if len(data) > 0 && flip > 0 {
			data = append([]byte(nil), data...)
			var fb [2]byte
			binary.LittleEndian.PutUint16(fb[:], flip)
			data[int(flip)%len(data)] ^= fb[0]
			data[(int(flip)*7+1)%len(data)] ^= fb[1]
		}
		m, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected: exactly what the fallback path wants
		}
		// Accepted: every traversal must terminate and stay finite.
		x := make([]float64, 6)
		for i := range x {
			x[i] = float64(i)*1.5 - 3
		}
		for _, tr := range m.Trees {
			if v := tr.Predict(x); math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("validated tree returned non-finite %v", v)
			}
		}
	})
}
