package gbdt

// Node is one node of a regression tree. Leaves have Feature == -1.
// Internal nodes route a sample left when its raw feature value is
// <= Threshold (equivalently, its bin is <= Bin).
type Node struct {
	Feature   int32
	Bin       uint8
	Threshold float64
	Left      int32
	Right     int32
	Value     float64 // leaf value (already shrunk by the learning rate)
}

// Tree is a flat-array regression tree.
type Tree struct {
	Nodes []Node
}

// leaf appends a leaf node and returns its index.
func (t *Tree) leaf(value float64) int32 {
	t.Nodes = append(t.Nodes, Node{Feature: -1, Value: value})
	return int32(len(t.Nodes) - 1)
}

// split appends an internal node and returns its index; children are
// patched in later.
func (t *Tree) split(feature int32, bin uint8, threshold float64) int32 {
	t.Nodes = append(t.Nodes, Node{Feature: feature, Bin: bin, Threshold: threshold})
	return int32(len(t.Nodes) - 1)
}

// Predict routes a raw (untransformed-by-binning) feature vector to a leaf.
func (t *Tree) Predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return n.Value
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// predictBinned routes a pre-binned sample (column-major bins) to a leaf.
func (t *Tree) predictBinned(cols [][]uint8, sample int) float64 {
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return n.Value
		}
		if cols[n.Feature][sample] <= n.Bin {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// NumLeaves counts the leaves.
func (t *Tree) NumLeaves() int {
	n := 0
	for i := range t.Nodes {
		if t.Nodes[i].Feature < 0 {
			n++
		}
	}
	return n
}

// Depth returns the maximum root-to-leaf depth (a single leaf has depth 0).
func (t *Tree) Depth() int {
	if len(t.Nodes) == 0 {
		return 0
	}
	var walk func(i int32) int
	walk = func(i int32) int {
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return 0
		}
		l, r := walk(n.Left), walk(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(0)
}

// IsOblivious reports whether every level of the tree splits on the same
// (feature, bin) pair — the CatBoost symmetric-tree property.
func (t *Tree) IsOblivious() bool {
	type key struct {
		f int32
		b uint8
	}
	levels := map[int]key{}
	var walk func(i int32, depth int) bool
	walk = func(i int32, depth int) bool {
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return true
		}
		k := key{n.Feature, n.Bin}
		if prev, ok := levels[depth]; ok {
			if prev != k {
				return false
			}
		} else {
			levels[depth] = k
		}
		return walk(n.Left, depth+1) && walk(n.Right, depth+1)
	}
	return walk(0, 0)
}
