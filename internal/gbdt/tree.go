package gbdt

import "github.com/hpc-repro/aiio/internal/linalg"

// Tree is a flat structure-of-arrays regression tree: six parallel slices
// indexed by node id. Leaves have Feature[i] == -1. Internal nodes route a
// sample left when its raw feature value is <= Threshold[i] (equivalently,
// its bin is <= Bin[i]). The builders append children after their parent,
// so child ids are always strictly greater than the parent id — the
// structural invariant Validate enforces and every traversal relies on for
// termination.
//
// The SoA layout replaces the former []Node array-of-structs: a tree walk
// touches only the arrays it needs (Feature/Threshold/Left/Right on the
// way down, Value once at the leaf), so a batch of rows streams through
// each tree with dense, well-predicted loads instead of 40-byte struct
// strides.
type Tree struct {
	Feature   []int32
	Bin       []uint8
	Threshold []float64
	Left      []int32
	Right     []int32
	Value     []float64
}

// NumNodes returns the node count.
func (t *Tree) NumNodes() int { return len(t.Feature) }

// leaf appends a leaf node and returns its index.
func (t *Tree) leaf(value float64) int32 {
	t.Feature = append(t.Feature, -1)
	t.Bin = append(t.Bin, 0)
	t.Threshold = append(t.Threshold, 0)
	t.Left = append(t.Left, 0)
	t.Right = append(t.Right, 0)
	t.Value = append(t.Value, value)
	return int32(len(t.Feature) - 1)
}

// setSplit turns node i into an internal node; children are patched into
// Left/Right by the caller once they exist.
func (t *Tree) setSplit(i, feature int32, bin uint8, threshold float64) {
	t.Feature[i] = feature
	t.Bin[i] = bin
	t.Threshold[i] = threshold
}

// Predict routes a raw (untransformed-by-binning) feature vector to a leaf.
func (t *Tree) Predict(x []float64) float64 {
	feat, thr, left, right := t.Feature, t.Threshold, t.Left, t.Right
	i := int32(0)
	for {
		f := feat[i]
		if f < 0 {
			return t.Value[i]
		}
		if x[f] <= thr[i] {
			i = left[i]
		} else {
			i = right[i]
		}
	}
}

// accumulateRows walks rows [lo, hi) of x through the tree and adds each
// row's leaf value to out[i]. Trees-outer/rows-inner is the batch layout
// PredictBatchInto uses: one tree's arrays stay hot while every row of the
// block streams through it.
func (t *Tree) accumulateRows(x *linalg.Matrix, lo, hi int, out []float64) {
	feat, thr, left, right, val := t.Feature, t.Threshold, t.Left, t.Right, t.Value
	data, cols := x.Data, x.Cols
	for i := lo; i < hi; i++ {
		row := data[i*cols : i*cols+cols]
		n := int32(0)
		for {
			f := feat[n]
			if f < 0 {
				out[i] += val[n]
				break
			}
			if row[f] <= thr[n] {
				n = left[n]
			} else {
				n = right[n]
			}
		}
	}
}

// predictBinned routes a pre-binned sample (column-major bins) to a leaf.
func (t *Tree) predictBinned(cols [][]uint8, sample int) float64 {
	feat, bin, left, right := t.Feature, t.Bin, t.Left, t.Right
	i := int32(0)
	for {
		f := feat[i]
		if f < 0 {
			return t.Value[i]
		}
		if cols[f][sample] <= bin[i] {
			i = left[i]
		} else {
			i = right[i]
		}
	}
}

// NumLeaves counts the leaves.
func (t *Tree) NumLeaves() int {
	n := 0
	for _, f := range t.Feature {
		if f < 0 {
			n++
		}
	}
	return n
}

// Depth returns the maximum root-to-leaf depth (a single leaf has depth 0).
func (t *Tree) Depth() int {
	if len(t.Feature) == 0 {
		return 0
	}
	var walk func(i int32) int
	walk = func(i int32) int {
		if t.Feature[i] < 0 {
			return 0
		}
		l, r := walk(t.Left[i]), walk(t.Right[i])
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(0)
}

// IsOblivious reports whether every level of the tree splits on the same
// (feature, bin) pair — the CatBoost symmetric-tree property.
func (t *Tree) IsOblivious() bool {
	type key struct {
		f int32
		b uint8
	}
	levels := map[int]key{}
	var walk func(i int32, depth int) bool
	walk = func(i int32, depth int) bool {
		if t.Feature[i] < 0 {
			return true
		}
		k := key{t.Feature[i], t.Bin[i]}
		if prev, ok := levels[depth]; ok {
			if prev != k {
				return false
			}
		} else {
			levels[depth] = k
		}
		return walk(t.Left[i], depth+1) && walk(t.Right[i], depth+1)
	}
	return walk(0, 0)
}
