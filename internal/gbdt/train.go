package gbdt

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/hpc-repro/aiio/internal/linalg"
	"github.com/hpc-repro/aiio/internal/parallel"
)

// Variant selects the tree-growth strategy.
type Variant int

// The three growth strategies, matching the paper's gradient-boosting
// models.
const (
	// LevelWise grows depth-synchronously (XGBoost).
	LevelWise Variant = iota
	// LeafWise grows best-gain-first with a leaf budget and GOSS (LightGBM).
	LeafWise
	// Oblivious grows symmetric trees with per-tree bagging (CatBoost).
	Oblivious
)

// String names the variant after the library it models.
func (v Variant) String() string {
	switch v {
	case LevelWise:
		return "xgboost"
	case LeafWise:
		return "lightgbm"
	case Oblivious:
		return "catboost"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Config holds the training hyperparameters. The defaults follow the
// paper's practice of keeping library defaults.
type Config struct {
	Variant      Variant
	Rounds       int
	LearningRate float64
	// MaxDepth bounds LevelWise and Oblivious trees.
	MaxDepth int
	// MaxLeaves bounds LeafWise trees.
	MaxLeaves int
	// MinChildWeight is the minimum hessian sum in a child.
	MinChildWeight float64
	// Lambda is the L2 regularizer on leaf values.
	Lambda float64
	// Gamma is the minimum gain required to split.
	Gamma float64
	// MaxBins caps the histogram bins per feature.
	MaxBins int
	// Subsample is the per-tree row sampling rate (Oblivious bagging).
	Subsample float64
	// ColSample is the per-tree feature sampling rate.
	ColSample float64
	// GOSS enables gradient-based one-side sampling (LeafWise).
	GOSS          bool
	GOSSTopRate   float64
	GOSSOtherRate float64
	// EarlyStoppingRounds stops training when the eval RMSE has not
	// improved for this many rounds (the paper uses 10). Zero disables.
	EarlyStoppingRounds int
	// DisableHistSubtraction turns off the parent−sibling histogram trick
	// (LightGBM/XGBoost's key histogram optimization) and rebuilds every
	// node's histogram from its samples. Exists for the equivalence test
	// and the ablation benchmark; results are identical either way.
	DisableHistSubtraction bool
	Seed                   int64
}

// DefaultConfig returns library-default-like hyperparameters for a variant.
func DefaultConfig(v Variant) Config {
	cfg := Config{
		Variant:             v,
		Rounds:              300,
		LearningRate:        0.1,
		MaxDepth:            6,
		MaxLeaves:           31,
		MinChildWeight:      1,
		Lambda:              1,
		Gamma:               0,
		MaxBins:             MaxBins,
		Subsample:           1,
		ColSample:           1,
		EarlyStoppingRounds: 10,
		Seed:                1,
	}
	switch v {
	case LeafWise:
		cfg.GOSS = true
		cfg.GOSSTopRate = 0.2
		cfg.GOSSOtherRate = 0.1
	case Oblivious:
		cfg.Subsample = 0.8
	}
	return cfg
}

// Model is a trained boosted ensemble.
type Model struct {
	Config Config
	Bins   *BinMapper
	Trees  []*Tree
	// Base is the initial prediction (mean of the training targets).
	Base float64
	// BestIteration is the tree count selected by early stopping.
	BestIteration int
	// TrainLoss and EvalLoss record the per-round RMSE curves (the paper's
	// Fig. 16 plots the eval curve for XGBoost).
	TrainLoss []float64
	EvalLoss  []float64
	// Gain accumulates total split gain per feature (importance).
	Gain []float64
}

// Predict returns the model output for one raw feature vector.
func (m *Model) Predict(x []float64) float64 {
	s := m.Base
	for _, t := range m.Trees {
		s += t.Predict(x)
	}
	return s
}

// PredictBatch predicts every row of x in parallel.
func (m *Model) PredictBatch(x *linalg.Matrix) []float64 {
	out := make([]float64, x.Rows)
	m.PredictBatchInto(x, out)
	return out
}

// PredictBatchInto predicts every row of x into out (len(out) == x.Rows)
// without allocating. Within each shard the walk is trees-outer/rows-inner:
// one tree's SoA arrays stay cache-hot while the whole row block streams
// through it, instead of re-touching every tree per row.
func (m *Model) PredictBatchInto(x *linalg.Matrix, out []float64) {
	if len(out) != x.Rows {
		panic(fmt.Sprintf("gbdt: PredictBatchInto out %d, want %d", len(out), x.Rows))
	}
	parallelFor(x.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = m.Base
		}
		for _, t := range m.Trees {
			t.accumulateRows(x, lo, hi, out)
		}
	})
}

// parallelFor splits [0, n) across the shared bounded worker pool; small
// batches stay sequential because the per-row work is a few tree walks.
func parallelFor(n int, fn func(lo, hi int)) {
	if n < 256 {
		fn(0, n)
		return
	}
	parallel.For(n, 0, fn)
}

// trainer carries the per-fit state.
type trainer struct {
	cfg   Config
	bins  *BinMapper
	cols  [][]uint8 // column-major binned training features
	nBins []int
	y     []float64
	grad  []float64
	hess  []float64
	pred  []float64
	rng   *rand.Rand

	// Per-tree sampling state.
	idx      []int32 // sample indices the current tree trains on
	features []int   // feature subset for the current tree
	order    []int32 // GOSS selection scratch (row permutation)
	topMark  []bool  // GOSS scratch: row is in the top-gradient set

	// histPool recycles node histograms across nodes and trees; with the
	// paper's 86-feature schema each one is a multi-KB slab, and without the
	// pool every expanded node allocates two.
	histPool []*histogram
	// splitScratch is bestSplit's per-feature candidate buffer, reused
	// across nodes (parallelFor writes disjoint slots, so no aliasing).
	splitScratch []splitCandidate
}

// Train fits a boosted ensemble on x/y. evalX/evalY form the held-out set
// used for early stopping and the eval-loss curve; they may be nil to train
// for the full round budget.
func Train(cfg Config, x *linalg.Matrix, y []float64, evalX *linalg.Matrix, evalY []float64) (*Model, error) {
	return train(cfg, x, y, evalX, evalY, nil, nil)
}

// TrainWarm fits like Train but continues boosting from prev's ensemble:
// the new model starts from prev's base score and trees (shared by pointer —
// trees are immutable once built) and cfg.Rounds adds new trees on top, so
// incremental retraining can run on a reduced round budget. Trees split on
// raw thresholds, so prior trees remain exact on the re-binned new data;
// only the new trees use the freshly fit bins. When an eval set is given,
// the seed ensemble's eval RMSE is the early-stopping baseline, so a warm
// run that never improves on its seed ships the seed trees unchanged
// (BestIteration then points at the last prior tree). When CanWarmStart
// rejects prev it falls back to a cold start.
func TrainWarm(cfg Config, x *linalg.Matrix, y []float64, evalX *linalg.Matrix, evalY []float64, prev *Model) (*Model, error) {
	seed, _ := CheckWarmStart(prev, cfg, x, y)
	return TrainSeeded(cfg, x, y, evalX, evalY, seed)
}

// TrainSeeded is TrainWarm for callers that already hold a CheckWarmStart
// seed (e.g. the ensemble trainer, which checks first to record the
// fallback reason): it continues boosting from the seed without re-running
// the validation or refitting the bins, and cold-starts when seed is nil.
func TrainSeeded(cfg Config, x *linalg.Matrix, y []float64, evalX *linalg.Matrix, evalY []float64, seed *WarmSeed) (*Model, error) {
	if seed == nil {
		return train(cfg, x, y, evalX, evalY, nil, nil)
	}
	return train(cfg, x, y, evalX, evalY, seed.prev, seed.bins)
}

// train fits the ensemble; prev non-nil continues boosting from it, and a
// non-nil bins (fit on this same x by CheckWarmStart) skips the refit.
func train(cfg Config, x *linalg.Matrix, y []float64, evalX *linalg.Matrix, evalY []float64, prev *Model, bins *BinMapper) (*Model, error) {
	if x.Rows != len(y) {
		panic(fmt.Sprintf("gbdt: %d rows vs %d targets", x.Rows, len(y)))
	}
	if x.Rows == 0 {
		return nil, errors.New("gbdt: empty training set")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.MaxBins <= 0 {
		cfg.MaxBins = MaxBins
	}

	if bins == nil {
		bins = FitBins(x, cfg.MaxBins)
	}
	tr := &trainer{
		cfg:   cfg,
		bins:  bins,
		cols:  bins.BinMatrix(x),
		nBins: make([]int, x.Cols),
		y:     y,
		grad:  make([]float64, x.Rows),
		hess:  make([]float64, x.Rows),
		pred:  make([]float64, x.Rows),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	for f := 0; f < x.Cols; f++ {
		tr.nBins[f] = bins.NumBins(f)
	}

	m := &Model{
		Config: cfg,
		Bins:   bins,
		Base:   linalg.Mean(y),
		Gain:   make([]float64, x.Cols),
	}
	if prev != nil {
		// Continue boosting: prior trees predict via their raw thresholds,
		// so the running predictions seed from the full prior ensemble.
		m.Base = prev.Base
		m.Trees = append(make([]*Tree, 0, len(prev.Trees)+cfg.Rounds), prev.Trees...)
		copy(m.Gain, prev.Gain)
		prev.PredictBatchInto(x, tr.pred)
	} else {
		for i := range tr.pred {
			tr.pred[i] = m.Base
		}
	}

	var evalPred []float64
	var evalCols [][]uint8
	if evalX != nil && evalX.Rows > 0 {
		if evalX.Rows != len(evalY) {
			panic(fmt.Sprintf("gbdt: %d eval rows vs %d eval targets", evalX.Rows, len(evalY)))
		}
		evalCols = bins.BinMatrix(evalX)
		evalPred = make([]float64, evalX.Rows)
		if prev != nil {
			prev.PredictBatchInto(evalX, evalPred)
		} else {
			for i := range evalPred {
				evalPred[i] = m.Base
			}
		}
	}

	nPrev := len(m.Trees)
	bestEval := math.Inf(1)
	bestIter := nPrev - 1 // cold: -1, immediately beaten by round 0
	sinceBest := 0
	if prev != nil && evalPred != nil {
		bestEval = rmse(evalPred, evalY)
	}

	for round := 0; round < cfg.Rounds; round++ {
		// Squared loss: gradient = residual, hessian = 1.
		for i := range tr.grad {
			tr.grad[i] = tr.pred[i] - y[i]
			tr.hess[i] = 1
		}
		tr.sampleRows()
		tr.sampleFeatures(x.Cols)

		tree := tr.buildTree(m)
		m.Trees = append(m.Trees, tree)

		// Update running predictions with the new tree.
		parallelFor(len(tr.pred), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				tr.pred[i] += tree.predictBinned(tr.cols, i)
			}
		})
		m.TrainLoss = append(m.TrainLoss, rmse(tr.pred, y))

		if evalPred != nil {
			parallelFor(len(evalPred), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					evalPred[i] += tree.predictBinned(evalCols, i)
				}
			})
			e := rmse(evalPred, evalY)
			m.EvalLoss = append(m.EvalLoss, e)
			if e < bestEval-1e-12 {
				bestEval = e
				bestIter = nPrev + round
				sinceBest = 0
			} else {
				sinceBest++
				if cfg.EarlyStoppingRounds > 0 && sinceBest >= cfg.EarlyStoppingRounds {
					break
				}
			}
		} else {
			bestIter = nPrev + round
		}
	}

	m.BestIteration = bestIter
	m.Trees = m.Trees[:bestIter+1]
	return m, nil
}

func rmse(pred, y []float64) float64 {
	s := 0.0
	for i := range y {
		d := pred[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(y)))
}

// sampleRows selects the current tree's training rows: GOSS for LeafWise,
// uniform bagging when Subsample < 1, everything otherwise. GOSS amplifies
// the hessian and gradient of the sampled small-gradient rows to keep the
// distribution unbiased.
func (tr *trainer) sampleRows() {
	n := len(tr.y)
	tr.idx = tr.idx[:0]
	switch {
	case tr.cfg.GOSS && tr.cfg.GOSSTopRate > 0 && tr.cfg.GOSSTopRate < 1:
		topN := int(tr.cfg.GOSSTopRate * float64(n))
		if topN < 1 {
			topN = 1
		}
		// Select the topN largest |grad| by partial quickselect — O(n)
		// instead of the former full sort — into trainer scratch, then
		// mark-and-sweep rows in ascending index order. The selected set is
		// identical to the sorted version (the order is total: |grad|
		// descending, ties by ascending index), but the remainder is now
		// sampled in index order rather than gradient order, so the rng
		// stream differs from pre-quickselect builds at equal seeds.
		if cap(tr.order) < n {
			tr.order = make([]int32, n)
			tr.topMark = make([]bool, n)
		}
		order, mark := tr.order[:n], tr.topMark[:n]
		for i := range order {
			order[i] = int32(i)
		}
		selectTopAbsGrad(order, tr.grad, topN)
		for i := range mark {
			mark[i] = false
		}
		for _, i := range order[:topN] {
			mark[i] = true
		}
		amplify := (1 - tr.cfg.GOSSTopRate) / tr.cfg.GOSSOtherRate
		for i := 0; i < n; i++ {
			if mark[i] {
				tr.idx = append(tr.idx, int32(i))
			} else if tr.rng.Float64() < tr.cfg.GOSSOtherRate {
				tr.grad[i] *= amplify
				tr.hess[i] *= amplify
				tr.idx = append(tr.idx, int32(i))
			}
		}
	case tr.cfg.Subsample > 0 && tr.cfg.Subsample < 1:
		for i := 0; i < n; i++ {
			if tr.rng.Float64() < tr.cfg.Subsample {
				tr.idx = append(tr.idx, int32(i))
			}
		}
		if len(tr.idx) == 0 {
			tr.idx = append(tr.idx, int32(tr.rng.Intn(n)))
		}
	default:
		for i := 0; i < n; i++ {
			tr.idx = append(tr.idx, int32(i))
		}
	}
}

// gossBefore is the GOSS selection order: |grad| descending with ties
// broken by ascending index. Indices are distinct, so the order is total
// and the selected top-k set is unique regardless of pivot choices.
func gossBefore(grad []float64, a, b int32) bool {
	ga, gb := math.Abs(grad[a]), math.Abs(grad[b])
	if ga != gb {
		return ga > gb
	}
	return a < b
}

// selectTopAbsGrad partially reorders order in place so order[:k] holds the
// k first rows under gossBefore (internal order unspecified). Iterative
// median-of-three quickselect with an insertion-sorted base case: expected
// O(n), no allocation — replacing the former full sort.Slice, whose closure
// compares and O(n log n) passes dominated GOSS tree setup.
func selectTopAbsGrad(order []int32, grad []float64, k int) {
	if k <= 0 || k >= len(order) {
		return
	}
	lo, hi := 0, len(order)
	for hi-lo > 16 {
		mid := lo + (hi-lo)/2
		a, b, c := order[lo], order[mid], order[hi-1]
		var pv int32
		if gossBefore(grad, a, b) {
			switch {
			case gossBefore(grad, b, c):
				pv = b
			case gossBefore(grad, a, c):
				pv = c
			default:
				pv = a
			}
		} else {
			switch {
			case gossBefore(grad, a, c):
				pv = a
			case gossBefore(grad, b, c):
				pv = c
			default:
				pv = b
			}
		}
		i, j := lo, hi-1
		for i <= j {
			for gossBefore(grad, order[i], pv) {
				i++
			}
			for gossBefore(grad, pv, order[j]) {
				j--
			}
			if i <= j {
				order[i], order[j] = order[j], order[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j + 1
		case k >= i:
			lo = i
		default:
			return // boundary landed on the pivot slot
		}
	}
	for x := lo + 1; x < hi; x++ {
		o := order[x]
		y := x
		for y > lo && gossBefore(grad, o, order[y-1]) {
			order[y] = order[y-1]
			y--
		}
		order[y] = o
	}
}

// sampleFeatures picks the feature subset for the current tree.
func (tr *trainer) sampleFeatures(nFeat int) {
	tr.features = tr.features[:0]
	if tr.cfg.ColSample <= 0 || tr.cfg.ColSample >= 1 {
		for f := 0; f < nFeat; f++ {
			tr.features = append(tr.features, f)
		}
		return
	}
	for f := 0; f < nFeat; f++ {
		if tr.rng.Float64() < tr.cfg.ColSample {
			tr.features = append(tr.features, f)
		}
	}
	if len(tr.features) == 0 {
		tr.features = append(tr.features, tr.rng.Intn(nFeat))
	}
}

// histogram is a per-node (feature, bin) accumulation of gradient and
// hessian sums, stored flat as [featureSlot][bin]{grad, hess}.
type histogram struct {
	data  []float64 // 2 * totalBins
	base  []int     // per feature slot, offset into data/2
	nBins []int
}

// newHistogram returns a histogram shaped for the current tree's feature
// subset, reusing a pooled slab when one is available. The data slab is NOT
// zeroed on reuse: every consumer either accumulates via buildHist (which
// zeroes first) or overwrites every element via subtractHist.
func (tr *trainer) newHistogram() *histogram {
	var h *histogram
	if n := len(tr.histPool); n > 0 {
		h = tr.histPool[n-1]
		tr.histPool = tr.histPool[:n-1]
	} else {
		h = &histogram{}
	}
	nf := len(tr.features)
	if cap(h.nBins) < nf {
		h.nBins = make([]int, nf)
		h.base = make([]int, nf)
	}
	h.nBins = h.nBins[:nf]
	h.base = h.base[:nf]
	total := 0
	for s, f := range tr.features {
		h.base[s] = total
		h.nBins[s] = tr.nBins[f]
		total += tr.nBins[f]
	}
	if cap(h.data) < 2*total {
		h.data = make([]float64, 2*total)
	}
	h.data = h.data[:2*total]
	return h
}

// freeHist returns h (nil is fine) to the pool; h must not be used after.
func (tr *trainer) freeHist(h *histogram) {
	if h != nil {
		tr.histPool = append(tr.histPool, h)
	}
}

// subtractHist computes dst = parent − sibling element-wise (the
// histogram-subtraction trick: a child's histogram is its parent's minus
// its sibling's, so only the smaller child needs a fresh accumulation).
func subtractHist(dst, parent, sibling *histogram) {
	linalg.ESub(dst.data, parent.data, sibling.data)
}

// childHists produces the two child histograms of a split at mid, building
// the smaller side directly and deriving the larger by subtraction (unless
// disabled, in which case both are built directly).
func (tr *trainer) childHists(parent *histogram, lo, mid, hi int) (left, right *histogram) {
	left = tr.newHistogram()
	right = tr.newHistogram()
	if tr.cfg.DisableHistSubtraction || parent == nil {
		tr.buildHist(left, lo, mid)
		tr.buildHist(right, mid, hi)
		return left, right
	}
	if mid-lo <= hi-mid {
		tr.buildHist(left, lo, mid)
		subtractHist(right, parent, left)
	} else {
		tr.buildHist(right, mid, hi)
		subtractHist(left, parent, right)
	}
	return left, right
}

// build accumulates the histogram over samples idx[lo:hi], parallel across
// feature slots.
func (tr *trainer) buildHist(h *histogram, lo, hi int) {
	for i := range h.data {
		h.data[i] = 0
	}
	samples := tr.idx[lo:hi]
	parallelFor(len(tr.features), func(slo, shi int) {
		for s := slo; s < shi; s++ {
			f := tr.features[s]
			col := tr.cols[f]
			base := 2 * h.base[s]
			data := h.data
			for _, i := range samples {
				b := base + 2*int(col[i])
				data[b] += tr.grad[i]
				data[b+1] += tr.hess[i]
			}
		}
	})
}

// splitCandidate describes the best split found for a node.
type splitCandidate struct {
	gain      float64
	slot      int // index into tr.features
	bin       uint8
	gl, hl    float64
	gr, hr    float64
	sumG      float64
	sumH      float64
	valid     bool
	leftCount int
}

// leafValue is the regularized Newton step for a leaf.
func (tr *trainer) leafValue(g, h float64) float64 {
	return -g / (h + tr.cfg.Lambda) * tr.cfg.LearningRate
}

// scoreHalf is the structure score of one side.
func (tr *trainer) score(g, h float64) float64 {
	return g * g / (h + tr.cfg.Lambda)
}

// bestSplit scans a histogram for the best (feature, bin) split of a node
// with totals sumG/sumH.
func (tr *trainer) bestSplit(h *histogram, sumG, sumH float64) splitCandidate {
	best := splitCandidate{gain: 0, sumG: sumG, sumH: sumH}
	parent := tr.score(sumG, sumH)
	if cap(tr.splitScratch) < len(tr.features) {
		tr.splitScratch = make([]splitCandidate, len(tr.features))
	}
	results := tr.splitScratch[:len(tr.features)]
	parallelFor(len(tr.features), func(slo, shi int) {
		for s := slo; s < shi; s++ {
			local := splitCandidate{sumG: sumG, sumH: sumH}
			gl, hl := 0.0, 0.0
			base := 2 * h.base[s]
			// A split "at bin b" sends bins <= b left; the last bin cannot
			// be a split point.
			for b := 0; b < h.nBins[s]-1; b++ {
				g, hw := h.data[base+2*b], h.data[base+2*b+1]
				// An empty bin leaves the prefix sums unchanged, so its
				// candidate has exactly the previous bin's gain and the
				// strict > below would ignore it anyway. With far fewer
				// node samples than (feature, bin) cells, most bins are
				// empty, and skipping them skips most of the scoring.
				if g == 0 && hw == 0 {
					continue
				}
				gl += g
				hl += hw
				gr := sumG - gl
				hr := sumH - hl
				if hl < tr.cfg.MinChildWeight || hr < tr.cfg.MinChildWeight {
					continue
				}
				gain := 0.5*(tr.score(gl, hl)+tr.score(gr, hr)-parent) - tr.cfg.Gamma
				if gain > local.gain {
					local = splitCandidate{
						gain: gain, slot: s, bin: uint8(b),
						gl: gl, hl: hl, gr: gr, hr: hr,
						sumG: sumG, sumH: sumH, valid: true,
					}
				}
			}
			results[s] = local
		}
	})
	for _, c := range results {
		if c.valid && c.gain > best.gain {
			best = c
		}
	}
	return best
}

// partition reorders idx[lo:hi] so samples going left (bin <= splitBin on
// feature f) come first; returns the boundary.
func (tr *trainer) partition(lo, hi, f int, splitBin uint8) int {
	col := tr.cols[f]
	i, j := lo, hi-1
	for i <= j {
		if col[tr.idx[i]] <= splitBin {
			i++
		} else {
			tr.idx[i], tr.idx[j] = tr.idx[j], tr.idx[i]
			j--
		}
	}
	return i
}

// sums computes gradient/hessian totals over idx[lo:hi].
func (tr *trainer) sums(lo, hi int) (g, h float64) {
	for _, i := range tr.idx[lo:hi] {
		g += tr.grad[i]
		h += tr.hess[i]
	}
	return g, h
}

// buildTree dispatches on the variant.
func (tr *trainer) buildTree(m *Model) *Tree {
	switch tr.cfg.Variant {
	case LeafWise:
		return tr.buildLeafWise(m)
	case Oblivious:
		return tr.buildOblivious(m)
	default:
		return tr.buildLevelWise(m)
	}
}

// levelTask is a node pending expansion. hist is the node's (feature, bin)
// gradient histogram, either accumulated directly or derived from the
// parent's by subtraction.
type levelTask struct {
	node   int32
	lo, hi int
	sumG   float64
	sumH   float64
	depth  int
	hist   *histogram
}

// buildLevelWise grows the tree depth by depth (XGBoost style).
func (tr *trainer) buildLevelWise(m *Model) *Tree {
	t := &Tree{}
	g, h := tr.sums(0, len(tr.idx))
	root := t.leaf(tr.leafValue(g, h))
	rootHist := tr.newHistogram()
	tr.buildHist(rootHist, 0, len(tr.idx))
	queue := []levelTask{{node: root, lo: 0, hi: len(tr.idx), sumG: g, sumH: h, hist: rootHist}}
	for len(queue) > 0 {
		task := queue[0]
		queue = queue[1:]
		if task.depth >= tr.cfg.MaxDepth || task.hi-task.lo < 2 || task.hist == nil {
			tr.freeHist(task.hist)
			continue
		}
		cand := tr.bestSplit(task.hist, task.sumG, task.sumH)
		if !cand.valid {
			tr.freeHist(task.hist)
			continue
		}
		f := tr.features[cand.slot]
		mid := tr.partition(task.lo, task.hi, f, cand.bin)
		if mid == task.lo || mid == task.hi {
			tr.freeHist(task.hist)
			continue
		}
		m.Gain[f] += cand.gain
		t.setSplit(task.node, int32(f), cand.bin, tr.bins.Upper(f, cand.bin))
		left := t.leaf(tr.leafValue(cand.gl, cand.hl))
		right := t.leaf(tr.leafValue(cand.gr, cand.hr))
		t.Left[task.node] = left
		t.Right[task.node] = right
		var lh, rh *histogram
		if task.depth+1 < tr.cfg.MaxDepth {
			lh, rh = tr.childHists(task.hist, task.lo, mid, task.hi)
		}
		tr.freeHist(task.hist)
		queue = append(queue,
			levelTask{node: left, lo: task.lo, hi: mid, sumG: cand.gl, sumH: cand.hl, depth: task.depth + 1, hist: lh},
			levelTask{node: right, lo: mid, hi: task.hi, sumG: cand.gr, sumH: cand.hr, depth: task.depth + 1, hist: rh},
		)
	}
	return t
}

// leafHeapItem is a leaf with its best candidate split, ordered by gain.
type leafHeapItem struct {
	task levelTask
	cand splitCandidate
}

type leafHeap []leafHeapItem

func (h leafHeap) Len() int            { return len(h) }
func (h leafHeap) Less(i, j int) bool  { return h[i].cand.gain > h[j].cand.gain }
func (h leafHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *leafHeap) Push(x interface{}) { *h = append(*h, x.(leafHeapItem)) }
func (h *leafHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// buildLeafWise grows best-first until MaxLeaves (LightGBM style).
func (tr *trainer) buildLeafWise(m *Model) *Tree {
	t := &Tree{}
	g, h := tr.sums(0, len(tr.idx))
	root := t.leaf(tr.leafValue(g, h))

	evaluate := func(task levelTask) leafHeapItem {
		if task.hi-task.lo < 2 || task.hist == nil {
			tr.freeHist(task.hist)
			task.hist = nil
			return leafHeapItem{task: task}
		}
		return leafHeapItem{task: task, cand: tr.bestSplit(task.hist, task.sumG, task.sumH)}
	}

	rootHist := tr.newHistogram()
	tr.buildHist(rootHist, 0, len(tr.idx))
	pq := &leafHeap{}
	heap.Push(pq, evaluate(levelTask{node: root, lo: 0, hi: len(tr.idx), sumG: g, sumH: h, hist: rootHist}))
	leaves := 1
	for leaves < tr.cfg.MaxLeaves && pq.Len() > 0 {
		item := heap.Pop(pq).(leafHeapItem)
		if !item.cand.valid {
			tr.freeHist(item.task.hist)
			continue
		}
		task := item.task
		f := tr.features[item.cand.slot]
		mid := tr.partition(task.lo, task.hi, f, item.cand.bin)
		if mid == task.lo || mid == task.hi {
			tr.freeHist(task.hist)
			continue
		}
		m.Gain[f] += item.cand.gain
		t.setSplit(task.node, int32(f), item.cand.bin, tr.bins.Upper(f, item.cand.bin))
		left := t.leaf(tr.leafValue(item.cand.gl, item.cand.hl))
		right := t.leaf(tr.leafValue(item.cand.gr, item.cand.hr))
		t.Left[task.node] = left
		t.Right[task.node] = right
		leaves++
		lh, rh := tr.childHists(task.hist, task.lo, mid, task.hi)
		tr.freeHist(task.hist)
		heap.Push(pq, evaluate(levelTask{node: left, lo: task.lo, hi: mid, sumG: item.cand.gl, sumH: item.cand.hl, depth: task.depth + 1, hist: lh}))
		heap.Push(pq, evaluate(levelTask{node: right, lo: mid, hi: task.hi, sumG: item.cand.gr, sumH: item.cand.hr, depth: task.depth + 1, hist: rh}))
	}
	// Leaves never expanded still hold live histograms; recycle them for the
	// next tree.
	for _, it := range *pq {
		tr.freeHist(it.task.hist)
	}
	return t
}

// buildOblivious grows a symmetric tree: one (feature, bin) split per level,
// chosen to maximize the summed gain across all current leaves (CatBoost
// style).
func (tr *trainer) buildOblivious(m *Model) *Tree {
	t := &Tree{}
	g, h := tr.sums(0, len(tr.idx))
	root := t.leaf(tr.leafValue(g, h))
	level := []levelTask{{node: root, lo: 0, hi: len(tr.idx), sumG: g, sumH: h}}
	hist := tr.newHistogram()

	for depth := 0; depth < tr.cfg.MaxDepth; depth++ {
		// Accumulate per-leaf histograms and score each candidate by the
		// total gain over all leaves.
		type leafHist struct {
			data []float64
		}
		hists := make([]leafHist, len(level))
		for li, task := range level {
			tr.buildHist(hist, task.lo, task.hi)
			cp := make([]float64, len(hist.data))
			copy(cp, hist.data)
			hists[li] = leafHist{data: cp}
		}
		bestGain := 0.0
		bestSlot, bestBin := -1, uint8(0)
		for s := range tr.features {
			base := 2 * hist.base[s]
			for b := 0; b < hist.nBins[s]-1; b++ {
				total := 0.0
				ok := false
				for li, task := range level {
					gl, hl := 0.0, 0.0
					for bb := 0; bb <= b; bb++ {
						gl += hists[li].data[base+2*bb]
						hl += hists[li].data[base+2*bb+1]
					}
					gr := task.sumG - gl
					hr := task.sumH - hl
					if hl < tr.cfg.MinChildWeight || hr < tr.cfg.MinChildWeight {
						continue
					}
					gain := 0.5*(tr.score(gl, hl)+tr.score(gr, hr)-tr.score(task.sumG, task.sumH)) - tr.cfg.Gamma
					if gain > 0 {
						total += gain
						ok = true
					}
				}
				if ok && total > bestGain {
					bestGain = total
					bestSlot = s
					bestBin = uint8(b)
				}
			}
		}
		if bestSlot < 0 {
			break
		}
		f := tr.features[bestSlot]
		m.Gain[f] += bestGain
		threshold := tr.bins.Upper(f, bestBin)

		next := make([]levelTask, 0, 2*len(level))
		for _, task := range level {
			mid := tr.partition(task.lo, task.hi, f, bestBin)
			gl, hl := tr.sums(task.lo, mid)
			gr, hr := task.sumG-gl, task.sumH-hl
			parentValue := t.Value[task.node]
			t.setSplit(task.node, int32(f), bestBin, threshold)
			lv, rv := tr.leafValue(gl, hl), tr.leafValue(gr, hr)
			// Empty children inherit the parent value so unseen samples
			// falling there still get a sensible prediction.
			if mid == task.lo {
				lv = parentValue
			}
			if mid == task.hi {
				rv = parentValue
			}
			left := t.leaf(lv)
			right := t.leaf(rv)
			t.Left[task.node] = left
			t.Right[task.node] = right
			if mid > task.lo {
				next = append(next, levelTask{node: left, lo: task.lo, hi: mid, sumG: gl, sumH: hl})
			}
			if mid < task.hi {
				next = append(next, levelTask{node: right, lo: mid, hi: task.hi, sumG: gr, sumH: hr})
			}
		}
		level = next
		if len(level) == 0 {
			break
		}
	}
	tr.freeHist(hist)
	return t
}
