// Package gbdt implements histogram-based gradient-boosted decision trees
// for regression with squared loss — the model family behind three of
// AIIO's five performance functions. One engine supports three growth
// strategies matching the paper's model set:
//
//   - LevelWise: depth-synchronous growth as in XGBoost, with second-order
//     gain, L2 leaf regularization (λ) and minimum split gain (γ);
//   - LeafWise: best-first leaf growth with a leaf budget plus
//     gradient-based one-side sampling (GOSS), as in LightGBM;
//   - Oblivious: symmetric trees (one split per level shared by all nodes)
//     with per-tree bagging as a practical stand-in for ordered boosting,
//     as in CatBoost.
//
// Features are pre-binned with a dedicated zero bin so the sparsity of the
// Darshan counters (Section 3.1 of the paper) is preserved end to end, and
// training supports the paper's early stopping (10 rounds) against a held-
// out evaluation set.
package gbdt

import (
	"fmt"
	"sort"

	"github.com/hpc-repro/aiio/internal/linalg"
)

// MaxBins is the number of histogram bins per feature, including the
// reserved zero bin.
const MaxBins = 256

// BinMapper discretizes raw feature values into bins. Bin 0 is reserved for
// exact zeros (the Darshan sparsity bin); positive values map to quantile
// bins 1..len(Uppers). A value maps to the smallest bin whose upper bound is
// >= the value.
type BinMapper struct {
	// Uppers[f] holds the ascending upper bounds of bins 1..len(Uppers[f])
	// for feature f. The last bound is +Inf conceptually: values above all
	// bounds map to the last bin.
	Uppers [][]float64
}

// FitBins builds a BinMapper from the training matrix using per-feature
// quantiles of the non-zero values.
func FitBins(x *linalg.Matrix, maxBins int) *BinMapper {
	if maxBins < 2 {
		maxBins = 2
	}
	if maxBins > MaxBins {
		maxBins = MaxBins
	}
	bm := &BinMapper{Uppers: make([][]float64, x.Cols)}
	vals := make([]float64, 0, x.Rows)
	for f := 0; f < x.Cols; f++ {
		vals = vals[:0]
		for i := 0; i < x.Rows; i++ {
			if v := x.At(i, f); v != 0 {
				vals = append(vals, v)
			}
		}
		bm.Uppers[f] = quantileBounds(vals, maxBins-1)
	}
	return bm
}

// quantileBounds returns up to nBins ascending distinct upper bounds
// covering the sorted values.
func quantileBounds(vals []float64, nBins int) []float64 {
	if len(vals) == 0 {
		return nil
	}
	sort.Float64s(vals)
	bounds := make([]float64, 0, nBins)
	for b := 1; b <= nBins; b++ {
		idx := len(vals)*b/nBins - 1
		if idx < 0 {
			idx = 0
		}
		v := vals[idx]
		if len(bounds) == 0 || v > bounds[len(bounds)-1] {
			bounds = append(bounds, v)
		}
	}
	return bounds
}

// NumBins returns the number of bins of feature f (zero bin included).
func (bm *BinMapper) NumBins(f int) int { return len(bm.Uppers[f]) + 1 }

// Bin maps a raw value of feature f to its bin index.
func (bm *BinMapper) Bin(f int, v float64) uint8 {
	if v == 0 {
		return 0
	}
	up := bm.Uppers[f]
	i := sort.SearchFloat64s(up, v)
	if i >= len(up) {
		i = len(up) - 1
	}
	if i < 0 {
		i = 0
	}
	return uint8(i + 1)
}

// Upper returns the raw-value upper bound of bin b for feature f: a value v
// belongs to bins <= b iff v <= Upper(f, b). Bin 0's bound is 0.
func (bm *BinMapper) Upper(f int, b uint8) float64 {
	if b == 0 {
		return 0
	}
	up := bm.Uppers[f]
	if int(b)-1 >= len(up) {
		return up[len(up)-1]
	}
	return up[b-1]
}

// BinMatrix bins every row of x column-major: the result's outer index is
// the feature, inner the sample, which keeps histogram construction cache
// friendly.
func (bm *BinMapper) BinMatrix(x *linalg.Matrix) [][]uint8 {
	if x.Cols != len(bm.Uppers) {
		panic(fmt.Sprintf("gbdt: BinMatrix feature mismatch: %d vs %d", x.Cols, len(bm.Uppers)))
	}
	cols := make([][]uint8, x.Cols)
	for f := range cols {
		cols[f] = make([]uint8, x.Rows)
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for f, v := range row {
			cols[f][i] = bm.Bin(f, v)
		}
	}
	return cols
}
