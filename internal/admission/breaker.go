package admission

import (
	"sync"
	"time"
)

// Circuit breakers guard the individual performance functions. A model
// that keeps panicking or timing out (a corrupt upload, a pathological
// SHAP interaction) already degrades a single diagnosis via the PR 2
// degraded-ensemble path; the breaker extends that to *traffic*: after
// Threshold consecutive failures the model is taken out of rotation
// entirely (open), so subsequent requests don't pay its latency or risk,
// and after Cooldown a single half-open probe decides whether it
// rejoins. State machine:
//
//	          Threshold consecutive failures
//	 closed ────────────────────────────────▶ open
//	   ▲                                       │ Cooldown elapsed
//	   │ probe succeeds                        ▼
//	   └──────────────────────────────────  half-open ──▶ open (probe fails)
//
// Everything takes an injectable clock so the tests never sleep.

// Breaker states.
type BreakerState int

const (
	StateClosed BreakerState = iota
	StateOpen
	StateHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker defaults.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 30 * time.Second
)

// BreakerConfig tunes one circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the breaker
	// (DefaultBreakerThreshold when <= 0).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (DefaultBreakerCooldown when <= 0).
	Cooldown time.Duration
	// Now is the clock, for tests; nil means time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = DefaultBreakerThreshold
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultBreakerCooldown
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is one model's circuit breaker. The zero value is not usable;
// build with NewBreaker.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	consecFails int
	openedAt    time.Time
	probing     bool // a half-open probe is in flight
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether the protected model may be used right now. In
// the open state it flips to half-open once the cooldown has elapsed and
// admits exactly one probe; concurrent callers see false until that
// probe reports Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = StateHalfOpen
		b.probing = true
		return true
	case StateHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success records a successful use: the breaker closes and the failure
// streak resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = StateClosed
	b.consecFails = 0
	b.probing = false
}

// Failure records a failed use (panic, NaN, timeout). A half-open probe
// failure reopens immediately; in the closed state the breaker opens
// once the consecutive-failure streak reaches the threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails++
	if b.state == StateHalfOpen || b.consecFails >= b.cfg.Threshold {
		b.state = StateOpen
		b.openedAt = b.cfg.Now()
		b.probing = false
	}
}

// State reports the current state without mutating it (unlike Allow, an
// elapsed cooldown does not flip open to half-open here).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Open reports whether the breaker is open AND still inside its
// cooldown — i.e. a request arriving now would certainly be refused.
// Used by readiness: an open breaker whose cooldown elapsed would admit
// a probe, so it does not count against readiness.
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == StateOpen && b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown
}

// BreakerSet holds one breaker per model name, built lazily from a
// shared config.
type BreakerSet struct {
	cfg BreakerConfig

	mu       sync.Mutex
	breakers map[string]*Breaker
}

// NewBreakerSet builds an empty set whose breakers use cfg.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg.withDefaults(), breakers: make(map[string]*Breaker)}
}

// For returns (building if needed) the breaker for model name.
func (s *BreakerSet) For(name string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.breakers[name]
	if !ok {
		b = NewBreaker(s.cfg)
		s.breakers[name] = b
	}
	return b
}

// AllOpen reports whether every one of the given models is currently
// hard-refused (Open). False for an empty name list.
func (s *BreakerSet) AllOpen(names []string) bool {
	if len(names) == 0 {
		return false
	}
	for _, n := range names {
		if !s.For(n).Open() {
			return false
		}
	}
	return true
}

// States snapshots every breaker's state by model name (for /readyz and
// logs).
func (s *BreakerSet) States() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.breakers))
	for name, b := range s.breakers {
		out[name] = b.State().String()
	}
	return out
}
