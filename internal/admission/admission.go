// Package admission is the web service's overload-protection layer: a
// bounded admission queue with per-endpoint concurrency limits and
// deadline-aware load shedding, plus per-model circuit breakers
// (breaker.go). The production deployments AIIO targets (HPDC '23 §5 —
// a diagnosis service running continuously against a Darshan log stream)
// must answer traffic spikes by shedding excess load with a structured
// 429 and a Retry-After hint, never by queueing unboundedly until the
// process OOMs or the listener stalls.
//
// The design is the classic bounded two-stage funnel:
//
//	request ──▶ [ queue ≤ QueueDepth ] ──▶ [ inflight ≤ MaxInflight ] ──▶ work
//	                  │ full                      ▲ slot freed
//	                  ▼                           │
//	            shed (429)                    release()
//
// Acquire never blocks when the queue is full — the caller gets
// ErrQueueFull immediately and turns it into a 429 — and a queued
// request whose context deadline fires while waiting is shed with
// ErrDeadline instead of occupying a slot it can no longer use.
package admission

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Shed reasons. Callers map these onto HTTP statuses: ErrQueueFull and
// ErrDeadline become 429 + Retry-After, ErrDraining becomes 503.
var (
	// ErrQueueFull is returned when both every inflight slot and every
	// queue slot are taken: the server is saturated and the request is
	// shed immediately, without blocking.
	ErrQueueFull = errors.New("admission: queue full")
	// ErrDeadline is returned when the request's deadline expired (or its
	// client vanished) while it waited in the queue, or would expire
	// before it could plausibly be served.
	ErrDeadline = errors.New("admission: deadline expired while queued")
	// ErrDraining is returned once BeginDrain has been called: the server
	// is shutting down and admits no new work.
	ErrDraining = errors.New("admission: draining")
)

// Config bounds one endpoint's admission.
type Config struct {
	// MaxInflight is the number of requests allowed to execute
	// concurrently. Zero or negative falls back to DefaultMaxInflight.
	MaxInflight int
	// QueueDepth is how many requests may wait for an inflight slot.
	// Zero falls back to DefaultQueueDepth; negative means no queue
	// (shed the instant all slots are busy).
	QueueDepth int
	// RetryAfter is the hint handed to shed clients. Zero falls back to
	// DefaultRetryAfter.
	RetryAfter time.Duration
}

// Defaults for Config's zero values.
const (
	DefaultMaxInflight = 16
	DefaultQueueDepth  = 64
	DefaultRetryAfter  = time.Second
)

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	// Negative stays negative ("no queue") so normalizing twice — the
	// Controller normalizes its defaults, NewLimiter normalizes again —
	// cannot resurrect the default depth. Acquire's waiting >= QueueDepth
	// check sheds unconditionally for any depth <= 0.
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	return c
}

// Limiter is the bounded admission gate for one endpoint.
type Limiter struct {
	cfg Config
	sem chan struct{}

	mu      sync.Mutex
	waiting int

	draining atomic.Bool
	admitted atomic.Uint64
	shed     atomic.Uint64
}

// NewLimiter builds a limiter from cfg (zero fields take the package
// defaults).
func NewLimiter(cfg Config) *Limiter {
	cfg = cfg.withDefaults()
	return &Limiter{cfg: cfg, sem: make(chan struct{}, cfg.MaxInflight)}
}

// RetryAfter is the backoff hint for shed requests.
func (l *Limiter) RetryAfter() time.Duration { return l.cfg.RetryAfter }

// Acquire admits the request or sheds it. On success the returned
// release function MUST be called exactly once when the work finishes.
// Acquire never blocks past ctx's deadline and never blocks at all when
// the queue is full.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	if l.draining.Load() {
		l.shed.Add(1)
		return nil, ErrDraining
	}
	// Fast path: a free inflight slot, no queueing.
	select {
	case l.sem <- struct{}{}:
		l.admitted.Add(1)
		return l.releaseFunc(), nil
	default:
	}
	// Deadline-aware shedding: a request that is already dead (or will
	// be before the earliest plausible slot) is refused outright rather
	// than parked in the queue.
	if err := ctx.Err(); err != nil {
		l.shed.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrDeadline, err)
	}
	// Queue, bounded.
	l.mu.Lock()
	if l.waiting >= l.cfg.QueueDepth {
		l.mu.Unlock()
		l.shed.Add(1)
		return nil, ErrQueueFull
	}
	l.waiting++
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		l.waiting--
		l.mu.Unlock()
	}()
	select {
	case l.sem <- struct{}{}:
		if l.draining.Load() {
			<-l.sem
			l.shed.Add(1)
			return nil, ErrDraining
		}
		l.admitted.Add(1)
		return l.releaseFunc(), nil
	case <-ctx.Done():
		l.shed.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrDeadline, ctx.Err())
	}
}

func (l *Limiter) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(func() { <-l.sem }) }
}

// Inflight is the number of currently executing requests.
func (l *Limiter) Inflight() int { return len(l.sem) }

// Queued is the number of requests waiting for a slot.
func (l *Limiter) Queued() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waiting
}

// Stats reports lifetime admitted and shed counts.
func (l *Limiter) Stats() (admitted, shed uint64) {
	return l.admitted.Load(), l.shed.Load()
}

// BeginDrain stops admitting new work; in-flight requests finish.
func (l *Limiter) BeginDrain() { l.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (l *Limiter) Draining() bool { return l.draining.Load() }

// Drain begins the drain (idempotently) and blocks until every inflight
// request has released its slot or ctx expires, returning ctx's error in
// the latter case.
func (l *Limiter) Drain(ctx context.Context) error {
	l.BeginDrain()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if l.Inflight() == 0 {
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return fmt.Errorf("admission: drain incomplete with %d inflight: %w", l.Inflight(), ctx.Err())
		}
	}
}

// Controller groups one Limiter per endpoint so each route gets its own
// concurrency budget (a batch-diagnosis flood must not starve the
// single-job endpoint). Limiters are created lazily from the default
// config; SetConfig installs a per-endpoint override.
type Controller struct {
	defaults Config

	mu        sync.Mutex
	limiters  map[string]*Limiter
	overrides map[string]Config
	// drainBegun makes limiters built after BeginDrain start out
	// draining, so a drain covers endpoints that appear mid-shutdown.
	drainBegun bool
}

// NewController builds a controller whose limiters default to cfg.
func NewController(cfg Config) *Controller {
	return &Controller{
		defaults:  cfg.withDefaults(),
		limiters:  make(map[string]*Limiter),
		overrides: make(map[string]Config),
	}
}

// SetConfig overrides the config for one endpoint. It must be called
// before the endpoint's first Acquire; a later call is ignored in favor
// of the already-built limiter.
func (c *Controller) SetConfig(endpoint string, cfg Config) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, built := c.limiters[endpoint]; !built {
		c.overrides[endpoint] = cfg
	}
}

// Limiter returns (building if needed) the limiter for endpoint.
func (c *Controller) Limiter(endpoint string) *Limiter {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.limiters[endpoint]
	if !ok {
		cfg := c.defaults
		if o, ok := c.overrides[endpoint]; ok {
			cfg = o
		}
		l = NewLimiter(cfg)
		if c.drainBegun {
			l.BeginDrain()
		}
		c.limiters[endpoint] = l
	}
	return l
}

// BeginDrain stops every endpoint (present and future) from admitting
// new work.
func (c *Controller) BeginDrain() {
	c.mu.Lock()
	c.drainBegun = true
	ls := make([]*Limiter, 0, len(c.limiters))
	for _, l := range c.limiters {
		ls = append(ls, l)
	}
	c.mu.Unlock()
	for _, l := range ls {
		l.BeginDrain()
	}
}

// Draining reports whether BeginDrain has been called.
func (c *Controller) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drainBegun
}

// Drain begins the drain everywhere and waits for all inflight work (or
// ctx). New endpoints created during the drain start out draining, so
// the inflight set can only shrink.
func (c *Controller) Drain(ctx context.Context) error {
	c.BeginDrain()
	c.mu.Lock()
	ls := make([]*Limiter, 0, len(c.limiters))
	for _, l := range c.limiters {
		ls = append(ls, l)
	}
	c.mu.Unlock()
	for _, l := range ls {
		if err := l.Drain(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Stats aggregates admitted/shed/inflight/queued over every endpoint.
func (c *Controller) Stats() map[string]EndpointStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]EndpointStats, len(c.limiters))
	for name, l := range c.limiters {
		adm, shed := l.Stats()
		out[name] = EndpointStats{
			Admitted: adm, Shed: shed,
			Inflight: l.Inflight(), Queued: l.Queued(),
		}
	}
	return out
}

// EndpointStats is one endpoint's admission counters.
type EndpointStats struct {
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
	Inflight int    `json:"inflight"`
	Queued   int    `json:"queued"`
}
