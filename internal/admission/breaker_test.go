package admission

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock so breaker tests never sleep.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func testBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := newFakeClock()
	return NewBreaker(BreakerConfig{Threshold: threshold, Cooldown: cooldown, Now: clk.now}), clk
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	b, _ := testBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused use at failure %d", i)
		}
		b.Failure()
	}
	if b.State() != StateClosed {
		t.Fatalf("state after 2/3 failures = %v, want closed", b.State())
	}
	b.Failure()
	if b.State() != StateOpen {
		t.Fatalf("state after 3/3 failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker inside cooldown allowed use")
	}
	if !b.Open() {
		t.Fatal("Open() false for a breaker inside its cooldown")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := testBreaker(3, time.Minute)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed (success must reset the streak)", b.State())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := testBreaker(1, time.Minute)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker allowed use before cooldown")
	}
	clk.advance(time.Minute)
	if b.Open() {
		t.Fatal("Open() true after cooldown elapsed (readiness would stay red forever)")
	}
	// Exactly one probe is admitted.
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller admitted while the probe is in flight")
	}
	// Probe succeeds: closed again.
	b.Success()
	if b.State() != StateClosed || !b.Allow() {
		t.Fatalf("state after successful probe = %v, want closed+allowing", b.State())
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk := testBreaker(2, time.Minute)
	b.Failure()
	b.Failure()
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Failure() // one probe failure reopens, no threshold needed
	if b.State() != StateOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("reopened breaker allowed use before a fresh cooldown")
	}
	// And the cooldown restarted from the probe failure.
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("probe refused after the fresh cooldown")
	}
}

func TestBreakerSetAllOpenAndStates(t *testing.T) {
	clk := newFakeClock()
	s := NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Minute, Now: clk.now})
	if s.AllOpen([]string{"m1", "m2"}) {
		t.Fatal("AllOpen true for fresh (closed) breakers")
	}
	s.For("m1").Failure()
	if s.AllOpen([]string{"m1", "m2"}) {
		t.Fatal("AllOpen true with one breaker still closed")
	}
	s.For("m2").Failure()
	if !s.AllOpen([]string{"m1", "m2"}) {
		t.Fatal("AllOpen false with every breaker open")
	}
	if s.AllOpen(nil) {
		t.Fatal("AllOpen true for an empty model list")
	}
	states := s.States()
	if states["m1"] != "open" || states["m2"] != "open" {
		t.Fatalf("states = %v, want both open", states)
	}
	// After the cooldown, probes become possible and readiness recovers.
	clk.advance(time.Minute)
	if s.AllOpen([]string{"m1", "m2"}) {
		t.Fatal("AllOpen true after cooldown elapsed")
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b, _ := testBreaker(5, time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if b.Allow() {
					if (i+j)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				b.State()
				b.Open()
			}
		}(i)
	}
	wg.Wait()
}
