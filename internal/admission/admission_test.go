package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterCapsConcurrency(t *testing.T) {
	l := NewLimiter(Config{MaxInflight: 3, QueueDepth: 100})
	var inflight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := l.Acquire(context.Background())
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			n := inflight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inflight.Add(-1)
			release()
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 3 {
		t.Fatalf("peak concurrency %d, want <= 3", got)
	}
	if adm, shed := l.Stats(); adm != 50 || shed != 0 {
		t.Fatalf("stats admitted=%d shed=%d, want 50/0", adm, shed)
	}
}

func TestLimiterShedsWhenQueueFull(t *testing.T) {
	l := NewLimiter(Config{MaxInflight: 1, QueueDepth: 2})
	// Occupy the single slot.
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// Fill the queue with two waiters.
	queued := make(chan struct{}, 2)
	done := make(chan struct{})
	for i := 0; i < 2; i++ {
		go func() {
			// Signal right before blocking; the spin below confirms both
			// are actually counted as waiting.
			queued <- struct{}{}
			r, err := l.Acquire(context.Background())
			if err != nil {
				t.Errorf("queued acquire: %v", err)
			} else {
				r()
			}
			done <- struct{}{}
		}()
	}
	<-queued
	<-queued
	deadline := time.Now().Add(2 * time.Second)
	for l.Queued() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never queued (queued=%d)", l.Queued())
		}
		time.Sleep(time.Millisecond)
	}
	// The next request must shed immediately, not block.
	start := time.Now()
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("acquire with full queue: err=%v, want ErrQueueFull", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("shed took %v, must be immediate", d)
	}
	if _, shed := l.Stats(); shed != 1 {
		t.Fatalf("shed count %d, want 1", shed)
	}
	release()
	<-done
	<-done
}

func TestLimiterDeadlineWhileQueued(t *testing.T) {
	l := NewLimiter(Config{MaxInflight: 1, QueueDepth: 5})
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := l.Acquire(ctx); !errors.Is(err, ErrDeadline) {
		t.Fatalf("queued past deadline: err=%v, want ErrDeadline", err)
	}
}

func TestLimiterShedsExpiredDeadlineWithoutQueueing(t *testing.T) {
	l := NewLimiter(Config{MaxInflight: 1, QueueDepth: 5})
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead on arrival
	if _, err := l.Acquire(ctx); !errors.Is(err, ErrDeadline) {
		t.Fatalf("dead-on-arrival request: err=%v, want ErrDeadline", err)
	}
	if q := l.Queued(); q != 0 {
		t.Fatalf("dead request was queued (queued=%d)", q)
	}
}

func TestLimiterReleaseIdempotent(t *testing.T) {
	l := NewLimiter(Config{MaxInflight: 1, QueueDepth: -1})
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	release()
	release() // double release must not free a phantom slot
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight %d after release, want 0", got)
	}
	r2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("re-acquire: %v", err)
	}
	defer r2()
	if got := l.Inflight(); got != 1 {
		t.Fatalf("inflight %d, want 1 (double release freed a phantom slot)", got)
	}
}

func TestDrainRefusesNewAndWaitsForInflight(t *testing.T) {
	l := NewLimiter(Config{MaxInflight: 2, QueueDepth: 4})
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	l.BeginDrain()
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("acquire during drain: err=%v, want ErrDraining", err)
	}
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- l.Drain(ctx)
	}()
	select {
	case err := <-drained:
		t.Fatalf("drain finished with a request inflight: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	release()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestDrainTimesOut(t *testing.T) {
	l := NewLimiter(Config{MaxInflight: 1, QueueDepth: 0})
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := l.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with stuck request: err=%v, want DeadlineExceeded", err)
	}
}

func TestControllerPerEndpointIsolation(t *testing.T) {
	c := NewController(Config{MaxInflight: 1, QueueDepth: -1})
	releaseA, err := c.Limiter("a").Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire a: %v", err)
	}
	defer releaseA()
	// Endpoint a is saturated; endpoint b must be unaffected.
	if _, err := c.Limiter("a").Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated endpoint: err=%v, want ErrQueueFull", err)
	}
	releaseB, err := c.Limiter("b").Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire b while a saturated: %v", err)
	}
	releaseB()
	stats := c.Stats()
	if stats["a"].Shed != 1 || stats["b"].Admitted != 1 {
		t.Fatalf("stats = %+v, want a.shed=1 b.admitted=1", stats)
	}
}

func TestControllerSetConfigAndDrainCoversNewEndpoints(t *testing.T) {
	c := NewController(Config{MaxInflight: 1})
	c.SetConfig("big", Config{MaxInflight: 8})
	if got := cap(c.Limiter("big").sem); got != 8 {
		t.Fatalf("override MaxInflight = %d, want 8", got)
	}
	c.BeginDrain()
	if _, err := c.Limiter("late").Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("endpoint created mid-drain admitted work: err=%v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
