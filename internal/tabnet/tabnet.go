// Package tabnet implements a compact TabNet-style regressor — the paper's
// fifth performance function. It keeps TabNet's defining mechanism:
// sequential decision steps, each selecting features with a learned
// sparsemax attention mask relaxed by a prior, feeding GLU feature
// transformers whose decision outputs are aggregated into the prediction.
//
// Simplifications relative to the reference implementation (pytorch-tabnet),
// documented per the reproduction's substitution rule: ghost batch
// normalization is replaced by input standardization, the sparsity
// regularizer is omitted, and the attention prior is treated as a constant
// during backpropagation. As the paper notes (Section 3.2), TabNet's
// software only accepts dense input, so this model also trains dense; the
// sparsity handling happens in the diagnosis function.
package tabnet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"math/rand"
	"sync"

	"github.com/hpc-repro/aiio/internal/linalg"
	"github.com/hpc-repro/aiio/internal/parallel"
)

// Config holds the architecture and optimizer settings.
type Config struct {
	// Steps is the number of sequential decision steps.
	Steps int
	// DecisionDim (N_d) and AttentionDim (N_a) size the split transformer
	// output.
	DecisionDim  int
	AttentionDim int
	// Gamma is the prior relaxation: a feature used at one step has its
	// attention prior multiplied by (Gamma - mask).
	Gamma float64
	// LearningRate is the Adam step size.
	LearningRate float64
	Epochs       int
	BatchSize    int
	// EarlyStoppingRounds stops training when the eval RMSE stalls.
	EarlyStoppingRounds int
	Seed                int64
	// ReferenceKernels routes training through the original allocating
	// per-sample forward/backward (forwardSample/backwardSample) instead of
	// the scratch-slab kernel path. The two paths compute the same gradients
	// up to FP reassociation; the flag exists for equivalence tests, in the
	// spirit of gbdt's DisableHistSubtraction.
	ReferenceKernels bool
	// WarmDriftTol is the input-drift score above which CanWarmStart
	// rejects seeding from a previous model (0 means DefaultWarmDriftTol).
	WarmDriftTol float64
}

// DefaultConfig mirrors pytorch-tabnet's defaults at a small scale.
func DefaultConfig() Config {
	return Config{
		Steps:               3,
		DecisionDim:         8,
		AttentionDim:        8,
		Gamma:               1.3,
		LearningRate:        2e-2,
		Epochs:              150,
		BatchSize:           256,
		EarlyStoppingRounds: 10,
		Seed:                1,
	}
}

// dense is a serializable fully-connected layer y = W·x + b.
type dense struct {
	In, Out int
	W, B    []float64
}

func newDense(in, out int, rng *rand.Rand) dense {
	d := dense{In: in, Out: out, W: make([]float64, in*out), B: make([]float64, out)}
	scale := math.Sqrt(2 / float64(in))
	for i := range d.W {
		d.W[i] = rng.NormFloat64() * scale
	}
	return d
}

func (d *dense) forward(x []float64) []float64 {
	out := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		out[o] = linalg.Dot(d.W[o*d.In:(o+1)*d.In], x) + d.B[o]
	}
	return out
}

// backward accumulates gradients into gw/gb and returns dL/dx.
func (d *dense) backward(x, gout, gw, gb []float64) []float64 {
	gin := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := gout[o]
		if g == 0 {
			continue
		}
		gb[o] += g
		w := d.W[o*d.In : (o+1)*d.In]
		gwRow := gw[o*d.In : (o+1)*d.In]
		for j := range gin {
			gwRow[j] += g * x[j]
			gin[j] += g * w[j]
		}
	}
	return gin
}

// Model is a trained TabNet regressor.
type Model struct {
	Config Config
	// Standardization.
	Mean, Std []float64
	// ConstantCols lists input columns whose training variance was zero;
	// their Std is clamped to 1 so standardization is a no-op for them
	// instead of a divide-by-zero NaN.
	ConstantCols []int
	YMean, YStd  float64
	NumFeatures  int
	// Shared feature transformer: D -> 2H (GLU halves to H = Nd+Na).
	Shared dense
	// StepFC are per-step transformers H -> 2H.
	StepFC []dense
	// AttFC are per-step attentive transformers N_a -> D.
	AttFC []dense
	// Out maps aggregated decisions N_d -> 1.
	Out dense
	// Loss curves.
	TrainLoss []float64
	EvalLoss  []float64
	BestEpoch int

	// invStd caches 1/Std with a unit-scale guard for zero or non-finite
	// entries (legacy serialized models predate the fit-time clamp). Both
	// fields are unexported, so gob ignores them and the zero value works
	// for decoded models.
	invOnce  sync.Once
	invStd   []float64
	stdShift []float64
	// scratch pools per-worker inference buffers (see infScratch).
	scratch sync.Pool
}

// inputInvStd returns the cached per-column reciprocal of Std. Entries that
// are zero, negative, or non-finite fall back to 1 so standardization can
// never manufacture a NaN at inference time.
func (m *Model) inputInvStd() []float64 {
	m.invOnce.Do(func() {
		inv := make([]float64, len(m.Std))
		for j, s := range m.Std {
			if s > 0 && !math.IsInf(s, 1) {
				inv[j] = 1 / s
			} else {
				inv[j] = 1
			}
		}
		m.invStd = inv
		shift := make([]float64, len(m.Std))
		for j := range shift {
			shift[j] = -m.Mean[j] * inv[j]
		}
		m.stdShift = shift
	})
	return m.invStd
}

// sparsemaxTau returns the threshold tau of the sparsemax projection of v
// (Martins & Astudillo), using cand as candidate scratch (grown as needed;
// the grown slice is returned). Only entries greater than max(v)-1 can be
// in the support: a position passing the cumulative guard satisfies
// z > (cum-1)/(i+1) >= max(v)-1, and every earlier position in descending
// order holds a larger value still, so scanning just the filtered,
// descending candidates visits the same prefix sums — and produces the
// same tau — as scanning the full sorted input. The candidate set is
// typically a handful of entries, so a branchy insertion sort beats the
// former interface-dispatched sort.Sort by a wide margin; sparsemax was
// the hottest single call in the batch-diagnosis profile.
func sparsemaxTau(v, cand []float64) (float64, []float64) {
	tau, cand, _ := sparsemaxTauScaled(v, nil, cand, nil)
	return tau, cand
}

// sparsemaxTauScaled is sparsemaxTau with an optional fused elementwise
// pre-scale: when scale is non-nil it first sets v[i] *= scale[i] (the
// attention-prior product of the TabNet step) during the max scan, saving
// a separate pass over the logits in the hot loop. It also records the
// candidate indices in idx (ascending scan order, unlike the descending
// value-sorted cand), so the caller can restrict its support walk to the
// candidate superset instead of rescanning all features.
func sparsemaxTauScaled(v, scale, cand []float64, idx []int32) (float64, []float64, []int32) {
	var vmax float64
	if scale != nil {
		vmax = linalg.ScaleMax(v, scale)
	} else {
		vmax = v[0]
		for _, x := range v[1:] {
			if x > vmax {
				vmax = x
			}
		}
	}
	lim := vmax - 1
	cand = cand[:0]
	idx = idx[:0]
	if len(v) <= 64 {
		// One vector compare yields the candidate set as a bitmask; only
		// the (few) set bits are visited, in ascending index order.
		for m := linalg.MaskGreater(v, lim); m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			x := v[i]
			idx = append(idx, int32(i))
			j := len(cand)
			cand = append(cand, x)
			for j > 0 && cand[j-1] < x {
				cand[j] = cand[j-1]
				j--
			}
			cand[j] = x
		}
	} else {
		for i, x := range v {
			if x > lim {
				idx = append(idx, int32(i))
				j := len(cand)
				cand = append(cand, x)
				for j > 0 && cand[j-1] < x {
					cand[j] = cand[j-1]
					j--
				}
				cand[j] = x
			}
		}
	}
	cum := 0.0
	var tau float64
	for i, x := range cand {
		cum += x
		t := (cum - 1) / float64(i+1)
		if x > t {
			tau = t
		}
	}
	return tau, cand, idx
}

// sparsemax projects v onto the probability simplex. It returns the
// projection and the support mask.
func sparsemax(v []float64) (out []float64, support []bool) {
	tau, _ := sparsemaxTau(v, make([]float64, 0, len(v)))
	out = make([]float64, len(v))
	support = make([]bool, len(v))
	for i, x := range v {
		if x > tau {
			out[i] = x - tau
			support[i] = true
		}
	}
	return out, support
}

// sparsemaxBackward maps the output gradient through the projection.
func sparsemaxBackward(g []float64, support []bool) []float64 {
	sum, cnt := 0.0, 0
	for i, s := range support {
		if s {
			sum += g[i]
			cnt++
		}
	}
	out := make([]float64, len(g))
	if cnt == 0 {
		return out
	}
	mean := sum / float64(cnt)
	for i, s := range support {
		if s {
			out[i] = g[i] - mean
		}
	}
	return out
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// glu splits z into halves (u, v) and returns u ⊙ σ(v).
func glu(z []float64) []float64 {
	h := len(z) / 2
	out := make([]float64, h)
	for i := 0; i < h; i++ {
		out[i] = z[i] * sigmoid(z[h+i])
	}
	return out
}

// gluBackward maps the output gradient back to z's gradient.
func gluBackward(z, gout []float64) []float64 {
	h := len(z) / 2
	gz := make([]float64, len(z))
	for i := 0; i < h; i++ {
		s := sigmoid(z[h+i])
		gz[i] = gout[i] * s
		gz[h+i] = gout[i] * z[i] * s * (1 - s)
	}
	return gz
}

// stepCache holds per-step forward state for backprop.
type stepCache struct {
	prior    []float64
	logits   []float64
	mask     []float64
	support  []bool
	xm       []float64
	sharedZ  []float64
	sharedH  []float64
	stepZ    []float64
	h        []float64
	dPreRelu []float64
	a        []float64
}

// forwardSample runs the network on one standardized sample. When caches is
// non-nil, intermediate state is recorded for backprop.
func (m *Model) forwardSample(x []float64, caches *[]stepCache) float64 {
	d := m.Config.DecisionDim
	h := d + m.Config.AttentionDim

	// Step 0: unmasked pass provides the initial attention features.
	z0 := m.Shared.forward(x)
	h0 := glu(z0)
	a := h0[d:h]
	agg := make([]float64, d)

	prior := make([]float64, m.NumFeatures)
	for i := range prior {
		prior[i] = 1
	}
	if caches != nil {
		*caches = append(*caches, stepCache{sharedZ: z0, sharedH: h0, a: a, xm: x})
	}

	for s := 0; s < m.Config.Steps; s++ {
		logitsRaw := m.AttFC[s].forward(a)
		logits := make([]float64, m.NumFeatures)
		for i := range logits {
			logits[i] = logitsRaw[i] * prior[i]
		}
		mask, support := sparsemax(logits)
		xm := make([]float64, m.NumFeatures)
		for i := range xm {
			xm[i] = mask[i] * x[i]
		}
		z := m.Shared.forward(xm)
		hShared := glu(z)
		z2 := m.StepFC[s].forward(hShared)
		hs := glu(z2)
		dPre := hs[:d]
		if caches != nil {
			*caches = append(*caches, stepCache{
				prior:  append([]float64(nil), prior...),
				logits: logitsRaw, mask: mask, support: support,
				xm: xm, sharedZ: z, sharedH: hShared,
				stepZ: z2, h: hs, dPreRelu: append([]float64(nil), dPre...),
				a: hs[d:h],
			})
		}
		for i := 0; i < d; i++ {
			if dPre[i] > 0 {
				agg[i] += dPre[i]
			}
		}
		a = hs[d:h]
		for i := range prior {
			prior[i] *= m.Config.Gamma - mask[i]
		}
	}
	out := m.Out.forward(agg)
	if caches != nil {
		(*caches)[0].dPreRelu = agg // stash aggregate in the step-0 cache
	}
	return out[0]
}

// infScratch is one worker's reusable inference state: every intermediate
// vector of the cache-free forward pass plus, on the scratch that owns the
// batch call, the standardized input block and the shared-layer transpose.
type rowState struct {
	z       []float64 // 2H pre-activation
	hb      []float64 // H shared GLU output
	z2      []float64 // 2H step pre-activation
	hs      []float64 // H step GLU output
	a       []float64 // attention features
	agg     []float64 // aggregated decisions
	logits  []float64
	prior   []float64
	cand    []float64 // sparsemax candidate buffer (descending values)
	candIdx []int32   // sparsemax candidate indices, ascending
	sup      []int32   // sparsemax support indices, ascending
	supPrior []float64 // decayed prior values for the support indices
}

type infScratch struct {
	xs      linalg.Matrix // standardized input block (batch owner only)
	r0, r1  rowState      // per-row forward state (r1 only for paired rows)
	z0a     []float64     // paired initial shared-pass outputs (even row)
	z0b     []float64     // paired initial shared-pass outputs (odd row)
	sharedT []float64     // In x Out transpose of Shared.W (batch owner only)
}

func (m *Model) getScratch() *infScratch {
	if s, ok := m.scratch.Get().(*infScratch); ok {
		return s
	}
	return &infScratch{}
}

func (m *Model) putScratch(s *infScratch) { m.scratch.Put(s) }

// resize returns *p with length n, reusing its backing array when large
// enough. Contents are unspecified after the call.
func resize(p *[]float64, n int) []float64 {
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return *p
}

// reshapeMat resizes m to rows x cols, reusing its backing array when
// large enough. Contents are unspecified after the call.
func reshapeMat(m *linalg.Matrix, rows, cols int) *linalg.Matrix {
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
	return m
}

// sharedTranspose rebuilds buf as the In x Out transpose of Shared.W so
// the masked shared pass can add one contiguous row per selected feature.
// It is rebuilt per batch call rather than cached on the model because
// training mutates the weights between epochs.
func (m *Model) sharedTranspose(buf []float64) []float64 {
	in, out := m.Shared.In, m.Shared.Out
	if cap(buf) < in*out {
		buf = make([]float64, in*out)
	}
	buf = buf[:in*out]
	for o := 0; o < out; o++ {
		row := m.Shared.W[o*in : (o+1)*in]
		for i, w := range row {
			buf[i*out+o] = w
		}
	}
	return buf
}

// gluInto writes the GLU of z (halves u, v -> u ⊙ σ(v)) into out through
// the fused linalg.GLUInto kernel.
func gluInto(out, z []float64) {
	h := len(z) / 2
	linalg.GLUInto(out, z[:h], z[h:])
}

// forwardInference is the cache-free forward pass over one standardized
// row, the hot path of batch diagnosis. It differs from forwardSample in
// three ways: all intermediates live in the worker's scratch (zero
// steady-state allocations), dense layers run on the tiled linalg.GemvT
// kernel, and the masked shared pass exploits sparsemax sparsity — the
// mask typically keeps a handful of the features, so x·Wᵀ collapses to a
// few contiguous axpys over sharedT (the In x Out transpose of Shared.W).
// Outputs agree with forwardSample to float rounding (see the parity
// tests), not bitwise: summation orders differ.
func (m *Model) forwardInference(x []float64, sharedT []float64, rs *rowState) float64 {
	h2 := 2 * (m.Config.DecisionDim + m.Config.AttentionDim)
	z := resize(&rs.z, h2)
	linalg.GemvT(z, m.Shared.W, h2, m.NumFeatures, x, m.Shared.B)
	return m.forwardInferenceZ(x, z, sharedT, rs)
}

// stepStart initializes a row's forward state from its shared-pass output.
func (m *Model) stepStart(z0 []float64, rs *rowState) {
	d := m.Config.DecisionDim
	h := d + m.Config.AttentionDim
	hb := resize(&rs.hb, h)
	gluInto(hb, z0)
	a := resize(&rs.a, m.Config.AttentionDim)
	copy(a, hb[d:h])
	agg := resize(&rs.agg, d)
	for i := range agg {
		agg[i] = 0
	}
	prior := resize(&rs.prior, m.NumFeatures)
	for i := range prior {
		prior[i] = 1
	}
	resize(&rs.logits, m.NumFeatures)
	resize(&rs.z, 2*h)
	resize(&rs.z2, 2*h)
	resize(&rs.hs, h)
}

// stepMask runs one row's attentive-transformer half step: sparsemax over
// the scaled logits, the sparse masked shared pass, and the prior decay.
// Only the sparsemax candidates can exceed tau (tau >= max-1 by
// construction), so the walk visits the handful of candidate indices, not
// every feature; mask[i] is lg-tau on the support and 0 off it — no mask
// vector exists. Off-support priors decay by the full gamma (one vector
// scale), then the support entries are overwritten with their (gamma - mv)
// product taken from the pre-decay value, so every prior matches the
// per-index scalar update bitwise.
func (m *Model) stepMask(x []float64, sharedT []float64, rs *rowState) {
	h2 := len(rs.z)
	gamma := m.Config.Gamma
	var tau float64
	tau, rs.cand, rs.candIdx = sparsemaxTauScaled(rs.logits, rs.prior, rs.cand, rs.candIdx)
	copy(rs.z, m.Shared.B)
	sup := rs.sup[:0]
	supPrior := rs.supPrior[:0]
	for _, ii := range rs.candIdx {
		if lg := rs.logits[ii]; lg > tau {
			mv := lg - tau
			i := int(ii)
			linalg.Axpy(mv*x[i], sharedT[i*h2:i*h2+h2], rs.z)
			supPrior = append(supPrior, rs.prior[i]*(gamma-mv))
			sup = append(sup, ii)
		}
	}
	rs.sup, rs.supPrior = sup, supPrior
	linalg.Scale(gamma, rs.prior)
	for k, ii := range sup {
		rs.prior[ii] = supPrior[k]
	}
	gluInto(rs.hb, rs.z)
}

// stepFinish consumes one row's feature-transformer output: GLU, the ReLU
// aggregation of the decision half, and the attention handoff.
func (m *Model) stepFinish(rs *rowState) {
	d := m.Config.DecisionDim
	h := d + m.Config.AttentionDim
	gluInto(rs.hs, rs.z2)
	for i := 0; i < d; i++ {
		if rs.hs[i] > 0 {
			rs.agg[i] += rs.hs[i]
		}
	}
	copy(rs.a, rs.hs[d:h])
}

// forwardInferenceZ is forwardInference with the initial full shared pass
// (z0 = Shared.W·x + Shared.B) already computed — predictStandardized
// batches that pass over row pairs so the shared weights stream once per
// pair.
func (m *Model) forwardInferenceZ(x, z0 []float64, sharedT []float64, rs *rowState) float64 {
	m.stepStart(z0, rs)
	h2 := 2 * (m.Config.DecisionDim + m.Config.AttentionDim)
	for s := 0; s < m.Config.Steps; s++ {
		att := &m.AttFC[s]
		linalg.GemvT(rs.logits, att.W, m.NumFeatures, att.In, rs.a, att.B)
		m.stepMask(x, sharedT, rs)
		fc := &m.StepFC[s]
		linalg.GemvT(rs.z2, fc.W, h2, fc.In, rs.hb, fc.B)
		m.stepFinish(rs)
	}
	return linalg.Dot(m.Out.W, rs.agg) + m.Out.B[0]
}

// forwardInferenceZ2 walks two rows through the step loop in lockstep so
// every per-step dense layer (attention logits and the step feature
// transformer) streams its weights once per pair via linalg.GemvT2, which
// is bitwise identical to two GemvT calls. The sparsemax projection and
// the sparse masked shared pass stay per-row — their cost is data
// dependent and tiny next to the matmuls.
func (m *Model) forwardInferenceZ2(x0, x1, z0a, z0b []float64, sharedT []float64, sc *infScratch) (float64, float64) {
	r0, r1 := &sc.r0, &sc.r1
	m.stepStart(z0a, r0)
	m.stepStart(z0b, r1)
	h2 := 2 * (m.Config.DecisionDim + m.Config.AttentionDim)
	for s := 0; s < m.Config.Steps; s++ {
		att := &m.AttFC[s]
		linalg.GemvT2(r0.logits, r1.logits, att.W, m.NumFeatures, att.In, r0.a, r1.a, att.B)
		m.stepMask(x0, sharedT, r0)
		m.stepMask(x1, sharedT, r1)
		fc := &m.StepFC[s]
		linalg.GemvT2(r0.z2, r1.z2, fc.W, h2, fc.In, r0.hb, r1.hb, fc.B)
		m.stepFinish(r0)
		m.stepFinish(r1)
	}
	return linalg.Dot(m.Out.W, r0.agg) + m.Out.B[0],
		linalg.Dot(m.Out.W, r1.agg) + m.Out.B[0]
}

// grads bundles the gradient buffers, index-aligned with params().
type grads struct {
	sharedW, sharedB []float64
	stepW, stepB     [][]float64
	attW, attB       [][]float64
	outW, outB       []float64
}

func (m *Model) newGrads() *grads {
	g := &grads{
		sharedW: make([]float64, len(m.Shared.W)),
		sharedB: make([]float64, len(m.Shared.B)),
		outW:    make([]float64, len(m.Out.W)),
		outB:    make([]float64, len(m.Out.B)),
	}
	for s := 0; s < m.Config.Steps; s++ {
		g.stepW = append(g.stepW, make([]float64, len(m.StepFC[s].W)))
		g.stepB = append(g.stepB, make([]float64, len(m.StepFC[s].B)))
		g.attW = append(g.attW, make([]float64, len(m.AttFC[s].W)))
		g.attB = append(g.attB, make([]float64, len(m.AttFC[s].B)))
	}
	return g
}

func (g *grads) zero() {
	zero := func(v []float64) {
		for i := range v {
			v[i] = 0
		}
	}
	zero(g.sharedW)
	zero(g.sharedB)
	zero(g.outW)
	zero(g.outB)
	for s := range g.stepW {
		zero(g.stepW[s])
		zero(g.stepB[s])
		zero(g.attW[s])
		zero(g.attB[s])
	}
}

// backwardSample backpropagates dL/dout for one sample through the cached
// forward state.
func (m *Model) backwardSample(x []float64, caches []stepCache, gOut float64, g *grads) {
	d := m.Config.DecisionDim
	agg := caches[0].dPreRelu // aggregate stashed by forwardSample

	// Output layer.
	gAgg := m.Out.backward(agg, []float64{gOut}, g.outW, g.outB)

	// gA accumulates the gradient flowing into the attention features of
	// each earlier step (used by the next step's attentive transformer).
	gANext := make([]float64, m.Config.AttentionDim)

	for s := m.Config.Steps - 1; s >= 0; s-- {
		c := caches[s+1]
		// Gradient into this step's transformer output hs = [d | a].
		gh := make([]float64, d+m.Config.AttentionDim)
		for i := 0; i < d; i++ {
			if c.dPreRelu[i] > 0 {
				gh[i] = gAgg[i]
			}
		}
		copy(gh[d:], gANext)

		gz2 := gluBackward(c.stepZ, gh)
		ghShared := m.StepFC[s].backward(c.sharedH, gz2, g.stepW[s], g.stepB[s])
		gz := gluBackward(c.sharedZ, ghShared)
		gxm := m.Shared.backward(c.xm, gz, g.sharedW, g.sharedB)

		// xm = mask ⊙ x → gradient to the mask.
		gMask := make([]float64, m.NumFeatures)
		for i := range gMask {
			gMask[i] = gxm[i] * x[i]
		}
		gLogits := sparsemaxBackward(gMask, c.support)
		// logits = raw * prior (prior treated as constant).
		gRaw := make([]float64, m.NumFeatures)
		for i := range gRaw {
			gRaw[i] = gLogits[i] * c.prior[i]
		}
		prevA := caches[s].a
		gANext = m.AttFC[s].backward(prevA, gRaw, g.attW[s], g.attB[s])
	}

	// Step 0 attention features came from the unmasked shared pass.
	c0 := caches[0]
	gh0 := make([]float64, d+m.Config.AttentionDim)
	copy(gh0[d:], gANext)
	gz0 := gluBackward(c0.sharedZ, gh0)
	m.Shared.backward(x, gz0, g.sharedW, g.sharedB)
}

// Train fits the model with Adam and early stopping.
func Train(cfg Config, x *linalg.Matrix, y []float64, evalX *linalg.Matrix, evalY []float64) (*Model, error) {
	return train(cfg, x, y, evalX, evalY, nil)
}

// TrainWarm fits like Train but seeds the network, standardizer, and target
// scaling from prev so incremental retraining can run on a reduced epoch
// budget. When CanWarmStart rejects prev it falls back to a cold start. The
// seed weights are scored on the eval set before the first epoch as the
// early-stopping baseline, so a diverging warm run restores them
// (BestEpoch is -1 when the seed weights win).
func TrainWarm(cfg Config, x *linalg.Matrix, y []float64, evalX *linalg.Matrix, evalY []float64, prev *Model) (*Model, error) {
	if ok, _ := CanWarmStart(prev, cfg, x, y); !ok {
		prev = nil
	}
	return train(cfg, x, y, evalX, evalY, prev)
}

func train(cfg Config, x *linalg.Matrix, y []float64, evalX *linalg.Matrix, evalY []float64, prev *Model) (*Model, error) {
	if x.Rows == 0 {
		return nil, errors.New("tabnet: empty training set")
	}
	if x.Rows != len(y) {
		panic(fmt.Sprintf("tabnet: %d rows vs %d targets", x.Rows, len(y)))
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 3
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.Gamma <= 1 {
		cfg.Gamma = 1.3
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 2e-2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := cfg.DecisionDim + cfg.AttentionDim

	m := &Model{Config: cfg, NumFeatures: x.Cols}
	if prev != nil {
		// Warm start: continue training prev's network. The standardizer
		// travels with the weights — every layer was learned against prev's
		// input scaling, so it must not be refit here.
		m.adoptPrevious(prev)
	} else {
		m.fitStandardizer(x, y)
		m.Shared = newDense(x.Cols, 2*h, rng)
		for s := 0; s < cfg.Steps; s++ {
			m.StepFC = append(m.StepFC, newDense(h, 2*h, rng))
			m.AttFC = append(m.AttFC, newDense(cfg.AttentionDim, x.Cols, rng))
		}
		m.Out = newDense(cfg.DecisionDim, 1, rng)
	}

	g := m.newGrads()
	opt := newAdamSet(g)

	xs := m.standardizeMatrix(x)
	ys := make([]float64, len(y))
	for i, v := range y {
		ys[i] = (v - m.YMean) / m.YStd
	}
	var evalXS *linalg.Matrix
	if evalX != nil && evalX.Rows > 0 {
		evalXS = m.standardizeMatrix(evalX)
	}

	order := make([]int, x.Rows)
	for i := range order {
		order[i] = i
	}
	best := math.Inf(1)
	sinceBest := 0
	var snapshot *Model
	if prev != nil && evalXS != nil {
		// The warm seed is already a working model: score it before the
		// first epoch so early stopping restores it if no epoch improves.
		best = rmseSlices(m.predictStandardized(evalXS), evalY)
		m.BestEpoch = -1
		snapshot = m.cloneWeights()
	}

	// The fast path reuses one trainScratch (per-step caches, every backward
	// temporary) for all samples of all epochs; only the reference path
	// allocates per sample.
	var ts *trainScratch
	if !cfg.ReferenceKernels {
		ts = m.newTrainScratch()
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for lo := 0; lo < len(order); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(order) {
				hi = len(order)
			}
			g.zero()
			inv := 1 / float64(hi-lo)
			if ts != nil {
				for _, i := range order[lo:hi] {
					pred := m.forwardTrain(xs.Row(i), ts)
					m.backwardTrain(xs.Row(i), ts, (pred-ys[i])*inv, g)
				}
			} else {
				for _, i := range order[lo:hi] {
					var caches []stepCache
					pred := m.forwardSample(xs.Row(i), &caches)
					m.backwardSample(xs.Row(i), caches, (pred-ys[i])*inv, g)
				}
			}
			opt.step(m, g, cfg.LearningRate, cfg.ReferenceKernels)
		}
		m.TrainLoss = append(m.TrainLoss, m.rmseStandardized(xs, ys))
		if evalXS != nil {
			e := rmseSlices(m.predictStandardized(evalXS), evalY)
			m.EvalLoss = append(m.EvalLoss, e)
			if e < best-1e-12 {
				best = e
				m.BestEpoch = epoch
				sinceBest = 0
				snapshot = m.cloneWeights()
			} else {
				sinceBest++
				if cfg.EarlyStoppingRounds > 0 && sinceBest >= cfg.EarlyStoppingRounds {
					break
				}
			}
		} else {
			m.BestEpoch = epoch
		}
	}
	if snapshot != nil {
		m.restoreWeights(snapshot)
	}
	return m, nil
}

// adamSet carries Adam state for every tensor.
type adamSet struct {
	ms, vs [][]float64
	t      int
}

func tensorsOf(m *Model, g *grads) (weights, gradList [][]float64) {
	weights = [][]float64{m.Shared.W, m.Shared.B, m.Out.W, m.Out.B}
	gradList = [][]float64{g.sharedW, g.sharedB, g.outW, g.outB}
	for s := range m.StepFC {
		weights = append(weights, m.StepFC[s].W, m.StepFC[s].B, m.AttFC[s].W, m.AttFC[s].B)
		gradList = append(gradList, g.stepW[s], g.stepB[s], g.attW[s], g.attB[s])
	}
	return weights, gradList
}

func newAdamSet(g *grads) *adamSet {
	a := &adamSet{}
	add := func(v []float64) {
		a.ms = append(a.ms, make([]float64, len(v)))
		a.vs = append(a.vs, make([]float64, len(v)))
	}
	add(g.sharedW)
	add(g.sharedB)
	add(g.outW)
	add(g.outB)
	for s := range g.stepW {
		add(g.stepW[s])
		add(g.stepB[s])
		add(g.attW[s])
		add(g.attB[s])
	}
	return a
}

// step applies one Adam update across every tensor. The fast path runs the
// vectorized linalg.AdamStep; reference keeps the original scalar loop
// (with the textbook bias-correction divisions) as the equivalence-mode
// baseline.
func (a *adamSet) step(m *Model, g *grads, lr float64, reference bool) {
	a.t++
	b1, b2, eps := 0.9, 0.999, 1e-8
	c1 := 1 - math.Pow(b1, float64(a.t))
	c2 := 1 - math.Pow(b2, float64(a.t))
	weights, gradList := tensorsOf(m, g)
	for ti := range weights {
		w, gr := weights[ti], gradList[ti]
		mm, vv := a.ms[ti], a.vs[ti]
		if !reference {
			linalg.AdamStep(w, mm, vv, gr, b1, b2, c1, c2, lr, eps)
			continue
		}
		for i := range w {
			mm[i] = b1*mm[i] + (1-b1)*gr[i]
			vv[i] = b2*vv[i] + (1-b2)*gr[i]*gr[i]
			w[i] -= lr * (mm[i] / c1) / (math.Sqrt(vv[i]/c2) + eps)
		}
	}
}

func (m *Model) fitStandardizer(x *linalg.Matrix, y []float64) {
	m.Mean = make([]float64, x.Cols)
	m.Std = make([]float64, x.Cols)
	n := float64(x.Rows)
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			m.Mean[j] += v
		}
	}
	for j := range m.Mean {
		m.Mean[j] /= n
	}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			d := v - m.Mean[j]
			m.Std[j] += d * d
		}
	}
	for j := range m.Std {
		m.Std[j] = math.Sqrt(m.Std[j] / n)
		if m.Std[j] < 1e-12 {
			m.Std[j] = 1
			m.ConstantCols = append(m.ConstantCols, j)
		}
	}
	m.YMean = linalg.Mean(y)
	s := 0.0
	for _, v := range y {
		d := v - m.YMean
		s += d * d
	}
	m.YStd = math.Sqrt(s / n)
	if m.YStd < 1e-12 {
		m.YStd = 1
	}
}

func (m *Model) standardizeMatrix(x *linalg.Matrix) *linalg.Matrix {
	return m.standardizeInto(linalg.NewMatrix(x.Rows, x.Cols), x)
}

// standardizeInto writes the standardized rows of x into dst (resized as
// needed) using the guarded reciprocal stddev.
func (m *Model) standardizeInto(dst, x *linalg.Matrix) *linalg.Matrix {
	inv := m.inputInvStd()
	out := reshapeMat(dst, x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		// (v-mean)/std computed as v*inv - mean*inv with a cached shift
		// vector — one fused multiply-add per element.
		linalg.ScaleShiftInto(out.Row(i), x.Row(i), inv, m.stdShift)
	}
	return out
}

// predictParallelMinRows is the batch size below which the per-row forward
// passes are too few to amortize worker startup.
const predictParallelMinRows = 8

// predictStandardized runs the per-row forward passes on the bounded worker
// pool for large batches (SHAP coalition matrices). forwardInference reads
// only frozen weights plus the shared read-only transpose, each worker
// pulls its own scratch from the pool, and each worker owns a disjoint row
// range, so the sharded result is identical to a sequential pass.
func (m *Model) predictStandardized(xs *linalg.Matrix) []float64 {
	out := make([]float64, xs.Rows)
	owner := m.getScratch()
	owner.sharedT = m.sharedTranspose(owner.sharedT)
	st := owner.sharedT
	workers := 0
	if xs.Rows < predictParallelMinRows {
		workers = 1
	}
	parallel.For(xs.Rows, workers, func(lo, hi int) {
		sc := m.getScratch()
		h2 := 2 * (m.Config.DecisionDim + m.Config.AttentionDim)
		za := resize(&sc.z0a, h2)
		zb := resize(&sc.z0b, h2)
		i := lo
		for ; i+1 < hi; i += 2 {
			// The dense layers dominate the per-row weight traffic; walking
			// two rows in lockstep streams every weight matrix (shared pass
			// and the per-step layers inside forwardInferenceZ2) once per
			// pair, bitwise identical to the per-row path.
			linalg.GemvT2(za, zb, m.Shared.W, h2, m.NumFeatures, xs.Row(i), xs.Row(i+1), m.Shared.B)
			y0, y1 := m.forwardInferenceZ2(xs.Row(i), xs.Row(i+1), za, zb, st, sc)
			out[i] = y0*m.YStd + m.YMean
			out[i+1] = y1*m.YStd + m.YMean
		}
		for ; i < hi; i++ {
			out[i] = m.forwardInference(xs.Row(i), st, &sc.r0)*m.YStd + m.YMean
		}
		m.putScratch(sc)
	})
	m.putScratch(owner)
	return out
}

// rmseStandardized scores the per-epoch training loss through the pooled
// vectorized inference path (forwardSample and forwardInference agree to
// float rounding; this is measurement, not training math).
func (m *Model) rmseStandardized(xs *linalg.Matrix, ys []float64) float64 {
	pred := m.predictStandardized(xs)
	s := 0.0
	for i := range ys {
		d := (pred[i]-m.YMean)/m.YStd - ys[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(ys)))
}

func rmseSlices(pred, y []float64) float64 {
	s := 0.0
	for i := range y {
		d := pred[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(y)))
}

// Predict returns the prediction for one raw feature vector.
func (m *Model) Predict(x []float64) float64 {
	sc := m.getScratch()
	sc.sharedT = m.sharedTranspose(sc.sharedT)
	xr := reshapeMat(&sc.xs, 1, len(x))
	inv := m.inputInvStd()
	for j, v := range x {
		xr.Data[j] = (v - m.Mean[j]) * inv[j]
	}
	y := m.forwardInference(xr.Data, sc.sharedT, &sc.r0)*m.YStd + m.YMean
	m.putScratch(sc)
	return y
}

// PredictBatch predicts every row of x. The standardized block lives in
// pooled scratch so repeated SHAP coalition batches stop allocating a
// fresh matrix per call.
func (m *Model) PredictBatch(x *linalg.Matrix) []float64 {
	sc := m.getScratch()
	xs := m.standardizeInto(&sc.xs, x)
	out := m.predictStandardized(xs)
	m.putScratch(sc)
	return out
}

// ExplainMask returns the average sparsemax attention mask across steps for
// one raw input — TabNet's built-in notion of feature importance.
func (m *Model) ExplainMask(x []float64) []float64 {
	xs := make([]float64, len(x))
	for j, v := range x {
		xs[j] = (v - m.Mean[j]) / m.Std[j]
	}
	var caches []stepCache
	m.forwardSample(xs, &caches)
	out := make([]float64, m.NumFeatures)
	for _, c := range caches[1:] {
		for i, v := range c.mask {
			out[i] += v / float64(m.Config.Steps)
		}
	}
	return out
}

func (m *Model) cloneWeights() *Model {
	cp := &Model{}
	cd := func(d dense) dense {
		return dense{In: d.In, Out: d.Out,
			W: append([]float64(nil), d.W...), B: append([]float64(nil), d.B...)}
	}
	cp.Shared = cd(m.Shared)
	cp.Out = cd(m.Out)
	for s := range m.StepFC {
		cp.StepFC = append(cp.StepFC, cd(m.StepFC[s]))
		cp.AttFC = append(cp.AttFC, cd(m.AttFC[s]))
	}
	return cp
}

// adoptPrevious deep-copies prev's standardizer, target scaling, and
// learned tensors into m as the warm-start seed. prev is never aliased: the
// previous generation may still be serving predictions concurrently.
func (m *Model) adoptPrevious(prev *Model) {
	m.Mean = append([]float64(nil), prev.Mean...)
	m.Std = append([]float64(nil), prev.Std...)
	m.ConstantCols = append([]int(nil), prev.ConstantCols...)
	m.YMean, m.YStd = prev.YMean, prev.YStd
	cd := func(d dense) dense {
		return dense{In: d.In, Out: d.Out,
			W: append([]float64(nil), d.W...), B: append([]float64(nil), d.B...)}
	}
	m.Shared = cd(prev.Shared)
	m.Out = cd(prev.Out)
	m.StepFC = make([]dense, len(prev.StepFC))
	m.AttFC = make([]dense, len(prev.AttFC))
	for s := range prev.StepFC {
		m.StepFC[s] = cd(prev.StepFC[s])
		m.AttFC[s] = cd(prev.AttFC[s])
	}
}

func (m *Model) restoreWeights(snap *Model) {
	copy(m.Shared.W, snap.Shared.W)
	copy(m.Shared.B, snap.Shared.B)
	copy(m.Out.W, snap.Out.W)
	copy(m.Out.B, snap.Out.B)
	for s := range m.StepFC {
		copy(m.StepFC[s].W, snap.StepFC[s].W)
		copy(m.StepFC[s].B, snap.StepFC[s].B)
		copy(m.AttFC[s].W, snap.AttFC[s].W)
		copy(m.AttFC[s].B, snap.AttFC[s].B)
	}
}

// Save gob-encodes the model.
func (m *Model) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("tabnet: encode model: %w", err)
	}
	return nil
}

// Load decodes a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("tabnet: decode model: %w", err)
	}
	return &m, nil
}
