// Package tabnet implements a compact TabNet-style regressor — the paper's
// fifth performance function. It keeps TabNet's defining mechanism:
// sequential decision steps, each selecting features with a learned
// sparsemax attention mask relaxed by a prior, feeding GLU feature
// transformers whose decision outputs are aggregated into the prediction.
//
// Simplifications relative to the reference implementation (pytorch-tabnet),
// documented per the reproduction's substitution rule: ghost batch
// normalization is replaced by input standardization, the sparsity
// regularizer is omitted, and the attention prior is treated as a constant
// during backpropagation. As the paper notes (Section 3.2), TabNet's
// software only accepts dense input, so this model also trains dense; the
// sparsity handling happens in the diagnosis function.
package tabnet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"github.com/hpc-repro/aiio/internal/linalg"
	"github.com/hpc-repro/aiio/internal/parallel"
)

// Config holds the architecture and optimizer settings.
type Config struct {
	// Steps is the number of sequential decision steps.
	Steps int
	// DecisionDim (N_d) and AttentionDim (N_a) size the split transformer
	// output.
	DecisionDim  int
	AttentionDim int
	// Gamma is the prior relaxation: a feature used at one step has its
	// attention prior multiplied by (Gamma - mask).
	Gamma float64
	// LearningRate is the Adam step size.
	LearningRate float64
	Epochs       int
	BatchSize    int
	// EarlyStoppingRounds stops training when the eval RMSE stalls.
	EarlyStoppingRounds int
	Seed                int64
}

// DefaultConfig mirrors pytorch-tabnet's defaults at a small scale.
func DefaultConfig() Config {
	return Config{
		Steps:               3,
		DecisionDim:         8,
		AttentionDim:        8,
		Gamma:               1.3,
		LearningRate:        2e-2,
		Epochs:              150,
		BatchSize:           256,
		EarlyStoppingRounds: 10,
		Seed:                1,
	}
}

// dense is a serializable fully-connected layer y = W·x + b.
type dense struct {
	In, Out int
	W, B    []float64
}

func newDense(in, out int, rng *rand.Rand) dense {
	d := dense{In: in, Out: out, W: make([]float64, in*out), B: make([]float64, out)}
	scale := math.Sqrt(2 / float64(in))
	for i := range d.W {
		d.W[i] = rng.NormFloat64() * scale
	}
	return d
}

func (d *dense) forward(x []float64) []float64 {
	out := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		out[o] = linalg.Dot(d.W[o*d.In:(o+1)*d.In], x) + d.B[o]
	}
	return out
}

// backward accumulates gradients into gw/gb and returns dL/dx.
func (d *dense) backward(x, gout, gw, gb []float64) []float64 {
	gin := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := gout[o]
		if g == 0 {
			continue
		}
		gb[o] += g
		w := d.W[o*d.In : (o+1)*d.In]
		gwRow := gw[o*d.In : (o+1)*d.In]
		for j := range gin {
			gwRow[j] += g * x[j]
			gin[j] += g * w[j]
		}
	}
	return gin
}

// Model is a trained TabNet regressor.
type Model struct {
	Config Config
	// Standardization.
	Mean, Std   []float64
	YMean, YStd float64
	NumFeatures int
	// Shared feature transformer: D -> 2H (GLU halves to H = Nd+Na).
	Shared dense
	// StepFC are per-step transformers H -> 2H.
	StepFC []dense
	// AttFC are per-step attentive transformers N_a -> D.
	AttFC []dense
	// Out maps aggregated decisions N_d -> 1.
	Out dense
	// Loss curves.
	TrainLoss []float64
	EvalLoss  []float64
	BestEpoch int
}

// sparsemax projects v onto the probability simplex (Martins & Astudillo).
// It returns the projection and the support mask.
func sparsemax(v []float64) (out []float64, support []bool) {
	n := len(v)
	sorted := append([]float64(nil), v...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	cum := 0.0
	k := 0
	var tau float64
	for i := 0; i < n; i++ {
		cum += sorted[i]
		t := (cum - 1) / float64(i+1)
		if sorted[i] > t {
			k = i + 1
			tau = t
		}
	}
	_ = k
	out = make([]float64, n)
	support = make([]bool, n)
	for i, x := range v {
		if x > tau {
			out[i] = x - tau
			support[i] = true
		}
	}
	return out, support
}

// sparsemaxBackward maps the output gradient through the projection.
func sparsemaxBackward(g []float64, support []bool) []float64 {
	sum, cnt := 0.0, 0
	for i, s := range support {
		if s {
			sum += g[i]
			cnt++
		}
	}
	out := make([]float64, len(g))
	if cnt == 0 {
		return out
	}
	mean := sum / float64(cnt)
	for i, s := range support {
		if s {
			out[i] = g[i] - mean
		}
	}
	return out
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// glu splits z into halves (u, v) and returns u ⊙ σ(v).
func glu(z []float64) []float64 {
	h := len(z) / 2
	out := make([]float64, h)
	for i := 0; i < h; i++ {
		out[i] = z[i] * sigmoid(z[h+i])
	}
	return out
}

// gluBackward maps the output gradient back to z's gradient.
func gluBackward(z, gout []float64) []float64 {
	h := len(z) / 2
	gz := make([]float64, len(z))
	for i := 0; i < h; i++ {
		s := sigmoid(z[h+i])
		gz[i] = gout[i] * s
		gz[h+i] = gout[i] * z[i] * s * (1 - s)
	}
	return gz
}

// stepCache holds per-step forward state for backprop.
type stepCache struct {
	prior    []float64
	logits   []float64
	mask     []float64
	support  []bool
	xm       []float64
	sharedZ  []float64
	sharedH  []float64
	stepZ    []float64
	h        []float64
	dPreRelu []float64
	a        []float64
}

// forwardSample runs the network on one standardized sample. When caches is
// non-nil, intermediate state is recorded for backprop.
func (m *Model) forwardSample(x []float64, caches *[]stepCache) float64 {
	d := m.Config.DecisionDim
	h := d + m.Config.AttentionDim

	// Step 0: unmasked pass provides the initial attention features.
	z0 := m.Shared.forward(x)
	h0 := glu(z0)
	a := h0[d:h]
	agg := make([]float64, d)

	prior := make([]float64, m.NumFeatures)
	for i := range prior {
		prior[i] = 1
	}
	if caches != nil {
		*caches = append(*caches, stepCache{sharedZ: z0, sharedH: h0, a: a, xm: x})
	}

	for s := 0; s < m.Config.Steps; s++ {
		logitsRaw := m.AttFC[s].forward(a)
		logits := make([]float64, m.NumFeatures)
		for i := range logits {
			logits[i] = logitsRaw[i] * prior[i]
		}
		mask, support := sparsemax(logits)
		xm := make([]float64, m.NumFeatures)
		for i := range xm {
			xm[i] = mask[i] * x[i]
		}
		z := m.Shared.forward(xm)
		hShared := glu(z)
		z2 := m.StepFC[s].forward(hShared)
		hs := glu(z2)
		dPre := hs[:d]
		if caches != nil {
			*caches = append(*caches, stepCache{
				prior:  append([]float64(nil), prior...),
				logits: logitsRaw, mask: mask, support: support,
				xm: xm, sharedZ: z, sharedH: hShared,
				stepZ: z2, h: hs, dPreRelu: append([]float64(nil), dPre...),
				a: hs[d:h],
			})
		}
		for i := 0; i < d; i++ {
			if dPre[i] > 0 {
				agg[i] += dPre[i]
			}
		}
		a = hs[d:h]
		for i := range prior {
			prior[i] *= m.Config.Gamma - mask[i]
		}
	}
	out := m.Out.forward(agg)
	if caches != nil {
		(*caches)[0].dPreRelu = agg // stash aggregate in the step-0 cache
	}
	return out[0]
}

// grads bundles the gradient buffers, index-aligned with params().
type grads struct {
	sharedW, sharedB []float64
	stepW, stepB     [][]float64
	attW, attB       [][]float64
	outW, outB       []float64
}

func (m *Model) newGrads() *grads {
	g := &grads{
		sharedW: make([]float64, len(m.Shared.W)),
		sharedB: make([]float64, len(m.Shared.B)),
		outW:    make([]float64, len(m.Out.W)),
		outB:    make([]float64, len(m.Out.B)),
	}
	for s := 0; s < m.Config.Steps; s++ {
		g.stepW = append(g.stepW, make([]float64, len(m.StepFC[s].W)))
		g.stepB = append(g.stepB, make([]float64, len(m.StepFC[s].B)))
		g.attW = append(g.attW, make([]float64, len(m.AttFC[s].W)))
		g.attB = append(g.attB, make([]float64, len(m.AttFC[s].B)))
	}
	return g
}

func (g *grads) zero() {
	zero := func(v []float64) {
		for i := range v {
			v[i] = 0
		}
	}
	zero(g.sharedW)
	zero(g.sharedB)
	zero(g.outW)
	zero(g.outB)
	for s := range g.stepW {
		zero(g.stepW[s])
		zero(g.stepB[s])
		zero(g.attW[s])
		zero(g.attB[s])
	}
}

// backwardSample backpropagates dL/dout for one sample through the cached
// forward state.
func (m *Model) backwardSample(x []float64, caches []stepCache, gOut float64, g *grads) {
	d := m.Config.DecisionDim
	agg := caches[0].dPreRelu // aggregate stashed by forwardSample

	// Output layer.
	gAgg := m.Out.backward(agg, []float64{gOut}, g.outW, g.outB)

	// gA accumulates the gradient flowing into the attention features of
	// each earlier step (used by the next step's attentive transformer).
	gANext := make([]float64, m.Config.AttentionDim)

	for s := m.Config.Steps - 1; s >= 0; s-- {
		c := caches[s+1]
		// Gradient into this step's transformer output hs = [d | a].
		gh := make([]float64, d+m.Config.AttentionDim)
		for i := 0; i < d; i++ {
			if c.dPreRelu[i] > 0 {
				gh[i] = gAgg[i]
			}
		}
		copy(gh[d:], gANext)

		gz2 := gluBackward(c.stepZ, gh)
		ghShared := m.StepFC[s].backward(c.sharedH, gz2, g.stepW[s], g.stepB[s])
		gz := gluBackward(c.sharedZ, ghShared)
		gxm := m.Shared.backward(c.xm, gz, g.sharedW, g.sharedB)

		// xm = mask ⊙ x → gradient to the mask.
		gMask := make([]float64, m.NumFeatures)
		for i := range gMask {
			gMask[i] = gxm[i] * x[i]
		}
		gLogits := sparsemaxBackward(gMask, c.support)
		// logits = raw * prior (prior treated as constant).
		gRaw := make([]float64, m.NumFeatures)
		for i := range gRaw {
			gRaw[i] = gLogits[i] * c.prior[i]
		}
		prevA := caches[s].a
		gANext = m.AttFC[s].backward(prevA, gRaw, g.attW[s], g.attB[s])
	}

	// Step 0 attention features came from the unmasked shared pass.
	c0 := caches[0]
	gh0 := make([]float64, d+m.Config.AttentionDim)
	copy(gh0[d:], gANext)
	gz0 := gluBackward(c0.sharedZ, gh0)
	m.Shared.backward(x, gz0, g.sharedW, g.sharedB)
}

// Train fits the model with Adam and early stopping.
func Train(cfg Config, x *linalg.Matrix, y []float64, evalX *linalg.Matrix, evalY []float64) (*Model, error) {
	if x.Rows == 0 {
		return nil, errors.New("tabnet: empty training set")
	}
	if x.Rows != len(y) {
		panic(fmt.Sprintf("tabnet: %d rows vs %d targets", x.Rows, len(y)))
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 3
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.Gamma <= 1 {
		cfg.Gamma = 1.3
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 2e-2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := cfg.DecisionDim + cfg.AttentionDim

	m := &Model{Config: cfg, NumFeatures: x.Cols}
	m.fitStandardizer(x, y)
	m.Shared = newDense(x.Cols, 2*h, rng)
	for s := 0; s < cfg.Steps; s++ {
		m.StepFC = append(m.StepFC, newDense(h, 2*h, rng))
		m.AttFC = append(m.AttFC, newDense(cfg.AttentionDim, x.Cols, rng))
	}
	m.Out = newDense(cfg.DecisionDim, 1, rng)

	g := m.newGrads()
	opt := newAdamSet(g)

	xs := m.standardizeMatrix(x)
	ys := make([]float64, len(y))
	for i, v := range y {
		ys[i] = (v - m.YMean) / m.YStd
	}
	var evalXS *linalg.Matrix
	if evalX != nil && evalX.Rows > 0 {
		evalXS = m.standardizeMatrix(evalX)
	}

	order := make([]int, x.Rows)
	for i := range order {
		order[i] = i
	}
	best := math.Inf(1)
	sinceBest := 0
	var snapshot *Model

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for lo := 0; lo < len(order); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(order) {
				hi = len(order)
			}
			g.zero()
			inv := 1 / float64(hi-lo)
			for _, i := range order[lo:hi] {
				var caches []stepCache
				pred := m.forwardSample(xs.Row(i), &caches)
				m.backwardSample(xs.Row(i), caches, (pred-ys[i])*inv, g)
			}
			opt.step(m, g, cfg.LearningRate)
		}
		m.TrainLoss = append(m.TrainLoss, m.rmseStandardized(xs, ys))
		if evalXS != nil {
			e := rmseSlices(m.predictStandardized(evalXS), evalY)
			m.EvalLoss = append(m.EvalLoss, e)
			if e < best-1e-12 {
				best = e
				m.BestEpoch = epoch
				sinceBest = 0
				snapshot = m.cloneWeights()
			} else {
				sinceBest++
				if cfg.EarlyStoppingRounds > 0 && sinceBest >= cfg.EarlyStoppingRounds {
					break
				}
			}
		} else {
			m.BestEpoch = epoch
		}
	}
	if snapshot != nil {
		m.restoreWeights(snapshot)
	}
	return m, nil
}

// adamSet carries Adam state for every tensor.
type adamSet struct {
	ms, vs [][]float64
	t      int
}

func tensorsOf(m *Model, g *grads) (weights, gradList [][]float64) {
	weights = [][]float64{m.Shared.W, m.Shared.B, m.Out.W, m.Out.B}
	gradList = [][]float64{g.sharedW, g.sharedB, g.outW, g.outB}
	for s := range m.StepFC {
		weights = append(weights, m.StepFC[s].W, m.StepFC[s].B, m.AttFC[s].W, m.AttFC[s].B)
		gradList = append(gradList, g.stepW[s], g.stepB[s], g.attW[s], g.attB[s])
	}
	return weights, gradList
}

func newAdamSet(g *grads) *adamSet {
	a := &adamSet{}
	add := func(v []float64) {
		a.ms = append(a.ms, make([]float64, len(v)))
		a.vs = append(a.vs, make([]float64, len(v)))
	}
	add(g.sharedW)
	add(g.sharedB)
	add(g.outW)
	add(g.outB)
	for s := range g.stepW {
		add(g.stepW[s])
		add(g.stepB[s])
		add(g.attW[s])
		add(g.attB[s])
	}
	return a
}

func (a *adamSet) step(m *Model, g *grads, lr float64) {
	a.t++
	b1, b2, eps := 0.9, 0.999, 1e-8
	c1 := 1 - math.Pow(b1, float64(a.t))
	c2 := 1 - math.Pow(b2, float64(a.t))
	weights, gradList := tensorsOf(m, g)
	for ti := range weights {
		w, gr := weights[ti], gradList[ti]
		mm, vv := a.ms[ti], a.vs[ti]
		for i := range w {
			mm[i] = b1*mm[i] + (1-b1)*gr[i]
			vv[i] = b2*vv[i] + (1-b2)*gr[i]*gr[i]
			w[i] -= lr * (mm[i] / c1) / (math.Sqrt(vv[i]/c2) + eps)
		}
	}
}

func (m *Model) fitStandardizer(x *linalg.Matrix, y []float64) {
	m.Mean = make([]float64, x.Cols)
	m.Std = make([]float64, x.Cols)
	n := float64(x.Rows)
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			m.Mean[j] += v
		}
	}
	for j := range m.Mean {
		m.Mean[j] /= n
	}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			d := v - m.Mean[j]
			m.Std[j] += d * d
		}
	}
	for j := range m.Std {
		m.Std[j] = math.Sqrt(m.Std[j] / n)
		if m.Std[j] < 1e-12 {
			m.Std[j] = 1
		}
	}
	m.YMean = linalg.Mean(y)
	s := 0.0
	for _, v := range y {
		d := v - m.YMean
		s += d * d
	}
	m.YStd = math.Sqrt(s / n)
	if m.YStd < 1e-12 {
		m.YStd = 1
	}
}

func (m *Model) standardizeMatrix(x *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row, orow := x.Row(i), out.Row(i)
		for j, v := range row {
			orow[j] = (v - m.Mean[j]) / m.Std[j]
		}
	}
	return out
}

// predictParallelMinRows is the batch size below which the per-row forward
// passes are too few to amortize worker startup.
const predictParallelMinRows = 8

// predictStandardized runs the per-row forward passes on the bounded worker
// pool for large batches (SHAP coalition matrices). forwardSample reads
// only frozen weights and allocates its own state, and each worker owns a
// disjoint row range, so the result is bitwise-identical to a sequential
// pass.
func (m *Model) predictStandardized(xs *linalg.Matrix) []float64 {
	out := make([]float64, xs.Rows)
	workers := 0
	if xs.Rows < predictParallelMinRows {
		workers = 1
	}
	parallel.For(xs.Rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = m.forwardSample(xs.Row(i), nil)*m.YStd + m.YMean
		}
	})
	return out
}

func (m *Model) rmseStandardized(xs *linalg.Matrix, ys []float64) float64 {
	s := 0.0
	for i := 0; i < xs.Rows; i++ {
		d := m.forwardSample(xs.Row(i), nil) - ys[i]
		s += d * d
	}
	return math.Sqrt(s / float64(xs.Rows))
}

func rmseSlices(pred, y []float64) float64 {
	s := 0.0
	for i := range y {
		d := pred[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(y)))
}

// Predict returns the prediction for one raw feature vector.
func (m *Model) Predict(x []float64) float64 {
	xs := make([]float64, len(x))
	for j, v := range x {
		xs[j] = (v - m.Mean[j]) / m.Std[j]
	}
	return m.forwardSample(xs, nil)*m.YStd + m.YMean
}

// PredictBatch predicts every row of x.
func (m *Model) PredictBatch(x *linalg.Matrix) []float64 {
	return m.predictStandardized(m.standardizeMatrix(x))
}

// ExplainMask returns the average sparsemax attention mask across steps for
// one raw input — TabNet's built-in notion of feature importance.
func (m *Model) ExplainMask(x []float64) []float64 {
	xs := make([]float64, len(x))
	for j, v := range x {
		xs[j] = (v - m.Mean[j]) / m.Std[j]
	}
	var caches []stepCache
	m.forwardSample(xs, &caches)
	out := make([]float64, m.NumFeatures)
	for _, c := range caches[1:] {
		for i, v := range c.mask {
			out[i] += v / float64(m.Config.Steps)
		}
	}
	return out
}

func (m *Model) cloneWeights() *Model {
	cp := &Model{}
	cd := func(d dense) dense {
		return dense{In: d.In, Out: d.Out,
			W: append([]float64(nil), d.W...), B: append([]float64(nil), d.B...)}
	}
	cp.Shared = cd(m.Shared)
	cp.Out = cd(m.Out)
	for s := range m.StepFC {
		cp.StepFC = append(cp.StepFC, cd(m.StepFC[s]))
		cp.AttFC = append(cp.AttFC, cd(m.AttFC[s]))
	}
	return cp
}

func (m *Model) restoreWeights(snap *Model) {
	copy(m.Shared.W, snap.Shared.W)
	copy(m.Shared.B, snap.Shared.B)
	copy(m.Out.W, snap.Out.W)
	copy(m.Out.B, snap.Out.B)
	for s := range m.StepFC {
		copy(m.StepFC[s].W, snap.StepFC[s].W)
		copy(m.StepFC[s].B, snap.StepFC[s].B)
		copy(m.AttFC[s].W, snap.AttFC[s].W)
		copy(m.AttFC[s].B, snap.AttFC[s].B)
	}
}

// Save gob-encodes the model.
func (m *Model) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("tabnet: encode model: %w", err)
	}
	return nil
}

// Load decodes a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("tabnet: decode model: %w", err)
	}
	return &m, nil
}
