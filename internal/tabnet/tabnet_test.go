package tabnet

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hpc-repro/aiio/internal/linalg"
)

func synth(n, d int, seed int64) (*linalg.Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := linalg.NewMatrix(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.Float64() * 4
		}
		y[i] = 3*row[0] - 2*row[1%d] + rng.NormFloat64()*0.05
	}
	return x, y
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Epochs = 80
	cfg.EarlyStoppingRounds = 20
	return cfg
}

func rmseOf(pred, y []float64) float64 {
	s := 0.0
	for i := range y {
		d := pred[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(y)))
}

func TestSparsemaxProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 32 {
			return true
		}
		v := make([]float64, len(raw))
		for i, r := range raw {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return true
			}
			v[i] = math.Mod(r, 100)
		}
		out, support := sparsemax(v)
		sum := 0.0
		for i, o := range out {
			if o < 0 {
				return false
			}
			if (o > 0) != support[i] {
				return false
			}
			sum += o
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSparsemaxSelectsMax(t *testing.T) {
	out, _ := sparsemax([]float64{10, 0, -5})
	if out[0] != 1 || out[1] != 0 || out[2] != 0 {
		t.Errorf("sparsemax([10,0,-5]) = %v, want one-hot", out)
	}
	out, _ = sparsemax([]float64{1, 1})
	if math.Abs(out[0]-0.5) > 1e-9 || math.Abs(out[1]-0.5) > 1e-9 {
		t.Errorf("sparsemax of ties = %v", out)
	}
}

func TestSparsemaxBackwardZeroOffSupport(t *testing.T) {
	_, support := sparsemax([]float64{10, 0, -5})
	g := sparsemaxBackward([]float64{1, 2, 3}, support)
	if g[1] != 0 || g[2] != 0 {
		t.Errorf("gradient leaked off support: %v", g)
	}
	// On-support gradients are centered: single support element -> zero.
	if g[0] != 0 {
		t.Errorf("singleton support gradient = %v, want 0", g[0])
	}
}

func TestGLUGradientNumerically(t *testing.T) {
	z := []float64{0.5, -1, 2, 0.3}
	gout := []float64{1, 2}
	gz := gluBackward(z, gout)
	eps := 1e-6
	for i := range z {
		zp := append([]float64(nil), z...)
		zm := append([]float64(nil), z...)
		zp[i] += eps
		zm[i] -= eps
		op, om := glu(zp), glu(zm)
		num := 0.0
		for k := range gout {
			num += gout[k] * (op[k] - om[k]) / (2 * eps)
		}
		if math.Abs(num-gz[i]) > 1e-5 {
			t.Errorf("GLU grad[%d] = %v, numeric %v", i, gz[i], num)
		}
	}
}

func TestTabNetLearnsRegression(t *testing.T) {
	x, y := synth(1000, 6, 1)
	ex, ey := synth(300, 6, 2)
	m, err := Train(smallConfig(), x, y, ex, ey)
	if err != nil {
		t.Fatal(err)
	}
	mean := linalg.Mean(ey)
	baseline := 0.0
	for _, v := range ey {
		baseline += (v - mean) * (v - mean)
	}
	baseline = math.Sqrt(baseline / float64(len(ey)))
	e := rmseOf(m.PredictBatch(ex), ey)
	if e > baseline*0.7 {
		t.Errorf("TabNet eval RMSE %.4f not < 0.7x baseline %.4f", e, baseline)
	}
}

func TestTabNetDeterministic(t *testing.T) {
	x, y := synth(300, 5, 3)
	cfg := smallConfig()
	cfg.Epochs = 5
	a, _ := Train(cfg, x, y, nil, nil)
	b, _ := Train(cfg, x, y, nil, nil)
	pa, pb := a.PredictBatch(x), b.PredictBatch(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed, different predictions")
		}
	}
}

func TestTabNetExplainMask(t *testing.T) {
	x, y := synth(800, 6, 4)
	cfg := smallConfig()
	cfg.Epochs = 40
	m, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	mask := m.ExplainMask(x.Row(0))
	if len(mask) != 6 {
		t.Fatalf("mask length %d", len(mask))
	}
	sum := 0.0
	for _, v := range mask {
		if v < 0 {
			t.Fatalf("negative mask value %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("average mask sums to %v, want 1", sum)
	}
}

func TestTabNetPredictMatchesBatch(t *testing.T) {
	x, y := synth(200, 4, 5)
	cfg := smallConfig()
	cfg.Epochs = 3
	m, _ := Train(cfg, x, y, nil, nil)
	batch := m.PredictBatch(x)
	for i := 0; i < x.Rows; i += 31 {
		if math.Abs(m.Predict(x.Row(i))-batch[i]) > 1e-9 {
			t.Fatalf("row %d single/batch mismatch", i)
		}
	}
}

func TestTabNetSaveLoad(t *testing.T) {
	x, y := synth(200, 4, 6)
	cfg := smallConfig()
	cfg.Epochs = 3
	m, _ := Train(cfg, x, y, nil, nil)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := m.PredictBatch(x), got.PredictBatch(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("loaded model predicts differently")
		}
	}
}

func TestTabNetEmptyErrors(t *testing.T) {
	if _, err := Train(DefaultConfig(), linalg.NewMatrix(0, 4), nil, nil, nil); err == nil {
		t.Error("Train accepted empty dataset")
	}
}

func TestTabNetEarlyStopping(t *testing.T) {
	x, y := synth(500, 5, 7)
	ex, ey := synth(200, 5, 8)
	cfg := smallConfig()
	cfg.Epochs = 400
	cfg.EarlyStoppingRounds = 5
	m, err := Train(cfg, x, y, ex, ey)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.EvalLoss) == 400 {
		t.Error("early stopping never triggered")
	}
}
