package tabnet

import (
	"github.com/hpc-repro/aiio/internal/linalg"
)

// The kernelized training path. TabNet's step loop is inherently per-sample
// (each sample's sparsemax support is data dependent), so the fast path
// keeps the sample walk but removes every per-sample allocation — one
// trainScratch owns the per-step caches and all backward temporaries for
// the whole Train call — and routes every dense product through the
// linalg kernels: GemvT for forwards, Axpy for weight-gradient rank-1 rows,
// Axpy2 for input gradients (pairs of output units share one pass over the
// destination).
//
// Equivalence with the reference path (Config.ReferenceKernels,
// forwardSample/backwardSample): identical math up to FP reassociation and
// the fused-GLU polynomial exp (~1e-13 relative); train_parity_test.go pins
// the drift after several epochs. Training draws no RNG inside the batch
// loop, so the two paths see identical shuffles for a given seed.

// trainCache is the fast path's per-step forward state (cf. stepCache).
// caches[0] holds the unmasked step-0 pass; caches[s+1] holds decision step
// s. h is the full GLU output [decision | attention]: its first d entries
// are the pre-ReLU decision half and its tail is the attention handoff, so
// neither needs a separate copy.
type trainCache struct {
	prior   []float64 // prior before this step's decay
	support []bool    // sparsemax support
	xm      []float64 // masked input
	sharedZ []float64 // shared-layer pre-activation
	sharedH []float64 // shared GLU output
	stepZ   []float64 // step-transformer pre-activation
	h       []float64 // step GLU output [d | attention]
}

// trainScratch is the reusable per-Train state of the fast path.
type trainScratch struct {
	caches  []trainCache
	agg     []float64
	prior   []float64
	scaled  []float64 // prior-scaled logits (sparsemax input)
	cand    []float64
	candIdx []int32
	// backward temporaries
	gAgg    []float64
	gA      []float64
	gh      []float64
	gz2     []float64
	ghS     []float64
	gz      []float64
	gxm     []float64
	gMask   []float64
	gLogits []float64
	gRaw    []float64
}

func (m *Model) newTrainScratch() *trainScratch {
	d := m.Config.DecisionDim
	h := d + m.Config.AttentionDim
	h2 := 2 * h
	nf := m.NumFeatures
	ts := &trainScratch{
		caches:  make([]trainCache, m.Config.Steps+1),
		agg:     make([]float64, d),
		prior:   make([]float64, nf),
		scaled:  make([]float64, nf),
		cand:    make([]float64, 0, nf),
		candIdx: make([]int32, 0, nf),
		gAgg:    make([]float64, d),
		gA:      make([]float64, m.Config.AttentionDim),
		gh:      make([]float64, h),
		gz2:     make([]float64, h2),
		ghS:     make([]float64, h),
		gz:      make([]float64, h2),
		gxm:     make([]float64, nf),
		gMask:   make([]float64, nf),
		gLogits: make([]float64, nf),
		gRaw:    make([]float64, nf),
	}
	for s := range ts.caches {
		c := &ts.caches[s]
		c.sharedZ = make([]float64, h2)
		c.sharedH = make([]float64, h)
		if s > 0 {
			c.prior = make([]float64, nf)
			c.support = make([]bool, nf)
			c.xm = make([]float64, nf)
			c.stepZ = make([]float64, h2)
			c.h = make([]float64, h)
		}
	}
	return ts
}

// denseBackwardVec is dense.backward on kernels: gb/gw accumulate the bias
// and rank-1 weight gradients (Axpy per output row, zero-gradient rows
// skipped), and when gin is non-nil the input gradient is accumulated over
// output-unit pairs via Axpy2 (one pass over gin per pair).
func denseBackwardVec(d *dense, x, gout, gw, gb, gin []float64) {
	if gin != nil {
		for i := range gin {
			gin[i] = 0
		}
	}
	o := 0
	for ; o+1 < d.Out; o += 2 {
		g0, g1 := gout[o], gout[o+1]
		if g0 != 0 {
			gb[o] += g0
			linalg.Axpy(g0, x, gw[o*d.In:(o+1)*d.In])
		}
		if g1 != 0 {
			gb[o+1] += g1
			linalg.Axpy(g1, x, gw[(o+1)*d.In:(o+2)*d.In])
		}
		if gin != nil {
			w0 := d.W[o*d.In : (o+1)*d.In]
			w1 := d.W[(o+1)*d.In : (o+2)*d.In]
			switch {
			case g0 != 0 && g1 != 0:
				linalg.Axpy2(g0, g1, w0, w1, gin)
			case g0 != 0:
				linalg.Axpy(g0, w0, gin)
			case g1 != 0:
				linalg.Axpy(g1, w1, gin)
			}
		}
	}
	if o < d.Out {
		if g := gout[o]; g != 0 {
			gb[o] += g
			linalg.Axpy(g, x, gw[o*d.In:(o+1)*d.In])
			if gin != nil {
				linalg.Axpy(g, d.W[o*d.In:(o+1)*d.In], gin)
			}
		}
	}
}

// gluBackwardInto is gluBackward writing into the preallocated gz.
func gluBackwardInto(gz, z, gout []float64) {
	h := len(z) / 2
	for i := 0; i < h; i++ {
		s := sigmoid(z[h+i])
		gz[i] = gout[i] * s
		gz[h+i] = gout[i] * z[i] * s * (1 - s)
	}
}

// sparsemaxBackwardInto is sparsemaxBackward writing into out.
func sparsemaxBackwardInto(out, g []float64, support []bool) {
	sum, cnt := 0.0, 0
	for i, s := range support {
		if s {
			sum += g[i]
			cnt++
		}
	}
	for i := range out {
		out[i] = 0
	}
	if cnt == 0 {
		return
	}
	mean := sum / float64(cnt)
	for i, s := range support {
		if s {
			out[i] = g[i] - mean
		}
	}
}

// forwardTrain is forwardSample on the trainScratch: same step math, zero
// allocations, kernel dense products, with the backward state recorded in
// ts.caches.
func (m *Model) forwardTrain(x []float64, ts *trainScratch) float64 {
	d := m.Config.DecisionDim
	h := d + m.Config.AttentionDim
	h2 := 2 * h
	nf := m.NumFeatures
	gamma := m.Config.Gamma

	c0 := &ts.caches[0]
	linalg.GemvT(c0.sharedZ, m.Shared.W, h2, nf, x, m.Shared.B)
	gluInto(c0.sharedH, c0.sharedZ)
	a := c0.sharedH[d:h]

	agg := ts.agg
	for i := range agg {
		agg[i] = 0
	}
	prior := ts.prior
	for i := range prior {
		prior[i] = 1
	}

	for s := 0; s < m.Config.Steps; s++ {
		c := &ts.caches[s+1]
		att := &m.AttFC[s]
		// Raw attention logits, then the prior product fused into the
		// sparsemax max-scan (scaled aliases neither).
		linalg.GemvT(ts.scaled, att.W, nf, att.In, a, att.B)
		copy(c.prior, prior)
		var tau float64
		tau, ts.cand, ts.candIdx = sparsemaxTauScaled(ts.scaled, prior, ts.cand, ts.candIdx)
		// Mask, masked input, and prior decay in one pass; the mask itself
		// is never materialized (mv = scaled-tau on the support, 0 off it).
		for i := 0; i < nf; i++ {
			mv := 0.0
			if ts.scaled[i] > tau {
				mv = ts.scaled[i] - tau
				c.support[i] = true
			} else {
				c.support[i] = false
			}
			c.xm[i] = mv * x[i]
			prior[i] *= gamma - mv
		}
		linalg.GemvT(c.sharedZ, m.Shared.W, h2, nf, c.xm, m.Shared.B)
		gluInto(c.sharedH, c.sharedZ)
		fc := &m.StepFC[s]
		linalg.GemvT(c.stepZ, fc.W, h2, fc.In, c.sharedH, fc.B)
		gluInto(c.h, c.stepZ)
		for i := 0; i < d; i++ {
			if c.h[i] > 0 {
				agg[i] += c.h[i]
			}
		}
		a = c.h[d:h]
	}
	return linalg.Dot(m.Out.W, agg) + m.Out.B[0]
}

// backwardTrain is backwardSample on the trainScratch: dL/dout for the
// sample whose forward state is in ts (forwardTrain must have just run).
func (m *Model) backwardTrain(x []float64, ts *trainScratch, gOut float64, g *grads) {
	d := m.Config.DecisionDim
	h := d + m.Config.AttentionDim

	// Output layer: gw += gOut·agg, gb += gOut, gAgg = gOut·W.
	if gOut != 0 {
		g.outB[0] += gOut
		linalg.Axpy(gOut, ts.agg, g.outW)
	}
	gAgg := ts.gAgg
	for i := range gAgg {
		gAgg[i] = gOut * m.Out.W[i]
	}
	gA := ts.gA
	for i := range gA {
		gA[i] = 0
	}

	for s := m.Config.Steps - 1; s >= 0; s-- {
		c := &ts.caches[s+1]
		gh := ts.gh
		for i := 0; i < d; i++ {
			if c.h[i] > 0 {
				gh[i] = gAgg[i]
			} else {
				gh[i] = 0
			}
		}
		copy(gh[d:], gA)

		gluBackwardInto(ts.gz2, c.stepZ, gh)
		denseBackwardVec(&m.StepFC[s], c.sharedH, ts.gz2, g.stepW[s], g.stepB[s], ts.ghS)
		gluBackwardInto(ts.gz, c.sharedZ, ts.ghS)
		denseBackwardVec(&m.Shared, c.xm, ts.gz, g.sharedW, g.sharedB, ts.gxm)

		// xm = mask ⊙ x → gradient to the mask, back through sparsemax,
		// then the constant-prior product to the raw logits.
		for i := range ts.gMask {
			ts.gMask[i] = ts.gxm[i] * x[i]
		}
		sparsemaxBackwardInto(ts.gLogits, ts.gMask, c.support)
		for i := range ts.gRaw {
			ts.gRaw[i] = ts.gLogits[i] * c.prior[i]
		}
		var prevA []float64
		if s == 0 {
			prevA = ts.caches[0].sharedH[d:h]
		} else {
			prevA = ts.caches[s].h[d:h]
		}
		denseBackwardVec(&m.AttFC[s], prevA, ts.gRaw, g.attW[s], g.attB[s], gA)
	}

	// Step 0 attention features came from the unmasked shared pass.
	c0 := &ts.caches[0]
	gh := ts.gh
	for i := 0; i < d; i++ {
		gh[i] = 0
	}
	copy(gh[d:], gA)
	gluBackwardInto(ts.gz, c0.sharedZ, gh)
	denseBackwardVec(&m.Shared, x, ts.gz, g.sharedW, g.sharedB, nil)
}
