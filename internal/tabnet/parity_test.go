package tabnet

import (
	"math"
	"math/rand"
	"testing"

	"github.com/hpc-repro/aiio/internal/linalg"
)

// TestInferenceParityWithTrainingPath pins the flattened inference path
// (transposed-shared axpy walk, vectorized sparsemax scan, fused GLU and
// paired shared pass) against forwardSample, the allocation-per-call
// training forward that serves as the reference implementation.
func TestInferenceParityWithTrainingPath(t *testing.T) {
	x, y := synth(300, 8, 17)
	cfg := smallConfig()
	cfg.Epochs = 6
	m, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	xs := m.standardizeMatrix(x)
	want := make([]float64, x.Rows)
	for i := range want {
		want[i] = m.forwardSample(xs.Row(i), nil)*m.YStd + m.YMean
	}

	for _, rows := range []int{x.Rows, 7, 1} { // even batch, odd tail, single
		sub := &linalg.Matrix{Rows: rows, Cols: x.Cols, Data: x.Data[:rows*x.Cols]}
		got := m.PredictBatch(sub)
		for i := range got {
			d := math.Abs(got[i]-want[i]) / math.Max(1, math.Max(math.Abs(got[i]), math.Abs(want[i])))
			if d > 1e-9 {
				t.Fatalf("rows=%d: PredictBatch[%d] = %v, reference %v (rel diff %g)", rows, i, got[i], want[i], d)
			}
		}
	}
	for i := 0; i < 8; i++ {
		p := m.Predict(x.Row(i))
		d := math.Abs(p-want[i]) / math.Max(1, math.Abs(want[i]))
		if d > 1e-9 {
			t.Fatalf("Predict row %d = %v, reference %v (rel diff %g)", i, p, want[i], d)
		}
	}
}

// TestSparsemaxTauScaledMatchesReference checks the vectorized fused
// scale+max+mask scan against the O(n) reference projection for random
// logit/prior pairs, including ties and fully-uniform inputs.
func TestSparsemaxTauScaledMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(60)
		v := make([]float64, n)
		prior := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 2
			prior[i] = rng.Float64()
		}
		if trial%10 == 0 {
			for i := range v {
				v[i] = 0.5 // uniform logits: full support
			}
		}
		scaled := make([]float64, n)
		for i := range scaled {
			scaled[i] = v[i] * prior[i]
		}
		refOut, _ := sparsemax(append([]float64(nil), scaled...))

		work := append([]float64(nil), v...)
		tau, _, idx := sparsemaxTauScaled(work, prior, nil, nil)
		got := make([]float64, n)
		for _, ii := range idx {
			if w := work[ii] - tau; w > 0 {
				got[ii] = w
			}
		}
		sum := 0.0
		for i := range got {
			d := math.Abs(got[i] - refOut[i])
			if d > 1e-12 {
				t.Fatalf("trial %d n=%d: out[%d] = %v, reference %v", trial, n, i, got[i], refOut[i])
			}
			sum += got[i]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: projection sums to %v, want 1", trial, sum)
		}
	}
}

// TestConstantColumnsRecorded mirrors the mlp guard: zero-variance training
// columns are recorded, clamped to unit scale, and never produce NaN.
func TestConstantColumnsRecorded(t *testing.T) {
	x, y := synth(200, 6, 9)
	for i := 0; i < x.Rows; i++ {
		x.Set(i, 0, -2.5)
		x.Set(i, 4, 0)
	}
	cfg := smallConfig()
	cfg.Epochs = 3
	m, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ConstantCols) != 2 || m.ConstantCols[0] != 0 || m.ConstantCols[1] != 4 {
		t.Fatalf("ConstantCols = %v, want [0 4]", m.ConstantCols)
	}
	for _, j := range m.ConstantCols {
		if m.Std[j] != 1 {
			t.Errorf("Std[%d] = %v, want clamp to 1", j, m.Std[j])
		}
	}
	probe := append([]float64(nil), x.Row(0)...)
	probe[0] = 1e9
	probe[4] = -1e9
	if p := m.Predict(probe); math.IsNaN(p) || math.IsInf(p, 0) {
		t.Errorf("perturbed constant columns produced non-finite prediction %v", p)
	}
}
