package tabnet

import (
	"fmt"
	"math"

	"github.com/hpc-repro/aiio/internal/linalg"
)

// DefaultWarmDriftTol is the input-drift score above which warm starting is
// rejected: an average standardized mean shift of one sigma across features
// (or on the target) means the frozen standardizer — and the attention and
// transformer weights trained against it — no longer describe the data.
const DefaultWarmDriftTol = 1.0

// CanWarmStart reports whether prev can seed a warm-started fit of cfg on
// x/y, and if not, why: the architecture (steps and widths) must match, the
// feature schema must match prev's standardizer, and the new data must not
// have drifted past the tolerance.
func CanWarmStart(prev *Model, cfg Config, x *linalg.Matrix, y []float64) (bool, string) {
	if prev == nil {
		return false, "no previous model"
	}
	def := DefaultConfig()
	want, have := cfg, prev.Config
	if want.Steps <= 0 {
		want.Steps = def.Steps
	}
	if want.DecisionDim <= 0 {
		want.DecisionDim = def.DecisionDim
	}
	if want.AttentionDim <= 0 {
		want.AttentionDim = def.AttentionDim
	}
	if want.Steps != have.Steps {
		return false, fmt.Sprintf("architecture changed: %d steps vs %d", want.Steps, have.Steps)
	}
	if want.DecisionDim != have.DecisionDim || want.AttentionDim != have.AttentionDim {
		return false, fmt.Sprintf("architecture changed: dims %d/%d vs %d/%d",
			want.DecisionDim, want.AttentionDim, have.DecisionDim, have.AttentionDim)
	}
	if x.Cols != len(prev.Mean) {
		return false, fmt.Sprintf("feature schema changed: %d columns vs %d", x.Cols, len(prev.Mean))
	}
	tol := cfg.WarmDriftTol
	if tol <= 0 {
		tol = DefaultWarmDriftTol
	}
	if d := prev.inputDrift(x, y); d > tol {
		return false, fmt.Sprintf("input drift %.3f exceeds tolerance %.3f", d, tol)
	}
	return true, ""
}

// inputDrift scores how far x/y moved from the distribution prev's
// standardizer was fit on: the mean over features of
// |mean_new - mean_prev| / std_prev (each clamped at 10 sigma so one wild
// counter cannot saturate the average alone), maxed with the same shift for
// the target.
func (prev *Model) inputDrift(x *linalg.Matrix, y []float64) float64 {
	if x.Rows == 0 || x.Cols == 0 {
		return 0
	}
	n := float64(x.Rows)
	colSum := make([]float64, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			colSum[j] += v
		}
	}
	fdrift := 0.0
	for j, s := range colSum {
		std := prev.Std[j]
		if !(std > 1e-12) || math.IsInf(std, 1) {
			std = 1
		}
		d := math.Abs(s/n-prev.Mean[j]) / std
		if d > 10 {
			d = 10
		}
		fdrift += d
	}
	fdrift /= float64(x.Cols)
	ystd := prev.YStd
	if !(ystd > 1e-12) {
		ystd = 1
	}
	ydrift := math.Abs(linalg.Mean(y)-prev.YMean) / ystd
	if ydrift > 10 {
		ydrift = 10
	}
	return math.Max(fdrift, ydrift)
}
