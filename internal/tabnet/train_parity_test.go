package tabnet

import (
	"math"
	"testing"
)

// The kernelized training path (forwardTrain/backwardTrain) must track the
// scalar reference path (Config.ReferenceKernels) to FP-reassociation
// accuracy. Training draws no RNG inside the batch loop, so with the same
// seed both paths see the same shuffles; divergence is limited to rounding
// from the fused GLU polynomial exp, FMA products, and paired input-gradient
// accumulation, compounded through Adam. The documented training-parity
// tolerance is 1e-6 relative on predictions after a 5-epoch fit — the same
// contract BENCH_training.json records for the end-to-end diagnose parity.
const trainParityTol = 1e-6

func trainBothPaths(t *testing.T, cfg Config, epochs int) (fast, ref *Model) {
	t.Helper()
	x, y := synth(500, 8, 51)
	ex, ey := synth(120, 8, 52)
	cfg.Epochs = epochs
	cfg.EarlyStoppingRounds = 0

	cfg.ReferenceKernels = false
	fast, err := Train(cfg, x, y, ex, ey)
	if err != nil {
		t.Fatalf("fast train: %v", err)
	}
	cfg.ReferenceKernels = true
	ref, err = Train(cfg, x, y, ex, ey)
	if err != nil {
		t.Fatalf("reference train: %v", err)
	}
	return fast, ref
}

func TestTrainFastMatchesReference(t *testing.T) {
	cfg := smallConfig()
	fast, ref := trainBothPaths(t, cfg, 5)

	px, _ := synth(150, 8, 53)
	pf := fast.PredictBatch(px)
	pr := ref.PredictBatch(px)
	for i := range pf {
		rel := math.Abs(pf[i]-pr[i]) / math.Max(1, math.Abs(pr[i]))
		if rel > trainParityTol {
			t.Fatalf("prediction %d diverged: fast=%v ref=%v rel=%.3g (tol %g)",
				i, pf[i], pr[i], rel, trainParityTol)
		}
	}
	// The learned tensors themselves must agree too, not just their
	// composition into predictions.
	check := func(name string, a, b []float64) {
		t.Helper()
		for i := range a {
			if math.Abs(a[i]-b[i]) > trainParityTol*math.Max(1, math.Abs(b[i])) {
				t.Fatalf("%s[%d] diverged: fast=%v ref=%v", name, i, a[i], b[i])
			}
		}
	}
	check("Shared.W", fast.Shared.W, ref.Shared.W)
	check("Out.W", fast.Out.W, ref.Out.W)
	for s := range fast.StepFC {
		check("StepFC.W", fast.StepFC[s].W, ref.StepFC[s].W)
		check("AttFC.W", fast.AttFC[s].W, ref.AttFC[s].W)
	}
}

func TestTrainFastConvergesLikeReference(t *testing.T) {
	// Over a realistic budget the FP drift makes elementwise comparison
	// meaningless (a single sparsemax support flip cascades), but both
	// paths must land at the same quality.
	cfg := smallConfig()
	cfg.Epochs = 30
	x, y := synth(800, 8, 54)
	ex, ey := synth(200, 8, 55)
	fast, err := Train(cfg, x, y, ex, ey)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ReferenceKernels = true
	ref, err := Train(cfg, x, y, ex, ey)
	if err != nil {
		t.Fatal(err)
	}
	ef := rmseOf(fast.PredictBatch(ex), ey)
	er := rmseOf(ref.PredictBatch(ex), ey)
	if ef > er*1.25+0.05 {
		t.Fatalf("fast path converged worse: fast RMSE %v vs reference %v", ef, er)
	}
}
