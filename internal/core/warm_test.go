package core

import (
	"context"
	"math"
	"testing"

	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/joblog"
	"github.com/hpc-repro/aiio/internal/logdb"
	"github.com/hpc-repro/aiio/internal/mlp"
	"github.com/hpc-repro/aiio/internal/tabnet"
)

// TestEnsembleWarmStartHoldsQualityOnReducedBudget trains a warm ensemble
// on a fresh window from the same workload distribution, on 30% of the cold
// budget, and requires every model to (a) actually warm start and (b) stay
// within a modest margin of its cold counterpart's eval RMSE.
func TestEnsembleWarmStartHoldsQualityOnReducedBudget(t *testing.T) {
	_, prev, coldReport := fixture(t)

	ds := logdb.Generate(logdb.GenConfig{Jobs: 900, Seed: 23})
	frame := features.Build(ds)
	opts := DefaultTrainOptions()
	opts.Fast = true
	opts.WarmStart = true
	opts.WarmFrom = prev
	_, warmReport, err := TrainEnsemble(frame, opts)
	if err != nil {
		t.Fatal(err)
	}
	cold := map[string]float64{}
	for _, r := range coldReport.Models {
		cold[r.Name] = r.PredictionRMSE
	}
	for _, r := range warmReport.Models {
		if !r.WarmStart {
			t.Errorf("model %s did not warm start (fallback: %q)", r.Name, r.WarmFallback)
			continue
		}
		// Different eval split than the cold report's, so the comparison is
		// a sanity band, not an exact improvement claim; the tight claims
		// live in the per-family warm tests.
		if r.PredictionRMSE > cold[r.Name]*1.5+0.1 {
			t.Errorf("model %s warm RMSE %.4f far above cold %.4f", r.Name, r.PredictionRMSE, cold[r.Name])
		}
	}
}

// TestEnsembleWarmStartDriftFallsBackCold rescales every feature so each
// family's drift gate (standardizer drift for the nets, bin-edge drift for
// the trees) must refuse the seed and fall back to a cold fit.
func TestEnsembleWarmStartDriftFallsBackCold(t *testing.T) {
	frame, prev, _ := fixture(t)

	shifted := &features.Frame{X: frame.X.Clone(), Y: frame.Y, Records: frame.Records}
	for i := range shifted.X.Data {
		shifted.X.Data[i] = shifted.X.Data[i]*1e3 + 1e6
	}
	opts := DefaultTrainOptions()
	opts.Fast = true
	opts.WarmStart = true
	opts.WarmFrom = prev
	opts.Models = []string{NameXGBoost, NameMLP, NameTabNet}
	_, report, err := TrainEnsemble(shifted, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range report.Models {
		if r.WarmStart {
			t.Errorf("model %s warm started on drifted features", r.Name)
		}
		if r.WarmFallback == "" {
			t.Errorf("model %s fell back without a recorded reason", r.Name)
		}
	}
}

// TestRunIncrementalWarmStartsFromStore runs two retrain cycles with warm
// starting enabled: the first has no prior generation (cold), the second
// must seed from the generation the first committed.
func TestRunIncrementalWarmStartsFromStore(t *testing.T) {
	jl, err := joblog.Open(t.TempDir(), joblog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	store := OpenStore(t.TempDir())
	opts := fastIncOpts()
	opts.Train.WarmStart = true
	// Enough volume per cycle that the per-feature quantile edges are
	// stable estimates; with the tiny default windows the bin structure is
	// sampling noise and the drift gate correctly refuses to warm start.
	opts.Window = 300

	fillLog(t, jl, 0, 300)
	rep1, err := RunIncremental(context.Background(), jl, store, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Train.Models[0].WarmStart {
		t.Error("first cycle warm started with no prior generation")
	}

	fillLog(t, jl, 300, 600)
	rep2, err := RunIncremental(context.Background(), jl, store, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Train.Models[0].WarmStart {
		t.Errorf("second cycle did not warm start from generation %d (fallback: %q)",
			rep1.Generation, rep2.Train.Models[0].WarmFallback)
	}
}

// diagParityTol is the end-to-end tolerance between ensembles trained by
// the kernelized and reference training paths: the training-time parity
// (1e-6 on predictions, see the per-family train_parity tests) composes
// with SHAP's masked re-evaluations, so merged diagnosis outputs are
// compared at 1e-4 relative.
const diagParityTol = 1e-4

// TestDiagnoseParityReferenceKernels is the end-to-end guard: two ensembles
// trained identically except for Config.ReferenceKernels must produce the
// same diagnosis (predictions and per-counter contributions) for the same
// job, within diagParityTol.
func TestDiagnoseParityReferenceKernels(t *testing.T) {
	frame, _, _ := fixture(t)
	train, eval := frame.Split(1, 0.5)

	mk := func(ref bool) *Ensemble {
		mcfg := mlp.DefaultConfig()
		mcfg.Hidden = []int{45, 24, 12}
		mcfg.Epochs = 8
		mcfg.EarlyStoppingRounds = 0
		mcfg.Seed = 1
		mcfg.ReferenceKernels = ref
		mm, err := mlp.Train(mcfg, train.X, train.Y, eval.X, eval.Y)
		if err != nil {
			t.Fatal(err)
		}
		tcfg := tabnet.DefaultConfig()
		tcfg.Epochs = 5
		tcfg.EarlyStoppingRounds = 0
		tcfg.Seed = 1
		tcfg.ReferenceKernels = ref
		tm, err := tabnet.Train(tcfg, train.X, train.Y, eval.X, eval.Y)
		if err != nil {
			t.Fatal(err)
		}
		return &Ensemble{Models: []Model{&mlpModel{m: mm}, &tabnetModel{m: tm}}}
	}
	fast, ref := mk(false), mk(true)

	rec := slowJob(t)
	df, err := fast.Diagnose(rec, fastDiagOpts())
	if err != nil {
		t.Fatal(err)
	}
	dr, err := ref.Diagnose(rec, fastDiagOpts())
	if err != nil {
		t.Fatal(err)
	}
	close := func(what string, a, b float64) {
		t.Helper()
		if math.Abs(a-b) > diagParityTol*math.Max(1, math.Abs(b)) {
			t.Errorf("%s diverged: fast=%v ref=%v", what, a, b)
		}
	}
	for i := range dr.PerModel {
		pf, pr := df.PerModel[i], dr.PerModel[i]
		close(pr.Name+" prediction", pf.Predicted, pr.Predicted)
		for j := range pr.Contributions {
			close(pr.Name+" contribution", pf.Contributions[j], pr.Contributions[j])
		}
	}
	close("closest prediction", df.Closest.Predicted, dr.Closest.Predicted)
	close("average prediction", df.Average.Predicted, dr.Average.Predicted)
}
