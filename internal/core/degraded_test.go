package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/linalg"
)

// panicModel wraps a real model and panics on every prediction — the
// minimal in-package stand-in for the internal/faults injectors (which
// cannot be imported here without a cycle).
type panicModel struct{ Model }

func (p panicModel) Predict(x []float64) float64             { panic("injected model failure") }
func (p panicModel) PredictBatch(x *linalg.Matrix) []float64 { panic("injected model failure") }

// nanModel wraps a real model and returns NaN from every prediction.
type nanModel struct{ Model }

func (n nanModel) Predict(x []float64) float64 { return math.NaN() }
func (n nanModel) PredictBatch(x *linalg.Matrix) []float64 {
	out := make([]float64, x.Rows)
	for i := range out {
		out[i] = math.NaN()
	}
	return out
}

func TestDiagnosePanickingModelDegrades(t *testing.T) {
	_, ens, _ := fixture(t)
	rec := slowJob(t)
	opts := fastDiagOpts()

	const broken = 1 // lightgbm
	faulty := &Ensemble{Models: append([]Model(nil), ens.Models...)}
	faulty.Models[broken] = panicModel{ens.Models[broken]}

	d, err := faulty.Diagnose(rec, opts)
	if err != nil {
		t.Fatalf("diagnosis with one panicking model must degrade, got error: %v", err)
	}
	if !d.Degraded {
		t.Error("Degraded = false with a panicking model")
	}
	if !d.PerModel[broken].Failed() || !strings.Contains(d.PerModel[broken].Err, "panic") {
		t.Errorf("PerModel[%d].Err = %q, want a recovered panic", broken, d.PerModel[broken].Err)
	}
	if d.Weights[broken] != 0 {
		t.Errorf("failed model weight = %v, want 0", d.Weights[broken])
	}
	if got := d.SkippedModels(); len(got) != 1 || got[0] != ens.Models[broken].Name() {
		t.Errorf("SkippedModels() = %v", got)
	}
	if d.ClosestIndex == broken {
		t.Error("closest model is the failed model")
	}

	// The degraded merge must equal the Eq. 6/7 merge of the surviving
	// subset, bitwise: same models, same seeds, same reduction order.
	surviving := &Ensemble{}
	for i, m := range ens.Models {
		if i != broken {
			surviving.Models = append(surviving.Models, m)
		}
	}
	want, err := surviving.Diagnose(rec, opts)
	if err != nil {
		t.Fatalf("surviving-subset diagnosis: %v", err)
	}
	if d.Average.Predicted != want.Average.Predicted || d.Average.Base != want.Average.Base {
		t.Errorf("degraded Average (%v, %v) != surviving-subset Average (%v, %v)",
			d.Average.Predicted, d.Average.Base, want.Average.Predicted, want.Average.Base)
	}
	for j := range d.Average.Contributions {
		if d.Average.Contributions[j] != want.Average.Contributions[j] {
			t.Fatalf("degraded Average contribution %d differs: %v vs %v",
				j, d.Average.Contributions[j], want.Average.Contributions[j])
		}
	}
	if d.Closest.Predicted != want.Closest.Predicted {
		t.Errorf("degraded Closest differs from surviving-subset Closest")
	}
}

func TestDiagnoseDegradedSequentialParallelIdentical(t *testing.T) {
	_, ens, _ := fixture(t)
	rec := slowJob(t)
	opts := fastDiagOpts()

	faulty := &Ensemble{Models: append([]Model(nil), ens.Models...)}
	faulty.Models[2] = panicModel{ens.Models[2]}

	opts.Parallelism = 1
	seq, err := faulty.Diagnose(rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 8
	par, err := faulty.Diagnose(rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Degraded != par.Degraded || seq.ClosestIndex != par.ClosestIndex {
		t.Fatal("degraded flags/closest differ between sequential and parallel")
	}
	for i := range seq.PerModel {
		if seq.PerModel[i].Err != par.PerModel[i].Err {
			t.Fatalf("model %d Err differs: %q vs %q", i, seq.PerModel[i].Err, par.PerModel[i].Err)
		}
		if seq.PerModel[i].Predicted != par.PerModel[i].Predicted {
			t.Fatalf("model %d prediction differs", i)
		}
	}
	for j := range seq.Average.Contributions {
		if seq.Average.Contributions[j] != par.Average.Contributions[j] {
			t.Fatalf("Average contribution %d differs between pool sizes", j)
		}
	}
}

func TestDiagnoseAllModelsFailedErrors(t *testing.T) {
	_, ens, _ := fixture(t)
	bad := &Ensemble{}
	for _, m := range ens.Models {
		bad.Models = append(bad.Models, panicModel{m})
	}
	if _, err := bad.Diagnose(slowJob(t), fastDiagOpts()); err == nil {
		t.Fatal("diagnosis with every model panicking must error, not fabricate output")
	} else if !strings.Contains(err.Error(), "all") {
		t.Errorf("error should say all models failed: %v", err)
	}
}

func TestDiagnoseNaNModelSkipped(t *testing.T) {
	_, ens, _ := fixture(t)
	faulty := &Ensemble{Models: append([]Model(nil), ens.Models...)}
	faulty.Models[3] = nanModel{ens.Models[3]}

	d, err := faulty.Diagnose(slowJob(t), fastDiagOpts())
	if err != nil {
		t.Fatalf("NaN model must be skipped, got error: %v", err)
	}
	if !d.Degraded || !d.PerModel[3].Failed() {
		t.Errorf("NaN-emitting model not marked failed: degraded=%v err=%q", d.Degraded, d.PerModel[3].Err)
	}
	if !strings.Contains(d.PerModel[3].Err, "non-finite") {
		t.Errorf("Err = %q, want non-finite mention", d.PerModel[3].Err)
	}
	if math.IsNaN(d.Average.Predicted) {
		t.Error("NaN leaked into the merged prediction")
	}
	for _, w := range d.Weights {
		if math.IsNaN(w) {
			t.Fatal("NaN leaked into the Eq. 8 weights")
		}
	}
}

func TestDiagnoseBatchContextCancellation(t *testing.T) {
	_, ens, _ := fixture(t)
	rec := slowJob(t)
	opts := fastDiagOpts()
	opts.Parallelism = 2

	recs := make([]*darshan.Record, 48)
	for i := range recs {
		recs[i] = rec
	}

	// Uncancelled baseline, for a machine-relative deadline.
	start := time.Now()
	if _, err := ens.DiagnoseBatchContext(context.Background(), recs, opts); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	// A deadline a tenth of the way in must abort the batch well before the
	// queue drains and surface ctx's error.
	ctx, cancel := context.WithTimeout(context.Background(), full/10)
	defer cancel()
	start = time.Now()
	_, err := ens.DiagnoseBatchContext(ctx, recs, opts)
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("batch finished inside a tenth of its own baseline; timing assertion not meaningful")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > full/2+50*time.Millisecond {
		t.Errorf("cancelled batch took %v, more than half the full drain time %v", elapsed, full)
	}

	// Pre-cancelled context: nothing runs.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := ens.DiagnoseBatchContext(pre, recs, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled batch err = %v", err)
	}
}

func TestDiagnoseContextPreCancelled(t *testing.T) {
	_, ens, _ := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ens.DiagnoseContext(ctx, slowJob(t), fastDiagOpts()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTrainEnsembleContextCancelled(t *testing.T) {
	frame, _, _ := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := TrainEnsembleContext(ctx, frame, DefaultTrainOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTrainRefusesCorruptFrame(t *testing.T) {
	frame, _, _ := fixture(t)
	corrupt := frame.Subset([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	corrupt.X.Set(3, 7, math.NaN())
	_, _, err := TrainEnsemble(corrupt, DefaultTrainOptions())
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("training on a NaN feature must be refused, got %v", err)
	}
}
