package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
)

// Incremental retraining: drain the joblog's retrain backlog in
// mini-batches, blend it with a bounded sample of already-incorporated
// history, train a fresh ensemble, and commit it as a new store generation.
// The joblog cursor advances only after the generation is durably saved, so
// a crash anywhere in the pipeline re-delivers the same backlog on the next
// run — the model store's own generation history provides rollback.

// ErrNoNewJobs reports that the backlog is below the MinNew threshold.
var ErrNoNewJobs = errors.New("core: not enough new jobs to retrain")

// JobBacklog is the slice of the durable job log that incremental retraining
// consumes; *joblog.Store satisfies it. Keeping it an interface here keeps
// core free of a joblog dependency (joblog's tests lean on faults, which
// leans on core — a concrete type would close that loop into a cycle).
type JobBacklog interface {
	// Pending counts records past the retrain cursor.
	Pending() int
	// Cursor returns the highest sequence already incorporated.
	Cursor() uint64
	// Scan yields every live record in sequence order.
	Scan(yield func(seq uint64, rec *darshan.Record) bool) error
	// DrainPending yields the backlog in batches with the max sequence seen.
	DrainPending(batch int, fn func(recs []*darshan.Record, maxSeq uint64) error) error
	// AdvanceCursor durably marks everything up to seq as incorporated.
	AdvanceCursor(seq uint64) error
}

// IncrementalOptions configures RunIncremental.
type IncrementalOptions struct {
	// MiniBatch is the DrainPending batch size (default 512). It bounds the
	// per-callback allocation, not the total: every pending job is drained.
	MiniBatch int
	// Window bounds how many already-incorporated records are blended into
	// the training set (default 20000, reservoir-sampled). The bound keeps
	// retraining memory flat as the log grows.
	Window int
	// MinNew is the minimum backlog size before retraining is worthwhile
	// (default 1).
	MinNew int
	// Holdout, when > 0 with a Gate wired in, is the canary holdout budget:
	// up to half is reservoir-sampled from incorporated history (records
	// with seq ≡ 0 mod 3, which are excluded from the training window so
	// the split is disjoint by construction) and up to half is diverted
	// from the fresh backlog before training. The candidate never trains
	// on a holdout record, so a retrain that memorized poisoned labels has
	// nowhere to hide from the gate, while the history half keeps a
	// candidate from passing by simply overfitting the newest slice.
	Holdout int
	// Gate, when non-nil, shadow-evaluates the candidate ensemble against
	// the held-out slice after validation and before anything durable
	// happens. A nil error admits the candidate and the verdict is
	// recorded in the generation manifest; an error blocks the commit — no
	// generation is written, and the run returns a *CanaryBlockedError.
	Gate func(candidate *Ensemble, holdout []*darshan.Record) (*CanaryRecord, error)
	// Reference, when non-nil, serializes a drift-reference snapshot of
	// the training distribution (typically drift.BuildReference) that is
	// committed alongside the generation, so the drift monitor can re-arm
	// against exactly this model's world after a restart. The admitting
	// verdict (nil when no Gate ran) is passed through for its baseline
	// error.
	Reference func(training []*darshan.Record, verdict *CanaryRecord) []byte
	// Train configures the ensemble fit itself.
	Train TrainOptions
}

// CanaryBlockedError reports that the canary gate refused a retrained
// candidate: the serving generation stays, nothing was committed, and the
// backlog that trained the candidate is parked behind the cursor (so a
// single-flight auto-retrain loop does not re-train the same rejected
// batch forever; the records stay in the log, reachable through the
// history window of later cycles).
type CanaryBlockedError struct {
	// Verdict carries the losing numbers for healthz and the operator.
	Verdict *CanaryRecord
	// Err is the gate's explanation.
	Err error
}

func (e *CanaryBlockedError) Error() string {
	return fmt.Sprintf("core: canary gate blocked promotion: %v", e.Err)
}

func (e *CanaryBlockedError) Unwrap() error { return e.Err }

// holdoutEligible marks the deterministic third of history seqs that may
// only serve as canary holdout, never training window.
func holdoutEligible(seq uint64) bool { return seq%3 == 0 }

// IncrementalReport summarizes one incremental retraining run.
type IncrementalReport struct {
	// NewRecords is the number of backlog records drained past the cursor.
	NewRecords int
	// WindowRecords is the number of historical records blended in.
	WindowRecords int
	// HoldoutRecords is the number of records held out for the canary gate
	// (never trained on).
	HoldoutRecords int
	// Generation is the committed model-store generation.
	Generation uint64
	// MaxSeq is the cursor position after the run.
	MaxSeq uint64
	// Train is the underlying training report.
	Train *TrainReport
	// Canary is the gate verdict that admitted this generation (nil when
	// no Gate was configured).
	Canary *CanaryRecord
}

// ValidateEnsemble probes every model with a synthetic feature vector and
// rejects an ensemble whose prediction panics or is non-finite. It is the
// same gate the web service applies to uploaded models before a hot swap;
// incremental retraining applies it before committing a generation so a
// degenerate fit can never become the recovery point.
func ValidateEnsemble(e *Ensemble) error {
	if e == nil || len(e.Models) == 0 {
		return fmt.Errorf("core: empty ensemble")
	}
	probe := make([]float64, darshan.NumCounters)
	for j := range probe {
		probe[j] = float64(j%7) + 0.5
	}
	for _, m := range e.Models {
		if err := probeOne(m, probe); err != nil {
			return fmt.Errorf("core: model %s failed validation: %w", m.Name(), err)
		}
	}
	return nil
}

func probeOne(m Model, probe []float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("probe prediction panicked (feature dimension mismatch with the %d-counter schema?): %v",
				darshan.NumCounters, r)
		}
	}()
	v := m.Predict(probe)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("probe prediction is %v", v)
	}
	return nil
}

// RunIncremental performs one retraining cycle against jl and store.
//
// Ordering is the durability argument: train → validate → Save (a complete
// new generation, committed through the store's atomic CURRENT flip) →
// AdvanceCursor. A crash before Save leaves the cursor untouched and the
// backlog intact; a crash between Save and AdvanceCursor re-trains the same
// jobs into one more generation — wasteful, never wrong, because ingest
// dedup means the log holds each job once regardless.
func RunIncremental(ctx context.Context, jl JobBacklog, store *Store, opts IncrementalOptions) (*IncrementalReport, error) {
	if opts.MiniBatch <= 0 {
		opts.MiniBatch = 512
	}
	if opts.Window <= 0 {
		opts.Window = 20000
	}
	if opts.MinNew <= 0 {
		opts.MinNew = 1
	}
	if jl.Pending() < opts.MinNew {
		return nil, ErrNoNewJobs
	}

	// Warm starting against the store: seed each model from the previous
	// generation so the reduced budget only has to absorb the new window.
	// A store with no loadable generation (first run, or every generation
	// corrupt) degrades to a cold start rather than failing the cycle.
	if opts.Train.WarmStart && opts.Train.WarmFrom == nil && store != nil {
		if prev, _, err := store.Load(); err == nil {
			opts.Train.WarmFrom = prev
		}
	}

	cursor := jl.Cursor()
	gated := opts.Gate != nil && opts.Holdout > 0
	histCap := (opts.Holdout + 1) / 2

	// Reservoir-sample the incorporated history into the window. The rng is
	// seeded from the training seed so a re-run after a crash draws the
	// same window and trains the same model. With a canary gate configured,
	// the holdout-eligible third of history feeds its own reservoir and
	// stays out of the window: the split is disjoint by construction, so
	// the candidate cannot train on a record it is judged against.
	rng := rand.New(rand.NewSource(opts.Train.Seed ^ int64(cursor)))
	window := make([]*darshan.Record, 0, opts.Window)
	var histHold []*darshan.Record
	seen, heldSeen := 0, 0
	if err := jl.Scan(func(seq uint64, rec *darshan.Record) bool {
		if seq > cursor {
			return true
		}
		if gated && holdoutEligible(seq) {
			heldSeen++
			if len(histHold) < histCap {
				histHold = append(histHold, rec)
			} else if k := rng.Intn(heldSeen); k < histCap {
				histHold[k] = rec
			}
			return true
		}
		seen++
		if len(window) < opts.Window {
			window = append(window, rec)
		} else if k := rng.Intn(seen); k < opts.Window {
			window[k] = rec
		}
		return true
	}); err != nil {
		return nil, fmt.Errorf("core: scan history: %w", err)
	}

	// Drain the backlog in mini-batches.
	var fresh []*darshan.Record
	var maxSeq uint64
	if err := jl.DrainPending(opts.MiniBatch, func(recs []*darshan.Record, hi uint64) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		fresh = append(fresh, recs...)
		if hi > maxSeq {
			maxSeq = hi
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("core: drain backlog: %w", err)
	}
	if len(fresh) < opts.MinNew {
		return nil, ErrNoNewJobs
	}

	// Divert the fresh half of the canary holdout before training sees the
	// backlog: an evenly-strided slice of the newest jobs, as long as
	// enough fresh records remain to make the retrain worthwhile.
	holdout := append([]*darshan.Record(nil), histHold...)
	if gated {
		freshCap := opts.Holdout - len(histHold)
		if freshCap > len(fresh)/2 {
			freshCap = len(fresh) / 2
		}
		if rest := len(fresh) - freshCap; rest < opts.MinNew {
			freshCap = len(fresh) - opts.MinNew
		}
		if freshCap > 0 {
			stride := len(fresh) / freshCap
			kept := fresh[:0]
			for i, rec := range fresh {
				if len(holdout)-len(histHold) < freshCap && i%stride == stride-1 {
					holdout = append(holdout, rec)
				} else {
					kept = append(kept, rec)
				}
			}
			fresh = kept
		}
	}

	ds := &darshan.Dataset{Records: make([]*darshan.Record, 0, len(window)+len(fresh))}
	ds.Records = append(ds.Records, window...)
	ds.Records = append(ds.Records, fresh...)

	ens, report, err := TrainEnsembleContext(ctx, features.Build(ds), opts.Train)
	if err != nil {
		return nil, fmt.Errorf("core: incremental train: %w", err)
	}
	if err := ValidateEnsemble(ens); err != nil {
		return nil, err
	}
	// The canary gate: shadow-evaluate the candidate on the held-out slice
	// before anything durable happens. A blocked candidate is never
	// written — the serving generation cannot be displaced by a retrain
	// that made things worse — and the backlog is parked behind the cursor
	// so the single-flight trigger does not loop on the same batch.
	var verdict *CanaryRecord
	if opts.Gate != nil {
		var gerr error
		verdict, gerr = opts.Gate(ens, holdout)
		if gerr != nil {
			if aerr := jl.AdvanceCursor(maxSeq); aerr != nil {
				return nil, fmt.Errorf("core: canary blocked (%v) and cursor advance failed: %w", gerr, aerr)
			}
			return nil, &CanaryBlockedError{Verdict: verdict, Err: gerr}
		}
	}
	var extra *GenerationExtra
	if verdict != nil || opts.Reference != nil {
		extra = &GenerationExtra{Canary: verdict}
		if opts.Reference != nil {
			extra.Reference = opts.Reference(ds.Records, verdict)
		}
	}
	gen, err := store.SaveDetailed(ens, extra)
	if err != nil {
		return nil, fmt.Errorf("core: commit generation: %w", err)
	}
	// Only now is the backlog truly incorporated.
	if err := jl.AdvanceCursor(maxSeq); err != nil {
		return nil, fmt.Errorf("core: advance cursor (generation %d is committed; the next run re-trains the same jobs): %w", gen, err)
	}
	return &IncrementalReport{
		NewRecords:     len(fresh),
		WindowRecords:  len(window),
		HoldoutRecords: len(holdout),
		Generation:     gen,
		MaxSeq:         maxSeq,
		Train:          report,
		Canary:         verdict,
	}, nil
}
