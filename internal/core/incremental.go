package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
)

// Incremental retraining: drain the joblog's retrain backlog in
// mini-batches, blend it with a bounded sample of already-incorporated
// history, train a fresh ensemble, and commit it as a new store generation.
// The joblog cursor advances only after the generation is durably saved, so
// a crash anywhere in the pipeline re-delivers the same backlog on the next
// run — the model store's own generation history provides rollback.

// ErrNoNewJobs reports that the backlog is below the MinNew threshold.
var ErrNoNewJobs = errors.New("core: not enough new jobs to retrain")

// JobBacklog is the slice of the durable job log that incremental retraining
// consumes; *joblog.Store satisfies it. Keeping it an interface here keeps
// core free of a joblog dependency (joblog's tests lean on faults, which
// leans on core — a concrete type would close that loop into a cycle).
type JobBacklog interface {
	// Pending counts records past the retrain cursor.
	Pending() int
	// Cursor returns the highest sequence already incorporated.
	Cursor() uint64
	// Scan yields every live record in sequence order.
	Scan(yield func(seq uint64, rec *darshan.Record) bool) error
	// DrainPending yields the backlog in batches with the max sequence seen.
	DrainPending(batch int, fn func(recs []*darshan.Record, maxSeq uint64) error) error
	// AdvanceCursor durably marks everything up to seq as incorporated.
	AdvanceCursor(seq uint64) error
}

// IncrementalOptions configures RunIncremental.
type IncrementalOptions struct {
	// MiniBatch is the DrainPending batch size (default 512). It bounds the
	// per-callback allocation, not the total: every pending job is drained.
	MiniBatch int
	// Window bounds how many already-incorporated records are blended into
	// the training set (default 20000, reservoir-sampled). The bound keeps
	// retraining memory flat as the log grows.
	Window int
	// MinNew is the minimum backlog size before retraining is worthwhile
	// (default 1).
	MinNew int
	// Train configures the ensemble fit itself.
	Train TrainOptions
}

// IncrementalReport summarizes one incremental retraining run.
type IncrementalReport struct {
	// NewRecords is the number of backlog records drained past the cursor.
	NewRecords int
	// WindowRecords is the number of historical records blended in.
	WindowRecords int
	// Generation is the committed model-store generation.
	Generation uint64
	// MaxSeq is the cursor position after the run.
	MaxSeq uint64
	// Train is the underlying training report.
	Train *TrainReport
}

// ValidateEnsemble probes every model with a synthetic feature vector and
// rejects an ensemble whose prediction panics or is non-finite. It is the
// same gate the web service applies to uploaded models before a hot swap;
// incremental retraining applies it before committing a generation so a
// degenerate fit can never become the recovery point.
func ValidateEnsemble(e *Ensemble) error {
	if e == nil || len(e.Models) == 0 {
		return fmt.Errorf("core: empty ensemble")
	}
	probe := make([]float64, darshan.NumCounters)
	for j := range probe {
		probe[j] = float64(j%7) + 0.5
	}
	for _, m := range e.Models {
		if err := probeOne(m, probe); err != nil {
			return fmt.Errorf("core: model %s failed validation: %w", m.Name(), err)
		}
	}
	return nil
}

func probeOne(m Model, probe []float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("probe prediction panicked (feature dimension mismatch with the %d-counter schema?): %v",
				darshan.NumCounters, r)
		}
	}()
	v := m.Predict(probe)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("probe prediction is %v", v)
	}
	return nil
}

// RunIncremental performs one retraining cycle against jl and store.
//
// Ordering is the durability argument: train → validate → Save (a complete
// new generation, committed through the store's atomic CURRENT flip) →
// AdvanceCursor. A crash before Save leaves the cursor untouched and the
// backlog intact; a crash between Save and AdvanceCursor re-trains the same
// jobs into one more generation — wasteful, never wrong, because ingest
// dedup means the log holds each job once regardless.
func RunIncremental(ctx context.Context, jl JobBacklog, store *Store, opts IncrementalOptions) (*IncrementalReport, error) {
	if opts.MiniBatch <= 0 {
		opts.MiniBatch = 512
	}
	if opts.Window <= 0 {
		opts.Window = 20000
	}
	if opts.MinNew <= 0 {
		opts.MinNew = 1
	}
	if jl.Pending() < opts.MinNew {
		return nil, ErrNoNewJobs
	}

	// Warm starting against the store: seed each model from the previous
	// generation so the reduced budget only has to absorb the new window.
	// A store with no loadable generation (first run, or every generation
	// corrupt) degrades to a cold start rather than failing the cycle.
	if opts.Train.WarmStart && opts.Train.WarmFrom == nil && store != nil {
		if prev, _, err := store.Load(); err == nil {
			opts.Train.WarmFrom = prev
		}
	}

	cursor := jl.Cursor()

	// Reservoir-sample the incorporated history into the window. The rng is
	// seeded from the training seed so a re-run after a crash draws the
	// same window and trains the same model.
	rng := rand.New(rand.NewSource(opts.Train.Seed ^ int64(cursor)))
	window := make([]*darshan.Record, 0, opts.Window)
	seen := 0
	if err := jl.Scan(func(seq uint64, rec *darshan.Record) bool {
		if seq > cursor {
			return true
		}
		seen++
		if len(window) < opts.Window {
			window = append(window, rec)
		} else if k := rng.Intn(seen); k < opts.Window {
			window[k] = rec
		}
		return true
	}); err != nil {
		return nil, fmt.Errorf("core: scan history: %w", err)
	}

	// Drain the backlog in mini-batches.
	var fresh []*darshan.Record
	var maxSeq uint64
	if err := jl.DrainPending(opts.MiniBatch, func(recs []*darshan.Record, hi uint64) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		fresh = append(fresh, recs...)
		if hi > maxSeq {
			maxSeq = hi
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("core: drain backlog: %w", err)
	}
	if len(fresh) < opts.MinNew {
		return nil, ErrNoNewJobs
	}

	ds := &darshan.Dataset{Records: make([]*darshan.Record, 0, len(window)+len(fresh))}
	ds.Records = append(ds.Records, window...)
	ds.Records = append(ds.Records, fresh...)

	ens, report, err := TrainEnsembleContext(ctx, features.Build(ds), opts.Train)
	if err != nil {
		return nil, fmt.Errorf("core: incremental train: %w", err)
	}
	if err := ValidateEnsemble(ens); err != nil {
		return nil, err
	}
	gen, err := store.Save(ens)
	if err != nil {
		return nil, fmt.Errorf("core: commit generation: %w", err)
	}
	// Only now is the backlog truly incorporated.
	if err := jl.AdvanceCursor(maxSeq); err != nil {
		return nil, fmt.Errorf("core: advance cursor (generation %d is committed; the next run re-trains the same jobs): %w", gen, err)
	}
	return &IncrementalReport{
		NewRecords:    len(fresh),
		WindowRecords: len(window),
		Generation:    gen,
		MaxSeq:        maxSeq,
		Train:         report,
	}, nil
}
