package core

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
)

// The diagnosis-engine benchmarks measure the parallel speedup the engine
// is built for: run with
//
//	go test ./internal/core -bench BenchmarkDiagnose -benchtime 3x
//
// and compare the workers=1 row (sequential baseline) against workers=N.
// On a 4+-core machine the single-job diagnosis is expected to be >= 2x
// faster at workers=NumCPU than at workers=1 (five independent model
// explanations plus sharded coalition batches); a regression below that is
// a bug in the engine, not noise, because the work is identical bitwise.

// benchWorkerCounts are the pool sizes benchmarked: sequential baseline,
// a fixed mid point, and everything the machine has.
func benchWorkerCounts() []int {
	counts := []int{1, 2}
	if n := runtime.GOMAXPROCS(0); n > 2 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkDiagnoseSingleJob measures one job's full five-model diagnosis
// (the web service's hot path) at increasing pool sizes.
func BenchmarkDiagnoseSingleJob(b *testing.B) {
	_, ens, _ := fixture(b)
	rec := slowJob(b)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := fastDiagOpts()
			opts.Parallelism = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ens.Diagnose(rec, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDiagnoseSingleJobSampled forces the Kernel SHAP sampling
// estimator (the 4096-row WLS batch of Eq. 4) so the PredictBatch sharding
// inside the model backends is what dominates.
func BenchmarkDiagnoseSingleJobSampled(b *testing.B) {
	_, ens, _ := fixture(b)
	rec := slowJob(b)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := DefaultDiagnoseOptions()
			opts.SHAP.MaxExact = 1 // force the sampled estimator
			opts.Parallelism = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ens.Diagnose(rec, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDiagnoseBatch measures throughput over a batch of jobs, the
// DiagnoseBatch path the experiments and the batch endpoint use.
func BenchmarkDiagnoseBatch(b *testing.B) {
	frame, ens, _ := fixture(b)
	n := 16
	if n > frame.Len() {
		n = frame.Len()
	}
	recs := make([]*darshan.Record, n)
	copy(recs, frame.Records[:n])
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := fastDiagOpts()
			opts.Parallelism = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ens.DiagnoseBatch(recs, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(recs)), "jobs/op")
		})
	}
}

// BenchmarkPredictBatchPerFamily isolates each model family's flattened
// batch-inference path over the full fixture frame, outside the SHAP loop.
// This is the kernel-level view behind BENCH_inference.json: gbdt rides the
// flat SoA tree walk, mlp and tabnet the paired GemvT2/fused-GLU pass.
func BenchmarkPredictBatchPerFamily(b *testing.B) {
	frame, ens, _ := fixture(b)
	for _, m := range ens.Models {
		b.Run(m.Name(), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := m.PredictBatch(frame.X)
				if len(out) != frame.X.Rows {
					b.Fatalf("got %d predictions", len(out))
				}
			}
			b.ReportMetric(float64(frame.X.Rows), "rows/op")
		})
	}
}

// BenchmarkPredictSingleRowPerFamily measures the pooled single-row Predict
// used by the web service's point queries (cached scratch, no per-call
// standardization buffers).
func BenchmarkPredictSingleRowPerFamily(b *testing.B) {
	frame, ens, _ := fixture(b)
	row := frame.X.Row(0)
	for _, m := range ens.Models {
		b.Run(m.Name(), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = m.Predict(row)
			}
		})
	}
}
