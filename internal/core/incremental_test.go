package core

import (
	"context"
	"errors"
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/joblog"
	"github.com/hpc-repro/aiio/internal/logdb"
)

// fastIncOpts trains a single fast GBDT so each retrain cycle stays cheap.
func fastIncOpts() IncrementalOptions {
	return IncrementalOptions{
		MiniBatch: 8,
		Window:    40,
		MinNew:    5,
		Train:     TrainOptions{Models: []string{NameXGBoost}, Fast: true, Seed: 1},
	}
}

// fillLog appends jobs [lo, hi) from the synthetic generator.
func fillLog(t *testing.T, jl *joblog.Store, lo, hi int) {
	t.Helper()
	cfg := logdb.DefaultGenConfig()
	cfg.Jobs = hi
	i := 0
	logdb.GenerateStream(cfg, func(rec *darshan.Record) bool {
		if i >= lo {
			if _, err := jl.Append(rec); err != nil {
				t.Fatalf("append job %d: %v", i, err)
			}
		}
		i++
		return true
	})
	if err := jl.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestRunIncrementalCommitsGenerationAndAdvancesCursor(t *testing.T) {
	jl, err := joblog.Open(t.TempDir(), joblog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store := OpenStore(t.TempDir())
	fillLog(t, jl, 0, 60)

	rep, err := RunIncremental(context.Background(), jl, store, fastIncOpts())
	if err != nil {
		t.Fatalf("first incremental run: %v", err)
	}
	if rep.NewRecords != 60 || rep.Generation == 0 {
		t.Fatalf("report: %+v", rep)
	}
	if jl.Pending() != 0 {
		t.Fatalf("backlog not drained: %d pending", jl.Pending())
	}
	// The committed generation must load through the store's normal path.
	ens, _, err := store.Load()
	if err != nil {
		t.Fatalf("load committed generation: %v", err)
	}
	if err := ValidateEnsemble(ens); err != nil {
		t.Fatalf("committed ensemble fails validation: %v", err)
	}

	// No new jobs → ErrNoNewJobs, cursor untouched.
	if _, err := RunIncremental(context.Background(), jl, store, fastIncOpts()); !errors.Is(err, ErrNoNewJobs) {
		t.Fatalf("empty backlog: err = %v, want ErrNoNewJobs", err)
	}

	// A second batch produces a second generation and the window blends in
	// history without exceeding its bound.
	fillLog(t, jl, 60, 80)
	rep2, err := RunIncremental(context.Background(), jl, store, fastIncOpts())
	if err != nil {
		t.Fatalf("second incremental run: %v", err)
	}
	if rep2.Generation <= rep.Generation {
		t.Fatalf("generation did not advance: %d then %d", rep.Generation, rep2.Generation)
	}
	if rep2.NewRecords != 20 {
		t.Fatalf("second run drained %d new records, want 20", rep2.NewRecords)
	}
	if rep2.WindowRecords != 40 {
		t.Fatalf("window = %d records, want the 40-record bound", rep2.WindowRecords)
	}
	gens, err := store.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) < 2 {
		t.Fatalf("store holds %d generations, want ≥ 2 (rollback history)", len(gens))
	}
}

func TestRunIncrementalFailedTrainLeavesCursor(t *testing.T) {
	jl, err := joblog.Open(t.TempDir(), joblog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store := OpenStore(t.TempDir())
	fillLog(t, jl, 0, 8) // below TrainEnsemble's 10-record floor

	opts := fastIncOpts()
	if _, err := RunIncremental(context.Background(), jl, store, opts); err == nil {
		t.Fatal("training on 8 records should fail")
	}
	if jl.Pending() != 8 {
		t.Fatalf("failed run moved the cursor: %d pending, want 8", jl.Pending())
	}
	// Refill past the floor: the same backlog re-delivers and succeeds.
	fillLog(t, jl, 8, 20)
	rep, err := RunIncremental(context.Background(), jl, store, opts)
	if err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if rep.NewRecords != 20 {
		t.Fatalf("retry drained %d records, want the full 20", rep.NewRecords)
	}
}

func TestRunIncrementalCancelledContext(t *testing.T) {
	jl, err := joblog.Open(t.TempDir(), joblog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store := OpenStore(t.TempDir())
	fillLog(t, jl, 0, 30)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunIncremental(ctx, jl, store, fastIncOpts()); err == nil {
		t.Fatal("cancelled context should abort the run")
	}
	if jl.Pending() != 30 {
		t.Fatalf("cancelled run moved the cursor: %d pending, want 30", jl.Pending())
	}
}
