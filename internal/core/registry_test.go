package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hpc-repro/aiio/internal/gbdt"
)

// saveGenerations saves ens n times, returning the store (each save is a
// new committed generation of the same model set).
func saveGenerations(t *testing.T, ens *Ensemble, n int) *Store {
	t.Helper()
	st := OpenStore(t.TempDir())
	for i := 0; i < n; i++ {
		if _, err := st.Save(ens); err != nil {
			t.Fatalf("save generation %d: %v", i+1, err)
		}
	}
	return st
}

func TestStoreSaveBumpsGeneration(t *testing.T) {
	_, ens, _ := fixture(t)
	st := saveGenerations(t, ens, 3)
	gens, err := st.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 || gens[0] != 1 || gens[2] != 3 {
		t.Fatalf("generations = %v, want [1 2 3]", gens)
	}
	e, rep, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != 3 || rep.FellBack || rep.Legacy {
		t.Fatalf("load report = %+v, want generation 3, no fallback", rep)
	}
	if len(e.Models) != len(ens.Models) {
		t.Fatalf("loaded %d models, want %d", len(e.Models), len(ens.Models))
	}
}

// TestStoreCorruptionFallsBack is the corruption drill of the issue's
// acceptance criteria: flip one byte of any saved model file and the
// loader must reject that generation and serve the previous one — never
// a panic or a silently wrong model.
func TestStoreCorruptionFallsBack(t *testing.T) {
	_, ens, _ := fixture(t)
	st := saveGenerations(t, ens, 2)

	// Flip one byte in every model file of generation 2, one at a time —
	// any single corruption must be caught.
	genDir := filepath.Join(st.Dir(), "generations", "000002")
	entries, err := os.ReadDir(genDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if ent.Name() == "manifest.json" {
			continue
		}
		path := filepath.Join(genDir, ent.Name())
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mut := append([]byte(nil), orig...)
		mut[len(mut)/2] ^= 0x01
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		e, rep, err := st.Load()
		if err != nil {
			t.Fatalf("load with corrupt %s: %v", ent.Name(), err)
		}
		if rep.Generation != 1 || !rep.FellBack {
			t.Fatalf("corrupt %s: report = %+v, want fallback to generation 1", ent.Name(), rep)
		}
		if len(rep.Rejected) != 1 || rep.Rejected[0].Generation != 2 ||
			!strings.Contains(rep.Rejected[0].Err, "checksum mismatch") {
			t.Fatalf("corrupt %s: rejected = %+v, want gen-2 checksum mismatch", ent.Name(), rep.Rejected)
		}
		if len(e.Models) != len(ens.Models) {
			t.Fatalf("fallback ensemble has %d models", len(e.Models))
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreAllGenerationsCorruptIsAnError(t *testing.T) {
	_, ens, _ := fixture(t)
	st := saveGenerations(t, ens, 2)
	for _, gen := range []string{"000001", "000002"} {
		path := filepath.Join(st.Dir(), "generations", gen, ens.Models[0].Name()+".gob")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[0] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := st.Load(); err == nil {
		t.Fatal("Load succeeded with every generation corrupt")
	} else if !strings.Contains(err.Error(), "no loadable generation") {
		t.Fatalf("err = %v, want 'no loadable generation'", err)
	}
}

func TestStoreMissingCurrentAdoptsNewestGeneration(t *testing.T) {
	_, ens, _ := fixture(t)
	st := saveGenerations(t, ens, 2)
	// Crash window: generation committed but CURRENT never flipped.
	if err := os.Remove(filepath.Join(st.Dir(), "CURRENT")); err != nil {
		t.Fatal(err)
	}
	_, rep, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != 2 {
		t.Fatalf("generation = %d without CURRENT, want newest (2)", rep.Generation)
	}
}

func TestStoreStaleCurrentPinsGeneration(t *testing.T) {
	_, ens, _ := fixture(t)
	st := saveGenerations(t, ens, 3)
	// An operator rollback: CURRENT points at an older, intact generation.
	if err := os.WriteFile(filepath.Join(st.Dir(), "CURRENT"), []byte("2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != 2 || rep.FellBack {
		t.Fatalf("report = %+v, want pinned generation 2", rep)
	}
}

func TestStoreSweepsCrashedTempDirs(t *testing.T) {
	_, ens, _ := fixture(t)
	st := OpenStore(t.TempDir())
	if _, err := st.Save(ens); err != nil {
		t.Fatal(err)
	}
	// Simulate a crashed save's debris.
	debris := filepath.Join(st.Dir(), "generations", ".tmp-000002")
	if err := os.MkdirAll(debris, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(debris, "partial.gob"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save(ens); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Fatalf("crashed temp dir survived the next save (stat err = %v)", err)
	}
	gens, _ := st.Generations()
	if len(gens) != 2 {
		t.Fatalf("generations = %v, want [1 2]", gens)
	}
}

func TestStoreCrashMidSaveRecoversPreviousGeneration(t *testing.T) {
	_, ens, _ := fixture(t)
	st := saveGenerations(t, ens, 1)
	injected := errors.New("injected crash")
	// Crash at every step of the save in turn; after each aborted save the
	// store must still load generation 1 cleanly.
	steps := []string{StepModelWrite, StepModelSync, StepManifestWrite, StepGenCommit, StepCurrentCommit}
	for _, step := range steps {
		crashAt := step
		st.SetSaveHook(func(s, path string) error {
			if s == crashAt {
				return injected
			}
			return nil
		})
		if _, err := st.Save(ens); !errors.Is(err, injected) {
			t.Fatalf("save with crash at %s: err = %v, want injected crash", crashAt, err)
		}
		st.SetSaveHook(nil)
		_, rep, err := st.Load()
		if err != nil {
			t.Fatalf("load after crash at %s: %v", crashAt, err)
		}
		// A crash after the gen-commit rename may legitimately serve the
		// new generation; every earlier crash must serve generation 1.
		if crashAt != StepCurrentCommit && rep.Generation != 1 {
			t.Fatalf("crash at %s served generation %d, want 1", crashAt, rep.Generation)
		}
		if rep.FellBack {
			t.Fatalf("crash at %s forced a checksum fallback: %+v — partial state was visible", crashAt, rep)
		}
	}
	// And a clean save afterwards works and wins.
	gen, err := st.Save(ens)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != gen {
		t.Fatalf("loaded generation %d after recovery save, want %d", rep.Generation, gen)
	}
}

func TestStorePrunesOldGenerations(t *testing.T) {
	_, ens, _ := fixture(t)
	st := OpenStore(t.TempDir())
	st.Keep = 2
	for i := 0; i < 4; i++ {
		if _, err := st.Save(ens); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := st.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0] != 3 || gens[1] != 4 {
		t.Fatalf("generations after prune = %v, want [3 4]", gens)
	}
}

func TestStoreLegacyFlatLayoutStillLoads(t *testing.T) {
	frame, ens, _ := fixture(t)
	dir := t.TempDir()
	// Write the pre-versioning layout by hand: gobs + flat manifest, no
	// checksums, no generations.
	type entry struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
		File string `json:"file"`
	}
	var man struct {
		Models []entry `json:"models"`
	}
	for _, m := range ens.Models {
		f, err := os.Create(filepath.Join(dir, m.Name()+".gob"))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Save(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		man.Models = append(man.Models, entry{Name: m.Name(), Kind: m.Kind(), File: m.Name() + ".gob"})
	}
	data, _ := json.Marshal(man)
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	e, rep, err := OpenStore(dir).Load()
	if err != nil {
		t.Fatalf("legacy load: %v", err)
	}
	if !rep.Legacy || rep.Generation != 0 {
		t.Fatalf("report = %+v, want legacy generation 0", rep)
	}
	x := frame.X.Row(0)
	for i := range ens.Models {
		if a, b := ens.Models[i].Predict(x), e.Models[i].Predict(x); a != b {
			t.Errorf("legacy model %s predicts %v, want %v", ens.Models[i].Name(), b, a)
		}
	}
}

func TestStoreManifestTamperRejected(t *testing.T) {
	_, ens, _ := fixture(t)
	st := saveGenerations(t, ens, 2)
	manPath := filepath.Join(st.Dir(), "generations", "000002", "manifest.json")
	if err := os.WriteFile(manPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != 1 || !rep.FellBack {
		t.Fatalf("report = %+v, want fallback to generation 1 on manifest tamper", rep)
	}
}

// TestStoreStructurallyCorruptModelFallsBack covers the validation layer
// below the checksums: a generation whose gbdt model decodes cleanly and
// matches its manifest checksum, but holds a cyclic tree, must be rejected
// by gbdt.Load's structural validation and fall back to the previous
// generation instead of looping forever in Tree.Predict.
func TestStoreStructurallyCorruptModelFallsBack(t *testing.T) {
	_, ens, _ := fixture(t)
	st := saveGenerations(t, ens, 2)
	genDir := filepath.Join(st.Dir(), "generations", "000002")
	manPath := filepath.Join(genDir, "manifest.json")
	data, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	var man GenerationManifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	tampered := false
	for i, ent := range man.Models {
		if ent.Kind != "gbdt" {
			continue
		}
		path := filepath.Join(genDir, ent.File)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		gm, err := gbdt.Load(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		gm.Trees[0].Left[0] = 0 // self cycle: decodes fine, traversal would loop
		var buf bytes.Buffer
		if err := gm.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(buf.Bytes())
		man.Models[i].SHA256 = hex.EncodeToString(sum[:])
		tampered = true
		break
	}
	if !tampered {
		t.Fatal("fixture ensemble holds no gbdt model")
	}
	out, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manPath, out, 0o644); err != nil {
		t.Fatal(err)
	}

	e, rep, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != 1 || !rep.FellBack {
		t.Fatalf("report = %+v, want fallback to generation 1", rep)
	}
	if len(rep.Rejected) != 1 || !strings.Contains(rep.Rejected[0].Err, "corrupt model") {
		t.Fatalf("rejected = %+v, want the gbdt corrupt-model marker", rep.Rejected)
	}
	if len(e.Models) != len(ens.Models) {
		t.Fatalf("fallback ensemble has %d models, want %d", len(e.Models), len(ens.Models))
	}
}
