package core

import (
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/gbdt"
	"github.com/hpc-repro/aiio/internal/joblog"
	"github.com/hpc-repro/aiio/internal/logdb"
	"github.com/hpc-repro/aiio/internal/mlp"
	"github.com/hpc-repro/aiio/internal/tabnet"
)

// Training-path benchmarks behind BENCH_training.json: the per-family cold
// fit (with the pre-kernelization reference path as the baseline subbench
// for the net families) and the full incremental retrain cycle cold vs
// warm. Early stopping is disabled so every iteration does identical work
// and allocs/op is a steady-state number, not an early-exit artifact.

// BenchmarkTrainPerFamily measures one cold fit per model family on the
// 900-job fixture frame: the trees at the Fast round budget, the nets at
// their full cold topology (the paper's 6-layer MLP, default TabNet) with
// the epoch budget cut so an iteration stays CI-sized — per-epoch cost is
// what the kernels change, so the ratio is budget-independent. The
// mlp/reference and tabnet/reference subbenches run the same fit through
// Config.ReferenceKernels — the original per-row scalar loops — so the
// kernel-path speedup is one benchstat comparison away.
func BenchmarkTrainPerFamily(b *testing.B) {
	frame, _, _ := fixture(b)
	train, eval := frame.Split(1, 0.75)

	b.Run("gbdt", func(b *testing.B) {
		cfg := gbdt.DefaultConfig(gbdt.LevelWise)
		cfg.Rounds = 60
		cfg.EarlyStoppingRounds = 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gbdt.Train(cfg, train.X, train.Y, eval.X, eval.Y); err != nil {
				b.Fatal(err)
			}
		}
	})
	mlpCfg := func(ref bool) mlp.Config {
		cfg := mlp.DefaultConfig()
		cfg.Epochs = 15
		cfg.EarlyStoppingRounds = 0
		cfg.ReferenceKernels = ref
		return cfg
	}
	for _, ref := range []bool{false, true} {
		name := "mlp"
		if ref {
			name = "mlp-reference"
		}
		b.Run(name, func(b *testing.B) {
			cfg := mlpCfg(ref)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mlp.Train(cfg, train.X, train.Y, eval.X, eval.Y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	tabCfg := func(ref bool) tabnet.Config {
		cfg := tabnet.DefaultConfig()
		cfg.Epochs = 10
		cfg.EarlyStoppingRounds = 0
		cfg.ReferenceKernels = ref
		return cfg
	}
	for _, ref := range []bool{false, true} {
		name := "tabnet"
		if ref {
			name = "tabnet-reference"
		}
		b.Run(name, func(b *testing.B) {
			cfg := tabCfg(ref)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tabnet.Train(cfg, train.X, train.Y, eval.X, eval.Y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// copyTree recursively copies the directory tree at src into dst (which
// must exist). go.mod targets go 1.22, so no os.CopyFS.
func copyTree(b *testing.B, src, dst string) {
	b.Helper()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			if rel == "." {
				return nil
			}
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// resetDir restores dir to the snapshot in pristine.
func resetDir(b *testing.B, dir, pristine string) {
	b.Helper()
	if err := os.RemoveAll(dir); err != nil {
		b.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		b.Fatal(err)
	}
	copyTree(b, pristine, dir)
}

// benchFill appends jobs [lo, hi) from the synthetic stream (fillLog's TB
// twin, usable from benchmarks).
func benchFill(b *testing.B, jl *joblog.Store, lo, hi int) {
	b.Helper()
	cfg := logdb.DefaultGenConfig()
	cfg.Jobs = hi
	i := 0
	logdb.GenerateStream(cfg, func(rec *darshan.Record) bool {
		if i >= lo {
			if _, err := jl.Append(rec); err != nil {
				b.Fatalf("append job %d: %v", i, err)
			}
		}
		i++
		return true
	})
	if err := jl.Sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRunIncremental measures one full retrain cycle — drain the
// backlog, blend the window, train, validate, commit a generation — on a
// gbdt+mlp ensemble in three modes: cold-reference (scalar training loops,
// no warm start — the pre-kernelization baseline), cold (kernelized), and
// warm (kernelized + seeded from the previous generation on the reduced
// budget). A priming cycle incorporates the first 300 jobs and commits the
// generation the warm mode seeds from; the resulting joblog and model store
// are snapshotted, and every measured iteration restores both (outside the
// timer) before ingesting the same fresh 300-job backlog. Each iteration
// therefore measures the identical steady-state cycle: without the resets,
// gbdt's continued boosting grows the ensemble every generation and the
// window reservoir's full-log scan grows with total ingested history, so
// ns/op would scale with b.N instead of measuring the retrain cost.
func BenchmarkRunIncremental(b *testing.B) {
	for _, mode := range []string{"cold-reference", "cold", "warm"} {
		b.Run(mode, func(b *testing.B) {
			warm := mode == "warm"
			logDir := b.TempDir()
			jl, err := joblog.Open(logDir, joblog.Options{})
			if err != nil {
				b.Fatal(err)
			}
			storeDir := b.TempDir()
			store := OpenStore(storeDir)
			// Explicit mid-scale budgets rather than Fast: Fast also swaps the
			// MLP to a shrunken test topology, and the retrain cost being
			// measured is the production one — the paper's 6-layer net.
			opts := IncrementalOptions{
				MiniBatch: 64,
				Window:    300,
				Train: TrainOptions{
					Models:           []string{NameXGBoost, NameMLP},
					GBDTRounds:       60,
					NNEpochs:         30,
					Seed:             1,
					WarmStart:        warm,
					ReferenceKernels: mode == "cold-reference",
				},
			}
			benchFill(b, jl, 0, 300)
			if _, err := RunIncremental(context.Background(), jl, store, opts); err != nil {
				b.Fatal(err)
			}
			if err := jl.Close(); err != nil {
				b.Fatal(err)
			}
			pristineLog := b.TempDir()
			pristineStore := b.TempDir()
			copyTree(b, logDir, pristineLog)
			copyTree(b, storeDir, pristineStore)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				resetDir(b, logDir, pristineLog)
				resetDir(b, storeDir, pristineStore)
				jl, err := joblog.Open(logDir, joblog.Options{})
				if err != nil {
					b.Fatal(err)
				}
				benchFill(b, jl, 300, 600)
				b.StartTimer()
				_, err = RunIncremental(context.Background(), jl, store, opts)
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				if err := jl.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
