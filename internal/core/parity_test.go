package core

import (
	"math"
	"sync"
	"testing"

	"github.com/hpc-repro/aiio/internal/linalg"
)

// TestPredictBatchParityAcrossFamilies pins the inference-flattening
// contract at the ensemble level: for every trained model family (3 gbdt
// variants, mlp, tabnet), the single-row Predict path, a sequential
// PredictBatch, and PredictBatch calls racing on the same model must agree
// within 1e-9 relative. Run under -race this also proves the pooled
// scratch buffers and lazily-built caches (transposes, reciprocal stds)
// are safe to share.
func TestPredictBatchParityAcrossFamilies(t *testing.T) {
	frame, ens, _ := fixture(t)

	rows := 64
	if frame.X.Rows < rows {
		rows = frame.X.Rows
	}
	x := &linalg.Matrix{Rows: rows, Cols: frame.X.Cols, Data: frame.X.Data[:rows*frame.X.Cols]}

	for _, m := range ens.Models {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			batch := m.PredictBatch(x)
			if len(batch) != rows {
				t.Fatalf("PredictBatch returned %d values for %d rows", len(batch), rows)
			}
			for i := 0; i < rows; i++ {
				p := m.Predict(x.Row(i))
				if math.IsNaN(p) || math.IsInf(p, 0) {
					t.Fatalf("row %d: non-finite prediction %v", i, p)
				}
				d := math.Abs(p-batch[i]) / math.Max(1, math.Max(math.Abs(p), math.Abs(batch[i])))
				if d > 1e-9 {
					t.Fatalf("row %d: Predict %v vs PredictBatch %v (rel diff %g)", i, p, batch[i], d)
				}
			}

			// Concurrent batches on one model instance: same answers, no
			// races in the shared scratch pools.
			var wg sync.WaitGroup
			results := make([][]float64, 4)
			for g := range results {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					results[g] = m.PredictBatch(x)
				}(g)
			}
			wg.Wait()
			for g, r := range results {
				for i := range r {
					d := math.Abs(r[i]-batch[i]) / math.Max(1, math.Max(math.Abs(r[i]), math.Abs(batch[i])))
					if d > 1e-9 {
						t.Fatalf("goroutine %d row %d: %v vs sequential %v (rel diff %g)", g, i, r[i], batch[i], d)
					}
				}
			}
		})
	}
}
