package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/joblog"
)

// Tests for the self-healing lifecycle's durable half: canary verdicts and
// drift references committed with a generation, the SetCurrent rollback
// path, and the gated RunIncremental (blocked candidates leave nothing
// durable behind; admitted ones carry their provenance).

func TestSaveDetailedPersistsCanaryAndReference(t *testing.T) {
	_, ens, _ := fixture(t)
	st := OpenStore(t.TempDir())
	verdict := &CanaryRecord{
		Passed: true, CandidateRMSE: 0.41, ServingRMSE: 0.40,
		Tolerance: 0.10, HoldoutJobs: 33, Reason: "test verdict", EvaluatedUnix: 123,
	}
	refBytes := []byte(`{"jobs":7}`)
	gen, err := st.SaveDetailed(ens, &GenerationExtra{Canary: verdict, Reference: refBytes})
	if err != nil {
		t.Fatal(err)
	}
	man, err := st.Manifest(gen)
	if err != nil {
		t.Fatal(err)
	}
	if man.Canary == nil || *man.Canary != *verdict {
		t.Fatalf("manifest canary = %+v, want %+v", man.Canary, verdict)
	}
	got, err := st.Reference(gen)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(refBytes) {
		t.Fatalf("reference sidecar = %q, want %q", got, refBytes)
	}
	// The generation must still load through the verifying path: the
	// sidecar is outside the checksummed model set but must not break it.
	if _, rep, err := st.Load(); err != nil || rep.Generation != gen {
		t.Fatalf("load after SaveDetailed: rep=%+v err=%v", rep, err)
	}

	// A plain Save has neither verdict nor reference.
	gen2, err := st.Save(ens)
	if err != nil {
		t.Fatal(err)
	}
	man2, err := st.Manifest(gen2)
	if err != nil {
		t.Fatal(err)
	}
	if man2.Canary != nil || man2.ReferenceFile != "" {
		t.Fatalf("plain Save leaked lifecycle fields: %+v", man2)
	}
	if got, err := st.Reference(gen2); err != nil || got != nil {
		t.Fatalf("plain Save reference = %q, %v; want nil, nil", got, err)
	}
}

func TestCanaryVerdictOutsideFingerprint(t *testing.T) {
	// The fingerprint is the content identity of the model set; the canary
	// verdict is provenance about the promotion, not the models. Two
	// generations of the same ensemble must fingerprint identically whether
	// or not a verdict rode along — otherwise replication would see every
	// auto-retrain as a different model set than the same bytes uploaded.
	_, ens, _ := fixture(t)
	st := OpenStore(t.TempDir())
	g1, err := st.SaveDetailed(ens, nil)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := st.SaveDetailed(ens, &GenerationExtra{
		Canary:    &CanaryRecord{Passed: true, Reason: "x"},
		Reference: []byte(`{"jobs":1}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := st.Manifest(g1)
	m2, _ := st.Manifest(g2)
	if m1.Fingerprint() != m2.Fingerprint() {
		t.Fatalf("verdict/reference changed the fingerprint: %s vs %s", m1.Fingerprint(), m2.Fingerprint())
	}
}

func TestSetCurrentRollsBackDurably(t *testing.T) {
	_, ens, _ := fixture(t)
	st := saveGenerations(t, ens, 3)
	if err := st.SetCurrent(2); err != nil {
		t.Fatal(err)
	}
	// A fresh store handle (a restart) must serve the pinned generation.
	_, rep, err := OpenStore(st.dir).Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != 2 {
		t.Fatalf("after SetCurrent(2) a restart serves generation %d", rep.Generation)
	}
	if err := st.SetCurrent(99); err == nil {
		t.Fatal("SetCurrent accepted an uncommitted generation")
	}
}

// blockingGate always refuses the candidate.
func blockingGate(cand *Ensemble, holdout []*darshan.Record) (*CanaryRecord, error) {
	return &CanaryRecord{Passed: false, HoldoutJobs: len(holdout), Reason: "injected block"},
		fmt.Errorf("injected block")
}

func TestRunIncrementalCanaryBlockLeavesNothingDurable(t *testing.T) {
	jl, err := joblog.Open(t.TempDir(), joblog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store := OpenStore(t.TempDir())
	fillLog(t, jl, 0, 60)

	opts := fastIncOpts()
	opts.Holdout = 10
	opts.Gate = blockingGate
	_, rerr := RunIncremental(context.Background(), jl, store, opts)
	var blocked *CanaryBlockedError
	if !errors.As(rerr, &blocked) {
		t.Fatalf("err = %v, want *CanaryBlockedError", rerr)
	}
	if blocked.Verdict == nil || blocked.Verdict.Passed {
		t.Fatalf("blocked verdict = %+v", blocked.Verdict)
	}
	// Nothing durable: no generation exists, so a crash right here (the
	// chaos drill's kill point) can only ever recover to the incumbent.
	gens, err := store.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 0 {
		t.Fatalf("blocked candidate left generations %v", gens)
	}
	// The backlog is parked (cursor advanced): the single-flight trigger
	// must not retrain the same rejected batch forever.
	if jl.Pending() != 0 {
		t.Fatalf("blocked run left %d pending", jl.Pending())
	}
	// The parked records stay reachable as history for the next cycle.
	fillLog(t, jl, 60, 80)
	opts.Gate = nil
	opts.Holdout = 0
	rep, err := RunIncremental(context.Background(), jl, store, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowRecords == 0 {
		t.Fatal("parked records not reachable as history window")
	}
}

func TestRunIncrementalGatedHoldoutDisjointFromTraining(t *testing.T) {
	jl, err := joblog.Open(t.TempDir(), joblog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store := OpenStore(t.TempDir())
	fillLog(t, jl, 0, 60)
	// First, an ungated run incorporates the first 60 jobs as history.
	if _, err := RunIncremental(context.Background(), jl, store, fastIncOpts()); err != nil {
		t.Fatal(err)
	}
	fillLog(t, jl, 60, 120)

	opts := fastIncOpts()
	opts.Holdout = 20
	var heldIDs map[int64]bool
	wantVerdict := &CanaryRecord{Passed: true, Reason: "admitted by test gate"}
	opts.Gate = func(cand *Ensemble, holdout []*darshan.Record) (*CanaryRecord, error) {
		heldIDs = make(map[int64]bool, len(holdout))
		for _, rec := range holdout {
			heldIDs[rec.JobID] = true
		}
		v := *wantVerdict
		v.HoldoutJobs = len(holdout)
		return &v, nil
	}
	var trained []*darshan.Record
	opts.Reference = func(training []*darshan.Record, verdict *CanaryRecord) []byte {
		trained = training
		if verdict == nil || !verdict.Passed {
			t.Errorf("reference callback got verdict %+v", verdict)
		}
		return []byte(`{"jobs":42}`)
	}
	rep, err := RunIncremental(context.Background(), jl, store, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HoldoutRecords == 0 || rep.HoldoutRecords > opts.Holdout {
		t.Fatalf("HoldoutRecords = %d, want 1..%d", rep.HoldoutRecords, opts.Holdout)
	}
	if len(heldIDs) == 0 || len(trained) == 0 {
		t.Fatal("gate or reference callback never ran")
	}
	// The disjointness that makes the gate honest: no held-out job was
	// trained on (synthetic JobIDs are unique across the log).
	for _, rec := range trained {
		if heldIDs[rec.JobID] {
			t.Fatalf("job %d is in both the training set and the canary holdout", rec.JobID)
		}
	}
	// The admitting verdict and the reference are durably attached.
	man, err := store.Manifest(rep.Generation)
	if err != nil {
		t.Fatal(err)
	}
	if man.Canary == nil || man.Canary.Reason != wantVerdict.Reason {
		t.Fatalf("manifest canary = %+v", man.Canary)
	}
	if rep.Canary == nil || rep.Canary.HoldoutJobs != rep.HoldoutRecords {
		t.Fatalf("report canary = %+v, holdout %d", rep.Canary, rep.HoldoutRecords)
	}
	if ref, err := store.Reference(rep.Generation); err != nil || string(ref) != `{"jobs":42}` {
		t.Fatalf("reference = %q, %v", ref, err)
	}
}
