package core

import (
	"strconv"
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
)

// assertDiagnosisBitwiseEqual fails unless every numeric field of two
// diagnoses is bitwise identical — the guarantee the parallel engine makes
// against the sequential path.
func assertDiagnosisBitwiseEqual(t *testing.T, label string, seq, par *Diagnosis) {
	t.Helper()
	if len(seq.PerModel) != len(par.PerModel) {
		t.Fatalf("%s: %d vs %d per-model diagnoses", label, len(seq.PerModel), len(par.PerModel))
	}
	eqModel := func(name string, a, b *ModelDiagnosis) {
		if a.Name != b.Name {
			t.Fatalf("%s: %s: name %q vs %q", label, name, a.Name, b.Name)
		}
		if a.Predicted != b.Predicted || a.Base != b.Base || a.AdditivityErr != b.AdditivityErr ||
			a.PredictedMiBps != b.PredictedMiBps {
			t.Errorf("%s: %s: scalar fields differ", label, name)
		}
		if len(a.Contributions) != len(b.Contributions) {
			t.Fatalf("%s: %s: contribution lengths differ", label, name)
		}
		for j := range a.Contributions {
			if a.Contributions[j] != b.Contributions[j] {
				t.Errorf("%s: %s: contribution %d: %v vs %v (not bitwise identical)",
					label, name, j, a.Contributions[j], b.Contributions[j])
			}
		}
	}
	for i := range seq.PerModel {
		eqModel(seq.PerModel[i].Name, &seq.PerModel[i], &par.PerModel[i])
	}
	if seq.ClosestIndex != par.ClosestIndex {
		t.Errorf("%s: closest index %d vs %d", label, seq.ClosestIndex, par.ClosestIndex)
	}
	for i := range seq.Weights {
		if seq.Weights[i] != par.Weights[i] {
			t.Errorf("%s: weight %d differs", label, i)
		}
	}
	eqModel("closest", &seq.Closest, &par.Closest)
	eqModel("average", &seq.Average, &par.Average)
}

// TestDiagnoseParallelDeterminism asserts that the parallel per-model path
// produces bitwise-identical output to the sequential path for every
// interpreter: each model's explainer is independently seeded and slot i of
// PerModel is owned by exactly one worker, so no reduction order depends on
// scheduling.
func TestDiagnoseParallelDeterminism(t *testing.T) {
	_, ens, _ := fixture(t)
	rec := slowJob(t)

	for _, interp := range []Interpreter{InterpreterSHAP, InterpreterTreeSHAP, InterpreterLIME} {
		opts := fastDiagOpts()
		opts.Interpreter = interp

		seqOpts := opts
		seqOpts.Parallelism = 1
		seq, err := ens.Diagnose(rec, seqOpts)
		if err != nil {
			t.Fatalf("%s: sequential: %v", interp, err)
		}
		for _, workers := range []int{2, 4, 16} {
			parOpts := opts
			parOpts.Parallelism = workers
			par, err := ens.Diagnose(rec, parOpts)
			if err != nil {
				t.Fatalf("%s: parallel(%d): %v", interp, workers, err)
			}
			assertDiagnosisBitwiseEqual(t,
				string(interp)+"/workers="+strconv.Itoa(workers), seq, par)
		}
	}
}

// TestDiagnoseBatchMatchesSequential asserts that DiagnoseBatch returns, in
// input order, exactly the diagnoses a per-record sequential Diagnose loop
// would produce.
func TestDiagnoseBatchMatchesSequential(t *testing.T) {
	_, ens, _ := fixture(t)
	base := slowJob(t)
	recs := []*darshan.Record{base, base, base, base, base}

	seqOpts := fastDiagOpts()
	seqOpts.Parallelism = 1
	want := make([]*Diagnosis, len(recs))
	for i, rec := range recs {
		var err error
		want[i], err = ens.Diagnose(rec, seqOpts)
		if err != nil {
			t.Fatal(err)
		}
	}

	for _, workers := range []int{0, 1, 2, 7} {
		opts := fastDiagOpts()
		opts.Parallelism = workers
		got, err := ens.DiagnoseBatch(recs, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d diagnoses, want %d", workers, len(got), len(want))
		}
		for i := range got {
			assertDiagnosisBitwiseEqual(t, "batch job "+strconv.Itoa(i), want[i], got[i])
		}
	}
}

// TestDiagnoseBatchEmptyAndErrors covers the degenerate inputs.
func TestDiagnoseBatchEmptyAndErrors(t *testing.T) {
	_, ens, _ := fixture(t)
	if out, err := ens.DiagnoseBatch(nil, fastDiagOpts()); err != nil || out != nil {
		t.Errorf("empty batch: got (%v, %v)", out, err)
	}
	opts := fastDiagOpts()
	opts.Interpreter = "nonsense"
	if _, err := ens.DiagnoseBatch([]*darshan.Record{slowJob(t)}, opts); err == nil {
		t.Error("unknown interpreter did not error")
	}
	empty := &Ensemble{}
	if _, err := empty.DiagnoseBatch([]*darshan.Record{slowJob(t)}, fastDiagOpts()); err == nil {
		t.Error("empty ensemble did not error")
	}
}
