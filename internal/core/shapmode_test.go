package core

import (
	"math"
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/shap"
)

// sparseJob builds a record with few non-zero counters, so its transformed
// vector has an active set small enough for the exact Kernel enumerator.
func sparseJob() *darshan.Record {
	rec := &darshan.Record{JobID: 7, App: "sparse", PerfMiBps: 120}
	rec.Counters[darshan.NProcs] = 8
	rec.Counters[darshan.PosixOpens] = 8
	rec.Counters[darshan.PosixWrites] = 4096
	rec.Counters[darshan.PosixBytesWritten] = 4096 * 1024
	rec.Counters[darshan.PosixSeqWrites] = 4000
	rec.Counters[darshan.PosixFileNotAligned] = 512
	return rec
}

func activeCount(rec *darshan.Record) int {
	n := 0
	for _, c := range rec.Counters {
		if c != 0 {
			n++
		}
	}
	return n
}

// TestSHAPModeAutoMatchesExactKernel is the acceptance check of the auto
// dispatcher: for a job whose active set fits the exact Kernel enumerator,
// routing the tree models through TreeSHAP must reproduce the enumerator's
// Shapley values to 1e-9, and both paths must keep the Section 3.3
// robustness property.
func TestSHAPModeAutoMatchesExactKernel(t *testing.T) {
	_, ens, _ := fixture(t)
	rec := sparseJob()
	if m := activeCount(rec); m > DefaultDiagnoseOptions().SHAP.MaxExact {
		t.Fatalf("sparse job has %d active counters, exceeds MaxExact", m)
	}

	auto := DefaultDiagnoseOptions()
	auto.SHAPMode = shap.ModeAuto
	kernel := DefaultDiagnoseOptions()
	kernel.SHAPMode = shap.ModeKernel

	da, err := ens.Diagnose(rec, auto)
	if err != nil {
		t.Fatal(err)
	}
	dk, err := ens.Diagnose(rec, kernel)
	if err != nil {
		t.Fatal(err)
	}
	for i := range da.PerModel {
		a, k := da.PerModel[i], dk.PerModel[i]
		if a.Failed() || k.Failed() {
			t.Fatalf("model %s failed: %q / %q", a.Name, a.Err, k.Err)
		}
		for j := range a.Contributions {
			if d := math.Abs(a.Contributions[j] - k.Contributions[j]); d > 1e-9 {
				t.Errorf("%s phi[%d]: auto %v vs kernel %v (|Δ|=%g)",
					a.Name, j, a.Contributions[j], k.Contributions[j], d)
			}
		}
		if a.AdditivityErr > 1e-9 {
			t.Errorf("%s: tree-path additivity error %v", a.Name, a.AdditivityErr)
		}
	}
	if !da.IsRobust() || !dk.IsRobust() {
		t.Error("robustness property violated by auto or kernel mode")
	}
}

// TestSHAPModeTreeDegradesNeuralModels: forcing the tree estimator fails the
// two neural models and merges over the three GBDT survivors.
func TestSHAPModeTreeDegradesNeuralModels(t *testing.T) {
	_, ens, _ := fixture(t)
	opts := fastDiagOpts()
	opts.SHAPMode = shap.ModeTree
	d, err := ens.Diagnose(slowJob(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Degraded {
		t.Fatal("tree mode on a mixed ensemble must degrade")
	}
	skipped := d.SkippedModels()
	if len(skipped) != 2 {
		t.Fatalf("skipped %v, want the two neural models", skipped)
	}
	for _, name := range []string{NameMLP, NameTabNet} {
		found := false
		for _, s := range skipped {
			if s == name {
				found = true
			}
		}
		if !found {
			t.Errorf("%s not skipped under tree mode: %v", name, skipped)
		}
	}
	for i := range d.PerModel {
		md := &d.PerModel[i]
		if ens.Models[i].Kind() == "gbdt" && md.Failed() {
			t.Errorf("tree model %s failed under tree mode: %s", md.Name, md.Err)
		}
	}
}

// TestSHAPModeUnknownRejected: an invalid mode fails fast, before any model
// work.
func TestSHAPModeUnknownRejected(t *testing.T) {
	_, ens, _ := fixture(t)
	opts := fastDiagOpts()
	opts.SHAPMode = "fourier"
	if _, err := ens.Diagnose(slowJob(t), opts); err == nil {
		t.Fatal("unknown shap mode accepted")
	}
}

// TestSHAPModeEmptyDerivesFromInterpreter: the legacy interpreter values
// keep their historical meaning when SHAPMode is unset — InterpreterSHAP is
// uniform Kernel SHAP, InterpreterTreeSHAP is the auto hybrid.
func TestSHAPModeEmptyDerivesFromInterpreter(t *testing.T) {
	_, ens, _ := fixture(t)
	rec := sparseJob()

	legacyKernel := fastDiagOpts()
	legacyKernel.Interpreter = InterpreterSHAP
	legacyKernel.SHAPMode = ""
	explicitKernel := fastDiagOpts()
	explicitKernel.SHAPMode = shap.ModeKernel

	legacyAuto := fastDiagOpts()
	legacyAuto.Interpreter = InterpreterTreeSHAP
	legacyAuto.SHAPMode = ""
	explicitAuto := fastDiagOpts()
	explicitAuto.SHAPMode = shap.ModeAuto

	for _, pair := range []struct {
		name string
		a, b DiagnoseOptions
	}{
		{"kernel", legacyKernel, explicitKernel},
		{"auto", legacyAuto, explicitAuto},
	} {
		da, err := ens.Diagnose(rec, pair.a)
		if err != nil {
			t.Fatal(err)
		}
		db, err := ens.Diagnose(rec, pair.b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range da.PerModel {
			for j := range da.PerModel[i].Contributions {
				if da.PerModel[i].Contributions[j] != db.PerModel[i].Contributions[j] {
					t.Fatalf("%s: legacy and explicit dispatch differ on %s phi[%d]",
						pair.name, da.PerModel[i].Name, j)
				}
			}
		}
	}
}
