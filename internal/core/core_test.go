package core

import (
	"math"
	"sync"
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/iosim"
	"github.com/hpc-repro/aiio/internal/logdb"
	"github.com/hpc-repro/aiio/internal/workload"
)

var (
	fixtureOnce   sync.Once
	fixtureFrame  *features.Frame
	fixtureEns    *Ensemble
	fixtureReport *TrainReport
	fixtureErr    error
)

// fixture trains a small but real five-model ensemble once for all tests
// and benchmarks.
func fixture(t testing.TB) (*features.Frame, *Ensemble, *TrainReport) {
	t.Helper()
	fixtureOnce.Do(func() {
		ds := logdb.Generate(logdb.GenConfig{Jobs: 900, Seed: 11})
		fixtureFrame = features.Build(ds)
		opts := DefaultTrainOptions()
		opts.Fast = true
		fixtureEns, fixtureReport, fixtureErr = TrainEnsemble(fixtureFrame, opts)
	})
	if fixtureErr != nil {
		t.Fatalf("fixture training failed: %v", fixtureErr)
	}
	return fixtureFrame, fixtureEns, fixtureReport
}

func fastDiagOpts() DiagnoseOptions {
	opts := DefaultDiagnoseOptions()
	opts.SHAP.MaxExact = 10
	opts.SHAP.NSamples = 1024
	return opts
}

// slowJob simulates the paper's pattern 1 (small synced writes) at reduced
// scale: the canonical "bad" job.
func slowJob(t testing.TB) *darshan.Record {
	t.Helper()
	params := iosim.DefaultParams()
	params.NoiseSigma = 0
	cfg := workload.Patterns()[0].Config.Scale(16, 4)
	rec, _ := cfg.Run("ior", 999, 77, params)
	return rec
}

func TestTrainEnsembleAllFiveModels(t *testing.T) {
	_, ens, report := fixture(t)
	if len(ens.Models) != 5 {
		t.Fatalf("trained %d models, want 5", len(ens.Models))
	}
	for i, name := range ModelNames() {
		if ens.Models[i].Name() != name {
			t.Errorf("model %d = %s, want %s", i, ens.Models[i].Name(), name)
		}
	}
	for _, r := range report.Models {
		if r.PredictionRMSE <= 0 || math.IsNaN(r.PredictionRMSE) {
			t.Errorf("model %s has invalid RMSE %v", r.Name, r.PredictionRMSE)
		}
		// The models must beat predicting the mean by a wide margin. The
		// transformed performance spans several units; RMSE should be well
		// under 1.
		if r.PredictionRMSE > 1.0 {
			t.Errorf("model %s RMSE %.4f too high to be useful", r.Name, r.PredictionRMSE)
		}
	}
	if ens.Model(NameMLP) == nil || ens.Model("nope") != nil {
		t.Error("Model lookup broken")
	}
}

func TestDiagnoseFindsSmallWriteBottleneck(t *testing.T) {
	_, ens, _ := fixture(t)
	rec := slowJob(t)
	diag, err := ens.Diagnose(rec, fastDiagOpts())
	if err != nil {
		t.Fatal(err)
	}
	bottlenecks := diag.Bottlenecks()
	if len(bottlenecks) == 0 {
		t.Fatal("no bottlenecks found for the canonical slow job")
	}
	// Among the top-5 negative factors there must be a small-write-related
	// counter (SIZE_WRITE_100_1K or POSIX_WRITES), as in Fig. 7a.
	found := false
	top := bottlenecks
	if len(top) > 5 {
		top = top[:5]
	}
	for _, f := range top {
		if f.Counter == darshan.PosixSizeWrite100_1K || f.Counter == darshan.PosixWrites {
			found = true
		}
	}
	if !found {
		t.Errorf("small-write counters not in top-5 bottlenecks: %+v", top)
	}
}

func TestDiagnosisRobustness(t *testing.T) {
	_, ens, _ := fixture(t)
	rec := slowJob(t) // write-only job
	diag, err := ens.Diagnose(rec, fastDiagOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !diag.IsRobust() {
		t.Fatal("diagnosis assigned non-zero impact to zero counters")
	}
	// Stronger: a write-only job must have zero contribution on every
	// read counter in the merged diagnosis.
	for j, c := range diag.Average.Contributions {
		id := darshan.CounterID(j)
		if id.IsReadCounter() && c != 0 {
			t.Errorf("read counter %s got contribution %v on a write-only job", id, c)
		}
	}
}

func TestMergingProperties(t *testing.T) {
	frame, ens, _ := fixture(t)
	rec := frame.Records[3]
	diag, err := ens.Diagnose(rec, fastDiagOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 8 weights sum to 1 and favor the most accurate model.
	sum := 0.0
	for _, w := range diag.Weights {
		if w < 0 {
			t.Errorf("negative weight %v", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
	maxW, maxI := -1.0, 0
	for i, w := range diag.Weights {
		if w > maxW {
			maxW, maxI = w, i
		}
	}
	if maxI != diag.ClosestIndex {
		t.Errorf("largest weight on model %d but closest is %d", maxI, diag.ClosestIndex)
	}
	// Closest (Eq. 6) is the argmin of |pred - actual|.
	for i, md := range diag.PerModel {
		if math.Abs(md.Predicted-diag.Actual) <
			math.Abs(diag.PerModel[diag.ClosestIndex].Predicted-diag.Actual) {
			t.Errorf("model %d closer than ClosestIndex", i)
		}
	}
	// Average contributions are the weighted mean of the per-model ones.
	for j := range diag.Average.Contributions {
		want := 0.0
		for mi, md := range diag.PerModel {
			want += diag.Weights[mi] * md.Contributions[j]
		}
		if math.Abs(diag.Average.Contributions[j]-want) > 1e-12 {
			t.Fatalf("average contribution %d mismatch", j)
		}
	}
}

func TestEvaluateTable2MergingWins(t *testing.T) {
	frame, ens, _ := fixture(t)
	_, eval := frame.Split(1, 0.5)
	table, err := EvaluateTable2(ens, eval, 60, fastDiagOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 7 {
		t.Fatalf("table has %d rows, want 7 (5 models + closest + average)", len(table.Rows))
	}
	closest := table.Row("closest")
	average := table.Row("average")
	if closest == nil || average == nil {
		t.Fatal("missing merged rows")
	}
	// The Closest Method picks the per-job best model, so its RMSE cannot
	// exceed any single model's (the paper's headline claim).
	for _, name := range ModelNames() {
		r := table.Row(name)
		if r == nil {
			t.Fatalf("missing row %s", name)
		}
		if closest.PredictionRMSE > r.PredictionRMSE+1e-9 {
			t.Errorf("closest prediction RMSE %.4f exceeds %s's %.4f",
				closest.PredictionRMSE, name, r.PredictionRMSE)
		}
	}
	// The Average Method must beat the worst single model.
	worst := 0.0
	for _, name := range ModelNames() {
		if r := table.Row(name); r.PredictionRMSE > worst {
			worst = r.PredictionRMSE
		}
	}
	if average.PredictionRMSE >= worst {
		t.Errorf("average RMSE %.4f not better than worst single model %.4f",
			average.PredictionRMSE, worst)
	}
	for _, row := range table.Rows {
		if row.DiagnosisRMSE <= 0 || math.IsNaN(row.DiagnosisRMSE) {
			t.Errorf("row %s diagnosis RMSE invalid: %v", row.Name, row.DiagnosisRMSE)
		}
	}
}

func TestDiagnoseWithLIME(t *testing.T) {
	_, ens, _ := fixture(t)
	rec := slowJob(t)
	opts := DefaultDiagnoseOptions()
	opts.Interpreter = InterpreterLIME
	opts.LIME.NSamples = 800
	diag, err := ens.Diagnose(rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.IsRobust() {
		t.Error("LIME diagnosis not robust")
	}
	if len(diag.TopFactors(5)) == 0 {
		t.Error("LIME diagnosis produced no factors")
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	frame, ens, _ := fixture(t)
	dir := t.TempDir()
	if err := SaveEnsemble(dir, ens); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEnsemble(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Models) != len(ens.Models) {
		t.Fatalf("loaded %d models", len(loaded.Models))
	}
	x := frame.X.Row(0)
	for i := range ens.Models {
		a, b := ens.Models[i].Predict(x), loaded.Models[i].Predict(x)
		if a != b {
			t.Errorf("model %s predicts %v after reload, was %v", ens.Models[i].Name(), b, a)
		}
	}
	if _, err := LoadEnsemble(t.TempDir()); err == nil {
		t.Error("LoadEnsemble accepted an empty dir")
	}
}

func TestGBDTIntrospection(t *testing.T) {
	_, ens, _ := fixture(t)
	xgb := ens.Model(NameXGBoost)
	train, eval, ok := GBDTLossCurves(xgb)
	if !ok || len(train) == 0 || len(eval) == 0 {
		t.Error("no loss curves from the XGBoost-variant model (Fig. 16 input)")
	}
	gain, ok := FeatureGain(xgb)
	if !ok || len(gain) != int(darshan.NumCounters) {
		t.Error("no feature gains")
	}
	if _, _, ok := GBDTLossCurves(ens.Model(NameMLP)); ok {
		t.Error("MLP reported GBDT loss curves")
	}
}

func TestDiagnoseErrors(t *testing.T) {
	empty := &Ensemble{}
	if _, err := empty.Diagnose(&darshan.Record{}, DefaultDiagnoseOptions()); err == nil {
		t.Error("empty ensemble diagnosed")
	}
	_, ens, _ := fixture(t)
	bad := DefaultDiagnoseOptions()
	bad.Interpreter = "magic"
	if _, err := ens.Diagnose(&darshan.Record{}, bad); err == nil {
		t.Error("unknown interpreter accepted")
	}
	if _, _, err := TrainEnsemble(&features.Frame{X: nil, Y: nil}, DefaultTrainOptions()); err == nil {
		t.Error("TrainEnsemble accepted tiny frame")
	}
}

func TestDiagnoseAllZeroRecord(t *testing.T) {
	_, ens, _ := fixture(t)
	diag, err := ens.Diagnose(&darshan.Record{}, fastDiagOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range diag.Average.Contributions {
		if c != 0 {
			t.Fatal("all-zero record got non-zero contributions")
		}
	}
	if len(diag.Bottlenecks()) != 0 {
		t.Error("all-zero record has bottlenecks")
	}
}

func TestTrainSubsetOfModels(t *testing.T) {
	frame, _, _ := fixture(t)
	opts := DefaultTrainOptions()
	opts.Fast = true
	opts.Models = []string{NameLightGBM}
	ens, report, err := TrainEnsemble(frame, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ens.Models) != 1 || report.Models[0].Name != NameLightGBM {
		t.Errorf("subset training broken: %+v", report)
	}
	opts.Models = []string{"bogus"}
	if _, _, err := TrainEnsemble(frame, opts); err == nil {
		t.Error("bogus model name accepted")
	}
}

func TestDiagnoseWithTreeSHAP(t *testing.T) {
	_, ens, _ := fixture(t)
	rec := slowJob(t)
	opts := fastDiagOpts()
	opts.Interpreter = InterpreterTreeSHAP
	diag, err := ens.Diagnose(rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.IsRobust() {
		t.Error("TreeSHAP diagnosis not robust")
	}
	// The GBDT models' values must be exact (zero additivity error).
	for _, md := range diag.PerModel {
		switch md.Name {
		case NameXGBoost, NameLightGBM, NameCatBoost:
			if md.AdditivityErr > 1e-9 {
				t.Errorf("%s additivity error %v under TreeSHAP", md.Name, md.AdditivityErr)
			}
		}
	}
	// TreeSHAP and Kernel SHAP (sampled) must broadly agree on the GBDTs.
	kdiag, err := ens.Diagnose(rec, fastDiagOpts())
	if err != nil {
		t.Fatal(err)
	}
	for mi, md := range diag.PerModel {
		if md.Name != NameLightGBM {
			continue
		}
		for j := range md.Contributions {
			d := md.Contributions[j] - kdiag.PerModel[mi].Contributions[j]
			if d < 0 {
				d = -d
			}
			if d > 0.05 {
				t.Errorf("lightgbm phi[%d]: tree %.4f vs kernel %.4f",
					j, md.Contributions[j], kdiag.PerModel[mi].Contributions[j])
			}
		}
	}
}
