package core

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
)

// Table2Row is one row of the paper's Table 2: the RMSE of a performance
// function (Eq. 3) and of the matching diagnosis function (Eq. 5).
type Table2Row struct {
	Name           string
	PredictionRMSE float64
	DiagnosisRMSE  float64
}

// Table2 is the reproduced Table 2.
type Table2 struct {
	Rows []Table2Row
	// JobsEvaluated is the eval subsample size used for the SHAP-based
	// diagnosis RMSE (full SHAP over millions of jobs is not what the
	// metric needs).
	JobsEvaluated int
}

// Row returns the row with the given name, or nil.
func (t *Table2) Row(name string) *Table2Row {
	for i := range t.Rows {
		if t.Rows[i].Name == name {
			return &t.Rows[i]
		}
	}
	return nil
}

// EvaluateTable2 reproduces Table 2 on the eval frame: per-model prediction
// and diagnosis RMSE, plus the Closest Method and Average Method rows. The
// diagnosis RMSE follows Eq. 5: the error of E_i + Σ_j C_j against the
// measured performance. maxJobs bounds the subsample diagnosed with SHAP
// (0 means all).
func EvaluateTable2(e *Ensemble, eval *features.Frame, maxJobs int, opts DiagnoseOptions) (*Table2, error) {
	if eval.Len() == 0 {
		return nil, fmt.Errorf("core: empty eval frame")
	}
	n := eval.Len()
	idx := rand.New(rand.NewSource(7)).Perm(n)
	if maxJobs > 0 && maxJobs < n {
		idx = idx[:maxJobs]
	}

	recs := make([]*darshan.Record, len(idx))
	for k, id := range idx {
		recs[k] = eval.Records[id]
	}
	diags, err := e.DiagnoseBatch(recs, opts)
	if err != nil {
		return nil, err
	}

	predSq := make([]float64, len(e.Models))
	diagSq := make([]float64, len(e.Models))
	var closestPredSq, closestDiagSq, avgPredSq, avgDiagSq float64

	for _, d := range diags {
		for mi := range d.PerModel {
			md := &d.PerModel[mi]
			pe := md.Predicted - d.Actual
			predSq[mi] += pe * pe
			de := diagValue(md) - d.Actual
			diagSq[mi] += de * de
		}
		ce := d.Closest.Predicted - d.Actual
		closestPredSq += ce * ce
		cd := diagValue(&d.Closest) - d.Actual
		closestDiagSq += cd * cd
		ae := d.Average.Predicted - d.Actual
		avgPredSq += ae * ae
		ad := diagValue(&d.Average) - d.Actual
		avgDiagSq += ad * ad
	}

	inv := 1 / float64(len(idx))
	t := &Table2{JobsEvaluated: len(idx)}
	for mi, m := range e.Models {
		t.Rows = append(t.Rows, Table2Row{
			Name:           m.Name(),
			PredictionRMSE: math.Sqrt(predSq[mi] * inv),
			DiagnosisRMSE:  math.Sqrt(diagSq[mi] * inv),
		})
	}
	t.Rows = append(t.Rows,
		Table2Row{Name: "closest", PredictionRMSE: math.Sqrt(closestPredSq * inv),
			DiagnosisRMSE: math.Sqrt(closestDiagSq * inv)},
		Table2Row{Name: "average", PredictionRMSE: math.Sqrt(avgPredSq * inv),
			DiagnosisRMSE: math.Sqrt(avgDiagSq * inv)},
	)
	return t, nil
}

// diagValue is E_i + Σ_j C_j of Eq. 5.
func diagValue(md *ModelDiagnosis) float64 {
	s := md.Base
	for _, c := range md.Contributions {
		s += c
	}
	return s
}
