package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The model registry stores pre-trained performance functions on disk, the
// way the AIIO web service manages its models (Section 3.4 / Fig. 17): one
// gob file per model plus a JSON manifest.

// manifestEntry describes one stored model.
type manifestEntry struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	File string `json:"file"`
}

type manifest struct {
	Models []manifestEntry `json:"models"`
}

const manifestName = "manifest.json"

// SaveEnsemble writes every model of e into dir (created if missing).
func SaveEnsemble(dir string, e *Ensemble) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: create registry dir: %w", err)
	}
	var man manifest
	for _, m := range e.Models {
		file := m.Name() + ".gob"
		f, err := os.Create(filepath.Join(dir, file))
		if err != nil {
			return fmt.Errorf("core: create model file: %w", err)
		}
		if err := m.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		man.Models = append(man.Models, manifestEntry{Name: m.Name(), Kind: m.Kind(), File: file})
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), data, 0o644); err != nil {
		return fmt.Errorf("core: write manifest: %w", err)
	}
	return nil
}

// LoadEnsemble reads a registry written by SaveEnsemble.
func LoadEnsemble(dir string) (*Ensemble, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("core: read manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("core: parse manifest: %w", err)
	}
	e := &Ensemble{}
	for _, entry := range man.Models {
		f, err := os.Open(filepath.Join(dir, entry.File))
		if err != nil {
			return nil, fmt.Errorf("core: open model %s: %w", entry.Name, err)
		}
		m, err := LoadModel(entry.Name, entry.Kind, f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("core: load model %s: %w", entry.Name, err)
		}
		e.Models = append(e.Models, m)
	}
	if len(e.Models) == 0 {
		return nil, fmt.Errorf("core: registry %s holds no models", dir)
	}
	return e, nil
}
