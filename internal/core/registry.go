package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The model registry stores pre-trained performance functions on disk, the
// way the AIIO web service manages its models (Section 3.4 / Fig. 17). It
// is a crash-safe, versioned store: each save commits a complete model set
// as a new immutable generation, every durable step goes through a temp
// file (or directory) + fsync + atomic rename, and the manifest carries a
// SHA-256 per model file so a load can detect bit rot or a torn write and
// fall back to the last good generation instead of serving a corrupt
// model. On-disk layout:
//
//	dir/
//	  CURRENT             ← "N\n", the committed generation (atomic rename)
//	  generations/
//	    000001/
//	      manifest.json   ← {"generation":1,"models":[{name,kind,file,sha256}]}
//	      xgboost.gob
//	      ...
//	    000002/
//	      ...
//
// The commit point of a save is the rename of the finished temp directory
// to generations/N; CURRENT then flips to N. A crash anywhere in between
// leaves either a stray .tmp-* directory (swept by the next save) or a
// committed-but-not-current generation (adopted by the next load) — never
// a partially visible model set.
//
// The pre-versioning flat layout (manifest.json and gobs directly in dir,
// no checksums) still loads, reported as generation 0 / legacy.

// ManifestEntry describes one stored model file. It is exported because the
// manifest is the unit of generation replication: a follower replica fetches
// a peer's manifest, then each model file, and verifies every SHA256 before
// the generation can be committed locally.
type ManifestEntry struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	File   string `json:"file"`
	SHA256 string `json:"sha256,omitempty"`
}

// CanaryRecord is the verdict of the canary gate that admitted a
// generation: before an incremental retrain commits, the candidate is
// shadow-evaluated against the serving ensemble on held-out recent jobs
// (internal/drift), and the numbers that justified the promotion are
// recorded here — the "which gate passed, at what confidence" provenance
// that flows into diagnosis advisories. A blocked candidate is never
// committed, so a manifest only ever carries a passing verdict (or none,
// for uploads and replication imports that bypass the gate).
type CanaryRecord struct {
	// Passed is whether the gate admitted the candidate.
	Passed bool `json:"passed"`
	// CandidateRMSE / ServingRMSE are the held-out errors (transformed
	// domain) of the new and incumbent ensembles; zero when the gate was
	// waived (no incumbent, or holdout below the trust minimum).
	CandidateRMSE float64 `json:"candidate_rmse,omitempty"`
	ServingRMSE   float64 `json:"serving_rmse,omitempty"`
	// Tolerance is the fractional slack the candidate was allowed.
	Tolerance float64 `json:"tolerance,omitempty"`
	// HoldoutJobs is how many held-out records the verdict rests on.
	HoldoutJobs int `json:"holdout_jobs"`
	// Reason is the human-readable verdict.
	Reason string `json:"reason,omitempty"`
	// EvaluatedUnix is when the gate ran.
	EvaluatedUnix int64 `json:"evaluated_unix,omitempty"`
}

// GenerationManifest is one committed generation's content listing.
type GenerationManifest struct {
	Generation uint64          `json:"generation,omitempty"`
	Models     []ManifestEntry `json:"models"`
	// Canary, when present, is the gate verdict that admitted this
	// generation. It does not participate in the fingerprint — two
	// replicas serving identical models are identical regardless of which
	// one ran the gate.
	Canary *CanaryRecord `json:"canary,omitempty"`
	// ReferenceFile names the drift-reference sidecar (the input
	// distribution snapshot frozen at training time) committed inside the
	// generation directory; empty when the generation was saved without
	// one. The sidecar is local provenance, not part of the replicated
	// model set.
	ReferenceFile string `json:"reference_file,omitempty"`
}

// Fingerprint is the content identity of a generation: the SHA-256 over the
// sorted (name, model checksum) pairs, independent of the local generation
// number. Two replicas serve the same model set iff their fingerprints
// match, no matter how their generation counters drifted. Empty when any
// model entry predates checksums (legacy layout).
func (m *GenerationManifest) Fingerprint() string {
	lines := make([]string, 0, len(m.Models))
	for _, e := range m.Models {
		if e.SHA256 == "" {
			return ""
		}
		lines = append(lines, e.Name+":"+e.SHA256)
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		io.WriteString(h, l)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

const (
	manifestName   = "manifest.json"
	referenceName  = "drift-reference.json"
	currentName    = "CURRENT"
	generationsDir = "generations"
	tmpPrefix      = ".tmp-"
)

// DefaultKeepGenerations is how many committed generations a save retains
// (the rest are pruned oldest-first). At least two always survive, so the
// fall-back generation for the newest is never pruned away.
const DefaultKeepGenerations = 5

// Save hook steps, in the order a save hits them. A fault-injection hook
// (internal/faults) aborts the save at one of these points to simulate a
// crash; production stores have no hook.
const (
	StepModelWrite    = "model-write"    // before streaming one model's bytes
	StepModelSync     = "model-sync"     // before fsyncing one model file
	StepManifestWrite = "manifest-write" // before writing the manifest
	StepGenCommit     = "gen-commit"     // before renaming the temp dir to generations/N
	StepCurrentCommit = "current-commit" // before renaming CURRENT into place
)

// Store is a versioned on-disk model registry rooted at a directory.
type Store struct {
	dir string
	// Keep bounds how many generations survive a save (DefaultKeepGenerations
	// when 0; values < 2 are raised to 2 so a fallback always exists).
	Keep int

	// saveMu serializes saves through one Store (concurrent web-service
	// uploads would otherwise race on the same next-generation number).
	saveMu sync.Mutex

	// hook, when non-nil, runs before each durable step of a save and
	// aborts it on error — the fault-injection seam for crash drills.
	hook func(step, path string) error
}

// OpenStore returns a store rooted at dir. The directory need not exist
// yet; the first Save creates it.
func OpenStore(dir string) *Store { return &Store{dir: dir} }

// Dir is the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetSaveHook installs a fault-injection hook called before every durable
// save step with (step, path). A non-nil error aborts the save at that
// point, leaving whatever partial state a real crash would leave. Tests
// only; a nil hook (the default) is a no-op.
func (s *Store) SetSaveHook(h func(step, path string) error) { s.hook = h }

func (s *Store) step(step, path string) error {
	if s.hook == nil {
		return nil
	}
	if err := s.hook(step, path); err != nil {
		return fmt.Errorf("core: save aborted at %s (%s): %w", step, path, err)
	}
	return nil
}

func (s *Store) keep() int {
	k := s.Keep
	if k == 0 {
		k = DefaultKeepGenerations
	}
	if k < 2 {
		k = 2
	}
	return k
}

func genDirName(gen uint64) string { return fmt.Sprintf("%06d", gen) }

// Generations lists the committed generation numbers, ascending. A store
// with only a legacy flat layout (or nothing at all) returns an empty
// list.
func (s *Store) Generations() ([]uint64, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, generationsDir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: read generations: %w", err)
	}
	var gens []uint64
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), tmpPrefix) {
			continue
		}
		n, err := strconv.ParseUint(e.Name(), 10, 64)
		if err != nil {
			continue // foreign directory; not ours to judge
		}
		gens = append(gens, n)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// current reads the CURRENT pointer; ok is false when it is missing or
// unreadable (a crash window — the caller falls back to the highest
// committed generation).
func (s *Store) current() (gen uint64, ok bool) {
	data, err := os.ReadFile(filepath.Join(s.dir, currentName))
	if err != nil {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// GenerationExtra is the optional provenance committed alongside a
// generation: the canary verdict that admitted it and the serialized
// drift-reference snapshot (internal/drift.Reference) of the training
// distribution. Both land inside the generation's temp directory before
// the commit rename, so they are exactly as crash-safe as the models.
type GenerationExtra struct {
	Canary    *CanaryRecord
	Reference []byte
}

// Save commits every model of e as a new generation and flips CURRENT to
// it, returning the new generation number. The write is crash-safe: until
// the final renames land, loads keep seeing the previous generation.
func (s *Store) Save(e *Ensemble) (uint64, error) { return s.SaveDetailed(e, nil) }

// SaveDetailed is Save with generation provenance attached.
func (s *Store) SaveDetailed(e *Ensemble, extra *GenerationExtra) (uint64, error) {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	gensRoot := filepath.Join(s.dir, generationsDir)
	if err := os.MkdirAll(gensRoot, 0o755); err != nil {
		return 0, fmt.Errorf("core: create registry dir: %w", err)
	}
	// Sweep debris from crashed saves; their temp names can never collide
	// with a committed generation.
	if entries, err := os.ReadDir(gensRoot); err == nil {
		for _, ent := range entries {
			if strings.HasPrefix(ent.Name(), tmpPrefix) {
				os.RemoveAll(filepath.Join(gensRoot, ent.Name()))
			}
		}
	}
	gens, err := s.Generations()
	if err != nil {
		return 0, err
	}
	next := uint64(1)
	if len(gens) > 0 {
		next = gens[len(gens)-1] + 1
	}
	if cur, ok := s.current(); ok && cur >= next {
		next = cur + 1
	}

	tmpDir := filepath.Join(gensRoot, tmpPrefix+genDirName(next))
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return 0, fmt.Errorf("core: create temp generation: %w", err)
	}
	man := GenerationManifest{Generation: next}
	for _, m := range e.Models {
		file := m.Name() + ".gob"
		path := filepath.Join(tmpDir, file)
		if err := s.step(StepModelWrite, path); err != nil {
			return 0, err
		}
		sum, err := s.writeModelFile(path, m)
		if err != nil {
			return 0, err
		}
		man.Models = append(man.Models, ManifestEntry{
			Name: m.Name(), Kind: m.Kind(), File: file, SHA256: sum,
		})
	}
	if extra != nil {
		man.Canary = extra.Canary
		if len(extra.Reference) > 0 {
			if err := writeFileSync(filepath.Join(tmpDir, referenceName), extra.Reference); err != nil {
				return 0, fmt.Errorf("core: write drift reference: %w", err)
			}
			man.ReferenceFile = referenceName
		}
	}
	manPath := filepath.Join(tmpDir, manifestName)
	if err := s.step(StepManifestWrite, manPath); err != nil {
		return 0, err
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return 0, err
	}
	if err := writeFileSync(manPath, data); err != nil {
		return 0, fmt.Errorf("core: write manifest: %w", err)
	}
	// Commit point: the finished generation appears atomically.
	genPath := filepath.Join(gensRoot, genDirName(next))
	if err := s.step(StepGenCommit, genPath); err != nil {
		return 0, err
	}
	if err := os.Rename(tmpDir, genPath); err != nil {
		return 0, fmt.Errorf("core: commit generation %d: %w", next, err)
	}
	syncDir(gensRoot)
	// Flip CURRENT via its own temp + rename.
	curPath := filepath.Join(s.dir, currentName)
	if err := s.step(StepCurrentCommit, curPath); err != nil {
		return 0, err
	}
	tmpCur := curPath + ".tmp"
	if err := writeFileSync(tmpCur, []byte(strconv.FormatUint(next, 10)+"\n")); err != nil {
		return 0, fmt.Errorf("core: write CURRENT: %w", err)
	}
	if err := os.Rename(tmpCur, curPath); err != nil {
		return 0, fmt.Errorf("core: commit CURRENT: %w", err)
	}
	syncDir(s.dir)
	s.prune(next)
	return next, nil
}

// writeModelFile streams one model to path (fsynced), returning its
// SHA-256 hex digest.
func (s *Store) writeModelFile(path string, m Model) (string, error) {
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("core: create model file: %w", err)
	}
	h := sha256.New()
	if err := m.Save(io.MultiWriter(f, h)); err != nil {
		f.Close()
		return "", err
	}
	if err := s.step(StepModelSync, path); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", fmt.Errorf("core: sync model file: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// prune removes committed generations older than the newest keep()-many.
// Best effort: a prune failure never fails the save that triggered it.
func (s *Store) prune(newest uint64) {
	gens, err := s.Generations()
	if err != nil || len(gens) <= s.keep() {
		return
	}
	for _, g := range gens[:len(gens)-s.keep()] {
		if g == newest {
			continue
		}
		os.RemoveAll(filepath.Join(s.dir, generationsDir, genDirName(g)))
	}
}

// GenerationError records why one generation was rejected during a load.
type GenerationError struct {
	Generation uint64 `json:"generation"`
	Err        string `json:"error"`
}

// LoadReport describes which generation a Load served and what it had to
// skip to get there.
type LoadReport struct {
	// Generation is the generation actually loaded (0 for a legacy flat
	// registry).
	Generation uint64 `json:"generation"`
	// Legacy is true when the store held only the pre-versioning flat
	// layout (no checksums to verify).
	Legacy bool `json:"legacy,omitempty"`
	// FellBack is true when the preferred (CURRENT / newest) generation
	// failed verification and an older one was served instead.
	FellBack bool `json:"fell_back,omitempty"`
	// Rejected lists every generation that failed verification, newest
	// first.
	Rejected []GenerationError `json:"rejected,omitempty"`
	// Fingerprint is the content identity of the loaded generation (see
	// GenerationManifest.Fingerprint); empty for legacy layouts.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Load reads the newest verifiable generation: checksums are recomputed
// for every model file and a mismatch (bit rot, torn write) rejects the
// whole generation and falls back to the next older one. The report says
// what was served and what was skipped.
func (s *Store) Load() (*Ensemble, *LoadReport, error) {
	gens, err := s.Generations()
	if err != nil {
		return nil, nil, err
	}
	if len(gens) == 0 {
		// No versioned generations: legacy flat layout or nothing.
		e, err := loadFlat(s.dir)
		if err != nil {
			return nil, nil, err
		}
		return e, &LoadReport{Generation: 0, Legacy: true}, nil
	}
	// Prefer CURRENT when it names a committed generation; a missing or
	// stale CURRENT (crash between the two commits) starts at the newest.
	start := gens[len(gens)-1]
	if cur, ok := s.current(); ok {
		for _, g := range gens {
			if g == cur {
				start = cur
				break
			}
		}
	}
	rep := &LoadReport{}
	for i := len(gens) - 1; i >= 0; i-- {
		gen := gens[i]
		if gen > start {
			continue
		}
		e, man, err := s.loadGeneration(gen)
		if err != nil {
			rep.Rejected = append(rep.Rejected, GenerationError{Generation: gen, Err: err.Error()})
			continue
		}
		rep.Generation = gen
		rep.FellBack = len(rep.Rejected) > 0
		rep.Fingerprint = man.Fingerprint()
		return e, rep, nil
	}
	return nil, nil, fmt.Errorf("core: registry %s: no loadable generation (%d rejected, newest: %s)",
		s.dir, len(rep.Rejected), rep.Rejected[0].Err)
}

// loadGeneration verifies and decodes one committed generation.
func (s *Store) loadGeneration(gen uint64) (*Ensemble, *GenerationManifest, error) {
	dir := filepath.Join(s.dir, generationsDir, genDirName(gen))
	man, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, nil, err
	}
	if man.Generation != 0 && man.Generation != gen {
		return nil, nil, fmt.Errorf("manifest generation %d does not match directory %d", man.Generation, gen)
	}
	e := &Ensemble{}
	for _, entry := range man.Models {
		raw, err := os.ReadFile(filepath.Join(dir, entry.File))
		if err != nil {
			return nil, nil, fmt.Errorf("read model %s: %w", entry.Name, err)
		}
		if entry.SHA256 != "" {
			sum := sha256.Sum256(raw)
			if got := hex.EncodeToString(sum[:]); got != entry.SHA256 {
				return nil, nil, fmt.Errorf("model %s: checksum mismatch (manifest %s…, file %s…)",
					entry.Name, entry.SHA256[:12], got[:12])
			}
		}
		m, err := LoadModel(entry.Name, entry.Kind, bytes.NewReader(raw))
		if err != nil {
			return nil, nil, fmt.Errorf("load model %s: %w", entry.Name, err)
		}
		e.Models = append(e.Models, m)
	}
	if len(e.Models) == 0 {
		return nil, nil, fmt.Errorf("generation %d holds no models", gen)
	}
	return e, man, nil
}

// readManifest reads and parses one manifest.json.
func readManifest(path string) (*GenerationManifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read manifest: %w", err)
	}
	var man GenerationManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("parse manifest: %w", err)
	}
	return &man, nil
}

// CurrentGeneration resolves the generation a Load would prefer: CURRENT
// when it names a committed generation, otherwise the newest committed one.
// Zero (with ok=false) when the store holds no versioned generations.
func (s *Store) CurrentGeneration() (gen uint64, ok bool) {
	gens, err := s.Generations()
	if err != nil || len(gens) == 0 {
		return 0, false
	}
	if cur, curOK := s.current(); curOK {
		for _, g := range gens {
			if g == cur {
				return cur, true
			}
		}
	}
	return gens[len(gens)-1], true
}

// Manifest reads one committed generation's manifest. It is the first half
// of the replication fetch protocol: a follower downloads this listing,
// then each named file, and verifies the SHA256s before committing.
func (s *Store) Manifest(gen uint64) (*GenerationManifest, error) {
	man, err := readManifest(filepath.Join(s.dir, generationsDir, genDirName(gen), manifestName))
	if err != nil {
		return nil, fmt.Errorf("core: generation %d: %w", gen, err)
	}
	return man, nil
}

// OpenModelFile opens one model file of a committed generation for
// streaming. file must exactly match a manifest entry's File field — any
// other name (in particular anything with a path separator) is refused, so
// the replication endpoint cannot be walked out of the generation
// directory.
func (s *Store) OpenModelFile(gen uint64, file string) (io.ReadCloser, error) {
	man, err := s.Manifest(gen)
	if err != nil {
		return nil, err
	}
	for _, e := range man.Models {
		if e.File == file {
			f, err := os.Open(filepath.Join(s.dir, generationsDir, genDirName(gen), file))
			if err != nil {
				return nil, fmt.Errorf("core: open model file: %w", err)
			}
			return f, nil
		}
	}
	return nil, fmt.Errorf("core: generation %d has no model file %q", gen, file)
}

// LoadGeneration verifies (checksums recomputed) and decodes one specific
// committed generation, returning its manifest alongside the models.
func (s *Store) LoadGeneration(gen uint64) (*Ensemble, *GenerationManifest, error) {
	e, man, err := s.loadGeneration(gen)
	if err != nil {
		return nil, nil, fmt.Errorf("core: generation %d: %w", gen, err)
	}
	return e, man, nil
}

// Reference reads one committed generation's drift-reference sidecar (the
// training-time input distribution snapshot). Nil with no error when the
// generation was saved without one — legacy generations, uploads, and
// replication imports have no reference, and the drift monitor self-arms
// from live traffic instead.
func (s *Store) Reference(gen uint64) ([]byte, error) {
	man, err := s.Manifest(gen)
	if err != nil {
		return nil, err
	}
	if man.ReferenceFile == "" {
		return nil, nil
	}
	if strings.ContainsAny(man.ReferenceFile, "/\\") {
		return nil, fmt.Errorf("core: generation %d: hostile reference file name %q", gen, man.ReferenceFile)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, generationsDir, genDirName(gen), man.ReferenceFile))
	if err != nil {
		return nil, fmt.Errorf("core: generation %d: read drift reference: %w", gen, err)
	}
	return data, nil
}

// SetCurrent flips CURRENT to an already-committed generation — the
// registry half of an automatic rollback: the post-promotion watch demotes
// a regressing generation by pointing CURRENT back at its predecessor, so
// a restart loads the known-good set, while the regressing generation's
// files stay on disk for the operator. The flip goes through the same
// temp + fsync + rename as a save; a crash mid-flip leaves the old CURRENT.
func (s *Store) SetCurrent(gen uint64) error {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	gens, err := s.Generations()
	if err != nil {
		return err
	}
	committed := false
	for _, g := range gens {
		if g == gen {
			committed = true
			break
		}
	}
	if !committed {
		return fmt.Errorf("core: set current: generation %d is not committed", gen)
	}
	curPath := filepath.Join(s.dir, currentName)
	if err := s.step(StepCurrentCommit, curPath); err != nil {
		return err
	}
	tmpCur := curPath + ".tmp"
	if err := writeFileSync(tmpCur, []byte(strconv.FormatUint(gen, 10)+"\n")); err != nil {
		return fmt.Errorf("core: write CURRENT: %w", err)
	}
	if err := os.Rename(tmpCur, curPath); err != nil {
		return fmt.Errorf("core: commit CURRENT: %w", err)
	}
	syncDir(s.dir)
	return nil
}

// ImportGeneration commits a generation replicated from a peer. man is the
// peer's manifest; fetch opens each named model file (typically an HTTP GET
// against the peer's /api/v1/generations/{id}/files/{file}). Every file is
// streamed into a temp directory while its SHA-256 is recomputed, and a
// mismatch against the manifest — a torn transfer, a corrupt peer, bit rot
// in flight — aborts the import before anything is committed: the rename
// that makes the generation visible only happens after every checksum
// verified. The committed generation number is local (the peer's number
// when the local history hasn't passed it, the next free number otherwise);
// the manifest is rewritten to match, which leaves the fingerprint — the
// content identity replication converges on — untouched.
func (s *Store) ImportGeneration(man *GenerationManifest, fetch func(file string) (io.ReadCloser, error)) (uint64, error) {
	if len(man.Models) == 0 {
		return 0, fmt.Errorf("core: import: peer manifest holds no models")
	}
	for _, e := range man.Models {
		if e.SHA256 == "" {
			return 0, fmt.Errorf("core: import: model %s has no checksum; an unverifiable generation cannot be replicated", e.Name)
		}
	}
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	gensRoot := filepath.Join(s.dir, generationsDir)
	if err := os.MkdirAll(gensRoot, 0o755); err != nil {
		return 0, fmt.Errorf("core: create registry dir: %w", err)
	}
	gens, err := s.Generations()
	if err != nil {
		return 0, err
	}
	target := uint64(1)
	if len(gens) > 0 {
		target = gens[len(gens)-1] + 1
	}
	if cur, ok := s.current(); ok && cur >= target {
		target = cur + 1
	}
	// Adopt the peer's number when it is ahead of local history, so fleet
	// generation counters converge instead of drifting apart one import at
	// a time.
	if man.Generation > target {
		target = man.Generation
	}
	tmpDir := filepath.Join(gensRoot, tmpPrefix+genDirName(target))
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return 0, fmt.Errorf("core: create temp generation: %w", err)
	}
	// Any exit before the commit rename leaves only this temp directory,
	// which the next save sweeps; a torn transfer can never be activated.
	defer os.RemoveAll(tmpDir)
	// The canary verdict is content provenance and travels with the
	// models; the drift-reference sidecar does not replicate (followers
	// self-arm from their own traffic), so ReferenceFile is dropped.
	local := GenerationManifest{Generation: target, Models: man.Models, Canary: man.Canary}
	for _, entry := range man.Models {
		if err := s.step(StepModelWrite, filepath.Join(tmpDir, entry.File)); err != nil {
			return 0, err
		}
		if err := fetchVerified(tmpDir, entry, fetch); err != nil {
			return 0, err
		}
	}
	manPath := filepath.Join(tmpDir, manifestName)
	if err := s.step(StepManifestWrite, manPath); err != nil {
		return 0, err
	}
	data, err := json.MarshalIndent(&local, "", "  ")
	if err != nil {
		return 0, err
	}
	if err := writeFileSync(manPath, data); err != nil {
		return 0, fmt.Errorf("core: write manifest: %w", err)
	}
	genPath := filepath.Join(gensRoot, genDirName(target))
	if err := s.step(StepGenCommit, genPath); err != nil {
		return 0, err
	}
	if err := os.Rename(tmpDir, genPath); err != nil {
		return 0, fmt.Errorf("core: commit generation %d: %w", target, err)
	}
	syncDir(gensRoot)
	curPath := filepath.Join(s.dir, currentName)
	if err := s.step(StepCurrentCommit, curPath); err != nil {
		return 0, err
	}
	tmpCur := curPath + ".tmp"
	if err := writeFileSync(tmpCur, []byte(strconv.FormatUint(target, 10)+"\n")); err != nil {
		return 0, fmt.Errorf("core: write CURRENT: %w", err)
	}
	if err := os.Rename(tmpCur, curPath); err != nil {
		return 0, fmt.Errorf("core: commit CURRENT: %w", err)
	}
	syncDir(s.dir)
	s.prune(target)
	return target, nil
}

// fetchVerified streams one replicated model file into dir, fsyncs it, and
// fails on any checksum mismatch against the manifest entry.
func fetchVerified(dir string, entry ManifestEntry, fetch func(file string) (io.ReadCloser, error)) error {
	if entry.File == "" || strings.ContainsAny(entry.File, "/\\") || entry.File == "." || entry.File == ".." {
		return fmt.Errorf("core: import: model %s has hostile file name %q", entry.Name, entry.File)
	}
	src, err := fetch(entry.File)
	if err != nil {
		return fmt.Errorf("core: import: fetch %s: %w", entry.File, err)
	}
	defer src.Close()
	dst, err := os.Create(filepath.Join(dir, entry.File))
	if err != nil {
		return fmt.Errorf("core: import: create %s: %w", entry.File, err)
	}
	h := sha256.New()
	_, cpErr := io.Copy(io.MultiWriter(dst, h), src)
	if cpErr != nil {
		dst.Close()
		return fmt.Errorf("core: import: stream %s: %w", entry.File, cpErr)
	}
	if err := dst.Sync(); err != nil {
		dst.Close()
		return fmt.Errorf("core: import: sync %s: %w", entry.File, err)
	}
	if err := dst.Close(); err != nil {
		return err
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != entry.SHA256 {
		return fmt.Errorf("core: import: model %s checksum mismatch (manifest %s…, transfer %s…): torn or corrupt transfer",
			entry.Name, entry.SHA256[:12], got[:12])
	}
	return nil
}

// loadFlat reads the pre-versioning flat layout (no checksums).
func loadFlat(dir string) (*Ensemble, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("core: read manifest: %w", err)
	}
	var man GenerationManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("core: parse manifest: %w", err)
	}
	e := &Ensemble{}
	for _, entry := range man.Models {
		f, err := os.Open(filepath.Join(dir, entry.File))
		if err != nil {
			return nil, fmt.Errorf("core: open model %s: %w", entry.Name, err)
		}
		m, err := LoadModel(entry.Name, entry.Kind, f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("core: load model %s: %w", entry.Name, err)
		}
		e.Models = append(e.Models, m)
	}
	if len(e.Models) == 0 {
		return nil, fmt.Errorf("core: registry %s holds no models", dir)
	}
	return e, nil
}

// writeFileSync writes data to path and fsyncs before closing, so the
// bytes are durable before any rename that references them.
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-committed rename is durable.
// Best effort: some filesystems refuse directory fsync, and a failure
// here only widens the crash window rather than corrupting state.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// SaveEnsemble writes every model of e into dir (created if missing) as a
// new committed generation.
func SaveEnsemble(dir string, e *Ensemble) error {
	_, err := OpenStore(dir).Save(e)
	return err
}

// LoadEnsemble reads the newest verifiable generation of a registry
// written by SaveEnsemble (or a legacy flat registry), discarding the
// load report. Callers that must surface fallbacks use Store.Load.
func LoadEnsemble(dir string) (*Ensemble, error) {
	e, _, err := OpenStore(dir).Load()
	return e, err
}
