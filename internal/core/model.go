// Package core implements AIIO itself (Section 3): multiple AI
// prediction-based performance functions trained on the I/O log database,
// Kernel-SHAP-based diagnosis functions per model, and the two merging
// strategies of Section 3.3 — the Closest Method (Eq. 6) and the Average
// Method (Eq. 7–8) — with the sparsity-aware robustness rule built in.
package core

import (
	"fmt"
	"io"

	"github.com/hpc-repro/aiio/internal/gbdt"
	"github.com/hpc-repro/aiio/internal/linalg"
	"github.com/hpc-repro/aiio/internal/mlp"
	"github.com/hpc-repro/aiio/internal/tabnet"
)

// Model is one performance function: a regressor from transformed counters
// to transformed performance.
type Model interface {
	// Name identifies the model ("xgboost", "lightgbm", "catboost", "mlp",
	// "tabnet").
	Name() string
	// Kind is the serialization family ("gbdt", "mlp", "tabnet").
	Kind() string
	// Predict maps one transformed counter vector to predicted transformed
	// performance.
	Predict(x []float64) float64
	// PredictBatch predicts every row of x.
	PredictBatch(x *linalg.Matrix) []float64
	// Save serializes the model.
	Save(w io.Writer) error
}

// The five paper model names.
const (
	NameXGBoost  = "xgboost"
	NameLightGBM = "lightgbm"
	NameCatBoost = "catboost"
	NameMLP      = "mlp"
	NameTabNet   = "tabnet"
)

// ModelNames lists the five models in the paper's order of presentation.
func ModelNames() []string {
	return []string{NameXGBoost, NameLightGBM, NameCatBoost, NameMLP, NameTabNet}
}

// gbdtModel adapts a gbdt.Model.
type gbdtModel struct {
	name string
	m    *gbdt.Model
}

func (g *gbdtModel) Name() string                            { return g.name }
func (g *gbdtModel) Kind() string                            { return "gbdt" }
func (g *gbdtModel) Predict(x []float64) float64             { return g.m.Predict(x) }
func (g *gbdtModel) PredictBatch(x *linalg.Matrix) []float64 { return g.m.PredictBatch(x) }
func (g *gbdtModel) Save(w io.Writer) error                  { return g.m.Save(w) }

// mlpModel adapts an mlp.Model.
type mlpModel struct{ m *mlp.Model }

func (g *mlpModel) Name() string                            { return NameMLP }
func (g *mlpModel) Kind() string                            { return "mlp" }
func (g *mlpModel) Predict(x []float64) float64             { return g.m.Predict(x) }
func (g *mlpModel) PredictBatch(x *linalg.Matrix) []float64 { return g.m.PredictBatch(x) }
func (g *mlpModel) Save(w io.Writer) error                  { return g.m.Save(w) }

// tabnetModel adapts a tabnet.Model.
type tabnetModel struct{ m *tabnet.Model }

func (g *tabnetModel) Name() string                            { return NameTabNet }
func (g *tabnetModel) Kind() string                            { return "tabnet" }
func (g *tabnetModel) Predict(x []float64) float64             { return g.m.Predict(x) }
func (g *tabnetModel) PredictBatch(x *linalg.Matrix) []float64 { return g.m.PredictBatch(x) }
func (g *tabnetModel) Save(w io.Writer) error                  { return g.m.Save(w) }

// LoadModel deserializes a model of the given name and kind.
func LoadModel(name, kind string, r io.Reader) (Model, error) {
	switch kind {
	case "gbdt":
		m, err := gbdt.Load(r)
		if err != nil {
			return nil, err
		}
		return &gbdtModel{name: name, m: m}, nil
	case "mlp":
		m, err := mlp.Load(r)
		if err != nil {
			return nil, err
		}
		return &mlpModel{m: m}, nil
	case "tabnet":
		m, err := tabnet.Load(r)
		if err != nil {
			return nil, err
		}
		return &tabnetModel{m: m}, nil
	}
	return nil, fmt.Errorf("core: unknown model kind %q", kind)
}

// TreeModel exposes the underlying boosted ensemble of a GBDT-backed model
// for the TreeSHAP fast path; ok is false for the neural models.
func TreeModel(m Model) (*gbdt.Model, bool) {
	g, isGBDT := m.(*gbdtModel)
	if !isGBDT {
		return nil, false
	}
	return g.m, true
}

// MLPModel exposes the underlying network of an MLP-backed model for the
// warm-start path; ok is false for other families.
func MLPModel(m Model) (*mlp.Model, bool) {
	n, isMLP := m.(*mlpModel)
	if !isMLP {
		return nil, false
	}
	return n.m, true
}

// TabNetModel exposes the underlying network of a TabNet-backed model for
// the warm-start path; ok is false for other families.
func TabNetModel(m Model) (*tabnet.Model, bool) {
	n, isTabNet := m.(*tabnetModel)
	if !isTabNet {
		return nil, false
	}
	return n.m, true
}

// GBDTLossCurves exposes the training/eval RMSE curves of a boosted model
// (used by the Fig. 16 reproduction); ok is false for non-GBDT models.
func GBDTLossCurves(m Model) (train, eval []float64, ok bool) {
	g, isGBDT := m.(*gbdtModel)
	if !isGBDT {
		return nil, nil, false
	}
	return g.m.TrainLoss, g.m.EvalLoss, true
}

// FeatureGain exposes a boosted model's per-feature split gain (global
// importance); ok is false for non-GBDT models.
func FeatureGain(m Model) (gain []float64, ok bool) {
	g, isGBDT := m.(*gbdtModel)
	if !isGBDT {
		return nil, false
	}
	return g.m.Gain, true
}
