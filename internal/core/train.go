package core

import (
	"context"
	"fmt"
	"log"
	"strings"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/gbdt"
	"github.com/hpc-repro/aiio/internal/mlp"
	"github.com/hpc-repro/aiio/internal/tabnet"
)

// logConstantCols names the counters whose training variance was zero. The
// standardizers clamp their Std to 1 (a no-op transform instead of a
// divide-by-zero NaN); naming the clamped counters in the training log
// makes degenerate datasets visible instead of silently absorbed.
func logConstantCols(model string, cols []int) {
	if len(cols) == 0 {
		return
	}
	names := make([]string, len(cols))
	for i, j := range cols {
		names[i] = darshan.CounterID(j).String()
	}
	log.Printf("core: %s: %d constant feature column(s), Std clamped to 1: %s",
		model, len(cols), strings.Join(names, ", "))
}

// TrainOptions configures ensemble training. The defaults follow the
// paper: all five models, shuffled 50/50 train/eval split, early stopping
// after 10 stale rounds, library-default hyperparameters.
type TrainOptions struct {
	// Models selects which of the five models to train; nil means all.
	Models []string
	// SplitFrac is the training fraction of the shuffled split.
	SplitFrac float64
	// Seed drives the split and each model's internal randomness.
	Seed int64
	// Fast shrinks the budgets (rounds/epochs) for tests and examples.
	Fast bool
	// GBDTRounds / NNEpochs override the budgets when > 0.
	GBDTRounds int
	NNEpochs   int
	// ReferenceKernels routes the net families' training through the
	// original per-row scalar loops instead of the vectorized kernel path
	// (the equivalence mode mirroring gbdt's DisableHistSubtraction) — for
	// parity tests and as the before-side baseline in training benchmarks.
	ReferenceKernels bool
	// WarmStart seeds each model from its counterpart in WarmFrom (the
	// previous generation) on a WarmBudgetFrac-scaled budget, per family:
	// gbdt continues boosting from the prior trees, mlp/tabnet start from
	// the prior tensors. A model whose family-level CanWarmStart gate
	// rejects the seed (schema change, architecture change, input or
	// bin-edge drift) falls back to a full-budget cold fit; the per-model
	// report records the decision.
	WarmStart bool
	// WarmFrom is the previous ensemble to warm from; nil disables warm
	// starting even when WarmStart is set.
	WarmFrom *Ensemble
	// WarmBudgetFrac scales the rounds/epochs budget of warm-started
	// models; <= 0 means DefaultWarmBudgetFrac.
	WarmBudgetFrac float64
}

// DefaultWarmBudgetFrac is the fraction of the cold budget a warm-started
// model trains for: the seed already encodes the stable structure, so the
// reduced run only has to absorb the new window.
const DefaultWarmBudgetFrac = 0.3

// DefaultTrainOptions returns the paper configuration.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{SplitFrac: 0.5, Seed: 1}
}

// ModelReport carries the per-model evaluation of the performance function
// (the "Prediction Func." column of Table 2).
type ModelReport struct {
	Name string
	// RMSE of the prediction function on the eval split (Eq. 3).
	PredictionRMSE float64
	// WarmStart reports whether this model was seeded from the previous
	// generation (and trained on the reduced budget).
	WarmStart bool
	// WarmFallback is the reason a requested warm start was refused for
	// this model ("" when warm started or never requested).
	WarmFallback string
}

// TrainReport summarizes ensemble training.
type TrainReport struct {
	Models    []ModelReport
	TrainSize int
	EvalSize  int
}

// Ensemble is the set of trained performance functions AIIO diagnoses with.
type Ensemble struct {
	Models []Model
}

// Model returns the trained model with the given name, or nil.
func (e *Ensemble) Model(name string) Model {
	for _, m := range e.Models {
		if m.Name() == name {
			return m
		}
	}
	return nil
}

// TrainEnsemble trains the selected performance functions on frame,
// using the paper's shuffled split for training and early-stopping
// evaluation, and reports each model's eval RMSE.
func TrainEnsemble(frame *features.Frame, opts TrainOptions) (*Ensemble, *TrainReport, error) {
	return TrainEnsembleContext(context.Background(), frame, opts)
}

// TrainEnsembleContext is TrainEnsemble with cooperative cancellation: ctx
// is checked before each model's fit, so a cancelled training run stops
// after the model in flight instead of fitting the rest of the ensemble.
// It also refuses a frame carrying NaN/Inf features (see Frame.Validate) —
// corrupt inputs must be quarantined or sanitized before training, never
// silently fitted.
func TrainEnsembleContext(ctx context.Context, frame *features.Frame, opts TrainOptions) (*Ensemble, *TrainReport, error) {
	if frame.Len() < 10 {
		return nil, nil, fmt.Errorf("core: dataset too small (%d records)", frame.Len())
	}
	if err := frame.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: refusing to train on corrupt features: %w", err)
	}
	if opts.SplitFrac <= 0 || opts.SplitFrac >= 1 {
		opts.SplitFrac = 0.5
	}
	names := opts.Models
	if len(names) == 0 {
		names = ModelNames()
	}
	train, eval := frame.Split(opts.Seed, opts.SplitFrac)

	gbdtRounds := 300
	nnEpochs := 200
	if opts.Fast {
		gbdtRounds = 60
		nnEpochs = 30
	}
	if opts.GBDTRounds > 0 {
		gbdtRounds = opts.GBDTRounds
	}
	if opts.NNEpochs > 0 {
		nnEpochs = opts.NNEpochs
	}

	warmFrac := opts.WarmBudgetFrac
	if warmFrac <= 0 {
		warmFrac = DefaultWarmBudgetFrac
	}
	// scaleBudget is the reduced budget of a warm-started model.
	scaleBudget := func(budget int) int {
		b := int(float64(budget)*warmFrac + 0.5)
		if b < 1 {
			b = 1
		}
		return b
	}
	// prior returns the previous generation's model of this name when warm
	// starting is requested, plus the fallback reason when there is none.
	prior := func(name string) (Model, string) {
		if !opts.WarmStart || opts.WarmFrom == nil {
			return nil, ""
		}
		pm := opts.WarmFrom.Model(name)
		if pm == nil {
			return nil, "no previous model of this name"
		}
		return pm, ""
	}

	ens := &Ensemble{}
	report := &TrainReport{TrainSize: train.Len(), EvalSize: eval.Len()}

	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("core: training cancelled before %s: %w", name, err)
		}
		var model Model
		warmUsed := false
		warmFallback := ""
		switch name {
		case NameXGBoost, NameLightGBM, NameCatBoost:
			variant := gbdt.LevelWise
			if name == NameLightGBM {
				variant = gbdt.LeafWise
			} else if name == NameCatBoost {
				variant = gbdt.Oblivious
			}
			cfg := gbdt.DefaultConfig(variant)
			cfg.Rounds = gbdtRounds
			cfg.Seed = opts.Seed
			var seed *gbdt.WarmSeed
			if pm, why := prior(name); pm != nil {
				if g, ok := TreeModel(pm); ok {
					var reason string
					if seed, reason = gbdt.CheckWarmStart(g, cfg, train.X, train.Y); seed != nil {
						cfg.Rounds = scaleBudget(gbdtRounds)
					} else {
						warmFallback = reason
					}
				} else {
					warmFallback = "previous model is a different family"
				}
			} else {
				warmFallback = why
			}
			var m *gbdt.Model
			var err error
			if seed != nil {
				warmUsed = true
				m, err = gbdt.TrainSeeded(cfg, train.X, train.Y, eval.X, eval.Y, seed)
			} else {
				m, err = gbdt.Train(cfg, train.X, train.Y, eval.X, eval.Y)
			}
			if err != nil {
				return nil, nil, fmt.Errorf("core: train %s: %w", name, err)
			}
			model = &gbdtModel{name: name, m: m}
		case NameMLP:
			cfg := mlp.DefaultConfig()
			cfg.Epochs = nnEpochs
			cfg.Seed = opts.Seed
			cfg.ReferenceKernels = opts.ReferenceKernels
			if opts.Fast {
				cfg.Hidden = []int{45, 24, 12}
			}
			var prev *mlp.Model
			if pm, why := prior(name); pm != nil {
				if n, ok := MLPModel(pm); ok {
					if canWarm, reason := mlp.CanWarmStart(n, cfg, train.X, train.Y); canWarm {
						prev = n
						cfg.Epochs = scaleBudget(nnEpochs)
					} else {
						warmFallback = reason
					}
				} else {
					warmFallback = "previous model is a different family"
				}
			} else {
				warmFallback = why
			}
			var m *mlp.Model
			var err error
			if prev != nil {
				warmUsed = true
				m, err = mlp.TrainWarm(cfg, train.X, train.Y, eval.X, eval.Y, prev)
			} else {
				m, err = mlp.Train(cfg, train.X, train.Y, eval.X, eval.Y)
			}
			if err != nil {
				return nil, nil, fmt.Errorf("core: train %s: %w", name, err)
			}
			logConstantCols(name, m.ConstantCols)
			model = &mlpModel{m: m}
		case NameTabNet:
			cfg := tabnet.DefaultConfig()
			cfg.Epochs = nnEpochs
			cfg.Seed = opts.Seed
			cfg.ReferenceKernels = opts.ReferenceKernels
			var prev *tabnet.Model
			if pm, why := prior(name); pm != nil {
				if n, ok := TabNetModel(pm); ok {
					if canWarm, reason := tabnet.CanWarmStart(n, cfg, train.X, train.Y); canWarm {
						prev = n
						cfg.Epochs = scaleBudget(nnEpochs)
					} else {
						warmFallback = reason
					}
				} else {
					warmFallback = "previous model is a different family"
				}
			} else {
				warmFallback = why
			}
			var m *tabnet.Model
			var err error
			if prev != nil {
				warmUsed = true
				m, err = tabnet.TrainWarm(cfg, train.X, train.Y, eval.X, eval.Y, prev)
			} else {
				m, err = tabnet.Train(cfg, train.X, train.Y, eval.X, eval.Y)
			}
			if err != nil {
				return nil, nil, fmt.Errorf("core: train %s: %w", name, err)
			}
			logConstantCols(name, m.ConstantCols)
			model = &tabnetModel{m: m}
		default:
			return nil, nil, fmt.Errorf("core: unknown model name %q", name)
		}
		ens.Models = append(ens.Models, model)
		report.Models = append(report.Models, ModelReport{
			Name:           name,
			PredictionRMSE: features.RMSE(model.PredictBatch(eval.X), eval.Y),
			WarmStart:      warmUsed,
			WarmFallback:   warmFallback,
		})
	}
	return ens, report, nil
}
