package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/lime"
	"github.com/hpc-repro/aiio/internal/parallel"
	"github.com/hpc-repro/aiio/internal/shap"
)

// Interpreter selects the AI interpretation technology behind the diagnosis
// function. The paper supports both but merges results only within one
// technology (their scales differ).
type Interpreter string

// The supported interpreters.
const (
	// InterpreterSHAP runs Kernel SHAP against every model (the paper's
	// model-agnostic default).
	InterpreterSHAP Interpreter = "shap"
	// InterpreterTreeSHAP uses the exact closed-form TreeSHAP for the
	// boosted-tree models and Kernel SHAP for the neural ones — the hybrid
	// the shap package applies automatically. Identical semantics (zero
	// background, interventional), exact values, much faster on trees.
	InterpreterTreeSHAP Interpreter = "treeshap"
	// InterpreterLIME runs LIME; its scale differs from SHAP and results
	// are never merged across interpreters (Section 3.3).
	InterpreterLIME Interpreter = "lime"
)

// DiagnoseOptions configures a diagnosis.
type DiagnoseOptions struct {
	Interpreter Interpreter
	// SHAPMode selects the estimator per model under the SHAP interpreters
	// (the -shap-mode flag): shap.ModeAuto routes the boosted-tree models to
	// the exact TreeSHAP fast path and the neural ones to Kernel SHAP;
	// shap.ModeKernel forces Kernel SHAP everywhere (the paper's uniform
	// setup); shap.ModeTree requires the tree path, so a neural model's
	// diagnosis fails and the merge degrades to the tree survivors. Empty
	// derives the mode from Interpreter: InterpreterSHAP → kernel,
	// InterpreterTreeSHAP → auto.
	SHAPMode shap.Mode
	SHAP     shap.Config
	LIME     lime.Config
	// Parallelism bounds the diagnosis worker pool: the concurrent
	// per-model explanations inside Diagnose and the per-job workers of
	// DiagnoseBatch. 0 (the default) means runtime.GOMAXPROCS(0); 1 forces
	// the sequential path. The output is bitwise-identical at every
	// setting: each model's explainer is independently seeded and the
	// Eq. 6/7 merges always reduce in model order.
	Parallelism int
}

// DefaultDiagnoseOptions uses SHAP with automatic estimator selection:
// exact TreeSHAP for the three boosted-tree models, Kernel SHAP (paper
// defaults) for MLP and TabNet. Set SHAPMode to shap.ModeKernel for the
// paper's uniform model-agnostic setup.
func DefaultDiagnoseOptions() DiagnoseOptions {
	return DiagnoseOptions{
		Interpreter: InterpreterSHAP,
		SHAPMode:    shap.ModeAuto,
		SHAP:        shap.DefaultConfig(),
		LIME:        lime.DefaultConfig(),
	}
}

// ModelDiagnosis is the diagnosis of one job under one performance function
// (or a merged pseudo-model).
type ModelDiagnosis struct {
	Name string
	// Predicted is the model's transformed performance prediction;
	// PredictedMiBps is the same in MiB/s.
	Predicted      float64
	PredictedMiBps float64
	// Base is the expected performance E (f at the zero background).
	Base float64
	// Contributions are the per-counter C_j values (Eq. 4); exactly zero
	// for counters that are zero in the log (robustness).
	Contributions []float64
	// AdditivityErr is |Base + ΣC − Predicted| (local accuracy residual).
	AdditivityErr float64
	// Err is the failure that prevented this model's diagnosis — a
	// recovered panic, an injected error, or a non-finite output ("" on
	// success). A failed model has nil Contributions and is excluded from
	// the Eq. 6/7 merges; the surviving subset carries the diagnosis.
	Err string
}

// Failed reports whether this model's diagnosis was skipped.
func (md *ModelDiagnosis) Failed() bool { return md.Err != "" }

// Diagnosis is the full AIIO output for one job.
type Diagnosis struct {
	Record *darshan.Record
	// Actual is the transformed measured performance (the Eq. 1 tag after
	// Eq. 2); ActualMiBps is the raw tag.
	Actual      float64
	ActualMiBps float64
	// PerModel holds each performance function's diagnosis.
	PerModel []ModelDiagnosis
	// ClosestIndex is the Eq. 6 pick: the model whose prediction is nearest
	// the measured performance.
	ClosestIndex int
	// Weights are the Eq. 8 accuracy weights (sum to 1), aligned with
	// PerModel.
	Weights []float64
	// Closest and Average are the two merged diagnoses of Section 3.3.
	Closest ModelDiagnosis
	Average ModelDiagnosis
	// Degraded reports that at least one model's diagnosis failed and the
	// merges ran over the surviving subset only. The failed models keep
	// their PerModel slots with Err set and weight 0.
	Degraded bool
}

// SkippedModels returns the names of models whose diagnosis failed, in
// model order; empty when the diagnosis is complete.
func (d *Diagnosis) SkippedModels() []string {
	var names []string
	for i := range d.PerModel {
		if d.PerModel[i].Failed() {
			names = append(names, d.PerModel[i].Name)
		}
	}
	return names
}

// Diagnose runs every performance function's diagnosis function on the job
// and merges the results with both the Closest (Eq. 6) and Average
// (Eq. 7–8) methods.
func (e *Ensemble) Diagnose(rec *darshan.Record, opts DiagnoseOptions) (*Diagnosis, error) {
	return e.DiagnoseContext(context.Background(), rec, opts)
}

// DiagnoseContext is Diagnose with cooperative cancellation and degraded
// operation. Cancellation: ctx is checked between per-model dispatches and
// between model-evaluation chunks inside the explainers, so a deadline
// aborts the diagnosis within one chunk's worth of work and ctx's error is
// returned. Degradation: a model that panics, errors, or returns non-finite
// values is skipped — its PerModel slot records the failure, Degraded is
// set, and the Eq. 6/7 merges run over the surviving subset. Only when
// every model fails (or ctx expires) is an error returned.
func (e *Ensemble) DiagnoseContext(ctx context.Context, rec *darshan.Record, opts DiagnoseOptions) (*Diagnosis, error) {
	if len(e.Models) == 0 {
		return nil, fmt.Errorf("core: ensemble has no models")
	}
	if opts.Interpreter == "" {
		opts.Interpreter = InterpreterSHAP
	}
	switch opts.Interpreter {
	case InterpreterSHAP, InterpreterTreeSHAP, InterpreterLIME:
	default:
		return nil, fmt.Errorf("core: unknown interpreter %q", opts.Interpreter)
	}
	switch opts.SHAPMode {
	case "", shap.ModeAuto, shap.ModeKernel, shap.ModeTree:
	default:
		return nil, fmt.Errorf("core: unknown shap mode %q (want auto, kernel or tree)", opts.SHAPMode)
	}
	// Sanitize the performance tag: a NaN/Inf/negative tag (corrupt log)
	// would otherwise poison every Eq. 8 weight. Identity on valid records.
	perf := features.Sanitize(rec.PerfMiBps)
	x := features.TransformRecord(rec)
	d := &Diagnosis{
		Record:      rec,
		Actual:      features.Transform(perf),
		ActualMiBps: perf,
	}

	// Each model's explanation is independent until the Eq. 6/7 merges, so
	// they run on a bounded worker pool. Worker i owns slot i of PerModel,
	// which keeps the assembled slice — and everything merged from it —
	// identical to the sequential order. A panicking model is recovered
	// into its slot's Err instead of crashing the pool.
	d.PerModel = make([]ModelDiagnosis, len(e.Models))
	err := parallel.EachCtx(ctx, len(e.Models), opts.Parallelism, func(i int) {
		m := e.Models[i]
		callErr := parallel.Call(func() error {
			md, err := diagnoseModel(ctx, m, x, opts)
			if err != nil {
				return err
			}
			d.PerModel[i] = md
			return nil
		})
		if callErr != nil {
			d.PerModel[i] = ModelDiagnosis{Name: m.Name(), Err: callErr.Error()}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("core: diagnose cancelled: %w", err)
	}

	survivors := 0
	firstErr := ""
	for i := range d.PerModel {
		if d.PerModel[i].Failed() {
			if firstErr == "" {
				firstErr = d.PerModel[i].Name + ": " + d.PerModel[i].Err
			}
			continue
		}
		survivors++
	}
	if survivors == 0 {
		return nil, fmt.Errorf("core: all %d models failed; first failure: %s", len(e.Models), firstErr)
	}
	d.Degraded = survivors < len(e.Models)

	d.ClosestIndex = closestModel(d.PerModel, d.Actual)
	d.Weights = averageWeights(d.PerModel, d.Actual)

	// Closest Method (Eq. 6): adopt the nearest model's diagnosis wholesale.
	d.Closest = d.PerModel[d.ClosestIndex]
	d.Closest.Name = "closest(" + d.PerModel[d.ClosestIndex].Name + ")"

	// Average Method (Eq. 7): accuracy-weighted merge of contributions and
	// expectations over the surviving models (failed ones have weight 0).
	avg := ModelDiagnosis{Name: "average", Contributions: make([]float64, len(x))}
	for mi := range d.PerModel {
		md := &d.PerModel[mi]
		if md.Failed() {
			continue
		}
		w := d.Weights[mi]
		avg.Predicted += w * md.Predicted
		avg.Base += w * md.Base
		for j, c := range md.Contributions {
			avg.Contributions[j] += w * c
		}
		avg.AdditivityErr += w * md.AdditivityErr
	}
	avg.PredictedMiBps = features.Inverse(avg.Predicted)
	d.Average = avg
	return d, nil
}

// diagnoseModel runs one performance function's diagnosis function on the
// transformed counter vector x. The interpreter has been validated by the
// caller. A non-nil error (including a non-finite model output, which a
// faulty backend can produce without panicking) marks the model as skipped.
func diagnoseModel(ctx context.Context, m Model, x []float64, opts DiagnoseOptions) (ModelDiagnosis, error) {
	md := ModelDiagnosis{Name: m.Name()}
	switch opts.Interpreter {
	case InterpreterSHAP, InterpreterTreeSHAP:
		att, err := attributorFor(m, opts)
		if err != nil {
			return md, err
		}
		ex, err := att.Attribute(ctx, x)
		if err != nil {
			return md, err
		}
		md.Predicted = ex.FX
		md.Base = ex.Base
		md.Contributions = ex.Phi
		md.AdditivityErr = ex.AdditivityError()
	case InterpreterLIME:
		ex, err := lime.New(m.PredictBatch, nil, opts.LIME).ExplainContext(ctx, x)
		if err != nil {
			return md, err
		}
		md.Predicted = ex.FX
		md.Base = ex.Intercept
		md.Contributions = ex.Phi
		sum := ex.Intercept
		for _, p := range ex.Phi {
			sum += p
		}
		md.AdditivityErr = math.Abs(sum - ex.FX)
	}
	md.PredictedMiBps = features.Inverse(md.Predicted)
	if err := md.checkFinite(); err != nil {
		return md, err
	}
	return md, nil
}

// attributorFor selects one model's SHAP estimator through the shap.ForModel
// dispatcher: the effective mode is opts.SHAPMode, or — when unset — kernel
// under InterpreterSHAP and auto under InterpreterTreeSHAP (the historical
// meanings of the two interpreter values). The zero background is AIIO's
// Section 3.3 filter.
func attributorFor(m Model, opts DiagnoseOptions) (shap.Attributor, error) {
	mode := opts.SHAPMode
	if mode == "" {
		mode = shap.ModeKernel
		if opts.Interpreter == InterpreterTreeSHAP {
			mode = shap.ModeAuto
		}
	}
	tree, _ := TreeModel(m)
	return shap.ForModel(m.PredictBatch, tree, nil, mode, opts.SHAP)
}

// checkFinite rejects a model diagnosis carrying NaN/Inf — the signature of
// a corrupted or fault-injected backend. Letting such values through would
// silently poison the Eq. 6/7 merges and every weight.
func (md *ModelDiagnosis) checkFinite() error {
	if math.IsNaN(md.Predicted) || math.IsInf(md.Predicted, 0) {
		return fmt.Errorf("non-finite prediction %v", md.Predicted)
	}
	if math.IsNaN(md.Base) || math.IsInf(md.Base, 0) {
		return fmt.Errorf("non-finite base value %v", md.Base)
	}
	for j, c := range md.Contributions {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("non-finite contribution %v for counter %d", c, j)
		}
	}
	return nil
}

// DiagnoseBatch diagnoses every record on a bounded worker pool of
// opts.Parallelism workers (0 means runtime.GOMAXPROCS(0)). Jobs are the
// unit of parallelism; when there are fewer jobs than workers, the surplus
// is handed down as per-model concurrency inside each job, so small batches
// still use the machine. Output order matches recs and every diagnosis is
// bitwise-identical to a standalone Diagnose call with the same options.
func (e *Ensemble) DiagnoseBatch(recs []*darshan.Record, opts DiagnoseOptions) ([]*Diagnosis, error) {
	return e.DiagnoseBatchContext(context.Background(), recs, opts)
}

// DiagnoseBatchContext is DiagnoseBatch with cooperative cancellation: once
// ctx is done, no new job is dispatched, in-flight jobs abort at their next
// explainer chunk boundary, and ctx's error is returned — so a cancelled
// batch returns within one chunk's worth of work, not after draining the
// whole queue.
func (e *Ensemble) DiagnoseBatchContext(ctx context.Context, recs []*darshan.Record, opts DiagnoseOptions) ([]*Diagnosis, error) {
	if len(recs) == 0 {
		return nil, ctx.Err()
	}
	total := opts.Parallelism
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	workers := parallel.Workers(total, len(recs))
	jobOpts := opts
	jobOpts.Parallelism = (total + workers - 1) / workers

	out := make([]*Diagnosis, len(recs))
	errs := make([]error, len(recs))
	if err := parallel.EachCtx(ctx, len(recs), workers, func(i int) {
		out[i], errs[i] = e.DiagnoseContext(ctx, recs[i], jobOpts)
	}); err != nil {
		return nil, fmt.Errorf("core: diagnose batch cancelled: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: diagnose job %d: %w", i, err)
		}
	}
	return out, nil
}

// closestModel implements Eq. 6 over the surviving models. The caller
// guarantees at least one model succeeded.
func closestModel(models []ModelDiagnosis, actual float64) int {
	best, bestErr := -1, math.Inf(1)
	for i := range models {
		if models[i].Failed() {
			continue
		}
		if err := math.Abs(models[i].Predicted - actual); err < bestErr {
			best, bestErr = i, err
		}
	}
	return best
}

// averageWeights implements Eq. 8: r_m = Σ|ŷ−y| / |ŷ_m−y|, w_m = r_m / Σr.
// A small epsilon keeps exact predictions from dividing by zero. Failed
// models get weight 0; the surviving weights still sum to 1, so a degraded
// merge is exactly the Eq. 7–8 merge of the surviving subset.
func averageWeights(models []ModelDiagnosis, actual float64) []float64 {
	const eps = 1e-9
	total := 0.0
	errs := make([]float64, len(models))
	for i := range models {
		if models[i].Failed() {
			continue
		}
		errs[i] = math.Abs(models[i].Predicted-actual) + eps
		total += errs[i]
	}
	r := make([]float64, len(models))
	sumR := 0.0
	for i := range models {
		if models[i].Failed() {
			continue
		}
		r[i] = total / errs[i]
		sumR += r[i]
	}
	for i := range r {
		r[i] /= sumR
	}
	return r
}

// Factor is one counter's contribution to a job's performance.
type Factor struct {
	Counter      darshan.CounterID
	Contribution float64
	// Value is the counter's raw (untransformed) value in the log.
	Value float64
}

// Bottlenecks returns the merged (Average Method) negative contributors,
// most negative first — AIIO's bottleneck list.
func (d *Diagnosis) Bottlenecks() []Factor {
	return d.Average.factors(d.Record, true)
}

// TopFactors returns the n largest-magnitude merged contributions (positive
// and negative), as the paper's waterfall figures show.
func (d *Diagnosis) TopFactors(n int) []Factor {
	fs := d.Average.factors(d.Record, false)
	if n > 0 && len(fs) > n {
		fs = fs[:n]
	}
	return fs
}

// factors extracts non-zero contributions, sorted by (signed ascending when
// negativeOnly, |magnitude| descending otherwise).
func (md *ModelDiagnosis) factors(rec *darshan.Record, negativeOnly bool) []Factor {
	var fs []Factor
	for j, c := range md.Contributions {
		if c == 0 {
			continue
		}
		if negativeOnly && c >= 0 {
			continue
		}
		f := Factor{Counter: darshan.CounterID(j), Contribution: c}
		if rec != nil {
			f.Value = rec.Counters[j]
		}
		fs = append(fs, f)
	}
	if negativeOnly {
		sort.Slice(fs, func(i, j int) bool { return fs[i].Contribution < fs[j].Contribution })
	} else {
		sort.Slice(fs, func(i, j int) bool {
			return math.Abs(fs[i].Contribution) > math.Abs(fs[j].Contribution)
		})
	}
	return fs
}

// Factors exposes a per-model factor list (used by the Fig. 6 reproduction).
func (md *ModelDiagnosis) Factors(rec *darshan.Record) []Factor {
	return md.factors(rec, false)
}

// IsRobust verifies the Section 3.3 robustness property: every counter that
// is zero in the record has exactly zero contribution in every per-model and
// merged diagnosis. Failed models have no contributions and are vacuously
// robust.
func (d *Diagnosis) IsRobust() bool {
	check := func(md *ModelDiagnosis) bool {
		for j, c := range md.Contributions {
			if d.Record.Counters[j] == 0 && c != 0 {
				return false
			}
		}
		return true
	}
	for i := range d.PerModel {
		if !check(&d.PerModel[i]) {
			return false
		}
	}
	return check(&d.Closest) && check(&d.Average)
}
