// Package faults is a deterministic fault-injection harness for AIIO's
// robustness tests. It wraps trained models and log readers with seeded,
// reproducible failure modes — panics, NaN outputs, injected latency,
// corrupted or truncated byte streams — so the chaos suite can prove that
// every failure degrades the pipeline (skipped model, quarantined record,
// request timeout) instead of crashing it.
//
// Everything here is deterministic: the same seed and rate always corrupt
// the same bytes, and call-count triggers fire at the same call. A flaky
// chaos suite is worse than none.
package faults

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/linalg"
)

// FaultyModel wraps a core.Model and injects failures into its predictions.
// The zero value of every knob is "off", so FaultyModel{Model: m} is a
// transparent wrapper. Because the wrapper hides the concrete model type,
// core's TreeSHAP fast path is disabled and every SHAP evaluation flows
// through Predict/PredictBatch — faults cannot be bypassed.
type FaultyModel struct {
	core.Model

	// PanicOn makes every prediction panic.
	PanicOn bool
	// NaNOn makes every prediction return NaN.
	NaNOn bool
	// Latency is slept before each Predict/PredictBatch call.
	Latency time.Duration
	// FailAfter, when > 0, lets the first FailAfter prediction calls
	// through and panics on every later one — a model that works until
	// it doesn't.
	FailAfter int64

	calls atomic.Int64
}

// Calls reports how many prediction calls the wrapper has seen.
func (f *FaultyModel) Calls() int64 { return f.calls.Load() }

func (f *FaultyModel) arm() {
	n := f.calls.Add(1)
	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	if f.PanicOn {
		panic("faults: injected model panic")
	}
	if f.FailAfter > 0 && n > f.FailAfter {
		panic("faults: injected model panic (FailAfter exceeded)")
	}
}

// Predict applies the configured faults, then delegates.
func (f *FaultyModel) Predict(x []float64) float64 {
	f.arm()
	if f.NaNOn {
		return math.NaN()
	}
	return f.Model.Predict(x)
}

// PredictBatch applies the configured faults, then delegates. A batch
// counts as one call for FailAfter purposes.
func (f *FaultyModel) PredictBatch(x *linalg.Matrix) []float64 {
	f.arm()
	if f.NaNOn {
		out := make([]float64, x.Rows)
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	return f.Model.PredictBatch(x)
}

// Break replaces model i of ens with fault (whose Model field it fills in
// with the original model), returning a new ensemble; the original is
// untouched. The caller keeps fault for call inspection.
func Break(ens *core.Ensemble, i int, fault *FaultyModel) *core.Ensemble {
	out := &core.Ensemble{Models: append([]core.Model(nil), ens.Models...)}
	fault.Model = ens.Models[i]
	out.Models[i] = fault
	return out
}

// CorruptStream returns a reader that deterministically mangles lines of r:
// each line is corrupted with probability rate (seeded by seed), by either
// replacing its value field with garbage, flipping a byte, or dropping the
// line entirely. Line structure is otherwise preserved, so a corrupted
// Darshan log stream still splits into records — most of which the lenient
// parser must quarantine rather than choke on.
func CorruptStream(r io.Reader, rate float64, seed int64) io.Reader {
	rng := rand.New(rand.NewSource(seed))
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out bytes.Buffer
	for sc.Scan() {
		line := sc.Text()
		if rng.Float64() < rate && len(line) > 0 {
			switch rng.Intn(3) {
			case 0: // hostile value
				out.WriteString("POSIX_READS\tNaN\n")
				continue
			case 1: // flip a byte mid-line
				b := []byte(line)
				b[rng.Intn(len(b))] ^= 0x5a
				line = string(b)
			case 2: // drop the line
				continue
			}
		}
		out.WriteString(line)
		out.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return &errReader{err: err}
	}
	return &out
}

// TruncateReader returns a reader that yields at most n bytes of r and then
// reports io.EOF — a log stream cut off mid-record.
func TruncateReader(r io.Reader, n int64) io.Reader {
	return io.LimitReader(r, n)
}

// ErrReader returns a reader that yields the first n bytes of r and then
// fails with err — a disk or network fault mid-read.
func ErrReader(r io.Reader, n int64, err error) io.Reader {
	return io.MultiReader(io.LimitReader(r, n), &errReader{err: err})
}

type errReader struct{ err error }

func (e *errReader) Read([]byte) (int, error) { return 0, e.err }

// ErrInjectedCrash is the error every save-crash injector aborts with:
// the moral equivalent of kill -9 landing mid-save. Registry code must
// treat the save as lost, and the next load must recover the previous
// generation.
var ErrInjectedCrash = errors.New("faults: injected crash during save")

// CrashAfterSteps returns a model-store save hook (core.Store.SetSaveHook)
// that lets the first n durable steps through and "crashes" — aborts the
// save with ErrInjectedCrash, leaving whatever partial on-disk state
// exists at that point — on step n+1. n=0 crashes at the very first
// step. The hook is safe for reuse across saves; the step count is
// cumulative, matching a process that dies once.
func CrashAfterSteps(n int) func(step, path string) error {
	var calls atomic.Int64
	return func(step, path string) error {
		if calls.Add(1) > int64(n) {
			return ErrInjectedCrash
		}
		return nil
	}
}

// CrashAtStep returns a save hook that crashes at the first occurrence
// of the named step (one of the core.Step* constants) and passes every
// other step through — a crash aimed at a specific durability window,
// e.g. core.StepGenCommit to die right before the generation rename.
func CrashAtStep(target string) func(step, path string) error {
	return func(step, path string) error {
		if step == target {
			return ErrInjectedCrash
		}
		return nil
	}
}

// Flood fires n concurrent invocations of fn (called with 0..n-1) and
// returns each call's error, indexed by invocation. It is the traffic
// half of the chaos kit: point it at a web service endpoint at 10× the
// admission limit and assert the server sheds instead of falling over.
// All invocations start together (a true thundering herd), not staggered
// by goroutine spawn order.
func Flood(n int, fn func(i int) error) []error {
	errs := make([]error, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			errs[i] = fn(i)
		}(i)
	}
	close(start)
	wg.Wait()
	return errs
}

// ShiftRecord returns a copy of rec with every counter and the performance
// tag scaled by factor — a whole-distribution shift, as if the workload
// moved to files and request sizes factor× larger. With a positive integer
// factor and integer-valued counters (the synthetic generator's output),
// scaling is exact in float64, so every linear invariant Record.Validate
// checks (size-histogram sums, consecutive ≤ sequential, per-op caps)
// survives bit-for-bit: a shifted record passes the ingest boundary and
// lands on the drift monitor, not in quarantine. In the transformed
// (log10) feature domain the shift moves every non-zero counter right by
// ≈log10(factor), which is exactly the population shift the PSI sketches
// exist to catch.
func ShiftRecord(rec *darshan.Record, factor float64) *darshan.Record {
	out := *rec
	for i := range out.Counters {
		out.Counters[i] *= factor
	}
	out.PerfMiBps *= factor
	return &out
}

// ShiftDataset applies ShiftRecord to every record, returning the shifted
// copies with distinct JobIDs (offset by idOffset) so the joblog's dedup
// index sees them as new jobs rather than retries.
func ShiftDataset(recs []*darshan.Record, factor float64, idOffset int64) []*darshan.Record {
	out := make([]*darshan.Record, len(recs))
	for i, rec := range recs {
		s := ShiftRecord(rec, factor)
		s.JobID += idOffset
		out[i] = s
	}
	return out
}

// ConstantModel is a core.Model that predicts the same transformed value
// for every input — the canonical "confidently wrong" candidate. A canary
// gate that cannot block it is not a gate; a rollback watch that cannot
// detect it serving is not a watch.
type ConstantModel struct {
	// Value is the prediction, in the transformed (log10) domain.
	Value float64
	// ModelName is reported by Name (default "constant").
	ModelName string
}

func (c *ConstantModel) Name() string {
	if c.ModelName != "" {
		return c.ModelName
	}
	return "constant"
}

func (c *ConstantModel) Kind() string { return "constant" }

func (c *ConstantModel) Predict(x []float64) float64 { return c.Value }

func (c *ConstantModel) PredictBatch(x *linalg.Matrix) []float64 {
	out := make([]float64, x.Rows)
	for i := range out {
		out[i] = c.Value
	}
	return out
}

// Save writes a one-line marker; ConstantModel exists for in-memory fault
// injection and has no durable format worth versioning.
func (c *ConstantModel) Save(w io.Writer) error {
	_, err := fmt.Fprintf(w, "constant %g\n", c.Value)
	return err
}
