// Package faults is a deterministic fault-injection harness for AIIO's
// robustness tests. It wraps trained models and log readers with seeded,
// reproducible failure modes — panics, NaN outputs, injected latency,
// corrupted or truncated byte streams — so the chaos suite can prove that
// every failure degrades the pipeline (skipped model, quarantined record,
// request timeout) instead of crashing it.
//
// Everything here is deterministic: the same seed and rate always corrupt
// the same bytes, and call-count triggers fire at the same call. A flaky
// chaos suite is worse than none.
package faults

import (
	"bufio"
	"bytes"
	"io"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/linalg"
)

// FaultyModel wraps a core.Model and injects failures into its predictions.
// The zero value of every knob is "off", so FaultyModel{Model: m} is a
// transparent wrapper. Because the wrapper hides the concrete model type,
// core's TreeSHAP fast path is disabled and every SHAP evaluation flows
// through Predict/PredictBatch — faults cannot be bypassed.
type FaultyModel struct {
	core.Model

	// PanicOn makes every prediction panic.
	PanicOn bool
	// NaNOn makes every prediction return NaN.
	NaNOn bool
	// Latency is slept before each Predict/PredictBatch call.
	Latency time.Duration
	// FailAfter, when > 0, lets the first FailAfter prediction calls
	// through and panics on every later one — a model that works until
	// it doesn't.
	FailAfter int64

	calls atomic.Int64
}

// Calls reports how many prediction calls the wrapper has seen.
func (f *FaultyModel) Calls() int64 { return f.calls.Load() }

func (f *FaultyModel) arm() {
	n := f.calls.Add(1)
	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	if f.PanicOn {
		panic("faults: injected model panic")
	}
	if f.FailAfter > 0 && n > f.FailAfter {
		panic("faults: injected model panic (FailAfter exceeded)")
	}
}

// Predict applies the configured faults, then delegates.
func (f *FaultyModel) Predict(x []float64) float64 {
	f.arm()
	if f.NaNOn {
		return math.NaN()
	}
	return f.Model.Predict(x)
}

// PredictBatch applies the configured faults, then delegates. A batch
// counts as one call for FailAfter purposes.
func (f *FaultyModel) PredictBatch(x *linalg.Matrix) []float64 {
	f.arm()
	if f.NaNOn {
		out := make([]float64, x.Rows)
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	return f.Model.PredictBatch(x)
}

// Break replaces model i of ens with fault (whose Model field it fills in
// with the original model), returning a new ensemble; the original is
// untouched. The caller keeps fault for call inspection.
func Break(ens *core.Ensemble, i int, fault *FaultyModel) *core.Ensemble {
	out := &core.Ensemble{Models: append([]core.Model(nil), ens.Models...)}
	fault.Model = ens.Models[i]
	out.Models[i] = fault
	return out
}

// CorruptStream returns a reader that deterministically mangles lines of r:
// each line is corrupted with probability rate (seeded by seed), by either
// replacing its value field with garbage, flipping a byte, or dropping the
// line entirely. Line structure is otherwise preserved, so a corrupted
// Darshan log stream still splits into records — most of which the lenient
// parser must quarantine rather than choke on.
func CorruptStream(r io.Reader, rate float64, seed int64) io.Reader {
	rng := rand.New(rand.NewSource(seed))
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out bytes.Buffer
	for sc.Scan() {
		line := sc.Text()
		if rng.Float64() < rate && len(line) > 0 {
			switch rng.Intn(3) {
			case 0: // hostile value
				out.WriteString("POSIX_READS\tNaN\n")
				continue
			case 1: // flip a byte mid-line
				b := []byte(line)
				b[rng.Intn(len(b))] ^= 0x5a
				line = string(b)
			case 2: // drop the line
				continue
			}
		}
		out.WriteString(line)
		out.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return &errReader{err: err}
	}
	return &out
}

// TruncateReader returns a reader that yields at most n bytes of r and then
// reports io.EOF — a log stream cut off mid-record.
func TruncateReader(r io.Reader, n int64) io.Reader {
	return io.LimitReader(r, n)
}

// ErrReader returns a reader that yields the first n bytes of r and then
// fails with err — a disk or network fault mid-read.
func ErrReader(r io.Reader, n int64, err error) io.Reader {
	return io.MultiReader(io.LimitReader(r, n), &errReader{err: err})
}

type errReader struct{ err error }

func (e *errReader) Read([]byte) (int, error) { return 0, e.err }
