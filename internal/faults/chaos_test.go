package faults

import (
	"bytes"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/iosim"
	"github.com/hpc-repro/aiio/internal/logdb"
	"github.com/hpc-repro/aiio/internal/webservice"
	"github.com/hpc-repro/aiio/internal/workload"
)

var (
	chaosOnce sync.Once
	chaosEns  *core.Ensemble
	chaosErr  error
)

// chaosEnsemble trains a three-model ensemble once for the whole suite:
// two boosted variants plus the MLP, so degraded merges still have at
// least two survivors after one injected failure.
func chaosEnsemble(t testing.TB) *core.Ensemble {
	t.Helper()
	chaosOnce.Do(func() {
		ds := logdb.Generate(logdb.GenConfig{Jobs: 400, Seed: 7})
		frame := features.Build(ds)
		opts := core.DefaultTrainOptions()
		opts.Fast = true
		opts.Models = []string{core.NameXGBoost, core.NameLightGBM, core.NameMLP}
		chaosEns, _, chaosErr = core.TrainEnsemble(frame, opts)
	})
	if chaosErr != nil {
		t.Fatalf("chaos fixture training failed: %v", chaosErr)
	}
	return chaosEns
}

func chaosOpts() core.DiagnoseOptions {
	o := core.DefaultDiagnoseOptions()
	o.SHAP.MaxExact = 8
	o.SHAP.NSamples = 512
	return o
}

func chaosRecord(t testing.TB) *darshan.Record {
	t.Helper()
	params := iosim.DefaultParams()
	params.NoiseSigma = 0
	cfg := workload.Patterns()[0].Config.Scale(16, 4)
	rec, _ := cfg.Run("ior", 42, 13, params)
	return rec
}

// Chaos scenario (a): one model panics on every prediction. The diagnosis
// must degrade — valid merged output from the survivors, the casualty named
// — and never crash.
func TestChaosPanickingModelDegrades(t *testing.T) {
	ens := chaosEnsemble(t)
	fault := &FaultyModel{PanicOn: true}
	broken := Break(ens, 1, fault)

	d, err := broken.Diagnose(chaosRecord(t), chaosOpts())
	if err != nil {
		t.Fatalf("one panicking model out of three must degrade, got: %v", err)
	}
	if !d.Degraded {
		t.Error("Degraded flag not set")
	}
	if got := d.SkippedModels(); len(got) != 1 || got[0] != ens.Models[1].Name() {
		t.Errorf("SkippedModels = %v", got)
	}
	if !strings.Contains(d.PerModel[1].Err, "injected model panic") {
		t.Errorf("PerModel[1].Err = %q, want the injected panic", d.PerModel[1].Err)
	}
	if math.IsNaN(d.Average.Predicted) || len(d.Average.Contributions) == 0 {
		t.Error("degraded merge is not a valid diagnosis")
	}
	if fault.Calls() == 0 {
		t.Error("fault wrapper never invoked — TreeSHAP bypassed the injector?")
	}
}

// Sequential and parallel diagnosis of a degraded ensemble must agree
// bitwise on the surviving models (the acceptance criterion of the
// fault-injection harness).
func TestChaosSequentialParallelBitwiseIdentical(t *testing.T) {
	ens := chaosEnsemble(t)
	rec := chaosRecord(t)

	for name, fault := range map[string]*FaultyModel{
		"panic": {PanicOn: true},
		"nan":   {NaNOn: true},
	} {
		t.Run(name, func(t *testing.T) {
			broken := Break(ens, 0, fault)
			opts := chaosOpts()
			opts.Parallelism = 1
			seq, err := broken.Diagnose(rec, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Parallelism = 8
			par, err := broken.Diagnose(rec, opts)
			if err != nil {
				t.Fatal(err)
			}
			if seq.Average.Predicted != par.Average.Predicted {
				t.Fatalf("Average.Predicted differs: %v vs %v", seq.Average.Predicted, par.Average.Predicted)
			}
			for j := range seq.Average.Contributions {
				if seq.Average.Contributions[j] != par.Average.Contributions[j] {
					t.Fatalf("contribution %d differs between pool sizes", j)
				}
			}
			if seq.ClosestIndex != par.ClosestIndex || seq.Closest.Predicted != par.Closest.Predicted {
				t.Fatal("Closest merge differs between pool sizes")
			}
			for i := range seq.Weights {
				if seq.Weights[i] != par.Weights[i] {
					t.Fatalf("weight %d differs between pool sizes", i)
				}
			}
		})
	}
}

// A model that works for a while and then starts panicking (FailAfter)
// still degrades cleanly.
func TestChaosFailAfterDegrades(t *testing.T) {
	ens := chaosEnsemble(t)
	fault := &FaultyModel{FailAfter: 1}
	broken := Break(ens, 2, fault)

	d, err := broken.Diagnose(chaosRecord(t), chaosOpts())
	if err != nil {
		t.Fatalf("FailAfter model must degrade, got: %v", err)
	}
	if !d.Degraded || !strings.Contains(d.PerModel[2].Err, "FailAfter") {
		t.Errorf("degraded=%v err=%q", d.Degraded, d.PerModel[2].Err)
	}
	if fault.Calls() < 2 {
		t.Errorf("wrapper saw %d calls, want the first to pass and a later one to trip", fault.Calls())
	}
}

// Chaos scenario (b): a log stream where roughly 10%% of records carry a
// corrupt line. The lenient parser must quarantine the casualties and keep
// the rest; the strict parser refuses the stream outright.
func TestChaosCorruptStreamQuarantined(t *testing.T) {
	ds := logdb.Generate(logdb.GenConfig{Jobs: 60, Seed: 3})
	var clean bytes.Buffer
	if err := darshan.WriteDataset(&clean, ds); err != nil {
		t.Fatal(err)
	}
	// ~51 lines per record; a per-line rate of 0.002 corrupts roughly one
	// line in every tenth record.
	corrupted, err := io.ReadAll(CorruptStream(bytes.NewReader(clean.Bytes()), 0.002, 99))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(corrupted, clean.Bytes()) {
		t.Fatal("CorruptStream changed nothing at this seed/rate")
	}

	got, quarantine, err := darshan.ParseDatasetLenient(bytes.NewReader(corrupted))
	if err != nil {
		t.Fatalf("lenient parse of corrupt stream hard-failed: %v", err)
	}
	if len(quarantine) == 0 {
		t.Fatal("nothing quarantined from a corrupted stream")
	}
	if got.Len() < ds.Len()/2 {
		t.Fatalf("only %d of %d records survived 10%% corruption", got.Len(), ds.Len())
	}
	if got.Len()+len(quarantine) > ds.Len() {
		t.Fatalf("accepted %d + quarantined %d exceeds input %d", got.Len(), len(quarantine), ds.Len())
	}
	summary := darshan.QuarantineSummary(got.Len(), quarantine)
	if !strings.Contains(summary, "quarantined") {
		t.Errorf("summary = %q", summary)
	}

	// Determinism: the same seed corrupts the same bytes.
	again, err := io.ReadAll(CorruptStream(bytes.NewReader(clean.Bytes()), 0.002, 99))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(corrupted, again) {
		t.Error("CorruptStream is not deterministic for a fixed seed")
	}

	// The surviving records still build a finite feature frame.
	frame := features.Build(got)
	if err := frame.Validate(); err != nil {
		t.Errorf("survivors produced a corrupt frame: %v", err)
	}
}

// A stream truncated mid-record quarantines at most the final record; a
// reader that fails outright surfaces a hard error, never a panic.
func TestChaosTruncatedAndFailingReaders(t *testing.T) {
	ds := logdb.Generate(logdb.GenConfig{Jobs: 5, Seed: 9})
	var clean bytes.Buffer
	if err := darshan.WriteDataset(&clean, ds); err != nil {
		t.Fatal(err)
	}

	cut := TruncateReader(bytes.NewReader(clean.Bytes()), int64(clean.Len())-40)
	got, quarantine, err := darshan.ParseDatasetLenient(cut)
	if err != nil {
		t.Fatalf("truncated stream hard-failed: %v", err)
	}
	// The last record lost its tail: it either still parses (only trailing
	// counters missing — sparsity semantics) or is quarantined; both are
	// acceptable, losing more than one record is not.
	if got.Len()+len(quarantine) != ds.Len() || got.Len() < ds.Len()-1 {
		t.Errorf("truncation: %d accepted + %d quarantined of %d", got.Len(), len(quarantine), ds.Len())
	}

	bang := errors.New("disk on fire")
	_, _, err = darshan.ParseDatasetLenient(ErrReader(bytes.NewReader(clean.Bytes()), 100, bang))
	if !errors.Is(err, bang) {
		t.Errorf("reader failure not surfaced: %v", err)
	}
}

// Chaos scenario (c): a model slower than the request deadline. The web
// service must answer 503 — not hang, not crash — and the service must
// stay healthy afterwards.
func TestChaosSlowModelHitsRequestDeadline(t *testing.T) {
	ens := chaosEnsemble(t)
	broken := Break(ens, 0, &FaultyModel{Latency: 250 * time.Millisecond})

	s := webservice.NewServer(broken, chaosOpts())
	s.RequestTimeout = 50 * time.Millisecond
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var body bytes.Buffer
	if err := darshan.WriteLog(&body, chaosRecord(t)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := srv.Client().Post(srv.URL+"/api/v1/diagnose", "text/plain", &body)
	if err != nil {
		t.Fatalf("deadlined request errored at transport level: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("slow model got HTTP %d, want 503", resp.StatusCode)
	}
	// Cooperative cancellation lets in-flight model calls finish, so the
	// bound is deadline + a few injected latencies, far under a full
	// diagnosis of the slow ensemble.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("503 took %v — cancellation not cooperative", elapsed)
	}

	// The service still answers health checks.
	h, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Errorf("healthz after deadline storm: HTTP %d", h.StatusCode)
	}
}

// A FaultyModel with no knobs set is a transparent wrapper.
func TestFaultyModelTransparent(t *testing.T) {
	ens := chaosEnsemble(t)
	wrapped := Break(ens, 0, &FaultyModel{})

	want, err := ens.Diagnose(chaosRecord(t), chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	got, err := wrapped.Diagnose(chaosRecord(t), chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded {
		t.Error("transparent wrapper marked the diagnosis degraded")
	}
	// The wrapped model's prediction is identical; the merged contributions
	// may differ because wrapping disables the TreeSHAP fast path, which is
	// the wrapper working as designed.
	if got.PerModel[0].Predicted != want.PerModel[0].Predicted {
		t.Errorf("wrapped prediction %v != bare prediction %v",
			got.PerModel[0].Predicted, want.PerModel[0].Predicted)
	}
}

// Chaos scenario (g): the process dies mid-save — at every durable step
// of the model store in turn. Whatever partial state each crash leaves,
// the next load must serve the previous committed generation, bit-exact,
// and a later clean save must recover fully.
func TestChaosCrashDuringSaveRecoversPreviousGeneration(t *testing.T) {
	ens := chaosEnsemble(t)
	st := core.OpenStore(t.TempDir())
	if _, err := st.Save(ens); err != nil {
		t.Fatalf("baseline save: %v", err)
	}
	// Sweep the crash point forward one durable step at a time until a
	// save finally survives the whole gauntlet.
	crashed := 0
	for n := 0; ; n++ {
		st.SetSaveHook(CrashAfterSteps(n))
		_, err := st.Save(ens)
		st.SetSaveHook(nil)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrInjectedCrash) {
			t.Fatalf("crash at step %d surfaced the wrong error: %v", n, err)
		}
		crashed++
		e, rep, err := st.Load()
		if err != nil {
			t.Fatalf("load after crash at step %d: %v", n, err)
		}
		if rep.Generation != 1 {
			t.Fatalf("crash at step %d served generation %d, want the committed generation 1", n, rep.Generation)
		}
		if rep.FellBack {
			t.Fatalf("crash at step %d left checksum-corrupt visible state: %+v", n, rep)
		}
		if len(e.Models) != len(ens.Models) {
			t.Fatalf("crash at step %d lost models: %d of %d", n, len(e.Models), len(ens.Models))
		}
		if n > 100 {
			t.Fatal("save never completed; hook sweep runaway")
		}
	}
	if crashed == 0 {
		t.Fatal("sweep never crashed a save; the injector is dead")
	}
	// The surviving save is the new current generation.
	_, rep, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation <= 1 || rep.FellBack {
		t.Fatalf("after recovery save: %+v, want a clean newer generation", rep)
	}
}

// Chaos scenario (h): a crash aimed exactly at the gen-commit rename
// (CrashAtStep) — the widest window for torn state — then a byte flip in
// the surviving generation proves the checksum fallback chains with
// crash recovery.
func TestChaosCrashAtGenCommit(t *testing.T) {
	ens := chaosEnsemble(t)
	st := core.OpenStore(t.TempDir())
	if _, err := st.Save(ens); err != nil {
		t.Fatal(err)
	}
	st.SetSaveHook(CrashAtStep(core.StepGenCommit))
	if _, err := st.Save(ens); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("save did not crash at gen-commit: %v", err)
	}
	st.SetSaveHook(nil)
	_, rep, err := st.Load()
	if err != nil {
		t.Fatalf("load after gen-commit crash: %v", err)
	}
	if rep.Generation != 1 || rep.FellBack {
		t.Fatalf("report = %+v, want clean generation 1", rep)
	}
}

// Flood sanity: the injector really does run all invocations and keeps
// their errors in order.
func TestFloodRunsAllInvocations(t *testing.T) {
	var calls atomic.Int64
	errs := Flood(32, func(i int) error {
		calls.Add(1)
		if i%2 == 1 {
			return ErrInjectedCrash
		}
		return nil
	})
	if calls.Load() != 32 {
		t.Fatalf("flood ran %d of 32 invocations", calls.Load())
	}
	for i, err := range errs {
		if (i%2 == 1) != (err != nil) {
			t.Fatalf("errs[%d] = %v, order not preserved", i, err)
		}
	}
}
