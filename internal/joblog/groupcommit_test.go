package joblog

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// Group-commit fsync tests: concurrent Append+Sync streams must coalesce
// onto a shared disk flush without ever weakening the ack-after-fsync
// contract — Sync returns nil only when every append staged before the
// call is on disk.

// countSyncSteps installs a hook that counts append-sync steps (the hook
// runs under the store lock, so a plain int is safe).
func countSyncSteps(s *Store) *int {
	n := new(int)
	s.SetHook(func(step, path string) error {
		if step == StepAppendSync {
			*n++
		}
		return nil
	})
	return n
}

// TestSyncCoalescesAlreadyDurable: a Sync with nothing staged past the
// durable watermark must not touch the disk at all.
func TestSyncCoalescesAlreadyDurable(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	syncs := countSyncSteps(s)
	for i := 0; i < 10; i++ {
		if _, err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if *syncs != 1 {
		t.Fatalf("3 Sync calls over one staged batch hit the disk %d times, want 1", *syncs)
	}
	if _, err := s.Append(testRecord(10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if *syncs != 2 {
		t.Fatalf("a new append must force a new fsync: %d disk syncs, want 2", *syncs)
	}
}

// TestConcurrentAppendSyncExactlyOnce hammers the store from many
// goroutines, each acknowledging its own records only after its own Sync
// returns, then simulates a crash (reopen without Close, abandoning the
// handle) and requires every acknowledged record to survive exactly once.
func TestConcurrentAppendSyncExactlyOnce(t *testing.T) {
	const writers, perWriter = 8, 25
	dir := t.TempDir()
	// Tiny segments so rotations interleave with in-flight group commits.
	s := mustOpen(t, dir, Options{SegmentBytes: 2048})

	var mu sync.Mutex
	acked := make(map[int64]bool)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := testRecord(w*perWriter + i)
				if _, err := s.Append(rec); err != nil {
					t.Errorf("writer %d append %d: %v", w, i, err)
					return
				}
				if err := s.Sync(); err != nil {
					t.Errorf("writer %d sync %d: %v", w, i, err)
					return
				}
				mu.Lock()
				acked[rec.JobID] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(acked) != writers*perWriter {
		t.Fatalf("acked %d records, want %d", len(acked), writers*perWriter)
	}
	// "Crash": the old handle is abandoned, not closed.
	verifyExactlyOnce(t, dir, acked, "concurrent-ingest")
}

// TestGroupCommitAckAfterFsyncCrash is the ordering proof: the disk dies
// permanently after the K-th fsync, concurrent writers keep trying, and
// after a restart every record whose Sync was acknowledged must be on
// disk — no Sync may have returned nil on the strength of a flush that
// never happened.
func TestGroupCommitAckAfterFsyncCrash(t *testing.T) {
	const writers, perWriter, healthySyncs = 6, 20, 4
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	diskDead := errors.New("injected: disk gone")
	syncs := 0
	s.SetHook(func(step, path string) error {
		if step == StepAppendSync {
			syncs++
			if syncs > healthySyncs {
				return diskDead
			}
		}
		return nil
	})

	var mu sync.Mutex
	acked := make(map[int64]bool)
	var failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := testRecord(w*perWriter + i)
				if _, err := s.Append(rec); err != nil {
					// Append can also trip the hook via SyncEvery/seal paths;
					// an un-acked record is simply not in the acked set.
					failed.Add(1)
					continue
				}
				if err := s.Sync(); err != nil {
					if !errors.Is(err, diskDead) {
						t.Errorf("writer %d: sync failed for a non-injected reason: %v", w, err)
					}
					failed.Add(1)
					continue
				}
				mu.Lock()
				acked[rec.JobID] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() == 0 {
		t.Fatal("the injected disk failure never surfaced to any writer")
	}
	if len(acked) == 0 {
		t.Fatal("no record was acked before the disk died — the test proved nothing")
	}
	// Restart and check: every ack was backed by a real fsync.
	verifyExactlyOnce(t, dir, acked, "ack-after-fsync")
}

// BenchmarkConcurrentIngest measures the append+fsync ingest path at
// increasing writer counts. With group commit, writers/op climbing should
// hold fsyncs/op well below 1 at high concurrency — followers ride the
// leader's flush — where the old serialized Sync paid one fsync per record.
func BenchmarkConcurrentIngest(b *testing.B) {
	for _, writers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			s, err := Open(b.TempDir(), Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			fsyncs := 0
			s.SetHook(func(step, path string) error {
				if step == StepAppendSync {
					fsyncs++
				}
				return nil
			})
			var next atomic.Int64
			var firstErr atomic.Value
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							return
						}
						if _, err := s.Append(testRecord(int(i))); err != nil {
							firstErr.CompareAndSwap(nil, err)
							return
						}
						if err := s.Sync(); err != nil {
							firstErr.CompareAndSwap(nil, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			if err, ok := firstErr.Load().(error); ok {
				b.Fatal(err)
			}
			b.ReportMetric(float64(fsyncs)/float64(b.N), "fsyncs/op")
		})
	}
}
