package joblog

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hpc-repro/aiio/internal/darshan"
)

// Regression tests for review findings: the atomic salvage rewrite, the
// nextSeq floor at cursor+1, the incremental pending counter, and the
// Scan/Compact read-guard.

// TestRewriteSegmentAtomic exercises both paths of rewriteSegment: a pure
// torn-tail prefix is truncated in place, anything else goes through
// tmp + fsync + rename. In neither path may temp debris remain, and the
// final contents must be exactly the clean bytes.
func TestRewriteSegmentAtomic(t *testing.T) {
	cases := []struct {
		name  string
		disk  []byte
		clean []byte
	}{
		{"torn tail prefix", []byte("frame1frame2torn"), []byte("frame1frame2")},
		{"mid-segment hole", []byte("frame1BADframe3"), []byte("frame1frame3")},
		{"identical", []byte("frame1"), []byte("frame1")},
		{"all corrupt", []byte("garbage"), nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "00000001.wal")
			if err := os.WriteFile(path, tc.disk, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := rewriteSegment(path, tc.clean, tc.disk); err != nil {
				t.Fatalf("rewriteSegment: %v", err)
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(tc.clean) {
				t.Fatalf("contents %q, want %q", got, tc.clean)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.HasPrefix(e.Name(), tmpPrefix) {
					t.Fatalf("temp debris left behind: %s", e.Name())
				}
			}
		})
	}
}

// TestSalvageRewriteNeverTruncatesFirst reopens a store whose sealed
// segment has a mid-segment corruption — the case recovery must rewrite
// rather than truncate — and asserts the rewrite left no temp debris and
// the repaired file verifies on a further reopen. (The crash-window
// argument — old bytes or clean bytes, never an empty file — is carried
// by rewriteSegment using truncate-or-rename instead of os.Create.)
func TestSalvageRewriteNeverTruncatesFirst(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	const n = 6
	for i := 0; i < n; i++ {
		if _, err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := s.segPath(1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the SECOND record: the clean bytes are not a prefix of the
	// disk bytes, forcing the rename path.
	off := len(appendFrame(nil, encodePayload(nil, 1, testRecord(0))))
	data[off+frameHeaderLen+12] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	if rep := s2.Recovery(); rep.Quarantined != 1 {
		t.Fatalf("recovery: %+v, want 1 quarantined", rep)
	}
	entries, err := os.ReadDir(filepath.Join(dir, segmentsDir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("salvage left temp debris: %s", e.Name())
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := mustOpen(t, dir, Options{})
	if rep := s3.Recovery(); rep.Quarantined != 0 || rep.TornBytes != 0 {
		t.Fatalf("rewritten segment did not verify on reopen: %+v", rep)
	}
	counts, _ := collect(t, s3)
	if len(counts) != n-1 {
		t.Fatalf("%d records survive, want %d", len(counts), n-1)
	}
}

// TestNextSeqFlooredAtCursor loses the highest-seq records to a torn tail
// AFTER the cursor advanced past them. Recovery must floor nextSeq at
// cursor+1 so the next append is assigned a sequence number above the
// cursor — otherwise it would be durable yet invisible to DrainPending
// forever.
func TestNextSeqFlooredAtCursor(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if _, err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceCursor(3); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear off records 2 and 3: only seq 1 survives, cursor stays at 3.
	path := s.segPath(1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstFrame := len(appendFrame(nil, encodePayload(nil, 1, testRecord(0))))
	if err := os.WriteFile(path, data[:firstFrame+3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	if got := s2.Cursor(); got != 3 {
		t.Fatalf("cursor = %d, want 3", got)
	}
	if got := s2.Pending(); got != 0 {
		t.Fatalf("pending after recovery = %d, want 0", got)
	}
	res, err := s2.Append(testRecord(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 4 {
		t.Fatalf("fresh append got seq %d, want 4 (> cursor 3)", res.Seq)
	}
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := s2.Pending(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
	drained := 0
	err = s2.DrainPending(10, func(recs []*darshan.Record, maxSeq uint64) error {
		drained += len(recs)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if drained != 1 {
		t.Fatalf("DrainPending saw %d records, want 1 — the new append is invisible", drained)
	}
}

// TestPendingCounterTracksCursor checks the incrementally maintained
// pending counter against every event that can move it: appends,
// duplicate appends (no-op), cursor advances, and recovery.
func TestPendingCounterTracksCursor(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if _, err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Pending(); got != 10 {
		t.Fatalf("pending = %d, want 10", got)
	}
	// A duplicate append must not bump the counter.
	if _, err := s.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if got := s.Pending(); got != 10 {
		t.Fatalf("pending after duplicate = %d, want 10", got)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceCursor(4); err != nil {
		t.Fatal(err)
	}
	if got := s.Pending(); got != 6 {
		t.Fatalf("pending after cursor=4: %d, want 6", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	if got := s2.Pending(); got != 6 {
		t.Fatalf("pending after reopen = %d, want 6", got)
	}
	if st := s2.Stats(); st.Pending != 6 {
		t.Fatalf("stats pending = %d, want 6", st.Pending)
	}
}

// TestScanBlocksCompactCleanup races a Compact against an in-flight Scan:
// the scan holds the compaction read-guard, so Compact must wait rather
// than deleting superseded segments mid-walk (which would abort the scan
// with a missing-file error).
func TestScanBlocksCompactCleanup(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 2048})
	const n = 60
	for i := 0; i < n; i++ {
		if _, err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}

	scanStarted := make(chan struct{})
	release := make(chan struct{})
	scanDone := make(chan error, 1)
	seen := 0
	go func() {
		first := true
		scanDone <- s.Scan(func(seq uint64, rec *darshan.Record) bool {
			if first {
				first = false
				close(scanStarted)
				<-release
			}
			seen++
			return true
		})
	}()
	<-scanStarted

	compactDone := make(chan error, 1)
	go func() {
		_, err := s.Compact()
		compactDone <- err
	}()
	select {
	case err := <-compactDone:
		t.Fatalf("compact completed while a scan held the read-guard (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
		// Expected: compact is parked on the guard.
	}

	close(release)
	if err := <-scanDone; err != nil {
		t.Fatalf("scan aborted: %v", err)
	}
	if err := <-compactDone; err != nil {
		t.Fatalf("compact after scan: %v", err)
	}
	if seen != n {
		t.Fatalf("scan saw %d records, want %d", seen, n)
	}
	counts, _ := collect(t, s)
	if len(counts) != n {
		t.Fatalf("after compaction: %d unique records, want %d", len(counts), n)
	}
}
