package joblog

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/hpc-repro/aiio/internal/darshan"
)

// Wire format of one WAL record, little-endian throughout:
//
//	frame   := length(u32) crc(u32) payload
//	payload := magic(0xA7) version(0x01) seq(u64)
//	           jobID(i64) year(i32) perf(f64) slowest(f64)
//	           appLen(u16) app[appLen]
//	           ncounters(u8 = 45) counter[45](f64)
//
// length counts the payload bytes only; crc is CRC-32C (Castagnoli) over
// the payload. The job hash that makes appends idempotent is SHA-256
// truncated to 128 bits over the payload with the seq field zeroed, so a
// client retry — same job, new sequence number — hashes identically.

const (
	payloadMagic   = 0xA7
	payloadVersion = 0x01

	frameHeaderLen = 8 // length + crc
	seqOffset      = 2 // payload offset of the seq field

	// maxAppLen bounds the executable-name field; Darshan truncates real
	// exe paths far below this.
	maxAppLen = 4096
	// MaxPayloadLen is the largest payload the decoder accepts. A frame
	// whose length field exceeds it cannot be trusted to frame the stream
	// and is treated as a torn tail, not a record.
	MaxPayloadLen = 2 + 8 + 8 + 4 + 8 + 8 + 2 + maxAppLen + 1 + int(darshan.NumCounters)*8
)

// castagnoli is the CRC-32C table shared by every frame.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodedLen returns the payload size for rec.
func encodedLen(rec *darshan.Record) int {
	return 2 + 8 + 8 + 4 + 8 + 8 + 2 + len(rec.App) + 1 + int(darshan.NumCounters)*8
}

// encodePayload appends the payload encoding of (seq, rec) to dst.
// The app name is truncated at maxAppLen bytes; everything else is exact.
func encodePayload(dst []byte, seq uint64, rec *darshan.Record) []byte {
	app := rec.App
	if len(app) > maxAppLen {
		app = app[:maxAppLen]
	}
	dst = append(dst, payloadMagic, payloadVersion)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.JobID))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(rec.Year)))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rec.PerfMiBps))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rec.SlowestSeconds))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(app)))
	dst = append(dst, app...)
	dst = append(dst, byte(darshan.NumCounters))
	for _, v := range rec.Counters {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// decodePayload decodes one payload. It is the fuzz surface: any byte
// string it accepts must round-trip through encodePayload, and no byte
// string may make it panic.
func decodePayload(p []byte) (seq uint64, rec *darshan.Record, err error) {
	if len(p) < 2 {
		return 0, nil, fmt.Errorf("joblog: payload too short (%d bytes)", len(p))
	}
	if p[0] != payloadMagic {
		return 0, nil, fmt.Errorf("joblog: bad payload magic 0x%02X", p[0])
	}
	if p[1] != payloadVersion {
		return 0, nil, fmt.Errorf("joblog: unsupported payload version %d", p[1])
	}
	// Fixed-size prefix through appLen.
	const fixed = 2 + 8 + 8 + 4 + 8 + 8 + 2
	if len(p) < fixed {
		return 0, nil, fmt.Errorf("joblog: truncated payload header (%d bytes)", len(p))
	}
	seq = binary.LittleEndian.Uint64(p[2:])
	rec = &darshan.Record{
		JobID:          int64(binary.LittleEndian.Uint64(p[10:])),
		Year:           int(int32(binary.LittleEndian.Uint32(p[18:]))),
		PerfMiBps:      math.Float64frombits(binary.LittleEndian.Uint64(p[22:])),
		SlowestSeconds: math.Float64frombits(binary.LittleEndian.Uint64(p[30:])),
	}
	appLen := int(binary.LittleEndian.Uint16(p[38:]))
	if appLen > maxAppLen {
		return 0, nil, fmt.Errorf("joblog: app name length %d exceeds %d", appLen, maxAppLen)
	}
	rest := p[fixed:]
	if len(rest) < appLen+1 {
		return 0, nil, fmt.Errorf("joblog: truncated app name (want %d bytes, have %d)", appLen, len(rest))
	}
	rec.App = string(rest[:appLen])
	rest = rest[appLen:]
	if n := int(rest[0]); n != int(darshan.NumCounters) {
		return 0, nil, fmt.Errorf("joblog: payload carries %d counters, schema has %d", n, darshan.NumCounters)
	}
	rest = rest[1:]
	if len(rest) != int(darshan.NumCounters)*8 {
		return 0, nil, fmt.Errorf("joblog: counter block is %d bytes, want %d", len(rest), int(darshan.NumCounters)*8)
	}
	for i := range rec.Counters {
		rec.Counters[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
	}
	return seq, rec, nil
}

// hashKey is the idempotency key of a payload: SHA-256 truncated to 128
// bits. A non-keyed 64-bit hash would make a collision — and therefore a
// silently swallowed job — constructible; at 128 bits the birthday bound
// for the paper's 6.6 M-job scale (~2^23 records) is ~2^-82, a residual
// risk we accept and document rather than pay a payload comparison on
// every duplicate hit.
type hashKey [16]byte

// payloadHash hashes a payload with the seq field zeroed, so the same job
// re-sent under a new sequence number (a client retry after a lost ack)
// collides with the original.
func payloadHash(p []byte) hashKey {
	h := sha256.New()
	var zeros [8]byte
	if len(p) >= seqOffset+8 {
		h.Write(p[:seqOffset])
		h.Write(zeros[:])
		h.Write(p[seqOffset+8:])
	} else {
		h.Write(p)
	}
	var k hashKey
	copy(k[:], h.Sum(nil))
	return k
}

// appendFrame appends the framed payload (length, CRC-32C, payload) to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// frameResult classifies what parseFrame found at the head of buf.
type frameResult int

const (
	// frameOK: a complete frame with a matching checksum.
	frameOK frameResult = iota
	// frameTorn: the bytes cannot be a complete frame — too short for the
	// header, a length field past MaxPayloadLen or zero, or fewer payload
	// bytes than the length promises. The stream is unframeable from here.
	frameTorn
	// frameCorrupt: a complete, plausibly-framed record whose checksum
	// does not match. The frame boundary is still trustworthy, so the
	// scanner can quarantine the payload and continue at the next frame.
	frameCorrupt
)

// parseFrame examines the frame at the head of buf and returns its
// classification, the payload bytes (valid for frameOK and frameCorrupt),
// and the total frame size consumed.
func parseFrame(buf []byte) (res frameResult, payload []byte, size int) {
	if len(buf) < frameHeaderLen {
		return frameTorn, nil, 0
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if n == 0 || n > MaxPayloadLen {
		return frameTorn, nil, 0
	}
	if len(buf) < frameHeaderLen+n {
		return frameTorn, nil, 0
	}
	payload = buf[frameHeaderLen : frameHeaderLen+n]
	want := binary.LittleEndian.Uint32(buf[4:])
	if crc32.Checksum(payload, castagnoli) != want {
		return frameCorrupt, payload, frameHeaderLen + n
	}
	return frameOK, payload, frameHeaderLen + n
}
