package joblog

import (
	"errors"
	"os"
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/faults"
)

// The chaos sweep: kill the store at every durable step of its lifecycle
// — append, sync, rotate, compact, cursor commit — and assert on restart
// that (a) every acknowledged job is present exactly once, (b) no job is
// ever present twice, and (c) recovery leaves a store that keeps working.
// faults.CrashAfterSteps aborts at the (n+1)-th hook call, so sweeping n
// from 0 upward walks the crash point through every durability window.

// verifyExactlyOnce reopens dir and checks the acked set against a scan.
func verifyExactlyOnce(t *testing.T, dir string, acked map[int64]bool, label string) *Store {
	t.Helper()
	s, err := Open(dir, Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatalf("%s: reopen after crash: %v", label, err)
	}
	counts := make(map[int64]int)
	if err := s.Scan(func(seq uint64, rec *darshan.Record) bool {
		counts[rec.JobID]++
		return true
	}); err != nil {
		t.Fatalf("%s: scan after crash: %v", label, err)
	}
	for id := range acked {
		if counts[id] != 1 {
			t.Fatalf("%s: acknowledged job %d present %d times after restart, want exactly 1 (counts %v)",
				label, id, counts[id], counts)
		}
	}
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("%s: job %d present %d times after restart — duplicate replay", label, id, c)
		}
	}
	return s
}

func TestCrashSweepAppendRotate(t *testing.T) {
	const jobs = 30
	for n := 0; ; n++ {
		dir := t.TempDir()
		// Tiny segments force rotations mid-sweep, so the crash point
		// walks through seal-sync and seal-manifest as well as the
		// append/sync steps.
		s, err := Open(dir, Options{SegmentBytes: 1024})
		if err != nil {
			t.Fatal(err)
		}
		s.SetHook(faults.CrashAfterSteps(n))
		acked := make(map[int64]bool)
		crashed := false
		for i := 0; i < jobs; i++ {
			rec := testRecord(i)
			if _, err := s.Append(rec); err != nil {
				if !errors.Is(err, faults.ErrInjectedCrash) {
					t.Fatalf("n=%d append %d: %v", n, i, err)
				}
				crashed = true
				break
			}
			if err := s.Sync(); err != nil {
				if !errors.Is(err, faults.ErrInjectedCrash) {
					t.Fatalf("n=%d sync %d: %v", n, i, err)
				}
				crashed = true
				break
			}
			acked[rec.JobID] = true
		}
		// The "restart": a fresh Open of the same directory. The crashed
		// process's file handle is abandoned, like a real kill -9.
		re := verifyExactlyOnce(t, dir, acked, "append-sweep")
		// The recovered store must keep accepting work.
		if _, err := re.Append(testRecord(jobs + n)); err != nil {
			t.Fatalf("n=%d: append after recovery: %v", n, err)
		}
		if err := re.Sync(); err != nil {
			t.Fatalf("n=%d: sync after recovery: %v", n, err)
		}
		if !crashed {
			// The hook budget outlived the whole workload: every crash
			// point has been visited.
			if len(acked) != jobs {
				t.Fatalf("clean run acked %d of %d jobs", len(acked), jobs)
			}
			break
		}
	}
}

// TestCrashSweepAckedRetryIdempotent drives the client-retry protocol
// through every crash point: after the crash, the writer re-sends its
// whole batch (it cannot know which appends survived), and the store must
// absorb the replay without duplicates.
func TestCrashSweepAckedRetryIdempotent(t *testing.T) {
	const jobs = 25
	for n := 0; ; n++ {
		dir := t.TempDir()
		s, err := Open(dir, Options{SegmentBytes: 1024})
		if err != nil {
			t.Fatal(err)
		}
		s.SetHook(faults.CrashAfterSteps(n))
		crashed := false
		for i := 0; i < jobs; i++ {
			if _, err := s.Append(testRecord(i)); err != nil {
				crashed = true
				break
			}
		}
		if !crashed {
			if err := s.Sync(); err != nil {
				crashed = true
			}
		}
		// Retry: reopen and re-send everything.
		re, err := Open(dir, Options{SegmentBytes: 1024})
		if err != nil {
			t.Fatalf("n=%d: reopen: %v", n, err)
		}
		acked := make(map[int64]bool)
		for i := 0; i < jobs; i++ {
			rec := testRecord(i)
			if _, err := re.Append(rec); err != nil {
				t.Fatalf("n=%d: retry append %d: %v", n, i, err)
			}
			acked[rec.JobID] = true
		}
		if err := re.Sync(); err != nil {
			t.Fatalf("n=%d: retry sync: %v", n, err)
		}
		if err := re.Close(); err != nil {
			t.Fatalf("n=%d: close: %v", n, err)
		}
		verifyExactlyOnce(t, dir, acked, "retry-sweep")
		if !crashed {
			break
		}
	}
}

func TestCrashSweepCompact(t *testing.T) {
	const jobs = 40
	for n := 0; ; n++ {
		dir := t.TempDir()
		s, err := Open(dir, Options{SegmentBytes: 1024, ChunkRecords: 8})
		if err != nil {
			t.Fatal(err)
		}
		acked := make(map[int64]bool)
		for i := 0; i < jobs; i++ {
			rec := testRecord(i)
			if _, err := s.Append(rec); err != nil {
				t.Fatal(err)
			}
			acked[rec.JobID] = true
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		// A physical duplicate (as a crashed earlier compaction would
		// leave): compaction must drop it, and a crashed compaction must
		// never surface it twice.
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		appendRawDuplicate(t, dir, 500, testRecord(1), 90)
		s, err = Open(dir, Options{SegmentBytes: 1024, ChunkRecords: 8})
		if err != nil {
			t.Fatal(err)
		}
		s.SetHook(faults.CrashAfterSteps(n))
		_, cerr := s.Compact()
		crashed := cerr != nil
		if crashed && !errors.Is(cerr, faults.ErrInjectedCrash) {
			t.Fatalf("n=%d: compact failed for a non-injected reason: %v", n, cerr)
		}
		re := verifyExactlyOnce(t, dir, acked, "compact-sweep")
		if !crashed {
			// The completed compaction must have dropped the duplicate
			// frame and produced a verifiable layout.
			if st := re.Stats(); st.DuplicateFrames != 0 || st.Compactions == 0 {
				t.Fatalf("post-compaction stats: %+v", st)
			}
			break
		}
	}
}

func TestCrashAtCursorCommitLeavesCursor(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if _, err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceCursor(2); err != nil {
		t.Fatal(err)
	}
	s.SetHook(faults.CrashAtStep(StepCursorCommit))
	if err := s.AdvanceCursor(5); err == nil {
		t.Fatal("cursor advance should have crashed")
	}
	s2 := mustOpen(t, dir, Options{})
	if got := s2.Cursor(); got != 2 {
		t.Fatalf("cursor after crashed advance = %d, want 2 (the last committed value)", got)
	}
	if got := s2.Pending(); got != 3 {
		t.Fatalf("pending = %d, want 3 — jobs past the crashed cursor must stay in the backlog", got)
	}
}

// TestTornAppendTruncated simulates a torn write at every byte boundary of
// the final frame: the tail is truncated, fully-synced records survive,
// and nothing is quarantined (an incomplete frame is torn, not corrupt).
func TestTornAppendTruncated(t *testing.T) {
	base := t.TempDir()
	// Build a reference store to learn the frame size of record 3.
	ref := mustOpen(t, base, Options{})
	for i := 0; i < 4; i++ {
		if _, err := ref.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(ref.segPath(1))
	if err != nil {
		t.Fatal(err)
	}
	frameLen := len(appendFrame(nil, encodePayload(nil, 4, testRecord(3))))
	for cut := 1; cut < frameLen; cut++ {
		dir := t.TempDir()
		s := mustOpen(t, dir, Options{})
		for i := 0; i < 4; i++ {
			if _, err := s.Append(testRecord(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(s.segPath(1), int64(len(whole)-cut)); err != nil {
			t.Fatal(err)
		}
		s2 := mustOpen(t, dir, Options{})
		counts := make(map[int64]int)
		if err := s2.Scan(func(seq uint64, rec *darshan.Record) bool {
			counts[rec.JobID]++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(counts) != 3 {
			t.Fatalf("cut=%d: %d records survive, want 3", cut, len(counts))
		}
		rep := s2.Recovery()
		if rep.TornBytes == 0 {
			t.Fatalf("cut=%d: recovery did not report a torn tail: %+v", cut, rep)
		}
		if rep.Quarantined != 0 {
			t.Fatalf("cut=%d: torn tail was quarantined, not truncated: %+v", cut, rep)
		}
		// The truncated store keeps working and the truncated job can be
		// re-sent as a fresh append.
		if res, err := s2.Append(testRecord(3)); err != nil || res.Duplicate {
			t.Fatalf("cut=%d: re-append of torn job: res=%+v err=%v", cut, res, err)
		}
	}
}
