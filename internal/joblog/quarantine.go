package joblog

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/hpc-repro/aiio/internal/darshan"
)

// Operator access to the quarantine log (`aiio quarantine`). The log is
// append-only text — one header line per entry followed by the hex payload
// — written by quarantine(); this file is its reader: list entries, decode
// the ones that still frame as records, and purge the log once an operator
// has dealt with them.

// QuarantineEntry is one preserved bad record.
type QuarantineEntry struct {
	// Index is the entry's position in the log (the `aiio quarantine show
	// -n` handle), 0-based in quarantine order.
	Index int `json:"index"`
	// TimeUnix is when the record was quarantined.
	TimeUnix int64 `json:"time_unix"`
	// Bytes is the preserved payload length (0 for parse-reject notes,
	// which have no recoverable record).
	Bytes int `json:"bytes"`
	// Reason is why the record was refused (CRC mismatch at recovery,
	// ingest validation failure, parse reject).
	Reason string `json:"reason"`
	// Payload is the preserved raw payload (nil for notes).
	Payload []byte `json:"-"`
}

// Record decodes the preserved payload back into the job record it was
// before quarantine. Entries quarantined for CRC damage may no longer
// decode; notes (no payload) never do.
func (e *QuarantineEntry) Record() (seq uint64, rec *darshan.Record, err error) {
	if len(e.Payload) == 0 {
		return 0, nil, fmt.Errorf("joblog: quarantine entry %d holds no payload", e.Index)
	}
	return decodePayload(e.Payload)
}

// parseQuarantineHeader parses one `# quarantined time=T bytes=B reason=Q`
// line. Malformed headers return ok=false and are surfaced as opaque
// entries rather than hiding log damage.
func parseQuarantineHeader(line string) (t int64, n int, reason string, ok bool) {
	rest, found := strings.CutPrefix(line, "# quarantined ")
	if !found {
		return 0, 0, "", false
	}
	ti := strings.Index(rest, "time=")
	bi := strings.Index(rest, " bytes=")
	ri := strings.Index(rest, " reason=")
	if ti != 0 || bi < 0 || ri < bi {
		return 0, 0, "", false
	}
	t, err1 := strconv.ParseInt(rest[len("time="):bi], 10, 64)
	n, err2 := strconv.Atoi(rest[bi+len(" bytes="):ri])
	reason, err3 := strconv.Unquote(rest[ri+len(" reason="):])
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, 0, "", false
	}
	return t, n, reason, true
}

// Quarantine reads every entry in the quarantine log, oldest first. An
// empty (or absent) log returns an empty slice.
func (s *Store) Quarantine() ([]QuarantineEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return readQuarantine(filepath.Join(s.dir, quarantineDir, quarantineLog))
}

// ReadQuarantine reads a joblog directory's quarantine entries without
// opening (and therefore recovering) the whole store — safe against a
// joblog another process is serving from.
func ReadQuarantine(dir string) ([]QuarantineEntry, error) {
	return readQuarantine(filepath.Join(dir, quarantineDir, quarantineLog))
}

func readQuarantine(path string) ([]QuarantineEntry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("joblog: open quarantine log: %w", err)
	}
	defer f.Close()
	var entries []QuarantineEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 4*(MaxPayloadLen*2+64))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "# quarantined ") {
			continue // payload line without a pending header, or damage
		}
		e := QuarantineEntry{Index: len(entries)}
		var ok bool
		if e.TimeUnix, e.Bytes, e.Reason, ok = parseQuarantineHeader(line); !ok {
			e.Reason = "unparseable quarantine header: " + line
		}
		// The payload line follows the header; a truncated tail (crash
		// mid-quarantine-write) leaves the entry with no payload.
		if sc.Scan() {
			if raw, derr := hex.DecodeString(sc.Text()); derr == nil {
				e.Payload = raw
			}
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("joblog: read quarantine log: %w", err)
	}
	return entries, nil
}

// PurgeQuarantine removes every quarantined entry, returning how many were
// dropped. The live quarantine counter (Stats().Quarantined) resets with
// it; the recovery report keeps its historical numbers.
func (s *Store) PurgeQuarantine() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.dir, quarantineDir, quarantineLog)
	n := countQuarantine(path)
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return 0, fmt.Errorf("joblog: purge quarantine log: %w", err)
	}
	syncDir(filepath.Join(s.dir, quarantineDir))
	s.quarantined = 0
	return n, nil
}
