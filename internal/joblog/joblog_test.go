package joblog

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
)

// testRecord builds a deterministic record; i controls every field, so
// distinct i means a distinct job hash.
func testRecord(i int) *darshan.Record {
	rec := &darshan.Record{
		JobID:          int64(i + 1),
		App:            fmt.Sprintf("app-%d", i%7),
		Year:           2019 + i%4,
		PerfMiBps:      float64(100 + i),
		SlowestSeconds: float64(i) * 0.25,
	}
	for j := range rec.Counters {
		rec.Counters[j] = float64((i*31 + j*7) % 1000)
	}
	return rec
}

// mustOpen opens a store and fails the test on error.
func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return s
}

// collect scans the store into a JobID → count map plus ordered records.
func collect(t *testing.T, s *Store) (map[int64]int, []*darshan.Record) {
	t.Helper()
	counts := make(map[int64]int)
	var recs []*darshan.Record
	if err := s.Scan(func(seq uint64, rec *darshan.Record) bool {
		counts[rec.JobID]++
		recs = append(recs, rec)
		return true
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return counts, recs
}

func TestAppendScanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	const n = 50
	for i := 0; i < n; i++ {
		res, err := s.Append(testRecord(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if res.Duplicate {
			t.Fatalf("append %d reported duplicate", i)
		}
		if res.Seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d, want %d", i, res.Seq, i+1)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	counts, recs := collect(t, s)
	if len(recs) != n {
		t.Fatalf("scanned %d records, want %d", len(recs), n)
	}
	for i, rec := range recs {
		want := testRecord(i)
		if *rec != *want {
			t.Fatalf("record %d does not round-trip:\n got %+v\nwant %+v", i, rec, want)
		}
	}
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("job %d scanned %d times", id, c)
		}
	}
	st := s.Stats()
	if st.Records != n || st.Pending != n || st.Quarantined != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDuplicateAppendsAreIdempotent(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	first, err := s.Append(testRecord(3))
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.Append(testRecord(3))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Duplicate || again.Seq != first.Seq {
		t.Fatalf("retry: %+v, want duplicate of seq %d", again, first.Seq)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The dedup index must survive a restart: a retry after reopen is
	// still a duplicate.
	s2 := mustOpen(t, dir, Options{})
	res, err := s2.Append(testRecord(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Duplicate {
		t.Fatalf("retry after reopen not deduplicated: %+v", res)
	}
	if st := s2.Stats(); st.Records != 1 {
		t.Fatalf("records = %d, want 1", st.Records)
	}
}

func TestRotationSealsSegments(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 2048})
	const n = 60
	for i := 0; i < n; i++ {
		if _, err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SealedSegments < 2 {
		t.Fatalf("expected multiple sealed segments, got %d (stats %+v)", st.SealedSegments, st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{SegmentBytes: 2048})
	counts, recs := collect(t, s2)
	if len(recs) != n || len(counts) != n {
		t.Fatalf("after reopen: %d records (%d unique), want %d", len(recs), len(counts), n)
	}
	if rep := s2.Recovery(); rep.Quarantined != 0 || rep.TornBytes != 0 {
		t.Fatalf("clean reopen reported repairs: %+v", rep)
	}
}

func TestCursorAndDrainPending(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if _, err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceCursor(5); err != nil {
		t.Fatal(err)
	}
	if got := s.Pending(); got != 5 {
		t.Fatalf("pending = %d, want 5", got)
	}
	var batches []int
	var lastMax uint64
	err := s.DrainPending(2, func(recs []*darshan.Record, maxSeq uint64) error {
		batches = append(batches, len(recs))
		lastMax = maxSeq
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 || batches[0] != 2 || batches[1] != 2 || batches[2] != 1 {
		t.Fatalf("batches = %v, want [2 2 1]", batches)
	}
	if lastMax != 10 {
		t.Fatalf("maxSeq = %d, want 10", lastMax)
	}
	// The cursor survives a restart.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	if got := s2.Cursor(); got != 5 {
		t.Fatalf("cursor after reopen = %d, want 5", got)
	}
	if got := s2.Pending(); got != 5 {
		t.Fatalf("pending after reopen = %d, want 5", got)
	}
}

// appendRawDuplicate writes a frame for rec with a fresh seq directly into
// a new segment file, bypassing the dedup index — the on-disk state a
// crash-interrupted compaction or a replayed WAL shipment leaves behind.
func appendRawDuplicate(t *testing.T, dir string, seq uint64, rec *darshan.Record, segIdx uint64) {
	t.Helper()
	payload := encodePayload(nil, seq, rec)
	frame := appendFrame(nil, payload)
	path := filepath.Join(dir, segmentsDir, fmt.Sprintf("%08d%s", segIdx, segmentExt))
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestPhysicalDuplicatesMaskedThenCompacted(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 8; i++ {
		if _, err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A duplicate of job 2 under a new sequence number, in a later segment.
	appendRawDuplicate(t, dir, 99, testRecord(2), 77)

	s2 := mustOpen(t, dir, Options{})
	if rep := s2.Recovery(); rep.DuplicateFrames != 1 {
		t.Fatalf("recovery: %+v, want 1 duplicate frame", rep)
	}
	counts, _ := collect(t, s2)
	if len(counts) != 8 {
		t.Fatalf("unique jobs = %d, want 8", len(counts))
	}
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("job %d yielded %d times — dedup mask failed", id, c)
		}
	}
	stats, err := s2.Compact()
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if stats.DuplicatesDropped != 1 {
		t.Fatalf("compact stats %+v, want 1 duplicate dropped", stats)
	}
	counts, _ = collect(t, s2)
	if len(counts) != 8 {
		t.Fatalf("after compaction: %d unique, want 8", len(counts))
	}
	if st := s2.Stats(); st.DuplicateFrames != 0 || st.Compactions != 1 || st.LastCompactionUnix == 0 {
		t.Fatalf("post-compaction stats: %+v", st)
	}
}

func TestCompactionBoundedChunksManyRuns(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 4096, ChunkRecords: 16})
	const n = 150
	for i := 0; i < n; i++ {
		if _, err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := s.Compact()
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if stats.Runs < 2 {
		t.Fatalf("expected a multi-run external sort, got %d runs (stats %+v)", stats.Runs, stats)
	}
	if stats.FramesOut != n {
		t.Fatalf("frames out = %d, want %d", stats.FramesOut, n)
	}
	counts, _ := collect(t, s)
	if len(counts) != n {
		t.Fatalf("unique jobs after compaction = %d, want %d", len(counts), n)
	}
	// Reopen: the compacted layout must verify against its manifest.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	if rep := s2.Recovery(); rep.Quarantined != 0 || rep.RemovedDebris != 0 {
		t.Fatalf("recovery after compaction: %+v", rep)
	}
	counts, _ = collect(t, s2)
	if len(counts) != n {
		t.Fatalf("after reopen: %d unique, want %d", len(counts), n)
	}
}

func TestQuarantineRecordPersists(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	bad := testRecord(0)
	if err := s.QuarantineRecord(bad, "counter POSIX_READS is not finite"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Records != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	if st := s2.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantine count lost across reopen: %+v", st)
	}
}

func TestSyncEveryPolicy(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SyncEvery: 1})
	for i := 0; i < 5; i++ {
		if _, err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	// With SyncEvery=1 every append is already durable: a reopen without
	// Close (a crash) must still see all five.
	s2 := mustOpen(t, dir, Options{})
	counts, _ := collect(t, s2)
	if len(counts) != 5 {
		t.Fatalf("auto-synced records lost: %d, want 5", len(counts))
	}
}
