package joblog

import (
	"bytes"
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
)

// FuzzDecodePayload drives arbitrary bytes through the WAL payload decoder.
// Two invariants: the decoder never panics, and any byte string it accepts
// re-encodes byte-identically (the format is canonical, so hashing and
// salvage-rewrite are stable).
func FuzzDecodePayload(f *testing.F) {
	// Seed with real encodings of varied shapes plus near-miss mutants.
	for _, i := range []int{0, 1, 7, 42} {
		f.Add(encodePayload(nil, uint64(i+1), testRecord(i)))
	}
	long := testRecord(5)
	long.App = string(bytes.Repeat([]byte("x"), maxAppLen))
	f.Add(encodePayload(nil, 9, long))
	empty := testRecord(6)
	empty.App = ""
	f.Add(encodePayload(nil, 10, empty))
	f.Add([]byte{})
	f.Add([]byte{payloadMagic})
	f.Add([]byte{payloadMagic, payloadVersion})
	f.Add([]byte{payloadMagic, 0xFF, 1, 2, 3})
	trunc := encodePayload(nil, 3, testRecord(2))
	f.Add(trunc[:len(trunc)/2])
	f.Add(append(encodePayload(nil, 4, testRecord(3)), 0x00)) // trailing byte

	f.Fuzz(func(t *testing.T, data []byte) {
		seq, rec, err := decodePayload(data)
		if err != nil {
			return
		}
		// Accepted ⇒ canonical: re-encoding reproduces the input exactly.
		out := encodePayload(nil, seq, rec)
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted payload does not round-trip:\n in  %x\n out %x", data, out)
		}
		// And the idempotency hash must ignore seq: a re-sequenced copy of
		// the same record hashes identically.
		resent := encodePayload(nil, seq+1000, rec)
		if payloadHash(resent) != payloadHash(data) {
			t.Fatalf("hash is seq-sensitive: %x vs %x", payloadHash(data), payloadHash(resent))
		}
	})
}

// FuzzParseFrame checks that the framing layer never panics and never
// claims a valid frame for bytes whose checksum doesn't cover the payload.
func FuzzParseFrame(f *testing.F) {
	f.Add(appendFrame(nil, encodePayload(nil, 1, testRecord(0))))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0xA7})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		res, payload, size := parseFrame(data)
		switch res {
		case frameOK:
			if size < frameHeaderLen || size > len(data) {
				t.Fatalf("frameOK with size %d over %d input bytes", size, len(data))
			}
			// The payload must verify against the stored checksum — that's
			// what frameOK asserts — so a reframe is byte-identical.
			reframed := appendFrame(nil, payload)
			if !bytes.Equal(reframed, data[:size]) {
				t.Fatalf("frameOK bytes do not reframe identically")
			}
		case frameCorrupt:
			if size < frameHeaderLen || size > len(data) {
				t.Fatalf("frameCorrupt with size %d over %d input bytes", size, len(data))
			}
		case frameTorn:
			if size != 0 {
				t.Fatalf("frameTorn must consume nothing, got %d", size)
			}
		}
	})
}

// TestDecodeRejectsWrongCounterCount pins the schema check: a payload
// claiming a different counter count than the compiled-in schema is an
// error, never a partial record.
func TestDecodeRejectsWrongCounterCount(t *testing.T) {
	p := encodePayload(nil, 1, testRecord(0))
	// The counter-count byte sits right before the counter block.
	idx := len(p) - int(darshan.NumCounters)*8 - 1
	p[idx] = byte(darshan.NumCounters) - 1
	if _, _, err := decodePayload(p); err == nil {
		t.Fatal("decoder accepted a payload with a mismatched counter count")
	}
}
