// Package joblog is the durable half of the fleet-telemetry story: an
// append-only, crash-safe, on-disk job store that absorbs the Darshan
// record stream the AIIO service continuously learns from (the 825 GB /
// 6.6 M-job archive of Table 1, as a write-ahead log instead of an
// in-memory Dataset).
//
// Layout:
//
//	dir/
//	  MANIFEST            ← JSON: sealed segments with SHA-256, compaction
//	                        history (committed via tmp + fsync + rename)
//	  CURSOR              ← "seq\n": jobs ≤ seq are incorporated in a
//	                        committed model generation (atomic rename)
//	  segments/
//	    00000001.wal      ← sealed (immutable, checksummed in MANIFEST)
//	    00000002.wal      ← active (append-only; not yet in MANIFEST)
//	  quarantine/
//	    quarantine.log    ← checksum-failing records, kept not dropped
//
// Records are framed as length + CRC-32C + payload (codec.go). The
// durability contract: a job is acknowledged only after Sync returns, and
// every acknowledged job survives any crash exactly once. Concurrent Sync
// calls group-commit (leader/follower fsync coalescing), so parallel
// ingest streams share one disk flush per batch without weakening the
// ack-after-fsync ordering. Recovery
// truncates a torn tail (an incomplete or unframeable trailing write),
// quarantines checksum-failing records that are still cleanly framed, and
// deduplicates replayed appends by job hash, so client retries after a
// lost ack are idempotent.
//
// Compaction (compact.go) rewrites the sealed segments through a chunked
// sort + k-way heap merge, dropping physical duplicates, in bounded
// memory — the store operates on datasets larger than RAM. The in-memory
// footprint that remains is the dedup index, ~24 bytes per unique job
// (a 128-bit job hash plus its sequence number).
package joblog

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/hpc-repro/aiio/internal/darshan"
)

const (
	manifestName  = "MANIFEST"
	cursorName    = "CURSOR"
	segmentsDir   = "segments"
	quarantineDir = "quarantine"
	quarantineLog = "quarantine.log"
	segmentExt    = ".wal"
	tmpPrefix     = ".tmp-"

	// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
	// is zero.
	DefaultSegmentBytes = 8 << 20
)

// Durable-step hook names, in the order an append/rotate/compact hits
// them. A fault-injection hook (faults.CrashAfterSteps / CrashAtStep)
// aborts the operation at one of these points to simulate a crash landing
// there; production stores have no hook.
const (
	StepAppendWrite     = "append-write"      // before writing one record's frame
	StepAppendSync      = "append-sync"       // before fsyncing the active segment
	StepSealSync        = "seal-sync"         // before fsyncing a segment being sealed
	StepSealManifest    = "seal-manifest"     // before committing the manifest that seals it
	StepCompactRun      = "compact-run"       // before writing one sorted run
	StepCompactMerge    = "compact-merge"     // before the k-way merge starts
	StepCompactSeal     = "compact-seal"      // before renaming one merged segment into place
	StepCompactManifest = "compact-manifest"  // before committing the compacted manifest
	StepCompactCleanup  = "compact-cleanup"   // before deleting one superseded segment
	StepCursorCommit    = "cursor-commit"     // before committing the retrain cursor
)

// segmentInfo describes one sealed (immutable) segment in the manifest.
type segmentInfo struct {
	File   string `json:"file"`
	Frames int    `json:"frames"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

type manifest struct {
	Sealed             []segmentInfo `json:"sealed"`
	Compactions        int           `json:"compactions,omitempty"`
	LastCompactionUnix int64         `json:"last_compaction_unix,omitempty"`
}

// Options tunes a store. The zero value is production-ready.
type Options struct {
	// SegmentBytes is the size at which the active segment is sealed and a
	// new one opened (DefaultSegmentBytes when 0). Sealing fsyncs the
	// segment and commits it — with its SHA-256 — to the manifest.
	SegmentBytes int64
	// SyncEvery, when > 0, fsyncs the active segment automatically after
	// every N appends. Regardless of its value, Sync must be called before
	// acknowledging a batch: only synced records are durable.
	SyncEvery int
	// ChunkRecords bounds how many records a compaction sorts in memory at
	// once (DefaultChunkRecords when 0).
	ChunkRecords int
}

// RecoveryReport says what Open had to repair.
type RecoveryReport struct {
	// TornBytes is how many trailing bytes were truncated as torn writes.
	TornBytes int64 `json:"torn_bytes,omitempty"`
	// Quarantined is how many checksum-failing or undecodable records were
	// moved to the quarantine log during this recovery.
	Quarantined int `json:"quarantined,omitempty"`
	// ResealedSegments counts segments that were committed to the manifest
	// by recovery (a crash landed between seal-sync and seal-manifest).
	ResealedSegments int `json:"resealed_segments,omitempty"`
	// RemovedDebris counts swept temp files and superseded segments left
	// by a crashed compaction.
	RemovedDebris int `json:"removed_debris,omitempty"`
	// DuplicateFrames counts physical duplicate frames found on disk
	// (replayed appends, crash-interrupted compactions); they are masked
	// by the dedup index until the next compaction drops them.
	DuplicateFrames int `json:"duplicate_frames,omitempty"`
}

// Store is a crash-safe append-only job store rooted at a directory.
type Store struct {
	dir  string
	opts Options

	// hook, when non-nil, runs before each durable step and aborts it on
	// error — the fault-injection seam for crash drills. Tests only.
	hook func(step, path string) error

	// compactMu serializes Compact against in-flight Scans: Scan holds the
	// read side while it walks segment files outside mu, so compaction
	// cannot delete a superseded segment out from under it. Lock order is
	// always compactMu before mu.
	compactMu sync.RWMutex

	mu          sync.Mutex
	active      *os.File
	activeBuf   []byte // frames appended but not yet flushed to the file
	activeIdx   uint64
	activeBytes int64 // file bytes + buffered bytes
	man         manifest
	nextSegIdx  uint64
	nextSeq     uint64
	cursor      uint64
	index       map[hashKey]uint64 // payload hash → first (lowest) seq
	records     int                // unique records
	pending     int                // unique records past the cursor
	dupFrames   int                // physical duplicate frames on disk
	quarantined int                // lifetime quarantine entries
	sealedBytes int64
	recovery    RecoveryReport
	encBuf      []byte

	// Group commit. Every staged append gets the next appendSeq; durableSeq
	// is the highest appendSeq known fsynced. A Sync caller whose target is
	// already ≤ durableSeq returns immediately; otherwise one caller becomes
	// the leader — it flushes the staged frames, notes the covered appendSeq,
	// drops mu for the fsync itself, then publishes durableSeq and broadcasts
	// syncDone. Callers that arrive while a leader's fsync is in flight wait
	// on syncDone: one disk flush acknowledges every append staged before it
	// (leader/follower group commit), so N concurrent ingest streams cost
	// ~1 fsync per coalesced batch instead of N.
	appendSeq    uint64
	durableSeq   uint64
	syncInFlight bool
	syncDone     *sync.Cond // signaled when a leader's fsync completes (ok or not)
}

// Open opens (creating if needed) the store at dir, running recovery:
// temp debris is swept, sealed segments are verified against their
// manifest checksums, torn tails are truncated, corrupt records are
// quarantined, and the dedup index is rebuilt.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		nextSeq: 1,
		index:   make(map[hashKey]uint64),
	}
	s.syncDone = sync.NewCond(&s.mu)
	for _, d := range []string{dir, filepath.Join(dir, segmentsDir), filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("joblog: create %s: %w", d, err)
		}
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir is the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetHook installs a fault-injection hook called before every durable
// step with (step, path). A non-nil error aborts the operation at that
// point, leaving whatever partial state a real crash would leave.
func (s *Store) SetHook(h func(step, path string) error) { s.hook = h }

func (s *Store) step(step, path string) error {
	if s.hook == nil {
		return nil
	}
	if err := s.hook(step, path); err != nil {
		return fmt.Errorf("joblog: aborted at %s (%s): %w", step, path, err)
	}
	return nil
}

func (s *Store) segPath(idx uint64) string {
	return filepath.Join(s.dir, segmentsDir, fmt.Sprintf("%08d%s", idx, segmentExt))
}

func segIndex(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, segmentExt)
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// recover is the Open-time recovery state machine:
//
//  1. sweep .tmp-* debris from crashed seals and compactions
//  2. load MANIFEST; segments it lists are the sealed, immutable set
//  3. remove on-disk segments ≤ max(manifest index) that the manifest
//     does not list — superseded by a committed compaction whose cleanup
//     was interrupted
//  4. scan every sealed segment; a checksum mismatch against the manifest
//     demotes the segment to a record-by-record salvage (valid frames
//     kept, corrupt ones quarantined, the file rewritten via truncate or
//     tmp + fsync + rename so a crash mid-recovery never loses a frame
//     that was durable before recovery started)
//  5. segments > max(manifest index) are unsealed tails (a crash landed
//     between rotation and its manifest commit, or mid-compaction):
//     salvage-scan each, truncate the torn tail of the last, reseal all
//     but the last into the manifest, and adopt the last as the active
//     segment
//  6. rebuild the dedup index and sequence counter from the surviving
//     frames; read CURSOR
func (s *Store) recover() error {
	segRoot := filepath.Join(s.dir, segmentsDir)
	entries, err := os.ReadDir(segRoot)
	if err != nil {
		return fmt.Errorf("joblog: read segments: %w", err)
	}
	// (1) sweep temp debris.
	var segIdxs []uint64
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			os.Remove(filepath.Join(segRoot, e.Name()))
			s.recovery.RemovedDebris++
			continue
		}
		if idx, ok := segIndex(e.Name()); ok {
			segIdxs = append(segIdxs, idx)
		}
	}
	sort.Slice(segIdxs, func(i, j int) bool { return segIdxs[i] < segIdxs[j] })

	// (2) load the manifest.
	manChanged := false
	if data, err := os.ReadFile(filepath.Join(s.dir, manifestName)); err == nil {
		if err := json.Unmarshal(data, &s.man); err != nil {
			return fmt.Errorf("joblog: parse manifest: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("joblog: read manifest: %w", err)
	}
	inManifest := make(map[uint64]segmentInfo, len(s.man.Sealed))
	var maxSealed uint64
	for _, si := range s.man.Sealed {
		idx, ok := segIndex(si.File)
		if !ok {
			return fmt.Errorf("joblog: manifest names foreign segment %q", si.File)
		}
		inManifest[idx] = si
		if idx > maxSealed {
			maxSealed = idx
		}
	}

	// (3) drop superseded segments; collect unsealed tails.
	var tails []uint64
	for _, idx := range segIdxs {
		if _, ok := inManifest[idx]; ok {
			continue
		}
		if idx <= maxSealed {
			os.Remove(s.segPath(idx))
			s.recovery.RemovedDebris++
			continue
		}
		tails = append(tails, idx)
	}

	// Drop manifest entries whose files vanished (should not happen; a
	// missing sealed segment is data loss we can only surface, not undo).
	kept := s.man.Sealed[:0]
	for _, si := range s.man.Sealed {
		if _, err := os.Stat(filepath.Join(segRoot, si.File)); err == nil {
			kept = append(kept, si)
		} else {
			manChanged = true
		}
	}
	s.man.Sealed = kept

	// (4) verify + scan sealed segments.
	for i := range s.man.Sealed {
		si := &s.man.Sealed[i]
		path := filepath.Join(segRoot, si.File)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("joblog: read sealed segment %s: %w", si.File, err)
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) == si.SHA256 {
			if err := s.indexFrames(data, si.File); err != nil {
				return err
			}
			s.sealedBytes += si.Bytes
			continue
		}
		// Checksum mismatch: salvage record by record.
		clean, frames, err := s.salvage(data, si.File)
		if err != nil {
			return err
		}
		if err := rewriteSegment(path, clean, data); err != nil {
			return fmt.Errorf("joblog: rewrite salvaged segment %s: %w", si.File, err)
		}
		newSum := sha256.Sum256(clean)
		si.SHA256 = hex.EncodeToString(newSum[:])
		si.Bytes = int64(len(clean))
		si.Frames = frames
		s.sealedBytes += si.Bytes
		manChanged = true
	}

	// (5) unsealed tails: salvage each; all but the last are resealed,
	// the last becomes the active segment.
	for i, idx := range tails {
		path := s.segPath(idx)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("joblog: read segment %s: %w", path, err)
		}
		clean, frames, err := s.salvage(data, filepath.Base(path))
		if err != nil {
			return err
		}
		if len(clean) != len(data) {
			if err := rewriteSegment(path, clean, data); err != nil {
				return fmt.Errorf("joblog: truncate torn segment %s: %w", path, err)
			}
		}
		last := i == len(tails)-1
		if !last {
			sum := sha256.Sum256(clean)
			s.man.Sealed = append(s.man.Sealed, segmentInfo{
				File:   filepath.Base(path),
				Frames: frames,
				Bytes:  int64(len(clean)),
				SHA256: hex.EncodeToString(sum[:]),
			})
			s.sealedBytes += int64(len(clean))
			s.recovery.ResealedSegments++
			manChanged = true
			continue
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("joblog: open active segment: %w", err)
		}
		s.active = f
		s.activeIdx = idx
		s.activeBytes = int64(len(clean))
	}

	if n := len(segIdxs); n > 0 {
		s.nextSegIdx = segIdxs[n-1] + 1
	} else {
		s.nextSegIdx = 1
	}
	if maxSealed >= s.nextSegIdx {
		s.nextSegIdx = maxSealed + 1
	}

	// (6) cursor + quarantine count.
	if data, err := os.ReadFile(filepath.Join(s.dir, cursorName)); err == nil {
		if n, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64); err == nil {
			s.cursor = n
		}
	}
	// Floor nextSeq at cursor+1: if the highest-seq frames were quarantined
	// or lost to a torn tail after CURSOR advanced, a rebuilt nextSeq could
	// regress below the durable cursor and new appends would be assigned
	// seq ≤ cursor — stored but invisible to DrainPending forever.
	if s.cursor+1 > s.nextSeq {
		s.nextSeq = s.cursor + 1
	}
	s.recomputePendingLocked()
	// The quarantine log already holds whatever salvage wrote this pass, so
	// this is an assignment, not an addition.
	s.quarantined = countQuarantine(filepath.Join(s.dir, quarantineDir, quarantineLog))

	if manChanged {
		if err := s.commitManifest(""); err != nil {
			return err
		}
	}
	return nil
}

// indexFrames walks a verified segment's frames, feeding the dedup index.
// A verified segment (manifest checksum matched) can still carry physical
// duplicates — replayed appends — which are counted, not indexed twice.
func (s *Store) indexFrames(data []byte, file string) error {
	off := 0
	for off < len(data) {
		res, payload, size := parseFrame(data[off:])
		if res != frameOK {
			// A sealed segment whose SHA-256 matched cannot hold a bad
			// frame unless the manifest itself was written around one —
			// treat like salvage would.
			return fmt.Errorf("joblog: verified segment %s has unparseable frame at offset %d", file, off)
		}
		seq, _, err := decodePayload(payload)
		if err != nil {
			return fmt.Errorf("joblog: verified segment %s has undecodable payload at offset %d: %v", file, off, err)
		}
		s.noteFrame(payloadHash(payload), seq)
		off += size
	}
	return nil
}

// noteFrame registers one on-disk frame with the dedup index.
func (s *Store) noteFrame(hash hashKey, seq uint64) {
	if first, ok := s.index[hash]; ok {
		if seq < first {
			s.index[hash] = seq
		}
		s.dupFrames++
		s.recovery.DuplicateFrames++
	} else {
		s.index[hash] = seq
		s.records++
	}
	if seq >= s.nextSeq {
		s.nextSeq = seq + 1
	}
}

// salvage scans raw segment bytes record by record: valid frames are kept
// (and indexed), checksum-failing or undecodable ones are quarantined, and
// an unframeable tail is dropped (torn-write truncation). It returns the
// clean bytes and the number of surviving frames.
func (s *Store) salvage(data []byte, file string) (clean []byte, frames int, err error) {
	clean = make([]byte, 0, len(data))
	off := 0
	for off < len(data) {
		res, payload, size := parseFrame(data[off:])
		switch res {
		case frameOK:
			if seq, _, derr := decodePayload(payload); derr != nil {
				if qerr := s.quarantine(payload, fmt.Sprintf("%s@%d: %v", file, off, derr)); qerr != nil {
					return nil, 0, qerr
				}
			} else {
				s.noteFrame(payloadHash(payload), seq)
				clean = append(clean, data[off:off+size]...)
				frames++
			}
			off += size
		case frameCorrupt:
			if qerr := s.quarantine(payload, fmt.Sprintf("%s@%d: crc mismatch", file, off)); qerr != nil {
				return nil, 0, qerr
			}
			off += size
		case frameTorn:
			s.recovery.TornBytes += int64(len(data) - off)
			return clean, frames, nil
		}
	}
	return clean, frames, nil
}

// quarantine appends one bad record's bytes to the quarantine log: kept,
// not dropped, so an operator (or a future decoder fix) can recover them.
func (s *Store) quarantine(payload []byte, reason string) error {
	path := filepath.Join(s.dir, quarantineDir, quarantineLog)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("joblog: open quarantine log: %w", err)
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "# quarantined time=%d bytes=%d reason=%q\n%s\n",
		time.Now().Unix(), len(payload), reason, hex.EncodeToString(payload)); err != nil {
		return fmt.Errorf("joblog: write quarantine log: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("joblog: sync quarantine log: %w", err)
	}
	s.quarantined++
	s.recovery.Quarantined++
	return nil
}

// countQuarantine counts entries in the quarantine log.
func countQuarantine(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	return strings.Count(string(data), "# quarantined ")
}

// Recovery reports what Open repaired.
func (s *Store) Recovery() RecoveryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// AppendResult reports one append.
type AppendResult struct {
	// Seq is the record's sequence number (the original's for a duplicate).
	Seq uint64
	// Duplicate is true when the job hash was already present: a client
	// retry or a re-ingested file. Nothing was written.
	Duplicate bool
}

// QuarantineRecord routes a record that failed ingest-boundary validation
// (NaN/Inf counters, Record.Validate failure) to the quarantine log
// instead of the WAL, so it can never poison incremental retraining.
func (s *Store) QuarantineRecord(rec *darshan.Record, reason string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	payload := encodePayload(nil, 0, rec)
	return s.quarantine(payload, "ingest: "+reason)
}

// QuarantineNote records a boundary rejection whose raw record is not
// recoverable — the text parser refused it before a Record existed — so
// only the reason is preserved, with an empty payload.
func (s *Store) QuarantineNote(reason string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantine(nil, "ingest: "+reason)
}

// Append stages one record in the active segment. The record is NOT
// durable until Sync returns (or the SyncEvery policy fires); callers must
// not acknowledge it before then. Appending a job whose hash is already
// present is a no-op reported as Duplicate — retries are idempotent. The
// hash is a 128-bit truncated SHA-256 (see hashKey in codec.go), so two
// distinct jobs colliding — which would silently swallow the second — is
// cryptographically negligible, not merely unlikely.
func (s *Store) Append(rec *darshan.Record) (AppendResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.encBuf = encodePayload(s.encBuf[:0], s.nextSeq, rec)
	hash := payloadHash(s.encBuf)
	if first, ok := s.index[hash]; ok {
		return AppendResult{Seq: first, Duplicate: true}, nil
	}
	if s.active == nil {
		if err := s.openActive(); err != nil {
			return AppendResult{}, err
		}
	}
	if err := s.step(StepAppendWrite, s.segPath(s.activeIdx)); err != nil {
		return AppendResult{}, err
	}
	frame := appendFrame(nil, s.encBuf)
	s.activeBuf = append(s.activeBuf, frame...)
	seq := s.nextSeq
	s.nextSeq++
	s.index[hash] = seq
	s.records++
	s.pending++ // seq == nextSeq > cursor always (recovery floors nextSeq)
	s.activeBytes += int64(len(frame))
	s.appendSeq++
	res := AppendResult{Seq: seq}
	if s.opts.SyncEvery > 0 && s.appendSeq-s.durableSeq >= uint64(s.opts.SyncEvery) {
		if err := s.syncLocked(); err != nil {
			return res, err
		}
	}
	if s.activeBytes >= s.opts.SegmentBytes {
		if err := s.sealLocked(); err != nil {
			return res, err
		}
	}
	return res, nil
}

func (s *Store) openActive() error {
	idx := s.nextSegIdx
	f, err := os.OpenFile(s.segPath(idx), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("joblog: create segment: %w", err)
	}
	s.active = f
	s.activeIdx = idx
	s.activeBytes = 0
	s.nextSegIdx++
	syncDir(filepath.Join(s.dir, segmentsDir))
	return nil
}

// flushLocked writes the staged frames to the active segment file.
func (s *Store) flushLocked() error {
	if len(s.activeBuf) == 0 {
		return nil
	}
	if s.active == nil {
		return fmt.Errorf("joblog: staged bytes with no active segment")
	}
	if _, err := s.active.Write(s.activeBuf); err != nil {
		return fmt.Errorf("joblog: write segment: %w", err)
	}
	s.activeBuf = s.activeBuf[:0]
	return nil
}

// Sync makes every staged append durable: staged frames are written and
// the active segment is fsynced. Only after Sync returns may the appended
// jobs be acknowledged.
//
// Concurrent Sync calls group-commit: the first caller past the durable
// watermark becomes the fsync leader and releases the store lock for the
// disk flush itself; callers arriving during that flush park as followers
// and are acknowledged by the same fsync when it covers their appends.
// Appends staged after the leader flushed are NOT covered — such a
// follower re-runs as the next leader — so the contract is exact: Sync
// never returns nil unless every append staged before the call is on disk.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	target := s.appendSeq
	for s.durableSeq < target {
		if s.syncInFlight {
			// Follower: a leader's fsync is in flight. It may cover target
			// (we parked after its flush) or not (we staged after its flush,
			// or it failed) — re-check on wake and retry as leader if needed.
			s.syncDone.Wait()
			continue
		}
		if err := s.leadSyncLocked(); err != nil {
			return err
		}
	}
	return nil
}

// leadSyncLocked runs one group commit as the leader: flush the staged
// frames, record the appendSeq the flush covers, fsync with mu released,
// then publish the new durable watermark and wake the followers. Called
// with mu held; returns with mu held.
func (s *Store) leadSyncLocked() error {
	if s.active == nil && len(s.activeBuf) == 0 {
		// Everything staged was already sealed (sealing fsyncs).
		s.durableSeq = s.appendSeq
		return nil
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	covered := s.appendSeq
	if err := s.step(StepAppendSync, s.segPath(s.activeIdx)); err != nil {
		return err
	}
	// The fsync itself runs without mu so appenders keep staging — that
	// concurrency is the whole point of group commit. sealLocked and Close
	// wait for !syncInFlight, so f cannot be closed or swapped under us.
	f := s.active
	s.syncInFlight = true
	s.mu.Unlock()
	err := f.Sync()
	s.mu.Lock()
	s.syncInFlight = false
	s.syncDone.Broadcast()
	if err != nil {
		return fmt.Errorf("joblog: sync segment: %w", err)
	}
	if covered > s.durableSeq {
		s.durableSeq = covered
	}
	return nil
}

// waitSyncIdleLocked blocks until no leader fsync is in flight. Anything
// that closes or replaces the active segment file must call it first.
func (s *Store) waitSyncIdleLocked() {
	for s.syncInFlight {
		s.syncDone.Wait()
	}
}

// sealLocked finalizes the active segment: flush, fsync, checksum, commit
// to the manifest. The next append opens a fresh segment.
func (s *Store) sealLocked() error {
	s.waitSyncIdleLocked()
	if s.active == nil {
		return nil
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	path := s.segPath(s.activeIdx)
	if err := s.step(StepSealSync, path); err != nil {
		return err
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("joblog: sync sealing segment: %w", err)
	}
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("joblog: close sealing segment: %w", err)
	}
	s.active = nil
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("joblog: checksum sealing segment: %w", err)
	}
	frames := 0
	for off := 0; off < len(data); {
		_, _, size := parseFrame(data[off:])
		if size == 0 {
			break
		}
		frames++
		off += size
	}
	sum := sha256.Sum256(data)
	s.man.Sealed = append(s.man.Sealed, segmentInfo{
		File:   filepath.Base(path),
		Frames: frames,
		Bytes:  int64(len(data)),
		SHA256: hex.EncodeToString(sum[:]),
	})
	s.sealedBytes += int64(len(data))
	s.activeBytes = 0
	s.durableSeq = s.appendSeq // sealing fsynced every staged append
	return s.commitManifest(StepSealManifest)
}

// commitManifest writes the manifest via tmp + fsync + atomic rename (the
// registry.go idiom). step, when non-empty, is the hook point name.
func (s *Store) commitManifest(step string) error {
	path := filepath.Join(s.dir, manifestName)
	if step != "" {
		if err := s.step(step, path); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(&s.man, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, tmpPrefix+manifestName)
	if err := writeFileSync(tmp, data); err != nil {
		return fmt.Errorf("joblog: write manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("joblog: commit manifest: %w", err)
	}
	syncDir(s.dir)
	return nil
}

// Rotate seals the active segment now (if any), regardless of size.
func (s *Store) Rotate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealLocked()
}

// Close syncs and closes the store. The store remains reopenable; Close
// does not seal the active segment.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil
	}
	if err := s.syncLocked(); err != nil {
		return err
	}
	// syncLocked made our target durable, but a later caller's leader fsync
	// may still be in flight on the file we are about to close.
	s.waitSyncIdleLocked()
	if s.active == nil {
		return nil
	}
	err := s.active.Close()
	s.active = nil
	s.activeBuf = s.activeBuf[:0]
	return err
}

// Scan streams every unique record, in segment order, calling yield with
// the record's sequence number until yield returns false. Physical
// duplicate frames (replays, crash-interrupted compactions) are masked by
// the dedup index: exactly one frame per job hash is yielded. Memory is
// bounded by one segment. Scan holds the compaction read-guard for its
// duration: a concurrent Compact blocks rather than deleting a superseded
// segment out from under the walk (which would abort the scan mid-way —
// e.g. a background incremental retrain racing `aiio joblog -compact`).
func (s *Store) Scan(yield func(seq uint64, rec *darshan.Record) bool) error {
	s.compactMu.RLock()
	defer s.compactMu.RUnlock()
	s.mu.Lock()
	// Flush staged frames so the scan covers them (no fsync needed — the
	// scan reads through the page cache).
	if err := s.flushLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	files := make([]string, 0, len(s.man.Sealed)+1)
	for _, si := range s.man.Sealed {
		files = append(files, filepath.Join(s.dir, segmentsDir, si.File))
	}
	if s.active != nil {
		files = append(files, s.segPath(s.activeIdx))
	}
	s.mu.Unlock()

	// yielded guards against byte-identical physical duplicates — a crashed
	// compaction leaves the same (hash, seq) frame in both the old and new
	// segment, and index[hash] == seq matches both copies.
	yielded := make(map[hashKey]struct{})
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("joblog: scan %s: %w", path, err)
		}
		off := 0
		for off < len(data) {
			res, payload, size := parseFrame(data[off:])
			if res != frameOK {
				// Post-recovery segments are clean; anything else here is
				// concurrent external corruption. Stop at this segment.
				break
			}
			seq, rec, err := decodePayload(payload)
			if err != nil {
				off += size
				continue
			}
			h := payloadHash(payload)
			s.mu.Lock()
			first := s.index[h]
			s.mu.Unlock()
			if first == seq {
				if _, dup := yielded[h]; !dup {
					yielded[h] = struct{}{}
					if !yield(seq, rec) {
						return nil
					}
				}
			}
			off += size
		}
	}
	return nil
}

// Cursor returns the durable retrain cursor: jobs with seq ≤ cursor are
// incorporated in a committed model generation.
func (s *Store) Cursor() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cursor
}

// Pending counts unique records past the cursor — the retrain backlog.
// The count is maintained incrementally (bumped per append, recomputed
// when the cursor moves), not scanned per call: Pending runs on every
// ingest response and /healthz, and a full index walk under mu at the
// 6.6 M-record scale would stall every concurrent append.
func (s *Store) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// recomputePendingLocked rebuilds the pending counter from the index —
// called only when the cursor moves (recovery, AdvanceCursor), never on
// the append or stats hot paths.
func (s *Store) recomputePendingLocked() {
	n := 0
	for _, seq := range s.index {
		if seq > s.cursor {
			n++
		}
	}
	s.pending = n
}

// AdvanceCursor durably moves the retrain cursor forward to seq (a lower
// value is ignored). Call only after the model generation that consumed
// those jobs has committed.
func (s *Store) AdvanceCursor(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq <= s.cursor {
		return nil
	}
	path := filepath.Join(s.dir, cursorName)
	if err := s.step(StepCursorCommit, path); err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, tmpPrefix+cursorName)
	if err := writeFileSync(tmp, []byte(strconv.FormatUint(seq, 10)+"\n")); err != nil {
		return fmt.Errorf("joblog: write cursor: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("joblog: commit cursor: %w", err)
	}
	syncDir(s.dir)
	s.cursor = seq
	s.recomputePendingLocked()
	return nil
}

// DrainPending streams the records past the cursor in mini-batches of at
// most batch records. fn receives each batch and the highest sequence
// number it contains; an error stops the drain. DrainPending does not
// advance the cursor — the caller does, once the batch's consumer (a
// model generation) has committed.
func (s *Store) DrainPending(batch int, fn func(recs []*darshan.Record, maxSeq uint64) error) error {
	if batch <= 0 {
		batch = 512
	}
	cursor := s.Cursor()
	var (
		buf    []*darshan.Record
		maxSeq uint64
		fnErr  error
	)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		err := fn(buf, maxSeq)
		buf = buf[:0]
		return err
	}
	err := s.Scan(func(seq uint64, rec *darshan.Record) bool {
		if seq <= cursor {
			return true
		}
		buf = append(buf, rec)
		if seq > maxSeq {
			maxSeq = seq
		}
		if len(buf) >= batch {
			if fnErr = flush(); fnErr != nil {
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	if fnErr != nil {
		return fnErr
	}
	return flush()
}

// Stats is the operational snapshot surfaced on /healthz.
type Stats struct {
	Dir                string `json:"dir"`
	SealedSegments     int    `json:"sealed_segments"`
	ActiveBytes        int64  `json:"active_bytes"`
	TotalBytes         int64  `json:"total_bytes"`
	Records            int    `json:"records"`
	DuplicateFrames    int    `json:"duplicate_frames,omitempty"`
	Quarantined        int    `json:"quarantined"`
	NextSeq            uint64 `json:"next_seq"`
	Cursor             uint64 `json:"cursor"`
	Pending            int    `json:"pending"`
	Compactions        int    `json:"compactions"`
	LastCompactionUnix int64  `json:"last_compaction_unix,omitempty"`
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Dir:                s.dir,
		SealedSegments:     len(s.man.Sealed),
		ActiveBytes:        s.activeBytes,
		TotalBytes:         s.sealedBytes + s.activeBytes,
		Records:            s.records,
		DuplicateFrames:    s.dupFrames,
		Quarantined:        s.quarantined,
		NextSeq:            s.nextSeq,
		Cursor:             s.cursor,
		Pending:            s.pending,
		Compactions:        s.man.Compactions,
		LastCompactionUnix: s.man.LastCompactionUnix,
	}
}

// rewriteSegment replaces a segment's contents with clean, given disk (its
// current on-disk bytes), without ever passing through a state that is
// missing previously durable frames — a crash at any instant leaves either
// the old bytes or the clean bytes. For the pure torn-tail case (clean is
// a prefix of disk) an in-place truncate suffices; otherwise the clean
// bytes are written to a temp file, fsynced, and renamed over the segment
// (the manifest idiom). A truncate-to-zero-then-write (os.Create) would
// open a window where a crash loses every acknowledged frame in the
// segment — exactly the crash-loop regime recovery runs in.
func rewriteSegment(path string, clean, disk []byte) error {
	if len(clean) <= len(disk) && bytes.Equal(clean, disk[:len(clean)]) {
		f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if err := f.Truncate(int64(len(clean))); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	dir := filepath.Dir(path)
	tmp := filepath.Join(dir, tmpPrefix+filepath.Base(path))
	if err := writeFileSync(tmp, clean); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// writeFileSync writes data to path and fsyncs before closing, so the
// bytes are durable before any rename that references them.
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-committed rename is durable. Best
// effort: some filesystems refuse directory fsync, and a failure here only
// widens the crash window rather than corrupting state.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
