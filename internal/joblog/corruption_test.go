package joblog

import (
	"os"
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
)

// Table-driven corruption tests, mirroring internal/gbdt/validate_test.go:
// each case mutates the active segment's bytes on disk and states exactly
// what recovery must do — which records survive, how many payloads land in
// quarantine, how many tail bytes are truncated. A full frame with a bad
// checksum is quarantined (the framing is still trustworthy); bytes that
// cannot frame a record at all are a torn tail and are cut off.

func TestRecoveryFromCorruptSegments(t *testing.T) {
	const n = 6 // records appended before corruption

	// Frame boundaries are fixed per index because testRecord is
	// deterministic; compute them once from a throwaway encoding.
	frameAt := func(i int) (off, size int) {
		for j := 0; j <= i; j++ {
			off += size
			size = len(appendFrame(nil, encodePayload(nil, uint64(j+1), testRecord(j))))
		}
		return off, size
	}

	cases := []struct {
		name        string
		corrupt     func(t *testing.T, data []byte) []byte
		wantJobs    int
		wantQuar    int
		wantTorn    bool
		wantDup     int
		reappendIdx int // record to re-send after recovery; -1 to skip
	}{
		{
			name: "bit flip in a middle payload",
			corrupt: func(t *testing.T, data []byte) []byte {
				off, _ := frameAt(2)
				data[off+frameHeaderLen+12] ^= 0x40 // flip inside jobID
				return data
			},
			// The damaged record is quarantined; the five intact
			// neighbours — including those *after* the damage — survive.
			wantJobs:    n - 1,
			wantQuar:    1,
			reappendIdx: 2,
		},
		{
			name: "bit flip in a stored CRC",
			corrupt: func(t *testing.T, data []byte) []byte {
				off, _ := frameAt(1)
				data[off+4] ^= 0x01
				return data
			},
			wantJobs:    n - 1,
			wantQuar:    1,
			reappendIdx: 1,
		},
		{
			name: "truncation mid-record",
			corrupt: func(t *testing.T, data []byte) []byte {
				off, size := frameAt(n - 1)
				return data[:off+size/2]
			},
			wantJobs:    n - 1,
			wantTorn:    true,
			reappendIdx: n - 1,
		},
		{
			name: "truncation inside the frame header",
			corrupt: func(t *testing.T, data []byte) []byte {
				off, _ := frameAt(n - 1)
				return data[:off+3]
			},
			wantJobs:    n - 1,
			wantTorn:    true,
			reappendIdx: n - 1,
		},
		{
			name: "length field zeroed",
			corrupt: func(t *testing.T, data []byte) []byte {
				off, _ := frameAt(3)
				// A zero length cannot frame the stream: everything from
				// this offset on is a torn tail.
				for i := 0; i < 4; i++ {
					data[off+i] = 0
				}
				return data
			},
			wantJobs:    3,
			wantTorn:    true,
			reappendIdx: 3,
		},
		{
			name: "length field absurdly large",
			corrupt: func(t *testing.T, data []byte) []byte {
				off, _ := frameAt(3)
				data[off] = 0xFF
				data[off+1] = 0xFF
				data[off+2] = 0xFF
				data[off+3] = 0x7F
				return data
			},
			wantJobs:    3,
			wantTorn:    true,
			reappendIdx: 3,
		},
		{
			name: "duplicated tail — last frame repeated verbatim",
			corrupt: func(t *testing.T, data []byte) []byte {
				off, size := frameAt(n - 1)
				return append(data, data[off:off+size]...)
			},
			// The copied frame carries the original seq, so recovery sees a
			// physical duplicate and the dedup mask hides it from Scan.
			wantJobs:    n,
			wantDup:     1,
			reappendIdx: -1,
		},
		{
			name: "garbage appended after the last frame",
			corrupt: func(t *testing.T, data []byte) []byte {
				return append(data, 0xDE, 0xAD, 0xBE, 0xEF, 0x01)
			},
			wantJobs:    n,
			wantTorn:    true,
			reappendIdx: -1,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{})
			for i := 0; i < n; i++ {
				if _, err := s.Append(testRecord(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			path := s.segPath(1)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(t, data), 0o644); err != nil {
				t.Fatal(err)
			}

			s2 := mustOpen(t, dir, Options{})
			counts := make(map[int64]int)
			if err := s2.Scan(func(seq uint64, rec *darshan.Record) bool {
				counts[rec.JobID]++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(counts) != tc.wantJobs {
				t.Fatalf("%d jobs survive, want %d", len(counts), tc.wantJobs)
			}
			for id, c := range counts {
				if c != 1 {
					t.Fatalf("job %d yielded %d times", id, c)
				}
			}
			rep := s2.Recovery()
			if rep.Quarantined != tc.wantQuar {
				t.Fatalf("quarantined %d payloads, want %d (report %+v)", rep.Quarantined, tc.wantQuar, rep)
			}
			if tc.wantTorn && rep.TornBytes == 0 {
				t.Fatalf("expected a torn tail, report %+v", rep)
			}
			if !tc.wantTorn && rep.TornBytes != 0 {
				t.Fatalf("unexpected truncation of %d bytes, report %+v", rep.TornBytes, rep)
			}
			if rep.DuplicateFrames != tc.wantDup {
				t.Fatalf("duplicate frames %d, want %d", rep.DuplicateFrames, tc.wantDup)
			}

			// A record lost to corruption must be acceptable again as a
			// fresh append — quarantine removes it from the dedup index's
			// world, truncation never admitted it.
			if tc.reappendIdx >= 0 {
				res, err := s2.Append(testRecord(tc.reappendIdx))
				if err != nil {
					t.Fatalf("re-append: %v", err)
				}
				if res.Duplicate {
					t.Fatalf("re-append of lost record reported duplicate: %+v", res)
				}
				if err := s2.Sync(); err != nil {
					t.Fatal(err)
				}
			}

			// And the repaired store must reopen cleanly: recovery rewrote
			// or truncated the damage, it doesn't resurface.
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3 := mustOpen(t, dir, Options{})
			rep3 := s3.Recovery()
			if rep3.Quarantined != 0 || rep3.TornBytes != 0 {
				t.Fatalf("second reopen still repairing: %+v", rep3)
			}
		})
	}
}

// TestCorruptSealedSegmentSalvaged damages a sealed segment (one recorded
// in the manifest with a SHA-256). Recovery must notice the digest
// mismatch, salvage the intact records, and quarantine the damaged one.
func TestCorruptSealedSegmentSalvaged(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Rotate(); err != nil { // seals segment 1 into the manifest
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := s.segPath(1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the third record.
	off := 0
	for j := 0; j < 2; j++ {
		off += len(appendFrame(nil, encodePayload(nil, uint64(j+1), testRecord(j))))
	}
	data[off+frameHeaderLen+20] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	rep := s2.Recovery()
	if rep.Quarantined != 1 {
		t.Fatalf("recovery: %+v, want 1 quarantined payload", rep)
	}
	counts := make(map[int64]int)
	if err := s2.Scan(func(seq uint64, rec *darshan.Record) bool {
		counts[rec.JobID]++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(counts) != n-1 {
		t.Fatalf("%d records salvaged, want %d", len(counts), n-1)
	}
	if st := s2.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
