package joblog

import (
	"bufio"
	"bytes"
	"container/heap"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Compaction rewrites the sealed segments into a duplicate-free, sorted
// set in bounded memory — the external merge-sort discipline (chunked
// in-memory sort, then a k-way heap merge over run files) that lets the
// store operate on datasets larger than RAM:
//
//  1. the active segment is sealed, so the input set is immutable
//  2. frames are streamed off the sealed segments and collected into
//     chunks of at most ChunkRecords, each sorted by (job hash, seq) and
//     written to a temp run file — memory never holds more than one chunk
//  3. the runs are merged through a min-heap; the first frame per job
//     hash (the lowest sequence number — the original append, not a
//     replay) survives, later ones are dropped
//  4. merged frames stream into fresh segments (rotated at SegmentBytes,
//     fsynced, renamed from temp), the manifest flips atomically to list
//     exactly the new set, and only then are the old segments deleted
//
// A crash anywhere in (2)–(3) leaves temp files the next Open sweeps; a
// crash between a segment rename and the manifest flip leaves new
// segments the next Open adopts as unsealed tails (their records are
// physical duplicates the dedup index masks); a crash after the flip but
// before cleanup leaves superseded old segments the next Open removes.
// In every window the set of unique records is preserved exactly.

// DefaultChunkRecords bounds a compaction chunk when Options.ChunkRecords
// is zero: ~64k records ≈ 30 MiB of payload, regardless of store size.
const DefaultChunkRecords = 64 << 10

// CompactStats reports one compaction.
type CompactStats struct {
	SegmentsIn        int   `json:"segments_in"`
	SegmentsOut       int   `json:"segments_out"`
	FramesIn          int   `json:"frames_in"`
	FramesOut         int   `json:"frames_out"`
	DuplicatesDropped int   `json:"duplicates_dropped"`
	BytesIn           int64 `json:"bytes_in"`
	BytesOut          int64 `json:"bytes_out"`
	Runs              int   `json:"runs"`
}

// runRec is one frame staged for a chunk sort.
type runRec struct {
	hash  hashKey
	seq   uint64
	frame []byte
}

// Compact rewrites the store as described above. It holds the store lock
// for the duration: appends block until the compaction commits, and an
// in-flight Scan (the compaction read-guard) blocks Compact from starting,
// so cleanup never deletes a segment a scanner is still reading. Returns
// the stats of the rewrite; a store with nothing sealed is a no-op.
func (s *Store) Compact() (*CompactStats, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()

	if s.active != nil || len(s.activeBuf) > 0 {
		if err := s.sealLocked(); err != nil {
			return nil, err
		}
	}
	stats := &CompactStats{SegmentsIn: len(s.man.Sealed)}
	if len(s.man.Sealed) == 0 {
		return stats, nil
	}
	chunkMax := s.opts.ChunkRecords
	if chunkMax <= 0 {
		chunkMax = DefaultChunkRecords
	}
	segRoot := filepath.Join(s.dir, segmentsDir)

	// (2) chunked sort into run files.
	var (
		runs  []string
		chunk []runRec
	)
	defer func() {
		for _, r := range runs {
			os.Remove(r)
		}
	}()
	flushRun := func() error {
		if len(chunk) == 0 {
			return nil
		}
		sort.Slice(chunk, func(i, j int) bool {
			if c := bytes.Compare(chunk[i].hash[:], chunk[j].hash[:]); c != 0 {
				return c < 0
			}
			return chunk[i].seq < chunk[j].seq
		})
		path := filepath.Join(segRoot, fmt.Sprintf("%srun-%06d", tmpPrefix, len(runs)))
		if err := s.step(StepCompactRun, path); err != nil {
			return err
		}
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("joblog: create run: %w", err)
		}
		w := bufio.NewWriterSize(f, 1<<20)
		for _, r := range chunk {
			if _, err := w.Write(r.frame); err != nil {
				f.Close()
				return fmt.Errorf("joblog: write run: %w", err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return fmt.Errorf("joblog: flush run: %w", err)
		}
		// Runs are scratch: a crash discards them, so no fsync needed.
		if err := f.Close(); err != nil {
			return err
		}
		runs = append(runs, path)
		chunk = chunk[:0]
		return nil
	}
	for _, si := range s.man.Sealed {
		data, err := os.ReadFile(filepath.Join(segRoot, si.File))
		if err != nil {
			return nil, fmt.Errorf("joblog: compact read %s: %w", si.File, err)
		}
		stats.BytesIn += int64(len(data))
		off := 0
		for off < len(data) {
			res, payload, size := parseFrame(data[off:])
			if res != frameOK {
				break
			}
			seq, _, derr := decodePayload(payload)
			if derr != nil {
				if qerr := s.quarantine(payload, fmt.Sprintf("compact %s@%d: %v", si.File, off, derr)); qerr != nil {
					return nil, qerr
				}
				off += size
				continue
			}
			stats.FramesIn++
			chunk = append(chunk, runRec{
				hash:  payloadHash(payload),
				seq:   seq,
				frame: append([]byte(nil), data[off:off+size]...),
			})
			if len(chunk) >= chunkMax {
				if err := flushRun(); err != nil {
					return nil, err
				}
			}
			off += size
		}
	}
	if err := flushRun(); err != nil {
		return nil, err
	}
	stats.Runs = len(runs)
	if len(runs) == 0 {
		return stats, nil
	}

	// (3) k-way heap merge over the runs.
	if err := s.step(StepCompactMerge, segRoot); err != nil {
		return nil, err
	}
	h := &runHeap{}
	var files []*os.File
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, path := range runs {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("joblog: open run: %w", err)
		}
		files = append(files, f)
		rc := &runCursor{r: bufio.NewReaderSize(f, 1<<20)}
		if ok, err := rc.next(); err != nil {
			return nil, err
		} else if ok {
			h.items = append(h.items, rc)
		}
	}
	heap.Init(h)

	// (4) stream merged frames into fresh segments.
	out := &compactWriter{s: s, segRoot: segRoot}
	var lastHash hashKey
	haveLast := false
	for h.Len() > 0 {
		rc := h.items[0]
		if haveLast && rc.hash == lastHash {
			stats.DuplicatesDropped++
		} else {
			if err := out.write(rc.frame); err != nil {
				return nil, err
			}
			stats.FramesOut++
			lastHash, haveLast = rc.hash, true
		}
		if ok, err := rc.next(); err != nil {
			return nil, err
		} else if ok {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	newSealed, err := out.finish()
	if err != nil {
		return nil, err
	}
	stats.SegmentsOut = len(newSealed)
	for _, si := range newSealed {
		stats.BytesOut += si.Bytes
	}

	// Flip the manifest to exactly the new set; the old segments become
	// superseded debris the moment this rename lands.
	oldSealed := s.man.Sealed
	s.man.Sealed = newSealed
	s.man.Compactions++
	s.man.LastCompactionUnix = time.Now().Unix()
	if err := s.commitManifest(StepCompactManifest); err != nil {
		s.man.Sealed = oldSealed
		s.man.Compactions--
		return nil, err
	}
	s.sealedBytes = stats.BytesOut
	s.dupFrames = 0
	s.activeBytes = 0

	// Cleanup, best effort: a failure leaves debris the next Open sweeps.
	for _, si := range oldSealed {
		path := filepath.Join(segRoot, si.File)
		if err := s.step(StepCompactCleanup, path); err != nil {
			return stats, err
		}
		os.Remove(path)
	}
	return stats, nil
}

// compactWriter streams merged frames into size-rotated, fsynced,
// atomically renamed segments.
type compactWriter struct {
	s       *Store
	segRoot string

	f      *os.File
	w      *bufio.Writer
	sha    hash.Hash
	idx    uint64
	bytes  int64
	frames int
	sealed []segmentInfo
}

func (cw *compactWriter) open() error {
	cw.idx = cw.s.nextSegIdx
	cw.s.nextSegIdx++
	path := filepath.Join(cw.segRoot, fmt.Sprintf("%scmp-%08d", tmpPrefix, cw.idx))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("joblog: create merged segment: %w", err)
	}
	cw.sha = sha256.New()
	cw.f = f
	cw.w = bufio.NewWriterSize(io.MultiWriter(f, cw.sha), 1<<20)
	cw.bytes = 0
	cw.frames = 0
	return nil
}

func (cw *compactWriter) write(frame []byte) error {
	if cw.f == nil {
		if err := cw.open(); err != nil {
			return err
		}
	}
	if _, err := cw.w.Write(frame); err != nil {
		return fmt.Errorf("joblog: write merged segment: %w", err)
	}
	cw.bytes += int64(len(frame))
	cw.frames++
	if cw.bytes >= cw.s.opts.SegmentBytes {
		return cw.seal()
	}
	return nil
}

// seal finishes the open merged segment: flush, fsync, rename into place.
func (cw *compactWriter) seal() error {
	if cw.f == nil {
		return nil
	}
	if err := cw.w.Flush(); err != nil {
		cw.f.Close()
		return fmt.Errorf("joblog: flush merged segment: %w", err)
	}
	if err := cw.f.Sync(); err != nil {
		cw.f.Close()
		return fmt.Errorf("joblog: sync merged segment: %w", err)
	}
	tmp := cw.f.Name()
	if err := cw.f.Close(); err != nil {
		return err
	}
	final := cw.s.segPath(cw.idx)
	if err := cw.s.step(StepCompactSeal, final); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("joblog: commit merged segment: %w", err)
	}
	syncDir(cw.segRoot)
	cw.sealed = append(cw.sealed, segmentInfo{
		File:   filepath.Base(final),
		Frames: cw.frames,
		Bytes:  cw.bytes,
		SHA256: hex.EncodeToString(cw.sha.Sum(nil)),
	})
	cw.f = nil
	return nil
}

func (cw *compactWriter) finish() ([]segmentInfo, error) {
	if err := cw.seal(); err != nil {
		return nil, err
	}
	return cw.sealed, nil
}

// runCursor walks one run file frame by frame.
type runCursor struct {
	r     *bufio.Reader
	hash  hashKey
	seq   uint64
	frame []byte
}

// next loads the cursor's next frame; ok is false at end of run.
func (rc *runCursor) next() (ok bool, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(rc.r, hdr[:]); err != nil {
		if err == io.EOF {
			return false, nil
		}
		return false, fmt.Errorf("joblog: read run frame header: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n == 0 || n > MaxPayloadLen {
		return false, fmt.Errorf("joblog: run frame length %d out of range", n)
	}
	frame := make([]byte, frameHeaderLen+n)
	copy(frame, hdr[:])
	if _, err := io.ReadFull(rc.r, frame[frameHeaderLen:]); err != nil {
		return false, fmt.Errorf("joblog: read run frame payload: %w", err)
	}
	payload := frame[frameHeaderLen:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:]) {
		return false, fmt.Errorf("joblog: run frame checksum mismatch")
	}
	seq, _, derr := decodePayload(payload)
	if derr != nil {
		return false, fmt.Errorf("joblog: run frame payload: %w", derr)
	}
	rc.hash = payloadHash(payload)
	rc.seq = seq
	rc.frame = frame
	return true, nil
}

// runHeap is a min-heap of run cursors ordered by (hash, seq) — the merge
// front of the k-way merge.
type runHeap struct {
	items []*runCursor
}

func (h *runHeap) Len() int { return len(h.items) }
func (h *runHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if c := bytes.Compare(a.hash[:], b.hash[:]); c != 0 {
		return c < 0
	}
	return a.seq < b.seq
}
func (h *runHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *runHeap) Push(x any)         { h.items = append(h.items, x.(*runCursor)) }
func (h *runHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
