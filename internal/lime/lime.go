// Package lime implements LIME (Ribeiro et al., KDD 2016) for tabular
// regression — the second interpretation method AIIO supports next to
// Kernel SHAP (Section 3.3). The explainer perturbs the job's counters by
// switching active features on and off against the zero background, weighs
// each perturbation by an exponential locality kernel on cosine distance,
// and fits a weighted ridge regression whose coefficients are the
// per-counter contributions.
//
// Like the SHAP explainer, features equal to the background are never
// perturbed and receive exactly zero contribution (the paper's robustness
// rule). LIME contributions live on their own scale; AIIO never merges LIME
// and SHAP results for that reason (Section 3.3).
package lime

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"github.com/hpc-repro/aiio/internal/linalg"
	"github.com/hpc-repro/aiio/internal/shap"
)

// Config tunes the explainer.
type Config struct {
	// NSamples is the number of perturbations.
	NSamples int
	// KernelWidth is the locality kernel width on the binary
	// interpretable space; the default follows LIME's sqrt(M)·0.75 rule.
	KernelWidth float64
	// Ridge regularizes the local linear fit.
	Ridge float64
	Seed  int64
}

// DefaultConfig matches the lime package defaults at AIIO's scale.
func DefaultConfig() Config {
	return Config{
		NSamples: 4096,
		Ridge:    1e-3,
		Seed:     1,
	}
}

// Explanation is a local linear attribution of the prediction.
type Explanation struct {
	// Phi are the local linear coefficients scaled by feature presence:
	// the contribution of switching feature j on from the background.
	Phi []float64
	// Intercept is the local model's intercept.
	Intercept float64
	// FX is f(x).
	FX float64
	// R2-style residual of the local fit on the perturbation set.
	FitRMSE float64
}

// Explainer computes LIME attributions against a fixed background.
type Explainer struct {
	f          shap.PredictFunc
	background []float64
	cfg        Config
}

// New creates an explainer; nil background means all zeros.
func New(f shap.PredictFunc, background []float64, cfg Config) *Explainer {
	if cfg.NSamples <= 0 {
		cfg.NSamples = DefaultConfig().NSamples
	}
	if cfg.Ridge <= 0 {
		cfg.Ridge = DefaultConfig().Ridge
	}
	return &Explainer{f: f, background: background, cfg: cfg}
}

// Explain fits the local surrogate around x.
func (e *Explainer) Explain(x []float64) Explanation {
	out, _ := e.ExplainContext(context.Background(), x)
	return out
}

// ExplainContext fits the local surrogate around x with cooperative
// cancellation: the perturbation batch is evaluated in row chunks with a
// ctx check between chunks (see shap.EvalChunked). On cancellation the
// partial fit is discarded and ctx's error is returned.
func (e *Explainer) ExplainContext(ctx context.Context, x []float64) (Explanation, error) {
	bg := e.background
	if bg == nil {
		bg = make([]float64, len(x))
	}
	if len(bg) != len(x) {
		panic(fmt.Sprintf("lime: background dim %d vs input dim %d", len(bg), len(x)))
	}
	active := make([]int, 0, len(x))
	for j := range x {
		if x[j] != bg[j] {
			active = append(active, j)
		}
	}
	out := Explanation{Phi: make([]float64, len(x))}

	m := len(active)
	if m == 0 {
		if err := ctx.Err(); err != nil {
			return Explanation{}, err
		}
		one := linalg.NewMatrix(1, len(x))
		copy(one.Row(0), x)
		out.FX = e.f(one)[0]
		out.Intercept = out.FX
		return out, nil
	}

	rng := rand.New(rand.NewSource(e.cfg.Seed))
	width := e.cfg.KernelWidth
	if width <= 0 {
		width = math.Sqrt(float64(m)) * 0.75
	}

	n := e.cfg.NSamples
	// Row 0 is the unperturbed instance (all features on), as in the LIME
	// implementation.
	z := linalg.NewMatrix(n, m)
	inputs := linalg.NewMatrix(n, len(x))
	for i := 0; i < n; i++ {
		zrow := z.Row(i)
		irow := inputs.Row(i)
		copy(irow, bg)
		if i == 0 {
			for b := range zrow {
				zrow[b] = 1
			}
		} else {
			nOn := rng.Intn(m + 1)
			for _, b := range rng.Perm(m)[:nOn] {
				zrow[b] = 1
			}
		}
		for b, on := range zrow {
			if on == 1 {
				irow[active[b]] = x[active[b]]
			}
		}
	}
	vals, err := shap.EvalChunked(ctx, e.f, inputs)
	if err != nil {
		return Explanation{}, err
	}
	out.FX = vals[0]

	// Locality weights: exponential kernel on cosine distance between the
	// binary sample and the all-ones instance.
	w := make([]float64, n)
	sqrtM := math.Sqrt(float64(m))
	for i := 0; i < n; i++ {
		zrow := z.Row(i)
		on := 0.0
		for _, v := range zrow {
			on += v
		}
		// cos(z, 1) = |z| / (sqrt(|z|) * sqrt(m)); distance = 1 - cos.
		cos := 0.0
		if on > 0 {
			cos = on / (math.Sqrt(on) * sqrtM)
		}
		d := 1 - cos
		w[i] = math.Exp(-d * d / (width * width))
	}

	beta, err := linalg.WeightedRidge(z, vals, w, e.cfg.Ridge, true)
	if err != nil {
		return out, nil
	}
	for b := 0; b < m; b++ {
		out.Phi[active[b]] = beta[b]
	}
	out.Intercept = beta[m]

	// Fit quality on the perturbation set.
	s := 0.0
	for i := 0; i < n; i++ {
		pred := out.Intercept + linalg.Dot(beta[:m], z.Row(i))
		d := pred - vals[i]
		s += w[i] * d * d
	}
	wsum := 0.0
	for _, wi := range w {
		wsum += wi
	}
	if wsum > 0 {
		out.FitRMSE = math.Sqrt(s / wsum)
	}
	return out, nil
}
