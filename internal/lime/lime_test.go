package lime

import (
	"math"
	"math/rand"
	"testing"

	"github.com/hpc-repro/aiio/internal/linalg"
	"github.com/hpc-repro/aiio/internal/shap"
)

func linearF(c0 float64, w []float64) shap.PredictFunc {
	return func(x *linalg.Matrix) []float64 {
		out := make([]float64, x.Rows)
		for i := range out {
			out[i] = c0 + linalg.Dot(w, x.Row(i))
		}
		return out
	}
}

func TestLIMERecoversLinearContributions(t *testing.T) {
	w := []float64{2, -3, 0, 1}
	x := []float64{1, 2, 5, 0} // feature 3 inactive
	cfg := DefaultConfig()
	cfg.NSamples = 2000
	ex := New(linearF(4, w), nil, cfg).Explain(x)
	wants := []float64{2, -6, 0, 0}
	for j, want := range wants {
		if math.Abs(ex.Phi[j]-want) > 0.15*(1+math.Abs(want)) {
			t.Errorf("phi[%d] = %v, want ~%v", j, ex.Phi[j], want)
		}
	}
	if math.Abs(ex.Intercept-4) > 0.2 {
		t.Errorf("intercept = %v, want ~4", ex.Intercept)
	}
	if ex.FitRMSE > 1e-4 {
		t.Errorf("linear model local fit RMSE = %v, want ~0", ex.FitRMSE)
	}
}

func TestLIMEZeroFeaturesGetZero(t *testing.T) {
	f := func(m *linalg.Matrix) []float64 {
		out := make([]float64, m.Rows)
		for i := range out {
			r := m.Row(i)
			out[i] = r[0]*r[1] + r[2]
		}
		return out
	}
	x := []float64{2, 0, 3}
	ex := New(f, nil, DefaultConfig()).Explain(x)
	if ex.Phi[1] != 0 {
		t.Errorf("inactive feature got phi %v", ex.Phi[1])
	}
}

func TestLIMEAllZeroInput(t *testing.T) {
	ex := New(linearF(7, []float64{1, 2}), nil, DefaultConfig()).Explain([]float64{0, 0})
	if ex.FX != 7 || ex.Intercept != 7 {
		t.Errorf("FX/intercept = %v/%v", ex.FX, ex.Intercept)
	}
	for _, p := range ex.Phi {
		if p != 0 {
			t.Errorf("phi = %v", ex.Phi)
		}
	}
}

func TestLIMESignAgreement(t *testing.T) {
	// For a monotone nonlinear model, the sign of each contribution must
	// match the direction of the feature's effect.
	f := func(m *linalg.Matrix) []float64 {
		out := make([]float64, m.Rows)
		for i := range out {
			r := m.Row(i)
			out[i] = 5*r[0] - 4*math.Sqrt(r[1]+1) + 0.1*r[2]*r[2]
		}
		return out
	}
	x := []float64{2, 3, 4}
	ex := New(f, nil, DefaultConfig()).Explain(x)
	if ex.Phi[0] <= 0 {
		t.Errorf("phi[0] = %v, want > 0", ex.Phi[0])
	}
	if ex.Phi[1] >= 0 {
		t.Errorf("phi[1] = %v, want < 0", ex.Phi[1])
	}
	if ex.Phi[2] <= 0 {
		t.Errorf("phi[2] = %v, want > 0", ex.Phi[2])
	}
}

func TestLIMEDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := make([]float64, 10)
	x := make([]float64, 10)
	for j := range w {
		w[j] = rng.NormFloat64()
		x[j] = rng.Float64() + 0.1
	}
	cfg := DefaultConfig()
	cfg.NSamples = 500
	a := New(linearF(0, w), nil, cfg).Explain(x)
	b := New(linearF(0, w), nil, cfg).Explain(x)
	for j := range a.Phi {
		if a.Phi[j] != b.Phi[j] {
			t.Fatal("same seed, different LIME values")
		}
	}
}

func TestLIMENonZeroBackground(t *testing.T) {
	bg := []float64{1, 1}
	x := []float64{1, 3}
	cfg := DefaultConfig()
	cfg.NSamples = 800
	ex := New(linearF(0, []float64{10, 2}), bg, cfg).Explain(x)
	if ex.Phi[0] != 0 {
		t.Errorf("feature at background value got phi %v", ex.Phi[0])
	}
	// Switching feature 1 on moves f by 2*(3-1) = 4.
	if math.Abs(ex.Phi[1]-4) > 0.5 {
		t.Errorf("phi[1] = %v, want ~4", ex.Phi[1])
	}
}
