// Package features implements AIIO's feature engineering (Section 3.1): the
// log10(x+1) transform (Eq. 2) applied to every counter and to the
// performance tag (Eq. 1), conversion of Darshan datasets into model-ready
// matrices, the paper's shuffled 50/50 train/evaluation split, RMSE (Eq. 3),
// and standardization for the neural models.
package features

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/linalg"
)

// Transform applies Eq. 2: x_new = log10(x_original + 1). It maps 0 to 0,
// preserving the sparsity semantics of the Darshan log (missing counters
// stay zero after transformation).
func Transform(v float64) float64 {
	return math.Log10(v + 1)
}

// Sanitize maps a hostile raw counter value into Transform's domain: NaN,
// ±Inf and negative values clamp to 0, the sparsity-neutral element.
// Darshan counters are non-negative and finite by construction, so the
// clamp only fires on corrupt input; it keeps one bad record from injecting
// NaN into a feature matrix or a SHAP evaluation.
func Sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0
	}
	return v
}

// Inverse undoes Transform.
func Inverse(v float64) float64 {
	return math.Pow(10, v) - 1
}

// TransformVector applies Transform element-wise into a new slice.
func TransformVector(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = Transform(x)
	}
	return out
}

// TransformRecord converts a Darshan record into the 45-dimensional
// transformed feature vector used by every model. Counters are sanitized
// first (NaN/Inf/negative clamp to 0), so a corrupt record degrades to a
// sparser job instead of poisoning the diagnosis.
func TransformRecord(rec *darshan.Record) []float64 {
	out := make([]float64, darshan.NumCounters)
	for i, v := range rec.Counters {
		out[i] = Transform(Sanitize(v))
	}
	return out
}

// Frame is a model-ready dataset: transformed features, transformed
// performance targets, and back-references to the originating records.
type Frame struct {
	// X is n × NumCounters, log10(x+1)-transformed.
	X *linalg.Matrix
	// Y is the transformed performance tag, log10(MiB/s + 1).
	Y []float64
	// Records are the source records, aligned with the rows of X.
	Records []*darshan.Record
}

// Build constructs a Frame from a dataset. Counter values and performance
// tags are sanitized (NaN/Inf/negative clamp to 0) so one corrupt record
// cannot poison the whole matrix; quarantine rejects such records earlier
// when the dataset comes through darshan.ParseDatasetLenient.
func Build(ds *darshan.Dataset) *Frame {
	n := ds.Len()
	f := &Frame{
		X:       linalg.NewMatrix(n, int(darshan.NumCounters)),
		Y:       make([]float64, n),
		Records: make([]*darshan.Record, n),
	}
	for i, rec := range ds.Records {
		row := f.X.Row(i)
		for j, v := range rec.Counters {
			row[j] = Transform(Sanitize(v))
		}
		f.Y[i] = Transform(Sanitize(rec.PerfMiBps))
		f.Records[i] = rec
	}
	return f
}

// Len returns the number of samples.
func (f *Frame) Len() int { return len(f.Y) }

// Validate reports the first non-finite entry of X or Y. Build cannot
// produce one, but a Frame assembled by hand (or mutated by a fault
// injector) can; TrainEnsemble runs this guard before fitting so corrupt
// features fail fast with a location instead of silently skewing a model.
func (f *Frame) Validate() error {
	for i := 0; i < f.X.Rows; i++ {
		for j, v := range f.X.Row(i) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("features: X[%d][%d] is not finite: %v", i, j, v)
			}
		}
	}
	for i, v := range f.Y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("features: Y[%d] is not finite: %v", i, v)
		}
	}
	return nil
}

// Subset returns a new frame containing the given row indices.
func (f *Frame) Subset(idx []int) *Frame {
	out := &Frame{
		X:       linalg.NewMatrix(len(idx), f.X.Cols),
		Y:       make([]float64, len(idx)),
		Records: make([]*darshan.Record, len(idx)),
	}
	for i, j := range idx {
		if j < 0 || j >= f.Len() {
			panic(fmt.Sprintf("features: subset index %d out of range [0,%d)", j, f.Len()))
		}
		copy(out.X.Row(i), f.X.Row(j))
		out.Y[i] = f.Y[j]
		out.Records[i] = f.Records[j]
	}
	return out
}

// Split shuffles the frame with the given seed and splits it into
// train/eval parts, with frac of the rows going to train. The paper shuffles
// and splits 50/50 (frac = 0.5).
func (f *Frame) Split(seed int64, frac float64) (train, eval *Frame) {
	if frac <= 0 || frac >= 1 {
		panic(fmt.Sprintf("features: split fraction %v out of (0,1)", frac))
	}
	idx := rand.New(rand.NewSource(seed)).Perm(f.Len())
	cut := int(float64(f.Len()) * frac)
	return f.Subset(idx[:cut]), f.Subset(idx[cut:])
}

// RMSE implements Eq. 3 over parallel prediction/target slices.
func RMSE(pred, y []float64) float64 {
	if len(pred) != len(y) {
		panic(fmt.Sprintf("features: RMSE length mismatch %d vs %d", len(pred), len(y)))
	}
	if len(y) == 0 {
		return 0
	}
	s := 0.0
	for i := range y {
		d := pred[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(y)))
}

// Standardizer centers and scales features; the neural models (MLP, TabNet)
// train better on standardized inputs. Columns with zero variance are left
// centered but unscaled.
type Standardizer struct {
	Mean []float64
	Std  []float64
}

// FitStandardizer computes per-column mean and standard deviation.
func FitStandardizer(x *linalg.Matrix) *Standardizer {
	s := &Standardizer{
		Mean: make([]float64, x.Cols),
		Std:  make([]float64, x.Cols),
	}
	if x.Rows == 0 {
		for j := range s.Std {
			s.Std[j] = 1
		}
		return s
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(x.Rows)
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s
}

// Apply standardizes a single feature vector into a new slice.
func (s *Standardizer) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// ApplyMatrix standardizes every row of x into a new matrix.
func (s *Standardizer) ApplyMatrix(x *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		orow := out.Row(i)
		for j, v := range row {
			orow[j] = (v - s.Mean[j]) / s.Std[j]
		}
	}
	return out
}
