package features

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/linalg"
)

func TestTransformProperties(t *testing.T) {
	if Transform(0) != 0 {
		t.Error("Transform(0) must be 0 (sparsity preservation)")
	}
	if math.Abs(Transform(9)-1) > 1e-12 {
		t.Errorf("Transform(9) = %v, want 1", Transform(9))
	}
	// Monotone + inverse round-trip property.
	f := func(raw float64) bool {
		v := math.Abs(math.Mod(raw, 1e9))
		tv := Transform(v)
		if Transform(v+1) < tv {
			return false
		}
		back := Inverse(tv)
		return math.Abs(back-v) <= 1e-6*(1+v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformReducesRange(t *testing.T) {
	// The paper's Fig. 4 rationale: (1, 6309573) maps into (0.3, 6.8).
	lo, hi := Transform(1), Transform(6309573)
	if lo < 0.3 || lo > 0.31 {
		t.Errorf("Transform(1) = %v", lo)
	}
	if hi < 6.7 || hi > 6.9 {
		t.Errorf("Transform(6309573) = %v", hi)
	}
}

func TestTransformRecordAndVector(t *testing.T) {
	rec := &darshan.Record{}
	rec.SetCounter(darshan.PosixReads, 99)
	x := TransformRecord(rec)
	if len(x) != int(darshan.NumCounters) {
		t.Fatalf("len = %d", len(x))
	}
	if x[darshan.PosixReads] != 2 {
		t.Errorf("transformed POSIX_READS = %v, want 2", x[darshan.PosixReads])
	}
	v := TransformVector([]float64{0, 9, 99})
	if v[0] != 0 || v[1] != 1 || v[2] != 2 {
		t.Errorf("TransformVector = %v", v)
	}
}

func buildFrame(n int) *Frame {
	ds := &darshan.Dataset{}
	for i := 0; i < n; i++ {
		rec := &darshan.Record{JobID: int64(i), PerfMiBps: float64(i + 1)}
		rec.SetCounter(darshan.PosixWrites, float64(i))
		ds.Append(rec)
	}
	return Build(ds)
}

func TestBuildAndSubset(t *testing.T) {
	f := buildFrame(10)
	if f.Len() != 10 {
		t.Fatalf("Len = %d", f.Len())
	}
	if f.Y[3] != Transform(4) {
		t.Errorf("Y[3] = %v", f.Y[3])
	}
	if f.X.At(5, int(darshan.PosixWrites)) != Transform(5) {
		t.Error("X not transformed")
	}
	sub := f.Subset([]int{2, 7})
	if sub.Len() != 2 || sub.Records[1].JobID != 7 {
		t.Errorf("Subset wrong: %+v", sub.Records)
	}
	defer func() {
		if recover() == nil {
			t.Error("Subset accepted out-of-range index")
		}
	}()
	f.Subset([]int{99})
}

func TestSplitIsPartition(t *testing.T) {
	f := buildFrame(101)
	train, eval := f.Split(7, 0.5)
	if train.Len()+eval.Len() != f.Len() {
		t.Fatalf("split sizes %d + %d != %d", train.Len(), eval.Len(), f.Len())
	}
	seen := map[int64]int{}
	for _, r := range train.Records {
		seen[r.JobID]++
	}
	for _, r := range eval.Records {
		seen[r.JobID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("job %d appears %d times", id, n)
		}
	}
	// Same seed same split; different seed different split.
	train2, _ := f.Split(7, 0.5)
	if train.Records[0].JobID != train2.Records[0].JobID {
		t.Error("split not deterministic")
	}
}

func TestRMSE(t *testing.T) {
	if RMSE(nil, nil) != 0 {
		t.Error("empty RMSE should be 0")
	}
	got := RMSE([]float64{1, 2}, []float64{1, 4})
	if math.Abs(got-math.Sqrt(2)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("RMSE accepted mismatched lengths")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestStandardizer(t *testing.T) {
	x := linalg.FromRows([][]float64{{1, 10, 5}, {3, 10, 7}})
	s := FitStandardizer(x)
	if s.Mean[0] != 2 || s.Mean[1] != 10 {
		t.Errorf("means = %v", s.Mean)
	}
	if s.Std[1] != 1 {
		t.Error("zero-variance column should get unit std")
	}
	out := s.Apply([]float64{3, 10, 7})
	if out[0] != 1 || out[1] != 0 {
		t.Errorf("Apply = %v", out)
	}
	m := s.ApplyMatrix(x)
	if m.At(0, 0) != -1 || m.At(1, 0) != 1 {
		t.Errorf("ApplyMatrix = %+v", m)
	}
	empty := FitStandardizer(linalg.NewMatrix(0, 2))
	if empty.Std[0] != 1 {
		t.Error("empty fit should default std to 1")
	}
}

func TestSanitizeClampsHostileValues(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{math.NaN(), 0},
		{math.Inf(1), 0},
		{math.Inf(-1), 0},
		{-3, 0},
		{0, 0},
		{42, 42},
		{1.5, 1.5},
	}
	for _, c := range cases {
		if got := Sanitize(c.in); got != c.want {
			t.Errorf("Sanitize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBuildSanitizesCorruptRecords(t *testing.T) {
	rec := &darshan.Record{PerfMiBps: math.NaN()}
	rec.Counters[0] = math.Inf(1)
	rec.Counters[1] = -7
	rec.Counters[2] = math.NaN()
	rec.Counters[3] = 100
	ds := &darshan.Dataset{Records: []*darshan.Record{rec}}
	f := Build(ds)
	if err := f.Validate(); err != nil {
		t.Fatalf("Build let a non-finite value through: %v", err)
	}
	for j := 0; j < 3; j++ {
		if got := f.X.At(0, j); got != 0 {
			t.Errorf("corrupt counter %d transformed to %v, want 0", j, got)
		}
	}
	if got, want := f.X.At(0, 3), Transform(100); got != want {
		t.Errorf("clean counter transformed to %v, want %v", got, want)
	}
	if f.Y[0] != 0 {
		t.Errorf("NaN performance tag transformed to %v, want 0", f.Y[0])
	}

	x := TransformRecord(rec)
	for j := 0; j < 3; j++ {
		if x[j] != 0 {
			t.Errorf("TransformRecord kept corrupt counter %d: %v", j, x[j])
		}
	}
}

func TestFrameValidateFlagsHandMadeNaN(t *testing.T) {
	ds := &darshan.Dataset{Records: []*darshan.Record{{PerfMiBps: 10}}}
	f := Build(ds)
	if err := f.Validate(); err != nil {
		t.Fatalf("clean frame: %v", err)
	}
	f.X.Set(0, 5, math.NaN())
	if err := f.Validate(); err == nil {
		t.Fatal("Validate missed a NaN feature")
	}
	f.X.Set(0, 5, 0)
	f.Y[0] = math.Inf(-1)
	if err := f.Validate(); err == nil {
		t.Fatal("Validate missed a -Inf target")
	}
}
